// Quickstart: run a seconds-scale observatory/outpost correlation study
// and print the paper's headline results.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/correlate"
	"repro/internal/stats"
)

func main() {
	// QuickConfig is a small study: 2^14-packet telescope windows over a
	// 10k-source synthetic population, 15 honeyfarm months.
	pipe, err := core.New(core.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipe.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Headline 1 (Figure 3): telescope sources follow a Zipf-Mandelbrot
	// degree distribution.
	fig3 := res.Fig3()
	fmt.Printf("Zipf-Mandelbrot fit of snapshot %s: alpha=%.2f delta=%.2f (paper: 1.76, 3.93)\n",
		fig3[0].Label, fig3[0].Alpha, fig3[0].Delta)

	// Headline 2 (Figure 4): bright sources are seen by both vantage
	// points in the same month; faint-source visibility is logarithmic.
	fig4, err := res.Fig4()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("same-month correlation by brightness:")
	for _, p := range fig4[0].Points {
		if p.Sources < 20 {
			continue
		}
		fmt.Printf("  d=%-6g sources=%-5d seen in honeyfarm: %3.0f%%  (model %3.0f%%)\n",
			p.D, p.Sources, 100*p.Fraction, 100*correlate.PeakModel(p.D, res.Config.NV))
	}

	// Headline 3 (Figure 5): the temporal decay is modified-Cauchy.
	_, fits, err := res.Fig5()
	if err != nil {
		log.Fatal(err)
	}
	mc := fits["modified-cauchy"]
	m := mc.Model.(stats.ModifiedCauchy)
	fmt.Printf("temporal decay: modified Cauchy alpha=%.2f beta=%.2f residual=%.2f\n",
		m.Alpha, m.Beta, mc.Residual)
	fmt.Printf("  vs Cauchy residual %.2f, Gaussian residual %.2f\n",
		fits["cauchy"].Residual, fits["gaussian"].Residual)
}
