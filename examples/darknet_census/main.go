// Darknet census: characterize one telescope window the way darkspace
// operators do — validity filtering, port census, degree distributions,
// and Table II aggregates — exercising the packet-level API rather than
// the end-to-end pipeline.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/netquant"
	"repro/internal/pcap"
	"repro/internal/radiation"
	"repro/internal/stats"
	"repro/internal/telescope"
)

func main() {
	cfg := radiation.DefaultConfig()
	cfg.NumSources = 30000
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// First pass over the raw stream: protocol and port census, the view
	// an operator gets before matrix reduction.
	start := time.Date(2020, 6, 17, 12, 0, 0, 0, time.UTC)
	stream := pop.TelescopeStream(4.5, start)
	filter := pcap.MustCompile("tcp and syn")
	ports := make(map[uint16]int)
	protos := make(map[string]int)
	var pkt pcap.Packet
	synCount, n := 0, 0
	for stream.Next(&pkt) && n < 1<<17 {
		n++
		protos[pkt.Proto.String()]++
		if filter.Match(&pkt) {
			synCount++
			ports[pkt.DstPort]++
		}
	}
	fmt.Printf("scanned %d packets: protocols %v, %d TCP SYN probes\n", n, protos, synCount)

	type pc struct {
		port  uint16
		count int
	}
	var top []pc
	for p, c := range ports {
		top = append(top, pc{p, c})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].count > top[j].count })
	fmt.Println("top scanned ports:")
	for i, t := range top {
		if i >= 8 {
			break
		}
		fmt.Printf("  %5d: %d probes\n", t.port, t.count)
	}

	// Second pass: capture a constant-packet window into an anonymized
	// matrix and reduce it.
	tel := telescope.New(cfg.Darkspace, "census-example")
	win, err := tel.CaptureWindow(pop.TelescopeStream(4.5, start), 1<<16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwindow: %d valid packets over %s (%d dropped by filter)\n",
		win.NV, win.Duration().Round(time.Millisecond), win.Dropped)

	fmt.Println("network quantities (Table II):")
	for _, row := range netquant.Compute(win.Matrix).Rows() {
		fmt.Printf("  %-32s %s\n", row[0], row[1])
	}

	// Degree distributions with the paper's logarithmic binning.
	b := netquant.SourcePacketDistribution(win.Matrix)
	alpha, delta, _ := stats.FitZipfMandelbrot(b, float64(win.NV))
	fmt.Printf("\nsource-packet distribution: %d bins, ZM fit alpha=%.2f delta=%.2f\n",
		len(b.Counts), alpha, delta)
	probs := b.Prob()
	for i, p := range probs {
		if p == 0 {
			continue
		}
		bar := ""
		for k := 0; k < int(p*200); k++ {
			bar += "#"
		}
		fmt.Printf("  d=2^%-2d %-7.4f %s\n", i, p, bar)
	}

	fanout := stats.LogBin(netquant.SourceFanoutValues(win.Matrix))
	fmt.Printf("source fan-out spans %d octaves (max fan-out %d)\n",
		len(fanout.Counts), int(fanout.Centers[fanout.MaxDegreeBin()]))
}
