// Operator workflow: the storage-and-serving side of the deployment —
// the telescope archives anonymized leaf matrices to disk, an analysis
// job reconstructs the window from the archive, and a honeyfarm month is
// loaded into the D4M triple store and queried over TCP, the way the
// paper's pipeline spans the LBNL archive and an Accumulo service.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/archive"
	"repro/internal/honeyfarm"
	"repro/internal/netquant"
	"repro/internal/radiation"
	"repro/internal/telescope"
	"repro/internal/tripled"
)

func main() {
	cfg := radiation.DefaultConfig()
	cfg.NumSources = 20000
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// --- 1. Telescope capture straight to an on-disk archive ---
	dir, err := os.MkdirTemp("", "telescope-archive-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	aw, err := archive.Create(dir)
	if err != nil {
		log.Fatal(err)
	}
	tel := telescope.New(cfg.Darkspace, "operator-key", telescope.WithLeafSize(1<<12))
	start := time.Date(2020, 6, 17, 12, 0, 0, 0, time.UTC)
	valid, dropped, err := tel.CaptureToArchive(pop.TelescopeStream(4.5, start), 1<<16, aw)
	if err != nil {
		log.Fatal(err)
	}
	if err := aw.Finish(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archived %d valid packets (%d dropped) as %d leaf matrices in %s\n",
		valid, dropped, aw.Leaves(), dir)

	// --- 2. Analysis job reconstructs the window from the archive ---
	ds, err := archive.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	win, err := ds.SumAll(0)
	if err != nil {
		log.Fatal(err)
	}
	q := netquant.Compute(win)
	fmt.Printf("reconstructed window: %v packets, %v unique sources, %v unique links\n",
		q.ValidPackets, q.UniqueSources, q.UniqueLinks)

	// --- 3. Honeyfarm month served from the triple store over TCP ---
	farm := honeyfarm.New(200, cfg.Seed+1)
	monthStart := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	mw := farm.IngestMonth("2020-06", monthStart, pop.HoneyfarmMonth(4, monthStart))

	store := tripled.NewStore()
	store.LoadAssoc(mw.Table)
	srv, err := tripled.Serve(store, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("honeyfarm month 2020-06 (%d sources) served at %s\n", mw.Sources(), srv.Addr())

	client, err := tripled.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Analyst query 1: what classes of sources did we see?
	col, err := client.Col(honeyfarm.ColClassification)
	if err != nil {
		log.Fatal(err)
	}
	counts := map[string]int{}
	for _, v := range col {
		counts[v.Str]++
	}
	fmt.Printf("classification census over the wire: %v\n", counts)

	// Analyst query 2: the heaviest sources by packet count, resolved
	// through the table itself.
	top := mw.Table.TopKByColumn(honeyfarm.ColPackets, 3)
	fmt.Println("heaviest honeyfarm sources this month:")
	for _, rv := range top {
		row, err := client.Row(rv.Row)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s %3.0f packets, %s/%s\n",
			rv.Row, rv.Value, row[honeyfarm.ColClassification].Str, row[honeyfarm.ColIntent].Str)
	}

	// Analyst query 3: range scan of a prefix neighborhood.
	rows, err := client.RowRange("9.", "A")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sources in [9., A): %d\n", len(rows))

	// And the store replays from its log identically.
	var logBuf bytes.Buffer
	if err := store.WriteLog(&logBuf); err != nil {
		log.Fatal(err)
	}
	replica := tripled.NewStore()
	if err := replica.ReplayLog(&logBuf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica rebuilt from log: %d cells (original %d)\n", replica.NNZ(), store.NNZ())
}
