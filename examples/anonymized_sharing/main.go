// Anonymized sharing: demonstrate the trusted data-sharing workflow the
// paper describes — CryptoPAN anonymization of a traffic matrix, the
// permutation invariance of Table II quantities, D4M TSV interchange,
// and correlation approach 1 (sending anonymized identifiers back to
// the data owner for deanonymization).
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/assoc"
	"repro/internal/cryptopan"
	"repro/internal/hypersparse"
	"repro/internal/ipaddr"
	"repro/internal/netquant"
	"repro/internal/radiation"
	"repro/internal/telescope"
)

func main() {
	cfg := radiation.DefaultConfig()
	cfg.NumSources = 10000
	cfg.ZM.DMax = 1 << 12
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The telescope operator captures an anonymized window.
	tel := telescope.New(cfg.Darkspace, "operator-secret-key")
	win, err := tel.CaptureWindow(pop.TelescopeStream(4.0, time.Unix(1_592_395_200, 0)), 1<<14)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Permutation invariance: a researcher computing Table II on the
	// anonymized matrix gets exactly what the operator would get on the
	// raw one. Demonstrate by re-permuting with a second, unrelated key.
	q1 := netquant.Compute(win.Matrix)
	other := cryptopan.NewFromPassphrase("some-other-key")
	q2 := netquant.Compute(win.Matrix.PermuteFunc(func(x uint32) uint32 {
		return uint32(other.Anonymize(ipaddr.Addr(x)))
	}))
	fmt.Printf("Table II invariant under re-anonymization: %v\n", q1 == q2)
	fmt.Printf("  unique sources=%v unique links=%v max source packets=%v\n",
		q1.UniqueSources, q1.UniqueLinks, q1.MaxSourcePackets)

	// 2. D4M TSV interchange: the anonymized reduced results travel as a
	// plain triple file.
	anonTable := assoc.New()
	win.SourcePackets().Iterate(func(id uint32, pkts float64) bool {
		anonTable.Set(ipaddr.Addr(id).String(), "packets", assoc.Num(pkts))
		return true
	})
	var wire bytes.Buffer
	if err := anonTable.WriteTSV(&wire); err != nil {
		log.Fatal(err)
	}
	received, err := assoc.ReadTSV(&wire)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shipped %d anonymized rows over TSV, received %d\n",
		anonTable.NRows(), received.NRows())

	// 3. Approach 1: the researcher finds the brightest anonymized
	// sources and sends them back; the operator deanonymizes.
	bright := win.SourcePackets().Filter(func(_ uint32, pkts float64) bool { return pkts >= 64 })
	fmt.Printf("researcher flags %d bright anonymized sources; operator resolves:\n", bright.NNZ())
	shown := 0
	bright.Iterate(func(id uint32, pkts float64) bool {
		orig, ok := tel.Deanonymize(ipaddr.Addr(id))
		if !ok {
			log.Fatalf("operator missing mapping for %v", ipaddr.Addr(id))
		}
		fmt.Printf("  %v -> %v (%.0f packets)\n", ipaddr.Addr(id), orig, pkts)
		shown++
		return shown < 8
	})

	// 4. What anonymization protects: the anonymized matrix alone does
	// not reveal whether any particular real address was present.
	probe := pop.Source(0).IP
	fmt.Printf("raw matrix mentions %v: %v (anonymized ids only)\n",
		probe, vectorHas(win.SourcePackets(), uint32(probe)))
}

func vectorHas(v *hypersparse.Vector, id uint32) bool {
	return v.At(id) != 0
}
