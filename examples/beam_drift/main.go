// Beam drift: measure how the overlap between telescope and honeyfarm
// source sets decays with time, per brightness band, and compare the
// recovered modified-Cauchy parameters against the generator's ground
// truth — the validation loop behind EXPERIMENTS.md.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/correlate"
	"repro/internal/stats"
)

func main() {
	cfg := core.QuickConfig()
	cfg.NV = 1 << 16
	cfg.Radiation.NumSources = 40000
	cfg.Radiation.ZM = stats.PaperZM(1 << 14)
	cfg.Radiation.BrightLog2 = 8 // log2(sqrt(2^16))
	pipe, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipe.Run()
	if err != nil {
		log.Fatal(err)
	}

	snap := res.Study.Snapshots[0]
	fmt.Printf("snapshot %s (month %.1f), %d sources\n\n", snap.Label, snap.Month, snap.Sources.NRows())

	for _, band := range []int{2, 5, 8} {
		series, err := correlate.TemporalCorrelation(snap, res.Study.Months, band)
		if err != nil {
			fmt.Printf("band 2^%d: %v\n", band, err)
			continue
		}
		fit := series.Fit()
		m := fit.Model.(stats.ModifiedCauchy)
		truthBeta := cfg.Radiation.BetaStar(stats.BandLow(band))
		fmt.Printf("band 2^%d (%d sources): measured alpha=%.2f beta=%.2f drop=%.0f%%  [generator: alpha*=%.1f beta*=%.1f]\n",
			band, series.Sources, m.Alpha, m.Beta, 100*m.OneMonthDrop(),
			cfg.Radiation.AlphaStar, truthBeta)
		// Render the decay curve.
		curve := fit.Curve(series.Dt)
		for i := range series.Dt {
			bar := ""
			for k := 0; k < int(series.Fraction[i]*60); k++ {
				bar += "#"
			}
			fmt.Printf("  %s dt=%+5.1f  %.3f (fit %.3f) %s\n",
				series.Labels[i], series.Dt[i], series.Fraction[i], curve[i], bar)
		}
		fmt.Println()
	}
}
