package repro

// bench_test.go is the benchmark harness: one benchmark per table and
// figure of the paper (T1, T2, F3-F8 in DESIGN.md's experiment index)
// plus the A1-A3 design ablations. Shape metrics are attached to the
// benchmark output via ReportMetric so a run records not just cost but
// whether the regenerated artifact has the paper's shape (fitted ZM
// alpha, modified-Cauchy alpha, residual ratios, ...).
//
// Run: go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/correlate"
	"repro/internal/hypersparse"
	"repro/internal/netquant"
	"repro/internal/pcap"
	"repro/internal/radiation"
	"repro/internal/stats"
	"repro/internal/telescope"
)

// benchConfig is the shared study scale for the artifact benchmarks:
// large enough for paper-shaped statistics, small enough to build in a
// few seconds.
func benchConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.NV = 1 << 16
	cfg.LeafSize = 1 << 12
	cfg.Radiation.NumSources = 40000
	cfg.Radiation.ZM = stats.PaperZM(1 << 14)
	cfg.Radiation.BrightLog2 = 8 // log2(sqrt(2^16))
	cfg.MinBandSources = 25
	return cfg
}

var (
	benchOnce sync.Once
	benchRes  *core.Result
	benchErr  error
)

func benchResult(b *testing.B) *core.Result {
	b.Helper()
	benchOnce.Do(func() {
		p, err := core.New(benchConfig())
		if err != nil {
			benchErr = err
			return
		}
		benchRes, benchErr = p.Run()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchRes
}

// The artifact benchmarks below build a fresh serial report graph per
// iteration (res.ReportWith(1)): Result's own emitters memoize on the
// shared graph, and a memoized lookup is not the regeneration cost
// these benchmarks track. The frozen study stays shared, as before.

// BenchmarkTableI regenerates the dataset inventory (Table I).
func BenchmarkTableI(b *testing.B) {
	res := benchResult(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(res.ReportWith(1).TableI())
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkTableII regenerates the network quantities (Table II) of all
// snapshot matrices.
func BenchmarkTableII(b *testing.B) {
	res := benchResult(b)
	b.ReportAllocs()
	b.ResetTimer()
	var nv float64
	for i := 0; i < b.N; i++ {
		qs := res.ReportWith(1).TableII()
		nv = qs[0].ValidPackets
	}
	b.ReportMetric(nv, "NV")
}

// BenchmarkFig3 regenerates the degree distributions and their
// Zipf-Mandelbrot fits; the fitted alpha (paper: 1.76) is reported.
func BenchmarkFig3(b *testing.B) {
	res := benchResult(b)
	b.ReportAllocs()
	b.ResetTimer()
	var alpha float64
	for i := 0; i < b.N; i++ {
		s := res.ReportWith(1).Fig3()
		alpha = s[0].Alpha
	}
	b.ReportMetric(alpha, "zm-alpha")
}

// BenchmarkFig4 regenerates the same-month correlation curves; the
// fraction of the brightest well-populated band is reported (paper: ~1).
func BenchmarkFig4(b *testing.B) {
	res := benchResult(b)
	b.ReportAllocs()
	b.ResetTimer()
	var bright float64
	for i := 0; i < b.N; i++ {
		series, err := res.ReportWith(1).Fig4()
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range series[0].Points {
			if p.Sources >= 10 {
				bright = p.Fraction
			}
		}
	}
	b.ReportMetric(bright, "bright-frac")
}

// BenchmarkFig5 regenerates the three-model comparison; the ratio of the
// Gaussian residual to the modified-Cauchy residual is reported (>1
// means the paper's conclusion holds).
func BenchmarkFig5(b *testing.B) {
	res := benchResult(b)
	b.ReportAllocs()
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		_, fits, err := res.ReportWith(1).Fig5()
		if err != nil {
			b.Fatal(err)
		}
		ratio = fits["gaussian"].Residual / fits["modified-cauchy"].Residual
	}
	b.ReportMetric(ratio, "gauss/mc-residual")
}

// BenchmarkFig6 regenerates all temporal-correlation curves and fits.
func BenchmarkFig6(b *testing.B) {
	res := benchResult(b)
	b.ReportAllocs()
	b.ResetTimer()
	var curves int
	for i := 0; i < b.N; i++ {
		all, _ := res.ReportWith(1).Fig6()
		curves = len(all)
	}
	b.ReportMetric(float64(curves), "curves")
}

// BenchmarkFig7 regenerates the per-band alpha sweep; the mean fitted
// alpha is reported (paper: ~1).
func BenchmarkFig7(b *testing.B) {
	res := benchResult(b)
	b.ReportAllocs()
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		var alphas []float64
		for _, sweep := range res.ReportWith(1).Fig7And8() {
			for _, f := range sweep {
				alphas = append(alphas, f.Alpha)
			}
		}
		mean = stats.Summarize(alphas).Mean
	}
	b.ReportMetric(mean, "mean-alpha")
}

// BenchmarkFig8 regenerates the one-month-drop sweep; the maximum drop
// is reported (paper: ~0.5 at d ≈ 10^3).
func BenchmarkFig8(b *testing.B) {
	res := benchResult(b)
	b.ReportAllocs()
	b.ResetTimer()
	var maxDrop float64
	for i := 0; i < b.N; i++ {
		maxDrop = 0
		for _, sweep := range res.ReportWith(1).Fig7And8() {
			for _, f := range sweep {
				if f.Drop > maxDrop {
					maxDrop = f.Drop
				}
			}
		}
	}
	b.ReportMetric(maxDrop, "max-drop")
}

// BenchmarkCaptureWindow measures the end-to-end cost of one telescope
// window: stream generation, validity filter, CryptoPAN, hierarchical
// matrix assembly.
func BenchmarkCaptureWindow(b *testing.B) {
	cfg := radiation.DefaultConfig()
	cfg.NumSources = 40000
	cfg.ZM = stats.PaperZM(1 << 14)
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	const nv = 1 << 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel := telescope.New(cfg.Darkspace, "bench-key")
		w, err := tel.CaptureWindow(pop.TelescopeStream(4.5, time.Unix(0, 0)), nv)
		if err != nil {
			b.Fatal(err)
		}
		if w.NV != nv {
			b.Fatalf("short window: %d", w.NV)
		}
	}
	b.ReportMetric(float64(nv)*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkEngineWindow compares window construction through the
// sharded streaming engine across worker counts; workers=1 is the serial
// degenerate path, so the subbenchmark ratios are the engine's speedup
// curve. The cost covered is the full hot path: stream generation,
// validity filter, CryptoPAN, leaf assembly, hierarchical merge.
func BenchmarkEngineWindow(b *testing.B) {
	cfg := radiation.DefaultConfig()
	cfg.NumSources = 40000
	cfg.ZM = stats.PaperZM(1 << 14)
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	const nv = 1 << 16
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tel := telescope.New(cfg.Darkspace, "bench-key", telescope.WithLeafSize(1<<12))
				w, err := tel.CaptureWindowEngine(context.Background(),
					pop.TelescopeStream(4.5, time.Unix(0, 0)), nv, workers, 0)
				if err != nil {
					b.Fatal(err)
				}
				if w.NV != nv {
					b.Fatalf("short window: %d", w.NV)
				}
			}
			b.ReportMetric(float64(nv)*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

// BenchmarkEngineWindowSteady is the steady-state counterpart of
// BenchmarkEngineWindow: one telescope serves every window, so the
// anonymization caches and pooled merge scratch are warm — the regime a
// long-running capture actually operates in. (BenchmarkEngineWindow
// keeps its historical fresh-telescope-per-window shape so its numbers
// stay comparable across the BENCH trajectory.)
func BenchmarkEngineWindowSteady(b *testing.B) {
	cfg := radiation.DefaultConfig()
	cfg.NumSources = 40000
	cfg.ZM = stats.PaperZM(1 << 14)
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	const nv = 1 << 16
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tel := telescope.New(cfg.Darkspace, "bench-key", telescope.WithLeafSize(1<<12))
			if _, err := tel.CaptureWindowEngine(context.Background(),
				pop.TelescopeStream(4.5, time.Unix(0, 0)), nv, workers, 0); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w, err := tel.CaptureWindowEngine(context.Background(),
					pop.TelescopeStream(4.5, time.Unix(0, 0)), nv, workers, 0)
				if err != nil {
					b.Fatal(err)
				}
				if w.NV != nv {
					b.Fatalf("short window: %d", w.NV)
				}
			}
			b.ReportMetric(float64(nv)*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

// BenchmarkLeafBuild measures the steady-state radix leaf build: one
// retained triple-buffer builder compiling 2^12-entry leaves.
func BenchmarkLeafBuild(b *testing.B) {
	cfg := radiation.DefaultConfig()
	cfg.NumSources = 40000
	cfg.ZM = stats.PaperZM(1 << 14)
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	const leafSize = 1 << 12
	st := pop.TelescopeStream(4.5, time.Unix(0, 0))
	pairs := make([][2]uint32, leafSize)
	pkt := new(pcap.Packet)
	for i := range pairs {
		if !st.Next(pkt) {
			b.Fatal("stream exhausted")
		}
		pairs[i] = [2]uint32{uint32(pkt.Src), uint32(pkt.Dst)}
	}
	builder := hypersparse.NewBuilder(leafSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			builder.Add(p[0], p[1], 1)
		}
		builder.Build()
	}
	b.ReportMetric(float64(leafSize)*float64(b.N)/b.Elapsed().Seconds(), "entries/s")
}

// BenchmarkNetquantFused measures the fused Table II reduction against a
// window-scale matrix; allocs/op must stay 0 once the pool is warm.
func BenchmarkNetquantFused(b *testing.B) {
	cfg := radiation.DefaultConfig()
	cfg.NumSources = 40000
	cfg.ZM = stats.PaperZM(1 << 14)
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m := hypersparse.HierSum(buildLeaves(b, pop, 1<<12), 0)
	netquant.Compute(m) // warm the column-scan pool
	b.ReportAllocs()
	b.ResetTimer()
	var q netquant.Quantities
	for i := 0; i < b.N; i++ {
		q = netquant.Compute(m)
	}
	b.ReportMetric(q.ValidPackets, "NV")
}

// BenchmarkHierarchicalSum (ablation A1) compares the log-depth parallel
// merge against the flat single-builder baseline across leaf sizes.
func BenchmarkHierarchicalSum(b *testing.B) {
	cfg := radiation.DefaultConfig()
	cfg.NumSources = 40000
	cfg.ZM = stats.PaperZM(1 << 14)
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	leaves := buildLeaves(b, pop, 1<<12)
	b.Run("hierarchical", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hypersparse.HierSum(leaves, 0)
		}
	})
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hypersparse.FlatSum(leaves)
		}
	})
}

func buildLeaves(b *testing.B, pop *radiation.Population, leafSize int) []*hypersparse.Matrix {
	b.Helper()
	st := pop.TelescopeStream(4.5, time.Unix(0, 0))
	var leaves []*hypersparse.Matrix
	builder := hypersparse.NewBuilder(leafSize)
	n := 0
	pkt := new(pcap.Packet)
	for st.Next(pkt) && len(leaves) < 16 {
		builder.Add(uint32(pkt.Src), uint32(pkt.Dst), 1)
		n++
		if n == leafSize {
			leaves = append(leaves, builder.Build())
			n = 0
		}
	}
	if len(leaves) == 0 {
		b.Fatal("no leaves built")
	}
	return leaves
}

// BenchmarkFitNorms (ablation A2) compares fit quality and cost of the
// paper's ||.||_1/2 norm against L1 and L2 on noisy modified-Cauchy
// data; the reported metric is the alpha recovery error.
func BenchmarkFitNorms(b *testing.B) {
	truth := stats.ModifiedCauchy{Alpha: 1.0, Beta: 4.0}
	dts := make([]float64, 15)
	vals := make([]float64, 15)
	rng := newDeterministicNoise()
	for i := range dts {
		dts[i] = float64(i - 4)
		noise := 0.05 * (rng() - 0.5)
		// One gross outlier, the regime where fractional norms help.
		if i == 12 {
			noise = 0.35
		}
		vals[i] = 0.8*truth.Eval(dts[i]) + noise
	}
	for _, p := range []struct {
		name string
		p    float64
	}{{"half", 0.5}, {"L1", 1}, {"L2", 2}} {
		b.Run(p.name, func(b *testing.B) {
			b.ReportAllocs()
			var errAlpha float64
			for i := 0; i < b.N; i++ {
				fit := stats.FitModifiedCauchyNorm(dts, vals, p.p)
				errAlpha = math.Abs(fit.Model.(stats.ModifiedCauchy).Alpha - truth.Alpha)
			}
			b.ReportMetric(errAlpha, "alpha-error")
		})
	}
}

// BenchmarkWindowing (ablation A3) compares constant-packet and
// constant-time window capture; the metric is the matrix NV actually
// collected (constant-packet pins it exactly).
func BenchmarkWindowing(b *testing.B) {
	cfg := radiation.DefaultConfig()
	cfg.NumSources = 40000
	cfg.ZM = stats.PaperZM(1 << 14)
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("constant-packet", func(b *testing.B) {
		b.ReportAllocs()
		var nv int
		for i := 0; i < b.N; i++ {
			tel := telescope.New(cfg.Darkspace, "bench-key")
			w, err := tel.CaptureWindow(pop.TelescopeStream(4.5, time.Unix(0, 0)), 1<<15)
			if err != nil {
				b.Fatal(err)
			}
			nv = w.NV
		}
		b.ReportMetric(float64(nv), "NV")
	})
	b.Run("constant-time", func(b *testing.B) {
		b.ReportAllocs()
		var nv int
		for i := 0; i < b.N; i++ {
			tel := telescope.New(cfg.Darkspace, "bench-key")
			w, err := tel.CaptureTimeWindow(pop.TelescopeStream(4.5, time.Unix(0, 0)), 30*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			nv = w.NV
		}
		b.ReportMetric(float64(nv), "NV")
	})
}

// newDeterministicNoise returns a tiny deterministic noise source so the
// ablation's data is identical across runs without importing math/rand
// here.
func newDeterministicNoise() func() float64 {
	state := uint64(0x9E3779B97F4A7C15)
	return func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%1000) / 1000
	}
}

// BenchmarkStudy measures the whole-study wall clock through the
// parallel scheduler: population synthesis, every honeyfarm month,
// every engine-captured snapshot window, assembled by index. One op is
// one complete study at quick scale.
func BenchmarkStudy(b *testing.B) {
	cfg := core.QuickConfig()
	cfg.StudyWorkers = 0 // GOMAXPROCS fan-out
	b.ReportAllocs()
	b.ResetTimer()
	var pkts float64
	for i := 0; i < b.N; i++ {
		p, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			b.Fatal(err)
		}
		pkts = float64(len(res.Windows) * cfg.NV)
	}
	b.ReportMetric(pkts*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkCorrelate measures the frozen sorted-key correlation kernels
// across the full study: one op computes the Figure 4 peak curve and
// one temporal series for every snapshot, allocation-free at steady
// state.
func BenchmarkCorrelate(b *testing.B) {
	res := benchResult(b)
	f := res.Frozen()
	snaps := f.Snapshots()
	peaks := make([][]correlate.BandFraction, snaps)
	series := make([]correlate.Series, snaps)
	mis := make([]int, snaps)
	bands := make([]int, snaps)
	for si := 0; si < snaps; si++ {
		mi, err := f.SameMonthIndex(si)
		if err != nil {
			b.Fatal(err)
		}
		mis[si] = mi
		bands[si] = f.Bands(si)[0]
		peaks[si] = f.PeakCorrelation(si, mi)
		if err := f.TemporalInto(&series[si], si, bands[si]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for si := 0; si < snaps; si++ {
			peaks[si] = f.PeakInto(peaks[si], si, mis[si])
			if err := f.TemporalInto(&series[si], si, bands[si]); err != nil {
				b.Fatal(err)
			}
		}
	}
}
