package repro

// tripled_bench_test.go measures the D4M service ingest path the
// acceptance bar cares about: publishing the same honeyfarm month table
// over one round trip per cell (the pre-batching protocol) versus the
// batched, pipelined BATCH path. The batched path must win by >= 5x;
// BenchmarkTripledIngest reports cells/sec for both so the ratio is in
// the bench output.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/assoc"
	"repro/internal/honeyfarm"
	"repro/internal/radiation"
	"repro/internal/stats"
	"repro/internal/tripled"
)

var (
	benchMonthOnce  sync.Once
	benchMonthTable *assoc.Assoc
	benchMonthErr   error
)

// benchMonth builds one enriched honeyfarm month table, shared across
// ingest benchmarks so both paths load identical cells.
func benchMonth(tb testing.TB) *assoc.Assoc {
	tb.Helper()
	benchMonthOnce.Do(func() {
		cfg := radiation.DefaultConfig()
		cfg.NumSources = 4000
		cfg.ZM = stats.PaperZM(1 << 11)
		pop, err := radiation.NewPopulation(cfg)
		if err != nil {
			benchMonthErr = err
			return
		}
		farm := honeyfarm.New(100, 3)
		start := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
		benchMonthTable = farm.IngestMonth("2020-06", start, pop.HoneyfarmMonth(4, start)).Table
	})
	if benchMonthErr != nil {
		tb.Fatal(benchMonthErr)
	}
	return benchMonthTable
}

func benchIngest(b *testing.B, ingest func(c *tripled.Client, prefix string, table *assoc.Assoc) error) {
	table := benchMonth(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh server per iteration so both paths load into an empty
		// store — otherwise the faster path pays for a bigger table.
		b.StopTimer()
		srv, err := tripled.Serve(tripled.NewStore(), "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		c, err := tripled.Dial(srv.Addr())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		err = ingest(c, "m/", table)
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		nnz, err := c.NNZ()
		if err != nil {
			b.Fatal(err)
		}
		if nnz != table.NNZ() {
			b.Fatalf("ingested %d cells, want %d", nnz, table.NNZ())
		}
		c.Close()
		srv.Close()
		b.StartTimer()
	}
	b.StopTimer()
	cells := float64(table.NNZ())
	b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds(), "cells/sec")
	b.ReportMetric(cells, "cells/table")
}

// BenchmarkTripledIngest/percell is the old protocol: one PUT round
// trip per cell.
func BenchmarkTripledIngest(b *testing.B) {
	b.Run("percell", func(b *testing.B) {
		benchIngest(b, func(c *tripled.Client, prefix string, table *assoc.Assoc) error {
			var err error
			table.Iterate(func(row, col string, v assoc.Value) bool {
				err = c.Put(prefix+row, col, v)
				return err == nil
			})
			return err
		})
	})
	b.Run("pipelined", func(b *testing.B) {
		benchIngest(b, func(c *tripled.Client, prefix string, table *assoc.Assoc) error {
			return c.PublishAssoc(prefix, table, honeyfarm.PublishBatch)
		})
	})
}

// BenchmarkTripledQueries measures the read side the analyst workflow
// leans on: per-row lookups and the degree-table top-k.
func BenchmarkTripledQueries(b *testing.B) {
	table := benchMonth(b)
	store := tripled.NewStore()
	store.LoadAssoc(table)
	srv, err := tripled.Serve(store, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := tripled.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	rows := table.RowKeys()
	b.Run("row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Row(rows[i%len(rows)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("topdeg", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.TopRowsByDegree(10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestTripledIngestSpeedup is the checked form of the acceptance bar:
// batched, pipelined ingest of a month table must be at least 5x faster
// than the per-cell round-trip path, each publishing into its own fresh
// server. Loopback makes this the worst case for the ratio (a round
// trip costs microseconds, not a real network's RTT); dev hardware
// still shows ~6-9x, so 5x holds with margin anywhere slower.
func TestTripledIngestSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	table := benchMonth(t)
	timeIngest := func(ingest func(c *tripled.Client) error) time.Duration {
		srv, err := tripled.Serve(tripled.NewStore(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		c, err := tripled.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		t0 := time.Now()
		if err := ingest(c); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}

	// Best of three attempts: the assertion is about the protocol, not
	// about winning a fair scheduling race on a loaded CI runner, so one
	// noisy-neighbor stall must not fail the build.
	best := 0.0
	for attempt := 0; attempt < 3 && best < 5; attempt++ {
		perCell := timeIngest(func(c *tripled.Client) error {
			var err error
			table.Iterate(func(row, col string, v assoc.Value) bool {
				err = c.Put("m/"+row, col, v)
				return err == nil
			})
			return err
		})
		pipelined := timeIngest(func(c *tripled.Client) error {
			return c.PublishAssoc("m/", table, honeyfarm.PublishBatch)
		})
		speedup := float64(perCell) / float64(pipelined)
		t.Logf("attempt %d: per-cell %v, pipelined %v, speedup %.1fx over %d cells",
			attempt+1, perCell, pipelined, speedup, table.NNZ())
		if speedup > best {
			best = speedup
		}
	}
	if best < 5 {
		t.Errorf("pipelined ingest only %.1fx faster than per-cell, want >= 5x", best)
	}
}
