package tripled_test

// crash_test.go is the real-crash gate: the test binary re-executes
// itself as a durable tripled server (the helper-process pattern —
// TestMain diverts to runCrashHelper when the env marker is set), the
// test SIGKILLs that process mid-BATCH, restarts it from the same data
// dir, and holds the recovered state to the acked-mutation oracle.
// SIGKILL of a real OS process is the fault the WAL exists for: no
// deferred cleanup, no flushes, no orderly close on any socket.

import (
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/assoc"
	"repro/internal/faultinject"
	"repro/internal/tripled"
	"repro/internal/tripled/wal"
)

const (
	helperEnv     = "TRIPLED_CRASH_HELPER"
	helperDirEnv  = "TRIPLED_HELPER_DIR"
	helperAddrEnv = "TRIPLED_HELPER_ADDR"
	helperSyncEnv = "TRIPLED_HELPER_SYNC"
)

func TestMain(m *testing.M) {
	if os.Getenv(helperEnv) == "1" {
		runCrashHelper()
		return
	}
	os.Exit(m.Run())
}

// runCrashHelper is the subprocess body: a durable server on the given
// data dir that prints its readiness line and parks until killed.
func runCrashHelper() {
	addr := os.Getenv(helperAddrEnv)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	policy := os.Getenv(helperSyncEnv)
	if policy == "" {
		policy = wal.SyncInterval
	}
	srv, err := tripled.Serve(tripled.NewStoreStripes(4), addr,
		tripled.WithDataDir(os.Getenv(helperDirEnv)),
		tripled.WithWALSyncPolicy(policy))
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash helper:", err)
		os.Exit(1)
	}
	rec := srv.Recovery()
	fmt.Printf("LISTEN %s\n", srv.Addr())
	fmt.Printf("RECOVERED snapshot=%d tail=%d torn=%d wall=%s\n",
		rec.SnapshotCells, rec.TailRecords, rec.TornBytes, rec.Wall)
	select {} // hold state until SIGKILL
}

// startCrashServer re-execs this test binary as a durable server.
func startCrashServer(t *testing.T, dir, addr string) *faultinject.Process {
	t.Helper()
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	p, err := faultinject.StartProcess(bin, nil, []string{
		helperEnv + "=1",
		helperDirEnv + "=" + dir,
		helperAddrEnv + "=" + addr,
	}, "LISTEN ", 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Kill() })
	return p
}

// TestKill9MidBatchRecoversAckedPrefix: a server is SIGKILLed while a
// BATCH sits half-written on the wire. Restarted from the same data
// dir, it must hold exactly the acked mutations — every acknowledged
// batch present, the torn batch absent entirely (atomicity), nothing
// else — byte-identical to a replay oracle. The WAL then keeps working:
// post-recovery writes survive a clean restart too.
func TestKill9MidBatchRecoversAckedPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	dir := t.TempDir()
	p := startCrashServer(t, dir, "127.0.0.1:0")
	addr := p.Ready

	c, err := tripled.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	oracle := tripled.NewStoreStripes(1)
	for i := 0; i < 25; i++ {
		cells := make([]tripled.Cell, 0, 8)
		for j := 0; j < 8; j++ {
			cells = append(cells, tripled.Cell{
				Row: fmt.Sprintf("b%02d", i),
				Col: fmt.Sprintf("c%d", j),
				Val: assoc.Num(float64(i*100 + j)),
			})
		}
		if err := c.PutBatch(cells); err != nil { // acked: must survive
			t.Fatalf("batch %d: %v", i, err)
		}
		for _, cell := range cells {
			oracle.Put(cell.Row, cell.Col, cell.Val)
		}
		if i%5 == 0 {
			if err := c.Delete(fmt.Sprintf("b%02d", i), "c7"); err != nil {
				t.Fatal(err)
			}
			oracle.Delete(fmt.Sprintf("b%02d", i), "c7")
		}
	}
	c.Close()

	// A torn batch: header plus half the body, never completed. The
	// sleep lets the bytes reach the server's reader before the kill.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(raw, "BATCH\t4\nPUT\ttorn\ta\tn\t1\nPUT\ttorn\tb\tn\t2\n")
	time.Sleep(200 * time.Millisecond)
	if err := p.Kill(); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	p2 := startCrashServer(t, dir, "127.0.0.1:0")
	c2, err := tripled.Dial(p2.Ready)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, err := c2.FetchAssoc("", 64)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.ToAssoc()
	if got.NNZ() != want.NNZ() {
		t.Fatalf("recovered %d cells, acked oracle has %d", got.NNZ(), want.NNZ())
	}
	diffs := 0
	want.Iterate(func(r, col string, v assoc.Value) bool {
		if gv, ok := got.Get(r, col); !ok || gv != v {
			if diffs++; diffs <= 5 {
				t.Errorf("cell (%s,%s) = %v, oracle %v", r, col, gv, v)
			}
		}
		return true
	})
	if diffs > 0 {
		t.Fatalf("%d recovered cells differ from the acked oracle", diffs)
	}
	if row, err := c2.Row("torn"); err != nil || len(row) != 0 {
		t.Fatalf("torn batch partially applied: row=%v err=%v", row, err)
	}

	// The recovered WAL stays appendable, and a second recovery carries
	// the post-crash write forward.
	if err := c2.Put("postcrash", "c", assoc.Num(7)); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	if err := p2.Kill(); err != nil {
		t.Fatal(err)
	}
	p3 := startCrashServer(t, dir, "127.0.0.1:0")
	c3, err := tripled.Dial(p3.Ready)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if v, err := c3.Get("postcrash", "c"); err != nil || v != assoc.Num(7) {
		t.Fatalf("post-crash write lost across second recovery: %v, %v", v, err)
	}
	if n, err := c3.NNZ(); err != nil || n != want.NNZ()+1 {
		t.Fatalf("second recovery NNZ = %d, want %d", n, want.NNZ()+1)
	}
}
