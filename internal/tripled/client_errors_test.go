package tripled

// client_errors_test.go exercises the client's failure paths: servers
// that die mid-response, servers that talk garbage, and dialing a
// server that is gone. Every case must return an error promptly — no
// hangs, no panics.

import (
	"bufio"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/assoc"
)

// fakeServer accepts one connection, answers every request line with
// the fixed script responses (one per request), then closes the
// connection. An empty script closes immediately after the first read.
func fakeServer(t *testing.T, script ...string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		sc := bufio.NewScanner(conn)
		for _, resp := range script {
			if !sc.Scan() {
				return
			}
			conn.Write([]byte(resp))
		}
		sc.Scan() // wait for one more request, then hang up mid-exchange
	}()
	return ln.Addr().String()
}

func dialTest(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.conn.SetDeadline(time.Now().Add(10 * time.Second)) // hang guard
	return c
}

func TestClientServerDropsMidBlock(t *testing.T) {
	addr := fakeServer(t, "BLOCK 5\na\tn\t1\nb\tn\t2\n")
	c := dialTest(t, addr)
	_, err := c.Row("whatever")
	if err == nil || !strings.Contains(err.Error(), "truncated block") {
		t.Fatalf("mid-block drop error = %v", err)
	}
}

func TestClientServerDropsBeforeResponse(t *testing.T) {
	addr := fakeServer(t)
	c := dialTest(t, addr)
	if err := c.Put("r", "c", assoc.Num(1)); err == nil {
		t.Fatal("Put against a hanging-up server succeeded")
	}
}

func TestClientMalformedResponses(t *testing.T) {
	cases := []struct {
		name string
		resp string
		call func(*Client) error
	}{
		{"garbage status", "WAT\n", func(c *Client) error { return c.Put("r", "c", assoc.Num(1)) }},
		{"get payload no tab", "OK n1\n", func(c *Client) error { _, err := c.Get("r", "c"); return err }},
		{"get payload bad marker", "OK q\tv\n", func(c *Client) error { _, err := c.Get("r", "c"); return err }},
		{"block header not a count", "BLOCK x\n", func(c *Client) error { _, err := c.Row("r"); return err }},
		{"block header negative", "BLOCK -2\n", func(c *Client) error { _, err := c.Row("r"); return err }},
		{"block instead of ok", "BLOCK 0\n", func(c *Client) error { _, err := c.NNZ(); return err }},
		{"ok instead of block", "OK\n", func(c *Client) error { _, err := c.RowRange("", ""); return err }},
		{"cell line too few fields", "BLOCK 1\nonlyrow\n", func(c *Client) error { _, err := c.Row("r"); return err }},
		{"cells line too few fields", "BLOCK 1\nr\tc\n", func(c *Client) error { _, err := c.ScanCells("", "", 5, ""); return err }},
		{"degree not a number", "BLOCK 1\nr\tx\n", func(c *Client) error { _, err := c.TopRowsByDegree(1); return err }},
		{"nnz not a number", "OK many\n", func(c *Client) error { _, err := c.NNZ(); return err }},
		{"batch ack wrong count", "OK 7\n", func(c *Client) error { return c.PutBatch([]Cell{{Row: "r", Col: "c", Val: assoc.Num(1)}}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := fakeServer(t, tc.resp)
			c := dialTest(t, addr)
			if err := tc.call(c); err == nil {
				t.Errorf("response %q accepted", tc.resp)
			}
		})
	}
}

func TestDialClosedServer(t *testing.T) {
	srv, err := Serve(NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(addr); err == nil {
		t.Fatal("Dial against a closed server succeeded")
	}
}

func TestClientRejectsNewlines(t *testing.T) {
	// No server round trip should happen; use an address nothing answers
	// beyond the dial.
	srv, err := Serve(NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := dialTest(t, srv.Addr())
	if err := c.Put("bad\nrow", "c", assoc.Num(1)); err == nil {
		t.Error("newline row accepted")
	}
	if err := c.PutBatch([]Cell{{Row: "r", Col: "bad\ncol", Val: assoc.Num(1)}}); err == nil {
		t.Error("newline col accepted in batch")
	}
}

// TestErrNotFoundStillDistinguished guards that transport-error changes
// didn't fold NF into generic errors.
func TestErrNotFoundStillDistinguished(t *testing.T) {
	_, c := serveTest(t)
	if _, err := c.Get("nope", "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent Get error = %v, want ErrNotFound", err)
	}
}
