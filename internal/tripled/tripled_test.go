package tripled

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/assoc"
)

func TestPutGetDelete(t *testing.T) {
	s := NewStore()
	s.Put("1.1.1.1", "packets", assoc.Num(3))
	if v, ok := s.Get("1.1.1.1", "packets"); !ok || v.Num != 3 {
		t.Fatal("basic put/get failed")
	}
	s.Put("1.1.1.1", "packets", assoc.Num(5)) // replace
	if s.NNZ() != 1 {
		t.Errorf("replace grew NNZ to %d", s.NNZ())
	}
	if !s.Delete("1.1.1.1", "packets") {
		t.Error("delete existing returned false")
	}
	if s.Delete("1.1.1.1", "packets") {
		t.Error("delete absent returned true")
	}
	if s.NNZ() != 0 {
		t.Errorf("NNZ after delete = %d", s.NNZ())
	}
}

func TestTransposeIndexConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		type cell struct{ r, c string }
		ref := make(map[cell]assoc.Value)
		for i := 0; i < 300; i++ {
			r := "r" + strconv.Itoa(rng.Intn(20))
			c := "c" + strconv.Itoa(rng.Intn(20))
			if rng.Intn(5) == 0 {
				s.Delete(r, c)
				delete(ref, cell{r, c})
			} else {
				v := assoc.Num(float64(rng.Intn(100)))
				s.Put(r, c, v)
				ref[cell{r, c}] = v
			}
		}
		// Row index, column index, and degree tables must all agree
		// with the reference.
		if s.NNZ() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok := s.Get(k.r, k.c); !ok || got != v {
				return false
			}
			if got := s.Col(k.c)[k.r]; got != v {
				return false
			}
			if got := s.Row(k.r)[k.c]; got != v {
				return false
			}
		}
		rowDeg := make(map[string]int)
		colDeg := make(map[string]int)
		for k := range ref {
			rowDeg[k.r]++
			colDeg[k.c]++
		}
		for r, d := range rowDeg {
			if s.RowDegree(r) != d {
				return false
			}
		}
		for c, d := range colDeg {
			if s.ColDegree(c) != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRowRange(t *testing.T) {
	s := NewStore()
	for _, r := range []string{"a", "b", "c", "d"} {
		s.Put(r, "x", assoc.Num(1))
	}
	got := s.RowRange("b", "d")
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("RowRange = %v", got)
	}
	all := s.RowRange("", "")
	if len(all) != 4 {
		t.Errorf("unbounded range = %v", all)
	}
}

func TestTopRowsByDegree(t *testing.T) {
	s := NewStore()
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			s.Put("r"+strconv.Itoa(i), "c"+strconv.Itoa(j), assoc.Num(1))
		}
	}
	top := s.TopRowsByDegree(2)
	if len(top) != 2 || top[0].Row != "r4" || top[0].Degree != 5 || top[1].Row != "r3" {
		t.Errorf("TopRowsByDegree = %v", top)
	}
	if got := s.TopRowsByDegree(100); len(got) != 5 {
		t.Errorf("k>n returned %d rows", len(got))
	}
}

func TestLoadAndExportAssoc(t *testing.T) {
	a := assoc.New()
	a.Set("1.1.1.1", "packets", assoc.Num(3))
	a.Set("1.1.1.1", "class", assoc.Str("scanner"))
	a.Set("2.2.2.2", "packets", assoc.Num(7))
	s := NewStore()
	s.LoadAssoc(a)
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
	back := s.ToAssoc()
	if back.NNZ() != a.NNZ() {
		t.Fatal("round trip lost cells")
	}
	a.Iterate(func(r, c string, v assoc.Value) bool {
		got, ok := back.Get(r, c)
		if !ok || got != v {
			t.Errorf("cell (%s,%s) mismatch", r, c)
		}
		return true
	})
}

func TestLogRoundTrip(t *testing.T) {
	s := NewStore()
	s.Put("r1", "c1", assoc.Num(1.5))
	s.Put("r2", "c2", assoc.Str("hello world"))
	var buf bytes.Buffer
	if err := s.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.ReplayLog(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.NNZ() != 2 {
		t.Fatalf("replayed NNZ = %d", s2.NNZ())
	}
	if v, _ := s2.Get("r1", "c1"); v.Num != 1.5 {
		t.Error("numeric value lost in log")
	}
	if v, _ := s2.Get("r2", "c2"); v.Str != "hello world" {
		t.Error("string value lost in log")
	}
}

func TestReplayLogErrors(t *testing.T) {
	s := NewStore()
	for _, bad := range []string{"X\tr\tc\tn\t1\n", "P\tr\tc\n", "P\tr\tc\tq\tv\n", "P\tr\tc\tn\tnotnum\n"} {
		if err := s.ReplayLog(bytes.NewReader([]byte(bad))); err == nil {
			t.Errorf("ReplayLog(%q) succeeded", bad)
		}
	}
}

func TestVersionBumps(t *testing.T) {
	s := NewStore()
	v0 := s.Version()
	s.Put("r", "c", assoc.Num(1))
	if s.Version() == v0 {
		t.Error("Put did not bump version")
	}
	v1 := s.Version()
	s.Delete("r", "c")
	if s.Version() == v1 {
		t.Error("Delete did not bump version")
	}
}

func TestConcurrentClientsViaServer(t *testing.T) {
	store := NewStore()
	srv, err := Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const goroutines = 8
	const perG = 100
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < perG; i++ {
				row := fmt.Sprintf("g%d-r%d", id, i)
				if err := c.Put(row, "packets", assoc.Num(float64(i))); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if store.NNZ() != goroutines*perG {
		t.Fatalf("NNZ = %d, want %d", store.NNZ(), goroutines*perG)
	}
}

func TestClientServerProtocol(t *testing.T) {
	store := NewStore()
	srv, err := Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Put("1.1.1.1", "packets", assoc.Num(3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("1.1.1.1", "class", assoc.Str("scanner")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("2.2.2.2", "packets", assoc.Num(9)); err != nil {
		t.Fatal(err)
	}

	v, err := c.Get("1.1.1.1", "packets")
	if err != nil || v.Num != 3 {
		t.Fatalf("Get = %v, %v", v, err)
	}
	if _, err := c.Get("absent", "absent"); err != ErrNotFound {
		t.Errorf("absent Get error = %v, want ErrNotFound", err)
	}

	row, err := c.Row("1.1.1.1")
	if err != nil || len(row) != 2 || row["class"].Str != "scanner" {
		t.Fatalf("Row = %v, %v", row, err)
	}
	col, err := c.Col("packets")
	if err != nil || len(col) != 2 || col["2.2.2.2"].Num != 9 {
		t.Fatalf("Col = %v, %v", col, err)
	}

	rows, err := c.RowRange("1.", "2.")
	if err != nil || len(rows) != 1 || rows[0] != "1.1.1.1" {
		t.Fatalf("RowRange = %v, %v", rows, err)
	}

	top, err := c.TopRowsByDegree(1)
	if err != nil || len(top) != 1 || top[0].Row != "1.1.1.1" || top[0].Degree != 2 {
		t.Fatalf("TopRowsByDegree = %v, %v", top, err)
	}

	nnz, err := c.NNZ()
	if err != nil || nnz != 3 {
		t.Fatalf("NNZ = %d, %v", nnz, err)
	}

	if err := c.Delete("2.2.2.2", "packets"); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("2.2.2.2", "packets"); err != ErrNotFound {
		t.Errorf("double delete error = %v", err)
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	store := NewStore()
	srv, err := Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, bad := range []string{"BOGUS", "PUT\tonly", "GET\tr", "TOPDEG\t-1", "TOPDEG\tx", "RANGE\ta"} {
		resp, err := c.roundTrip(bad)
		if err != nil {
			t.Fatalf("transport error on %q: %v", bad, err)
		}
		if len(resp) < 3 || resp[:3] != "ERR" {
			t.Errorf("request %q got %q, want ERR", bad, resp)
		}
	}
}

func BenchmarkStorePut(b *testing.B) {
	s := NewStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Put("r"+strconv.Itoa(i%100000), "packets", assoc.Num(float64(i)))
	}
}

func BenchmarkClientPut(b *testing.B) {
	srv, err := Serve(NewStore(), "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put("r"+strconv.Itoa(i%1000), "packets", assoc.Num(1)); err != nil {
			b.Fatal(err)
		}
	}
}
