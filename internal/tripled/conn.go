package tripled

import "repro/internal/assoc"

// Conn is the store-client surface the pipeline, daemon, and load
// tools program against: everything a study needs to publish and fetch
// its D4M tables, satisfied both by the single-connection *Client and
// by the replicated cluster client (internal/tripled/cluster), so one
// Config.StoreAddr string can name either a single server or a
// consistent-hash cluster without the callers changing shape.
//
// Implementations follow the *Client contract: not safe for concurrent
// use — one Conn per goroutine.
type Conn interface {
	Put(row, col string, v assoc.Value) error
	Get(row, col string) (assoc.Value, error)
	Delete(row, col string) error
	PutBatch(cells []Cell) error
	Row(row string) (map[string]assoc.Value, error)
	ScanAllRows(start, end string, pageSize int) ([]string, error)
	TopRowsByDegree(k int) ([]RowDegree, error)
	PublishAssoc(prefix string, a *assoc.Assoc, batchSize int) error
	DeletePrefix(prefix string, pageRows int) error
	FetchAssoc(prefix string, pageRows int) (*assoc.Assoc, error)
	Close() error
}

// *Client implements Conn.
var _ Conn = (*Client)(nil)
