package tripled

// dial_test.go regression-tests the hardened transport: a server that
// cannot be reached — or accepts and then never answers — must surface
// a bounded, retryable error instead of hanging the caller (the bug
// class that used to wedge core.Pipeline setup on a blackholed store).

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// silentListener accepts connections and never reads or writes — the
// classic half-dead server. (The kernel completes handshakes from the
// backlog even if userspace never calls Accept, so "accepts nothing"
// at the protocol level means exactly this: connected, then silence.)
func silentListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			// Swallow the connection: no reads, no writes.
			_ = conn
		}
	}()
	return ln
}

func TestIOTimeoutAgainstSilentServer(t *testing.T) {
	ln := silentListener(t)
	c, err := Dial(ln.Addr().String(), WithIOTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	done := make(chan error, 1)
	go func() {
		_, err := c.Get("row", "col")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Get against a silent server succeeded")
		}
		if !Retryable(err) {
			t.Fatalf("Get error %v classified %v, want retryable", err, Classify(err))
		}
		var te *TransportError
		if !errors.As(err, &te) || !te.Timeout() {
			t.Fatalf("Get error %v, want a TransportError deadline", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Get against a silent server hung past the deadline")
	}
}

func TestDialTimeoutIsBounded(t *testing.T) {
	// 203.0.113.0/24 (TEST-NET-3) is reserved and unroutable: the SYN
	// goes nowhere, the historical net.Dial would sit in the OS connect
	// timeout (minutes). The environment may instead refuse or reject
	// instantly — any outcome is fine as long as the dial returns an
	// error within the configured bound.
	done := make(chan error, 1)
	go func() {
		c, err := Dial("203.0.113.1:9", WithDialTimeout(200*time.Millisecond))
		if err == nil {
			c.Close()
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Skip("environment routed TEST-NET-3; cannot exercise the timeout")
		}
		if !Retryable(err) {
			t.Fatalf("dial error %v classified %v, want retryable", err, Classify(err))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dial to an unroutable address hung past its deadline")
	}
}

func TestDialContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DialContext(ctx, "203.0.113.1:9"); err == nil {
		t.Fatal("dial with cancelled context succeeded")
	} else if !Retryable(err) {
		t.Fatalf("cancelled dial error %v classified %v, want retryable", err, Classify(err))
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{ErrNotFound, ClassNotFound},
		{ErrStaleRing, ClassStaleRing},
		{&TransportError{Op: "recv", Err: errConnClosed}, ClassRetryable},
		{io.EOF, ClassRetryable},
		{net.ErrClosed, ClassRetryable},
		{errors.New("tripled: server: bad batch count"), ClassFatal},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestRetryDoStopsOnFatal(t *testing.T) {
	calls := 0
	err := Retry{Attempts: 5, Base: time.Millisecond, Max: time.Millisecond}.Do(nil, func() error {
		calls++
		return errors.New("fatal protocol refusal")
	})
	if err == nil || calls != 1 {
		t.Fatalf("fatal error retried: calls=%d err=%v", calls, err)
	}

	calls = 0
	err = Retry{Attempts: 3, Base: time.Millisecond, Max: time.Millisecond}.Do(nil, func() error {
		calls++
		if calls < 3 {
			return &TransportError{Op: "recv", Err: errConnClosed}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("retryable path: calls=%d err=%v", calls, err)
	}
}

func TestBackoffBounded(t *testing.T) {
	r := Retry{Attempts: 8, Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	for attempt := 1; attempt <= 8; attempt++ {
		for i := 0; i < 50; i++ {
			d := r.Backoff(attempt, nil)
			if d < 0 || d > r.Max {
				t.Fatalf("attempt %d backoff %v outside [0, %v]", attempt, d, r.Max)
			}
			if attempt <= 1 && d != 0 {
				t.Fatalf("first attempt slept %v", d)
			}
		}
	}
}
