package tripled

// soak_test.go is the concurrency gate: N clients hammer one server
// with mixed traffic, then the final store state is diffed against a
// single-threaded replay of every client's mutations into a 1-stripe
// oracle store — the same Workers=1 oracle pattern the window engine
// uses. Run under -race (CI does) this doubles as the data-race sweep.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/assoc"
)

// soakOp is one scripted client operation. Mutations stay inside the
// owning client's keyspace so the interleaving cannot change the final
// state; reads roam everywhere.
type soakOp struct {
	kind string // "put", "del", "batch", "get", "row", "topdeg", "scan", "nnz"
	row  string
	col  string
	val  assoc.Value
	n    int // batch size / topdeg k
}

// soakScript builds a deterministic op sequence for one client.
func soakScript(id, ops int) []soakOp {
	rng := rand.New(rand.NewSource(int64(1000 + id)))
	mine := func() string { return fmt.Sprintf("c%d-r%d", id, rng.Intn(40)) }
	anyRow := func() string { return fmt.Sprintf("c%d-r%d", rng.Intn(8), rng.Intn(40)) }
	cols := []string{"packets", "class", "intent", "tags"}
	out := make([]soakOp, 0, ops)
	for i := 0; i < ops; i++ {
		switch r := rng.Intn(100); {
		case r < 35:
			out = append(out, soakOp{kind: "put", row: mine(), col: cols[rng.Intn(len(cols))], val: assoc.Num(float64(rng.Intn(1000)))})
		case r < 45:
			out = append(out, soakOp{kind: "del", row: mine(), col: cols[rng.Intn(len(cols))]})
		case r < 55:
			out = append(out, soakOp{kind: "batch", n: 1 + rng.Intn(20)})
		case r < 70:
			out = append(out, soakOp{kind: "get", row: anyRow(), col: cols[rng.Intn(len(cols))]})
		case r < 80:
			out = append(out, soakOp{kind: "row", row: anyRow()})
		case r < 90:
			out = append(out, soakOp{kind: "topdeg", n: 1 + rng.Intn(10)})
		case r < 95:
			out = append(out, soakOp{kind: "scan", row: anyRow()})
		default:
			out = append(out, soakOp{kind: "nnz"})
		}
	}
	return out
}

// batchCells expands a "batch" op deterministically from its position.
func batchCells(id, opIdx, n int) []Cell {
	rng := rand.New(rand.NewSource(int64(id)*1e6 + int64(opIdx)))
	cells := make([]Cell, 0, n)
	for i := 0; i < n; i++ {
		cells = append(cells, Cell{
			Row: fmt.Sprintf("c%d-r%d", id, rng.Intn(40)),
			Col: fmt.Sprintf("b%d", rng.Intn(6)),
			Val: assoc.Num(float64(rng.Intn(1000))),
		})
	}
	return cells
}

func TestConcurrentSoakMatchesOracle(t *testing.T) {
	const clients = 8
	ops := 600
	if testing.Short() {
		ops = 120
	}

	store := NewStoreStripes(8)
	srv, err := Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i, op := range soakScript(id, ops) {
				var err error
				switch op.kind {
				case "put":
					err = c.Put(op.row, op.col, op.val)
				case "del":
					if err = c.Delete(op.row, op.col); err == ErrNotFound {
						err = nil
					}
				case "batch":
					err = c.PutBatch(batchCells(id, i, op.n))
				case "get":
					if _, err = c.Get(op.row, op.col); err == ErrNotFound {
						err = nil
					}
				case "row":
					_, err = c.Row(op.row)
				case "topdeg":
					_, err = c.TopRowsByDegree(op.n)
				case "scan":
					_, err = c.ScanRows(op.row, "", 16, "")
				case "nnz":
					_, err = c.NNZ()
				}
				if err != nil {
					errs <- fmt.Errorf("client %d op %d (%s): %w", id, i, op.kind, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Single-threaded replay oracle: per-client mutation order is all
	// that matters, because mutation keyspaces are disjoint per client.
	oracle := NewStoreStripes(1)
	for id := 0; id < clients; id++ {
		for i, op := range soakScript(id, ops) {
			switch op.kind {
			case "put":
				oracle.Put(op.row, op.col, op.val)
			case "del":
				oracle.Delete(op.row, op.col)
			case "batch":
				for _, cell := range batchCells(id, i, op.n) {
					oracle.Put(cell.Row, cell.Col, cell.Val)
				}
			}
		}
	}

	verifyStoreInvariants(t, store)
	if got, want := store.NNZ(), oracle.NNZ(); got != want {
		t.Errorf("NNZ = %d, oracle %d", got, want)
	}
	got, want := store.ToAssoc(), oracle.ToAssoc()
	if got.NNZ() != want.NNZ() {
		t.Fatalf("exported NNZ = %d, oracle %d", got.NNZ(), want.NNZ())
	}
	diffs := 0
	want.Iterate(func(r, c string, v assoc.Value) bool {
		if gv, ok := got.Get(r, c); !ok || gv != v {
			diffs++
			if diffs <= 5 {
				t.Errorf("cell (%s,%s) = %v, oracle %v", r, c, gv, v)
			}
		}
		return true
	})
	if diffs > 0 {
		t.Fatalf("%d cells differ from the serial oracle", diffs)
	}
	if !reflect.DeepEqual(store.TopRowsByDegree(10), oracle.TopRowsByDegree(10)) {
		t.Error("degree-table top-k differs from the serial oracle")
	}
}
