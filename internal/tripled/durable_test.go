package tripled

// durable_test.go covers the WAL-backed server from inside the package:
// log-then-apply recovery round trips, snapshot compaction (including
// compaction racing live writers), the anti-entropy digest surface, and
// the key-validation boundary that keeps tab/newline out of the log
// format. The process-level SIGKILL tests live in crash_test.go; the
// frame-level truncation sweep lives in the wal package.

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/assoc"
	"repro/internal/tripled/wal"
)

// durableServe starts a WAL-backed server over a fresh store and
// returns server, client, and the live store for direct inspection.
func durableServe(t *testing.T, dir string, opts ...Option) (*Server, *Client, *Store) {
	t.Helper()
	store := NewStoreStripes(4)
	srv, err := Serve(store, "127.0.0.1:0", append([]Option{WithDataDir(dir)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c, store
}

// storeLog renders a store's canonical sorted persistence log — the
// byte-identical comparison form used across the durability tests.
func storeLog(t *testing.T, s *Store) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := s.WriteLog(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// recoverStore replays a data dir into a fresh store by starting (and
// stopping) a durable server on it, returning the recovered state.
func recoverStore(t *testing.T, dir string) (*Store, Recovery) {
	t.Helper()
	store := NewStoreStripes(4)
	srv, err := Serve(store, "127.0.0.1:0", WithDataDir(dir))
	if err != nil {
		t.Fatalf("recovery serve: %v", err)
	}
	rec := srv.Recovery()
	srv.Close()
	return store, rec
}

func TestDurableServerRecoversMutations(t *testing.T) {
	dir := t.TempDir()
	_, c, store := durableServe(t, dir)

	if err := c.Put("alpha", "x", assoc.Num(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.PutBatch([]Cell{
		{Row: "alpha", Col: "y", Val: assoc.Str("hello")},
		{Row: "beta", Col: "x", Val: assoc.Num(2)},
		{Row: "gamma", Col: "z", Val: assoc.Num(3)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("beta", "x"); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("alpha", "x", assoc.Num(9)); err != nil { // overwrite
		t.Fatal(err)
	}
	want := storeLog(t, store)

	got, rec := recoverStore(t, dir)
	if !rec.Enabled || rec.HadSnapshot || rec.TailRecords != 4 {
		t.Fatalf("recovery = %+v, want 4 tail records and no snapshot", rec)
	}
	if !bytes.Equal(storeLog(t, got), want) {
		t.Fatalf("recovered store differs from the live store:\n got %q\nwant %q",
			storeLog(t, got), want)
	}
}

func TestDurableCompactionSnapshotThenTail(t *testing.T) {
	dir := t.TempDir()
	srv, c, store := durableServe(t, dir, WithWALCompactBytes(-1))
	for i := 0; i < 50; i++ {
		if err := c.Put(fmt.Sprintf("r%02d", i), "c", assoc.Num(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, wal.SnapshotName)); err != nil {
		t.Fatalf("no snapshot after Compact: %v", err)
	}
	// Post-compaction mutations land in the fresh tail.
	if err := c.Put("post", "c", assoc.Num(99)); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("r00", "c"); err != nil {
		t.Fatal(err)
	}
	want := storeLog(t, store)

	got, rec := recoverStore(t, dir)
	if !rec.HadSnapshot || rec.SnapshotCells != 50 || rec.TailRecords != 2 {
		t.Fatalf("recovery = %+v, want snapshot of 50 cells + 2 tail records", rec)
	}
	if !bytes.Equal(storeLog(t, got), want) {
		t.Fatal("recovered store differs after snapshot + tail replay")
	}
}

// TestWALCompactionUnderConcurrentWriters is the durability race gate:
// snapshot-then-truncate compaction keeps firing (tiny auto threshold
// plus an explicit Compact loop) while concurrent clients ingest, and
// neither the live store nor a recovery from the data dir may lose or
// duplicate a single cell versus an unsnapshotted twin server fed the
// identical workload. Run under -race in CI.
func TestWALCompactionUnderConcurrentWriters(t *testing.T) {
	const writers = 6
	ops := 150
	if testing.Short() {
		ops = 40
	}
	dir := t.TempDir()
	srv, _, durStore := durableServe(t, dir, WithWALCompactBytes(2048))
	twin, _ := serveTest(t) // in-memory twin, same workload, no WAL

	var wg sync.WaitGroup
	errs := make(chan error, 2*writers)
	stopCompact := make(chan struct{})
	compactDone := make(chan error, 1)
	go func() { // explicit compactions racing the auto threshold
		for {
			select {
			case <-stopCompact:
				compactDone <- nil
				return
			default:
				if err := srv.Compact(); err != nil {
					compactDone <- fmt.Errorf("compact: %w", err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()
	for _, target := range []*Server{srv, twin} {
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(addr string, w int) {
				defer wg.Done()
				c, err := Dial(addr)
				if err != nil {
					errs <- err
					return
				}
				defer c.Close()
				// Per-writer disjoint keyspace: both servers converge to the
				// same state regardless of interleaving.
				for i := 0; i < ops; i++ {
					row := fmt.Sprintf("w%d-r%d", w, i%17)
					switch i % 5 {
					case 0:
						err = c.PutBatch([]Cell{
							{Row: row, Col: "a", Val: assoc.Num(float64(i))},
							{Row: row, Col: "b", Val: assoc.Str(fmt.Sprintf("v%d", i))},
						})
					case 3:
						if err = c.Delete(row, "b"); err == ErrNotFound {
							err = nil
						}
					default:
						err = c.Put(row, "a", assoc.Num(float64(i)))
					}
					if err != nil {
						errs <- fmt.Errorf("writer %d op %d: %w", w, i, err)
						return
					}
				}
			}(target.Addr(), w)
		}
	}
	wg.Wait()
	close(stopCompact)
	if err := <-compactDone; err != nil {
		t.Fatal(err)
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	twinLog := storeLog(t, twin.store)
	if !bytes.Equal(storeLog(t, durStore), twinLog) {
		t.Fatal("durable store diverged from the unsnapshotted twin")
	}
	srv.Close()
	got, _ := recoverStore(t, dir)
	if !bytes.Equal(storeLog(t, got), twinLog) {
		t.Fatal("recovery after compaction-under-load diverged from the twin")
	}
}

// --- key validation (log-format injection) ---

func TestStoreRejectsLogBreakingKeys(t *testing.T) {
	s := NewStore()
	for _, bad := range []string{"a\tb", "a\nb", "a\rb"} {
		var bk *BadKeyError
		if err := s.Put(bad, "c", assoc.Num(1)); !errors.As(err, &bk) {
			t.Errorf("Put(row=%q) = %v, want BadKeyError", bad, err)
		}
		if err := s.Put("r", bad, assoc.Num(1)); !errors.As(err, &bk) {
			t.Errorf("Put(col=%q) = %v, want BadKeyError", bad, err)
		}
	}
	// PutBatch is all-or-nothing: one bad cell poisons the whole batch.
	err := s.PutBatch([]Cell{
		{Row: "good", Col: "c", Val: assoc.Num(1)},
		{Row: "bad\nrow", Col: "c", Val: assoc.Num(2)},
	})
	var bk *BadKeyError
	if !errors.As(err, &bk) {
		t.Fatalf("PutBatch with bad key = %v, want BadKeyError", err)
	}
	if s.NNZ() != 0 {
		t.Fatalf("PutBatch applied %d cells despite the bad key", s.NNZ())
	}
	// A store that rejected the keys writes a log that replays cleanly.
	s.Put("ok", "c", assoc.Num(1))
	var b bytes.Buffer
	if err := s.WriteLog(&b); err != nil {
		t.Fatal(err)
	}
	if err := NewStore().ReplayLog(&b); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolRejectsCarriageReturnKey(t *testing.T) {
	// Tab-embedded keys already die on the protocol's arity check; a
	// carriage return used to pass the wire and corrupt the persistence
	// log. It must be refused at parse time, before WAL or store.
	srv, c := serveTest(t)
	if err := c.Put("evil\rrow", "c", assoc.Num(1)); Classify(err) != ClassFatal {
		t.Fatalf("PUT with \\r key: err=%v class=%v, want fatal", err, Classify(err))
	}
	// The refusal happens before apply: nothing was stored.
	if n, err := c.NNZ(); err != nil || n != 0 {
		t.Fatalf("NNZ = %d, %v after rejected PUT", n, err)
	}
	// Raw wire: a BATCH containing one bad key applies nothing.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "BATCH\t2\nPUT\tgood\tc\tn\t1\nPUT\tbad\rkey\tc\tn\t2\n")
	buf := make([]byte, 256)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _ := conn.Read(buf)
	if resp := string(buf[:n]); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("batch with bad key answered %q, want ERR", resp)
	}
	if n, err := c.NNZ(); err != nil || n != 0 {
		t.Fatalf("NNZ = %d, %v after rejected batch, want 0 (atomic)", n, err)
	}
}

// --- anti-entropy digests ---

func TestDigestsStripeLayoutIndependent(t *testing.T) {
	fill := func(s *Store) {
		for i := 0; i < 200; i++ {
			s.Put(fmt.Sprintf("row-%03d", i%40), fmt.Sprintf("c%d", i%7), assoc.Num(float64(i)))
		}
		s.Put("strv", "c", assoc.Str("text value"))
	}
	s1, s16 := NewStoreStripes(1), NewStoreStripes(16)
	fill(s1)
	fill(s16)
	const nb = 32
	if got, want := s16.BucketDigests(nb), s1.BucketDigests(nb); !bucketsEqual(got, want) {
		t.Fatal("bucket digests depend on stripe layout")
	}
	r1, r16 := s1.RowDigests(nb, -1), s16.RowDigests(nb, -1)
	if len(r1) != len(r16) {
		t.Fatalf("row digest counts differ: %d vs %d", len(r1), len(r16))
	}
	for i := range r1 {
		if r1[i] != r16[i] {
			t.Fatalf("row digest %d differs: %+v vs %+v", i, r1[i], r16[i])
		}
	}
	// Any single-cell difference must surface in the digests.
	s16.Put("row-007", "c0", assoc.Num(-1))
	if bucketsEqual(s16.BucketDigests(nb), s1.BucketDigests(nb)) {
		t.Fatal("digests blind to a changed cell value")
	}
	s1.Put("row-007", "c0", assoc.Num(-1)) // re-sync
	s16.Delete("strv", "c")
	if bucketsEqual(s16.BucketDigests(nb), s1.BucketDigests(nb)) {
		t.Fatal("digests blind to a deleted cell")
	}
}

func bucketsEqual(a, b []BucketDigest) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestResyncProtocolMatchesStore(t *testing.T) {
	srv, c := serveTest(t)
	store := srv.store
	for i := 0; i < 100; i++ {
		if err := c.Put(fmt.Sprintf("r%03d", i), fmt.Sprintf("c%d", i%3), assoc.Num(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	const nb = 16
	got, err := c.BucketDigests(nb)
	if err != nil {
		t.Fatal(err)
	}
	if !bucketsEqual(got, store.BucketDigests(nb)) {
		t.Fatal("RESYNC DIGEST differs from the store's own digests")
	}
	all, err := c.RowDigests(nb, -1)
	if err != nil {
		t.Fatal(err)
	}
	wantAll := store.RowDigests(nb, -1)
	if len(all) != len(wantAll) {
		t.Fatalf("RESYNC ROWS -1 returned %d rows, want %d", len(all), len(wantAll))
	}
	for i := range all {
		if all[i] != wantAll[i] {
			t.Fatalf("row digest %d: %+v vs %+v", i, all[i], wantAll[i])
		}
	}
	// Per-bucket queries partition the all-rows view exactly.
	total := 0
	for b := 0; b < nb; b++ {
		rows, err := c.RowDigests(nb, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, rd := range rows {
			if DigestBucket(rd.Row, nb) != b {
				t.Fatalf("row %q served from bucket %d, belongs to %d", rd.Row, b, DigestBucket(rd.Row, nb))
			}
		}
		total += len(rows)
	}
	if total != len(wantAll) {
		t.Fatalf("per-bucket rows sum to %d, want %d", total, len(wantAll))
	}
	// Malformed resync requests answer ERR, not a hung block.
	for _, bad := range []string{"RESYNC\tDIGEST\t0", "RESYNC\tDIGEST\tx", "RESYNC\tROWS\t16\t16", "RESYNC\tNOPE\t4"} {
		resp, err := c.roundTrip(bad)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(resp, "ERR") {
			t.Errorf("%q answered %q, want ERR", bad, resp)
		}
	}
}
