package tripled

// pipeline.go is the client-side ingest fast path: mutations are
// buffered into BATCH requests and multiple batches are kept in flight
// before their acks are read, so a month-table load pays one round trip
// per thousands of cells instead of one per cell. Batch bodies are
// assembled in a reusable byte buffer — no per-operation allocations.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/assoc"
)

// maxInflight bounds how many unacknowledged BATCH requests a Pipeline
// keeps outstanding. Acks are a few bytes each, so a small window is
// enough to hide the round trip without risking a TCP write/write
// deadlock on a full socket buffer.
const maxInflight = 32

// Pipeline batches and pipelines mutations on one client connection.
// Create with Client.StartPipeline; the client must not be used for
// other requests until Close (or Flush) returns. Not safe for
// concurrent use, like the client itself.
type Pipeline struct {
	c         *Client
	batchSize int
	body      []byte // assembled body lines of the batch being built
	count     int    // ops in body
	inflight  []int  // op counts of sent-but-unacked batches
	applied   int    // ops acknowledged so far
	err       error  // first transport/protocol error; sticky
}

// StartPipeline begins a batched, pipelined mutation stream with
// batchSize operations per BATCH request (values < 1 get a default).
func (c *Client) StartPipeline(batchSize int) *Pipeline {
	if batchSize < 1 {
		batchSize = 1024
	}
	return &Pipeline{c: c, batchSize: batchSize}
}

// appendValue renders the "<n|s>\t<value>" tail of a PUT line.
func appendValue(b []byte, v assoc.Value) []byte {
	if v.Numeric {
		b = append(b, 'n', '\t')
		return strconv.AppendFloat(b, v.Num, 'g', -1, 64)
	}
	b = append(b, 's', '\t')
	return append(b, v.Str...)
}

// Put queues a cell write. Errors surface on the next Flush/Close.
func (p *Pipeline) Put(row, col string, v assoc.Value) {
	if p.err != nil {
		return
	}
	if strings.ContainsAny(row, "\t\n") || strings.ContainsAny(col, "\t\n") ||
		strings.ContainsAny(v.Str, "\t\n") {
		p.err = fmt.Errorf("tripled: key or value contains tab or newline")
		return
	}
	p.body = append(p.body, "PUT\t"...)
	p.body = append(p.body, row...)
	p.body = append(p.body, '\t')
	p.body = append(p.body, col...)
	p.body = append(p.body, '\t')
	p.body = appendValue(p.body, v)
	p.body = append(p.body, '\n')
	p.bumped()
}

// Delete queues a cell delete (absent cells are not an error).
func (p *Pipeline) Delete(row, col string) {
	if p.err != nil {
		return
	}
	if strings.ContainsAny(row, "\t\n") || strings.ContainsAny(col, "\t\n") {
		p.err = fmt.Errorf("tripled: key contains tab or newline")
		return
	}
	p.body = append(p.body, "DEL\t"...)
	p.body = append(p.body, row...)
	p.body = append(p.body, '\t')
	p.body = append(p.body, col...)
	p.body = append(p.body, '\n')
	p.bumped()
}

func (p *Pipeline) bumped() {
	if p.count++; p.count >= p.batchSize {
		p.sendBatch()
	}
}

// sendBatch writes the assembled batch without waiting for its ack,
// draining old acks only when the in-flight window is full.
func (p *Pipeline) sendBatch() {
	if p.err != nil || p.count == 0 {
		return
	}
	if len(p.inflight) >= maxInflight {
		p.recvAck()
		if p.err != nil {
			return
		}
	}
	if _, err := fmt.Fprintf(p.c.w, "BATCH\t%d\n", p.count); err != nil {
		p.err = err
		return
	}
	if _, err := p.c.w.Write(p.body); err != nil {
		p.err = err
		return
	}
	p.inflight = append(p.inflight, p.count)
	p.body = p.body[:0]
	p.count = 0
}

// recvAck consumes the oldest outstanding BATCH ack.
func (p *Pipeline) recvAck() {
	n := p.inflight[0]
	p.inflight = p.inflight[1:]
	resp, err := p.c.recv()
	if err != nil {
		p.err = err
		return
	}
	if err := p.c.expectOK(resp); err != nil {
		p.err = err
		return
	}
	got, err := strconv.Atoi(strings.TrimPrefix(resp, "OK "))
	if err != nil || got != n {
		p.err = fmt.Errorf("tripled: batch ack %q for %d-op batch", resp, n)
		return
	}
	p.applied += n
}

// Flush sends any partial batch and waits for every outstanding ack.
// After an error it still drains the remaining acks (stopping only if
// the transport itself dies), so the connection stays in sync and the
// client is reusable, as Close promises.
func (p *Pipeline) Flush() error {
	p.sendBatch()
	for len(p.inflight) > 0 {
		if p.err == nil {
			p.recvAck()
			continue
		}
		p.inflight = p.inflight[1:]
		if _, err := p.c.recv(); err != nil {
			p.inflight = nil
		}
	}
	return p.err
}

// Applied returns how many operations the server has acknowledged.
func (p *Pipeline) Applied() int { return p.applied }

// Close flushes the pipeline and returns the first error seen. The
// underlying client stays open and usable afterwards.
func (p *Pipeline) Close() error { return p.Flush() }
