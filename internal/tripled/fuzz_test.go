package tripled

// fuzz_test.go throws arbitrary bytes at the wire protocol and the
// persistence log. The contract under attack: malformed input of any
// shape — embedded tabs, huge counts, truncated BATCH bodies, binary
// noise — yields ERR responses or a clean disconnect, never a panic, a
// hang, or a corrupted store.

import (
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/assoc"
)

// fuzzSession drives one server connection over an in-memory pipe with
// the fuzz input as the raw client byte stream, returning after the
// handler exits. The generous deadlines only bound runaway cases; the
// hang guard is the test timeout.
func fuzzSession(t *testing.T, store *Store, data []byte) {
	t.Helper()
	srv := newServer(store, WithIdleTimeout(2*time.Second), WithMaxBatch(1024))
	clientEnd, serverEnd := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer serverEnd.Close()
		srv.serveConn(serverEnd)
	}()
	// Drain responses so synchronous pipe writes never block the handler.
	go io.Copy(io.Discard, clientEnd)

	clientEnd.SetWriteDeadline(time.Now().Add(5 * time.Second))
	clientEnd.Write(data)
	clientEnd.Close()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("server hung on input %q", data)
	}
}

func FuzzServerProtocol(f *testing.F) {
	// Seed corpus: every documented verb, plus the documented failure
	// shapes (truncated BATCH bodies, huge counts, embedded tabs).
	seeds := []string{
		"PUT\tr\tc\tn\t3\n",
		"PUT\tr\tc\ts\thello world\n",
		"GET\tr\tc\n",
		"DEL\tr\tc\n",
		"BATCH\t2\nPUT\ta\tb\tn\t1\nDEL\ta\tb\n",
		"ROW\tr\n",
		"COL\tc\n",
		"RANGE\ta\tz\n",
		"SCAN\ta\tz\t10\t\n",
		"CELLS\ta\tz\t10\t\n",
		"TOPDEG\t5\n",
		"NNZ\n",
		"QUIT\n",
		"BATCH\t3\nPUT\ta\tb\tn\t1\n",          // truncated body
		"BATCH\t99999999999999999999\n",        // overflow count
		"BATCH\t1000000000\nPUT\ta\tb\tn\t1\n", // huge count
		"BATCH\t-5\n",                          // negative count
		"BATCH\t1\nGET\ta\tb\n",                // non-mutation in body
		"PUT\tr\tc\tq\tbadmarker\n",            // unknown value marker
		"PUT\tr\tc\tn\tnot-a-number\n",         // bad numeric
		"PUT\ttoo\tfew\n",                      // arity
		"GET\tr\tc\textra\ttabs\teverywhere\n", // arity
		"TOPDEG\t\t\n",                         // empty args
		"SCAN\t\t\tx\t\n",                      // non-numeric limit
		"\t\t\t\n",                             // tabs only
		"put\tlower\tcase\tn\t1\n",             // case folding
		"PUT\tr\tc\tn\t1\r\nGET\tr\tc\r\n",     // CRLF
		"BOGUS COMMAND\nNNZ\n",                 // junk then valid
		strings.Repeat("A", 4096) + "\n",       // long junk line
		"PUT\t" + strings.Repeat("k", 2000) + "\tc\tn\t1\n", // long key
		"\x00\x01\x02\xff\xfe\n",                            // binary noise
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		store := NewStoreStripes(4)
		fuzzSession(t, store, data)
		verifyStoreInvariants(t, store)
		// The store must stay fully usable after any session.
		store.Put("post", "fuzz", assoc.Num(1))
		if v, ok := store.Get("post", "fuzz"); !ok || v.Num != 1 {
			t.Fatal("store unusable after fuzzed session")
		}
	})
}

func FuzzReplayLog(f *testing.F) {
	f.Add([]byte("P\tr\tc\tn\t1.5\nP\tr\tc2\ts\thello\n"))
	f.Add([]byte("P\tr\tc\tq\tbad\n"))
	f.Add([]byte("X\tr\tc\tn\t1\n"))
	f.Add([]byte("P\tr\tc\n"))
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("P\tr\tc\tn\tNaN\n"))
	f.Add([]byte("\x00P\t\xff\t\t\t\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		store := NewStoreStripes(3)
		store.ReplayLog(strings.NewReader(string(data))) // error or nil, never panic
		verifyStoreInvariants(t, store)
	})
}
