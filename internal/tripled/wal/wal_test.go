package wal

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// replayAll reopens the log at dir and returns every recovered payload.
func replayAll(t *testing.T, dir string, opt Options) ([][]byte, RecoveryStats) {
	t.Helper()
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	var out [][]byte
	if err := l.Replay(func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out, l.Stats()
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncPolicy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d-%s", i, string(bytes.Repeat([]byte{byte(i)}, i))))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats := replayAll(t, dir, Options{})
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
	if stats.TornBytes != 0 || stats.DroppedSegments != 0 {
		t.Fatalf("clean log reported repair: %+v", stats)
	}
}

func TestAppendRejectsBadPayloads(t *testing.T) {
	l, err := Open(t.TempDir(), Options{MaxRecord: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if err := l.Append(make([]byte, 65)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestSegmentRotationAndReplayOrder(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, SyncPolicy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	n := 50
	for i := 0; i < n; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%04d-%s", i, bytes.Repeat([]byte{'x'}, 32)))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if len(segs) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	got, _ := replayAll(t, dir, Options{})
	if len(got) != n {
		t.Fatalf("recovered %d records across segments, want %d", len(got), n)
	}
	for i, p := range got {
		if want := fmt.Sprintf("rec-%04d-", i); string(p[:len(want)]) != want {
			t.Fatalf("record %d out of order: %q", i, p)
		}
	}
}

func TestCompactSnapshotThenTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncPolicy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(func(w io.Writer) error {
		_, err := io.WriteString(w, "SNAPSHOT-STATE\n")
		return err
	}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !l2.Stats().HadSnapshot {
		t.Fatal("snapshot not found after compaction")
	}
	snap, err := l2.Snapshot()
	if err != nil || snap == nil {
		t.Fatalf("snapshot open: %v", err)
	}
	b, _ := io.ReadAll(snap)
	snap.Close()
	if string(b) != "SNAPSHOT-STATE\n" {
		t.Fatalf("snapshot content %q", b)
	}
	var tail []string
	l2.Replay(func(p []byte) error { tail = append(tail, string(p)); return nil })
	if len(tail) != 3 || tail[0] != "post-0" || tail[2] != "post-2" {
		t.Fatalf("tail after compaction = %v, want the 3 post-compaction records only", tail)
	}
}

func TestCompactRemovesLeftoverTmp(t *testing.T) {
	dir := t.TempDir()
	// A crash between creating snapshot.tmp and the rename leaves the
	// tmp file behind; Open must discard it and not mistake it for
	// state.
	if err := os.WriteFile(filepath.Join(dir, snapshotTmp), []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := os.Stat(filepath.Join(dir, snapshotTmp)); !os.IsNotExist(err) {
		t.Fatal("snapshot.tmp survived Open")
	}
	if snap, _ := l.Snapshot(); snap != nil {
		snap.Close()
		t.Fatal("tmp file served as snapshot")
	}
}

// writeRecords writes n records through a fresh log and returns the
// payloads plus the concatenated segment bytes (single segment).
func writeRecords(t *testing.T, dir string, n int) [][]byte {
	t.Helper()
	l, err := Open(dir, Options{SyncPolicy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < n; i++ {
		p := []byte(fmt.Sprintf("payload-%02d-%s", i, bytes.Repeat([]byte{byte('a' + i%26)}, i%7)))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	return want
}

// TestTruncationSweep is the deterministic crash-point sweep: for every
// byte-prefix of the WAL file, recovery must yield exactly a prefix of
// the appended records — never a partial record, never a reordering,
// and never a refusal to open.
func TestTruncationSweep(t *testing.T) {
	master := t.TempDir()
	want := writeRecords(t, master, 20)
	segs, _ := filepath.Glob(filepath.Join(master, segPrefix+"*"))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d", len(segs))
	}
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Base(segs[0])
	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, name), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, stats := replayAll(t, dir, Options{})
		if len(got) > len(want) {
			t.Fatalf("cut %d: recovered %d records from %d appended", cut, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("cut %d: record %d = %q, want prefix record %q", cut, i, got[i], want[i])
			}
		}
		if stats.TailRecords != len(got) {
			t.Fatalf("cut %d: stats.TailRecords = %d, recovered %d", cut, stats.TailRecords, len(got))
		}
		// The recovered count must be monotone in the cut point only at
		// frame boundaries; at minimum, a full file recovers everything.
		if cut == len(full) && len(got) != len(want) {
			t.Fatalf("uncut file recovered %d of %d", len(got), len(want))
		}
	}
}

// TestTornTailDropsLaterSegments: a tear in segment k discards segments
// > k entirely, keeping the recovered stream a contiguous prefix.
func TestTornTailDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128, SyncPolicy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%04d-%s", i, bytes.Repeat([]byte{'y'}, 24)))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(segs))
	}
	// Corrupt one byte in the middle of the second segment.
	victim := segs[1]
	b, _ := os.ReadFile(victim)
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(victim, b, 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats := replayAll(t, dir, Options{})
	if stats.DroppedSegments == 0 {
		t.Fatalf("no segments dropped after mid-log corruption: %+v", stats)
	}
	for i, p := range got {
		if want := fmt.Sprintf("rec-%04d-", i); string(p[:len(want)]) != want {
			t.Fatalf("record %d not a contiguous prefix: %q", i, p)
		}
	}
	if len(got) >= 30 {
		t.Fatalf("corruption recovered all %d records", len(got))
	}
}

func TestIntervalPolicySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncPolicy: SyncInterval, SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// The ticker never fires; the write syscall alone must make the
	// records visible to a reopen (process-crash durability).
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("iv-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	got, _ := replayAll(t, dir, Options{})
	if len(got) != 5 {
		t.Fatalf("recovered %d of 5 interval-sync records", len(got))
	}
}

// FuzzWALRecovery is the truncation/corruption-point fuzz: whatever
// prefix or single-byte corruption of the log a crash leaves behind,
// recovery must yield exactly a prefix of the appended payloads.
func FuzzWALRecovery(f *testing.F) {
	f.Add(int64(1), 10, 100, -1)
	f.Add(int64(2), 5, 0, -1)
	f.Add(int64(3), 20, 57, 30)
	f.Add(int64(4), 1, 3, 0)
	f.Fuzz(func(t *testing.T, seed int64, nrec, cut, flip int) {
		if nrec < 1 || nrec > 64 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		master := t.TempDir()
		l, err := Open(master, Options{SyncPolicy: SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		var want [][]byte
		for i := 0; i < nrec; i++ {
			p := make([]byte, 1+rng.Intn(64))
			rng.Read(p)
			want = append(want, p)
			if err := l.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()
		segs, _ := filepath.Glob(filepath.Join(master, segPrefix+"*"))
		full, err := os.ReadFile(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		if cut < 0 || cut > len(full) {
			cut = len(full)
		}
		mangled := append([]byte(nil), full[:cut]...)
		if flip >= 0 && flip < len(mangled) {
			mangled[flip] ^= 1 + byte(rng.Intn(255))
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[0])), mangled, 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("recovery refused to open: %v", err)
		}
		defer l2.Close()
		i := 0
		err = l2.Replay(func(p []byte) error {
			// A flipped byte can only shorten the recovered prefix; it can
			// never fabricate a record that differs from the appended one
			// (CRC32C would have to collide, which the fuzzer won't find).
			if i >= len(want) || !bytes.Equal(p, want[i]) {
				t.Fatalf("record %d is not the appended prefix: got %q", i, p)
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// The log must stay appendable after any recovery.
		if err := l2.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}
