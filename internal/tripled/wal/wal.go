// Package wal is the durable write-ahead log behind a tripled server:
// segmented append-only files of length-prefixed, CRC32C-framed
// records, plus a snapshot file written by snapshot-then-truncate
// compaction. The package is payload-agnostic — records are opaque
// byte slices (the tripled server frames its mutations as protocol
// lines) — so it carries no store dependency and fuzzes in isolation.
//
// Frame format, little-endian:
//
//	[u32 payload length][u32 CRC32C(payload)][payload bytes]
//
// Recovery contract: Open scans every segment in order and truncates
// the log at the first bad frame — a partial header, a length of zero
// (zero-filled tail) or beyond MaxRecord, a short payload, or a CRC
// mismatch — discarding any later segments. It never refuses to start
// over a torn tail: the payloads that survive are always exactly a
// prefix of the payloads appended, which is what makes an atomic
// multi-mutation record (one BATCH, one frame) atomic across a crash.
//
// Sync policy: "always" fsyncs after every append (acknowledged means
// on stable storage); "interval" issues the write syscall per append
// (acknowledged means in the kernel — it survives SIGKILL but not
// power loss) and fsyncs on a background ticker.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Sync policies.
const (
	SyncAlways   = "always"
	SyncInterval = "interval"
)

// On-disk names. Segments sort lexically in append order.
const (
	SnapshotName = "snapshot"
	snapshotTmp  = "snapshot.tmp"
	segPrefix    = "segment-"
	segSuffix    = ".wal"
)

const frameHeaderLen = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Options tune a Log; zero values take the documented defaults.
type Options struct {
	SyncPolicy   string        // SyncAlways | SyncInterval; default SyncInterval
	SyncEvery    time.Duration // interval policy's fsync period; default 50ms
	SegmentBytes int64         // rotate the active segment past this size; default 4 MiB
	MaxRecord    int           // largest appendable payload; default 16 MiB
}

func (o Options) withDefaults() (Options, error) {
	switch o.SyncPolicy {
	case "":
		o.SyncPolicy = SyncInterval
	case SyncAlways, SyncInterval:
	default:
		return o, fmt.Errorf("wal: unknown sync policy %q (want %q or %q)",
			o.SyncPolicy, SyncAlways, SyncInterval)
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 50 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.MaxRecord <= 0 {
		o.MaxRecord = 16 << 20
	}
	return o, nil
}

// RecoveryStats describes what Open found and repaired.
type RecoveryStats struct {
	HadSnapshot     bool
	Segments        int   // segments present after repair
	TailRecords     int   // valid records across all segments
	TornBytes       int64 // bytes cut from the segment holding the first bad frame
	DroppedSegments int   // whole segments discarded past the torn one
}

// Log is a segmented write-ahead log rooted at one directory. Append,
// Sync, Compact and Close are safe for concurrent use; Replay and
// Snapshot are meant for the single-threaded recovery pass before
// serving starts.
type Log struct {
	dir string
	opt Options

	mu     sync.Mutex
	f      *os.File // active segment, opened for append
	seq    uint64   // active segment number
	segs   []uint64 // all live segment numbers, ascending
	size   int64    // active segment size
	dirty  bool     // interval policy: bytes written since last fsync
	closed bool

	stats RecoveryStats

	stop chan struct{} // interval syncer shutdown
	done chan struct{}
}

func segName(seq uint64) string { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
	return n, err == nil
}

// Open creates or recovers the log in dir (created if absent): leftover
// snapshot temp files are removed, every segment is scanned, the tail
// is truncated at the first bad frame, and later segments are dropped.
// The returned log is ready for Snapshot + Replay, then Append.
func Open(dir string, opt Options) (*Log, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	os.Remove(filepath.Join(dir, snapshotTmp)) // interrupted compaction
	l := &Log{dir: dir, opt: opt}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.Name() == SnapshotName {
			l.stats.HadSnapshot = true
		}
		if seq, ok := parseSegName(e.Name()); ok {
			l.segs = append(l.segs, seq)
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i] < l.segs[j] })

	if err := l.repairTail(); err != nil {
		return nil, err
	}
	if len(l.segs) == 0 {
		l.segs = []uint64{1}
	}
	l.seq = l.segs[len(l.segs)-1]
	f, err := os.OpenFile(l.segPath(l.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	l.f, l.size = f, st.Size()
	l.stats.Segments = len(l.segs)

	if opt.SyncPolicy == SyncInterval {
		l.stop, l.done = make(chan struct{}), make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

func (l *Log) segPath(seq uint64) string { return filepath.Join(l.dir, segName(seq)) }

// repairTail scans segments in order, truncating the first one holding
// a bad frame and deleting everything after it.
func (l *Log) repairTail() error {
	for k, seq := range l.segs {
		path := l.segPath(seq)
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		records := 0
		validOff, err := scanFrames(f, l.opt.MaxRecord, func([]byte) error {
			records++
			return nil
		})
		f.Close()
		if err != nil {
			return err
		}
		l.stats.TailRecords += records
		if validOff == st.Size() {
			continue // clean segment
		}
		// Torn tail: cut this segment at the last valid frame and drop
		// every later segment (they were written after the tear and
		// cannot be ordered against the lost records).
		l.stats.TornBytes = st.Size() - validOff
		if err := os.Truncate(path, validOff); err != nil {
			return err
		}
		for _, later := range l.segs[k+1:] {
			if err := os.Remove(l.segPath(later)); err != nil {
				return err
			}
			l.stats.DroppedSegments++
		}
		l.segs = l.segs[:k+1]
		break
	}
	return nil
}

// Stats reports what Open found.
func (l *Log) Stats() RecoveryStats { return l.stats }

// Dir returns the log's root directory.
func (l *Log) Dir() string { return l.dir }

// scanFrames decodes frames from r, calling fn for each valid payload,
// and returns the byte offset just past the last valid frame. A torn
// tail — partial header, zero or oversized length, short payload, CRC
// mismatch — ends the scan at that offset without error; only I/O
// failures and fn errors are errors.
func scanFrames(r io.Reader, maxRecord int, fn func(payload []byte) error) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var off int64
	var hdr [frameHeaderLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, nil
			}
			return off, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		// length 0 is never written (Append refuses empty payloads), so a
		// zero length is a zero-filled tail, not an empty record.
		if length == 0 || int64(length) > int64(maxRecord) {
			return off, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, nil
			}
			return off, err
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return off, nil
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, err
			}
		}
		off += int64(frameHeaderLen) + int64(length)
	}
}

// Snapshot opens the snapshot file for reading; (nil, nil) when no
// compaction has run yet.
func (l *Log) Snapshot() (io.ReadCloser, error) {
	f, err := os.Open(filepath.Join(l.dir, SnapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	return f, err
}

// Replay streams every record payload in append order. Meant for the
// recovery pass after Open (apply the snapshot first); concurrent
// appends during a replay are not part of the contract.
func (l *Log) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	segs := append([]uint64(nil), l.segs...)
	l.mu.Unlock()
	for _, seq := range segs {
		f, err := os.Open(l.segPath(seq))
		if err != nil {
			return err
		}
		_, err = scanFrames(f, l.opt.MaxRecord, fn)
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

// Append frames payload and writes it to the active segment, rotating
// first when the segment is past SegmentBytes. Under SyncAlways the
// record is fsynced before Append returns; under SyncInterval it has
// reached the kernel (crash-of-process safe) and the background ticker
// makes it power-loss safe within SyncEvery.
func (l *Log) Append(payload []byte) error {
	if len(payload) == 0 {
		return errors.New("wal: empty payload")
	}
	if len(payload) > l.opt.MaxRecord {
		return fmt.Errorf("wal: payload %d bytes exceeds max record %d", len(payload), l.opt.MaxRecord)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.size >= l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderLen:], payload)
	if _, err := l.f.Write(frame); err != nil {
		return err
	}
	l.size += int64(len(frame))
	if l.opt.SyncPolicy == SyncAlways {
		return l.f.Sync()
	}
	l.dirty = true
	return nil
}

// rotateLocked seals the active segment and opens the next one.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.seq++
	f, err := os.OpenFile(l.segPath(l.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f, l.size, l.dirty = f, 0, false
	l.segs = append(l.segs, l.seq)
	return l.syncDir()
}

// Sync forces an fsync of the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.dirty = false
	return l.f.Sync()
}

func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opt.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.dirty {
				l.f.Sync()
				l.dirty = false
			}
			l.mu.Unlock()
		}
	}
}

// Compact writes a snapshot of the caller's current state (write must
// render it — the tripled server passes Store.WriteLog) and truncates
// the log: snapshot.tmp is written, fsynced and renamed over the
// snapshot, the directory is fsynced, every segment is deleted, and a
// fresh active segment opens. The caller must guarantee the rendered
// state includes every record appended so far (the tripled server holds
// its durability mutex across log-append and store-apply, so rendering
// the store under that mutex does).
func (l *Log) Compact(write func(w io.Writer) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	tmpPath := filepath.Join(l.dir, snapshotTmp)
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(tmp, 1<<16)
	if err := write(bw); err == nil {
		err = bw.Flush()
	} else {
		err = fmt.Errorf("wal: snapshot render: %w", err)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, filepath.Join(l.dir, SnapshotName)); err != nil {
		return err
	}
	if err := l.syncDir(); err != nil {
		return err
	}
	// The snapshot is durable; the old segments are now redundant.
	if err := l.f.Close(); err != nil {
		return err
	}
	for _, seq := range l.segs {
		if err := os.Remove(l.segPath(seq)); err != nil {
			return err
		}
	}
	l.seq++
	f, err := os.OpenFile(l.segPath(l.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f, l.size, l.dirty = f, 0, false
	l.segs = []uint64{l.seq}
	l.stats.HadSnapshot = true
	return l.syncDir()
}

// syncDir fsyncs the log directory so renames and segment creations
// survive a crash of the machine, not just of the process.
func (l *Log) syncDir() error {
	d, err := os.Open(l.dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close stops the background syncer, fsyncs and closes the active
// segment. The log is unusable after.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.stop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
