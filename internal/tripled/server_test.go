package tripled

// server_test.go covers the production-shaping of the service: the
// BATCH and SCAN/CELLS verbs, batch atomicity, the idle-connection
// shutdown fix, and the per-connection read deadline.

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/assoc"
)

func serveTest(t *testing.T, opts ...Option) (*Server, *Client) {
	t.Helper()
	srv, err := Serve(NewStore(), "127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestBatchPutDelete(t *testing.T) {
	srv, c := serveTest(t)
	cells := make([]Cell, 0, 100)
	for i := 0; i < 100; i++ {
		cells = append(cells, Cell{Row: "r" + strconv.Itoa(i), Col: "packets", Val: assoc.Num(float64(i))})
	}
	if err := c.PutBatch(cells); err != nil {
		t.Fatal(err)
	}
	if nnz := srv.store.NNZ(); nnz != 100 {
		t.Fatalf("NNZ after batch = %d", nnz)
	}
	if v, _ := srv.store.Get("r42", "packets"); v.Num != 42 {
		t.Errorf("r42 = %v", v)
	}
	keys := make([]CellKey, 0, 50)
	for i := 0; i < 50; i++ {
		keys = append(keys, CellKey{Row: "r" + strconv.Itoa(i), Col: "packets"})
	}
	keys = append(keys, CellKey{Row: "absent", Col: "absent"}) // not an error
	if err := c.DeleteBatch(keys); err != nil {
		t.Fatal(err)
	}
	if nnz := srv.store.NNZ(); nnz != 50 {
		t.Fatalf("NNZ after delete batch = %d", nnz)
	}
	verifyStoreInvariants(t, srv.store)
}

// TestBatchOrderSameCell checks that a PUT/DEL/PUT sequence on one cell
// inside one BATCH applies in order.
func TestBatchOrderSameCell(t *testing.T) {
	srv, c := serveTest(t)
	p := c.StartPipeline(10)
	p.Put("r", "c", assoc.Num(1))
	p.Delete("r", "c")
	p.Put("r", "c", assoc.Num(3))
	p.Put("x", "c", assoc.Num(9))
	p.Delete("x", "c")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if v, ok := srv.store.Get("r", "c"); !ok || v.Num != 3 {
		t.Errorf("cell after PUT/DEL/PUT = %v, %v", v, ok)
	}
	if _, ok := srv.store.Get("x", "c"); ok {
		t.Error("cell after PUT/DEL still present")
	}
	if p.Applied() != 5 {
		t.Errorf("Applied = %d, want 5", p.Applied())
	}
}

// TestBatchAtomicOnMalformedBody: a malformed line anywhere in the body
// must reject the whole batch (one ERR, nothing applied) and leave the
// connection usable.
func TestBatchAtomicOnMalformedBody(t *testing.T) {
	srv, c := serveTest(t)
	fmt.Fprintf(c.w, "BATCH\t3\nPUT\ta\tb\tn\t1\nWAT\nPUT\tc\td\tn\t2\n")
	resp, err := c.recv()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp, "ERR ") {
		t.Fatalf("malformed batch got %q", resp)
	}
	if nnz := srv.store.NNZ(); nnz != 0 {
		t.Errorf("malformed batch applied %d cells", nnz)
	}
	// Connection still in sync.
	if err := c.Put("ok", "ok", assoc.Num(1)); err != nil {
		t.Fatalf("connection unusable after batch ERR: %v", err)
	}
}

// TestBatchOversizedCountDisconnects: a count over the server limit is
// refused with ERR and a clean disconnect, never a body read.
func TestBatchOversizedCountDisconnects(t *testing.T) {
	_, c := serveTest(t, WithMaxBatch(8))
	resp, err := c.roundTrip("BATCH\t1000000000")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp, "ERR ") {
		t.Fatalf("oversized batch got %q", resp)
	}
	if _, err := c.roundTrip("NNZ"); err == nil {
		t.Error("connection survived oversized batch count")
	}
}

func TestScanPaging(t *testing.T) {
	srv, c := serveTest(t)
	for i := 0; i < 25; i++ {
		srv.store.Put(fmt.Sprintf("r%02d", i), "c", assoc.Num(1))
	}
	var got []string
	cursor := ""
	pages := 0
	for {
		page, err := c.ScanRows("r00", "r20", 7, cursor)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page...)
		pages++
		if len(page) < 7 {
			break
		}
		cursor = page[len(page)-1]
	}
	if len(got) != 20 || pages != 3 {
		t.Fatalf("paged scan returned %d rows in %d pages", len(got), pages)
	}
	for i, r := range got {
		if want := fmt.Sprintf("r%02d", i); r != want {
			t.Fatalf("row %d = %q, want %q", i, r, want)
		}
	}
	all, err := c.ScanAllRows("", "", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 25 {
		t.Errorf("ScanAllRows = %d rows", len(all))
	}
}

func TestCellsExportRoundTrip(t *testing.T) {
	srv, c := serveTest(t)
	a := assoc.New()
	for i := 0; i < 40; i++ {
		row := "ip" + strconv.Itoa(i)
		a.Set(row, "packets", assoc.Num(float64(i)*1.5))
		a.Set(row, "class", assoc.Str("scanner"))
	}
	if err := c.PublishAssoc("t1/", a, 16); err != nil {
		t.Fatal(err)
	}
	if srv.store.NNZ() != a.NNZ() {
		t.Fatalf("published %d cells, store has %d", a.NNZ(), srv.store.NNZ())
	}
	back, err := c.FetchAssoc("t1/", 7)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != a.NNZ() {
		t.Fatalf("fetched %d cells, want %d", back.NNZ(), a.NNZ())
	}
	a.Iterate(func(r, col string, v assoc.Value) bool {
		if got, ok := back.Get(r, col); !ok || got != v {
			t.Errorf("cell (%s,%s) = %v, want %v", r, col, got, v)
		}
		return true
	})
}

// TestCloseWithIdleClient is the regression test for the shutdown hang:
// an idle connection that never sends anything must not block
// Server.Close.
func TestCloseWithIdleClient(t *testing.T) {
	srv, err := Serve(NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Server.Close hung on an idle client connection")
	}
}

// TestIdleTimeoutDropsConnection: the per-connection read deadline must
// disconnect silent clients on its own.
func TestIdleTimeoutDropsConnection(t *testing.T) {
	srv, err := Serve(NewStore(), "127.0.0.1:0", WithIdleTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection was not dropped")
	}
}

// TestPipelineRecoversAfterBatchErr: a server-side batch rejection
// mid-pipeline must surface as the Flush error while the remaining
// in-flight acks are drained, leaving the connection usable.
func TestPipelineRecoversAfterBatchErr(t *testing.T) {
	srv, c := serveTest(t)
	p := c.StartPipeline(2)
	// Forge a malformed op into the first batch (the public API cannot
	// produce one; this simulates a server that rejects a batch).
	p.body = append(p.body, "BOGUS\tx\n"...)
	p.count++
	p.Put("r1", "c", assoc.Num(1)) // completes batch 1 (rejected)
	for i := 0; i < 6; i++ {       // batches 2..4, all good
		p.Put(fmt.Sprintf("g%d", i), "c", assoc.Num(1))
	}
	err := p.Close()
	if err == nil || !strings.Contains(err.Error(), "batch line") {
		t.Fatalf("Close after rejected batch = %v", err)
	}
	if err := c.Put("after", "c", assoc.Num(2)); err != nil {
		t.Fatalf("connection desynced after batch rejection: %v", err)
	}
	if v, ok := srv.store.Get("after", "c"); !ok || v.Num != 2 {
		t.Errorf("post-error Put lost: %v, %v", v, ok)
	}
}

// TestPublishReplacesPrefix: republishing a table under the same prefix
// must replace the old cells, not union with them — the byte-identical
// artifact guarantee against a long-lived store depends on it.
func TestPublishReplacesPrefix(t *testing.T) {
	srv, c := serveTest(t)
	first := assoc.New()
	first.Set("r1", "packets", assoc.Num(1))
	first.Set("r2", "packets", assoc.Num(2))
	if err := c.PublishAssoc("t/", first, 8); err != nil {
		t.Fatal(err)
	}
	second := assoc.New()
	second.Set("r3", "packets", assoc.Num(3))
	if err := c.PublishAssoc("t/", second, 8); err != nil {
		t.Fatal(err)
	}
	back, err := c.FetchAssoc("t/", 4)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != 1 {
		t.Fatalf("republished prefix holds %d cells, want 1 (stale union?)", back.NNZ())
	}
	if v, ok := back.Get("r3", "packets"); !ok || v.Num != 3 {
		t.Errorf("republished table = %v, %v", v, ok)
	}
	if srv.store.NNZ() != 1 {
		t.Errorf("store NNZ = %d after replace", srv.store.NNZ())
	}
}

// TestPipelineRejectsTabs: tabs in keys or values would shift the wire
// fields of a BATCH body; the pipeline must refuse them client-side.
func TestPipelineRejectsTabs(t *testing.T) {
	_, c := serveTest(t)
	if err := c.PutBatch([]Cell{{Row: "a\tb", Col: "c", Val: assoc.Num(1)}}); err == nil {
		t.Error("tab row accepted")
	}
	if err := c.PutBatch([]Cell{{Row: "r", Col: "c", Val: assoc.Str("with\ttab")}}); err == nil {
		t.Error("tab value accepted")
	}
	// Rejection happens before anything is sent: the client stays usable.
	if err := c.Put("ok", "ok", assoc.Num(1)); err != nil {
		t.Fatalf("connection unusable after client-side rejection: %v", err)
	}
}
