package tripled

// durable.go wires the WAL under the server: with a DataDir configured,
// every mutation is framed as one WAL record and appended *before* the
// store applies it or the client sees an ack (log-then-apply), and
// Serve replays snapshot + tail before accepting connections. A whole
// BATCH is one record, so a crash can never surface a partial batch:
// either the frame is complete and the batch replays, or the torn
// frame is truncated and the batch never happened — exactly the
// atomicity the protocol promises.
//
// The durability mutex serializes append+apply so the WAL's record
// order equals the store's apply order; without it two same-cell
// writers could ack in one order and log in the other, and a replay
// would resurrect the loser. Batches amortize the serialization, which
// is what keeps the WAL(interval) ingest overhead inside its 1.5x
// benchmark gate.

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/tripled/wal"
)

// DefaultWALCompactBytes is the appended-bytes threshold past which a
// mutation triggers snapshot-then-truncate compaction.
const DefaultWALCompactBytes = 8 << 20

// WithDataDir makes the server durable: mutations append to a WAL in
// dir before acking, and Serve recovers snapshot + tail from dir
// before listening.
func WithDataDir(dir string) Option {
	return func(s *Server) { s.dataDir = dir }
}

// WithWALSyncPolicy selects wal.SyncAlways or wal.SyncInterval (the
// default) for the data dir's log.
func WithWALSyncPolicy(policy string) Option {
	return func(s *Server) { s.walOpts.SyncPolicy = policy }
}

// WithWALCompactBytes sets the auto-compaction threshold in appended
// WAL bytes; n <= 0 disables auto-compaction (Compact still works).
func WithWALCompactBytes(n int64) Option {
	return func(s *Server) { s.walCompactBytes = n }
}

// Recovery describes what a durable server replayed at startup.
type Recovery struct {
	Enabled         bool
	HadSnapshot     bool
	SnapshotCells   int           // cells loaded from the snapshot
	TailRecords     int           // WAL records replayed after the snapshot
	TailOps         int           // mutations inside those records
	TornBytes       int64         // bytes truncated from a torn tail
	DroppedSegments int           // segments dropped past the tear
	Wall            time.Duration // total recovery time
}

// Recovery reports the startup replay; zero-valued when the server has
// no data dir.
func (s *Server) Recovery() Recovery { return s.recovery }

// openWAL recovers the store from the data dir and leaves the WAL
// ready for appends. Called from Serve before the listener accepts.
func (s *Server) openWAL() error {
	start := time.Now()
	lg, err := wal.Open(s.dataDir, s.walOpts)
	if err != nil {
		return err
	}
	rec := Recovery{Enabled: true}
	snap, err := lg.Snapshot()
	if err != nil {
		lg.Close()
		return err
	}
	if snap != nil {
		rec.HadSnapshot = true
		before := s.store.NNZ()
		err := s.store.ReplayLog(snap)
		snap.Close()
		if err != nil {
			lg.Close()
			return fmt.Errorf("tripled: snapshot replay: %w", err)
		}
		rec.SnapshotCells = s.store.NNZ() - before
	}
	if err := lg.Replay(func(payload []byte) error {
		ops, err := decodeOps(payload)
		if err != nil {
			// CRC-valid but undecodable is a logic bug, not a torn tail;
			// refusing loudly beats replaying garbage.
			return err
		}
		rec.TailRecords++
		rec.TailOps += len(ops)
		_, err = applyRuns(s.store, ops)
		return err
	}); err != nil {
		lg.Close()
		return fmt.Errorf("tripled: wal replay: %w", err)
	}
	st := lg.Stats()
	rec.TornBytes, rec.DroppedSegments = st.TornBytes, st.DroppedSegments
	rec.Wall = time.Since(start)
	s.wal = lg
	s.recovery = rec
	return nil
}

// applyOps logs ops as one WAL record (when durable) and applies them
// to the store as stripe-grouped runs, returning how many DEL ops hit
// an existing cell. Append and apply happen under the durability
// mutex so WAL order is apply order.
func (s *Server) applyOps(ops []batchOp) (int, error) {
	if len(ops) == 0 {
		return 0, nil
	}
	if s.wal == nil {
		return applyRuns(s.store, ops)
	}
	s.durMu.Lock()
	defer s.durMu.Unlock()
	payload := encodeOps(ops)
	if err := s.wal.Append(payload); err != nil {
		return 0, fmt.Errorf("wal append: %w", err)
	}
	deleted, err := applyRuns(s.store, ops)
	if err != nil {
		return deleted, err
	}
	s.walBytes += int64(len(payload))
	if s.walCompactBytes > 0 && s.walBytes >= s.walCompactBytes {
		if err := s.compactLocked(); err != nil {
			return deleted, fmt.Errorf("wal compact: %w", err)
		}
	}
	return deleted, nil
}

// Compact forces snapshot-then-truncate compaction of a durable
// server's WAL; a no-op without a data dir.
func (s *Server) Compact() error {
	if s.wal == nil {
		return nil
	}
	s.durMu.Lock()
	defer s.durMu.Unlock()
	return s.compactLocked()
}

// compactLocked renders the store into the snapshot and truncates the
// log. Holding durMu, no mutation can slip between the WriteLog
// snapshot and the segment truncation, so the snapshot covers exactly
// the records dropped.
func (s *Server) compactLocked() error {
	if err := s.wal.Compact(func(w io.Writer) error { return s.store.WriteLog(w) }); err != nil {
		return err
	}
	s.walBytes = 0
	return nil
}

// applyRuns applies parsed ops as runs of consecutive PUTs/DELs (same
// splitting the BATCH handler always used, shared with WAL replay).
func applyRuns(store *Store, ops []batchOp) (int, error) {
	deleted := 0
	for start := 0; start < len(ops); {
		end := start
		for end < len(ops) && ops[end].del == ops[start].del {
			end++
		}
		if ops[start].del {
			keys := make([]CellKey, 0, end-start)
			for _, op := range ops[start:end] {
				keys = append(keys, CellKey{Row: op.cell.Row, Col: op.cell.Col})
			}
			deleted += store.DeleteBatch(keys)
		} else {
			cells := make([]Cell, 0, end-start)
			for _, op := range ops[start:end] {
				cells = append(cells, op.cell)
			}
			if err := store.PutBatch(cells); err != nil {
				return deleted, err
			}
		}
		start = end
	}
	return deleted, nil
}

// encodeOps frames ops as one WAL payload: the same tab-separated
// lines the persistence log uses ("P\trow\tcol\tmarker\tvalue" or
// "D\trow\tcol"), newline-joined. Keys were validated at parse time,
// so the line format cannot be corrupted from here.
func encodeOps(ops []batchOp) []byte {
	var b bytes.Buffer
	for _, op := range ops {
		if op.del {
			fmt.Fprintf(&b, "D\t%s\t%s\n", op.cell.Row, op.cell.Col)
			continue
		}
		marker := "s"
		if op.cell.Val.Numeric {
			marker = "n"
		}
		fmt.Fprintf(&b, "P\t%s\t%s\t%s\t%s\n", op.cell.Row, op.cell.Col, marker, op.cell.Val.String())
	}
	return b.Bytes()
}

// decodeOps parses a WAL payload back into ops.
func decodeOps(payload []byte) ([]batchOp, error) {
	lines := strings.Split(strings.TrimSuffix(string(payload), "\n"), "\n")
	ops := make([]batchOp, 0, len(lines))
	for _, line := range lines {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 5)
		switch parts[0] {
		case "P":
			if len(parts) != 5 {
				return nil, fmt.Errorf("tripled: wal record line %q malformed", line)
			}
			v, err := parseValue(parts[3], parts[4])
			if err != nil {
				return nil, fmt.Errorf("tripled: wal record line %q: %w", line, err)
			}
			ops = append(ops, batchOp{cell: Cell{Row: parts[1], Col: parts[2], Val: v}})
		case "D":
			if len(parts) != 3 {
				return nil, fmt.Errorf("tripled: wal record line %q malformed", line)
			}
			ops = append(ops, batchOp{del: true, cell: Cell{Row: parts[1], Col: parts[2]}})
		default:
			return nil, fmt.Errorf("tripled: wal record op %q unknown", parts[0])
		}
	}
	return ops, nil
}
