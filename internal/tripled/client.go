package tripled

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"repro/internal/assoc"
)

// Transport defaults. A dial always carries a deadline — a blackholed
// server (SYN silently dropped) must fail the connect attempt, not
// hang pipeline setup forever. Per-operation I/O deadlines default off
// for the plain client (a single server may legitimately take long on
// a huge scan); the cluster transport always sets one.
const (
	DefaultDialTimeout = 5 * time.Second
)

// DialOption configures a client connection.
type DialOption func(*dialConfig)

type dialConfig struct {
	dialTimeout time.Duration
	ioTimeout   time.Duration
}

// WithDialTimeout bounds the TCP connect. Zero or negative restores
// DefaultDialTimeout; there is deliberately no way to dial unbounded.
func WithDialTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.dialTimeout = d }
}

// WithIOTimeout arms a deadline on every read and write of the
// connection, so a server that accepts and then goes silent (blackhole,
// stalled disk, half-open connection) surfaces a retryable timeout
// instead of wedging the caller. Zero disables.
func WithIOTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.ioTimeout = d }
}

// deadlineConn arms per-call read/write deadlines on a net.Conn. The
// bufio layers above it never see deadlines directly — every Read and
// Write is freshly armed, so long multi-block responses stay alive as
// long as bytes keep flowing.
type deadlineConn struct {
	net.Conn
	timeout time.Duration
}

func (c *deadlineConn) Read(p []byte) (int, error) {
	if err := c.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *deadlineConn) Write(p []byte) (int, error) {
	if err := c.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// Client is a connection to a tripled server. Not safe for concurrent
// use; open one client per goroutine (the server handles each
// connection independently).
type Client struct {
	conn net.Conn
	r    *bufio.Scanner
	w    *bufio.Writer
}

// Dial connects to a tripled server with DefaultDialTimeout.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	return DialContext(context.Background(), addr, opts...)
}

// DialContext connects to a tripled server. The context bounds the
// connect attempt together with the (always-armed) dial timeout;
// cancel it to abandon a dial early.
func DialContext(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	cfg := dialConfig{dialTimeout: DefaultDialTimeout}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.dialTimeout <= 0 {
		cfg.dialTimeout = DefaultDialTimeout
	}
	d := net.Dialer{Timeout: cfg.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, &TransportError{Op: "dial", Err: err}
	}
	rw := conn
	if cfg.ioTimeout > 0 {
		rw = &deadlineConn{Conn: conn, timeout: cfg.ioTimeout}
	}
	sc := bufio.NewScanner(rw)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return &Client{conn: conn, r: sc, w: bufio.NewWriterSize(rw, 1<<16)}, nil
}

// Close sends QUIT and closes the connection.
func (c *Client) Close() error {
	// Best effort: the server closes on QUIT anyway.
	fmt.Fprintln(c.w, "QUIT")
	c.w.Flush()
	return c.conn.Close()
}

// send writes one request line without waiting for the response.
func (c *Client) send(line string) error {
	if strings.ContainsAny(line, "\n") {
		return fmt.Errorf("tripled: request contains newline")
	}
	if _, err := fmt.Fprintln(c.w, line); err != nil {
		return &TransportError{Op: "send", Err: err}
	}
	return nil
}

// recv flushes pending writes and reads one response line.
func (c *Client) recv() (string, error) {
	if err := c.w.Flush(); err != nil {
		return "", &TransportError{Op: "send", Err: err}
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return "", &TransportError{Op: "recv", Err: err}
		}
		return "", &TransportError{Op: "recv", Err: errConnClosed}
	}
	return c.r.Text(), nil
}

// errConnClosed is the orderly-EOF transport failure: the server hung
// up between responses.
var errConnClosed = fmt.Errorf("connection closed")

func (c *Client) roundTrip(line string) (string, error) {
	if err := c.send(line); err != nil {
		return "", err
	}
	return c.recv()
}

func (c *Client) expectOK(resp string) error {
	switch {
	case resp == "OK" || strings.HasPrefix(resp, "OK "):
		return nil
	case resp == "NF":
		return ErrNotFound
	case strings.HasPrefix(resp, "ERR "):
		return fmt.Errorf("tripled: server: %s", resp[4:])
	default:
		return fmt.Errorf("tripled: unexpected response %q", resp)
	}
}

// putLine renders a PUT request (or BATCH body) line.
func putLine(row, col string, v assoc.Value) string {
	marker := "s"
	if v.Numeric {
		marker = "n"
	}
	return fmt.Sprintf("PUT\t%s\t%s\t%s\t%s", row, col, marker, v.String())
}

// Put stores a value.
func (c *Client) Put(row, col string, v assoc.Value) error {
	resp, err := c.roundTrip(putLine(row, col, v))
	if err != nil {
		return err
	}
	return c.expectOK(resp)
}

// Get fetches a value; ErrNotFound when absent.
func (c *Client) Get(row, col string) (assoc.Value, error) {
	resp, err := c.roundTrip(fmt.Sprintf("GET\t%s\t%s", row, col))
	if err != nil {
		return assoc.Value{}, err
	}
	if err := c.expectOK(resp); err != nil {
		return assoc.Value{}, err
	}
	payload := strings.TrimPrefix(resp, "OK ")
	parts := strings.SplitN(payload, "\t", 2)
	if len(parts) != 2 {
		return assoc.Value{}, fmt.Errorf("tripled: malformed GET payload %q", payload)
	}
	return parseValue(parts[0], parts[1])
}

// Delete removes a cell; ErrNotFound when absent.
func (c *Client) Delete(row, col string) error {
	resp, err := c.roundTrip(fmt.Sprintf("DEL\t%s\t%s", row, col))
	if err != nil {
		return err
	}
	return c.expectOK(resp)
}

// PutBatch stores every cell in one BATCH round trip.
func (c *Client) PutBatch(cells []Cell) error {
	p := c.StartPipeline(len(cells))
	for _, cell := range cells {
		p.Put(cell.Row, cell.Col, cell.Val)
	}
	return p.Close()
}

// DeleteBatch removes every addressed cell in one BATCH round trip.
// Unlike Delete, absent cells are not an error.
func (c *Client) DeleteBatch(keys []CellKey) error {
	p := c.StartPipeline(len(keys))
	for _, k := range keys {
		p.Delete(k.Row, k.Col)
	}
	return p.Close()
}

// NNZ returns the server-side cell count.
func (c *Client) NNZ() (int, error) {
	resp, err := c.roundTrip("NNZ")
	if err != nil {
		return 0, err
	}
	if err := c.expectOK(resp); err != nil {
		return 0, err
	}
	return strconv.Atoi(strings.TrimPrefix(resp, "OK "))
}

func (c *Client) readBlock(first string) ([]string, error) {
	if strings.HasPrefix(first, "ERR ") {
		return nil, fmt.Errorf("tripled: server: %s", first[4:])
	}
	if !strings.HasPrefix(first, "BLOCK ") {
		return nil, fmt.Errorf("tripled: expected BLOCK, got %q", first)
	}
	n, err := strconv.Atoi(strings.TrimPrefix(first, "BLOCK "))
	if err != nil || n < 0 {
		return nil, fmt.Errorf("tripled: bad block header %q", first)
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if !c.r.Scan() {
			// The stream died mid-block: a transport event, retryable on
			// a fresh connection (reads are pure).
			return nil, &TransportError{Op: "recv",
				Err: fmt.Errorf("truncated block (%d of %d lines)", i, n)}
		}
		out = append(out, c.r.Text())
	}
	return out, nil
}

func (c *Client) cellsQuery(verb, key string) (map[string]assoc.Value, error) {
	resp, err := c.roundTrip(verb + "\t" + key)
	if err != nil {
		return nil, err
	}
	lines, err := c.readBlock(resp)
	if err != nil {
		return nil, err
	}
	out := make(map[string]assoc.Value, len(lines))
	for _, line := range lines {
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("tripled: malformed cell line %q", line)
		}
		v, err := parseValue(parts[1], parts[2])
		if err != nil {
			return nil, err
		}
		out[parts[0]] = v
	}
	return out, nil
}

// Row fetches all cells of a row.
func (c *Client) Row(row string) (map[string]assoc.Value, error) {
	return c.cellsQuery("ROW", row)
}

// Col fetches all cells of a column via the server's transpose index.
func (c *Client) Col(col string) (map[string]assoc.Value, error) {
	return c.cellsQuery("COL", col)
}

// RowRange lists row keys in [start, end); empty end means unbounded.
func (c *Client) RowRange(start, end string) ([]string, error) {
	resp, err := c.roundTrip(fmt.Sprintf("RANGE\t%s\t%s", start, end))
	if err != nil {
		return nil, err
	}
	return c.readBlock(resp)
}

// ScanRows fetches one page of the paged row scan: up to limit sorted
// row keys in [start, end) that are > cursor (cursor "" starts at
// start). A page shorter than limit ends the scan; otherwise pass the
// last key back as the cursor.
func (c *Client) ScanRows(start, end string, limit int, cursor string) ([]string, error) {
	resp, err := c.roundTrip(fmt.Sprintf("SCAN\t%s\t%s\t%d\t%s", start, end, limit, cursor))
	if err != nil {
		return nil, err
	}
	return c.readBlock(resp)
}

// ScanAllRows pages through the whole scan with pageSize-row SCAN
// requests and returns every row key in [start, end).
func (c *Client) ScanAllRows(start, end string, pageSize int) ([]string, error) {
	if pageSize < 1 {
		pageSize = 1024
	}
	var out []string
	cursor := ""
	for {
		page, err := c.ScanRows(start, end, pageSize, cursor)
		if err != nil {
			return nil, err
		}
		out = append(out, page...)
		if len(page) < pageSize {
			return out, nil
		}
		cursor = page[len(page)-1]
	}
}

// ScanCells fetches one page of the bulk cell export: every cell of up
// to limit rows, in (row, col) order, with the cursor being the last
// row key of the page. Unlike ScanRows, a short page does not prove
// the scan is done (rows deleted concurrently drop out of a page);
// loop until an empty page, as FetchAssoc does.
func (c *Client) ScanCells(start, end string, limit int, cursor string) ([]Cell, error) {
	resp, err := c.roundTrip(fmt.Sprintf("CELLS\t%s\t%s\t%d\t%s", start, end, limit, cursor))
	if err != nil {
		return nil, err
	}
	lines, err := c.readBlock(resp)
	if err != nil {
		return nil, err
	}
	out := make([]Cell, 0, len(lines))
	for _, line := range lines {
		parts := strings.SplitN(line, "\t", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("tripled: malformed cells line %q", line)
		}
		v, err := parseValue(parts[2], parts[3])
		if err != nil {
			return nil, err
		}
		out = append(out, Cell{Row: parts[0], Col: parts[1], Val: v})
	}
	return out, nil
}

// TopRowsByDegree queries the server's degree table.
func (c *Client) TopRowsByDegree(k int) ([]RowDegree, error) {
	resp, err := c.roundTrip(fmt.Sprintf("TOPDEG\t%d", k))
	if err != nil {
		return nil, err
	}
	lines, err := c.readBlock(resp)
	if err != nil {
		return nil, err
	}
	out := make([]RowDegree, 0, len(lines))
	for _, line := range lines {
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("tripled: malformed degree line %q", line)
		}
		d, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		out = append(out, RowDegree{Row: parts[0], Degree: d})
	}
	return out, nil
}

// BucketDigests fetches the server's nb anti-entropy bucket digests
// (RESYNC DIGEST). The result is indexed by bucket.
func (c *Client) BucketDigests(nb int) ([]BucketDigest, error) {
	resp, err := c.roundTrip(fmt.Sprintf("RESYNC\tDIGEST\t%d", nb))
	if err != nil {
		return nil, err
	}
	lines, err := c.readBlock(resp)
	if err != nil {
		return nil, err
	}
	out := make([]BucketDigest, nb)
	for _, line := range lines {
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("tripled: malformed digest line %q", line)
		}
		b, err1 := strconv.Atoi(parts[0])
		count, err2 := strconv.Atoi(parts[1])
		sum, err3 := strconv.ParseUint(parts[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || b < 0 || b >= nb {
			return nil, fmt.Errorf("tripled: malformed digest line %q", line)
		}
		out[b] = BucketDigest{Count: count, Sum: sum}
	}
	return out, nil
}

// RowDigests fetches per-row digests for one bucket of the nb-bucket
// partition (RESYNC ROWS); bucket -1 fetches every row.
func (c *Client) RowDigests(nb, bucket int) ([]RowDigestEntry, error) {
	resp, err := c.roundTrip(fmt.Sprintf("RESYNC\tROWS\t%d\t%d", nb, bucket))
	if err != nil {
		return nil, err
	}
	lines, err := c.readBlock(resp)
	if err != nil {
		return nil, err
	}
	out := make([]RowDigestEntry, 0, len(lines))
	for _, line := range lines {
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("tripled: malformed row digest line %q", line)
		}
		count, err1 := strconv.Atoi(parts[1])
		sum, err2 := strconv.ParseUint(parts[2], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("tripled: malformed row digest line %q", line)
		}
		out = append(out, RowDigestEntry{Row: parts[0], Count: count, Sum: sum})
	}
	return out, nil
}

// PrefixEnd returns the smallest string greater than every string with
// the given prefix, for use as a scan end bound. An empty prefix (or a
// prefix of only 0xff bytes) returns "", the unbounded end.
func PrefixEnd(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

// PublishAssoc writes every cell of a under the row-key prefix, using
// the pipelined batch path (batchSize cells per BATCH, acks collected
// asynchronously). It is how pipeline tables are published to the
// store: prefixes stand in for Accumulo's per-month tables, so any
// cells previously published under the prefix are deleted first — a
// republish replaces the table, it never unions with a stale one.
// Concurrent writers under one prefix are the caller's problem, as
// with an Accumulo table overwrite.
func (c *Client) PublishAssoc(prefix string, a *assoc.Assoc, batchSize int) error {
	if err := c.DeletePrefix(prefix, 512); err != nil {
		return err
	}
	p := c.StartPipeline(batchSize)
	a.Iterate(func(row, col string, v assoc.Value) bool {
		p.Put(prefix+row, col, v)
		return true
	})
	return p.Close()
}

// DeletePrefix removes every cell under the row-key prefix, paging with
// CELLS and batch-deleting until the prefix is empty.
func (c *Client) DeletePrefix(prefix string, pageRows int) error {
	if pageRows < 1 {
		pageRows = 512
	}
	for {
		cells, err := c.ScanCells(prefix, PrefixEnd(prefix), pageRows, "")
		if err != nil {
			return err
		}
		if len(cells) == 0 {
			return nil
		}
		keys := make([]CellKey, len(cells))
		for i, cell := range cells {
			keys[i] = CellKey{Row: cell.Row, Col: cell.Col}
		}
		if err := c.DeleteBatch(keys); err != nil {
			return err
		}
	}
}

// FetchAssoc reads every cell under the row-key prefix back into an
// associative array, paging with CELLS (pageRows rows per round trip)
// and stripping the prefix from the row keys. The scan ends at the
// first empty page: a short non-empty page only advances the cursor
// (concurrent deletes can legitimately shorten a page), so nothing is
// silently truncated.
func (c *Client) FetchAssoc(prefix string, pageRows int) (*assoc.Assoc, error) {
	if pageRows < 1 {
		pageRows = 512
	}
	out := assoc.New()
	cursor := ""
	for {
		cells, err := c.ScanCells(prefix, PrefixEnd(prefix), pageRows, cursor)
		if err != nil {
			return nil, err
		}
		if len(cells) == 0 {
			return out, nil
		}
		for _, cell := range cells {
			out.Set(strings.TrimPrefix(cell.Row, prefix), cell.Col, cell.Val)
		}
		cursor = cells[len(cells)-1].Row
	}
}
