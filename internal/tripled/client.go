package tripled

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"

	"repro/internal/assoc"
)

// Client is a connection to a tripled server. Not safe for concurrent
// use; open one client per goroutine (the server handles each
// connection independently).
type Client struct {
	conn net.Conn
	r    *bufio.Scanner
	w    *bufio.Writer
}

// Dial connects to a tripled server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return &Client{conn: conn, r: sc, w: bufio.NewWriter(conn)}, nil
}

// Close sends QUIT and closes the connection.
func (c *Client) Close() error {
	// Best effort: the server closes on QUIT anyway.
	fmt.Fprintln(c.w, "QUIT")
	c.w.Flush()
	return c.conn.Close()
}

func (c *Client) roundTrip(line string) (string, error) {
	if strings.ContainsAny(line, "\n") {
		return "", fmt.Errorf("tripled: request contains newline")
	}
	if _, err := fmt.Fprintln(c.w, line); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return "", err
		}
		return "", fmt.Errorf("tripled: connection closed")
	}
	return c.r.Text(), nil
}

func (c *Client) expectOK(resp string) error {
	switch {
	case resp == "OK" || strings.HasPrefix(resp, "OK "):
		return nil
	case resp == "NF":
		return ErrNotFound
	case strings.HasPrefix(resp, "ERR "):
		return fmt.Errorf("tripled: server: %s", resp[4:])
	default:
		return fmt.Errorf("tripled: unexpected response %q", resp)
	}
}

// Put stores a value.
func (c *Client) Put(row, col string, v assoc.Value) error {
	marker := "s"
	if v.Numeric {
		marker = "n"
	}
	resp, err := c.roundTrip(fmt.Sprintf("PUT\t%s\t%s\t%s\t%s", row, col, marker, v.String()))
	if err != nil {
		return err
	}
	return c.expectOK(resp)
}

// Get fetches a value; ErrNotFound when absent.
func (c *Client) Get(row, col string) (assoc.Value, error) {
	resp, err := c.roundTrip(fmt.Sprintf("GET\t%s\t%s", row, col))
	if err != nil {
		return assoc.Value{}, err
	}
	if err := c.expectOK(resp); err != nil {
		return assoc.Value{}, err
	}
	payload := strings.TrimPrefix(resp, "OK ")
	parts := strings.SplitN(payload, "\t", 2)
	if len(parts) != 2 {
		return assoc.Value{}, fmt.Errorf("tripled: malformed GET payload %q", payload)
	}
	return parseValue(parts[0], parts[1])
}

// Delete removes a cell; ErrNotFound when absent.
func (c *Client) Delete(row, col string) error {
	resp, err := c.roundTrip(fmt.Sprintf("DEL\t%s\t%s", row, col))
	if err != nil {
		return err
	}
	return c.expectOK(resp)
}

// NNZ returns the server-side cell count.
func (c *Client) NNZ() (int, error) {
	resp, err := c.roundTrip("NNZ")
	if err != nil {
		return 0, err
	}
	if err := c.expectOK(resp); err != nil {
		return 0, err
	}
	return strconv.Atoi(strings.TrimPrefix(resp, "OK "))
}

func (c *Client) readBlock(first string) ([]string, error) {
	if strings.HasPrefix(first, "ERR ") {
		return nil, fmt.Errorf("tripled: server: %s", first[4:])
	}
	if !strings.HasPrefix(first, "BLOCK ") {
		return nil, fmt.Errorf("tripled: expected BLOCK, got %q", first)
	}
	n, err := strconv.Atoi(strings.TrimPrefix(first, "BLOCK "))
	if err != nil || n < 0 {
		return nil, fmt.Errorf("tripled: bad block header %q", first)
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if !c.r.Scan() {
			return nil, fmt.Errorf("tripled: truncated block (%d of %d lines)", i, n)
		}
		out = append(out, c.r.Text())
	}
	return out, nil
}

func (c *Client) cellsQuery(verb, key string) (map[string]assoc.Value, error) {
	resp, err := c.roundTrip(verb + "\t" + key)
	if err != nil {
		return nil, err
	}
	lines, err := c.readBlock(resp)
	if err != nil {
		return nil, err
	}
	out := make(map[string]assoc.Value, len(lines))
	for _, line := range lines {
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("tripled: malformed cell line %q", line)
		}
		v, err := parseValue(parts[1], parts[2])
		if err != nil {
			return nil, err
		}
		out[parts[0]] = v
	}
	return out, nil
}

// Row fetches all cells of a row.
func (c *Client) Row(row string) (map[string]assoc.Value, error) {
	return c.cellsQuery("ROW", row)
}

// Col fetches all cells of a column via the server's transpose index.
func (c *Client) Col(col string) (map[string]assoc.Value, error) {
	return c.cellsQuery("COL", col)
}

// RowRange lists row keys in [start, end); empty end means unbounded.
func (c *Client) RowRange(start, end string) ([]string, error) {
	resp, err := c.roundTrip(fmt.Sprintf("RANGE\t%s\t%s", start, end))
	if err != nil {
		return nil, err
	}
	return c.readBlock(resp)
}

// TopRowsByDegree queries the server's degree table.
func (c *Client) TopRowsByDegree(k int) ([]RowDegree, error) {
	resp, err := c.roundTrip(fmt.Sprintf("TOPDEG\t%d", k))
	if err != nil {
		return nil, err
	}
	lines, err := c.readBlock(resp)
	if err != nil {
		return nil, err
	}
	out := make([]RowDegree, 0, len(lines))
	for _, line := range lines {
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("tripled: malformed degree line %q", line)
		}
		d, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		out = append(out, RowDegree{Row: parts[0], Degree: d})
	}
	return out, nil
}
