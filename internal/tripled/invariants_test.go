package tripled

import (
	"math"
	"testing"

	"repro/internal/assoc"
)

// valueEqual compares cell values, treating NaN as equal to itself
// (struct equality would report spurious mismatches for NaN numerics,
// which the wire protocol legitimately round-trips).
func valueEqual(a, b assoc.Value) bool {
	if a.Numeric != b.Numeric || a.Str != b.Str {
		return false
	}
	return a.Num == b.Num || (math.IsNaN(a.Num) && math.IsNaN(b.Num))
}

// verifyStoreInvariants cross-checks every stripe's redundant
// structures: row index vs transpose index, nnz vs cell count, empty
// map cleanup (degree tables are derived from these map sizes, so
// their correctness rides on the same checks), and row-to-stripe
// placement. The fuzz and soak
// tests call it to prove no input sequence can corrupt the store.
func verifyStoreInvariants(t *testing.T, s *Store) {
	t.Helper()
	total := 0
	for i, st := range s.stripes {
		st.mu.RLock()
		nnz := 0
		for row, r := range st.rows {
			if s.stripeFor(row) != st {
				t.Errorf("stripe %d holds row %q that hashes elsewhere", i, row)
			}
			if len(r) == 0 {
				t.Errorf("stripe %d keeps empty row %q", i, row)
			}
			for col, v := range r {
				nnz++
				if got, ok := st.cols[col][row]; !ok || !valueEqual(got, v) {
					t.Errorf("transpose missing cell (%q,%q)", row, col)
				}
			}
		}
		if nnz != st.nnz {
			t.Errorf("stripe %d nnz = %d, recount %d", i, st.nnz, nnz)
		}
		total += nnz
		colCount := make(map[string]int)
		for col, c := range st.cols {
			if len(c) == 0 {
				t.Errorf("stripe %d keeps empty column %q", i, col)
			}
			colCount[col] = len(c)
			for row, v := range c {
				if got, ok := st.rows[row][col]; !ok || !valueEqual(got, v) {
					t.Errorf("row index missing transposed cell (%q,%q)", row, col)
				}
			}
		}
		for col, n := range colCount {
			if d := len(st.cols[col]); d != n {
				t.Errorf("derived colDeg[%q] = %d, want %d", col, d, n)
			}
		}
		st.mu.RUnlock()
	}
	if got := s.NNZ(); got != total {
		t.Errorf("NNZ = %d, recount %d", got, total)
	}
}
