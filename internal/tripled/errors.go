package tripled

// errors.go is the typed error taxonomy of the hardened transport.
// Every error a client operation can surface falls into one of four
// classes, so callers (the cluster client above all) can decide
// mechanically whether to retry, fail over, or give up:
//
//	ClassRetryable  transport-level: dial failures, deadlines, resets,
//	                truncated responses. The request may not have been
//	                applied; retrying on the same or another replica is
//	                safe for the idempotent protocol (PUT/DEL/BATCH
//	                replays converge, reads are pure).
//	ClassFatal      protocol-level: the server answered and refused
//	                (ERR ...), or the response was well-framed nonsense.
//	                Retrying the same bytes yields the same refusal.
//	ClassNotFound   the authoritative "cell absent" answer (NF).
//	ClassStaleRing  cluster-level: the caller's ring view no longer
//	                matches a live quorum (more nodes unreachable than
//	                the replication factor tolerates). Retrying on this
//	                client cannot help; the cluster must be repaired or
//	                the client rebuilt against the new membership.

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"
)

// Class is the retry-relevant classification of a client error.
type Class int

const (
	// ClassFatal is the default for errors that will not heal on retry.
	ClassFatal Class = iota
	ClassRetryable
	ClassNotFound
	ClassStaleRing
)

func (c Class) String() string {
	switch c {
	case ClassRetryable:
		return "retryable"
	case ClassNotFound:
		return "not-found"
	case ClassStaleRing:
		return "stale-ring"
	default:
		return "fatal"
	}
}

// ErrStaleRing marks cluster operations whose ring view lost its
// quorum; see ClassStaleRing. Defined here, beside the taxonomy, so
// Classify needs no knowledge of the cluster package.
var ErrStaleRing = errors.New("tripled: ring view stale (live nodes below quorum)")

// BadKeyError reports a row or column key that would corrupt the
// line-oriented formats the store round-trips through — the wire
// protocol, WriteLog/ReplayLog, and the WAL all frame cells as
// tab-separated lines, so a key holding a tab, newline, or carriage
// return would silently shift fields on replay. It classifies fatal:
// the same key is refused on every retry.
type BadKeyError struct{ Key string }

func (e *BadKeyError) Error() string {
	return fmt.Sprintf("tripled: key %q contains a tab, newline, or carriage return", e.Key)
}

// ValidateKey rejects keys that cannot survive the line formats.
func ValidateKey(k string) error {
	for i := 0; i < len(k); i++ {
		switch k[i] {
		case '\t', '\n', '\r':
			return &BadKeyError{Key: k}
		}
	}
	return nil
}

// TransportError wraps any error produced by the connection itself —
// dialing, deadlines, writes into a dead socket, reads of a truncated
// stream. It classifies as retryable.
type TransportError struct {
	Op  string // "dial", "send", "recv"
	Err error
}

func (e *TransportError) Error() string { return fmt.Sprintf("tripled: %s: %v", e.Op, e.Err) }
func (e *TransportError) Unwrap() error { return e.Err }

// Timeout reports whether the underlying failure was a deadline.
func (e *TransportError) Timeout() bool {
	var ne net.Error
	return errors.As(e.Err, &ne) && ne.Timeout()
}

// Classify maps any error surfaced by a Client (or the cluster client
// built on it) to its Class.
func Classify(err error) Class {
	switch {
	case err == nil:
		return ClassFatal // callers should not classify success
	case errors.Is(err, ErrNotFound):
		return ClassNotFound
	case errors.Is(err, ErrStaleRing):
		return ClassStaleRing
	}
	var te *TransportError
	if errors.As(err, &te) {
		return ClassRetryable
	}
	// Raw transport failures that escaped wrapping (historical call
	// sites, os errors bubbling through helpers) still classify by
	// shape rather than defaulting to fatal.
	var ne net.Error
	if errors.As(err, &ne) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return ClassRetryable
	}
	return ClassFatal
}

// Retryable reports whether err is worth retrying (on this connection
// after a redial, or on another replica).
func Retryable(err error) bool { return Classify(err) == ClassRetryable }

// Retry is a bounded, jittered exponential backoff policy: attempt i
// (0-based) sleeps a uniformly random duration in [0, min(Max,
// Base<<i)] before running — AWS-style "full jitter", which spreads
// synchronized retry storms without ever waiting longer than Max.
type Retry struct {
	Attempts int           // total tries, including the first (>= 1)
	Base     time.Duration // backoff scale for attempt 1
	Max      time.Duration // backoff ceiling
}

// DefaultRetry is the cluster transport's policy: three tries spread
// over at most ~worst-case 25+50 ms of sleep — enough to ride out a
// server restart's accept gap without turning a dead node into a
// multi-second stall per operation.
func DefaultRetry() Retry {
	return Retry{Attempts: 3, Base: 25 * time.Millisecond, Max: 250 * time.Millisecond}
}

// norm returns the policy with zero values defaulted.
func (r Retry) norm() Retry {
	d := DefaultRetry()
	if r.Attempts < 1 {
		r.Attempts = d.Attempts
	}
	if r.Base <= 0 {
		r.Base = d.Base
	}
	if r.Max <= 0 {
		r.Max = d.Max
	}
	return r
}

// Backoff returns the sleep before attempt (1-based attempt numbers;
// attempt 0 or 1 never sleeps). rng may be nil for the global source.
func (r Retry) Backoff(attempt int, rng *rand.Rand) time.Duration {
	if attempt <= 1 {
		return 0
	}
	r = r.norm()
	ceil := r.Base << (attempt - 2)
	if ceil > r.Max || ceil <= 0 {
		ceil = r.Max
	}
	if rng == nil {
		return time.Duration(rand.Int63n(int64(ceil) + 1))
	}
	return time.Duration(rng.Int63n(int64(ceil) + 1))
}

// Do runs op up to r.Attempts times, sleeping the jittered backoff
// between tries, until op succeeds or returns a non-retryable error.
// The last error is returned.
func (r Retry) Do(rng *rand.Rand, op func() error) error {
	r = r.norm()
	var err error
	for attempt := 1; attempt <= r.Attempts; attempt++ {
		if d := r.Backoff(attempt, rng); d > 0 {
			time.Sleep(d)
		}
		if err = op(); err == nil || !Retryable(err) {
			return err
		}
	}
	return err
}
