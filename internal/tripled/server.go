package tripled

// server.go exposes a Store over a line-oriented TCP protocol, the role
// the Accumulo service plays in the paper's deployment. The protocol is
// deliberately simple — one request line, one response line (or a
// counted block) — so a client in any language can drive it.
//
// Requests (tab-separated):
//
//	PUT <row> <col> <n|s> <value>
//	GET <row> <col>
//	DEL <row> <col>
//	ROW <row>              -> block of col/value pairs
//	COL <col>              -> block of row/value pairs
//	RANGE <start> <end>    -> block of row keys ("" end = unbounded)
//	TOPDEG <k>             -> block of row/degree pairs
//	NNZ
//	QUIT
//
// Responses: "OK", "OK <payload>", "NF" (not found), "ERR <msg>", or
// "BLOCK <n>" followed by n data lines.

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/assoc"
)

// Server serves a Store over TCP.
type Server struct {
	store *Store
	ln    net.Listener
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") and serving
// connections until Close.
func Serve(store *Store, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{store: store, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if done := s.handle(w, line); done {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// handle processes one request line; returns true when the connection
// should close.
func (s *Server) handle(w *bufio.Writer, line string) bool {
	parts := strings.Split(line, "\t")
	cmd := strings.ToUpper(parts[0])
	switch cmd {
	case "QUIT":
		fmt.Fprintln(w, "OK")
		return true
	case "NNZ":
		fmt.Fprintf(w, "OK %d\n", s.store.NNZ())
	case "PUT":
		if len(parts) != 5 {
			fmt.Fprintln(w, "ERR PUT wants 4 arguments")
			return false
		}
		v, err := parseValue(parts[3], parts[4])
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		s.store.Put(parts[1], parts[2], v)
		fmt.Fprintln(w, "OK")
	case "GET":
		if len(parts) != 3 {
			fmt.Fprintln(w, "ERR GET wants 2 arguments")
			return false
		}
		v, ok := s.store.Get(parts[1], parts[2])
		if !ok {
			fmt.Fprintln(w, "NF")
			return false
		}
		marker := "s"
		if v.Numeric {
			marker = "n"
		}
		fmt.Fprintf(w, "OK %s\t%s\n", marker, v.String())
	case "DEL":
		if len(parts) != 3 {
			fmt.Fprintln(w, "ERR DEL wants 2 arguments")
			return false
		}
		if s.store.Delete(parts[1], parts[2]) {
			fmt.Fprintln(w, "OK")
		} else {
			fmt.Fprintln(w, "NF")
		}
	case "ROW", "COL":
		if len(parts) != 2 {
			fmt.Fprintf(w, "ERR %s wants 1 argument\n", cmd)
			return false
		}
		var cells map[string]assoc.Value
		if cmd == "ROW" {
			cells = s.store.Row(parts[1])
		} else {
			cells = s.store.Col(parts[1])
		}
		keys := make([]string, 0, len(cells))
		for k := range cells {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "BLOCK %d\n", len(keys))
		for _, k := range keys {
			v := cells[k]
			marker := "s"
			if v.Numeric {
				marker = "n"
			}
			fmt.Fprintf(w, "%s\t%s\t%s\n", k, marker, v.String())
		}
	case "RANGE":
		if len(parts) != 3 {
			fmt.Fprintln(w, "ERR RANGE wants 2 arguments")
			return false
		}
		rows := s.store.RowRange(parts[1], parts[2])
		fmt.Fprintf(w, "BLOCK %d\n", len(rows))
		for _, r := range rows {
			fmt.Fprintln(w, r)
		}
	case "TOPDEG":
		if len(parts) != 2 {
			fmt.Fprintln(w, "ERR TOPDEG wants 1 argument")
			return false
		}
		k, err := strconv.Atoi(parts[1])
		if err != nil || k < 0 {
			fmt.Fprintln(w, "ERR bad k")
			return false
		}
		top := s.store.TopRowsByDegree(k)
		fmt.Fprintf(w, "BLOCK %d\n", len(top))
		for _, rd := range top {
			fmt.Fprintf(w, "%s\t%d\n", rd.Row, rd.Degree)
		}
	default:
		fmt.Fprintf(w, "ERR unknown command %q\n", cmd)
	}
	return false
}

// ErrNotFound is returned by client lookups of absent cells.
var ErrNotFound = errors.New("tripled: not found")
