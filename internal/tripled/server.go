package tripled

// server.go exposes a Store over a line-oriented TCP protocol, the role
// the Accumulo service plays in the paper's deployment. The protocol is
// deliberately simple — one request line, one response line (or a
// counted block) — so a client in any language can drive it.
//
// Requests (tab-separated):
//
//	PUT <row> <col> <n|s> <value>
//	GET <row> <col>
//	DEL <row> <col>
//	BATCH <n>              -> followed by n body lines, each
//	                          "PUT <row> <col> <n|s> <value>" or
//	                          "DEL <row> <col>"; one "OK <n>" ack
//	ROW <row>              -> block of col/value pairs
//	COL <col>              -> block of row/value pairs
//	RANGE <start> <end>    -> block of row keys ("" end = unbounded)
//	SCAN <start> <end> <limit> <cursor>
//	                       -> block of up to <limit> row keys > cursor;
//	                          fewer than <limit> keys means the scan is
//	                          done, else resume with the last key
//	CELLS <start> <end> <limit> <cursor>
//	                       -> like SCAN but the block holds every cell
//	                          of the page's rows as row/col/type/value
//	                          lines (bulk export, one trip per page)
//	TOPDEG <k>             -> block of row/degree pairs
//	NNZ
//	QUIT
//
// Responses: "OK", "OK <payload>", "NF" (not found), "ERR <msg>", or
// "BLOCK <n>" followed by n data lines. Malformed requests that leave
// the stream position unambiguous get an ERR and the connection lives
// on; requests that would desynchronize the stream (oversized or
// truncated BATCH bodies) close it.

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/assoc"
	"repro/internal/tripled/wal"
)

// Defaults for the tunable server limits.
const (
	DefaultIdleTimeout = 2 * time.Minute
	DefaultMaxBatch    = 1 << 16
)

// Option configures a Server.
type Option func(*Server)

// WithIdleTimeout sets how long a connection may sit idle between
// requests (and between BATCH body lines) before the server drops it.
// Zero or negative disables the deadline.
func WithIdleTimeout(d time.Duration) Option {
	return func(s *Server) { s.idleTimeout = d }
}

// WithMaxBatch caps the declared count of a BATCH request; larger
// counts are refused and the connection closed.
func WithMaxBatch(n int) Option {
	return func(s *Server) { s.maxBatch = n }
}

// Server serves a Store over TCP.
type Server struct {
	store       *Store
	ln          net.Listener
	wg          sync.WaitGroup
	idleTimeout time.Duration
	maxBatch    int

	// Durability (see durable.go). wal is nil without a data dir.
	dataDir         string
	walOpts         wal.Options
	walCompactBytes int64
	wal             *wal.Log
	recovery        Recovery
	durMu           sync.Mutex // serializes WAL append + store apply
	walBytes        int64      // appended since last compaction; under durMu

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func newServer(store *Store, opts ...Option) *Server {
	s := &Server{
		store:           store,
		idleTimeout:     DefaultIdleTimeout,
		maxBatch:        DefaultMaxBatch,
		walCompactBytes: DefaultWALCompactBytes,
		conns:           make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") and serving
// connections until Close. With a data dir configured the store is
// recovered from snapshot + WAL tail before the first connection is
// accepted, so a client can never observe pre-recovery state.
func Serve(store *Store, addr string, opts ...Option) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := newServer(store, opts...)
	s.ln = ln
	if s.dataDir != "" {
		if err := s.openWAL(); err != nil {
			ln.Close()
			return nil, err
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, closes every live connection (so idle
// clients cannot wedge shutdown), waits for the handlers to drain, and
// syncs and closes the WAL.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	if s.wal != nil {
		if werr := s.wal.Close(); err == nil {
			err = werr
		}
	}
	return err
}

// track registers a live connection; it reports false (and closes the
// conn) when the server is already shutting down.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		conn.Close()
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	w := bufio.NewWriterSize(conn, 1<<16)
	defer w.Flush()
	for s.scanLine(conn, sc) {
		line := sc.Text()
		if line == "" {
			continue
		}
		if done := s.handle(conn, sc, w, line); done {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// scanLine reads one line with the idle deadline armed, so a silent
// client cannot pin the handler (and hence Close) forever.
func (s *Server) scanLine(conn net.Conn, sc *bufio.Scanner) bool {
	if s.idleTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.idleTimeout))
	}
	return sc.Scan()
}

// handle processes one request line; returns true when the connection
// should close.
func (s *Server) handle(conn net.Conn, sc *bufio.Scanner, w *bufio.Writer, line string) bool {
	parts := strings.Split(line, "\t")
	cmd := strings.ToUpper(parts[0])
	switch cmd {
	case "QUIT":
		fmt.Fprintln(w, "OK")
		return true
	case "NNZ":
		fmt.Fprintf(w, "OK %d\n", s.store.NNZ())
	case "PUT":
		cell, err := parseMutation(parts)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		if _, err := s.applyOps([]batchOp{{cell: cell}}); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		fmt.Fprintln(w, "OK")
	case "GET":
		if len(parts) != 3 {
			fmt.Fprintln(w, "ERR GET wants 2 arguments")
			return false
		}
		v, ok := s.store.Get(parts[1], parts[2])
		if !ok {
			fmt.Fprintln(w, "NF")
			return false
		}
		marker := "s"
		if v.Numeric {
			marker = "n"
		}
		fmt.Fprintf(w, "OK %s\t%s\n", marker, v.String())
	case "DEL":
		if len(parts) != 3 {
			fmt.Fprintln(w, "ERR DEL wants 2 arguments")
			return false
		}
		deleted, err := s.applyOps([]batchOp{{del: true, cell: Cell{Row: parts[1], Col: parts[2]}}})
		switch {
		case err != nil:
			fmt.Fprintf(w, "ERR %v\n", err)
		case deleted > 0:
			fmt.Fprintln(w, "OK")
		default:
			fmt.Fprintln(w, "NF")
		}
	case "BATCH":
		return s.handleBatch(conn, sc, w, parts)
	case "ROW", "COL":
		if len(parts) != 2 {
			fmt.Fprintf(w, "ERR %s wants 1 argument\n", cmd)
			return false
		}
		var cells map[string]assoc.Value
		if cmd == "ROW" {
			cells = s.store.Row(parts[1])
		} else {
			cells = s.store.Col(parts[1])
		}
		keys := make([]string, 0, len(cells))
		for k := range cells {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "BLOCK %d\n", len(keys))
		for _, k := range keys {
			v := cells[k]
			marker := "s"
			if v.Numeric {
				marker = "n"
			}
			fmt.Fprintf(w, "%s\t%s\t%s\n", k, marker, v.String())
		}
	case "RANGE":
		if len(parts) != 3 {
			fmt.Fprintln(w, "ERR RANGE wants 2 arguments")
			return false
		}
		rows := s.store.RowRange(parts[1], parts[2])
		fmt.Fprintf(w, "BLOCK %d\n", len(rows))
		for _, r := range rows {
			fmt.Fprintln(w, r)
		}
	case "SCAN":
		if len(parts) != 5 {
			fmt.Fprintln(w, "ERR SCAN wants 4 arguments")
			return false
		}
		limit, err := strconv.Atoi(parts[3])
		if err != nil || limit < 1 {
			fmt.Fprintln(w, "ERR bad limit")
			return false
		}
		rows, _ := s.store.ScanRows(parts[1], parts[2], limit, parts[4])
		fmt.Fprintf(w, "BLOCK %d\n", len(rows))
		for _, r := range rows {
			fmt.Fprintln(w, r)
		}
	case "CELLS":
		if len(parts) != 5 {
			fmt.Fprintln(w, "ERR CELLS wants 4 arguments")
			return false
		}
		limit, err := strconv.Atoi(parts[3])
		if err != nil || limit < 1 {
			fmt.Fprintln(w, "ERR bad limit")
			return false
		}
		cells, _ := s.store.ScanCells(parts[1], parts[2], limit, parts[4])
		fmt.Fprintf(w, "BLOCK %d\n", len(cells))
		for _, c := range cells {
			marker := "s"
			if c.Val.Numeric {
				marker = "n"
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", c.Row, c.Col, marker, c.Val.String())
		}
	case "RESYNC":
		return s.handleResync(w, parts)
	case "TOPDEG":
		if len(parts) != 2 {
			fmt.Fprintln(w, "ERR TOPDEG wants 1 argument")
			return false
		}
		k, err := strconv.Atoi(parts[1])
		if err != nil || k < 0 {
			fmt.Fprintln(w, "ERR bad k")
			return false
		}
		top := s.store.TopRowsByDegree(k)
		fmt.Fprintf(w, "BLOCK %d\n", len(top))
		for _, rd := range top {
			fmt.Fprintf(w, "%s\t%d\n", rd.Row, rd.Degree)
		}
	default:
		fmt.Fprintf(w, "ERR unknown command %q\n", cmd)
	}
	return false
}

// batchOp is one parsed BATCH body line.
type batchOp struct {
	del  bool
	cell Cell // Val unused for deletes
}

// handleBatch reads the n body lines of a BATCH request, parses them
// all, and only then applies them as stripe-grouped runs (each run of
// consecutive PUTs or DELs is one store batch, so same-cell PUT/DEL
// sequences keep their order). Nothing is applied if any body line is
// malformed or the body is truncated. A count that cannot be trusted
// (unparseable, negative, over maxBatch) closes the connection, since
// the stream position is no longer unambiguous.
func (s *Server) handleBatch(conn net.Conn, sc *bufio.Scanner, w *bufio.Writer, parts []string) bool {
	if len(parts) != 2 {
		fmt.Fprintln(w, "ERR BATCH wants 1 argument")
		return false
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n < 0 {
		fmt.Fprintln(w, "ERR bad batch count")
		return true
	}
	if n > s.maxBatch {
		fmt.Fprintf(w, "ERR batch count %d exceeds limit %d\n", n, s.maxBatch)
		return true
	}
	ops := make([]batchOp, 0, n)
	var bodyErr error
	// One deadline covers the whole body: a stalled batch times out as a
	// unit without paying a deadline syscall per line.
	if s.idleTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.idleTimeout))
	}
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			return true // truncated body: disconnect, apply nothing
		}
		if bodyErr != nil {
			continue // keep consuming to stay in sync
		}
		body := strings.Split(sc.Text(), "\t")
		switch strings.ToUpper(body[0]) {
		case "PUT":
			cell, err := parseMutation(body)
			if err != nil {
				bodyErr = fmt.Errorf("batch line %d: %v", i+1, err)
				continue
			}
			ops = append(ops, batchOp{cell: cell})
		case "DEL":
			if len(body) != 3 {
				bodyErr = fmt.Errorf("batch line %d: DEL wants 2 arguments", i+1)
				continue
			}
			ops = append(ops, batchOp{del: true, cell: Cell{Row: body[1], Col: body[2]}})
		default:
			bodyErr = fmt.Errorf("batch line %d: op must be PUT or DEL", i+1)
		}
	}
	if bodyErr != nil {
		fmt.Fprintf(w, "ERR %v\n", bodyErr)
		return false
	}
	if _, err := s.applyOps(ops); err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return false
	}
	fmt.Fprintf(w, "OK %d\n", n)
	return false
}

// handleResync serves the anti-entropy digest queries a repairing
// cluster client drives before streaming missing cells:
//
//	RESYNC DIGEST <nb>          -> BLOCK of nb "bucket\tcount\tsum" lines
//	RESYNC ROWS <nb> <bucket>   -> BLOCK of "row\tcount\tsum" lines for
//	                               one bucket (bucket -1 = every row)
//
// Digests are order-independent and cross-process-stable (digest.go),
// so two replicas holding the same cells always answer identically.
func (s *Server) handleResync(w *bufio.Writer, parts []string) bool {
	if len(parts) < 3 {
		fmt.Fprintln(w, "ERR RESYNC wants DIGEST or ROWS arguments")
		return false
	}
	nb, err := strconv.Atoi(parts[2])
	if err != nil || nb < 1 || nb > 1<<16 {
		fmt.Fprintln(w, "ERR bad bucket count")
		return false
	}
	switch strings.ToUpper(parts[1]) {
	case "DIGEST":
		if len(parts) != 3 {
			fmt.Fprintln(w, "ERR RESYNC DIGEST wants 1 argument")
			return false
		}
		digs := s.store.BucketDigests(nb)
		fmt.Fprintf(w, "BLOCK %d\n", len(digs))
		for b, d := range digs {
			fmt.Fprintf(w, "%d\t%d\t%d\n", b, d.Count, d.Sum)
		}
	case "ROWS":
		if len(parts) != 4 {
			fmt.Fprintln(w, "ERR RESYNC ROWS wants 2 arguments")
			return false
		}
		bucket, err := strconv.Atoi(parts[3])
		if err != nil || bucket >= nb {
			fmt.Fprintln(w, "ERR bad bucket")
			return false
		}
		rows := s.store.RowDigests(nb, bucket)
		fmt.Fprintf(w, "BLOCK %d\n", len(rows))
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%d\n", r.Row, r.Count, r.Sum)
		}
	default:
		fmt.Fprintln(w, "ERR RESYNC wants DIGEST or ROWS")
	}
	return false
}

// parseMutation parses the argument list of a PUT request or BATCH body
// line into a Cell. Key validation happens here — before the WAL or
// the store can see the mutation — so a key that would corrupt the
// line formats is refused at the protocol boundary.
func parseMutation(parts []string) (Cell, error) {
	if len(parts) != 5 {
		return Cell{}, errors.New("PUT wants 4 arguments")
	}
	if err := ValidateKey(parts[1]); err != nil {
		return Cell{}, err
	}
	if err := ValidateKey(parts[2]); err != nil {
		return Cell{}, err
	}
	v, err := parseValue(parts[3], parts[4])
	if err != nil {
		return Cell{}, err
	}
	return Cell{Row: parts[1], Col: parts[2], Val: v}, nil
}

// ErrNotFound is returned by client lookups of absent cells.
var ErrNotFound = errors.New("tripled: not found")
