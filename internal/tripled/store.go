// Package tripled implements the database substrate behind D4M
// associative arrays: a triple store with the "D4M schema" used by the
// paper's pipeline (Accumulo at the MIT SuperCloud) — the table is kept
// in both row-major and column-major (transpose) indexes so row and
// column lookups are both O(result), and incremental degree tables track
// per-row and per-column cell counts, the trick that makes "top-K
// heaviest sources" queries cheap at honeyfarm scale.
//
// The store is in-memory with an append-only change log for
// persistence, and package server.go exposes it over a line-oriented
// TCP protocol.
package tripled

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/assoc"
)

// Store is a concurrency-safe triple store. The zero value is not
// usable; call NewStore.
type Store struct {
	mu      sync.RWMutex
	rows    map[string]map[string]assoc.Value // row -> col -> value
	cols    map[string]map[string]assoc.Value // col -> row -> value (transpose index)
	rowDeg  map[string]int                    // degree table: cells per row
	colDeg  map[string]int                    // degree table: cells per column
	nnz     int
	version uint64 // bumped on every mutation
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		rows:   make(map[string]map[string]assoc.Value),
		cols:   make(map[string]map[string]assoc.Value),
		rowDeg: make(map[string]int),
		colDeg: make(map[string]int),
	}
}

// Put stores v at (row, col), replacing any existing value.
func (s *Store) Put(row, col string, v assoc.Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(row, col, v)
}

func (s *Store) putLocked(row, col string, v assoc.Value) {
	r, ok := s.rows[row]
	if !ok {
		r = make(map[string]assoc.Value)
		s.rows[row] = r
	}
	if _, exists := r[col]; !exists {
		s.nnz++
		s.rowDeg[row]++
		s.colDeg[col]++
	}
	r[col] = v

	c, ok := s.cols[col]
	if !ok {
		c = make(map[string]assoc.Value)
		s.cols[col] = c
	}
	c[row] = v
	s.version++
}

// Get returns the value at (row, col).
func (s *Store) Get(row, col string) (assoc.Value, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.rows[row][col]
	return v, ok
}

// Delete removes the cell if present and reports whether it existed.
func (s *Store) Delete(row, col string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rows[row]
	if !ok {
		return false
	}
	if _, exists := r[col]; !exists {
		return false
	}
	delete(r, col)
	if len(r) == 0 {
		delete(s.rows, row)
	}
	c := s.cols[col]
	delete(c, row)
	if len(c) == 0 {
		delete(s.cols, col)
	}
	s.nnz--
	if s.rowDeg[row]--; s.rowDeg[row] == 0 {
		delete(s.rowDeg, row)
	}
	if s.colDeg[col]--; s.colDeg[col] == 0 {
		delete(s.colDeg, col)
	}
	s.version++
	return true
}

// NNZ returns the number of stored cells.
func (s *Store) NNZ() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nnz
}

// Row returns a copy of one row (nil if absent).
func (s *Store) Row(row string) map[string]assoc.Value {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.rows[row]
	if !ok {
		return nil
	}
	out := make(map[string]assoc.Value, len(r))
	for c, v := range r {
		out[c] = v
	}
	return out
}

// Col returns a copy of one column via the transpose index.
func (s *Store) Col(col string) map[string]assoc.Value {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.cols[col]
	if !ok {
		return nil
	}
	out := make(map[string]assoc.Value, len(c))
	for r, v := range c {
		out[r] = v
	}
	return out
}

// RowRange returns the sorted row keys in [start, end). An empty end
// means unbounded.
func (s *Store) RowRange(start, end string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for r := range s.rows {
		if r >= start && (end == "" || r < end) {
			out = append(out, r)
		}
	}
	sort.Strings(out)
	return out
}

// RowDegree returns the degree-table entry for a row (0 if absent).
func (s *Store) RowDegree(row string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rowDeg[row]
}

// ColDegree returns the degree-table entry for a column.
func (s *Store) ColDegree(col string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.colDeg[col]
}

// TopRowsByDegree returns up to k (row, degree) pairs with the largest
// degrees, ties broken lexicographically — the degree-table query D4M
// deployments use to find the heaviest sources without scanning values.
func (s *Store) TopRowsByDegree(k int) []RowDegree {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]RowDegree, 0, len(s.rowDeg))
	for r, d := range s.rowDeg {
		out = append(out, RowDegree{Row: r, Degree: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Degree != out[j].Degree {
			return out[i].Degree > out[j].Degree
		}
		return out[i].Row < out[j].Row
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// RowDegree pairs a row key with its degree-table count.
type RowDegree struct {
	Row    string
	Degree int
}

// LoadAssoc bulk-inserts an associative array.
func (s *Store) LoadAssoc(a *assoc.Assoc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a.Iterate(func(row, col string, v assoc.Value) bool {
		s.putLocked(row, col, v)
		return true
	})
}

// ToAssoc exports the full table as an associative array.
func (s *Store) ToAssoc() *assoc.Assoc {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := assoc.New()
	for row, r := range s.rows {
		for col, v := range r {
			out.Set(row, col, v)
		}
	}
	return out
}

// Version returns the mutation counter, for cache invalidation.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// WriteLog appends the entire table to w as replayable PUT records (the
// persistence format: one "P<TAB>row<TAB>col<TAB>type<TAB>value" line
// per cell).
func (s *Store) WriteLog(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriter(w)
	rows := make([]string, 0, len(s.rows))
	for r := range s.rows {
		rows = append(rows, r)
	}
	sort.Strings(rows)
	for _, row := range rows {
		cols := make([]string, 0, len(s.rows[row]))
		for c := range s.rows[row] {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		for _, col := range cols {
			v := s.rows[row][col]
			marker := "s"
			if v.Numeric {
				marker = "n"
			}
			if _, err := fmt.Fprintf(bw, "P\t%s\t%s\t%s\t%s\n", row, col, marker, v.String()); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReplayLog applies PUT records produced by WriteLog (or by a server
// session log) to the store.
func (s *Store) ReplayLog(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, "\t", 5)
		if len(parts) != 5 || parts[0] != "P" {
			return fmt.Errorf("tripled: log line %d malformed", line)
		}
		v, err := parseValue(parts[3], parts[4])
		if err != nil {
			return fmt.Errorf("tripled: log line %d: %w", line, err)
		}
		s.Put(parts[1], parts[2], v)
	}
	return sc.Err()
}

func parseValue(marker, raw string) (assoc.Value, error) {
	switch marker {
	case "n":
		var f float64
		if _, err := fmt.Sscanf(raw, "%g", &f); err != nil {
			return assoc.Value{}, fmt.Errorf("bad number %q", raw)
		}
		return assoc.Num(f), nil
	case "s":
		return assoc.Str(raw), nil
	default:
		return assoc.Value{}, fmt.Errorf("unknown value marker %q", marker)
	}
}
