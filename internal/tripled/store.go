// Package tripled implements the database substrate behind D4M
// associative arrays: a triple store with the "D4M schema" used by the
// paper's pipeline (Accumulo at the MIT SuperCloud) — the table is kept
// in both row-major and column-major (transpose) indexes so row and
// column lookups are both O(result), and incremental degree tables track
// per-row and per-column cell counts, the trick that makes "top-K
// heaviest sources" queries cheap at honeyfarm scale.
//
// The store is sharded across stripes keyed by row hash: each stripe
// has its own lock, row/column indexes, and degree tables, so writers
// on different rows never contend. Column queries and degree-table
// reads merge the per-stripe tables on demand. The store is in-memory
// with an append-only change log for persistence, and server.go exposes
// it over a line-oriented TCP protocol.
package tripled

import (
	"bufio"
	"fmt"
	"hash/maphash"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/assoc"
)

// DefaultStripes is the stripe count of NewStore, enough that a
// handful of ingest connections rarely collide on a lock.
const DefaultStripes = 16

// Cell is one (row, col, value) triple, the unit of batched mutation.
type Cell struct {
	Row, Col string
	Val      assoc.Value
}

// CellKey addresses a cell without its value, the unit of batched
// deletion.
type CellKey struct {
	Row, Col string
}

// stripe is one shard of the table: a full row index plus the
// transpose index restricted to this stripe's rows. Degree tables are
// not materialized — a row's degree is len(rows[row]) and a column's
// per-stripe degree is len(cols[col]), merged on demand — so mutations
// touch two maps, not four.
type stripe struct {
	mu   sync.RWMutex
	rows map[string]map[string]assoc.Value // row -> col -> value
	cols map[string]map[string]assoc.Value // col -> row -> value (transpose)
	nnz  int
}

// Store is a concurrency-safe triple store sharded over row-hash
// stripes. The zero value is not usable; call NewStore.
type Store struct {
	stripes []*stripe
	seed    maphash.Seed
	version atomic.Uint64 // bumped on every mutation
}

// NewStore returns an empty store with DefaultStripes stripes.
func NewStore() *Store { return NewStoreStripes(DefaultStripes) }

// NewStoreStripes returns an empty store sharded over n stripes.
// n = 1 degenerates to a single-lock store, the serial oracle the
// concurrency tests diff against.
func NewStoreStripes(n int) *Store {
	if n < 1 {
		n = 1
	}
	s := &Store{stripes: make([]*stripe, n), seed: maphash.MakeSeed()}
	for i := range s.stripes {
		s.stripes[i] = &stripe{
			rows: make(map[string]map[string]assoc.Value),
			cols: make(map[string]map[string]assoc.Value),
		}
	}
	return s
}

// Stripes returns the stripe count.
func (s *Store) Stripes() int { return len(s.stripes) }

func (s *Store) stripeFor(row string) *stripe {
	if len(s.stripes) == 1 {
		return s.stripes[0]
	}
	return s.stripes[maphash.String(s.seed, row)%uint64(len(s.stripes))]
}

// Put stores v at (row, col), replacing any existing value. Keys that
// would corrupt the line-oriented persistence formats (tab, newline,
// carriage return) are refused with a BadKeyError before any mutation.
func (s *Store) Put(row, col string, v assoc.Value) error {
	if err := ValidateKey(row); err != nil {
		return err
	}
	if err := ValidateKey(col); err != nil {
		return err
	}
	st := s.stripeFor(row)
	st.mu.Lock()
	st.put(row, col, v)
	st.mu.Unlock()
	s.version.Add(1)
	return nil
}

func (st *stripe) put(row, col string, v assoc.Value) {
	r, ok := st.rows[row]
	if !ok {
		r = make(map[string]assoc.Value)
		st.rows[row] = r
	}
	if _, exists := r[col]; !exists {
		st.nnz++
	}
	r[col] = v

	c, ok := st.cols[col]
	if !ok {
		c = make(map[string]assoc.Value)
		st.cols[col] = c
	}
	c[row] = v
}

// PutBatch stores every cell. The stripe lock is held across runs of
// consecutive same-stripe cells (table iterations arrive row-major, so
// a whole row's cells share one acquisition) instead of once per cell.
// Key validation is all-or-nothing: a single bad key rejects the whole
// batch with a BadKeyError before anything is applied.
func (s *Store) PutBatch(cells []Cell) error {
	if len(cells) == 0 {
		return nil
	}
	for i := range cells {
		if err := ValidateKey(cells[i].Row); err != nil {
			return err
		}
		if err := ValidateKey(cells[i].Col); err != nil {
			return err
		}
	}
	var cur *stripe
	for i := range cells {
		st := s.stripeFor(cells[i].Row)
		if st != cur {
			if cur != nil {
				cur.mu.Unlock()
			}
			st.mu.Lock()
			cur = st
		}
		cur.put(cells[i].Row, cells[i].Col, cells[i].Val)
	}
	cur.mu.Unlock()
	s.version.Add(uint64(len(cells)))
	return nil
}

// Get returns the value at (row, col).
func (s *Store) Get(row, col string) (assoc.Value, bool) {
	st := s.stripeFor(row)
	st.mu.RLock()
	defer st.mu.RUnlock()
	v, ok := st.rows[row][col]
	return v, ok
}

// Delete removes the cell if present and reports whether it existed.
func (s *Store) Delete(row, col string) bool {
	st := s.stripeFor(row)
	st.mu.Lock()
	ok := st.del(row, col)
	st.mu.Unlock()
	if ok {
		s.version.Add(1)
	}
	return ok
}

func (st *stripe) del(row, col string) bool {
	r, ok := st.rows[row]
	if !ok {
		return false
	}
	if _, exists := r[col]; !exists {
		return false
	}
	delete(r, col)
	if len(r) == 0 {
		delete(st.rows, row)
	}
	c := st.cols[col]
	delete(c, row)
	if len(c) == 0 {
		delete(st.cols, col)
	}
	st.nnz--
	return true
}

// DeleteBatch removes every addressed cell, with the same run-wise
// stripe locking as PutBatch, and returns how many existed.
func (s *Store) DeleteBatch(keys []CellKey) int {
	if len(keys) == 0 {
		return 0
	}
	deleted := 0
	var cur *stripe
	for _, k := range keys {
		st := s.stripeFor(k.Row)
		if st != cur {
			if cur != nil {
				cur.mu.Unlock()
			}
			st.mu.Lock()
			cur = st
		}
		if cur.del(k.Row, k.Col) {
			deleted++
		}
	}
	cur.mu.Unlock()
	if deleted > 0 {
		s.version.Add(uint64(deleted))
	}
	return deleted
}

// NNZ returns the number of stored cells.
func (s *Store) NNZ() int {
	n := 0
	for _, st := range s.stripes {
		st.mu.RLock()
		n += st.nnz
		st.mu.RUnlock()
	}
	return n
}

// Row returns a copy of one row (nil if absent).
func (s *Store) Row(row string) map[string]assoc.Value {
	st := s.stripeFor(row)
	st.mu.RLock()
	defer st.mu.RUnlock()
	r, ok := st.rows[row]
	if !ok {
		return nil
	}
	out := make(map[string]assoc.Value, len(r))
	for c, v := range r {
		out[c] = v
	}
	return out
}

// Col returns a copy of one column, merged across the per-stripe
// transpose indexes (nil if absent everywhere).
func (s *Store) Col(col string) map[string]assoc.Value {
	var out map[string]assoc.Value
	for _, st := range s.stripes {
		st.mu.RLock()
		for r, v := range st.cols[col] {
			if out == nil {
				out = make(map[string]assoc.Value)
			}
			out[r] = v
		}
		st.mu.RUnlock()
	}
	return out
}

// RowRange returns the sorted row keys in [start, end). An empty end
// means unbounded.
func (s *Store) RowRange(start, end string) []string {
	rows, _ := s.ScanRows(start, end, 0, "")
	return rows
}

// ScanRows is the paged form of RowRange: it returns up to limit sorted
// row keys r with r >= start, r < end (empty end = unbounded), and
// r > cursor when cursor is non-empty. A limit <= 0 means unlimited.
// The second result reports whether more rows remain past the page —
// pass the last returned key back as the cursor to continue. Paged
// selection keeps only the limit smallest matches in a bounded max-heap
// (O(rows log limit) per page, no full sort of the tail).
func (s *Store) ScanRows(start, end string, limit int, cursor string) ([]string, bool) {
	var out []string
	matched := 0
	for _, st := range s.stripes {
		st.mu.RLock()
		for r := range st.rows {
			if r < start || (end != "" && r >= end) || (cursor != "" && r <= cursor) {
				continue
			}
			matched++
			if limit <= 0 || len(out) < limit {
				out = append(out, r)
				heapUp(out)
			} else if r < out[0] {
				out[0] = r
				heapDown(out)
			}
		}
		st.mu.RUnlock()
	}
	sort.Strings(out)
	return out, limit > 0 && matched > limit
}

// heapUp restores the string max-heap property after appending to h.
func heapUp(h []string) {
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] >= h[i] {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

// heapDown restores the max-heap property after replacing h[0].
func heapDown(h []string) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h) && h[l] > h[big] {
			big = l
		}
		if r < len(h) && h[r] > h[big] {
			big = r
		}
		if big == i {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// ScanCells returns every cell of up to limit rows of the paged row
// scan defined by ScanRows, sorted by (row, col), plus the more flag.
// It is the bulk-export query: one round trip per page instead of one
// ROW query per key. A row deleted between the page selection and its
// cell read simply drops from the page (each row's cells are read
// atomically); if every selected row vanished that way, the scan
// advances past them rather than returning a spurious end-of-scan.
func (s *Store) ScanCells(start, end string, limit int, cursor string) ([]Cell, bool) {
	for {
		rows, more := s.ScanRows(start, end, limit, cursor)
		var out []Cell
		for _, r := range rows {
			cells := s.Row(r)
			cols := make([]string, 0, len(cells))
			for c := range cells {
				cols = append(cols, c)
			}
			sort.Strings(cols)
			for _, c := range cols {
				out = append(out, Cell{Row: r, Col: c, Val: cells[c]})
			}
		}
		if len(out) > 0 || !more {
			return out, more
		}
		cursor = rows[len(rows)-1] // whole page deleted concurrently: skip it
	}
}

// RowDegree returns the degree-table entry for a row (0 if absent).
func (s *Store) RowDegree(row string) int {
	st := s.stripeFor(row)
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.rows[row])
}

// ColDegree returns the degree-table entry for a column, summed over
// the per-stripe transpose indexes.
func (s *Store) ColDegree(col string) int {
	d := 0
	for _, st := range s.stripes {
		st.mu.RLock()
		d += len(st.cols[col])
		st.mu.RUnlock()
	}
	return d
}

// TopRowsByDegree returns up to k (row, degree) pairs with the largest
// degrees, ties broken lexicographically — the degree-table query D4M
// deployments use to find the heaviest sources without scanning values.
// Rows live wholly inside one stripe, so the per-stripe degree tables
// are concatenated, not summed.
func (s *Store) TopRowsByDegree(k int) []RowDegree {
	var out []RowDegree
	for _, st := range s.stripes {
		st.mu.RLock()
		for r, cells := range st.rows {
			out = append(out, RowDegree{Row: r, Degree: len(cells)})
		}
		st.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Degree != out[j].Degree {
			return out[i].Degree > out[j].Degree
		}
		return out[i].Row < out[j].Row
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// RowDegree pairs a row key with its degree-table count.
type RowDegree struct {
	Row    string
	Degree int
}

// LoadAssoc bulk-inserts an associative array.
func (s *Store) LoadAssoc(a *assoc.Assoc) error {
	cells := make([]Cell, 0, a.NNZ())
	a.Iterate(func(row, col string, v assoc.Value) bool {
		cells = append(cells, Cell{Row: row, Col: col, Val: v})
		return true
	})
	return s.PutBatch(cells)
}

// rlockAll read-locks every stripe in index order, giving callers an
// atomic snapshot of the whole table; runlockAll releases them.
func (s *Store) rlockAll() {
	for _, st := range s.stripes {
		st.mu.RLock()
	}
}

func (s *Store) runlockAll() {
	for _, st := range s.stripes {
		st.mu.RUnlock()
	}
}

// ToAssoc exports the full table as an associative array. The export
// is an atomic snapshot: all stripes are held read-locked for its
// duration, so no concurrent mutation can tear it.
func (s *Store) ToAssoc() *assoc.Assoc {
	s.rlockAll()
	defer s.runlockAll()
	out := assoc.New()
	for _, st := range s.stripes {
		for row, r := range st.rows {
			for col, v := range r {
				out.Set(row, col, v)
			}
		}
	}
	return out
}

// Version returns the mutation counter, for cache invalidation.
func (s *Store) Version() uint64 { return s.version.Load() }

// WriteLog appends the entire table to w as replayable PUT records (the
// persistence format: one "P<TAB>row<TAB>col<TAB>type<TAB>value" line
// per cell). Like ToAssoc, the log is an atomic snapshot: every stripe
// stays read-locked until the last record is buffered, so the log
// always corresponds to a state the store actually held.
func (s *Store) WriteLog(w io.Writer) error {
	s.rlockAll()
	defer s.runlockAll()
	bw := bufio.NewWriter(w)
	var rows []string
	for _, st := range s.stripes {
		for r := range st.rows {
			rows = append(rows, r)
		}
	}
	sort.Strings(rows)
	for _, row := range rows {
		cells := s.stripeFor(row).rows[row]
		cols := make([]string, 0, len(cells))
		for c := range cells {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		for _, col := range cols {
			v := cells[col]
			marker := "s"
			if v.Numeric {
				marker = "n"
			}
			if _, err := fmt.Fprintf(bw, "P\t%s\t%s\t%s\t%s\n", row, col, marker, v.String()); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReplayLog applies PUT records produced by WriteLog (or by a server
// session log) to the store.
func (s *Store) ReplayLog(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := 0
	batch := make([]Cell, 0, 1024)
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, "\t", 5)
		if len(parts) != 5 || parts[0] != "P" {
			return fmt.Errorf("tripled: log line %d malformed", line)
		}
		v, err := parseValue(parts[3], parts[4])
		if err != nil {
			return fmt.Errorf("tripled: log line %d: %w", line, err)
		}
		batch = append(batch, Cell{Row: parts[1], Col: parts[2], Val: v})
		if len(batch) == cap(batch) {
			if err := s.PutBatch(batch); err != nil {
				return fmt.Errorf("tripled: log line <= %d: %w", line, err)
			}
			batch = batch[:0]
		}
	}
	if err := s.PutBatch(batch); err != nil {
		return fmt.Errorf("tripled: log line <= %d: %w", line, err)
	}
	return sc.Err()
}

func parseValue(marker, raw string) (assoc.Value, error) {
	switch marker {
	case "n":
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return assoc.Value{}, fmt.Errorf("bad number %q", raw)
		}
		return assoc.Num(f), nil
	case "s":
		return assoc.Str(raw), nil
	default:
		return assoc.Value{}, fmt.Errorf("unknown value marker %q", marker)
	}
}
