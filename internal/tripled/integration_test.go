package tripled_test

import (
	"testing"
	"time"

	"repro/internal/assoc"
	"repro/internal/honeyfarm"
	"repro/internal/radiation"
	"repro/internal/stats"
	"repro/internal/tripled"
)

// TestHoneyfarmMonthServedOverTCP loads a honeyfarm month table into the
// triple store, serves it, and answers the analyst queries of the
// paper's workflow over the network: per-source lookups, classification
// grouping via the transpose index, and heaviest-row selection via the
// degree table.
func TestHoneyfarmMonthServedOverTCP(t *testing.T) {
	cfg := radiation.DefaultConfig()
	cfg.NumSources = 2000
	cfg.ZM = stats.PaperZM(1 << 10)
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	farm := honeyfarm.New(50, 5)
	start := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	mw := farm.IngestMonth("2020-06", start, pop.HoneyfarmMonth(4, start))
	if mw.Sources() == 0 {
		t.Fatal("empty month")
	}

	store := tripled.NewStore()
	store.LoadAssoc(mw.Table)
	if store.NNZ() != mw.Table.NNZ() {
		t.Fatalf("store NNZ %d != table NNZ %d", store.NNZ(), mw.Table.NNZ())
	}

	srv, err := tripled.Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := tripled.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Per-source lookup round trip.
	someIP := mw.Table.RowKeys()[0]
	row, err := c.Row(someIP)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := row[honeyfarm.ColClassification]; !ok {
		t.Errorf("row %s missing classification over the wire", someIP)
	}

	// The classification column via the transpose index must agree with
	// the local census total.
	col, err := c.Col(honeyfarm.ColClassification)
	if err != nil {
		t.Fatal(err)
	}
	if len(col) != mw.Sources() {
		t.Errorf("classification column has %d rows, want %d", len(col), mw.Sources())
	}
	counts := make(map[string]int)
	for _, v := range col {
		counts[v.Str]++
	}
	for _, row := range mw.ClassificationCensus() {
		if counts[row.Classification] != row.Sources {
			t.Errorf("census mismatch for %s: %d vs %d",
				row.Classification, counts[row.Classification], row.Sources)
		}
	}

	// Degree table: every source row carries the same 6 enrichment
	// columns, so the top rows all have degree 6.
	top, err := c.TopRowsByDegree(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("top = %v", top)
	}
	for _, rd := range top {
		if rd.Degree != 6 {
			t.Errorf("row %s degree = %d, want 6", rd.Row, rd.Degree)
		}
	}

	// Export back to an assoc and verify nothing was lost on the server.
	back := store.ToAssoc()
	if back.NNZ() != mw.Table.NNZ() {
		t.Error("export lost cells")
	}
	var miss int
	mw.Table.Iterate(func(r, c2 string, v assoc.Value) bool {
		if got, ok := back.Get(r, c2); !ok || got != v {
			miss++
		}
		return true
	})
	if miss != 0 {
		t.Errorf("%d cells corrupted through the store", miss)
	}
}
