// Package loadgen is the shared mixed-workload driver behind
// cmd/tripled-load and benchreport's -tripled phase: M concurrent
// clients push a seeded PUT/GET/TOPDEG mix through any tripled.Conn —
// a single server or the replicated cluster client — and collect
// per-op-kind latency samples. A Mid hook fires at the exact halfway
// point of every client's script (barrier-synchronized), which is how
// the failover benchmarks and the chaos flag inject a fault at a
// deterministic position in the workload rather than at a wall-clock
// time.
package loadgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/assoc"
	"repro/internal/tripled"
)

// OpKinds are the workload's op families, in report order.
var OpKinds = []string{"PUT", "GET", "TOPDEG"}

// Config shapes one load run.
type Config struct {
	Clients int    // concurrent connections
	Ops     int    // operations per client
	Batch   int    // cells per PUT batch; <= 1 means per-cell round trips
	Rows    int    // row keyspace size
	Mix     [3]int // PUT, GET, TOPDEG weights
	TopK    int    // k of each TOPDEG query
	Seed    int64  // workload seed; client id is added per connection

	// Dial opens client id's connection. Required. Returning the
	// cluster client here is what makes the multi-node phases run the
	// same script as the single-node baseline.
	Dial func(id int) (tripled.Conn, error)

	// Mid, when set, runs exactly once after every client has finished
	// ops/2 operations and before any runs the next one — the
	// deterministic fault-injection point.
	Mid func()
}

// Stats is the merged result of a run.
type Stats struct {
	Elapsed time.Duration
	// Lat holds every latency sample per op kind, sorted ascending.
	Lat map[string][]time.Duration
	// Cells counts workload items per kind (batched PUTs count cells,
	// not batches).
	Cells map[string]int
}

// Percentile reads p (0..1) from kind's sorted samples.
func (s *Stats) Percentile(kind string, p float64) time.Duration {
	sorted := s.Lat[kind]
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// PerSec is kind's cells+queries per wall-clock second.
func (s *Stats) PerSec(kind string) float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Cells[kind]) / s.Elapsed.Seconds()
}

// ParseMix reads "70,25,5"-style PUT,GET,TOPDEG weights.
func ParseMix(s string) ([3]int, error) {
	var mix [3]int
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return mix, fmt.Errorf("mix wants three comma-separated weights, got %q", s)
	}
	total := 0
	for i, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || w < 0 {
			return mix, fmt.Errorf("bad mix weight %q", p)
		}
		mix[i] = w
		total += w
	}
	if total == 0 {
		return mix, fmt.Errorf("mix weights sum to zero")
	}
	return mix, nil
}

type clientStats struct {
	lat   map[string][]time.Duration
	cells map[string]int
}

func (s *clientStats) record(kind string, d time.Duration, n int) {
	s.lat[kind] = append(s.lat[kind], d)
	s.cells[kind] += n
}

// Run drives the workload to completion and merges the samples. Any
// client error aborts the run: under the cluster client a fault the
// replicas can absorb is invisible here, so a returned error means the
// failure exceeded the configured redundancy.
func Run(cfg Config) (*Stats, error) {
	if cfg.Dial == nil {
		return nil, fmt.Errorf("loadgen: Config.Dial is required")
	}
	total := cfg.Mix[0] + cfg.Mix[1] + cfg.Mix[2]
	if total == 0 {
		return nil, fmt.Errorf("loadgen: mix weights sum to zero")
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	if cfg.Rows <= 0 {
		cfg.Rows = 100000
	}

	// The Mid barrier: all clients arrive at ops/2, the hook runs once,
	// everyone resumes.
	var atMid sync.WaitGroup
	resume := make(chan struct{})
	if cfg.Mid == nil {
		close(resume)
	} else {
		atMid.Add(cfg.Clients)
		go func() {
			atMid.Wait()
			cfg.Mid()
			close(resume)
		}()
	}

	var wg sync.WaitGroup
	stats := make([]*clientStats, cfg.Clients)
	errs := make(chan error, cfg.Clients)
	begin := time.Now()
	for id := 0; id < cfg.Clients; id++ {
		wg.Add(1)
		st := &clientStats{lat: make(map[string][]time.Duration), cells: make(map[string]int)}
		stats[id] = st
		go func(id int) {
			defer wg.Done()
			reached := false
			defer func() {
				if !reached && cfg.Mid != nil {
					atMid.Done() // keep the barrier from deadlocking on early error
				}
			}()
			c, err := cfg.Dial(id)
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %w", id, err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
			row := func() string { return "ip-" + strconv.Itoa(rng.Intn(cfg.Rows)) }
			pending := make([]tripled.Cell, 0, cfg.Batch)
			flush := func() error {
				if len(pending) == 0 {
					return nil
				}
				t0 := time.Now()
				err := c.PutBatch(pending)
				st.record("PUT", time.Since(t0), len(pending))
				pending = pending[:0]
				return err
			}
			for i := 0; i < cfg.Ops; i++ {
				if cfg.Mid != nil && i == cfg.Ops/2 {
					if err := flush(); err != nil {
						errs <- fmt.Errorf("client %d: %w", id, err)
						return
					}
					reached = true
					atMid.Done()
					<-resume
				}
				var err error
				switch r := rng.Intn(total); {
				case r < cfg.Mix[0]:
					cell := tripled.Cell{Row: row(), Col: "packets", Val: assoc.Num(float64(rng.Intn(1 << 20)))}
					if cfg.Batch <= 1 {
						t0 := time.Now()
						err = c.Put(cell.Row, cell.Col, cell.Val)
						st.record("PUT", time.Since(t0), 1)
					} else if pending = append(pending, cell); len(pending) == cfg.Batch {
						err = flush()
					}
				case r < cfg.Mix[0]+cfg.Mix[1]:
					t0 := time.Now()
					if _, err = c.Get(row(), "packets"); err == tripled.ErrNotFound {
						err = nil
					}
					st.record("GET", time.Since(t0), 1)
				default:
					t0 := time.Now()
					_, err = c.TopRowsByDegree(cfg.TopK)
					st.record("TOPDEG", time.Since(t0), 1)
				}
				if err != nil {
					errs <- fmt.Errorf("client %d: %w", id, err)
					return
				}
			}
			if err := flush(); err != nil {
				errs <- fmt.Errorf("client %d: %w", id, err)
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(begin)
	close(errs)
	for err := range errs {
		return nil, err
	}

	merged := &Stats{
		Elapsed: elapsed,
		Lat:     make(map[string][]time.Duration),
		Cells:   make(map[string]int),
	}
	for _, st := range stats {
		for kind, lat := range st.lat {
			merged.Lat[kind] = append(merged.Lat[kind], lat...)
			merged.Cells[kind] += st.cells[kind]
		}
	}
	for _, lat := range merged.Lat {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	}
	return merged, nil
}
