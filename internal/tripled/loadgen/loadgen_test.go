package loadgen

import (
	"sync/atomic"
	"testing"

	"repro/internal/assoc"
	"repro/internal/tripled"
)

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("70, 25,5")
	if err != nil || mix != [3]int{70, 25, 5} {
		t.Fatalf("ParseMix: %v, %v", mix, err)
	}
	for _, bad := range []string{"70,25", "a,b,c", "0,0,0", "-1,2,3"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

// TestRunMidBarrier proves the Mid hook's contract: it fires exactly
// once, after every client has issued ops/2 operations and before any
// issues the next one — so a fault injected there lands at a
// deterministic position in each client's script.
func TestRunMidBarrier(t *testing.T) {
	srv, err := tripled.Serve(tripled.NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients, ops = 4, 100
	var midCalls atomic.Int32
	var opsAtMid atomic.Int64
	counts := make([]atomic.Int64, clients)
	st, err := Run(Config{
		Clients: clients,
		Ops:     ops,
		Batch:   8,
		Rows:    500,
		Mix:     [3]int{60, 30, 10},
		Seed:    7,
		Dial: func(id int) (tripled.Conn, error) {
			c, err := tripled.Dial(srv.Addr())
			if err != nil {
				return nil, err
			}
			return &countingConn{Conn: c, n: &counts[id]}, nil
		},
		Mid: func() {
			midCalls.Add(1)
			var total int64
			for i := range counts {
				total += counts[i].Load()
			}
			opsAtMid.Store(total)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := midCalls.Load(); got != 1 {
		t.Fatalf("Mid ran %d times, want 1", got)
	}
	// At the barrier every client has issued exactly ops/2 workload
	// items: each loop iteration contributes one cell, one GET, or one
	// TOPDEG, and the pre-barrier flush pushes pending cells through
	// before Mid runs.
	if at := opsAtMid.Load(); at != clients*ops/2 {
		t.Fatalf("ops issued at Mid = %d, want exactly %d", at, clients*ops/2)
	}
	total := 0
	for _, kind := range OpKinds {
		total += len(st.Lat[kind])
		if st.Percentile(kind, 0.99) < st.Percentile(kind, 0.50) {
			t.Fatalf("%s p99 < p50", kind)
		}
	}
	if total == 0 {
		t.Fatal("no samples recorded")
	}
}

// countingConn counts workload items through the wire (cells, GETs,
// TOPDEGs) so the test can see how much work ran before the barrier.
type countingConn struct {
	tripled.Conn
	n *atomic.Int64
}

func (c *countingConn) PutBatch(cells []tripled.Cell) error {
	c.n.Add(int64(len(cells)))
	return c.Conn.PutBatch(cells)
}

func (c *countingConn) Get(row, col string) (assoc.Value, error) {
	c.n.Add(1)
	return c.Conn.Get(row, col)
}

func (c *countingConn) TopRowsByDegree(k int) ([]tripled.RowDegree, error) {
	c.n.Add(1)
	return c.Conn.TopRowsByDegree(k)
}
