package tripled

// digest.go is the anti-entropy summary layer behind the RESYNC
// protocol op: order-independent, cross-process-stable digests of the
// store's contents, cheap enough to exchange before any cell moves.
//
// A cell's digest is CRC32C over "row\0col\0marker\0value"; a row's
// digest is the 64-bit sum of its cell digests; a bucket's digest is
// the sum of its rows' digests, where a row's bucket is FNV-1a(row)
// mod the caller-chosen bucket count. Sums compose associatively and
// commutatively, so two replicas holding the same cells report the
// same digests regardless of stripe layout or insertion order — the
// store's own maphash stripe seed is per-process random and therefore
// useless here, which is why bucketing hashes the row key with FNV-1a
// instead.

import (
	"hash/crc32"
	"sort"

	"repro/internal/assoc"
)

var digestTable = crc32.MakeTable(crc32.Castagnoli)

// BucketDigest summarizes the cells whose rows hash into one bucket.
type BucketDigest struct {
	Count int    // cells in the bucket
	Sum   uint64 // sum of cell digests, mod 2^64
}

// RowDigestEntry summarizes one row's cells.
type RowDigestEntry struct {
	Row   string
	Count int
	Sum   uint64
}

// DigestBucket maps a row key to its bucket in [0, nb) with FNV-1a,
// identically in every process.
func DigestBucket(row string, nb int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(row); i++ {
		h ^= uint64(row[i])
		h *= prime64
	}
	return int(h % uint64(nb))
}

// CellDigest returns the digest of one cell.
func CellDigest(row, col string, v assoc.Value) uint64 {
	marker := "s"
	if v.Numeric {
		marker = "n"
	}
	h := crc32.Checksum([]byte(row), digestTable)
	h = crc32.Update(h, digestTable, []byte{0})
	h = crc32.Update(h, digestTable, []byte(col))
	h = crc32.Update(h, digestTable, []byte{0})
	h = crc32.Update(h, digestTable, []byte(marker))
	h = crc32.Update(h, digestTable, []byte{0})
	h = crc32.Update(h, digestTable, []byte(v.String()))
	return uint64(h)
}

// BucketDigests returns the nb bucket digests of the whole table, as
// one atomic snapshot (all stripes read-locked).
func (s *Store) BucketDigests(nb int) []BucketDigest {
	if nb < 1 {
		nb = 1
	}
	out := make([]BucketDigest, nb)
	s.rlockAll()
	defer s.runlockAll()
	for _, st := range s.stripes {
		for row, cells := range st.rows {
			b := DigestBucket(row, nb)
			for col, v := range cells {
				out[b].Count++
				out[b].Sum += CellDigest(row, col, v)
			}
		}
	}
	return out
}

// RowDigests returns per-row digests, sorted by row key, for one
// bucket of the nb-bucket partition — or for every row when bucket is
// negative. Like BucketDigests it is an atomic snapshot.
func (s *Store) RowDigests(nb, bucket int) []RowDigestEntry {
	if nb < 1 {
		nb = 1
	}
	var out []RowDigestEntry
	s.rlockAll()
	defer s.runlockAll()
	for _, st := range s.stripes {
		for row, cells := range st.rows {
			if bucket >= 0 && DigestBucket(row, nb) != bucket {
				continue
			}
			e := RowDigestEntry{Row: row, Count: len(cells)}
			for col, v := range cells {
				e.Sum += CellDigest(row, col, v)
			}
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Row < out[j].Row })
	return out
}
