// Package cluster is the fault-tolerant multi-node face of the tripled
// service: a smart client that spreads row keys over N servers with a
// consistent-hash ring, writes every mutation to R replicas with
// quorum acks, and serves reads with automatic failover when a node
// times out or drops — the reproduction's stand-in for the Accumulo
// tablet-server fleet behind the paper's D4M tables.
//
// The ring is a pure function of the member addresses: every client
// that knows the same address list computes the same placement, so
// there is no coordinator, no metadata service, and nothing to
// desynchronize. Failure handling is deliberately fail-stop: a node
// that times out is marked down for the life of the client and its
// replicas carry on; a node that comes back is NOT readmitted (its
// tables may have missed writes), so recovery is "restart the study's
// clients", matching how the batch pipeline actually runs.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per server: enough tokens
// that a 3-node ring splits key space within a few percent of evenly,
// small enough that ring construction is microseconds.
const DefaultVNodes = 128

// ring is a consistent-hash ring over node indices. Immutable after
// build; placement never changes when nodes die — replicas simply
// shrink to the live members of each key's replica set.
type ring struct {
	tokens []token
	nodes  int
}

type token struct {
	hash uint64
	node int
}

// buildRing places vnodes tokens per node. Token positions depend only
// on (address, vnode index), so every client over the same address
// list agrees on placement regardless of the order nodes fail.
func buildRing(addrs []string, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	r := &ring{tokens: make([]token, 0, len(addrs)*vnodes), nodes: len(addrs)}
	for i, addr := range addrs {
		for v := 0; v < vnodes; v++ {
			r.tokens = append(r.tokens, token{hash: hashKey(fmt.Sprintf("%s#%d", addr, v)), node: i})
		}
	}
	// Sort by hash; break the (astronomically rare) collision by node
	// index so placement stays deterministic.
	sort.Slice(r.tokens, func(a, b int) bool {
		if r.tokens[a].hash != r.tokens[b].hash {
			return r.tokens[a].hash < r.tokens[b].hash
		}
		return r.tokens[a].node < r.tokens[b].node
	})
	return r
}

// hashKey is FNV-1a 64 run through a splitmix64 finalizer: FNV alone
// avalanches poorly on the short, similar strings that dominate here
// ("host:port#3", "src-0042"), bunching ring tokens and skewing node
// shares by 50%+; the finalizer spreads them to within a few percent
// of fair. Fast, dependency-free, stable across runs.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// replicasFor returns the r distinct nodes owning key, in preference
// order: the first token at or clockwise of the key's hash owns the
// primary copy, and the walk continues clockwise collecting distinct
// nodes. r is clamped to the member count.
func (rg *ring) replicasFor(key string, r int) []int {
	if r > rg.nodes {
		r = rg.nodes
	}
	if r < 1 || len(rg.tokens) == 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(rg.tokens), func(i int) bool { return rg.tokens[i].hash >= h })
	out := make([]int, 0, r)
	seen := make(map[int]bool, r)
	for i := 0; i < len(rg.tokens) && len(out) < r; i++ {
		t := rg.tokens[(start+i)%len(rg.tokens)]
		if !seen[t.node] {
			seen[t.node] = true
			out = append(out, t.node)
		}
	}
	return out
}
