package cluster

// repair.go is the anti-entropy rejoin path that lifts the client's
// permanent fail-stop restriction: a member marked down is reprobed,
// resynchronized from its healthy replicas via the RESYNC digest
// protocol, and restored to the read/write set.
//
// The digest exchange keeps the repair proportional to the damage,
// not to the table: per-row digests from the healthy members (filtered
// to rows whose replica set includes the returning node) compose into
// expected bucket digests; buckets where the returning node already
// agrees are pruned in one round trip, and only the differing buckets
// are diffed row by row. Rows missing or divergent on the returning
// node are copied whole from a healthy holder (rows are the atomic
// repair unit — every replica holds a row completely); rows present
// on the returning node that no healthy replica vouches for (writes it
// acked that later failed their quorum, or deletes it missed) are
// removed. Healthy replicas are authoritative by construction: writes
// only ack against the up set, so the up set's state is exactly the
// acked history.

import (
	"fmt"

	"repro/internal/assoc"
	"repro/internal/tripled"
)

// repairBuckets is the digest partition width of a repair: wide enough
// that an undamaged table prunes almost everything, small enough that
// the DIGEST exchange is one short block.
const repairBuckets = 64

// Repair reprobes every member marked down and resynchronizes each one
// from its healthy replicas, returning the addresses restored. Members
// that cannot be reached or resynced stay down (their error is
// collected, repair of the others continues). With Replicas or more
// members down some row may have lost every copy and no authoritative
// state exists — that fails immediately with ErrStaleRing.
func (c *Client) Repair() ([]string, error) {
	if c.downCount() == 0 {
		return nil, nil
	}
	if c.downCount() >= c.cfg.Replicas {
		return nil, c.staleErr("repair")
	}
	var repaired []string
	var firstErr error
	for i, n := range c.nodes {
		if !n.down {
			continue
		}
		if err := c.repairNode(i); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: repair %s: %w", n.addr, err)
			}
			continue
		}
		n.down = false
		n.err = nil
		c.repairs++
		repaired = append(repaired, n.addr)
	}
	return repaired, firstErr
}

// repairNode resynchronizes one down member. On success the probe
// connection becomes the node's live connection; the caller flips the
// health bit.
func (c *Client) repairNode(i int) error {
	n := c.nodes[i]
	target, err := tripled.Dial(n.addr,
		tripled.WithDialTimeout(c.cfg.DialTimeout),
		tripled.WithIOTimeout(c.cfg.IOTimeout))
	if err != nil {
		return err
	}
	adopted := false
	defer func() {
		if !adopted {
			target.Close()
		}
	}()

	// Expected state of node i: every row whose replica set includes i,
	// with its digest and a healthy member to copy it from. Replicas are
	// written in lockstep, so whichever healthy holder reports a row
	// reports the same digest.
	type expectedRow struct {
		dig    tripled.RowDigestEntry
		holder int
	}
	expected := make(map[string]expectedRow)
	for j, nj := range c.nodes {
		if nj.down || j == i {
			continue
		}
		var rds []tripled.RowDigestEntry
		err := c.onNode(j, func(cl *tripled.Client) error {
			var e error
			rds, e = cl.RowDigests(repairBuckets, -1)
			return e
		})
		if err != nil {
			if tripled.Retryable(err) {
				continue // j just died; the guard below decides if that is fatal
			}
			return err
		}
		for _, rd := range rds {
			for _, r := range c.ring.replicasFor(rd.Row, c.cfg.Replicas) {
				if r == i {
					expected[rd.Row] = expectedRow{dig: rd, holder: j}
					break
				}
			}
		}
	}
	if c.downCount() >= c.cfg.Replicas {
		return c.staleErr("repair")
	}

	expBuckets := make([]tripled.BucketDigest, repairBuckets)
	for row, e := range expected {
		b := tripled.DigestBucket(row, repairBuckets)
		expBuckets[b].Count += e.dig.Count
		expBuckets[b].Sum += e.dig.Sum
	}
	gotBuckets, err := target.BucketDigests(repairBuckets)
	if err != nil {
		return err
	}
	for b := 0; b < repairBuckets; b++ {
		if gotBuckets[b] == expBuckets[b] {
			continue // bucket already in sync, nothing to stream
		}
		gotRows, err := target.RowDigests(repairBuckets, b)
		if err != nil {
			return err
		}
		got := make(map[string]tripled.RowDigestEntry, len(gotRows))
		for _, rd := range gotRows {
			got[rd.Row] = rd
		}
		for row, e := range expected {
			if tripled.DigestBucket(row, repairBuckets) != b {
				continue
			}
			if g, ok := got[row]; ok && g.Count == e.dig.Count && g.Sum == e.dig.Sum {
				continue
			}
			if err := c.copyRow(row, e.holder, target); err != nil {
				return err
			}
		}
		for row := range got {
			if _, ok := expected[row]; ok {
				continue
			}
			if err := deleteRow(target, row); err != nil {
				return err
			}
		}
	}
	if n.c != nil {
		n.c.Close()
	}
	n.c = target
	adopted = true
	return nil
}

// copyRow makes target's copy of row identical to the healthy holder's:
// extra columns are deleted, then every authoritative cell is written.
func (c *Client) copyRow(row string, holder int, target *tripled.Client) error {
	var want map[string]assoc.Value
	if err := c.onNode(holder, func(cl *tripled.Client) error {
		m, err := cl.Row(row)
		if err == nil {
			want = m
		}
		return err
	}); err != nil {
		return err
	}
	have, err := target.Row(row)
	if err != nil {
		return err
	}
	var extra []tripled.CellKey
	for col := range have {
		if _, ok := want[col]; !ok {
			extra = append(extra, tripled.CellKey{Row: row, Col: col})
		}
	}
	if len(extra) > 0 {
		if err := target.DeleteBatch(extra); err != nil {
			return err
		}
	}
	cells := make([]tripled.Cell, 0, len(want))
	for col, v := range want {
		cells = append(cells, tripled.Cell{Row: row, Col: col, Val: v})
	}
	return target.PutBatch(cells)
}

// deleteRow removes every cell of a row no healthy replica vouches for.
func deleteRow(target *tripled.Client, row string) error {
	have, err := target.Row(row)
	if err != nil {
		return err
	}
	if len(have) == 0 {
		return nil
	}
	keys := make([]tripled.CellKey, 0, len(have))
	for col := range have {
		keys = append(keys, tripled.CellKey{Row: row, Col: col})
	}
	return target.DeleteBatch(keys)
}
