package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/assoc"
	"repro/internal/tripled"
)

// Defaults for the cluster transport. Unlike the plain client, the
// cluster client always arms an I/O deadline: failover only works if a
// blackholed replica turns into a timeout instead of a hang.
const (
	DefaultReplicas  = 2
	DefaultIOTimeout = 5 * time.Second
)

// Config describes a cluster membership and the transport policy used
// against it.
type Config struct {
	Addrs    []string // member addresses; order is part of the ring identity
	Replicas int      // copies of every cell (clamped to len(Addrs)); default 2
	VNodes   int      // virtual nodes per member; default DefaultVNodes

	DialTimeout time.Duration // per-connect bound; default tripled.DefaultDialTimeout
	IOTimeout   time.Duration // per-read/write deadline; default DefaultIOTimeout
	Retry       tripled.Retry // per-node retry/backoff policy; zero value = tripled.DefaultRetry
}

func (c Config) withDefaults() (Config, error) {
	if len(c.Addrs) == 0 {
		return c, fmt.Errorf("cluster: no member addresses")
	}
	if c.Replicas < 1 {
		c.Replicas = DefaultReplicas
	}
	if c.Replicas > len(c.Addrs) {
		c.Replicas = len(c.Addrs)
	}
	if c.VNodes < 1 {
		c.VNodes = DefaultVNodes
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = DefaultIOTimeout
	}
	return c, nil
}

// ParseSpec parses the textual cluster spec accepted wherever a single
// store address used to go:
//
//	"host:p1,host:p2,host:p3[;replicas=N][;vnodes=N]
//	 [;io_timeout=D][;dial_timeout=D][;retries=N]"
//
// Durations use Go syntax ("500ms"). Whitespace around addresses and
// options is ignored. The timeout options exist so one StoreAddr
// string fully describes the transport — scenario suites and the
// daemon tune failover latency without new plumbing.
func ParseSpec(spec string) (Config, error) {
	parts := strings.Split(spec, ";")
	var cfg Config
	for _, a := range strings.Split(parts[0], ",") {
		if a = strings.TrimSpace(a); a != "" {
			cfg.Addrs = append(cfg.Addrs, a)
		}
	}
	if len(cfg.Addrs) == 0 {
		return cfg, fmt.Errorf("cluster: spec %q names no addresses", spec)
	}
	for _, opt := range parts[1:] {
		opt = strings.TrimSpace(opt)
		if opt == "" {
			continue
		}
		kv := strings.SplitN(opt, "=", 2)
		if len(kv) != 2 {
			return cfg, fmt.Errorf("cluster: malformed option %q in spec %q", opt, spec)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		switch key {
		case "replicas", "vnodes", "retries":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return cfg, fmt.Errorf("cluster: option %q needs a positive integer", opt)
			}
			switch key {
			case "replicas":
				cfg.Replicas = n
			case "vnodes":
				cfg.VNodes = n
			case "retries":
				cfg.Retry.Attempts = n
			}
		case "io_timeout", "dial_timeout":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return cfg, fmt.Errorf("cluster: option %q needs a positive duration", opt)
			}
			if key == "io_timeout" {
				cfg.IOTimeout = d
			} else {
				cfg.DialTimeout = d
			}
		default:
			return cfg, fmt.Errorf("cluster: unknown option %q in spec %q", kv[0], spec)
		}
	}
	return cfg, nil
}

// IsClusterSpec reports whether a store address names a cluster (any
// comma or option separator) rather than a single server.
func IsClusterSpec(spec string) bool { return strings.ContainsAny(spec, ",;") }

// node is the client's view of one member: its lazily dialed
// connection and its fail-stop health bit.
type node struct {
	addr string
	c    *tripled.Client
	down bool
	err  error // the failure that took it down
}

// Client is a replicated tripled client over a consistent-hash ring.
// It implements tripled.Conn, so every caller programmed against the
// single-server client — the study pipeline, the daemon, the load
// tools — works against a cluster unchanged.
//
// Like *tripled.Client, a Client is not safe for concurrent use: open
// one per goroutine. Health state is per-client by design — a node is
// "down" from the point of view of the client that watched it fail.
type Client struct {
	cfg       Config
	ring      *ring
	nodes     []*node
	rng       *rand.Rand
	failovers int
	repairs   int
}

var _ tripled.Conn = (*Client)(nil)

// New builds a cluster client over the membership. Connections are
// dialed lazily, so New succeeds even if members are down — they are
// discovered down on first use.
func New(cfg Config) (*Client, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	nodes := make([]*node, len(cfg.Addrs))
	for i, addr := range cfg.Addrs {
		nodes[i] = &node{addr: addr}
	}
	return &Client{
		cfg:   cfg,
		ring:  buildRing(cfg.Addrs, cfg.VNodes),
		nodes: nodes,
		rng:   rand.New(rand.NewSource(time.Now().UnixNano())),
	}, nil
}

// Dial parses a cluster spec and builds a client over it.
func Dial(spec string, opts ...Option) (*Client, error) {
	cfg, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	for _, o := range opts {
		o(&cfg)
	}
	return New(cfg)
}

// Option adjusts a parsed spec's transport policy before dialing.
type Option func(*Config)

// WithTimeouts overrides the dial and I/O deadlines (zero keeps the
// default for that field).
func WithTimeouts(dial, io time.Duration) Option {
	return func(c *Config) {
		if dial > 0 {
			c.DialTimeout = dial
		}
		if io > 0 {
			c.IOTimeout = io
		}
	}
}

// WithRetry overrides the per-node retry policy.
func WithRetry(r tripled.Retry) Option {
	return func(c *Config) { c.Retry = r }
}

// Close closes every live connection. The client is unusable after.
func (c *Client) Close() error {
	var first error
	for _, n := range c.nodes {
		if n.c != nil {
			if err := n.c.Close(); err != nil && first == nil {
				first = err
			}
			n.c = nil
		}
	}
	return first
}

// Health is the client's fail-stop view of the membership.
type Health struct {
	Nodes     int      // membership size
	Replicas  int      // effective replication factor
	Down      []string // addresses marked down, in member order
	Failovers int      // reads served by a non-primary replica
	Repairs   int      // members resynced and restored by Repair
}

// Degraded reports whether any member is marked down.
func (h Health) Degraded() bool { return len(h.Down) > 0 }

// Health returns the current membership view.
func (c *Client) Health() Health {
	h := Health{Nodes: len(c.nodes), Replicas: c.cfg.Replicas, Failovers: c.failovers, Repairs: c.repairs}
	for _, n := range c.nodes {
		if n.down {
			h.Down = append(h.Down, n.addr)
		}
	}
	return h
}

// markDown records a fail-stop failure: the node stays down until a
// Repair resynchronizes it (a returning node may have missed writes,
// so it must not serve reads again before anti-entropy brings it back
// in line with its healthy replicas).
func (c *Client) markDown(i int, err error) {
	n := c.nodes[i]
	if n.down {
		return
	}
	n.down = true
	n.err = err
	if n.c != nil {
		n.c.Close()
		n.c = nil
	}
}

// downCount counts members marked down.
func (c *Client) downCount() int {
	d := 0
	for _, n := range c.nodes {
		if n.down {
			d++
		}
	}
	return d
}

// staleErr builds the quorum-lost error for an operation.
func (c *Client) staleErr(op string) error {
	h := c.Health()
	return fmt.Errorf("cluster: %s: %d of %d nodes down (replication %d): %w",
		op, len(h.Down), h.Nodes, h.Replicas, tripled.ErrStaleRing)
}

// guardComplete fails an operation that cannot be answered completely:
// once Replicas or more members are down, some key may have lost every
// copy, and pretending otherwise would silently drop data.
func (c *Client) guardComplete(op string) error {
	if c.downCount() >= c.cfg.Replicas {
		return c.staleErr(op)
	}
	return nil
}

// conn returns node i's connection, dialing if needed.
func (c *Client) conn(i int) (*tripled.Client, error) {
	n := c.nodes[i]
	if n.c == nil {
		cl, err := tripled.Dial(n.addr,
			tripled.WithDialTimeout(c.cfg.DialTimeout),
			tripled.WithIOTimeout(c.cfg.IOTimeout))
		if err != nil {
			return nil, err
		}
		n.c = cl
	}
	return n.c, nil
}

// onNode runs op against node i under the retry policy: transport
// failures tear the connection down and retry on a fresh dial after a
// jittered backoff; protocol answers (including NF) return
// immediately. When every attempt fails on transport, the node is
// marked down and the last error returned. op must therefore be
// idempotent — which every tripled mutation is (PUT/DEL/BATCH replays
// converge) and every read trivially is.
func (c *Client) onNode(i int, op func(cl *tripled.Client) error) error {
	n := c.nodes[i]
	if n.down {
		return fmt.Errorf("cluster: node %s is down: %w", n.addr, n.err)
	}
	r := c.cfg.Retry
	if r.Attempts < 1 {
		r = tripled.DefaultRetry()
	}
	var err error
	for attempt := 1; attempt <= r.Attempts; attempt++ {
		if d := r.Backoff(attempt, c.rng); d > 0 {
			time.Sleep(d)
		}
		var cl *tripled.Client
		if cl, err = c.conn(i); err == nil {
			err = op(cl)
		}
		if err == nil || !tripled.Retryable(err) {
			return err
		}
		// Transport failure: the connection state is unknowable; drop it
		// so the next attempt replays op on a fresh dial.
		if n.c != nil {
			n.c.Close()
			n.c = nil
		}
	}
	c.markDown(i, err)
	return err
}

// upReplicas splits a key's replica set into live members.
func (c *Client) upReplicas(key string) (up []int, total []int) {
	total = c.ring.replicasFor(key, c.cfg.Replicas)
	for _, i := range total {
		if !c.nodes[i].down {
			up = append(up, i)
		}
	}
	return up, total
}

// writeReplicated applies one idempotent mutation of row to every live
// replica and enforces the quorum rule: the write succeeds iff it was
// acknowledged by at least one replica AND by a majority of the
// replicas still considered up once the attempt is over. Under the
// fail-stop view this means a write only fails when a node refuses it
// at the protocol level (fatal, returned directly) or when the key's
// whole replica set is gone (ErrStaleRing).
//
// notFoundOK treats the server's NF answer as an acknowledgement
// (deletes of absent cells are applied-by-definition).
func (c *Client) writeReplicated(opName, row string, notFoundOK bool, op func(cl *tripled.Client) error) error {
	up, _ := c.upReplicas(row)
	if len(up) == 0 {
		return c.staleErr(opName + " " + row)
	}
	acks, notFounds := 0, 0
	var lastTransport error
	for _, i := range up {
		err := c.onNode(i, op)
		switch {
		case err == nil:
			acks++
		case notFoundOK && errors.Is(err, tripled.ErrNotFound):
			notFounds++
		case tripled.Retryable(err):
			lastTransport = err // node is now marked down
		default:
			return err // protocol refusal: retrying elsewhere cannot help
		}
	}
	stillUp := 0
	for _, i := range up {
		if !c.nodes[i].down {
			stillUp++
		}
	}
	applied := acks + notFounds
	if stillUp == 0 || applied == 0 {
		return fmt.Errorf("cluster: %s %s: no replica acknowledged (last: %v): %w",
			opName, row, lastTransport, tripled.ErrStaleRing)
	}
	if need := stillUp/2 + 1; applied < need {
		return fmt.Errorf("cluster: %s %s: %d of %d required acks (last: %v): %w",
			opName, row, applied, need, lastTransport, tripled.ErrStaleRing)
	}
	if notFoundOK && acks == 0 && notFounds > 0 {
		return tripled.ErrNotFound
	}
	return nil
}

// readFailover runs one row-addressed read against the key's replicas
// in preference order, failing over to the next replica on any
// transport failure. Protocol answers (values, NF) are authoritative
// from whichever replica produced them, because replicas of a row are
// written in lockstep.
func (c *Client) readFailover(opName, row string, op func(cl *tripled.Client) error) error {
	up, _ := c.upReplicas(row)
	var lastErr error
	for pos, i := range up {
		err := c.onNode(i, op)
		if err == nil || !tripled.Retryable(err) {
			if pos > 0 {
				c.failovers++
			}
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("cluster: %s %s: no live replica (last: %v): %w",
		opName, row, lastErr, tripled.ErrStaleRing)
}

// Put stores a value on every live replica of row.
func (c *Client) Put(row, col string, v assoc.Value) error {
	return c.writeReplicated("put", row, false, func(cl *tripled.Client) error {
		return cl.Put(row, col, v)
	})
}

// Delete removes a cell from every live replica; ErrNotFound when no
// replica held it.
func (c *Client) Delete(row, col string) error {
	return c.writeReplicated("del", row, true, func(cl *tripled.Client) error {
		return cl.Delete(row, col)
	})
}

// Get fetches a value from the first live replica of row, failing over
// on transport errors; ErrNotFound when absent.
func (c *Client) Get(row, col string) (assoc.Value, error) {
	var out assoc.Value
	err := c.readFailover("get", row, func(cl *tripled.Client) error {
		v, err := cl.Get(row, col)
		if err == nil {
			out = v
		}
		return err
	})
	return out, err
}

// Row fetches all cells of a row (rows are whole on every replica).
func (c *Client) Row(row string) (map[string]assoc.Value, error) {
	var out map[string]assoc.Value
	err := c.readFailover("row", row, func(cl *tripled.Client) error {
		m, err := cl.Row(row)
		if err == nil {
			out = m
		}
		return err
	})
	return out, err
}

// replicaCache memoizes replicasFor per row during bulk operations.
type replicaCache struct {
	c *Client
	m map[string][]int
}

func (rc *replicaCache) get(row string) []int {
	if reps, ok := rc.m[row]; ok {
		return reps
	}
	reps := rc.c.ring.replicasFor(row, rc.c.cfg.Replicas)
	rc.m[row] = reps
	return reps
}

// PutBatch routes every cell to its replicas and writes each node's
// share in one batched call; per-node transport failures are retried
// by replaying the whole share on a fresh connection (batches are
// idempotent). It then enforces the per-cell quorum rule, so a batch
// only succeeds when every cell is durable on a majority of its
// still-live replicas.
func (c *Client) PutBatch(cells []tripled.Cell) error {
	if len(cells) == 0 {
		return nil
	}
	rc := &replicaCache{c: c, m: make(map[string][]int)}
	shares := make([][]tripled.Cell, len(c.nodes))
	for _, cell := range cells {
		for _, i := range rc.get(cell.Row) {
			shares[i] = append(shares[i], cell)
		}
	}
	if err := c.writeShares("batch", shares, 0); err != nil {
		return err
	}
	return c.checkCellQuorum("batch", cells, rc)
}

// writeShares writes each node's cell share, skipping down nodes and
// empty shares. A fatal (protocol) refusal aborts; transport
// exhaustion marks the node down and moves on — the quorum check
// afterwards decides whether the operation as a whole survived.
// batchSize > 0 streams shares through the pipelined multi-BATCH path
// instead of one monolithic batch.
func (c *Client) writeShares(opName string, shares [][]tripled.Cell, batchSize int) error {
	for i, share := range shares {
		if len(share) == 0 || c.nodes[i].down {
			continue
		}
		share := share
		err := c.onNode(i, func(cl *tripled.Client) error {
			if batchSize > 0 {
				p := cl.StartPipeline(batchSize)
				for _, cell := range share {
					p.Put(cell.Row, cell.Col, cell.Val)
				}
				return p.Close()
			}
			return cl.PutBatch(share)
		})
		if err != nil && !tripled.Retryable(err) {
			return fmt.Errorf("cluster: %s on %s: %w", opName, c.nodes[i].addr, err)
		}
	}
	return nil
}

// checkCellQuorum verifies, after a bulk write, that every cell kept a
// majority of its still-up replicas (and at least one). Nodes that
// survived writeShares hold their whole share, so the check reduces to
// health arithmetic per distinct row.
func (c *Client) checkCellQuorum(opName string, cells []tripled.Cell, rc *replicaCache) error {
	checked := make(map[string]bool, len(rc.m))
	for _, cell := range cells {
		if checked[cell.Row] {
			continue
		}
		checked[cell.Row] = true
		up := 0
		for _, i := range rc.get(cell.Row) {
			if !c.nodes[i].down {
				up++
			}
		}
		if up == 0 {
			return fmt.Errorf("cluster: %s: row %q lost every replica: %w",
				opName, cell.Row, tripled.ErrStaleRing)
		}
	}
	return nil
}

// eachUpNode runs op on every currently-up node, tolerating per-node
// transport exhaustion (the node is marked down) but aborting on
// protocol refusals.
func (c *Client) eachUpNode(opName string, op func(cl *tripled.Client) error) error {
	for i, n := range c.nodes {
		if n.down {
			continue
		}
		if err := c.onNode(i, op); err != nil && !tripled.Retryable(err) {
			return fmt.Errorf("cluster: %s on %s: %w", opName, n.addr, err)
		}
	}
	return nil
}

// ScanAllRows merges the row scan from every live node. Any single
// node's copy is partial (it holds only its replicas), but with fewer
// than Replicas nodes down the union over live nodes is complete;
// beyond that the scan fails with ErrStaleRing rather than silently
// dropping rows.
func (c *Client) ScanAllRows(start, end string, pageSize int) ([]string, error) {
	if err := c.guardComplete("scan"); err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	err := c.eachUpNode("scan", func(cl *tripled.Client) error {
		rows, err := cl.ScanAllRows(start, end, pageSize)
		if err != nil {
			return err
		}
		for _, r := range rows {
			seen[r] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := c.guardComplete("scan"); err != nil {
		return nil, err
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out, nil
}

// FetchAssoc merges the prefix export from every live node (replica
// copies of a cell are identical, so the merge is idempotent), under
// the same completeness guard as ScanAllRows.
func (c *Client) FetchAssoc(prefix string, pageRows int) (*assoc.Assoc, error) {
	if err := c.guardComplete("fetch " + prefix); err != nil {
		return nil, err
	}
	out := assoc.New()
	err := c.eachUpNode("fetch", func(cl *tripled.Client) error {
		a, err := cl.FetchAssoc(prefix, pageRows)
		if err != nil {
			return err
		}
		a.Iterate(func(row, col string, v assoc.Value) bool {
			out.Set(row, col, v)
			return true
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := c.guardComplete("fetch " + prefix); err != nil {
		return nil, err
	}
	return out, nil
}

// TopRowsByDegree merges each live node's local top-k. Rows are whole
// on every replica, so a row's local degree equals its global degree
// wherever it appears, and any global top-k row is necessarily in the
// local top-k of each node holding it — the merge is exact, not
// approximate.
func (c *Client) TopRowsByDegree(k int) ([]tripled.RowDegree, error) {
	if err := c.guardComplete("topdeg"); err != nil {
		return nil, err
	}
	deg := make(map[string]int)
	err := c.eachUpNode("topdeg", func(cl *tripled.Client) error {
		top, err := cl.TopRowsByDegree(k)
		if err != nil {
			return err
		}
		for _, rd := range top {
			if rd.Degree > deg[rd.Row] {
				deg[rd.Row] = rd.Degree
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := c.guardComplete("topdeg"); err != nil {
		return nil, err
	}
	out := make([]tripled.RowDegree, 0, len(deg))
	for row, d := range deg {
		out = append(out, tripled.RowDegree{Row: row, Degree: d})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Degree != out[b].Degree {
			return out[a].Degree > out[b].Degree
		}
		return out[a].Row < out[b].Row
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// DeletePrefix clears the prefix on every live node. Deletes are
// writes: losing more than Replicas-1 nodes mid-delete fails the
// operation, because rows whose replicas were all on dead nodes can no
// longer be proven gone.
func (c *Client) DeletePrefix(prefix string, pageRows int) error {
	if err := c.guardComplete("delete " + prefix); err != nil {
		return err
	}
	if err := c.eachUpNode("delete", func(cl *tripled.Client) error {
		return cl.DeletePrefix(prefix, pageRows)
	}); err != nil {
		return err
	}
	return c.guardComplete("delete " + prefix)
}

// PublishAssoc replaces the table under prefix cluster-wide: clear the
// prefix on every live node, route each cell to its replicas, and
// stream each node's share through the pipelined batch path. A node
// dying mid-publish has its share replayed on a fresh connection
// (publishes are idempotent) and, failing that, is marked down — the
// publish still succeeds as long as every cell retains a live replica
// majority, which is exactly how the kill-a-node soak keeps its
// byte-parity guarantee.
func (c *Client) PublishAssoc(prefix string, a *assoc.Assoc, batchSize int) error {
	if err := c.DeletePrefix(prefix, 512); err != nil {
		return err
	}
	rc := &replicaCache{c: c, m: make(map[string][]int)}
	shares := make([][]tripled.Cell, len(c.nodes))
	var cells []tripled.Cell
	a.Iterate(func(row, col string, v assoc.Value) bool {
		cell := tripled.Cell{Row: prefix + row, Col: col, Val: v}
		cells = append(cells, cell)
		for _, i := range rc.get(cell.Row) {
			shares[i] = append(shares[i], cell)
		}
		return true
	})
	if batchSize < 1 {
		batchSize = 1024
	}
	if err := c.writeShares("publish "+prefix, shares, batchSize); err != nil {
		return err
	}
	return c.checkCellQuorum("publish "+prefix, cells, rc)
}
