package cluster

// repair_test.go gates the anti-entropy rejoin path end to end, by
// extending the PR-8 fault soaks with a healing phase: the blackholed
// replica is un-blackholed and Repair must restore it byte-identical
// to the replay oracle's view of its partition, and a replica SIGKILLed
// mid-soak (a real subprocess with a WAL data dir — re-exec'd via the
// helper-process pattern in TestMain) must restart from its log and
// rejoin the same way. Both run under -race in CI.

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/assoc"
	"repro/internal/faultinject"
	"repro/internal/tripled"
)

const (
	nodeHelperEnv     = "CLUSTER_NODE_HELPER"
	nodeHelperDirEnv  = "CLUSTER_NODE_DIR"
	nodeHelperAddrEnv = "CLUSTER_NODE_ADDR"
)

func TestMain(m *testing.M) {
	if os.Getenv(nodeHelperEnv) == "1" {
		runNodeHelper()
		return
	}
	os.Exit(m.Run())
}

// runNodeHelper is the subprocess body: one durable cluster member.
func runNodeHelper() {
	addr := os.Getenv(nodeHelperAddrEnv)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	srv, err := tripled.Serve(tripled.NewStoreStripes(4), addr,
		tripled.WithDataDir(os.Getenv(nodeHelperDirEnv)))
	if err != nil {
		fmt.Fprintln(os.Stderr, "node helper:", err)
		os.Exit(1)
	}
	fmt.Printf("LISTEN %s\n", srv.Addr())
	select {} // hold until SIGKILL
}

// startNodeProcess re-execs this test binary as a durable member.
func startNodeProcess(t *testing.T, dir, addr string) *faultinject.Process {
	t.Helper()
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	p, err := faultinject.StartProcess(bin, nil, []string{
		nodeHelperEnv + "=1",
		nodeHelperDirEnv + "=" + dir,
		nodeHelperAddrEnv + "=" + addr,
	}, "LISTEN ", 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Kill() })
	return p
}

// discoverDown probes distinct keys until the client has marked want
// members down (its fail-stop discovery of the injected fault).
func discoverDown(t *testing.T, c *Client, want int) {
	t.Helper()
	for i := 0; i < 120 && c.downCount() < want; i++ {
		c.Get(fmt.Sprintf("probe-%d", i), "x")
	}
	if got := c.downCount(); got != want {
		t.Fatalf("probes marked %d members down, want %d", got, want)
	}
}

// partitionOracle restricts the replay oracle to the rows whose
// replica set (on the ring the clients actually used) includes node i.
func partitionOracle(addrs []string, i int, oracle *tripled.Store) *tripled.Store {
	ring := buildRing(addrs, DefaultVNodes)
	want := tripled.NewStoreStripes(1)
	oracle.ToAssoc().Iterate(func(r, c string, v assoc.Value) bool {
		for _, rep := range ring.replicasFor(r, 2) {
			if rep == i {
				want.Put(r, c, v)
				break
			}
		}
		return true
	})
	return want
}

// checkPartitionParity holds a healed member's full content (as an
// assoc) byte-identical — canonical sorted log form — to the oracle's
// view of its partition.
func checkPartitionParity(t *testing.T, addrs []string, i int, got *assoc.Assoc, oracle *tripled.Store) {
	t.Helper()
	gotStore := tripled.NewStoreStripes(1)
	if err := gotStore.LoadAssoc(got); err != nil {
		t.Fatal(err)
	}
	var gb, wb bytes.Buffer
	if err := gotStore.WriteLog(&gb); err != nil {
		t.Fatal(err)
	}
	if err := partitionOracle(addrs, i, oracle).WriteLog(&wb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb.Bytes(), wb.Bytes()) {
		t.Fatalf("node %d: healed content (%d bytes) not byte-identical to its oracle partition (%d bytes)",
			i, gb.Len(), wb.Len())
	}
}

// TestClusterBlackholeHealRepairRejoins: the PR-8 blackhole soak plus
// the healing phase the fail-stop design deferred — once the partition
// lifts, Repair resynchronizes the stale member via RESYNC digests and
// restores it to the ring, byte-identical to the replay oracle.
func TestClusterBlackholeHealRepairRejoins(t *testing.T) {
	const clients = 4
	ops := 120
	if testing.Short() {
		ops = 40
	}
	tc := startCluster(t, 3, true)
	runSoak(t, tc, clients, ops, 300*time.Millisecond, func() {
		tc.proxies[1].SetMode(faultinject.Blackhole)
	})

	c := tc.client(t, 2, 300*time.Millisecond)
	discoverDown(t, c, 1)
	if h := c.Health(); len(h.Down) != 1 || h.Down[0] != tc.addrs[1] {
		t.Fatalf("health = %+v, want exactly node 1 down", h)
	}
	// While the member is still dark, Repair must fail, not hang or lie.
	if repaired, err := c.Repair(); err == nil || len(repaired) != 0 {
		t.Fatalf("Repair of a still-dark member: repaired=%v err=%v", repaired, err)
	}

	tc.proxies[1].SetMode(faultinject.Forward)
	repaired, err := c.Repair()
	if err != nil {
		t.Fatalf("Repair after heal: %v", err)
	}
	if !reflect.DeepEqual(repaired, []string{tc.addrs[1]}) {
		t.Fatalf("repaired %v, want [%s]", repaired, tc.addrs[1])
	}
	h := c.Health()
	if h.Degraded() || h.Repairs != 1 {
		t.Fatalf("post-repair health = %+v, want healthy with 1 repair", h)
	}

	oracle := replayOracle(clients, ops)
	// The healed replica holds its partition byte-identically...
	checkPartitionParity(t, tc.addrs, 1, tc.stores[1].ToAssoc(), oracle)
	// ...and the repaired client reads the whole ring at parity, with
	// the healed member back in rotation.
	a, err := c.FetchAssoc("", 128)
	if err != nil {
		t.Fatal(err)
	}
	top, err := c.TopRowsByDegree(10)
	if err != nil {
		t.Fatal(err)
	}
	diffAgainstOracle(t, a, top, oracle)
	// A fresh client (no repair history) agrees.
	got, gotTop := tc.mergedAssoc(t, 2, 300*time.Millisecond)
	diffAgainstOracle(t, got, gotTop, oracle)
}

// TestClusterKill9RestartWALRepairRejoins: the full durability story in
// one soak — a member running as a real durable subprocess is SIGKILLed
// mid-soak, restarts on the same address from its WAL, and Repair
// brings it from its recovered (acked-prefix) state back to
// byte-parity with the replay oracle.
func TestClusterKill9RestartWALRepairRejoins(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	const clients = 4
	ops := 120
	dir := t.TempDir()

	tc := &testCluster{}
	for i := 0; i < 2; i++ {
		store := tripled.NewStoreStripes(4)
		srv, err := tripled.Serve(store, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		tc.stores = append(tc.stores, store)
		tc.servers = append(tc.servers, srv)
		tc.addrs = append(tc.addrs, srv.Addr())
	}
	p := startNodeProcess(t, dir, "127.0.0.1:0")
	addr2 := p.Ready
	tc.addrs = append(tc.addrs, addr2)

	runSoak(t, tc, clients, ops, 2*time.Second, func() {
		if err := p.Kill(); err != nil {
			t.Error(err)
		}
	})

	c := tc.client(t, 2, 2*time.Second)
	discoverDown(t, c, 1)

	// Restart from the same WAL on the same address, then rejoin.
	startNodeProcess(t, dir, addr2)
	repaired, err := c.Repair()
	if err != nil {
		t.Fatalf("Repair after WAL restart: %v", err)
	}
	if !reflect.DeepEqual(repaired, []string{addr2}) {
		t.Fatalf("repaired %v, want [%s]", repaired, addr2)
	}
	if h := c.Health(); h.Degraded() || h.Repairs != 1 {
		t.Fatalf("post-repair health = %+v", h)
	}

	oracle := replayOracle(clients, ops)
	got, gotTop := tc.mergedAssoc(t, 2, 2*time.Second)
	diffAgainstOracle(t, got, gotTop, oracle)

	// The healed subprocess holds its partition byte-identically; its
	// content is only reachable over the wire.
	nc, err := tripled.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	a, err := nc.FetchAssoc("", 128)
	if err != nil {
		t.Fatal(err)
	}
	checkPartitionParity(t, tc.addrs, 2, a, oracle)
}
