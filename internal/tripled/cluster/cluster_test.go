package cluster

// cluster_test.go gates the tentpole guarantees. The two soak tests
// follow the repo's oracle pattern (tripled's soak_test.go): N clients
// hammer a 3-node R=2 cluster with scripted, per-client-disjoint
// mutations while one node is killed (or blackholed) mid-run, and the
// surviving cluster state must diff byte-identical against a
// single-threaded replay of every mutation into a 1-stripe single-node
// store. Run under -race in CI.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/assoc"
	"repro/internal/faultinject"
	"repro/internal/tripled"
)

// --- ring ---

func TestRingDeterministicDistinctBalanced(t *testing.T) {
	addrs := []string{"10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"}
	r1 := buildRing(addrs, DefaultVNodes)
	r2 := buildRing(addrs, DefaultVNodes)

	counts := make([]int, len(addrs))
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("hf/2020-%02d/src-%d", i%12, i)
		reps := r1.replicasFor(key, 2)
		if !reflect.DeepEqual(reps, r2.replicasFor(key, 2)) {
			t.Fatalf("placement of %q differs between identical rings", key)
		}
		if len(reps) != 2 || reps[0] == reps[1] {
			t.Fatalf("replicas of %q = %v, want 2 distinct nodes", key, reps)
		}
		counts[reps[0]]++
	}
	for i, n := range counts {
		// 10000 keys over 3 nodes: each primary share should be within
		// a loose band of the fair 3333 — vnodes keep the split sane.
		if n < 2000 || n > 5000 {
			t.Fatalf("node %d owns %d of 10000 primaries; ring badly unbalanced %v", i, n, counts)
		}
	}
	if reps := r1.replicasFor("k", 5); len(reps) != 3 {
		t.Fatalf("replicas clamp to membership: got %v", reps)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec(" a:1 , b:2 ,c:3 ; replicas=3 ; vnodes=16 ; io_timeout=250ms ; retries=2 ")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg.Addrs, []string{"a:1", "b:2", "c:3"}) ||
		cfg.Replicas != 3 || cfg.VNodes != 16 ||
		cfg.IOTimeout != 250*time.Millisecond || cfg.Retry.Attempts != 2 {
		t.Fatalf("parsed %+v", cfg)
	}
	for _, bad := range []string{"", " ; ", "a:1;replicas=0", "a:1;what=3", "a:1;io_timeout=fast"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	if IsClusterSpec("a:1") || !IsClusterSpec("a:1,b:2") || !IsClusterSpec("a:1;replicas=1") {
		t.Error("IsClusterSpec misclassifies")
	}
}

// --- test cluster scaffolding ---

type testCluster struct {
	stores  []*tripled.Store
	servers []*tripled.Server
	proxies []*faultinject.Proxy // nil when not proxied
	addrs   []string
}

// startCluster brings up n single-node servers; with chaos true each
// sits behind a fault-injection proxy and addrs point at the proxies.
func startCluster(t *testing.T, n int, chaos bool) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		store := tripled.NewStoreStripes(4)
		srv, err := tripled.Serve(store, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		tc.stores = append(tc.stores, store)
		tc.servers = append(tc.servers, srv)
		addr := srv.Addr()
		if chaos {
			p, err := faultinject.New(addr)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { p.Close() })
			tc.proxies = append(tc.proxies, p)
			addr = p.Addr()
		}
		tc.addrs = append(tc.addrs, addr)
	}
	return tc
}

// fastRetry keeps fault-path tests quick: two tries, millisecond backoff.
func fastRetry() tripled.Retry {
	return tripled.Retry{Attempts: 2, Base: time.Millisecond, Max: 5 * time.Millisecond}
}

func (tc *testCluster) client(t *testing.T, replicas int, ioTimeout time.Duration) *Client {
	t.Helper()
	c, err := New(Config{
		Addrs:     tc.addrs,
		Replicas:  replicas,
		IOTimeout: ioTimeout,
		Retry:     fastRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// mergedAssoc reads the whole cluster back through a fresh client (its
// own fail-stop discovery of any dead node included).
func (tc *testCluster) mergedAssoc(t *testing.T, replicas int, ioTimeout time.Duration) (*assoc.Assoc, []tripled.RowDegree) {
	t.Helper()
	c := tc.client(t, replicas, ioTimeout)
	a, err := c.FetchAssoc("", 128)
	if err != nil {
		t.Fatalf("cluster fetch: %v", err)
	}
	top, err := c.TopRowsByDegree(10)
	if err != nil {
		t.Fatalf("cluster topdeg: %v", err)
	}
	return a, top
}

// diffAgainstOracle is the byte-parity verdict: every cell of the
// oracle present and equal in the cluster view, no extras, same top-k.
func diffAgainstOracle(t *testing.T, got *assoc.Assoc, gotTop []tripled.RowDegree, oracle *tripled.Store) {
	t.Helper()
	want := oracle.ToAssoc()
	if got.NNZ() != want.NNZ() {
		t.Errorf("cluster NNZ = %d, oracle %d", got.NNZ(), want.NNZ())
	}
	diffs := 0
	want.Iterate(func(r, c string, v assoc.Value) bool {
		if gv, ok := got.Get(r, c); !ok || gv != v {
			if diffs++; diffs <= 5 {
				t.Errorf("cell (%s,%s) = %v, oracle %v", r, c, gv, v)
			}
		}
		return true
	})
	got.Iterate(func(r, c string, v assoc.Value) bool {
		if _, ok := want.Get(r, c); !ok {
			if diffs++; diffs <= 5 {
				t.Errorf("cluster has stray cell (%s,%s) = %v", r, c, v)
			}
		}
		return true
	})
	if diffs > 0 {
		t.Fatalf("%d cells differ from the single-node replay oracle", diffs)
	}
	if !reflect.DeepEqual(gotTop, oracle.TopRowsByDegree(10)) {
		t.Errorf("top-k by degree differs from the oracle:\n got %v\nwant %v", gotTop, oracle.TopRowsByDegree(10))
	}
}

// --- scripted soak (mirrors tripled soak_test.go, on the Conn surface) ---

type soakOp struct {
	kind string // "put", "del", "batch", "get", "row", "topdeg", "scan"
	row  string
	col  string
	val  assoc.Value
	n    int
}

func soakScript(id, ops int) []soakOp {
	rng := rand.New(rand.NewSource(int64(2000 + id)))
	mine := func() string { return fmt.Sprintf("c%d-r%d", id, rng.Intn(40)) }
	anyRow := func() string { return fmt.Sprintf("c%d-r%d", rng.Intn(8), rng.Intn(40)) }
	cols := []string{"packets", "class", "intent", "tags"}
	out := make([]soakOp, 0, ops)
	for i := 0; i < ops; i++ {
		switch r := rng.Intn(100); {
		case r < 35:
			out = append(out, soakOp{kind: "put", row: mine(), col: cols[rng.Intn(len(cols))], val: assoc.Num(float64(rng.Intn(1000)))})
		case r < 45:
			out = append(out, soakOp{kind: "del", row: mine(), col: cols[rng.Intn(len(cols))]})
		case r < 55:
			out = append(out, soakOp{kind: "batch", n: 1 + rng.Intn(20)})
		case r < 70:
			out = append(out, soakOp{kind: "get", row: anyRow(), col: cols[rng.Intn(len(cols))]})
		case r < 80:
			out = append(out, soakOp{kind: "row", row: anyRow()})
		case r < 90:
			out = append(out, soakOp{kind: "topdeg", n: 1 + rng.Intn(10)})
		default:
			out = append(out, soakOp{kind: "scan", row: anyRow()})
		}
	}
	return out
}

func batchCells(id, opIdx, n int) []tripled.Cell {
	rng := rand.New(rand.NewSource(int64(id)*1e6 + int64(opIdx)))
	cells := make([]tripled.Cell, 0, n)
	for i := 0; i < n; i++ {
		cells = append(cells, tripled.Cell{
			Row: fmt.Sprintf("c%d-r%d", id, rng.Intn(40)),
			Col: fmt.Sprintf("b%d", rng.Intn(6)),
			Val: assoc.Num(float64(rng.Intn(1000))),
		})
	}
	return cells
}

func runOp(c *Client, id, i int, op soakOp) error {
	var err error
	switch op.kind {
	case "put":
		err = c.Put(op.row, op.col, op.val)
	case "del":
		if err = c.Delete(op.row, op.col); err == tripled.ErrNotFound {
			err = nil
		}
	case "batch":
		err = c.PutBatch(batchCells(id, i, op.n))
	case "get":
		if _, err = c.Get(op.row, op.col); err == tripled.ErrNotFound {
			err = nil
		}
	case "row":
		_, err = c.Row(op.row)
	case "topdeg":
		_, err = c.TopRowsByDegree(op.n)
	case "scan":
		_, err = c.ScanAllRows(op.row, "", 16)
	}
	if err != nil {
		return fmt.Errorf("client %d op %d (%s): %w", id, i, op.kind, err)
	}
	return nil
}

// replayOracle replays every client's mutations, in per-client order,
// into a single-node 1-stripe store — the ground truth the cluster
// must match because per-client mutation keyspaces are disjoint.
func replayOracle(clients, ops int) *tripled.Store {
	oracle := tripled.NewStoreStripes(1)
	for id := 0; id < clients; id++ {
		for i, op := range soakScript(id, ops) {
			switch op.kind {
			case "put":
				oracle.Put(op.row, op.col, op.val)
			case "del":
				oracle.Delete(op.row, op.col)
			case "batch":
				for _, cell := range batchCells(id, i, op.n) {
					oracle.Put(cell.Row, cell.Col, cell.Val)
				}
			}
		}
	}
	return oracle
}

// runSoak drives `clients` concurrent cluster clients through their
// scripts, pausing everyone at the halfway barrier so injectFault can
// take a node out at a deterministic op boundary.
func runSoak(t *testing.T, tc *testCluster, clients, ops int, ioTimeout time.Duration, injectFault func()) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	halfway := make(chan struct{}) // closed when every client reached ops/2
	resume := make(chan struct{})  // closed after the fault is injected
	var atHalf sync.WaitGroup
	atHalf.Add(clients)
	go func() {
		atHalf.Wait()
		close(halfway)
	}()
	go func() {
		<-halfway
		injectFault()
		close(resume)
	}()
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := New(Config{Addrs: tc.addrs, Replicas: 2, IOTimeout: ioTimeout, Retry: fastRetry()})
			if err != nil {
				atHalf.Done()
				errs <- err
				return
			}
			defer c.Close()
			script := soakScript(id, ops)
			for i, op := range script {
				if i == len(script)/2 {
					atHalf.Done()
					<-resume
				}
				if err := runOp(c, id, i, op); err != nil {
					errs <- err
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestClusterKillNodeMidSoak: 8 clients, 3 nodes, R=2; node 2's server
// process dies (listener and live connections torn down) once every
// client reaches its halfway op. Every client must ride through on
// retries and failover, and the surviving cluster contents must be
// byte-identical to the single-node replay oracle.
func TestClusterKillNodeMidSoak(t *testing.T) {
	const clients = 8
	ops := 300
	if testing.Short() {
		ops = 80
	}
	tc := startCluster(t, 3, false)
	runSoak(t, tc, clients, ops, 2*time.Second, func() {
		tc.servers[2].Close()
	})
	got, gotTop := tc.mergedAssoc(t, 2, 2*time.Second)
	diffAgainstOracle(t, got, gotTop, replayOracle(clients, ops))
}

// TestClusterBlackholeMidSoak: same shape, but the node does not die —
// it silently stops answering (chaos proxy blackhole), the failure
// only deadlines can detect. Short I/O timeouts keep the test fast.
func TestClusterBlackholeMidSoak(t *testing.T) {
	const clients = 4
	ops := 120
	if testing.Short() {
		ops = 40
	}
	tc := startCluster(t, 3, true)
	runSoak(t, tc, clients, ops, 300*time.Millisecond, func() {
		tc.proxies[1].SetMode(faultinject.Blackhole)
	})
	got, gotTop := tc.mergedAssoc(t, 2, 300*time.Millisecond)
	diffAgainstOracle(t, got, gotTop, replayOracle(clients, ops))
}

// TestClusterPublishFetchSurvivesNodeLoss: the pipeline's actual table
// path — PublishAssoc then FetchAssoc — stays byte-identical across a
// node killed between publish and fetch.
func TestClusterPublishFetchSurvivesNodeLoss(t *testing.T) {
	tc := startCluster(t, 3, false)
	c := tc.client(t, 2, 2*time.Second)

	table := assoc.New()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		table.Set(fmt.Sprintf("src-%04d", rng.Intn(400)), fmt.Sprintf("col-%d", rng.Intn(8)), assoc.Num(float64(i)))
	}
	if err := c.PublishAssoc("hf/2020-05/", table, 64); err != nil {
		t.Fatal(err)
	}
	check := func(cl *Client) {
		got, err := cl.FetchAssoc("hf/2020-05/", 64)
		if err != nil {
			t.Fatal(err)
		}
		if got.NNZ() != table.NNZ() {
			t.Fatalf("fetched %d cells, published %d", got.NNZ(), table.NNZ())
		}
		table.Iterate(func(r, col string, v assoc.Value) bool {
			if gv, ok := got.Get(r, col); !ok || gv != v {
				t.Fatalf("cell (%s,%s) = %v, want %v", r, col, gv, v)
			}
			return true
		})
	}
	check(c)
	tc.servers[0].Close()
	check(tc.client(t, 2, 2*time.Second)) // fresh client discovers the dead node itself
}

// TestClusterStaleRing: lose as many nodes as the replication factor
// and the client must refuse with ErrStaleRing instead of serving (or
// silently dropping) partial data.
func TestClusterStaleRing(t *testing.T) {
	tc := startCluster(t, 3, false)
	c := tc.client(t, 2, time.Second)
	if err := c.Put("r1", "c", assoc.Num(1)); err != nil {
		t.Fatal(err)
	}
	tc.servers[0].Close()
	tc.servers[1].Close()

	// Hammer keys until both dead nodes are discovered, then every
	// complete-coverage read must classify stale-ring.
	for i := 0; i < 50 && c.downCount() < 2; i++ {
		c.Get(fmt.Sprintf("probe-%d", i), "c")
	}
	if c.downCount() < 2 {
		t.Fatalf("probes discovered only %d dead nodes", c.downCount())
	}
	_, err := c.FetchAssoc("", 64)
	if tripled.Classify(err) != tripled.ClassStaleRing {
		t.Fatalf("fetch with R nodes down: err=%v class=%v, want stale-ring", err, tripled.Classify(err))
	}
	if _, err := c.ScanAllRows("", "", 64); tripled.Classify(err) != tripled.ClassStaleRing {
		t.Fatalf("scan with R nodes down misclassified: %v", err)
	}
	h := c.Health()
	if !h.Degraded() || len(h.Down) != 2 {
		t.Fatalf("health = %+v, want 2 down", h)
	}
}
