package assoc

import (
	"strconv"
	"testing"
)

func queryFixture() *Assoc {
	a := New()
	for i := 0; i < 20; i++ {
		row := "ip" + strconv.Itoa(i)
		a.Set(row, "packets", Num(float64(i*10)))
		class := "scanner"
		if i%3 == 0 {
			class = "worm"
		}
		a.Set(row, "class", Str(class))
	}
	a.Set("labelled-only", "class", Str("backscatter"))
	a.Set("string-packets", "packets", Str("not-a-number"))
	return a
}

func TestTopKByColumn(t *testing.T) {
	a := queryFixture()
	top := a.TopKByColumn("packets", 3)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Row != "ip19" || top[0].Value != 190 {
		t.Errorf("top[0] = %v", top[0])
	}
	if top[1].Value != 180 || top[2].Value != 170 {
		t.Errorf("top = %v", top)
	}
	// k larger than available rows.
	all := a.TopKByColumn("packets", 100)
	if len(all) != 20 { // string-packets row skipped
		t.Errorf("full top has %d rows, want 20", len(all))
	}
	if got := a.TopKByColumn("absent", 5); len(got) != 0 {
		t.Errorf("absent column top = %v", got)
	}
}

func TestTopKTieBreak(t *testing.T) {
	a := New()
	a.Set("b", "v", Num(1))
	a.Set("a", "v", Num(1))
	top := a.TopKByColumn("v", 2)
	if top[0].Row != "a" || top[1].Row != "b" {
		t.Errorf("tie break order = %v", top)
	}
}

func TestGroupByColumn(t *testing.T) {
	a := queryFixture()
	groups := a.GroupByColumn("class")
	byKey := make(map[string]int)
	for _, g := range groups {
		byKey[g.Key] = g.Rows
	}
	// 20 rows: i%3==0 -> worm (7: 0,3,6,9,12,15,18), others scanner (13);
	// plus 1 backscatter; string-packets row has no class -> "".
	if byKey["scanner"] != 13 || byKey["worm"] != 7 || byKey["backscatter"] != 1 || byKey[""] != 1 {
		t.Errorf("groups = %v", groups)
	}
	// sorted descending
	for i := 1; i < len(groups); i++ {
		if groups[i-1].Rows < groups[i].Rows {
			t.Error("groups not sorted")
		}
	}
}

func TestStatsByColumn(t *testing.T) {
	a := queryFixture()
	s := a.StatsByColumn("packets")
	if s.Count != 20 || s.Min != 0 || s.Max != 190 {
		t.Errorf("stats = %+v", s)
	}
	want := 0.0
	for i := 0; i < 20; i++ {
		want += float64(i * 10)
	}
	if s.Sum != want {
		t.Errorf("sum = %g, want %g", s.Sum, want)
	}
	if z := a.StatsByColumn("class"); z.Count != 0 {
		t.Errorf("string column stats = %+v", z)
	}
}

func TestNumericColumn(t *testing.T) {
	a := queryFixture()
	vals := a.NumericColumn("packets")
	if len(vals) != 20 {
		t.Fatalf("got %d values", len(vals))
	}
	// Row-key order: ip0, ip1, ip10, ip11, ... lexicographic.
	if vals[0] != 0 || vals[1] != 10 || vals[2] != 100 {
		t.Errorf("lexicographic order violated: %v", vals[:3])
	}
}
