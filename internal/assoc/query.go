package assoc

import "sort"

// query.go provides the D4M-style analytic helpers the honeyfarm and
// correlation layers use on associative arrays: top-K selection by a
// numeric column, group-by aggregation over a label column, and column
// statistics.

// RowValue pairs a row key with a numeric value, the result unit of
// TopKByColumn.
type RowValue struct {
	Row   string
	Value float64
}

// TopKByColumn returns up to k rows with the largest numeric values in
// the given column, descending, ties broken lexicographically by row.
// Rows lacking the column or holding non-numeric values are skipped.
func (a *Assoc) TopKByColumn(col string, k int) []RowValue {
	var all []RowValue
	for row, r := range a.cells {
		if v, ok := r[col]; ok && v.Numeric {
			all = append(all, RowValue{Row: row, Value: v.Num})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Value != all[j].Value {
			return all[i].Value > all[j].Value
		}
		return all[i].Row < all[j].Row
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// GroupCount is one group of GroupByColumn.
type GroupCount struct {
	Key  string
	Rows int
}

// GroupByColumn groups rows by the string value in the given column and
// returns per-group row counts, descending by count then ascending by
// key. Rows lacking the column are grouped under "".
func (a *Assoc) GroupByColumn(col string) []GroupCount {
	counts := make(map[string]int)
	for _, r := range a.cells {
		v := r[col]
		counts[v.String()]++
	}
	out := make([]GroupCount, 0, len(counts))
	for key, n := range counts {
		out = append(out, GroupCount{Key: key, Rows: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rows != out[j].Rows {
			return out[i].Rows > out[j].Rows
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// ColumnStats summarizes a numeric column.
type ColumnStats struct {
	Count    int
	Sum      float64
	Min, Max float64
}

// StatsByColumn computes count/sum/min/max over the numeric values of a
// column. Count is 0 when the column holds no numbers.
func (a *Assoc) StatsByColumn(col string) ColumnStats {
	s := ColumnStats{}
	first := true
	for _, r := range a.cells {
		v, ok := r[col]
		if !ok || !v.Numeric {
			continue
		}
		s.Count++
		s.Sum += v.Num
		if first || v.Num < s.Min {
			s.Min = v.Num
		}
		if first || v.Num > s.Max {
			s.Max = v.Num
		}
		first = false
	}
	return s
}

// NumericColumn extracts the numeric values of a column in row-key
// order, the bridge from D4M tables to the stats package's estimators.
func (a *Assoc) NumericColumn(col string) []float64 {
	rows := a.RowKeys()
	out := make([]float64, 0, len(rows))
	for _, row := range rows {
		if v, ok := a.cells[row][col]; ok && v.Numeric {
			out = append(out, v.Num)
		}
	}
	return out
}
