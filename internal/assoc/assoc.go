// Package assoc implements D4M-style associative arrays: sparse
// two-dimensional tables indexed by string row and column keys, the
// representation the paper uses for GreyNoise honeyfarm data and for the
// reduced CAIDA results at the correlation boundary ("After the unique
// sources and packet counts are computed ... the reduced results are
// converted to D4M associative arrays").
//
// An entry holds either a number or a string; sums operate on numbers.
// The paper's example
//
//	At('1.1.1.1', '2.2.2.2') = '3'
//
// is Set("1.1.1.1", "2.2.2.2", Num(3)).
package assoc

import (
	"fmt"
	"sort"
	"strconv"
	"sync/atomic"
)

// Value is a cell value: either numeric or a string.
type Value struct {
	Str     string
	Num     float64
	Numeric bool
}

// Num returns a numeric Value.
func Num(v float64) Value { return Value{Num: v, Numeric: true} }

// Str returns a string Value.
func Str(s string) Value { return Value{Str: s} }

// String renders the value the way D4M TSV files store it.
func (v Value) String() string {
	if v.Numeric {
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
	return v.Str
}

// add combines two values: numbers sum; strings keep the lexicographic
// maximum (a deterministic, associative, commutative choice mirroring
// D4M's collision rule for non-numeric data).
func add(a, b Value) Value {
	if a.Numeric && b.Numeric {
		return Num(a.Num + b.Num)
	}
	as, bs := a.String(), b.String()
	if as >= bs {
		return a
	}
	return b
}

// Assoc is a mutable associative array. The zero value is not usable;
// call New.
type Assoc struct {
	cells map[string]map[string]Value // row -> col -> value
	nnz   int

	// rowKeys caches the sorted row-key slice RowKeys returns; it is
	// invalidated (set nil) whenever a row appears or disappears. The
	// correlation and TSV paths call RowKeys per table per pass, so the
	// sort must not be paid on every call. The pointer is atomic so the
	// lazily built cache preserves the map's reader guarantee:
	// concurrent RowKeys calls (and other reads) are safe; mutation
	// still requires external exclusion, exactly as before.
	rowKeys atomic.Pointer[[]string]
}

// New returns an empty associative array.
func New() *Assoc {
	return &Assoc{cells: make(map[string]map[string]Value)}
}

// Set stores v at (row, col), replacing any existing value.
func (a *Assoc) Set(row, col string, v Value) {
	r, ok := a.cells[row]
	if !ok {
		r = make(map[string]Value)
		a.cells[row] = r
		a.rowKeys.Store(nil)
	}
	if _, exists := r[col]; !exists {
		a.nnz++
	}
	r[col] = v
}

// Accum adds v into (row, col) using the D4M collision rule.
func (a *Assoc) Accum(row, col string, v Value) {
	if old, ok := a.Get(row, col); ok {
		a.Set(row, col, add(old, v))
		return
	}
	a.Set(row, col, v)
}

// Get returns the value at (row, col) and whether it exists.
func (a *Assoc) Get(row, col string) (Value, bool) {
	r, ok := a.cells[row]
	if !ok {
		return Value{}, false
	}
	v, ok := r[col]
	return v, ok
}

// Delete removes the entry at (row, col) if present.
func (a *Assoc) Delete(row, col string) {
	if r, ok := a.cells[row]; ok {
		if _, exists := r[col]; exists {
			delete(r, col)
			a.nnz--
			if len(r) == 0 {
				delete(a.cells, row)
				a.rowKeys.Store(nil)
			}
		}
	}
}

// NNZ returns the number of stored cells.
func (a *Assoc) NNZ() int { return a.nnz }

// NRows returns the number of non-empty rows.
func (a *Assoc) NRows() int { return len(a.cells) }

// RowKeys returns the sorted row keys. The slice is cached until a row
// is added or removed and is shared across calls: callers must not
// modify it. Like every read, RowKeys is safe for concurrent readers
// (racing first calls each build the same slice; one wins the store).
func (a *Assoc) RowKeys() []string {
	if p := a.rowKeys.Load(); p != nil {
		return *p
	}
	keys := make([]string, 0, len(a.cells))
	for k := range a.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	a.rowKeys.Store(&keys)
	return keys
}

// ColKeys returns the sorted distinct column keys.
func (a *Assoc) ColKeys() []string {
	set := make(map[string]bool)
	for _, r := range a.cells {
		for c := range r {
			set[c] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// HasRow reports whether the row key is present.
func (a *Assoc) HasRow(row string) bool {
	_, ok := a.cells[row]
	return ok
}

// Row returns a copy of the row as a col->value map (nil if absent).
func (a *Assoc) Row(row string) map[string]Value {
	r, ok := a.cells[row]
	if !ok {
		return nil
	}
	out := make(map[string]Value, len(r))
	for c, v := range r {
		out[c] = v
	}
	return out
}

// Iterate visits every cell in sorted row-major order; stops early if fn
// returns false.
func (a *Assoc) Iterate(fn func(row, col string, v Value) bool) {
	for _, row := range a.RowKeys() {
		r := a.cells[row]
		cols := make([]string, 0, len(r))
		for c := range r {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		for _, col := range cols {
			if !fn(row, col, r[col]) {
				return
			}
		}
	}
}

// Copy returns a deep copy.
func (a *Assoc) Copy() *Assoc {
	out := New()
	for row, r := range a.cells {
		nr := make(map[string]Value, len(r))
		for c, v := range r {
			nr[c] = v
		}
		out.cells[row] = nr
		out.nnz += len(nr)
	}
	return out
}

// SubRows returns the sub-array of rows for which keep returns true
// (D4M's A(keys, :) sub-referencing).
func (a *Assoc) SubRows(keep func(string) bool) *Assoc {
	out := New()
	for row, r := range a.cells {
		if !keep(row) {
			continue
		}
		for c, v := range r {
			out.Set(row, c, v)
		}
	}
	return out
}

// SubCols returns the sub-array of columns for which keep returns true.
func (a *Assoc) SubCols(keep func(string) bool) *Assoc {
	out := New()
	for row, r := range a.cells {
		for c, v := range r {
			if keep(c) {
				out.Set(row, c, v)
			}
		}
	}
	return out
}

// Plus returns a + b with the D4M collision rule per cell.
func Plus(a, b *Assoc) *Assoc {
	out := a.Copy()
	for row, r := range b.cells {
		for c, v := range r {
			out.Accum(row, c, v)
		}
	}
	return out
}

// And returns the structural intersection: cells present in both, values
// combined with the collision rule.
func And(a, b *Assoc) *Assoc {
	out := New()
	for row, r := range a.cells {
		br, ok := b.cells[row]
		if !ok {
			continue
		}
		for c, v := range r {
			if bv, ok := br[c]; ok {
				out.Set(row, c, add(v, bv))
			}
		}
	}
	return out
}

// RowIntersect returns the sorted row keys present in both arrays — the
// source-set overlap at the heart of the paper's correlation measurement.
func RowIntersect(a, b *Assoc) []string {
	var small, large *Assoc
	if a.NRows() <= b.NRows() {
		small, large = a, b
	} else {
		small, large = b, a
	}
	var out []string
	for row := range small.cells {
		if _, ok := large.cells[row]; ok {
			out = append(out, row)
		}
	}
	sort.Strings(out)
	return out
}

// Transpose swaps rows and columns.
func (a *Assoc) Transpose() *Assoc {
	out := New()
	for row, r := range a.cells {
		for c, v := range r {
			out.Set(c, row, v)
		}
	}
	return out
}

// SumRows returns, for each row, the sum of its numeric cells as a
// single-column array under colName.
func (a *Assoc) SumRows(colName string) *Assoc {
	out := New()
	for row, r := range a.cells {
		var s float64
		any := false
		for _, v := range r {
			if v.Numeric {
				s += v.Num
				any = true
			}
		}
		if any {
			out.Set(row, colName, Num(s))
		}
	}
	return out
}

// String summarizes the array shape.
func (a *Assoc) String() string {
	return fmt.Sprintf("assoc.Assoc{rows: %d, cols: %d, nnz: %d}",
		a.NRows(), len(a.ColKeys()), a.NNZ())
}
