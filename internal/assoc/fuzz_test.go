package assoc

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTSV: the TSV reader must never panic, and anything it accepts
// must survive a write/read round trip unchanged.
func FuzzReadTSV(f *testing.F) {
	f.Add("r\tc\tn\t3\n")
	f.Add("1.2.3.4\tpackets\tn\t12345\nip\ttags\ts\tmirai,telnet\n")
	f.Add("r\tc\ts\t\n")
	f.Add("garbage")
	f.Add("a\tb\tq\tunknown-marker\n")
	f.Fuzz(func(t *testing.T, data string) {
		a, err := ReadTSV(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := a.WriteTSV(&buf); err != nil {
			// Keys with tabs/newlines cannot round trip; only reachable
			// if ReadTSV accepted such a key, which it cannot (fields
			// are tab-split), so a write failure is a real bug.
			t.Fatalf("accepted table failed to serialize: %v", err)
		}
		back, err := ReadTSV(&buf)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if back.NNZ() != a.NNZ() {
			t.Fatalf("round trip NNZ %d != %d", back.NNZ(), a.NNZ())
		}
		a.Iterate(func(r, c string, v Value) bool {
			got, ok := back.Get(r, c)
			if !ok || got.String() != v.String() {
				t.Fatalf("cell (%q,%q) corrupted: %v vs %v", r, c, got, v)
			}
			return true
		})
	})
}
