package assoc

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetGetDelete(t *testing.T) {
	a := New()
	a.Set("1.1.1.1", "2.2.2.2", Num(3))
	if v, ok := a.Get("1.1.1.1", "2.2.2.2"); !ok || v.Num != 3 {
		t.Fatal("paper's example cell not stored")
	}
	if a.NNZ() != 1 || a.NRows() != 1 {
		t.Errorf("NNZ=%d NRows=%d", a.NNZ(), a.NRows())
	}
	a.Set("1.1.1.1", "2.2.2.2", Num(5)) // replace, not grow
	if a.NNZ() != 1 {
		t.Error("replace grew NNZ")
	}
	a.Delete("1.1.1.1", "2.2.2.2")
	if a.NNZ() != 0 || a.NRows() != 0 {
		t.Error("delete left residue")
	}
	a.Delete("absent", "absent") // no-op must not panic or corrupt
	if a.NNZ() != 0 {
		t.Error("deleting absent cell changed NNZ")
	}
}

func TestAccumSumsNumbers(t *testing.T) {
	a := New()
	a.Accum("r", "c", Num(2))
	a.Accum("r", "c", Num(3))
	if v, _ := a.Get("r", "c"); v.Num != 5 {
		t.Errorf("accum = %g, want 5", v.Num)
	}
}

func TestAccumStringsLexMax(t *testing.T) {
	a := New()
	a.Accum("r", "c", Str("alpha"))
	a.Accum("r", "c", Str("zulu"))
	if v, _ := a.Get("r", "c"); v.Str != "zulu" {
		t.Errorf("string accum = %q, want zulu", v.Str)
	}
	a.Accum("r", "c", Str("mike"))
	if v, _ := a.Get("r", "c"); v.Str != "zulu" {
		t.Error("string accum is not a max")
	}
}

func TestValueString(t *testing.T) {
	if Num(3).String() != "3" {
		t.Errorf("Num(3) = %q", Num(3).String())
	}
	if Num(2.5).String() != "2.5" {
		t.Errorf("Num(2.5) = %q", Num(2.5).String())
	}
	if Str("scanner").String() != "scanner" {
		t.Error("Str round trip failed")
	}
}

func TestKeysSorted(t *testing.T) {
	a := New()
	for _, r := range []string{"9.9.9.9", "1.1.1.1", "5.5.5.5"} {
		a.Set(r, "seen", Num(1))
		a.Set(r, "class", Str("benign"))
	}
	rows := a.RowKeys()
	if !sort.StringsAreSorted(rows) || len(rows) != 3 {
		t.Errorf("RowKeys = %v", rows)
	}
	cols := a.ColKeys()
	if !sort.StringsAreSorted(cols) || len(cols) != 2 {
		t.Errorf("ColKeys = %v", cols)
	}
}

func TestIterateSortedAndEarlyStop(t *testing.T) {
	a := New()
	a.Set("b", "x", Num(1))
	a.Set("a", "y", Num(2))
	a.Set("a", "x", Num(3))
	var visits []string
	a.Iterate(func(r, c string, _ Value) bool {
		visits = append(visits, r+"/"+c)
		return true
	})
	want := []string{"a/x", "a/y", "b/x"}
	if strings.Join(visits, ",") != strings.Join(want, ",") {
		t.Errorf("iterate order = %v, want %v", visits, want)
	}
	n := 0
	a.Iterate(func(string, string, Value) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestCopyIndependent(t *testing.T) {
	a := New()
	a.Set("r", "c", Num(1))
	b := a.Copy()
	b.Set("r", "c2", Num(2))
	if a.NNZ() != 1 {
		t.Error("copy shares storage with original")
	}
	if b.NNZ() != 2 {
		t.Error("copy lost data")
	}
}

func TestSubRowsCols(t *testing.T) {
	a := New()
	for i := 0; i < 10; i++ {
		key := "ip" + strconv.Itoa(i)
		a.Set(key, "packets", Num(float64(i)))
		a.Set(key, "class", Str("scan"))
	}
	even := a.SubRows(func(r string) bool {
		n, _ := strconv.Atoi(strings.TrimPrefix(r, "ip"))
		return n%2 == 0
	})
	if even.NRows() != 5 {
		t.Errorf("SubRows kept %d rows", even.NRows())
	}
	onlyPackets := a.SubCols(func(c string) bool { return c == "packets" })
	if len(onlyPackets.ColKeys()) != 1 || onlyPackets.NNZ() != 10 {
		t.Errorf("SubCols wrong: %v", onlyPackets)
	}
}

func TestPlus(t *testing.T) {
	a, b := New(), New()
	a.Set("r1", "n", Num(1))
	a.Set("r2", "n", Num(2))
	b.Set("r2", "n", Num(10))
	b.Set("r3", "n", Num(3))
	sum := Plus(a, b)
	if v, _ := sum.Get("r2", "n"); v.Num != 12 {
		t.Errorf("Plus r2 = %g, want 12", v.Num)
	}
	if sum.NRows() != 3 {
		t.Errorf("Plus NRows = %d, want 3", sum.NRows())
	}
	// operands unchanged
	if v, _ := a.Get("r2", "n"); v.Num != 2 {
		t.Error("Plus mutated operand")
	}
}

func TestAnd(t *testing.T) {
	a, b := New(), New()
	a.Set("r1", "c", Num(1))
	a.Set("r2", "c", Num(2))
	b.Set("r2", "c", Num(5))
	b.Set("r2", "d", Num(6))
	got := And(a, b)
	if got.NNZ() != 1 {
		t.Fatalf("And NNZ = %d, want 1", got.NNZ())
	}
	if v, _ := got.Get("r2", "c"); v.Num != 7 {
		t.Errorf("And value = %g, want 7", v.Num)
	}
}

func TestRowIntersect(t *testing.T) {
	a, b := New(), New()
	for i := 0; i < 100; i++ {
		a.Set("ip"+strconv.Itoa(i), "c", Num(1))
	}
	for i := 50; i < 150; i++ {
		b.Set("ip"+strconv.Itoa(i), "c", Num(1))
	}
	inter := RowIntersect(a, b)
	if len(inter) != 50 {
		t.Fatalf("intersection size = %d, want 50", len(inter))
	}
	if !sort.StringsAreSorted(inter) {
		t.Error("intersection not sorted")
	}
	// symmetric
	inter2 := RowIntersect(b, a)
	if len(inter2) != len(inter) {
		t.Error("RowIntersect not symmetric")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New()
		for i := 0; i < 100; i++ {
			a.Set("r"+strconv.Itoa(rng.Intn(20)), "c"+strconv.Itoa(rng.Intn(20)), Num(float64(rng.Intn(10))))
		}
		tt := a.Transpose().Transpose()
		if tt.NNZ() != a.NNZ() {
			return false
		}
		same := true
		a.Iterate(func(r, c string, v Value) bool {
			got, ok := tt.Get(r, c)
			if !ok || got != v {
				same = false
				return false
			}
			return true
		})
		return same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSumRows(t *testing.T) {
	a := New()
	a.Set("r1", "a", Num(1))
	a.Set("r1", "b", Num(2))
	a.Set("r1", "label", Str("x")) // ignored by numeric sum
	a.Set("r2", "label", Str("y")) // row with no numbers: excluded
	s := a.SumRows("total")
	if v, _ := s.Get("r1", "total"); v.Num != 3 {
		t.Errorf("SumRows r1 = %g, want 3", v.Num)
	}
	if s.HasRow("r2") {
		t.Error("row with no numeric cells appeared in SumRows")
	}
}

func TestTSVRoundTrip(t *testing.T) {
	a := New()
	a.Set("1.2.3.4", "packets", Num(12345))
	a.Set("1.2.3.4", "classification", Str("malicious"))
	a.Set("5.6.7.8", "tags", Str("mirai,telnet"))
	a.Set("5.6.7.8", "first_seen", Str("2020-06-17"))
	a.Set("9.9.9.9", "score", Num(0.25))

	var buf bytes.Buffer
	if err := a.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != a.NNZ() {
		t.Fatalf("round trip NNZ %d != %d", back.NNZ(), a.NNZ())
	}
	a.Iterate(func(r, c string, v Value) bool {
		got, ok := back.Get(r, c)
		if !ok || got != v {
			t.Errorf("cell (%s,%s): got %v ok=%v, want %v", r, c, got, ok, v)
		}
		return true
	})
}

func TestTSVRejectsBadKeys(t *testing.T) {
	a := New()
	a.Set("bad\tkey", "c", Num(1))
	if err := a.WriteTSV(&bytes.Buffer{}); err == nil {
		t.Error("tab in key accepted")
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := []string{
		"onlyonefield\n",
		"r\tc\tn\tnotanumber\n",
		"r\tc\tq\tvalue\n",
	}
	for _, in := range cases {
		if _, err := ReadTSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadTSV(%q) succeeded, want error", in)
		}
	}
	// blank lines are fine
	a, err := ReadTSV(strings.NewReader("\nr\tc\tn\t1\n\n"))
	if err != nil || a.NNZ() != 1 {
		t.Errorf("blank-line handling: %v, nnz=%d", err, a.NNZ())
	}
}

func TestPlusCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		build := func() *Assoc {
			a := New()
			for i := 0; i < 50; i++ {
				a.Set("r"+strconv.Itoa(rng.Intn(10)), "c"+strconv.Itoa(rng.Intn(10)), Num(float64(rng.Intn(100))))
			}
			return a
		}
		a, b := build(), build()
		x, y := Plus(a, b), Plus(b, a)
		if x.NNZ() != y.NNZ() {
			return false
		}
		same := true
		x.Iterate(func(r, c string, v Value) bool {
			got, ok := y.Get(r, c)
			if !ok || got != v {
				same = false
				return false
			}
			return true
		})
		return same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStringSummary(t *testing.T) {
	a := New()
	a.Set("r", "c", Num(1))
	if got := a.String(); got != "assoc.Assoc{rows: 1, cols: 1, nnz: 1}" {
		t.Errorf("String() = %q", got)
	}
}

func BenchmarkAccum(b *testing.B) {
	a := New()
	rng := rand.New(rand.NewSource(1))
	keys := make([]string, 1<<16)
	for i := range keys {
		keys[i] = "10." + strconv.Itoa(rng.Intn(256)) + "." + strconv.Itoa(rng.Intn(256)) + "." + strconv.Itoa(rng.Intn(256))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Accum(keys[i%len(keys)], "packets", Num(1))
	}
}

func BenchmarkRowIntersect(b *testing.B) {
	x, y := New(), New()
	for i := 0; i < 1<<15; i++ {
		x.Set(strconv.Itoa(i), "c", Num(1))
		y.Set(strconv.Itoa(i+1<<14), "c", Num(1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RowIntersect(x, y)
	}
}

// TestRowKeysCache proves RowKeys is cached between calls and
// invalidated exactly when the row set changes: a new row, a row's last
// cell deleted, or a row re-added after deletion.
func TestRowKeysCache(t *testing.T) {
	a := New()
	a.Set("b", "c1", Num(1))
	a.Set("a", "c1", Num(1))
	k1 := a.RowKeys()
	if want := []string{"a", "b"}; !reflect.DeepEqual(k1, want) {
		t.Fatalf("RowKeys = %v, want %v", k1, want)
	}
	// Same-row mutations must not invalidate: the cached slice is reused.
	a.Set("a", "c2", Num(2))
	a.Accum("b", "c1", Num(1))
	a.Delete("a", "c2")
	k2 := a.RowKeys()
	if &k1[0] != &k2[0] {
		t.Error("cache rebuilt on a mutation that did not change the row set")
	}
	// A new row invalidates.
	a.Set("c", "c1", Num(1))
	if got, want := a.RowKeys(), []string{"a", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after new row: RowKeys = %v, want %v", got, want)
	}
	// Deleting a row's last cell invalidates.
	a.Delete("b", "c1")
	if got, want := a.RowKeys(), []string{"a", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after row removal: RowKeys = %v, want %v", got, want)
	}
	// Re-adding the row invalidates again.
	a.Set("b", "c9", Str("x"))
	if got, want := a.RowKeys(), []string{"a", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after re-add: RowKeys = %v, want %v", got, want)
	}
	// Empty array caches an empty (non-nil is irrelevant, just correct) slice.
	e := New()
	if got := e.RowKeys(); len(got) != 0 {
		t.Fatalf("empty RowKeys = %v", got)
	}
}

func BenchmarkRowKeysCached(b *testing.B) {
	a := New()
	for i := 0; i < 1<<14; i++ {
		a.Set(strconv.Itoa(i), "c", Num(1))
	}
	a.RowKeys()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.RowKeys()
	}
}

// TestRowKeysConcurrentReaders holds the reader guarantee under -race:
// the lazy sorted-keys cache must not turn concurrent read-only use of
// one Assoc (first RowKeys calls included) into a data race.
func TestRowKeysConcurrentReaders(t *testing.T) {
	a := New()
	for i := 0; i < 1000; i++ {
		a.Set(strconv.Itoa(i), "c", Num(float64(i)))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				keys := a.RowKeys()
				if len(keys) != 1000 {
					t.Errorf("RowKeys len = %d", len(keys))
					return
				}
				if !a.HasRow(keys[i]) {
					t.Errorf("cached key %q missing", keys[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}
