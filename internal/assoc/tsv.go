package assoc

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// tsv.go reads and writes the triple-per-line TSV interchange format used
// by D4M tooling: row<TAB>col<TAB>value, one cell per line. Numeric
// values round-trip as numbers.

// WriteTSV emits the array as sorted triples.
func (a *Assoc) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var err error
	a.Iterate(func(row, col string, v Value) bool {
		if strings.ContainsAny(row, "\t\n") || strings.ContainsAny(col, "\t\n") {
			err = fmt.Errorf("assoc: key %q/%q contains tab or newline", row, col)
			return false
		}
		marker := "s"
		if v.Numeric {
			marker = "n"
		}
		_, err = fmt.Fprintf(bw, "%s\t%s\t%s\t%s\n", row, col, marker, v.String())
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadTSV parses triples produced by WriteTSV.
func ReadTSV(r io.Reader) (*Assoc, error) {
	a := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("assoc: line %d: want 4 tab-separated fields, got %d", lineNo, len(parts))
		}
		switch parts[2] {
		case "n":
			num, err := strconv.ParseFloat(parts[3], 64)
			if err != nil {
				return nil, fmt.Errorf("assoc: line %d: bad number %q: %v", lineNo, parts[3], err)
			}
			a.Set(parts[0], parts[1], Num(num))
		case "s":
			a.Set(parts[0], parts[1], Str(parts[3]))
		default:
			return nil, fmt.Errorf("assoc: line %d: unknown type marker %q", lineNo, parts[2])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return a, nil
}
