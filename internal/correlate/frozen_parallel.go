package correlate

// frozen_parallel.go parallelizes Freeze over the repository's worker
// pool. The serial Freeze interns row keys through one shared map, which
// makes it inherently sequential (every insert orders against every
// other); the parallel build replaces insertion-order interning with
// rank interning, which decomposes:
//
//  1. Gather (parallel, one job per table): collect each month table's
//     row keys and each snapshot's band-filtered row keys. Assoc.RowKeys
//     is already sorted, so each unit's key list comes out sorted for
//     free.
//  2. Union (serial): pairwise-merge the sorted per-unit lists into one
//     global sorted unique key list. A key's ID is its rank in this
//     list.
//  3. Resolve (parallel, one job per table): walk each unit's sorted
//     keys against the global list with a linear two-pointer merge,
//     emitting interned IDs — ascending by construction, so the per-set
//     sort the serial Freeze needs disappears entirely.
//
// Rank IDs differ from Freeze's insertion-order IDs, but every Frozen
// artifact is a set cardinality (|band ∩ month| under one shared ID
// space), which is invariant under relabeling — Freeze stays the oracle
// and TestFreezeParallelMatchesSerial pins artifact equality at every
// worker count.

import (
	"context"
	"runtime"
	"sort"

	"repro/internal/pool"
	"repro/internal/stats"
)

// unitKeys is stage 1's output for one table: the unit's sorted row
// keys, plus (for snapshots) each key's brightness band.
type unitKeys struct {
	keys  []string
	bands []int // aligned with keys; nil for months
}

// FreezeParallel is Freeze distributed across up to workers goroutines
// (<= 0 picks GOMAXPROCS; 1 runs the same algorithm on the caller's
// goroutine). The returned Frozen yields artifacts identical to
// Freeze's on every figure.
func FreezeParallel(study Study, workers int) *Frozen {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nm, ns := len(study.Months), len(study.Snapshots)
	units := make([]unitKeys, nm+ns)

	// Stage 1: per-table key gather. Jobs never fail and the context is
	// never cancelled, so the pool errors are structurally nil.
	_ = pool.Each(context.Background(), workers, nm+ns, func(_ context.Context, job int) error {
		if job < nm {
			units[job] = unitKeys{keys: study.Months[job].Table.RowKeys()}
			return nil
		}
		snap := &study.Snapshots[job-nm]
		rows := snap.Sources.RowKeys()
		u := unitKeys{
			keys:  make([]string, 0, len(rows)),
			bands: make([]int, 0, len(rows)),
		}
		for _, row := range rows {
			v, ok := snap.Sources.Get(row, "packets")
			if !ok || !v.Numeric {
				continue
			}
			b := stats.BandIndex(v.Num)
			if b < 0 {
				continue
			}
			u.keys = append(u.keys, row)
			u.bands = append(u.bands, b)
		}
		units[job] = u
		return nil
	})

	// Stage 2: union the sorted unit lists into the global ID space by
	// binary merge reduction — O(total keys x log(tables)) comparisons,
	// no hashing.
	lists := make([][]string, 0, len(units))
	for i := range units {
		if len(units[i].keys) > 0 {
			lists = append(lists, units[i].keys)
		}
	}
	global := unionSorted(lists)

	// Stage 3: per-table rank resolution.
	f := &Frozen{
		months: make([]frozenMonth, nm),
		snaps:  make([]frozenSnapshot, ns),
	}
	_ = pool.Each(context.Background(), workers, nm+ns, func(_ context.Context, job int) error {
		if job < nm {
			m := study.Months[job]
			f.months[job] = frozenMonth{
				label: m.Label, month: m.Month,
				ids: resolveRanks(units[job].keys, global),
			}
			return nil
		}
		snap := &study.Snapshots[job-nm]
		u := &units[job]
		byBand := make(map[int][]uint32)
		gi := 0
		for i, key := range u.keys {
			for global[gi] != key {
				gi++
			}
			// u.keys ascends, so IDs arrive ascending: each band's set is
			// born sorted.
			byBand[u.bands[i]] = append(byBand[u.bands[i]], uint32(gi))
		}
		fs := frozenSnapshot{label: snap.Label, month: snap.Month, nv: snap.NV,
			bands: make([]frozenBand, 0, len(byBand))}
		for b, set := range byBand {
			fs.bands = append(fs.bands, frozenBand{band: b, ids: set})
		}
		sort.Slice(fs.bands, func(i, j int) bool { return fs.bands[i].band < fs.bands[j].band })
		f.snaps[job-nm] = fs
		return nil
	})
	return f
}

// unionSorted merges sorted string lists into one sorted unique list by
// binary reduction (merge pairs, then pairs of pairs), so each key moves
// O(log len(lists)) times.
func unionSorted(lists [][]string) []string {
	if len(lists) == 0 {
		return nil
	}
	for len(lists) > 1 {
		merged := make([][]string, 0, (len(lists)+1)/2)
		for i := 0; i < len(lists); i += 2 {
			if i+1 == len(lists) {
				merged = append(merged, lists[i])
				break
			}
			merged = append(merged, mergeUnique(lists[i], lists[i+1]))
		}
		lists = merged
	}
	// A single source list may carry duplicates only if the caller passed
	// one table twice; table row keys are unique, so lists[0] is unique.
	return lists[0]
}

// mergeUnique merges two sorted unique lists into one sorted unique
// list.
func mergeUnique(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// resolveRanks maps a sorted key list to its ranks in the global sorted
// list by linear merge; the output is ascending by construction.
func resolveRanks(keys, global []string) []uint32 {
	ids := make([]uint32, len(keys))
	gi := 0
	for i, key := range keys {
		for global[gi] != key {
			gi++
		}
		ids[i] = uint32(gi)
	}
	return ids
}
