// Package correlate implements the paper's primary contribution: the
// spatial and temporal correlation of sources seen by an Internet
// observatory (darkspace telescope) and an outpost (honeyfarm).
//
// Inputs are D4M associative arrays: a telescope snapshot's source table
// (rows: source IP, column "packets") and the honeyfarm's monthly tables
// (rows: source IP). All measurements are fractions of telescope sources
// found in honeyfarm tables, sliced by source brightness band
// [2^i, 2^(i+1)) and by month offset.
//
// Two implementations coexist: the map-based functions in this file
// (the readable reference, retained as the differential-test oracle)
// and the frozen sorted-key kernel in frozen.go (Freeze a Study once,
// then every measurement is an allocation-free sorted-merge
// intersection) that the pipeline's emitters run on.
package correlate

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/assoc"
	"repro/internal/stats"
)

// Snapshot is one telescope constant-packet sample reduced to a source
// table.
type Snapshot struct {
	Label   string  // e.g. "20200617-120000"
	Month   float64 // fractional month index within the study period
	NV      int     // window size in valid packets
	Sources *assoc.Assoc
}

// MonthData is one honeyfarm month.
type MonthData struct {
	Label string // e.g. "2020-06"
	Month int    // month index within the study period
	Table *assoc.Assoc
}

// Study holds everything the correlation analysis needs.
type Study struct {
	Snapshots []Snapshot
	Months    []MonthData
}

// bandOf extracts the snapshot's sources grouped into brightness bands.
func bandOf(snap Snapshot) map[int][]string {
	bands := make(map[int][]string)
	for _, row := range snap.Sources.RowKeys() {
		v, ok := snap.Sources.Get(row, "packets")
		if !ok || !v.Numeric {
			continue
		}
		b := stats.BandIndex(v.Num)
		if b < 0 {
			continue
		}
		bands[b] = append(bands[b], row)
	}
	return bands
}

// BandFraction is one point of the Figure 4 curve: of the telescope
// sources with d in [2^Band, 2^(Band+1)), the fraction present in the
// honeyfarm table.
type BandFraction struct {
	Band     int
	D        float64 // band lower edge 2^Band
	Sources  int     // telescope sources in the band
	Matched  int     // of those, sources in the honeyfarm table
	Fraction float64 // Matched / Sources
	CILo     float64 // 95% Wilson interval low edge
	CIHi     float64 // 95% Wilson interval high edge
}

// PeakCorrelation computes the same-month correlation by brightness band
// (Figure 4). Bands with no sources are omitted.
func PeakCorrelation(snap Snapshot, month MonthData) []BandFraction {
	bands := bandOf(snap)
	out := make([]BandFraction, 0, len(bands))
	for b, rows := range bands {
		matched := 0
		for _, r := range rows {
			if month.Table.HasRow(r) {
				matched++
			}
		}
		lo, hi := stats.Wilson95(matched, len(rows))
		out = append(out, BandFraction{
			Band:     b,
			D:        stats.BandLow(b),
			Sources:  len(rows),
			Matched:  matched,
			Fraction: float64(matched) / float64(len(rows)),
			CILo:     lo,
			CIHi:     hi,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Band < out[j].Band })
	return out
}

// PeakModel is the paper's empirical Figure 4 law:
// min(1, log2(d) / log2(sqrt(NV))).
func PeakModel(d float64, nv int) float64 {
	if d < 2 {
		d = 2
	}
	v := math.Log2(d) / math.Log2(math.Sqrt(float64(nv)))
	if v > 1 {
		return 1
	}
	return v
}

// Series is one temporal-correlation curve (Figures 5 and 6): the
// fraction of a snapshot's band-d sources found in each honeyfarm month.
type Series struct {
	Snapshot string
	Band     int
	Sources  int       // telescope sources in the band
	Labels   []string  // month labels
	Dt       []float64 // month - snapshot month
	Fraction []float64
}

// TemporalCorrelation computes the Figure 5/6 curve for one snapshot and
// one brightness band across all honeyfarm months. The returned series
// has one point per month, in month order. Returns an error if the band
// holds no sources.
func TemporalCorrelation(snap Snapshot, months []MonthData, band int) (Series, error) {
	rows := bandOf(snap)[band]
	if len(rows) == 0 {
		return Series{}, fmt.Errorf("correlate: snapshot %s has no sources in band 2^%d", snap.Label, band)
	}
	s := Series{
		Snapshot: snap.Label,
		Band:     band,
		Sources:  len(rows),
		Labels:   make([]string, len(months)),
		Dt:       make([]float64, len(months)),
		Fraction: make([]float64, len(months)),
	}
	for i, m := range months {
		matched := 0
		for _, r := range rows {
			if m.Table.HasRow(r) {
				matched++
			}
		}
		s.Labels[i] = m.Label
		s.Dt[i] = float64(m.Month) - snap.Month
		s.Fraction[i] = float64(matched) / float64(len(rows))
	}
	return s, nil
}

// Fit fits the modified Cauchy model to the series using the paper's
// peak-normalized ‖·‖½ procedure.
func (s Series) Fit() stats.TemporalFit {
	return stats.FitModifiedCauchy(s.Dt, s.Fraction)
}

// FitAll fits all three model families (Figure 5's comparison).
func (s Series) FitAll() map[string]stats.TemporalFit {
	return stats.FitAllTemporal(s.Dt, s.Fraction)
}

// BandFit is one point of Figures 7 and 8: the fitted modified-Cauchy
// parameters for one snapshot and band.
type BandFit struct {
	Snapshot string
	Band     int
	D        float64 // band lower edge
	Sources  int
	Alpha    float64
	Beta     float64
	Drop     float64 // 1/(β+1), the one-month drop (Figure 8)
	Residual float64
}

// FitSweep computes the modified-Cauchy fit for every band of the
// snapshot that holds at least minSources sources, in ascending band
// order (Figures 7 and 8's per-degree parameter curves).
func FitSweep(snap Snapshot, months []MonthData, minSources int) []BandFit {
	bands := bandOf(snap)
	var keys []int
	for b, rows := range bands {
		if len(rows) >= minSources {
			keys = append(keys, b)
		}
	}
	sort.Ints(keys)
	out := make([]BandFit, 0, len(keys))
	for _, b := range keys {
		series, err := TemporalCorrelation(snap, months, b)
		if err != nil {
			continue
		}
		fit := series.Fit()
		mc := fit.Model.(stats.ModifiedCauchy)
		out = append(out, BandFit{
			Snapshot: snap.Label,
			Band:     b,
			D:        stats.BandLow(b),
			Sources:  series.Sources,
			Alpha:    mc.Alpha,
			Beta:     mc.Beta,
			Drop:     mc.OneMonthDrop(),
			Residual: fit.Residual,
		})
	}
	return out
}

// SameMonth returns the honeyfarm month coeval with the snapshot, or an
// error when absent.
func SameMonth(snap Snapshot, months []MonthData) (MonthData, error) {
	idx := int(math.Floor(snap.Month))
	for _, m := range months {
		if m.Month == idx {
			return m, nil
		}
	}
	return MonthData{}, fmt.Errorf("correlate: no honeyfarm month %d for snapshot %s", idx, snap.Label)
}
