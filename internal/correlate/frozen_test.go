package correlate

// frozen_test.go holds the sorted-key kernel to the map-based reference
// implementation: identical artifacts on every figure, zero allocations
// at steady state, and a property test on the merge intersection.

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/stats"
)

// frozenFixture is a study with several bands, partial overlaps, and a
// non-integer snapshot month — enough structure to exercise every
// kernel path.
func frozenFixture() Study {
	truth := stats.ModifiedCauchy{Alpha: 1, Beta: 3}
	return synthStudy([]int{0, 2, 4, 8, 12}, 120, 5.5, 15, func(b int, dt float64) float64 {
		return 0.9 * truth.Eval(dt) * float64(b+1) / 13.0
	})
}

// TestFrozenMatchesReference diffs both Frozen builders — the serial
// insertion-order interner and the parallel rank interner — against the
// map-based reference on every artifact.
func TestFrozenMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name   string
		freeze func(Study) *Frozen
	}{
		{"serial", Freeze},
		{"parallel", func(s Study) *Frozen { return FreezeParallel(s, 4) }},
	} {
		t.Run(tc.name, func(t *testing.T) { testFrozenMatchesReference(t, tc.freeze) })
	}
}

func testFrozenMatchesReference(t *testing.T, freeze func(Study) *Frozen) {
	study := frozenFixture()
	f := freeze(study)
	if f.Months() != len(study.Months) || f.Snapshots() != len(study.Snapshots) {
		t.Fatalf("frozen shape %d/%d, want %d/%d",
			f.Months(), f.Snapshots(), len(study.Months), len(study.Snapshots))
	}

	for si, snap := range study.Snapshots {
		// Figure 4: same-month peak correlation.
		month, err := SameMonth(snap, study.Months)
		if err != nil {
			t.Fatal(err)
		}
		mi, err := f.SameMonthIndex(si)
		if err != nil {
			t.Fatal(err)
		}
		if study.Months[mi].Month != month.Month {
			t.Fatalf("SameMonthIndex = %d (month %d), want month %d", mi, study.Months[mi].Month, month.Month)
		}
		want := PeakCorrelation(snap, month)
		got := f.PeakCorrelation(si, mi)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("PeakCorrelation differs:\nfrozen %+v\nmap    %+v", got, want)
		}

		// Figures 5/6: every populated band plus one absent band.
		bands := append(f.Bands(si), 30)
		for _, b := range bands {
			wantS, wantErr := TemporalCorrelation(snap, study.Months, b)
			gotS, gotErr := f.Temporal(si, b)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("band %d: error mismatch: frozen %v, map %v", b, gotErr, wantErr)
			}
			if wantErr != nil {
				if gotErr.Error() != wantErr.Error() {
					t.Errorf("band %d: error text %q vs %q", b, gotErr, wantErr)
				}
				continue
			}
			if !reflect.DeepEqual(gotS, wantS) {
				t.Errorf("band %d: Temporal differs:\nfrozen %+v\nmap    %+v", b, gotS, wantS)
			}
		}

		// Figures 7/8: the fit sweep.
		wantFits := FitSweep(snap, study.Months, 10)
		gotFits := f.FitSweep(si, 10)
		if !reflect.DeepEqual(gotFits, wantFits) {
			t.Errorf("FitSweep differs:\nfrozen %+v\nmap    %+v", gotFits, wantFits)
		}
	}
}

// TestFreezeParallelMatchesSerial sweeps worker counts and checks the
// parallel build yields artifacts identical to the serial Freeze on
// every figure. The two builders assign different IDs (insertion order
// vs global rank), so the comparison is on the measurements — which are
// set cardinalities, invariant under ID relabeling — not on internals.
func TestFreezeParallelMatchesSerial(t *testing.T) {
	study := frozenFixture()
	serial := Freeze(study)
	for _, workers := range []int{0, 1, 2, 3, 8} {
		par := FreezeParallel(study, workers)
		if par.Months() != serial.Months() || par.Snapshots() != serial.Snapshots() {
			t.Fatalf("workers=%d: shape %d/%d, want %d/%d",
				workers, par.Months(), par.Snapshots(), serial.Months(), serial.Snapshots())
		}
		for si := 0; si < serial.Snapshots(); si++ {
			if !reflect.DeepEqual(par.Bands(si), serial.Bands(si)) {
				t.Fatalf("workers=%d snapshot %d: bands %v, want %v",
					workers, si, par.Bands(si), serial.Bands(si))
			}
			mi, err := serial.SameMonthIndex(si)
			if err != nil {
				t.Fatal(err)
			}
			pmi, err := par.SameMonthIndex(si)
			if err != nil || pmi != mi {
				t.Fatalf("workers=%d snapshot %d: SameMonthIndex %d/%v, want %d", workers, si, pmi, err, mi)
			}
			if got, want := par.PeakCorrelation(si, mi), serial.PeakCorrelation(si, mi); !reflect.DeepEqual(got, want) {
				t.Errorf("workers=%d snapshot %d: PeakCorrelation differs:\npar    %+v\nserial %+v", workers, si, got, want)
			}
			for _, b := range serial.Bands(si) {
				got, gotErr := par.Temporal(si, b)
				want, wantErr := serial.Temporal(si, b)
				if (gotErr == nil) != (wantErr == nil) || !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d snapshot %d band %d: Temporal differs", workers, si, b)
				}
			}
			if got, want := par.FitSweep(si, 10), serial.FitSweep(si, 10); !reflect.DeepEqual(got, want) {
				t.Errorf("workers=%d snapshot %d: FitSweep differs:\npar    %+v\nserial %+v", workers, si, got, want)
			}
		}
	}
}

// TestFitBandMatchesSweep pins the decomposition the report graph's
// parallel fit fan-out relies on: SweepBands lists exactly the bands
// FitSweep fits, and FitBand reproduces each FitSweep entry
// bit-for-bit — so jobs assembled in SweepBands order are
// byte-identical to the serial sweep at any worker count.
func TestFitBandMatchesSweep(t *testing.T) {
	study := frozenFixture()
	f := Freeze(study)
	for si := range study.Snapshots {
		for _, min := range []int{1, 10, 50} {
			want := f.FitSweep(si, min)
			bands := f.SweepBands(si, min)
			got := make([]BandFit, 0, len(bands))
			for _, b := range bands {
				fit, ok := f.FitBand(si, b)
				if !ok {
					t.Fatalf("snapshot %d band %d: FitBand not ok for a SweepBands entry", si, b)
				}
				got = append(got, fit)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("snapshot %d min=%d: FitBand assembly differs:\njobs  %+v\nsweep %+v", si, min, got, want)
			}
		}
	}
	if _, ok := f.FitBand(0, 30); ok {
		t.Error("FitBand ok on an empty band")
	}
}

func TestFrozenSameMonthMissing(t *testing.T) {
	study := frozenFixture()
	study.Snapshots[0].Month = 99
	f := Freeze(study)
	if _, err := f.SameMonthIndex(0); err == nil || !strings.Contains(err.Error(), "no honeyfarm month") {
		t.Errorf("missing month: err = %v", err)
	}
}

// TestFrozenKernelsAllocFree is the steady-state allocation gate for the
// Figure 4-8 inner loops: once the Into destinations are warm, peak and
// temporal measurements allocate nothing.
func TestFrozenKernelsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed under the race detector")
	}
	study := frozenFixture()
	f := Freeze(study)
	mi, err := f.SameMonthIndex(0)
	if err != nil {
		t.Fatal(err)
	}

	peak := f.PeakCorrelation(0, mi) // warm capacity
	if n := testing.AllocsPerRun(100, func() {
		peak = f.PeakInto(peak, 0, mi)
	}); n != 0 {
		t.Errorf("PeakInto allocates %.1f/op at steady state, want 0", n)
	}

	var s Series
	band := f.Bands(0)[len(f.Bands(0))-1]
	if err := f.TemporalInto(&s, 0, band); err != nil { // warm capacity
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := f.TemporalInto(&s, 0, band); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("TemporalInto allocates %.1f/op at steady state, want 0", n)
	}
}

// TestCountIntersectProperty diffs the merge intersection against a
// map-based oracle on random sorted sets.
func TestCountIntersectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a := randomIDSet(rng, rng.Intn(200))
		b := randomIDSet(rng, rng.Intn(200))
		in := make(map[uint32]bool, len(a))
		for _, x := range a {
			in[x] = true
		}
		want := 0
		for _, x := range b {
			if in[x] {
				want++
			}
		}
		if got := countIntersect(a, b); got != want {
			t.Fatalf("trial %d: countIntersect = %d, want %d (a=%v b=%v)", trial, got, want, a, b)
		}
	}
}

func randomIDSet(rng *rand.Rand, n int) []uint32 {
	seen := make(map[uint32]bool, n)
	out := make([]uint32, 0, n)
	for len(out) < n {
		v := uint32(rng.Intn(300))
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	sortIDs(out)
	return out
}

// BenchmarkFreeze measures the one-time interning cost of a study.
func BenchmarkFreeze(b *testing.B) {
	study := frozenFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Freeze(study)
	}
}

// BenchmarkFreezeParallel measures the pooled rank-interning build at
// full fan-out.
func BenchmarkFreezeParallel(b *testing.B) {
	study := frozenFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FreezeParallel(study, 0)
	}
}

// BenchmarkCorrelatePeak measures the Figure 4 kernel at steady state.
func BenchmarkCorrelatePeak(b *testing.B) {
	f := Freeze(frozenFixture())
	mi, err := f.SameMonthIndex(0)
	if err != nil {
		b.Fatal(err)
	}
	dst := f.PeakCorrelation(0, mi)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = f.PeakInto(dst, 0, mi)
	}
}

// BenchmarkCorrelateTemporal measures the Figure 5/6 kernel at steady
// state.
func BenchmarkCorrelateTemporal(b *testing.B) {
	f := Freeze(frozenFixture())
	band := f.Bands(0)[len(f.Bands(0))-1]
	var s Series
	if err := f.TemporalInto(&s, 0, band); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.TemporalInto(&s, 0, band); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorrelateTemporalMap is the retained map-based reference,
// for the speedup comparison in benchmark output.
func BenchmarkCorrelateTemporalMap(b *testing.B) {
	study := frozenFixture()
	band := Freeze(study).Bands(0)[len(Freeze(study).Bands(0))-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TemporalCorrelation(study.Snapshots[0], study.Months, band); err != nil {
			b.Fatal(err)
		}
	}
}
