package correlate

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/assoc"
	"repro/internal/stats"
)

// synthStudy builds a study where ground truth is exact: the snapshot
// holds nPerBand sources per band, and month tables include each source
// with a deterministic pattern realized by index arithmetic: the first
// round(frac*n) sources of a band are present.
func synthStudy(bands []int, nPerBand int, snapMonth float64, months int,
	frac func(band int, dt float64) float64) Study {

	snap := Snapshot{Label: "synth", Month: snapMonth, NV: 1 << 20, Sources: assoc.New()}
	ip := func(band, i int) string { return fmt.Sprintf("%d.%d.0.1", band+1, i) }
	for _, b := range bands {
		for i := 0; i < nPerBand; i++ {
			// brightness at the band's lower edge
			snap.Sources.Set(ip(b, i), "packets", assoc.Num(stats.BandLow(b)))
		}
	}
	study := Study{Snapshots: []Snapshot{snap}}
	for m := 0; m < months; m++ {
		md := MonthData{Label: fmt.Sprintf("m%02d", m), Month: m, Table: assoc.New()}
		for _, b := range bands {
			keep := int(math.Round(frac(b, float64(m)-snapMonth) * float64(nPerBand)))
			for i := 0; i < keep; i++ {
				md.Table.Set(ip(b, i), "seen", assoc.Num(1))
			}
		}
		study.Months = append(study.Months, md)
	}
	return study
}

func TestPeakCorrelationExact(t *testing.T) {
	study := synthStudy([]int{0, 4, 8}, 100, 5, 15, func(b int, dt float64) float64 {
		if dt == 0 {
			return float64(b) / 10.0
		}
		return 0
	})
	month, err := SameMonth(study.Snapshots[0], study.Months)
	if err != nil {
		t.Fatal(err)
	}
	fracs := PeakCorrelation(study.Snapshots[0], month)
	if len(fracs) != 3 {
		t.Fatalf("bands = %d, want 3", len(fracs))
	}
	for _, bf := range fracs {
		want := float64(bf.Band) / 10.0
		if math.Abs(bf.Fraction-want) > 1e-9 {
			t.Errorf("band %d fraction = %g, want %g", bf.Band, bf.Fraction, want)
		}
		if bf.Sources != 100 {
			t.Errorf("band %d sources = %d, want 100", bf.Band, bf.Sources)
		}
		if bf.D != stats.BandLow(bf.Band) {
			t.Errorf("band %d edge = %g", bf.Band, bf.D)
		}
	}
	// Bands sorted ascending.
	for i := 1; i < len(fracs); i++ {
		if fracs[i].Band <= fracs[i-1].Band {
			t.Error("bands not sorted")
		}
	}
}

func TestPeakModelLaw(t *testing.T) {
	nv := 1 << 30 // sqrt(NV) = 2^15
	if got := PeakModel(1<<15, nv); got != 1 {
		t.Errorf("bright source model = %g, want 1", got)
	}
	if got := PeakModel(1<<20, nv); got != 1 {
		t.Errorf("clamp failed: %g", got)
	}
	// log2(2^5)/15 = 1/3
	if got := PeakModel(32, nv); math.Abs(got-5.0/15.0) > 1e-12 {
		t.Errorf("faint source model = %g, want 1/3", got)
	}
	if got := PeakModel(1, nv); got <= 0 {
		t.Errorf("d=1 model = %g, want > 0", got)
	}
}

func TestTemporalCorrelationRecoverGroundTruth(t *testing.T) {
	truth := stats.ModifiedCauchy{Alpha: 1, Beta: 4}
	peak := 0.8
	study := synthStudy([]int{6}, 1000, 5, 15, func(_ int, dt float64) float64 {
		return peak * truth.Eval(dt)
	})
	series, err := TemporalCorrelation(study.Snapshots[0], study.Months, 6)
	if err != nil {
		t.Fatal(err)
	}
	if series.Sources != 1000 || len(series.Fraction) != 15 {
		t.Fatalf("series shape: %d sources, %d points", series.Sources, len(series.Fraction))
	}
	// Peak at dt=0.
	for i, dt := range series.Dt {
		if dt == 0 && math.Abs(series.Fraction[i]-peak) > 1e-3 {
			t.Errorf("fraction at dt=0 is %g, want %g", series.Fraction[i], peak)
		}
	}
	fit := series.Fit()
	mc := fit.Model.(stats.ModifiedCauchy)
	if math.Abs(mc.Alpha-1) > 0.15 {
		t.Errorf("recovered alpha = %g, want ~1", mc.Alpha)
	}
	if math.Abs(mc.Beta-4)/4 > 0.3 {
		t.Errorf("recovered beta = %g, want ~4", mc.Beta)
	}
}

func TestTemporalCorrelationEmptyBand(t *testing.T) {
	study := synthStudy([]int{3}, 10, 5, 15, func(int, float64) float64 { return 1 })
	if _, err := TemporalCorrelation(study.Snapshots[0], study.Months, 9); err == nil {
		t.Error("empty band accepted")
	}
}

func TestFitAllPrefersModifiedCauchyOnCauchyishData(t *testing.T) {
	truth := stats.ModifiedCauchy{Alpha: 0.75, Beta: 2}
	study := synthStudy([]int{5}, 2000, 4, 15, func(_ int, dt float64) float64 {
		return 0.7 * truth.Eval(dt)
	})
	series, err := TemporalCorrelation(study.Snapshots[0], study.Months, 5)
	if err != nil {
		t.Fatal(err)
	}
	fits := series.FitAll()
	mc := fits["modified-cauchy"].Residual
	if mc > fits["gaussian"].Residual || mc > fits["cauchy"].Residual {
		t.Errorf("modified Cauchy residual %g worse than alternatives (%g, %g)",
			mc, fits["cauchy"].Residual, fits["gaussian"].Residual)
	}
}

func TestFitSweepShape(t *testing.T) {
	// Bands with different betas: the sweep must recover the per-band
	// drop ordering (Figure 8's dip).
	betas := map[int]float64{4: 4.0, 8: 1.0, 12: 4.0}
	study := synthStudy([]int{4, 8, 12}, 1500, 5, 15, func(b int, dt float64) float64 {
		m := stats.ModifiedCauchy{Alpha: 1, Beta: betas[b]}
		return 0.8 * m.Eval(dt)
	})
	fits := FitSweep(study.Snapshots[0], study.Months, 10)
	if len(fits) != 3 {
		t.Fatalf("sweep bands = %d, want 3", len(fits))
	}
	byBand := make(map[int]BandFit)
	for _, f := range fits {
		byBand[f.Band] = f
		if math.Abs(f.Alpha-1) > 0.3 {
			t.Errorf("band %d alpha = %g, want ~1", f.Band, f.Alpha)
		}
	}
	// Band 8 (beta=1) must show the biggest one-month drop (~0.5).
	if !(byBand[8].Drop > byBand[4].Drop && byBand[8].Drop > byBand[12].Drop) {
		t.Errorf("drop dip not recovered: %v", fits)
	}
	if math.Abs(byBand[8].Drop-0.5) > 0.15 {
		t.Errorf("dip drop = %g, want ~0.5", byBand[8].Drop)
	}
}

func TestFitSweepMinSources(t *testing.T) {
	study := synthStudy([]int{2}, 5, 5, 15, func(int, float64) float64 { return 1 })
	if fits := FitSweep(study.Snapshots[0], study.Months, 10); len(fits) != 0 {
		t.Errorf("minSources filter ignored: %v", fits)
	}
}

func TestSameMonth(t *testing.T) {
	study := synthStudy([]int{2}, 5, 4.5, 15, func(int, float64) float64 { return 1 })
	m, err := SameMonth(study.Snapshots[0], study.Months)
	if err != nil {
		t.Fatal(err)
	}
	if m.Month != 4 {
		t.Errorf("same month = %d, want 4 (floor of 4.5)", m.Month)
	}
	snap := study.Snapshots[0]
	snap.Month = 99
	if _, err := SameMonth(snap, study.Months); err == nil {
		t.Error("missing month accepted")
	}
}

func TestSnapshotIgnoresNonNumericRows(t *testing.T) {
	snap := Snapshot{Label: "x", Month: 0, NV: 1024, Sources: assoc.New()}
	snap.Sources.Set("1.1.1.1", "packets", assoc.Num(4))
	snap.Sources.Set("2.2.2.2", "packets", assoc.Str("oops"))
	snap.Sources.Set("3.3.3.3", "note", assoc.Str("no packets column"))
	md := MonthData{Label: "m", Month: 0, Table: assoc.New()}
	md.Table.Set("1.1.1.1", "seen", assoc.Num(1))
	fracs := PeakCorrelation(snap, md)
	total := 0
	for _, bf := range fracs {
		total += bf.Sources
	}
	if total != 1 {
		t.Errorf("non-numeric rows counted: %d", total)
	}
}
