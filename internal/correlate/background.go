package correlate

import (
	"math"

	"repro/internal/stats"
)

// background.go estimates and removes the month-independent background
// component of the temporal-correlation curves. The paper observes that
// "the correlation between the CAIDA and GreyNoise sources drops quickly
// and then levels off to a background level"; isolating the decaying
// (beam) component sharpens the modified-Cauchy parameter estimates for
// faint bands whose curves ride on a large floor.

// Background estimates the floor of a series as the mean of the points
// at least minDt months from the snapshot. Returns 0 (and false) when no
// point is that far away.
func (s Series) Background(minDt float64) (float64, bool) {
	var far []float64
	for i, dt := range s.Dt {
		if math.Abs(dt) >= minDt {
			far = append(far, s.Fraction[i])
		}
	}
	if len(far) == 0 {
		return 0, false
	}
	return stats.Summarize(far).Mean, true
}

// SubtractBackground returns a copy of the series with the floor
// removed and negative residuals clamped to zero.
func (s Series) SubtractBackground(floor float64) Series {
	out := s
	out.Fraction = make([]float64, len(s.Fraction))
	for i, v := range s.Fraction {
		if v > floor {
			out.Fraction[i] = v - floor
		}
	}
	return out
}

// FitExcess estimates the background from the far tail (>= minDt
// months), subtracts it, and fits the modified Cauchy to the excess.
// When the series has no far tail, it falls back to the plain fit.
func (s Series) FitExcess(minDt float64) (stats.TemporalFit, float64) {
	floor, ok := s.Background(minDt)
	if !ok {
		return s.Fit(), 0
	}
	return s.SubtractBackground(floor).Fit(), floor
}

// FitSweepExcess is FitSweep with per-band background correction: each
// band's floor is estimated from points at least minDt months out and
// subtracted before fitting. Bands are filtered by minSources as in
// FitSweep. The returned Drop values describe the beam component alone,
// which is the quantity the generator's β*(d) governs.
func FitSweepExcess(snap Snapshot, months []MonthData, minSources int, minDt float64) []BandFit {
	raw := FitSweep(snap, months, minSources)
	out := make([]BandFit, 0, len(raw))
	for _, bf := range raw {
		series, err := TemporalCorrelation(snap, months, bf.Band)
		if err != nil {
			continue
		}
		fit, _ := series.FitExcess(minDt)
		mc := fit.Model.(stats.ModifiedCauchy)
		bf.Alpha = mc.Alpha
		bf.Beta = mc.Beta
		bf.Drop = mc.OneMonthDrop()
		bf.Residual = fit.Residual
		out = append(out, bf)
	}
	return out
}

// WilsonBand attaches a 95% Wilson interval to every point of the
// series, using the band population as the trial count.
func (s Series) WilsonBand() (lo, hi []float64) {
	lo = make([]float64, len(s.Fraction))
	hi = make([]float64, len(s.Fraction))
	for i, f := range s.Fraction {
		k := int(math.Round(f * float64(s.Sources)))
		lo[i], hi[i] = stats.Wilson95(k, s.Sources)
	}
	return lo, hi
}
