package correlate

// frozen.go is the sorted-key correlation kernel: a Study compiled once
// into interned row-ID sets so every Figure 4-8 measurement is a linear
// sorted-merge intersection instead of per-row map probes. The paper's
// correlation is pure set arithmetic — |telescope band ∩ honeyfarm
// month| — and on a frozen study that arithmetic runs allocation-free:
// row keys are interned to dense uint32 IDs exactly once, each month
// table and each snapshot brightness band becomes one sorted []uint32,
// and a two-pointer merge counts the overlap.
//
// The map-based functions in correlate.go remain the reference
// implementation; TestFrozenMatchesReference diffs the two on every
// artifact.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Frozen is an immutable, interned compilation of a Study. Build one
// with Freeze after the study's tables stop changing; all methods are
// safe for concurrent use.
type Frozen struct {
	months []frozenMonth
	snaps  []frozenSnapshot
}

type frozenMonth struct {
	label string
	month int
	ids   []uint32 // sorted interned row IDs of the month table
}

type frozenSnapshot struct {
	label string
	month float64
	nv    int
	bands []frozenBand // ascending band order, empty bands omitted
}

type frozenBand struct {
	band int
	ids  []uint32 // sorted interned row IDs of the band's sources
}

// Freeze interns every row key of the study into one uint32 ID space,
// reduces each month table to a sorted ID set, and computes each
// snapshot's brightness bands once. The input tables are read, never
// retained: later mutation of the study does not invalidate the Frozen
// (it describes the study as it was at freeze time).
func Freeze(study Study) *Frozen {
	ids := make(map[string]uint32)
	intern := func(key string) uint32 {
		id, ok := ids[key]
		if !ok {
			id = uint32(len(ids))
			ids[key] = id
		}
		return id
	}

	f := &Frozen{
		months: make([]frozenMonth, 0, len(study.Months)),
		snaps:  make([]frozenSnapshot, 0, len(study.Snapshots)),
	}
	for _, m := range study.Months {
		keys := m.Table.RowKeys()
		set := make([]uint32, len(keys))
		for i, k := range keys {
			set[i] = intern(k)
		}
		sortIDs(set)
		f.months = append(f.months, frozenMonth{label: m.Label, month: m.Month, ids: set})
	}
	for _, snap := range study.Snapshots {
		byBand := make(map[int][]uint32)
		for _, row := range snap.Sources.RowKeys() {
			v, ok := snap.Sources.Get(row, "packets")
			if !ok || !v.Numeric {
				continue
			}
			b := stats.BandIndex(v.Num)
			if b < 0 {
				continue
			}
			byBand[b] = append(byBand[b], intern(row))
		}
		fs := frozenSnapshot{label: snap.Label, month: snap.Month, nv: snap.NV,
			bands: make([]frozenBand, 0, len(byBand))}
		for b, set := range byBand {
			sortIDs(set)
			fs.bands = append(fs.bands, frozenBand{band: b, ids: set})
		}
		sort.Slice(fs.bands, func(i, j int) bool { return fs.bands[i].band < fs.bands[j].band })
		f.snaps = append(f.snaps, fs)
	}
	return f
}

func sortIDs(ids []uint32) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// countIntersect returns |a ∩ b| for two sorted ID sets by linear
// two-pointer merge — the entire inner loop of Figures 4-8.
func countIntersect(a, b []uint32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// bandIDs returns the snapshot's ID set for one band (nil when the band
// holds no sources).
func (s *frozenSnapshot) bandIDs(band int) []uint32 {
	for i := range s.bands {
		if s.bands[i].band == band {
			return s.bands[i].ids
		}
	}
	return nil
}

// Months returns the number of frozen months.
func (f *Frozen) Months() int { return len(f.months) }

// Snapshots returns the number of frozen snapshots.
func (f *Frozen) Snapshots() int { return len(f.snaps) }

// Bands returns snapshot si's populated band indices in ascending
// order, in a fresh slice.
func (f *Frozen) Bands(si int) []int {
	out := make([]int, len(f.snaps[si].bands))
	for i := range f.snaps[si].bands {
		out[i] = f.snaps[si].bands[i].band
	}
	return out
}

// SameMonthIndex returns the index into the frozen months of the month
// coeval with snapshot si, mirroring SameMonth.
func (f *Frozen) SameMonthIndex(si int) (int, error) {
	idx := int(math.Floor(f.snaps[si].month))
	for i := range f.months {
		if f.months[i].month == idx {
			return i, nil
		}
	}
	return -1, fmt.Errorf("correlate: no honeyfarm month %d for snapshot %s", idx, f.snaps[si].label)
}

// PeakInto computes snapshot si's same-month correlation by brightness
// band against month mi (Figure 4) into dst, reusing its capacity; it
// allocates nothing once dst is large enough. The result is identical
// to PeakCorrelation on the unfrozen study.
func (f *Frozen) PeakInto(dst []BandFraction, si, mi int) []BandFraction {
	snap := &f.snaps[si]
	month := &f.months[mi]
	dst = dst[:0]
	for i := range snap.bands {
		b := &snap.bands[i]
		matched := countIntersect(b.ids, month.ids)
		lo, hi := stats.Wilson95(matched, len(b.ids))
		dst = append(dst, BandFraction{
			Band:     b.band,
			D:        stats.BandLow(b.band),
			Sources:  len(b.ids),
			Matched:  matched,
			Fraction: float64(matched) / float64(len(b.ids)),
			CILo:     lo,
			CIHi:     hi,
		})
	}
	return dst
}

// PeakCorrelation is PeakInto into a fresh slice.
func (f *Frozen) PeakCorrelation(si, mi int) []BandFraction {
	return f.PeakInto(make([]BandFraction, 0, len(f.snaps[si].bands)), si, mi)
}

// TemporalInto computes the Figure 5/6 temporal-correlation curve for
// snapshot si and one brightness band into s, reusing its slices; it
// allocates nothing once s's capacity covers the month count. Returns
// an error when the band holds no sources, like TemporalCorrelation.
func (f *Frozen) TemporalInto(s *Series, si, band int) error {
	snap := &f.snaps[si]
	ids := snap.bandIDs(band)
	if len(ids) == 0 {
		return fmt.Errorf("correlate: snapshot %s has no sources in band 2^%d", snap.label, band)
	}
	n := len(f.months)
	s.Snapshot = snap.label
	s.Band = band
	s.Sources = len(ids)
	s.Labels = growStrings(s.Labels, n)
	s.Dt = growFloats(s.Dt, n)
	s.Fraction = growFloats(s.Fraction, n)
	for i := range f.months {
		m := &f.months[i]
		matched := countIntersect(ids, m.ids)
		s.Labels[i] = m.label
		s.Dt[i] = float64(m.month) - snap.month
		s.Fraction[i] = float64(matched) / float64(len(ids))
	}
	return nil
}

// Temporal is TemporalInto into a fresh Series.
func (f *Frozen) Temporal(si, band int) (Series, error) {
	var s Series
	if err := f.TemporalInto(&s, si, band); err != nil {
		return Series{}, err
	}
	return s, nil
}

// FitSweep computes the modified-Cauchy fit for every band of snapshot
// si holding at least minSources sources, in ascending band order —
// identical to FitSweep on the unfrozen study, with the temporal series
// built through one reused scratch instead of per-band maps.
func (f *Frozen) FitSweep(si, minSources int) []BandFit {
	snap := &f.snaps[si]
	out := make([]BandFit, 0, len(snap.bands))
	var s Series
	for i := range snap.bands {
		b := &snap.bands[i]
		if len(b.ids) < minSources {
			continue
		}
		if err := f.TemporalInto(&s, si, b.band); err != nil {
			continue
		}
		fit := s.Fit()
		mc := fit.Model.(stats.ModifiedCauchy)
		out = append(out, BandFit{
			Snapshot: snap.label,
			Band:     b.band,
			D:        stats.BandLow(b.band),
			Sources:  s.Sources,
			Alpha:    mc.Alpha,
			Beta:     mc.Beta,
			Drop:     mc.OneMonthDrop(),
			Residual: fit.Residual,
		})
	}
	return out
}

// SweepBands returns the bands of snapshot si holding at least
// minSources sources, in ascending band order — FitSweep's job list,
// exposed so callers (the report graph) can fan one FitBand job per
// (snapshot, band) across a worker pool and assemble the sweep in this
// deterministic order.
func (f *Frozen) SweepBands(si, minSources int) []int {
	snap := &f.snaps[si]
	out := make([]int, 0, len(snap.bands))
	for i := range snap.bands {
		if len(snap.bands[i].ids) >= minSources {
			out = append(out, snap.bands[i].band)
		}
	}
	return out
}

// FitBand computes the modified-Cauchy fit for one (snapshot, band)
// pair — exactly one iteration of FitSweep's loop, with a private
// scratch series so any number of FitBand calls may run concurrently.
// It returns ok=false when the band holds no sources (the case
// FitSweep skips). TestFitBandMatchesSweep pins the equivalence.
func (f *Frozen) FitBand(si, band int) (BandFit, bool) {
	snap := &f.snaps[si]
	var s Series
	if err := f.TemporalInto(&s, si, band); err != nil {
		return BandFit{}, false
	}
	fit := s.Fit()
	mc := fit.Model.(stats.ModifiedCauchy)
	return BandFit{
		Snapshot: snap.label,
		Band:     band,
		D:        stats.BandLow(band),
		Sources:  s.Sources,
		Alpha:    mc.Alpha,
		Beta:     mc.Beta,
		Drop:     mc.OneMonthDrop(),
		Residual: fit.Residual,
	}, true
}

func growStrings(s []string, n int) []string {
	if cap(s) < n {
		return make([]string, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
