package correlate

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func mkSeries(dts []float64, fr []float64, sources int) Series {
	return Series{Snapshot: "t", Band: 5, Sources: sources, Dt: dts, Fraction: fr,
		Labels: make([]string, len(dts))}
}

func TestBackgroundEstimate(t *testing.T) {
	s := mkSeries(
		[]float64{-5, -4, -1, 0, 1, 4, 5},
		[]float64{0.1, 0.12, 0.5, 0.8, 0.5, 0.11, 0.09}, 100)
	bg, ok := s.Background(4)
	if !ok {
		t.Fatal("no background found")
	}
	want := (0.1 + 0.12 + 0.11 + 0.09) / 4
	if math.Abs(bg-want) > 1e-12 {
		t.Errorf("background = %g, want %g", bg, want)
	}
	if _, ok := s.Background(100); ok {
		t.Error("background found with impossible minDt")
	}
}

func TestSubtractBackgroundClamps(t *testing.T) {
	s := mkSeries([]float64{0, 1}, []float64{0.5, 0.05}, 10)
	out := s.SubtractBackground(0.1)
	if math.Abs(out.Fraction[0]-0.4) > 1e-12 {
		t.Errorf("subtracted peak = %g, want 0.4", out.Fraction[0])
	}
	if out.Fraction[1] != 0 {
		t.Errorf("below-floor point = %g, want clamped 0", out.Fraction[1])
	}
	// Original untouched.
	if s.Fraction[0] != 0.5 {
		t.Error("SubtractBackground mutated the receiver")
	}
}

func TestFitExcessSharpensBeta(t *testing.T) {
	// A modified-Cauchy beam riding on a constant floor: the excess fit
	// must recover the beam's beta better than the raw fit.
	truth := stats.ModifiedCauchy{Alpha: 1, Beta: 1}
	floor := 0.2
	dts := make([]float64, 15)
	fr := make([]float64, 15)
	for i := range dts {
		dts[i] = float64(i - 4)
		fr[i] = floor + 0.6*truth.Eval(dts[i])
	}
	s := mkSeries(dts, fr, 1000)

	rawBeta := s.Fit().Model.(stats.ModifiedCauchy).Beta
	excessFit, estFloor := s.FitExcess(6)
	exBeta := excessFit.Model.(stats.ModifiedCauchy).Beta

	// The estimator necessarily includes the beam's own far tail (a
	// β = 1 modified Cauchy still carries ~0.07 at dt = 8), so the
	// estimate sits slightly above the true floor.
	if estFloor < floor || estFloor > floor+0.1 {
		t.Errorf("estimated floor = %g, want in [%g, %g]", estFloor, floor, floor+0.1)
	}
	if math.Abs(exBeta-truth.Beta) >= math.Abs(rawBeta-truth.Beta) {
		t.Errorf("excess fit beta %g no better than raw %g (truth %g)",
			exBeta, rawBeta, truth.Beta)
	}
	if math.Abs(exBeta-truth.Beta) > 0.5 {
		t.Errorf("excess beta = %g, want ~%g", exBeta, truth.Beta)
	}
}

func TestFitExcessFallsBack(t *testing.T) {
	s := mkSeries([]float64{0, 1}, []float64{0.5, 0.4}, 10)
	fit, floor := s.FitExcess(100)
	if floor != 0 {
		t.Errorf("fallback floor = %g, want 0", floor)
	}
	if fit.Peak != 0.5 {
		t.Errorf("fallback fit peak = %g", fit.Peak)
	}
}

func TestFitSweepExcessRecoversDipBetter(t *testing.T) {
	// Curves with a shared floor: the excess sweep must recover the
	// dipped band's drop closer to truth than the raw sweep does.
	betas := map[int]float64{4: 4.0, 8: 1.0}
	floor := 0.15
	study := synthStudy([]int{4, 8}, 2000, 5, 15, func(b int, dt float64) float64 {
		m := stats.ModifiedCauchy{Alpha: 1, Beta: betas[b]}
		return floor + 0.6*m.Eval(dt)
	})
	raw := FitSweep(study.Snapshots[0], study.Months, 10)
	excess := FitSweepExcess(study.Snapshots[0], study.Months, 10, 6)
	if len(raw) != 2 || len(excess) != 2 {
		t.Fatalf("sweep sizes: raw %d, excess %d", len(raw), len(excess))
	}
	trueDrop := map[int]float64{4: 1.0 / 5.0, 8: 1.0 / 2.0}
	for i := range raw {
		b := raw[i].Band
		rawErr := math.Abs(raw[i].Drop - trueDrop[b])
		exErr := math.Abs(excess[i].Drop - trueDrop[b])
		if exErr > rawErr+1e-9 {
			t.Errorf("band %d: excess drop %g worse than raw %g (truth %g)",
				b, excess[i].Drop, raw[i].Drop, trueDrop[b])
		}
	}
	// The dipped band's excess drop should approach 0.5.
	for _, f := range excess {
		if f.Band == 8 && math.Abs(f.Drop-0.5) > 0.12 {
			t.Errorf("dip band excess drop = %g, want ~0.5", f.Drop)
		}
	}
}

func TestWilsonBand(t *testing.T) {
	s := mkSeries([]float64{0, 1}, []float64{0.5, 0.1}, 100)
	lo, hi := s.WilsonBand()
	if len(lo) != 2 || len(hi) != 2 {
		t.Fatal("wrong interval count")
	}
	for i := range lo {
		if lo[i] > s.Fraction[i] || hi[i] < s.Fraction[i] {
			t.Errorf("point %d: CI [%g, %g] excludes estimate %g", i, lo[i], hi[i], s.Fraction[i])
		}
	}
	if hi[0]-lo[0] > 0.25 {
		t.Errorf("CI too wide for n=100: [%g, %g]", lo[0], hi[0])
	}
}

func TestPeakCorrelationHasIntervals(t *testing.T) {
	study := synthStudy([]int{4}, 200, 5, 15, func(int, float64) float64 { return 0.5 })
	month, err := SameMonth(study.Snapshots[0], study.Months)
	if err != nil {
		t.Fatal(err)
	}
	pts := PeakCorrelation(study.Snapshots[0], month)
	for _, p := range pts {
		if p.CILo > p.Fraction || p.CIHi < p.Fraction {
			t.Errorf("band %d: CI [%g, %g] excludes %g", p.Band, p.CILo, p.CIHi, p.Fraction)
		}
		if p.CILo == 0 && p.CIHi == 1 {
			t.Errorf("band %d: degenerate CI", p.Band)
		}
	}
}
