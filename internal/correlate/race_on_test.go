//go:build race

package correlate

const raceEnabled = true
