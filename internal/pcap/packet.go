// Package pcap implements the libpcap capture file format and the packet
// header codecs (Ethernet II, IPv4, TCP, UDP, ICMP) that the observatory
// pipeline needs to ingest and emit raw traffic.
//
// The CAIDA Telescope consumes a continuous packet stream; this package is
// the wire-format substrate that lets the synthetic radiation generator
// write genuine capture files and lets the telescope parse them back, so
// the analysis chain exercises real packet bytes end to end.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/ipaddr"
)

// IPProto identifies the transport protocol of an IPv4 packet.
type IPProto uint8

// Transport protocol numbers (IANA).
const (
	ProtoICMP IPProto = 1
	ProtoTCP  IPProto = 6
	ProtoUDP  IPProto = 17
)

// String returns the conventional protocol name.
func (p IPProto) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// TCPFlags is the TCP control-bit field.
type TCPFlags uint8

// TCP control bits.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// String renders the set flags, e.g. "SYN|ACK".
func (f TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{FlagFIN, "FIN"}, {FlagSYN, "SYN"}, {FlagRST, "RST"},
		{FlagPSH, "PSH"}, {FlagACK, "ACK"}, {FlagURG, "URG"},
	}
	s := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if s != "" {
				s += "|"
			}
			s += n.name
		}
	}
	if s == "" {
		return "none"
	}
	return s
}

// Packet is the decoded form of a single captured IPv4 packet. The
// observatory pipeline only uses header fields; payloads carry length but
// no content.
type Packet struct {
	Time    time.Time
	Src     ipaddr.Addr
	Dst     ipaddr.Addr
	Proto   IPProto
	SrcPort uint16 // TCP/UDP only
	DstPort uint16 // TCP/UDP only
	Flags   TCPFlags
	TTL     uint8
	Length  int // total IPv4 length including headers
}

// Header sizes in bytes.
const (
	ethHeaderLen  = 14
	ipv4HeaderLen = 20
	tcpHeaderLen  = 20
	udpHeaderLen  = 8
	icmpHeaderLen = 8
)

const etherTypeIPv4 = 0x0800

// MarshalFrame encodes the packet as an Ethernet II frame containing an
// IPv4 header and the transport header, padded with zero payload bytes to
// the declared length. MAC addresses are synthetic constants: a darkspace
// has no meaningful link layer.
func (p *Packet) MarshalFrame() ([]byte, error) {
	transport := 0
	switch p.Proto {
	case ProtoTCP:
		transport = tcpHeaderLen
	case ProtoUDP:
		transport = udpHeaderLen
	case ProtoICMP:
		transport = icmpHeaderLen
	default:
		return nil, fmt.Errorf("pcap: cannot marshal protocol %v", p.Proto)
	}
	ipLen := p.Length
	if ipLen < ipv4HeaderLen+transport {
		ipLen = ipv4HeaderLen + transport
	}
	if ipLen > 65535 {
		return nil, fmt.Errorf("pcap: IPv4 length %d exceeds 65535", ipLen)
	}
	buf := make([]byte, ethHeaderLen+ipLen)

	// Ethernet II: dst MAC 02:00:00:00:00:02, src MAC 02:00:00:00:00:01.
	buf[0], buf[5] = 0x02, 0x02
	buf[6], buf[11] = 0x02, 0x01
	binary.BigEndian.PutUint16(buf[12:14], etherTypeIPv4)

	ip := buf[ethHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipLen))
	ip[8] = p.TTL
	ip[9] = uint8(p.Proto)
	src := p.Src.Octets()
	dst := p.Dst.Octets()
	copy(ip[12:16], src[:])
	copy(ip[16:20], dst[:])
	binary.BigEndian.PutUint16(ip[10:12], checksum(ip[:ipv4HeaderLen]))

	tr := ip[ipv4HeaderLen:]
	switch p.Proto {
	case ProtoTCP:
		binary.BigEndian.PutUint16(tr[0:2], p.SrcPort)
		binary.BigEndian.PutUint16(tr[2:4], p.DstPort)
		tr[12] = 5 << 4 // data offset
		tr[13] = uint8(p.Flags)
	case ProtoUDP:
		binary.BigEndian.PutUint16(tr[0:2], p.SrcPort)
		binary.BigEndian.PutUint16(tr[2:4], p.DstPort)
		binary.BigEndian.PutUint16(tr[4:6], uint16(ipLen-ipv4HeaderLen))
	case ProtoICMP:
		tr[0] = 8 // echo request
	}
	return buf, nil
}

// Errors returned by UnmarshalFrame.
var (
	ErrTruncated = errors.New("pcap: truncated frame")
	ErrNotIPv4   = errors.New("pcap: not an IPv4 frame")
)

// UnmarshalFrame decodes an Ethernet II frame into p. Non-IPv4 frames
// return ErrNotIPv4; frames too short for their declared headers return
// ErrTruncated.
func (p *Packet) UnmarshalFrame(buf []byte) error {
	if len(buf) < ethHeaderLen {
		return ErrTruncated
	}
	if binary.BigEndian.Uint16(buf[12:14]) != etherTypeIPv4 {
		return ErrNotIPv4
	}
	ip := buf[ethHeaderLen:]
	if len(ip) < ipv4HeaderLen {
		return ErrTruncated
	}
	if ip[0]>>4 != 4 {
		return ErrNotIPv4
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(ip) < ihl {
		return ErrTruncated
	}
	p.Length = int(binary.BigEndian.Uint16(ip[2:4]))
	p.TTL = ip[8]
	p.Proto = IPProto(ip[9])
	p.Src = ipaddr.FromOctets([4]byte{ip[12], ip[13], ip[14], ip[15]})
	p.Dst = ipaddr.FromOctets([4]byte{ip[16], ip[17], ip[18], ip[19]})
	p.SrcPort, p.DstPort, p.Flags = 0, 0, 0

	tr := ip[ihl:]
	switch p.Proto {
	case ProtoTCP:
		if len(tr) < tcpHeaderLen {
			return ErrTruncated
		}
		p.SrcPort = binary.BigEndian.Uint16(tr[0:2])
		p.DstPort = binary.BigEndian.Uint16(tr[2:4])
		p.Flags = TCPFlags(tr[13])
	case ProtoUDP:
		if len(tr) < udpHeaderLen {
			return ErrTruncated
		}
		p.SrcPort = binary.BigEndian.Uint16(tr[0:2])
		p.DstPort = binary.BigEndian.Uint16(tr[2:4])
	case ProtoICMP:
		if len(tr) < icmpHeaderLen {
			return ErrTruncated
		}
	}
	return nil
}

// checksum computes the RFC 1071 Internet checksum of b.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// VerifyIPv4Checksum reports whether the IPv4 header checksum of an
// encoded frame is valid.
func VerifyIPv4Checksum(frame []byte) bool {
	if len(frame) < ethHeaderLen+ipv4HeaderLen {
		return false
	}
	ip := frame[ethHeaderLen:]
	ihl := int(ip[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(ip) < ihl {
		return false
	}
	return checksum(ip[:ihl]) == 0
}
