package pcap

// batch.go is the slab decode path of the Reader: NextBatch amortizes
// the per-record call overhead of ReadPacket across a caller-owned
// []Packet slab and decodes frames zero-copy straight out of the
// bufio read-ahead buffer (Peek/Discard, no intermediate frame copy).
// The copying ReadFrame path is retained both as the fallback for
// records larger than the read-ahead buffer and as the differential
// oracle NextBatch is fuzzed against (FuzzReaderBatch,
// TestNextBatchMatchesReadPacket).

import (
	"bufio"
	"fmt"
	"io"
	"time"
)

// recordHdrLen is the per-record header size of the classic pcap format.
const recordHdrLen = 16

// NextBatch decodes up to len(dst) IPv4 packets into dst and returns
// the number decoded. Non-IPv4 records are skipped, exactly as in
// ReadPacket: NextBatch over the whole file yields the same packet
// sequence as a ReadPacket loop, in the same order, ending with the
// same error.
//
// Ownership: dst is caller-owned and every Packet written into it is a
// fully decoded value — nothing in dst aliases the Reader's internal
// buffers (contrast ReadFrame), so slabs may be retained, reused
// Reset-style across calls, or handed to other goroutines freely. The
// steady-state path allocates nothing.
//
// Returns (n, nil) with n > 0 while packets remain; (0, io.EOF) at a
// clean end of file; (0, err) on a malformed record. A short batch
// (0 < n < len(dst)) means the next call will return 0 with the
// stream's terminal error, so callers may treat any short batch as
// end-of-stream. Errors are sticky: once NextBatch reports a non-EOF
// error the Reader is mid-record and further calls return the same
// error.
func (r *Reader) NextBatch(dst []Packet) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	n := 0
	for n < len(dst) {
		ts, frame, err := r.readFrameZC()
		if err != nil {
			if n == 0 {
				if err != io.EOF {
					r.err = err
				}
				return 0, err
			}
			if err != io.EOF {
				r.err = err
			}
			return n, nil
		}
		p := &dst[n]
		switch uerr := p.UnmarshalFrame(frame); uerr {
		case nil:
			p.Time = ts
			n++
		case ErrNotIPv4:
			continue
		default:
			if n == 0 {
				r.err = uerr
				return 0, uerr
			}
			r.err = uerr
			return n, nil
		}
	}
	return n, nil
}

// readFrameZC returns the next record's timestamp and raw frame bytes
// without copying when the whole record fits in the read-ahead buffer:
// the returned slice aliases bufio storage and is valid only until the
// next read on r, which is why NextBatch fully decodes each frame into
// its caller-owned Packet before advancing. Records larger than the
// read-ahead buffer fall back to the copying path (the same buffer
// ReadFrame uses).
func (r *Reader) readFrameZC() (time.Time, []byte, error) {
	hdr, err := r.r.Peek(recordHdrLen)
	if err != nil {
		if err == io.EOF && len(hdr) == 0 {
			return time.Time{}, nil, io.EOF
		}
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return time.Time{}, nil, fmt.Errorf("pcap: reading record header: %w", err)
	}
	sec := readU32(hdr[0:4], r.swapped)
	usec := readU32(hdr[4:8], r.swapped)
	capLen := readU32(hdr[8:12], r.swapped)
	if capLen > maxSnapLen {
		return time.Time{}, nil, fmt.Errorf("pcap: record capture length %d exceeds snaplen", capLen)
	}
	ts := time.Unix(int64(sec), int64(usec)*1000).UTC()
	total := recordHdrLen + int(capLen)
	body, err := r.r.Peek(total)
	switch {
	case err == nil:
		// The whole record is buffered: Discard just advances the read
		// pointer (no refill), so body stays valid until the next Peek.
		r.r.Discard(total)
		return ts, body[recordHdrLen:], nil
	case err == bufio.ErrBufferFull:
		// Record larger than the read-ahead buffer: copy it out through
		// the Reader's frame buffer, as ReadFrame does.
		r.r.Discard(recordHdrLen)
		if cap(r.buf) < int(capLen) {
			r.buf = make([]byte, capLen)
		}
		r.buf = r.buf[:capLen]
		if _, err := io.ReadFull(r.r, r.buf); err != nil {
			return time.Time{}, nil, fmt.Errorf("pcap: truncated record body: %w", err)
		}
		return ts, r.buf, nil
	default:
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return time.Time{}, nil, fmt.Errorf("pcap: truncated record body: %w", err)
	}
}
