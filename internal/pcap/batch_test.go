package pcap

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// buildCapture writes the given frames (raw bytes with timestamps) into
// an in-memory pcap file.
func buildCapture(t testing.TB, frames [][]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, fr := range frames {
		if err := w.WriteFrame(time.Unix(1592395200+int64(i), 0), fr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// packetCapture marshals n sample packets into an in-memory pcap file.
func packetCapture(t testing.TB, n int) []byte {
	t.Helper()
	frames := make([][]byte, n)
	for i := range frames {
		fr, err := samplePacket(i).MarshalFrame()
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = fr
	}
	return buildCapture(t, frames)
}

// drainBatch reads the whole stream through NextBatch with the given
// slab size, returning the packet sequence and terminal error.
func drainBatch(t *testing.T, data []byte, slabSize int) ([]Packet, error) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	slab := make([]Packet, slabSize)
	var out []Packet
	for {
		n, err := r.NextBatch(slab)
		out = append(out, slab[:n]...)
		if n == 0 {
			return out, err
		}
	}
}

// drainPackets reads the whole stream through the per-packet oracle.
func drainPackets(t *testing.T, data []byte) ([]Packet, error) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var out []Packet
	for {
		var p Packet
		if err := r.ReadPacket(&p); err != nil {
			return out, err
		}
		out = append(out, p)
	}
}

func sameStreams(t *testing.T, got, want []Packet, gotErr, wantErr error, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: decoded %d packets, oracle decoded %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: packet %d mismatch:\n  batch  %+v\n  oracle %+v", label, i, got[i], want[i])
		}
	}
	if (gotErr == nil) != (wantErr == nil) || (gotErr == io.EOF) != (wantErr == io.EOF) {
		t.Fatalf("%s: terminal error %v, oracle %v", label, gotErr, wantErr)
	}
}

// TestNextBatchMatchesReadPacket is the differential contract: over
// clean files, files with non-IPv4 records interleaved, oversized
// frames that overflow the zero-copy read-ahead buffer, and truncated
// tails, NextBatch at every slab size yields exactly the ReadPacket
// oracle's packet sequence and terminal error class.
func TestNextBatchMatchesReadPacket(t *testing.T) {
	arp := make([]byte, 64)
	arp[12], arp[13] = 0x08, 0x06

	// A frame bigger than the 64 KiB bufio read-ahead buffer: forces
	// readFrameZC onto the copying fallback path mid-stream.
	big := make([]byte, 100_000)
	smallFr, err := samplePacket(7).MarshalFrame()
	if err != nil {
		t.Fatal(err)
	}
	copy(big, smallFr)

	var mixed [][]byte
	for i := 0; i < 300; i++ {
		fr, err := samplePacket(i).MarshalFrame()
		if err != nil {
			t.Fatal(err)
		}
		mixed = append(mixed, fr)
		if i%17 == 0 {
			mixed = append(mixed, arp)
		}
		if i == 150 {
			mixed = append(mixed, big)
		}
	}

	clean := packetCapture(t, 257)
	mixedCap := buildCapture(t, mixed)
	cases := map[string][]byte{
		"clean":          clean,
		"mixed":          mixedCap,
		"partial_header": append(append([]byte(nil), clean...), 0, 1, 2, 3, 4, 5, 6, 7),
		"truncated_body": mixedCap[:len(mixedCap)-3],
		"empty":          packetCapture(t, 0),
	}
	for name, data := range cases {
		want, wantErr := drainPackets(t, data)
		for _, slab := range []int{1, 3, 64, 1000} {
			got, gotErr := drainBatch(t, data, slab)
			sameStreams(t, got, want, gotErr, wantErr, name)
		}
	}
}

// TestNextBatchShortThenSticky: a stream that dies mid-record must
// first hand back the packets already decoded (short batch, nil error)
// and then report the same error on every subsequent call.
func TestNextBatchShortThenSticky(t *testing.T) {
	data := packetCapture(t, 10)
	data = data[:len(data)-3] // truncate the last record's body
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	slab := make([]Packet, 64)
	n, err := r.NextBatch(slab)
	if n != 9 || err != nil {
		t.Fatalf("first call: n=%d err=%v, want 9 packets and nil (deferred error)", n, err)
	}
	n, err = r.NextBatch(slab)
	if n != 0 || err == nil || err == io.EOF {
		t.Fatalf("second call: n=%d err=%v, want 0 and the truncation error", n, err)
	}
	first := err
	if n, err = r.NextBatch(slab); n != 0 || err != first {
		t.Fatalf("third call: n=%d err=%v, want sticky %v", n, err, first)
	}
}

// TestNextBatchPacketsDoNotAlias pins the ownership contract: packets
// decoded by NextBatch are plain values, so reading the rest of the
// file (which recycles the Reader's internal buffers) must not disturb
// a retained slab.
func TestNextBatchPacketsDoNotAlias(t *testing.T) {
	data := packetCapture(t, 100)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	slab := make([]Packet, 8)
	n, err := r.NextBatch(slab)
	if n != 8 || err != nil {
		t.Fatalf("NextBatch: n=%d err=%v", n, err)
	}
	saved := make([]Packet, 8)
	copy(saved, slab)
	for {
		if n, _ := r.NextBatch(make([]Packet, 16)); n == 0 {
			break
		}
	}
	for i := range saved {
		if slab[i] != saved[i] {
			t.Fatalf("packet %d mutated by later reads: %+v vs %+v", i, slab[i], saved[i])
		}
	}
}

// TestReadFrameReusesBuffer is the regression test for the documented
// ReadFrame aliasing hazard: the returned slice is the Reader's own
// buffer, so retaining it across a subsequent read observes the *next*
// record's bytes. If this test ever fails, ReadFrame started copying
// and its doc comment (and this test) should be updated together.
func TestReadFrameReusesBuffer(t *testing.T) {
	a := bytes.Repeat([]byte{0xaa}, 64)
	b := bytes.Repeat([]byte{0xbb}, 64)
	data := buildCapture(t, [][]byte{a, b})
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	_, f1, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	retained := f1 // aliased, not copied: this is the hazard
	cp := append([]byte(nil), f1...)
	if _, _, err := r.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(retained, cp) {
		t.Fatal("ReadFrame no longer reuses its buffer; update its ownership docs and this test")
	}
}

// TestNextBatchZeroAlloc gates the steady-state slab decode at zero
// allocations per call (the pcap_batch benchreport gate measures the
// same property end to end).
func TestNextBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	data := packetCapture(t, 4096)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	slab := make([]Packet, 64)
	if n, err := r.NextBatch(slab); n != len(slab) || err != nil {
		t.Fatalf("warmup: n=%d err=%v", n, err)
	}
	allocs := testing.AllocsPerRun(40, func() {
		if n, _ := r.NextBatch(slab); n != len(slab) {
			t.Fatal("stream ran dry mid-measurement")
		}
	})
	if allocs != 0 {
		t.Fatalf("NextBatch allocates %.1f per call at steady state, want 0", allocs)
	}
}

func BenchmarkPcapNextBatch(b *testing.B) {
	data := packetCapture(b, 2000)
	slab := make([]Packet, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for {
			n, _ := r.NextBatch(slab)
			if n == 0 {
				break
			}
			total += n
		}
		if total != 2000 {
			b.Fatalf("decoded %d packets, want 2000", total)
		}
	}
}

func BenchmarkPcapReadPacket(b *testing.B) {
	data := packetCapture(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		var p Packet
		total := 0
		for r.ReadPacket(&p) == nil {
			total++
		}
		if total != 2000 {
			b.Fatalf("decoded %d packets, want 2000", total)
		}
	}
}
