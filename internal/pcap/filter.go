package pcap

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ipaddr"
)

// Filter is a compiled packet predicate, a small BPF-style language used
// by the telescope to reduce the stream to "valid packets" before
// windowing (the paper filters by destination darkspace and discards
// legitimate traffic).
//
// Grammar (whitespace separated, left-associative):
//
//	expr   := term {"or" term}
//	term   := factor {"and" factor}
//	factor := ["not"] atom
//	atom   := "tcp" | "udp" | "icmp"
//	        | "src" "net" CIDR   | "dst" "net" CIDR
//	        | "src" "port" NUM   | "dst" "port" NUM
//	        | "syn"              (TCP SYN set)
//	        | "(" expr ")"
type Filter struct {
	eval func(*Packet) bool
	src  string
}

// Compile parses a filter expression. An empty expression matches
// everything.
func Compile(expr string) (*Filter, error) {
	toks := tokenize(expr)
	if len(toks) == 0 {
		return &Filter{eval: func(*Packet) bool { return true }, src: expr}, nil
	}
	p := &filterParser{toks: toks}
	fn, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("pcap: trailing tokens in filter %q", expr)
	}
	return &Filter{eval: fn, src: expr}, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(expr string) *Filter {
	f, err := Compile(expr)
	if err != nil {
		panic(err)
	}
	return f
}

// Match reports whether the packet satisfies the filter.
func (f *Filter) Match(p *Packet) bool { return f.eval(p) }

// String returns the original filter expression.
func (f *Filter) String() string { return f.src }

func tokenize(s string) []string {
	s = strings.ReplaceAll(s, "(", " ( ")
	s = strings.ReplaceAll(s, ")", " ) ")
	return strings.Fields(s)
}

type filterParser struct {
	toks []string
	pos  int
}

func (p *filterParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *filterParser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *filterParser) parseExpr() (func(*Packet) bool, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.peek() == "or" {
		p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l, r := left, right
		left = func(pk *Packet) bool { return l(pk) || r(pk) }
	}
	return left, nil
}

func (p *filterParser) parseTerm() (func(*Packet) bool, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.peek() == "and" {
		p.next()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l, r := left, right
		left = func(pk *Packet) bool { return l(pk) && r(pk) }
	}
	return left, nil
}

func (p *filterParser) parseFactor() (func(*Packet) bool, error) {
	if p.peek() == "not" {
		p.next()
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return func(pk *Packet) bool { return !inner(pk) }, nil
	}
	return p.parseAtom()
}

func (p *filterParser) parseAtom() (func(*Packet) bool, error) {
	switch tok := p.next(); tok {
	case "(":
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("pcap: missing ')' in filter")
		}
		return inner, nil
	case "tcp":
		return func(pk *Packet) bool { return pk.Proto == ProtoTCP }, nil
	case "udp":
		return func(pk *Packet) bool { return pk.Proto == ProtoUDP }, nil
	case "icmp":
		return func(pk *Packet) bool { return pk.Proto == ProtoICMP }, nil
	case "syn":
		return func(pk *Packet) bool {
			return pk.Proto == ProtoTCP && pk.Flags&FlagSYN != 0
		}, nil
	case "src", "dst":
		isSrc := tok == "src"
		switch kind := p.next(); kind {
		case "net":
			pfx, err := ipaddr.ParsePrefix(p.next())
			if err != nil {
				return nil, err
			}
			if isSrc {
				return func(pk *Packet) bool { return pfx.Contains(pk.Src) }, nil
			}
			return func(pk *Packet) bool { return pfx.Contains(pk.Dst) }, nil
		case "port":
			n, err := strconv.ParseUint(p.next(), 10, 16)
			if err != nil {
				return nil, fmt.Errorf("pcap: bad port in filter: %v", err)
			}
			port := uint16(n)
			if isSrc {
				return func(pk *Packet) bool { return pk.SrcPort == port }, nil
			}
			return func(pk *Packet) bool { return pk.DstPort == port }, nil
		default:
			return nil, fmt.Errorf("pcap: expected net/port after %q, got %q", tok, kind)
		}
	case "":
		return nil, fmt.Errorf("pcap: unexpected end of filter")
	default:
		return nil, fmt.Errorf("pcap: unknown filter token %q", tok)
	}
}
