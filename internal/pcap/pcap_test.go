package pcap

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ipaddr"
)

func samplePacket(i int) *Packet {
	protos := []IPProto{ProtoTCP, ProtoUDP, ProtoICMP}
	return &Packet{
		Time:    time.Unix(1592395200+int64(i), int64(i%1000)*1000).UTC(),
		Src:     ipaddr.Addr(0x0a000000 + uint32(i)),
		Dst:     ipaddr.Addr(0x2c000000 + uint32(i)*3),
		Proto:   protos[i%3],
		SrcPort: uint16(1024 + i),
		DstPort: uint16(i % 65536),
		Flags:   FlagSYN,
		TTL:     64,
		Length:  60 + i%100,
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	for i := 0; i < 50; i++ {
		in := samplePacket(i)
		frame, err := in.MarshalFrame()
		if err != nil {
			t.Fatalf("marshal %d: %v", i, err)
		}
		var out Packet
		if err := out.UnmarshalFrame(frame); err != nil {
			t.Fatalf("unmarshal %d: %v", i, err)
		}
		if out.Src != in.Src || out.Dst != in.Dst || out.Proto != in.Proto {
			t.Fatalf("addr/proto mismatch: %+v vs %+v", out, in)
		}
		if in.Proto != ProtoICMP {
			if out.SrcPort != in.SrcPort || out.DstPort != in.DstPort {
				t.Fatalf("port mismatch: %+v vs %+v", out, in)
			}
		}
		if in.Proto == ProtoTCP && out.Flags != in.Flags {
			t.Fatalf("flags mismatch: %v vs %v", out.Flags, in.Flags)
		}
		if out.TTL != in.TTL {
			t.Fatalf("ttl mismatch")
		}
	}
}

func TestMarshalChecksumValid(t *testing.T) {
	for i := 0; i < 20; i++ {
		frame, err := samplePacket(i).MarshalFrame()
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyIPv4Checksum(frame) {
			t.Fatalf("packet %d: invalid IPv4 checksum", i)
		}
	}
}

func TestMarshalRejectsOversize(t *testing.T) {
	p := samplePacket(0)
	p.Length = 70000
	if _, err := p.MarshalFrame(); err == nil {
		t.Error("oversize packet marshaled without error")
	}
}

func TestMarshalRejectsUnknownProto(t *testing.T) {
	p := samplePacket(0)
	p.Proto = 200
	if _, err := p.MarshalFrame(); err == nil {
		t.Error("unknown protocol marshaled without error")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var p Packet
	if err := p.UnmarshalFrame(nil); err != ErrTruncated {
		t.Errorf("nil frame: got %v, want ErrTruncated", err)
	}
	frame, _ := samplePacket(0).MarshalFrame()
	if err := p.UnmarshalFrame(frame[:20]); err != ErrTruncated {
		t.Errorf("short frame: got %v, want ErrTruncated", err)
	}
	arp := make([]byte, 64)
	arp[12], arp[13] = 0x08, 0x06 // EtherType ARP
	if err := p.UnmarshalFrame(arp); err != ErrNotIPv4 {
		t.Errorf("ARP frame: got %v, want ErrNotIPv4", err)
	}
}

func TestAddrRoundTripProperty(t *testing.T) {
	f := func(src, dst uint32, sport, dport uint16) bool {
		in := Packet{
			Time: time.Unix(0, 0), Src: ipaddr.Addr(src), Dst: ipaddr.Addr(dst),
			Proto: ProtoUDP, SrcPort: sport, DstPort: dport, TTL: 32, Length: 64,
		}
		frame, err := in.MarshalFrame()
		if err != nil {
			return false
		}
		var out Packet
		if err := out.UnmarshalFrame(frame); err != nil {
			return false
		}
		return out.Src == in.Src && out.Dst == in.Dst &&
			out.SrcPort == in.SrcPort && out.DstPort == in.DstPort
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := w.WritePacket(samplePacket(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != n {
		t.Fatalf("Count() = %d, want %d", w.Count(), n)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		var p Packet
		if err := r.ReadPacket(&p); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		want := samplePacket(i)
		if p.Src != want.Src || p.Dst != want.Dst || p.Proto != want.Proto {
			t.Fatalf("packet %d mismatch: %+v vs %+v", i, p, want)
		}
		if !p.Time.Equal(want.Time) {
			t.Fatalf("packet %d time %v, want %v", i, p.Time, want.Time)
		}
	}
	var p Packet
	if err := r.ReadPacket(&p); err != io.EOF {
		t.Fatalf("after last packet: got %v, want io.EOF", err)
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err != ErrBadMagic {
		t.Errorf("got %v, want ErrBadMagic", err)
	}
}

func TestReaderSkipsNonIPv4(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	arp := make([]byte, 64)
	arp[12], arp[13] = 0x08, 0x06
	if err := w.WriteFrame(time.Unix(0, 0), arp); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(samplePacket(1)); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	var p Packet
	if err := r.ReadPacket(&p); err != nil {
		t.Fatal(err)
	}
	if p.Src != samplePacket(1).Src {
		t.Error("reader did not skip the ARP frame")
	}
}

func TestBswapReader(t *testing.T) {
	// Build a big-endian header by hand and confirm detection.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xa1, 0xb2, 0xc3, 0xd4 // big-endian magic
	hdr[23] = linkEthernet
	buf.Write(hdr)
	if _, err := NewReader(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("big-endian pcap rejected: %v", err)
	}
}

func TestFilterBasics(t *testing.T) {
	tcp := samplePacket(0) // proto cycles tcp first
	tcp.Proto = ProtoTCP
	udp := samplePacket(1)
	udp.Proto = ProtoUDP
	cases := []struct {
		expr string
		pkt  *Packet
		want bool
	}{
		{"", tcp, true},
		{"tcp", tcp, true},
		{"tcp", udp, false},
		{"udp or tcp", udp, true},
		{"not tcp", udp, true},
		{"tcp and syn", tcp, true},
		{"dst net 44.0.0.0/8", tcp, true},
		{"dst net 45.0.0.0/8", tcp, false},
		{"src net 10.0.0.0/8 and dst net 44.0.0.0/8", tcp, true},
		{"( udp or icmp ) and not tcp", udp, true},
		{"dst port 0", tcp, true},
		{"src port 1024", tcp, true},
	}
	for _, c := range cases {
		f, err := Compile(c.expr)
		if err != nil {
			t.Fatalf("Compile(%q): %v", c.expr, err)
		}
		if got := f.Match(c.pkt); got != c.want {
			t.Errorf("filter %q on %v: got %v, want %v", c.expr, c.pkt.Proto, got, c.want)
		}
	}
}

func TestFilterErrors(t *testing.T) {
	bad := []string{"bogus", "src", "src net", "src net 1.2.3.4", "src port xx",
		"( tcp", "tcp )", "tcp extra", "not"}
	for _, expr := range bad {
		if _, err := Compile(expr); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", expr)
		}
	}
}

func TestTCPFlagsString(t *testing.T) {
	if s := (FlagSYN | FlagACK).String(); s != "SYN|ACK" {
		t.Errorf("got %q", s)
	}
	if s := TCPFlags(0).String(); s != "none" {
		t.Errorf("got %q", s)
	}
}

func TestProtoString(t *testing.T) {
	if ProtoTCP.String() != "tcp" || ProtoUDP.String() != "udp" || ProtoICMP.String() != "icmp" {
		t.Error("canonical names wrong")
	}
	if IPProto(99).String() != "proto(99)" {
		t.Errorf("got %q", IPProto(99).String())
	}
}

func BenchmarkMarshalFrame(b *testing.B) {
	p := samplePacket(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.MarshalFrame(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFileWriteRead(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pkts := make([]*Packet, 1000)
	for i := range pkts {
		pkts[i] = samplePacket(rng.Intn(1 << 16))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for _, p := range pkts {
			if err := w.WritePacket(p); err != nil {
				b.Fatal(err)
			}
		}
		w.Flush()
		r, _ := NewReader(bytes.NewReader(buf.Bytes()))
		var p Packet
		n := 0
		for r.ReadPacket(&p) == nil {
			n++
		}
		if n != len(pkts) {
			b.Fatalf("read %d packets, want %d", n, len(pkts))
		}
	}
}
