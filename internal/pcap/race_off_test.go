//go:build !race

package pcap

const raceEnabled = false
