package pcap

import (
	"bytes"
	"testing"
	"time"
)

// Fuzz harnesses: the decoders must never panic on arbitrary input, and
// whatever they accept must re-encode consistently.

func FuzzUnmarshalFrame(f *testing.F) {
	// Seed with valid frames of each protocol and some junk.
	for i := 0; i < 3; i++ {
		frame, err := samplePacket(i).MarshalFrame()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add(make([]byte, 13))
	f.Add(bytes.Repeat([]byte{0xff}, 100))

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		if err := p.UnmarshalFrame(data); err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted frames must re-marshal (length may have been padded).
		if p.Proto == ProtoTCP || p.Proto == ProtoUDP || p.Proto == ProtoICMP {
			if p.Length > 65535 {
				t.Fatalf("accepted frame with impossible length %d", p.Length)
			}
		}
	})
}

func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.WritePacket(samplePacket(i)); err != nil {
			f.Fatal(err)
		}
	}
	w.Flush()
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:30])
	f.Add([]byte("not a pcap file at all, just text"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var p Packet
		for i := 0; i < 1000; i++ {
			if err := r.ReadPacket(&p); err != nil {
				return
			}
			if p.Time.After(time.Unix(1<<33, 0)) {
				// Timestamps are attacker-controlled; just ensure no panic.
				_ = p.Time
			}
		}
	})
}

func FuzzFilterCompile(f *testing.F) {
	f.Add("tcp and syn")
	f.Add("src net 10.0.0.0/8 or ( udp and dst port 53 )")
	f.Add("not not not icmp")
	f.Add("((((")
	f.Fuzz(func(t *testing.T, expr string) {
		flt, err := Compile(expr)
		if err != nil {
			return
		}
		// Compiled filters must evaluate without panicking.
		p := samplePacket(1)
		_ = flt.Match(p)
	})
}
