package pcap

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// Fuzz harnesses: the decoders must never panic on arbitrary input, and
// whatever they accept must re-encode consistently.

func FuzzUnmarshalFrame(f *testing.F) {
	// Seed with valid frames of each protocol and some junk.
	for i := 0; i < 3; i++ {
		frame, err := samplePacket(i).MarshalFrame()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add(make([]byte, 13))
	f.Add(bytes.Repeat([]byte{0xff}, 100))

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		if err := p.UnmarshalFrame(data); err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted frames must re-marshal (length may have been padded).
		if p.Proto == ProtoTCP || p.Proto == ProtoUDP || p.Proto == ProtoICMP {
			if p.Length > 65535 {
				t.Fatalf("accepted frame with impossible length %d", p.Length)
			}
		}
	})
}

func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.WritePacket(samplePacket(i)); err != nil {
			f.Fatal(err)
		}
	}
	w.Flush()
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:30])
	f.Add([]byte("not a pcap file at all, just text"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var p Packet
		for i := 0; i < 1000; i++ {
			if err := r.ReadPacket(&p); err != nil {
				return
			}
			if p.Time.After(time.Unix(1<<33, 0)) {
				// Timestamps are attacker-controlled; just ensure no panic.
				_ = p.Time
			}
		}
	})
}

// FuzzReaderBatch is the batch decoder's differential harness: on
// arbitrary bytes, NextBatch (zero-copy slab path) must decode exactly
// the packet sequence of a ReadPacket loop (copying per-record oracle),
// end with the same error class, and never panic. The slab size is
// derived from the input so the fuzzer also explores batch-boundary
// positions.
func FuzzReaderBatch(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	arp := make([]byte, 64)
	arp[12], arp[13] = 0x08, 0x06
	for i := 0; i < 5; i++ {
		if err := w.WritePacket(samplePacket(i)); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.WriteFrame(time.Unix(0, 0), arp); err != nil {
		f.Fatal(err)
	}
	w.Flush()
	f.Add(buf.Bytes(), uint8(4))
	f.Add(buf.Bytes()[:len(buf.Bytes())-7], uint8(1))
	f.Add([]byte("not a pcap file at all, just text"), uint8(16))

	f.Fuzz(func(t *testing.T, data []byte, slabHint uint8) {
		slabSize := int(slabHint)%64 + 1
		br, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		pr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("oracle reader rejected what batch reader accepted: %v", err)
		}
		slab := make([]Packet, slabSize)
		const limit = 4096
		decoded := 0
		var batchErr error
		for decoded < limit {
			n, err := br.NextBatch(slab)
			if n == 0 {
				batchErr = err
				break
			}
			for i := 0; i < n; i++ {
				var want Packet
				if err := pr.ReadPacket(&want); err != nil {
					t.Fatalf("batch decoded packet %d but oracle errored: %v", decoded, err)
				}
				if slab[i] != want {
					t.Fatalf("packet %d mismatch:\n  batch  %+v\n  oracle %+v", decoded, slab[i], want)
				}
				decoded++
			}
		}
		if decoded >= limit {
			return // both streams still healthy at the cap; good enough
		}
		var rest Packet
		oracleErr := pr.ReadPacket(&rest)
		if oracleErr == nil {
			t.Fatalf("batch ended with %v after %d packets but oracle decoded another", batchErr, decoded)
		}
		if (batchErr == io.EOF) != (oracleErr == io.EOF) {
			t.Fatalf("terminal error class mismatch: batch %v, oracle %v", batchErr, oracleErr)
		}
	})
}

func FuzzFilterCompile(f *testing.F) {
	f.Add("tcp and syn")
	f.Add("src net 10.0.0.0/8 or ( udp and dst port 53 )")
	f.Add("not not not icmp")
	f.Add("((((")
	f.Fuzz(func(t *testing.T, expr string) {
		flt, err := Compile(expr)
		if err != nil {
			return
		}
		// Compiled filters must evaluate without panicking.
		p := samplePacket(1)
		_ = flt.Match(p)
	})
}
