package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// pcap file format constants (classic libpcap, microsecond resolution).
const (
	magicMicro   = 0xa1b2c3d4
	versionMajor = 2
	versionMinor = 4
	linkEthernet = 1
	maxSnapLen   = 262144
)

// Writer emits a libpcap capture file. It buffers internally; Flush (or
// the caller's own sync) must run before the underlying stream is read.
type Writer struct {
	w       *bufio.Writer
	snapLen int
	count   int
	hdr     [16]byte
}

// NewWriter writes the pcap global header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicro)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	binary.LittleEndian.PutUint32(hdr[16:20], maxSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkEthernet)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, snapLen: maxSnapLen}, nil
}

// WriteFrame appends one raw frame with the given capture timestamp.
func (w *Writer) WriteFrame(ts time.Time, frame []byte) error {
	capLen := len(frame)
	if capLen > w.snapLen {
		capLen = w.snapLen
	}
	binary.LittleEndian.PutUint32(w.hdr[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(w.hdr[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(w.hdr[8:12], uint32(capLen))
	binary.LittleEndian.PutUint32(w.hdr[12:16], uint32(len(frame)))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(frame[:capLen]); err != nil {
		return err
	}
	w.count++
	return nil
}

// WritePacket marshals and appends a decoded packet.
func (w *Writer) WritePacket(p *Packet) error {
	frame, err := p.MarshalFrame()
	if err != nil {
		return err
	}
	return w.WriteFrame(p.Time, frame)
}

// Count reports the number of records written so far.
func (w *Writer) Count() int { return w.count }

// Flush drains the internal buffer to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader parses a libpcap capture file sequentially.
type Reader struct {
	r       *bufio.Reader
	swapped bool
	buf     []byte
	err     error // deferred NextBatch error: reported by the call after a short batch
}

// ErrBadMagic indicates the stream is not a classic pcap file.
var ErrBadMagic = errors.New("pcap: bad magic number")

// NewReader validates the global header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	swapped := false
	switch magic {
	case magicMicro:
	case bswap32(magicMicro):
		swapped = true
	default:
		return nil, ErrBadMagic
	}
	link := readU32(hdr[20:24], swapped)
	if link != linkEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", link)
	}
	return &Reader{r: br, swapped: swapped, buf: make([]byte, 0, 2048)}, nil
}

// ReadFrame returns the next record's timestamp and raw bytes. Returns
// io.EOF at end of file.
//
// Ownership hazard: the returned slice aliases the Reader's internal
// buffer and is overwritten by the next ReadFrame or NextBatch call —
// retaining it across calls reads the *next* record's bytes, silently.
// Callers must copy to retain (TestReadFrameReusesBuffer pins this
// hazard). ReadPacket and NextBatch are the safe alternatives: both
// fully decode into caller-owned Packet values before the buffer is
// touched again, so nothing they return aliases the Reader.
func (r *Reader) ReadFrame() (time.Time, []byte, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return time.Time{}, nil, io.EOF
		}
		return time.Time{}, nil, fmt.Errorf("pcap: reading record header: %w", err)
	}
	sec := readU32(hdr[0:4], r.swapped)
	usec := readU32(hdr[4:8], r.swapped)
	capLen := readU32(hdr[8:12], r.swapped)
	if capLen > maxSnapLen {
		return time.Time{}, nil, fmt.Errorf("pcap: record capture length %d exceeds snaplen", capLen)
	}
	if cap(r.buf) < int(capLen) {
		r.buf = make([]byte, capLen)
	}
	r.buf = r.buf[:capLen]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return time.Time{}, nil, fmt.Errorf("pcap: truncated record body: %w", err)
	}
	ts := time.Unix(int64(sec), int64(usec)*1000).UTC()
	return ts, r.buf, nil
}

// ReadPacket decodes the next IPv4 packet, silently skipping non-IPv4
// records. Returns io.EOF at end of file.
func (r *Reader) ReadPacket(p *Packet) error {
	for {
		ts, frame, err := r.ReadFrame()
		if err != nil {
			return err
		}
		switch err := p.UnmarshalFrame(frame); err {
		case nil:
			p.Time = ts
			return nil
		case ErrNotIPv4:
			continue
		default:
			return err
		}
	}
}

func readU32(b []byte, swapped bool) uint32 {
	if swapped {
		return binary.BigEndian.Uint32(b)
	}
	return binary.LittleEndian.Uint32(b)
}

func bswap32(v uint32) uint32 {
	return v<<24 | v>>24 | (v&0xff00)<<8 | (v>>8)&0xff00
}
