//go:build race

package pcap

// raceEnabled reports that this test binary was built with the race
// detector, which perturbs both allocation counts and relative timings.
const raceEnabled = true
