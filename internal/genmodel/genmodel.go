// Package genmodel implements the hybrid power-law generative model of
// network traffic that the paper points to as theory work built on its
// observations (Devlin, Kepner, Luo, Meger, "Hybrid power-law models of
// network traffic", IPDPSW 2021 — the paper's reference [59]): a
// preferential-attachment process extended with parameters describing
// adversarial (uniform random scanning) traffic.
//
// Each generated packet picks its source and destination independently:
// with probability PrefSource (resp. PrefDest) the endpoint is drawn
// preferentially — proportional to the traffic it has already carried —
// and otherwise uniformly from the address pool. Pure preferential
// attachment yields a Zipf-like degree distribution; the uniform
// "adversarial" component flattens the head and truncates the tail, the
// hybrid shape observed at telescopes. The model closes the loop with
// the paper's Figure 3: its output feeds the same binning and
// Zipf-Mandelbrot fitting machinery as the telescope windows.
package genmodel

import (
	"fmt"
	"math/rand"

	"repro/internal/hypersparse"
	"repro/internal/stats"
)

// Config parameterizes a hybrid power-law traffic generator.
type Config struct {
	Sources    int     // size of the source address pool
	Dests      int     // size of the destination address pool
	PrefSource float64 // probability a packet's source is drawn preferentially
	PrefDest   float64 // probability a packet's destination is drawn preferentially
	Seed       int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Sources <= 1 || c.Dests <= 1:
		return fmt.Errorf("genmodel: pools must have at least 2 endpoints")
	case c.PrefSource < 0 || c.PrefSource > 1 || c.PrefDest < 0 || c.PrefDest > 1:
		return fmt.Errorf("genmodel: preferential probabilities must be in [0,1]")
	}
	return nil
}

// Model is a streaming hybrid power-law traffic generator.
type Model struct {
	cfg Config
	rng *rand.Rand
	// srcHist/dstHist hold every endpoint choice made so far;
	// drawing uniformly from the history IS preferential attachment
	// (an endpoint's selection probability is proportional to its
	// current degree), the standard trick from Barabási-Albert
	// implementations.
	srcHist []uint32
	dstHist []uint32
}

// New builds a Model.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Next produces one packet's (source, destination) pair.
func (m *Model) Next() (src, dst uint32) {
	src = m.pick(m.cfg.PrefSource, m.srcHist, m.cfg.Sources)
	dst = m.pick(m.cfg.PrefDest, m.dstHist, m.cfg.Dests)
	m.srcHist = append(m.srcHist, src)
	m.dstHist = append(m.dstHist, dst)
	return src, dst
}

func (m *Model) pick(pref float64, hist []uint32, pool int) uint32 {
	if len(hist) > 0 && m.rng.Float64() < pref {
		return hist[m.rng.Intn(len(hist))]
	}
	return uint32(m.rng.Intn(pool))
}

// Generate produces a traffic matrix of n packets.
func (m *Model) Generate(n int) *hypersparse.Matrix {
	b := hypersparse.NewBuilder(n)
	for i := 0; i < n; i++ {
		s, d := m.Next()
		b.Add(s, d, 1)
	}
	return b.Build()
}

// SourceDistribution generates n packets and returns the log2-binned
// source-packet degree distribution, directly comparable to the
// telescope's Figure 3 measurement.
func (m *Model) SourceDistribution(n int) *stats.Binned {
	mat := m.Generate(n)
	vals := make([]float64, 0, mat.NRows())
	mat.RowSums().Iterate(func(_ uint32, v float64) bool {
		vals = append(vals, v)
		return true
	})
	return stats.LogBin(vals)
}

// FitZM generates n packets and fits the Zipf-Mandelbrot law to the
// source distribution, returning (alpha, delta, residual).
func (m *Model) FitZM(n int) (float64, float64, float64) {
	return stats.FitZipfMandelbrot(m.SourceDistribution(n), float64(n))
}
