package genmodel

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Sources: 100, Dests: 100, PrefSource: 0.8, PrefDest: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Sources: 1, Dests: 100},
		{Sources: 100, Dests: 0},
		{Sources: 100, Dests: 100, PrefSource: 1.5},
		{Sources: 100, Dests: 100, PrefDest: -0.1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(bad[0]); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestGenerateConservesPackets(t *testing.T) {
	m, err := New(Config{Sources: 500, Dests: 500, PrefSource: 0.7, PrefDest: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	mat := m.Generate(n)
	if mat.Sum() != n {
		t.Errorf("matrix sum = %g, want %d", mat.Sum(), n)
	}
	if mat.NRows() > 500 {
		t.Errorf("more sources than the pool: %d", mat.NRows())
	}
}

func TestDeterministic(t *testing.T) {
	mk := func() *Model {
		m, _ := New(Config{Sources: 100, Dests: 100, PrefSource: 0.5, PrefDest: 0.5, Seed: 42})
		return m
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		s1, d1 := a.Next()
		s2, d2 := b.Next()
		if s1 != s2 || d1 != d2 {
			t.Fatalf("packet %d differs between identically-seeded models", i)
		}
	}
}

func TestPureUniformIsFlat(t *testing.T) {
	// With no preferential component every source has Binomial(n, 1/S)
	// packets: the degree distribution concentrates near n/S with no
	// heavy tail.
	m, _ := New(Config{Sources: 1000, Dests: 1000, PrefSource: 0, PrefDest: 0, Seed: 2})
	b := m.SourceDistribution(100000) // mean degree 100
	maxBin := b.MaxDegreeBin()
	if maxBin > 9 { // 2^9 = 512 would be a wild outlier for Binomial(1e5, 1e-3)
		t.Errorf("uniform traffic produced heavy tail out to 2^%d", maxBin)
	}
	// Mass concentrated within two octaves of the mean (bin ~7).
	probs := b.Prob()
	var nearMean float64
	for i := 5; i <= 8 && i < len(probs); i++ {
		nearMean += probs[i]
	}
	if nearMean < 0.9 {
		t.Errorf("only %g of mass near the mean for uniform traffic", nearMean)
	}
}

func TestPreferentialProducesHeavyTail(t *testing.T) {
	// Strong preferential attachment: the tail must extend far beyond
	// the uniform case's Binomial spread.
	m, _ := New(Config{Sources: 1000, Dests: 1000, PrefSource: 0.9, PrefDest: 0.5, Seed: 3})
	b := m.SourceDistribution(100000)
	if b.MaxDegreeBin() < 11 {
		t.Errorf("preferential traffic tail only reaches 2^%d; expected heavy tail", b.MaxDegreeBin())
	}
}

func TestHybridFitsZipfMandelbrot(t *testing.T) {
	// The hybrid regime (the paper's adversarial-traffic setting)
	// produces a power law a ZM fit captures with a plausible exponent.
	// Yule-Simon predicts exponent 1 + 1/0.8 = 2.25; finite pools and
	// the uniform component steepen the finite-size fit somewhat.
	m, _ := New(Config{Sources: 5000, Dests: 5000, PrefSource: 0.8, PrefDest: 0.3, Seed: 4})
	alpha, _, res := m.FitZM(200000)
	if alpha < 1.5 || alpha >= 3.0 {
		t.Errorf("hybrid ZM alpha = %g (residual %g), want a power-law range", alpha, res)
	}
}

func TestMoreAdversarialMeansFlatterHead(t *testing.T) {
	// Increasing the uniform (adversarial scanning) share moves mass
	// toward the mean-degree bins: the head fraction at degree 1 drops
	// relative to the strongly-preferential model... and the maximum
	// degree shrinks.
	heavyPref, _ := New(Config{Sources: 2000, Dests: 2000, PrefSource: 0.9, PrefDest: 0.3, Seed: 5})
	mostlyUniform, _ := New(Config{Sources: 2000, Dests: 2000, PrefSource: 0.2, PrefDest: 0.3, Seed: 5})
	bp := heavyPref.SourceDistribution(100000)
	bu := mostlyUniform.SourceDistribution(100000)
	if bp.MaxDegreeBin() <= bu.MaxDegreeBin() {
		t.Errorf("preferential max bin 2^%d not above uniform-heavy 2^%d",
			bp.MaxDegreeBin(), bu.MaxDegreeBin())
	}
}

func TestSourceDistributionNormalized(t *testing.T) {
	m, _ := New(Config{Sources: 300, Dests: 300, PrefSource: 0.6, PrefDest: 0.6, Seed: 6})
	p := m.SourceDistribution(20000).Prob()
	var s float64
	for _, x := range p {
		s += x
	}
	if math.Abs(s-1) > 1e-12 {
		t.Errorf("distribution mass = %g", s)
	}
}

func TestExponentFollowsYuleSimon(t *testing.T) {
	// Yule-Simon: preferential attachment with preferential share p has
	// degree exponent 1 + 1/p, always above 2 — which is why the
	// telescope's measured alpha of 1.76 requires the extra adversarial
	// parameters (the point of the paper's reference [59]). Check the
	// fitted exponent tracks the prediction for a heavy-pref model.
	p := 0.85
	m, _ := New(Config{Sources: 20000, Dests: 5000, PrefSource: p, PrefDest: 0.2, Seed: 7})
	alpha, _, _ := m.FitZM(300000)
	predicted := 1 + 1/p // ~2.18
	if math.Abs(alpha-predicted) > 0.5 {
		t.Errorf("alpha = %g, Yule-Simon predicts ~%g", alpha, predicted)
	}
	_ = stats.PaperZM // documentation anchor: the telescope's fitted family
}

func BenchmarkGenerate(b *testing.B) {
	m, _ := New(Config{Sources: 10000, Dests: 10000, PrefSource: 0.8, PrefDest: 0.3, Seed: 8})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Next()
	}
}
