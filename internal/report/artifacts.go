package report

// artifacts.go holds the per-artifact compute jobs and their typed
// accessors. The compute bodies are the former core.Result methods,
// moved here verbatim (core aliases the row types, so call sites are
// unchanged); fig7_fig8 is the one artifact whose parallel path
// diverges from the historical loop — it fans the per-(snapshot, band)
// GridSearch2 fits across the shared worker pool, with the serial
// sweep retained verbatim at Workers == 1 as the oracle.

import (
	"context"
	"fmt"
	"math"

	"repro/internal/correlate"
	"repro/internal/netquant"
	"repro/internal/pool"
	"repro/internal/stats"
)

// TableIRow is one line of the paper's Table I dataset inventory.
type TableIRow struct {
	GNStart   string
	GNDays    int
	GNSources int
	// CAIDA columns are empty except for snapshot months.
	CAIDAStart    string
	CAIDADuration string
	CAIDAPackets  int
	CAIDASources  int
}

// Fig3Series is one snapshot's degree distribution with its
// Zipf-Mandelbrot fit.
type Fig3Series struct {
	Label    string
	Binned   *stats.Binned
	Alpha    float64 // fitted ZM exponent
	Delta    float64 // fitted ZM offset
	Residual float64
}

// Fig4Series is one snapshot's peak-correlation curve with the paper's
// logarithmic model.
type Fig4Series struct {
	Label  string
	Points []correlate.BandFraction
	Model  []float64 // PeakModel evaluated at each point's band edge
}

// fig5Data bundles Figure 5's series with its three model fits — one
// graph node, since both halves come from the same Temporal call.
type fig5Data struct {
	Series correlate.Series
	Fits   map[string]stats.TemporalFit
}

// fig6Data bundles Figure 6's curves with their index-aligned fits.
type fig6Data struct {
	Series []correlate.Series
	Fits   []stats.TemporalFit
}

// TableI reproduces the dataset inventory: one row per honeyfarm month,
// with telescope columns filled on snapshot months.
func (g *Graph) TableI() []TableIRow {
	v, _ := g.get(Table1) // cannot fail
	return v.([]TableIRow)
}

func runTableI(g *Graph) (any, error) {
	rows := make([]TableIRow, len(g.in.Study.Months))
	for i, m := range g.in.Study.Months {
		start := g.in.Params.StudyStart.AddDate(0, m.Month, 0)
		end := start.AddDate(0, 1, 0)
		rows[i] = TableIRow{
			GNStart:   start.Format("2006-01-02"),
			GNDays:    int(end.Sub(start).Hours() / 24),
			GNSources: m.Table.NRows(),
		}
	}
	for si, snap := range g.in.Study.Snapshots {
		mi := int(math.Floor(snap.Month))
		if mi < 0 || mi >= len(rows) {
			continue
		}
		w := g.in.Windows[si]
		rows[mi].CAIDAStart = snap.Label
		rows[mi].CAIDADuration = fmt.Sprintf("%.0f sec", w.Duration().Seconds())
		rows[mi].CAIDAPackets = w.NV
		rows[mi].CAIDASources = w.Matrix.NRows()
	}
	return rows, nil
}

// TableII computes the network quantities of each snapshot's anonymized
// matrix.
func (g *Graph) TableII() []netquant.Quantities {
	v, _ := g.get(Table2) // cannot fail
	return v.([]netquant.Quantities)
}

func runTableII(g *Graph) (any, error) {
	out := make([]netquant.Quantities, len(g.in.Windows))
	for i, w := range g.in.Windows {
		out[i] = netquant.Compute(w.Matrix)
	}
	return out, nil
}

// Fig3 computes the source-packet degree distribution and ZM fit for
// every snapshot (the paper's Figure 3).
func (g *Graph) Fig3() []Fig3Series {
	v, _ := g.get(Fig3) // cannot fail
	return v.([]Fig3Series)
}

func runFig3(g *Graph) (any, error) {
	out := make([]Fig3Series, len(g.in.Windows))
	for i, w := range g.in.Windows {
		b := netquant.SourcePacketDistribution(w.Matrix)
		a, d, res := stats.FitZipfMandelbrot(b, float64(g.in.Params.NV))
		out[i] = Fig3Series{
			Label:  g.in.Study.Snapshots[i].Label,
			Binned: b,
			Alpha:  a, Delta: d, Residual: res,
		}
	}
	return out, nil
}

// Fig4 computes the same-month correlation by brightness for every
// snapshot, on the frozen sorted-key kernel.
func (g *Graph) Fig4() ([]Fig4Series, error) {
	v, err := g.get(Fig4)
	if err != nil {
		return nil, err
	}
	return v.([]Fig4Series), nil
}

func runFig4(g *Graph) (any, error) {
	f := g.frozen()
	out := make([]Fig4Series, 0, len(g.in.Study.Snapshots))
	for si, snap := range g.in.Study.Snapshots {
		mi, err := f.SameMonthIndex(si)
		if err != nil {
			return nil, err
		}
		pts := f.PeakCorrelation(si, mi)
		model := make([]float64, len(pts))
		for i, p := range pts {
			model[i] = correlate.PeakModel(p.D, snap.NV)
		}
		out = append(out, Fig4Series{Label: snap.Label, Points: pts, Model: model})
	}
	return out, nil
}

// Fig5 computes the temporal correlation of the first snapshot's
// Fig5Band sources with all three model fits (the paper's Figure 5).
func (g *Graph) Fig5() (correlate.Series, map[string]stats.TemporalFit, error) {
	v, err := g.get(Fig5)
	if err != nil {
		return correlate.Series{}, nil, err
	}
	d := v.(fig5Data)
	return d.Series, d.Fits, nil
}

func runFig5(g *Graph) (any, error) {
	if len(g.in.Study.Snapshots) == 0 {
		return nil, fmt.Errorf("report: no snapshots")
	}
	series, err := g.frozen().Temporal(0, g.in.Params.Fig5Band)
	if err != nil {
		return nil, err
	}
	return fig5Data{Series: series, Fits: series.FitAll()}, nil
}

// Fig6 computes the temporal correlation curves for every snapshot and
// every Fig6 band, with modified-Cauchy fits. Bands a snapshot lacks are
// skipped.
func (g *Graph) Fig6() ([]correlate.Series, []stats.TemporalFit) {
	v, _ := g.get(Fig6) // cannot fail
	d := v.(fig6Data)
	return d.Series, d.Fits
}

func runFig6(g *Graph) (any, error) {
	f := g.frozen()
	var d fig6Data
	for si := range g.in.Study.Snapshots {
		for _, band := range g.in.Params.Fig6Bands {
			s, err := f.Temporal(si, band)
			if err != nil {
				continue
			}
			d.Series = append(d.Series, s)
			d.Fits = append(d.Fits, s.Fit())
		}
	}
	return d, nil
}

// Fig7And8 computes the per-band modified-Cauchy parameter sweeps for
// every snapshot: Alpha per band (Figure 7) and one-month drop 1/(β+1)
// per band (Figure 8). With Workers > 1 the (snapshot, band)
// GridSearch2 fits — the dominant post-capture cost — run concurrently
// on the shared worker pool; results assemble in SweepBands order, so
// the output is byte-identical to the Workers == 1 serial oracle.
func (g *Graph) Fig7And8() [][]correlate.BandFit {
	v, _ := g.get(Fig7Fig8) // cannot fail
	return v.([][]correlate.BandFit)
}

func runFig7And8(g *Graph) (any, error) {
	f := g.frozen()
	nSnaps := len(g.in.Study.Snapshots)
	minSources := g.in.Params.MinBandSources
	out := make([][]correlate.BandFit, nSnaps)

	if g.workers() == 1 {
		// The historical serial compute, kept verbatim as the oracle.
		for i := 0; i < nSnaps; i++ {
			out[i] = f.FitSweep(i, minSources)
		}
		return out, nil
	}

	// One job per (snapshot, band), enumerated in the same (snapshot,
	// ascending band) order the serial sweep fits them.
	type fitJob struct{ si, band int }
	var jobs []fitJob
	for si := 0; si < nSnaps; si++ {
		for _, band := range f.SweepBands(si, minSources) {
			jobs = append(jobs, fitJob{si: si, band: band})
		}
	}
	fits := make([]correlate.BandFit, len(jobs))
	oks := make([]bool, len(jobs))
	_ = pool.Each(context.Background(), g.workers(), len(jobs), func(_ context.Context, j int) error {
		fits[j], oks[j] = f.FitBand(jobs[j].si, jobs[j].band)
		return nil
	})
	for i := 0; i < nSnaps; i++ {
		// Pre-size like FitSweep: capacity for every fitted band.
		out[i] = make([]correlate.BandFit, 0, len(f.SweepBands(i, minSources)))
	}
	for j := range jobs {
		if oks[j] {
			out[jobs[j].si] = append(out[jobs[j].si], fits[j])
		}
	}
	return out, nil
}
