package report

// render.go is the one renderer every CLI shares. Each artifact lowers
// to a Table — a comment preamble, a column header, and rows of
// already-formatted cells — and both encoders consume that Table, so
// TSV and JSON can never drift apart. The cell formats are the
// historical cmd/figures verbs, byte for byte; the golden files in
// testdata/ pin them.
//
// The single deliberate change from the historical output: fig5's fit
// comment lines used to iterate a Go map (random order run to run);
// they now emit in the canonical modified-cauchy, cauchy, gaussian
// order — one of the historical orders, made deterministic so goldens
// can exist.

import (
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strings"
)

// fig5FitOrder is the canonical model order of Figure 5's comparison.
var fig5FitOrder = []string{"modified-cauchy", "cauchy", "gaussian"}

// Table is the render model every artifact lowers to. Comments carry
// preamble lines without the TSV "# " prefix; Rows hold cells already
// formatted with the artifact's verbs.
type Table struct {
	Artifact ArtifactID
	Comments []string
	Columns  []string
	Rows     [][]string
}

// Table lowers one artifact to its render model, computing it (and its
// dependencies) through the graph on first use.
func (g *Graph) Table(id ArtifactID) (*Table, error) {
	switch id {
	case Table1:
		return tableTableI(g), nil
	case Table2:
		return tableTableII(g), nil
	case Fig3:
		return tableFig3(g), nil
	case Fig4:
		return tableFig4(g)
	case Fig5:
		return tableFig5(g)
	case Fig6:
		return tableFig6(g), nil
	case Fig7Fig8:
		return tableFig7And8(g), nil
	default:
		return nil, fmt.Errorf("report: unknown artifact %q", id)
	}
}

// WriteTSV renders one artifact as tab-separated values, byte-identical
// to the historical cmd/figures output.
func WriteTSV(w io.Writer, g *Graph, id ArtifactID) error {
	t, err := g.Table(id)
	if err != nil {
		return err
	}
	return t.WriteTSV(w)
}

// WriteTSV encodes the lowered table as TSV.
func (t *Table) WriteTSV(w io.Writer) error {
	for _, c := range t.Comments {
		if _, err := fmt.Fprintf(w, "# %s\n", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// jsonNumber matches cells that are valid JSON number literals, so the
// JSON encoding carries them as numbers rather than strings. Formatted
// floats ("0.1234", "1e+06", "-3") all match; labels, durations, and
// non-finite fit residuals ("+Inf") fall back to JSON strings.
var jsonNumber = regexp.MustCompile(`^-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)

// jsonArtifact is the WriteJSON document schema: the same comment
// preamble, columns, and row cells as the TSV, with numeric cells as
// JSON numbers.
type jsonArtifact struct {
	Artifact ArtifactID          `json:"artifact"`
	Comments []string            `json:"comments,omitempty"`
	Columns  []string            `json:"columns"`
	Rows     [][]json.RawMessage `json:"rows"`
}

// WriteJSON renders one artifact as a JSON document holding exactly the
// values of the TSV encoding (TestJSONMatchesTSV pins the equality).
func WriteJSON(w io.Writer, g *Graph, id ArtifactID) error {
	t, err := g.Table(id)
	if err != nil {
		return err
	}
	return t.WriteJSON(w)
}

// WriteJSON encodes the lowered table as a JSON document.
func (t *Table) WriteJSON(w io.Writer) error {
	doc := jsonArtifact{
		Artifact: t.Artifact,
		Comments: t.Comments,
		Columns:  t.Columns,
		Rows:     make([][]json.RawMessage, len(t.Rows)),
	}
	for i, row := range t.Rows {
		cells := make([]json.RawMessage, len(row))
		for j, cell := range row {
			if jsonNumber.MatchString(cell) {
				cells[j] = json.RawMessage(cell)
			} else {
				quoted, err := json.Marshal(cell)
				if err != nil {
					return err
				}
				cells[j] = quoted
			}
		}
		doc.Rows[i] = cells
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

func tableTableI(g *Graph) *Table {
	t := &Table{
		Artifact: Table1,
		Columns:  []string{"gn_start", "gn_days", "gn_sources", "caida_start", "caida_duration", "caida_packets", "caida_sources"},
	}
	for _, r := range g.TableI() {
		t.Rows = append(t.Rows, []string{
			r.GNStart,
			fmt.Sprintf("%d", r.GNDays),
			fmt.Sprintf("%d", r.GNSources),
			r.CAIDAStart,
			r.CAIDADuration,
			fmt.Sprintf("%d", r.CAIDAPackets),
			fmt.Sprintf("%d", r.CAIDASources),
		})
	}
	return t
}

func tableTableII(g *Graph) *Table {
	t := &Table{
		Artifact: Table2,
		Columns:  []string{"snapshot", "quantity", "value"},
	}
	quants := g.TableII()
	labels := g.snapshotLabels()
	for i, q := range quants {
		if i >= len(labels) {
			break
		}
		for _, row := range q.Rows() {
			t.Rows = append(t.Rows, []string{labels[i], row[0], row[1]})
		}
	}
	return t
}

// snapshotLabels copies the snapshot labels under the input lock, so
// render code never reads g.in concurrently with an Update.
func (g *Graph) snapshotLabels() []string {
	g.inMu.RLock()
	defer g.inMu.RUnlock()
	out := make([]string, len(g.in.Study.Snapshots))
	for i, s := range g.in.Study.Snapshots {
		out[i] = s.Label
	}
	return out
}

func tableFig3(g *Graph) *Table {
	t := &Table{
		Artifact: Fig3,
		Columns:  []string{"snapshot", "d", "prob", "zm_alpha", "zm_delta"},
	}
	for _, s := range g.Fig3() {
		probs := s.Binned.Prob()
		for i, p := range probs {
			if p == 0 {
				continue
			}
			t.Rows = append(t.Rows, []string{
				s.Label,
				fmt.Sprintf("%g", s.Binned.Centers[i]),
				fmt.Sprintf("%.6g", p),
				fmt.Sprintf("%.3f", s.Alpha),
				fmt.Sprintf("%.3f", s.Delta),
			})
		}
	}
	return t
}

func tableFig4(g *Graph) (*Table, error) {
	series, err := g.Fig4()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Artifact: Fig4,
		Columns:  []string{"snapshot", "d", "sources", "matched", "fraction", "ci_lo", "ci_hi", "model_log2d_over_log2sqrtNV"},
	}
	for _, s := range series {
		for i, p := range s.Points {
			t.Rows = append(t.Rows, []string{
				s.Label,
				fmt.Sprintf("%g", p.D),
				fmt.Sprintf("%d", p.Sources),
				fmt.Sprintf("%d", p.Matched),
				fmt.Sprintf("%.4f", p.Fraction),
				fmt.Sprintf("%.4f", p.CILo),
				fmt.Sprintf("%.4f", p.CIHi),
				fmt.Sprintf("%.4f", s.Model[i]),
			})
		}
	}
	return t, nil
}

func tableFig5(g *Graph) (*Table, error) {
	series, fits, err := g.Fig5()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Artifact: Fig5,
		Comments: []string{fmt.Sprintf("snapshot %s, band 2^%d (%d sources)",
			series.Snapshot, series.Band, series.Sources)},
		Columns: []string{"month", "dt", "fraction", "mod_cauchy", "cauchy", "gaussian"},
	}
	for _, name := range fig5FitOrder {
		fit := fits[name]
		t.Comments = append(t.Comments,
			fmt.Sprintf("fit %s: model=%+v residual=%.4f", name, fit.Model, fit.Residual))
	}
	mc := fits["modified-cauchy"].Curve(series.Dt)
	ca := fits["cauchy"].Curve(series.Dt)
	ga := fits["gaussian"].Curve(series.Dt)
	for i := range series.Dt {
		t.Rows = append(t.Rows, []string{
			series.Labels[i],
			fmt.Sprintf("%.2f", series.Dt[i]),
			fmt.Sprintf("%.4f", series.Fraction[i]),
			fmt.Sprintf("%.4f", mc[i]),
			fmt.Sprintf("%.4f", ca[i]),
			fmt.Sprintf("%.4f", ga[i]),
		})
	}
	return t, nil
}

func tableFig6(g *Graph) *Table {
	all, fits := g.Fig6()
	t := &Table{
		Artifact: Fig6,
		Columns:  []string{"snapshot", "band", "sources", "month", "dt", "fraction", "fit"},
	}
	for k, s := range all {
		curve := fits[k].Curve(s.Dt)
		for i := range s.Dt {
			t.Rows = append(t.Rows, []string{
				s.Snapshot,
				fmt.Sprintf("%d", s.Band),
				fmt.Sprintf("%d", s.Sources),
				s.Labels[i],
				fmt.Sprintf("%.2f", s.Dt[i]),
				fmt.Sprintf("%.4f", s.Fraction[i]),
				fmt.Sprintf("%.4f", curve[i]),
			})
		}
	}
	return t
}

func tableFig7And8(g *Graph) *Table {
	t := &Table{
		Artifact: Fig7Fig8,
		Columns:  []string{"snapshot", "d", "sources", "alpha", "beta", "one_month_drop", "residual"},
	}
	for _, sweep := range g.Fig7And8() {
		for _, f := range sweep {
			t.Rows = append(t.Rows, []string{
				f.Snapshot,
				fmt.Sprintf("%g", f.D),
				fmt.Sprintf("%d", f.Sources),
				fmt.Sprintf("%.3f", f.Alpha),
				fmt.Sprintf("%.3f", f.Beta),
				fmt.Sprintf("%.3f", f.Drop),
				fmt.Sprintf("%.4f", f.Residual),
			})
		}
	}
	return t
}
