package report_test

// golden_test.go pins the seven paper artifacts byte for byte: the
// committed quick-config TSV renders in testdata/ are the renderer's
// contract, so neither a graph refactor, a fit parallelization, nor a
// formatting tweak can silently drift the paper's outputs. Regenerate
// deliberately with
//
//	go test ./internal/report -run TestGoldenArtifacts -update
//
// and review the diff like any other code change.

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/report"
)

var update = flag.Bool("update", false, "rewrite the golden artifact files in testdata/")

func TestGoldenArtifacts(t *testing.T) {
	res := quickResult(t)
	g := res.Report()
	for _, id := range report.All() {
		t.Run(string(id), func(t *testing.T) {
			got := renderTSV(t, g, id)
			path := filepath.Join("testdata", report.Filename(id, "tsv"))
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from golden %s\ngot:\n%s\nwant:\n%s",
					id, path, got, want)
			}
		})
	}
}
