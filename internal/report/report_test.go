package report_test

// report_test.go holds the graph's contracts: memoized single compute,
// worker-count invariance of the pool-scheduled fits (the serial-
// oracle guarantee, exercised under -race in CI), and JSON/TSV value
// parity through the single Table lowering.
//
// Tests live in an external package and build their graphs through
// core.Result — the same construction every CLI uses — off one shared
// quick-config study (the golden fixture).

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/report"
)

// quickResult runs the golden QuickConfig study once for the whole
// test package.
var (
	quickOnce sync.Once
	quickRes  *core.Result
	quickErr  error
)

func quickResult(t *testing.T) *core.Result {
	t.Helper()
	quickOnce.Do(func() {
		p, err := core.New(core.QuickConfig())
		if err != nil {
			quickErr = err
			return
		}
		quickRes, quickErr = p.Run()
	})
	if quickErr != nil {
		t.Fatal(quickErr)
	}
	return quickRes
}

func renderTSV(t *testing.T, g *report.Graph, id report.ArtifactID) string {
	t.Helper()
	var b strings.Builder
	if err := report.WriteTSV(&b, g, id); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return b.String()
}

// TestGraphMemoizes pins the ownership rule the Result wrappers rely
// on: one graph computes each artifact exactly once and hands every
// caller the same value.
func TestGraphMemoizes(t *testing.T) {
	res := quickResult(t)
	g := res.Report()
	a := g.Fig7And8()
	b := g.Fig7And8()
	if &a[0] != &b[0] {
		t.Error("Fig7And8 recomputed: calls returned distinct slices")
	}
	t1a, t1b := g.TableI(), g.TableI()
	if &t1a[0] != &t1b[0] {
		t.Error("TableI recomputed: calls returned distinct slices")
	}
	// The Result wrappers go through the same memoized graph.
	if r := res.Fig7And8(); &r[0] != &a[0] {
		t.Error("Result.Fig7And8 bypassed the report graph")
	}
}

// TestGraphConcurrentAccess hammers one graph from many goroutines;
// under -race this is the memoization's soundness proof.
func TestGraphConcurrentAccess(t *testing.T) {
	g := quickResult(t).ReportWith(4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, id := range report.All() {
				var b strings.Builder
				if err := report.WriteTSV(&b, g, id); err != nil {
					t.Errorf("%s: %v", id, err)
				}
			}
		}()
	}
	wg.Wait()
}

// TestReportWorkerSweep is the fit-determinism gate: Fig7And8 (and
// with it every artifact) renders byte-identical at ReportWorkers 1,
// 2, and 8 — the serial verbatim oracle vs the pool-scheduled
// per-(snapshot, band) fan-out, including more workers than jobs per
// snapshot. CI runs this under -race.
func TestReportWorkerSweep(t *testing.T) {
	res := quickResult(t)
	oracle := renderTSV(t, res.ReportWith(1), report.Fig7Fig8)
	if strings.Count(oracle, "\n") < 10 {
		t.Fatalf("oracle sweep suspiciously small:\n%s", oracle)
	}
	for _, workers := range []int{2, 8} {
		got := renderTSV(t, res.ReportWith(workers), report.Fig7Fig8)
		if got != oracle {
			t.Errorf("ReportWorkers=%d fig7_fig8 diverges from serial oracle:\ngot:\n%s\nwant:\n%s",
				workers, got, oracle)
		}
	}
	// The remaining artifacts have no parallel path, but pin them too:
	// the whole render must be worker-count invariant.
	for _, id := range report.All() {
		a := renderTSV(t, res.ReportWith(1), id)
		b := renderTSV(t, res.ReportWith(8), id)
		if a != b {
			t.Errorf("%s differs between ReportWorkers=1 and 8", id)
		}
	}
}

// TestJSONMatchesTSV decodes every artifact's JSON document and checks
// it holds exactly the TSV's values: same comments, columns, and
// cells, with numeric cells surviving as JSON numbers whose literals
// equal the TSV text.
func TestJSONMatchesTSV(t *testing.T) {
	g := quickResult(t).Report()
	for _, id := range report.All() {
		tsv := renderTSV(t, g, id)

		var b strings.Builder
		if err := report.WriteJSON(&b, g, id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var doc struct {
			Artifact string   `json:"artifact"`
			Comments []string `json:"comments"`
			Columns  []string `json:"columns"`
			Rows     [][]any  `json:"rows"` // json.Number or string, per cell
		}
		dec := json.NewDecoder(strings.NewReader(b.String()))
		dec.UseNumber()
		if err := dec.Decode(&doc); err != nil {
			t.Fatalf("%s: decode JSON: %v", id, err)
		}
		if doc.Artifact != string(id) {
			t.Errorf("%s: artifact field = %q", id, doc.Artifact)
		}

		// Reassemble the TSV from the decoded JSON: equality proves the
		// two encodings carry the same values (json.Number preserves
		// the literal, strings round-trip exactly).
		var re strings.Builder
		for _, c := range doc.Comments {
			fmt.Fprintf(&re, "# %s\n", c)
		}
		re.WriteString(strings.Join(doc.Columns, "\t") + "\n")
		for _, row := range doc.Rows {
			cells := make([]string, len(row))
			for j, cell := range row {
				switch v := cell.(type) {
				case json.Number:
					cells[j] = v.String()
				case string:
					cells[j] = v
				default:
					t.Fatalf("%s: cell %T, want json.Number or string", id, cell)
				}
			}
			re.WriteString(strings.Join(cells, "\t") + "\n")
		}
		if re.String() != tsv {
			t.Errorf("%s: JSON values diverge from TSV:\nfrom JSON:\n%s\nTSV:\n%s", id, re.String(), tsv)
		}
	}
}

// TestUnknownArtifact covers the renderer's error path.
func TestUnknownArtifact(t *testing.T) {
	g := quickResult(t).Report()
	if err := report.WriteTSV(&strings.Builder{}, g, "fig9"); err == nil {
		t.Error("unknown artifact rendered without error")
	}
	if err := report.WriteJSON(&strings.Builder{}, g, "fig9"); err == nil {
		t.Error("unknown artifact rendered without error")
	}
}
