package report_test

// invalidate_test.go proves the graph's fine-grained invalidation
// contract, the property the study daemon's incremental ingest rides
// on: an Update that touches only one source re-executes exactly the
// artifacts that transitively depend on it — counted by Runs, so a
// coarse "invalidate everything" regression fails loudly — and the
// recomputed artifacts reflect the mutated input.

import (
	"strings"
	"testing"

	"repro/internal/correlate"
	"repro/internal/report"
)

// incrementalGraph builds a graph over the quick study the way the
// daemon does: plain input, no external Frozen memo (the graph must
// own the freeze so invalidation can reach it).
func incrementalGraph(t *testing.T) *report.Graph {
	res := quickResult(t)
	return report.New(report.Input{
		Study:   res.Study,
		Windows: res.Windows,
		Params: report.Params{
			StudyStart:     res.Config.StudyStart,
			NV:             res.Config.NV,
			Fig5Band:       res.Config.Fig5Band(),
			Fig6Bands:      res.Config.Fig6Bands(),
			MinBandSources: res.Config.MinBandSources,
			Workers:        1,
		},
	})
}

// renderAllIDs forces every artifact to compute.
func renderAllIDs(t *testing.T, g *report.Graph) map[report.ArtifactID]string {
	t.Helper()
	out := make(map[report.ArtifactID]string)
	for _, id := range report.All() {
		var b strings.Builder
		if err := report.WriteTSV(&b, g, id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out[id] = b.String()
	}
	return out
}

func runs(g *report.Graph) map[report.ArtifactID]int {
	out := make(map[report.ArtifactID]int)
	for _, id := range report.All() {
		out[id] = g.Runs(id)
	}
	return out
}

func TestMonthUpdateSkipsSnapshotArtifacts(t *testing.T) {
	g := incrementalGraph(t)
	renderAllIDs(t, g)
	before := runs(g)
	for id, n := range before {
		if n != 1 {
			t.Fatalf("%s ran %d times on first render, want 1", id, n)
		}
	}

	// Ingest one more honeyfarm month: duplicate the last month's table
	// under a later index — enough to move Table I and the temporal
	// figures without re-running the study.
	last := quickResult(t).Study.Months[len(quickResult(t).Study.Months)-1]
	dirtied := g.Update(func(in *report.Input) {
		in.Study.Months = append(in.Study.Months, correlate.MonthData{
			Label: "extra", Month: last.Month + 1, Table: last.Table,
		})
	}, report.SrcMonths)

	wantDirty := map[report.ArtifactID]bool{
		report.Table1: true, report.Fig4: true, report.Fig5: true,
		report.Fig6: true, report.Fig7Fig8: true,
	}
	gotDirty := make(map[report.ArtifactID]bool, len(dirtied))
	for _, id := range dirtied {
		gotDirty[id] = true
	}
	for _, id := range report.All() {
		if wantDirty[id] != gotDirty[id] {
			t.Errorf("Update dirtied set wrong for %s: got %v want %v", id, gotDirty[id], wantDirty[id])
		}
	}

	renderAllIDs(t, g)
	after := runs(g)
	for _, id := range report.All() {
		want := 1
		if wantDirty[id] {
			want = 2
		}
		if after[id] != want {
			t.Errorf("%s ran %d times after month-only update, want %d", id, after[id], want)
		}
	}

	// The month actually landed: Table I grew a row.
	var b strings.Builder
	if err := report.WriteTSV(&b, g, report.Table1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "\n") || strings.Count(b.String(), "\n") < 2 {
		t.Fatalf("table1 render empty after update:\n%s", b.String())
	}
}

func TestSnapshotUpdateRecomputesEverything(t *testing.T) {
	g := incrementalGraph(t)
	renderAllIDs(t, g)

	// A snapshot-source update dirties all seven: every artifact either
	// reads the windows/snapshots directly or sits behind frozen.
	dirtied := g.Update(func(in *report.Input) {
		// No-op mutation: the dirty set depends on declared edges, not
		// on what the closure happens to touch.
	}, report.SrcSnapshots)
	if len(dirtied) != len(report.All()) {
		t.Fatalf("snapshot update dirtied %v, want all artifacts", dirtied)
	}

	renderAllIDs(t, g)
	for _, id := range report.All() {
		if n := g.Runs(id); n != 2 {
			t.Errorf("%s ran %d times after snapshot update, want 2", id, n)
		}
	}
}

// TestMemoizedHitDoesNotCount pins Runs semantics: repeated renders
// without an Update never re-execute a job.
func TestMemoizedHitDoesNotCount(t *testing.T) {
	g := incrementalGraph(t)
	renderAllIDs(t, g)
	renderAllIDs(t, g)
	renderAllIDs(t, g)
	for _, id := range report.All() {
		if n := g.Runs(id); n != 1 {
			t.Errorf("%s ran %d times across three renders, want 1", id, n)
		}
	}
}
