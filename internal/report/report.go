// Package report is the unified artifact subsystem: the paper's seven
// deliverables — Table I, Table II, and Figures 3 through 8 — computed
// once each through a typed dependency graph and rendered by one
// TSV/JSON writer shared by every CLI.
//
// The graph replaces the ad-hoc lazy methods that used to live on
// core.Result (which remain as thin memoized wrappers over it, so no
// call site changed): each artifact is a job with declared
// dependencies, memoized on first use and safe for concurrent use.
// Every temporal artifact depends on the study's frozen sorted-key
// compilation; fig7_fig8 additionally fans out one Frozen.FitBand
// (GridSearch2) job per (snapshot, band) onto the same worker pool the
// study scheduler rides, assembling the sweep in deterministic
// SweepBands order. Params.Workers == 1 keeps the historical serial
// compute verbatim as the correctness oracle; any worker count renders
// byte-identically (TestReportWorkerSweep, under -race).
//
// Rendering goes through one lowering: every artifact becomes a Table
// (comment preamble, columns, formatted rows), and WriteTSV/WriteJSON
// both consume that Table — so the two encodings cannot drift, and the
// committed golden files in testdata/ pin the TSV bytes.
package report

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/correlate"
	"repro/internal/telescope"
)

// ArtifactID names one of the paper's deliverables. Figures 7 and 8
// share one artifact (both are renderings of the same per-band fit
// sweep), mirroring the historical fig7_fig8.tsv output.
type ArtifactID string

const (
	Table1   ArtifactID = "table1"
	Table2   ArtifactID = "table2"
	Fig3     ArtifactID = "fig3"
	Fig4     ArtifactID = "fig4"
	Fig5     ArtifactID = "fig5"
	Fig6     ArtifactID = "fig6"
	Fig7Fig8 ArtifactID = "fig7_fig8"

	// artFrozen is the internal node every temporal artifact depends
	// on: the study's sorted-key compilation (correlate.Freeze).
	artFrozen ArtifactID = "frozen"
)

// All returns the seven renderable artifacts in canonical paper order.
func All() []ArtifactID {
	return []ArtifactID{Table1, Table2, Fig3, Fig4, Fig5, Fig6, Fig7Fig8}
}

// Filename is the conventional output name for an artifact in the
// given format ("tsv" or "json"), e.g. "fig7_fig8.tsv".
func Filename(id ArtifactID, format string) string {
	return string(id) + "." + format
}

// Params are the study parameters the artifacts embed, decoupled from
// core.Config so core can depend on this package without a cycle.
type Params struct {
	StudyStart     time.Time // first honeyfarm month
	NV             int       // telescope window size in valid packets
	Fig5Band       int       // the band Figure 5 plots
	Fig6Bands      []int     // the bands Figure 6 sweeps
	MinBandSources int       // bands below this population are skipped in fits

	// Workers is the fit fan-out for fig7_fig8: how many
	// (snapshot, band) GridSearch2 jobs run concurrently. 1 runs the
	// historical strictly serial per-snapshot FitSweep, retained as the
	// correctness oracle; 0 uses GOMAXPROCS. Every value produces
	// byte-identical artifacts.
	Workers int
}

// Input is everything the artifact graph reads: the correlation
// tables, the captured windows, and the study parameters. The graph
// never mutates it.
type Input struct {
	Study   correlate.Study
	Windows []*telescope.Window // one per snapshot, index-aligned with Study.Snapshots

	// Frozen optionally supplies an existing memoized sorted-key
	// compilation (core.Result.Frozen); when nil the graph freezes the
	// study itself on first temporal-artifact use.
	Frozen func() *correlate.Frozen

	Params Params
}

// node is one artifact job: declared dependencies, a compute function,
// and a memoized (value, error) pair.
type node struct {
	deps []ArtifactID
	run  func(g *Graph) (any, error)

	once sync.Once
	val  any
	err  error
}

// Graph is the memoized artifact registry for one study. Build it with
// New; all methods are safe for concurrent use, and every artifact is
// computed at most once for the graph's lifetime. Returned values are
// shared between callers and must be treated as read-only.
type Graph struct {
	in    Input
	nodes map[ArtifactID]*node
}

// New builds the artifact graph over one study's results.
func New(in Input) *Graph {
	g := &Graph{in: in}
	g.nodes = map[ArtifactID]*node{
		artFrozen: {run: runFrozen},
		Table1:    {run: runTableI},
		Table2:    {run: runTableII},
		Fig3:      {run: runFig3},
		Fig4:      {deps: []ArtifactID{artFrozen}, run: runFig4},
		Fig5:      {deps: []ArtifactID{artFrozen}, run: runFig5},
		Fig6:      {deps: []ArtifactID{artFrozen}, run: runFig6},
		Fig7Fig8:  {deps: []ArtifactID{artFrozen}, run: runFig7And8},
	}
	return g
}

// get resolves an artifact: dependencies first, then the node's own
// compute, all memoized. A dependency failure is the node's failure.
func (g *Graph) get(id ArtifactID) (any, error) {
	n, ok := g.nodes[id]
	if !ok {
		return nil, fmt.Errorf("report: unknown artifact %q", id)
	}
	n.once.Do(func() {
		for _, dep := range n.deps {
			if _, err := g.get(dep); err != nil {
				n.err = err
				return
			}
		}
		n.val, n.err = n.run(g)
	})
	return n.val, n.err
}

// workers resolves Params.Workers the way the study scheduler resolves
// StudyWorkers: 0 or negative means GOMAXPROCS.
func (g *Graph) workers() int {
	if w := g.in.Params.Workers; w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// frozen returns the study's sorted-key compilation through the graph,
// so every temporal artifact shares one Freeze.
func (g *Graph) frozen() *correlate.Frozen {
	v, _ := g.get(artFrozen) // cannot fail
	return v.(*correlate.Frozen)
}

func runFrozen(g *Graph) (any, error) {
	if g.in.Frozen != nil {
		return g.in.Frozen(), nil
	}
	return correlate.Freeze(g.in.Study), nil
}
