// Package report is the unified artifact subsystem: the paper's seven
// deliverables — Table I, Table II, and Figures 3 through 8 — computed
// once each through a typed dependency graph and rendered by one
// TSV/JSON writer shared by every CLI.
//
// The graph replaces the ad-hoc lazy methods that used to live on
// core.Result (which remain as thin memoized wrappers over it, so no
// call site changed): each artifact is a job with declared
// dependencies, memoized on first use and safe for concurrent use.
// Every temporal artifact depends on the study's frozen sorted-key
// compilation; fig7_fig8 additionally fans out one Frozen.FitBand
// (GridSearch2) job per (snapshot, band) onto the same worker pool the
// study scheduler rides, assembling the sweep in deterministic
// SweepBands order. Params.Workers == 1 keeps the historical serial
// compute verbatim as the correctness oracle; any worker count renders
// byte-identically (TestReportWorkerSweep, under -race).
//
// Beyond batch memoization, the graph supports fine-grained
// invalidation for long-lived owners (the study daemon): the input's
// two mutable sources — the honeyfarm months and the telescope
// snapshots — are explicit source nodes (SrcMonths, SrcSnapshots),
// and Update applies an input mutation and dirties exactly the
// artifacts that transitively depend on the touched sources. A
// month-only ingest re-executes the frozen compilation and the
// temporal figures but never Table II or Figure 3, which depend only
// on snapshots; per-node execution counters (Runs) make that
// guarantee testable. Memoized values are immutable once returned, so
// a reader that obtained an artifact before an Update keeps a fully
// consistent (if older) value — nothing is mutated in place.
//
// Rendering goes through one lowering: every artifact becomes a Table
// (comment preamble, columns, formatted rows), and WriteTSV/WriteJSON
// both consume that Table — so the two encodings cannot drift, and the
// committed golden files in testdata/ pin the TSV bytes.
package report

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/correlate"
	"repro/internal/telescope"
)

// ArtifactID names one of the paper's deliverables. Figures 7 and 8
// share one artifact (both are renderings of the same per-band fit
// sweep), mirroring the historical fig7_fig8.tsv output.
type ArtifactID string

const (
	Table1   ArtifactID = "table1"
	Table2   ArtifactID = "table2"
	Fig3     ArtifactID = "fig3"
	Fig4     ArtifactID = "fig4"
	Fig5     ArtifactID = "fig5"
	Fig6     ArtifactID = "fig6"
	Fig7Fig8 ArtifactID = "fig7_fig8"

	// artFrozen is the internal node every temporal artifact depends
	// on: the study's sorted-key compilation (correlate.Freeze).
	artFrozen ArtifactID = "frozen"

	// SrcMonths and SrcSnapshots are the graph's source nodes: they
	// compute nothing, but every artifact declares which of the two
	// mutable input sets it reads, so Update can dirty exactly the
	// dependent artifacts when a long-lived owner grows the study.
	SrcMonths    ArtifactID = "src_months"
	SrcSnapshots ArtifactID = "src_snapshots"
)

// All returns the seven renderable artifacts in canonical paper order.
func All() []ArtifactID {
	return []ArtifactID{Table1, Table2, Fig3, Fig4, Fig5, Fig6, Fig7Fig8}
}

// Filename is the conventional output name for an artifact in the
// given format ("tsv" or "json"), e.g. "fig7_fig8.tsv".
func Filename(id ArtifactID, format string) string {
	return string(id) + "." + format
}

// Params are the study parameters the artifacts embed, decoupled from
// core.Config so core can depend on this package without a cycle.
type Params struct {
	StudyStart     time.Time // first honeyfarm month
	NV             int       // telescope window size in valid packets
	Fig5Band       int       // the band Figure 5 plots
	Fig6Bands      []int     // the bands Figure 6 sweeps
	MinBandSources int       // bands below this population are skipped in fits

	// Workers is the fit fan-out for fig7_fig8: how many
	// (snapshot, band) GridSearch2 jobs run concurrently. 1 runs the
	// historical strictly serial per-snapshot FitSweep, retained as the
	// correctness oracle; 0 uses GOMAXPROCS. Every value produces
	// byte-identical artifacts.
	Workers int
}

// Input is everything the artifact graph reads: the correlation
// tables, the captured windows, and the study parameters. The graph
// never mutates it; mutation by the owner goes through Graph.Update.
type Input struct {
	Study   correlate.Study
	Windows []*telescope.Window // one per snapshot, index-aligned with Study.Snapshots

	// Frozen optionally supplies an existing memoized sorted-key
	// compilation (core.Result.Frozen); when nil the graph freezes the
	// study itself on first temporal-artifact use. Owners that mutate
	// the input through Update must leave Frozen nil — an external
	// memo cannot see the graph's invalidations and would go stale.
	Frozen func() *correlate.Frozen

	Params Params
}

// node is one artifact job: declared dependencies, a compute function,
// and a memoized (value, error) pair with an execution counter.
type node struct {
	deps []ArtifactID
	run  func(g *Graph) (any, error)

	mu    sync.Mutex
	valid bool
	val   any
	err   error
	runs  int
}

// Graph is the memoized artifact registry for one study. Build it with
// New; all methods are safe for concurrent use, and every artifact is
// computed at most once per invalidation epoch. Returned values are
// shared between callers and must be treated as read-only.
type Graph struct {
	inMu  sync.RWMutex // guards in against Update; computes hold the read side
	in    Input
	nodes map[ArtifactID]*node
	rdeps map[ArtifactID][]ArtifactID // reverse dependency edges, fixed at New
}

// New builds the artifact graph over one study's results.
func New(in Input) *Graph {
	g := &Graph{in: in}
	noop := func(*Graph) (any, error) { return nil, nil }
	g.nodes = map[ArtifactID]*node{
		SrcMonths:    {run: noop},
		SrcSnapshots: {run: noop},
		artFrozen:    {deps: []ArtifactID{SrcMonths, SrcSnapshots}, run: runFrozen},
		Table1:       {deps: []ArtifactID{SrcMonths, SrcSnapshots}, run: runTableI},
		Table2:       {deps: []ArtifactID{SrcSnapshots}, run: runTableII},
		Fig3:         {deps: []ArtifactID{SrcSnapshots}, run: runFig3},
		Fig4:         {deps: []ArtifactID{artFrozen}, run: runFig4},
		Fig5:         {deps: []ArtifactID{artFrozen}, run: runFig5},
		Fig6:         {deps: []ArtifactID{artFrozen}, run: runFig6},
		Fig7Fig8:     {deps: []ArtifactID{artFrozen}, run: runFig7And8},
	}
	g.rdeps = make(map[ArtifactID][]ArtifactID, len(g.nodes))
	for id, n := range g.nodes {
		for _, dep := range n.deps {
			g.rdeps[dep] = append(g.rdeps[dep], id)
		}
	}
	return g
}

// get resolves an artifact: dependencies first, then the node's own
// compute, all memoized. A dependency failure is the node's failure.
// Node locks nest parent-before-dependency, a consistent topological
// order over the (acyclic) graph, so concurrent gets cannot deadlock.
func (g *Graph) get(id ArtifactID) (any, error) {
	n, ok := g.nodes[id]
	if !ok {
		return nil, fmt.Errorf("report: unknown artifact %q", id)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.valid {
		return n.val, n.err
	}
	for _, dep := range n.deps {
		if _, err := g.get(dep); err != nil {
			n.val, n.err, n.valid = nil, err, true
			return nil, err
		}
	}
	// Hold the input read-lock across the compute: an Update cannot
	// swap the input out from under a running job, and the memo set
	// below therefore matches the pre-Update input — Update's
	// invalidation, which necessarily runs after this lock releases,
	// clears it again.
	g.inMu.RLock()
	n.val, n.err = n.run(g)
	g.inMu.RUnlock()
	n.runs++
	n.valid = true
	return n.val, n.err
}

// Runs reports how many times an artifact's compute job has executed
// over the graph's lifetime. A memoized hit does not count; an
// execution after an Update that dirtied the artifact does. Tests use
// this to prove invalidation is fine-grained (an ingest that touches
// only months never re-executes Table II or Figure 3).
func (g *Graph) Runs(id ArtifactID) int {
	n, ok := g.nodes[id]
	if !ok {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.runs
}

// Update atomically applies mut to the graph's input and invalidates
// the given source artifacts plus everything that transitively depends
// on them. It returns the renderable artifacts invalidated, in
// canonical All() order — the owner's re-render worklist. Values
// handed out before the Update stay valid for their holders (they are
// never mutated in place); the next get recomputes.
//
// Update is safe for concurrent use with readers, but concurrent
// Updates must be serialized by the owner (the daemon runs one
// mutator goroutine).
func (g *Graph) Update(mut func(*Input), dirty ...ArtifactID) []ArtifactID {
	g.inMu.Lock()
	mut(&g.in)
	g.inMu.Unlock()
	return g.Invalidate(dirty...)
}

// Invalidate marks the given artifacts and all transitive dependents
// dirty, returning the renderable artifacts affected in All() order.
func (g *Graph) Invalidate(ids ...ArtifactID) []ArtifactID {
	seen := make(map[ArtifactID]bool)
	var walk func(ArtifactID)
	walk = func(id ArtifactID) {
		if seen[id] {
			return
		}
		seen[id] = true
		for _, dep := range g.rdeps[id] {
			walk(dep)
		}
	}
	for _, id := range ids {
		walk(id)
	}
	var out []ArtifactID
	for _, id := range All() {
		if !seen[id] {
			continue
		}
		n := g.nodes[id]
		n.mu.Lock()
		n.valid = false
		n.mu.Unlock()
		out = append(out, id)
	}
	// Internal nodes (frozen, sources) are invalidated too, outside
	// the renderable order.
	for id := range seen {
		if n, ok := g.nodes[id]; ok {
			isRenderable := false
			for _, r := range All() {
				if r == id {
					isRenderable = true
					break
				}
			}
			if !isRenderable {
				n.mu.Lock()
				n.valid = false
				n.mu.Unlock()
			}
		}
	}
	return out
}

// workers resolves Params.Workers the way the study scheduler resolves
// StudyWorkers: 0 or negative means GOMAXPROCS.
func (g *Graph) workers() int {
	if w := g.in.Params.Workers; w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// frozen returns the study's sorted-key compilation through the graph,
// so every temporal artifact shares one Freeze.
func (g *Graph) frozen() *correlate.Frozen {
	v, _ := g.get(artFrozen) // cannot fail
	return v.(*correlate.Frozen)
}

func runFrozen(g *Graph) (any, error) {
	if g.in.Frozen != nil {
		return g.in.Frozen(), nil
	}
	return correlate.FreezeParallel(g.in.Study, g.workers()), nil
}
