// Package netquant computes the streaming network quantities of the
// paper's Table II from hypersparse traffic matrices: valid packets,
// unique links/sources/destinations, per-source and per-destination
// packet counts and fan-out/fan-in, and their maxima. Every quantity is
// permutation-invariant, so it is safe to compute on anonymized
// matrices.
package netquant

import (
	"fmt"

	"repro/internal/hypersparse"
	"repro/internal/stats"
)

// Quantities are the aggregate rows of Table II for one traffic matrix.
type Quantities struct {
	ValidPackets       float64 // 1^T A 1
	UniqueLinks        float64 // 1^T |A|0 1
	MaxLinkPackets     float64 // max(A)
	UniqueSources      float64 // 1^T |A 1|0
	MaxSourcePackets   float64 // max(A 1)
	MaxSourceFanout    float64 // max(|A|0 1)
	UniqueDestinations float64 // |1^T A|0 1
	MaxDestPackets     float64 // max(1^T A)
	MaxDestFanin       float64 // max(1^T |A|0)
}

// Compute evaluates all Table II aggregates through the fused
// hypersparse.Stats reduction: one row-major DCSR pass for the row-axis
// and whole-matrix quantities plus one pooled column scan, with no
// intermediate Vector (previously this cost four independent reduction
// passes, two of them map-backed, each with copy-out allocations).
func Compute(m *hypersparse.Matrix) Quantities {
	s := m.Stats()
	return Quantities{
		ValidPackets:       s.Sum,
		UniqueLinks:        float64(s.NNZ),
		MaxLinkPackets:     s.MaxVal,
		UniqueSources:      float64(s.NRows),
		MaxSourcePackets:   s.MaxRowSum,
		MaxSourceFanout:    s.MaxRowDeg,
		UniqueDestinations: float64(s.NCols),
		MaxDestPackets:     s.MaxColSum,
		MaxDestFanin:       s.MaxColDeg,
	}
}

// Rows renders the quantities as (name, value) pairs in Table II order.
func (q Quantities) Rows() [][2]string {
	f := func(v float64) string { return fmt.Sprintf("%.0f", v) }
	return [][2]string{
		{"Valid packets NV", f(q.ValidPackets)},
		{"Unique links", f(q.UniqueLinks)},
		{"Max link packets (dmax)", f(q.MaxLinkPackets)},
		{"Unique sources", f(q.UniqueSources)},
		{"Max source packets (dmax)", f(q.MaxSourcePackets)},
		{"Max source fan-out (dmax)", f(q.MaxSourceFanout)},
		{"Unique destinations", f(q.UniqueDestinations)},
		{"Max destination packets (dmax)", f(q.MaxDestPackets)},
		{"Max destination fan-in (dmax)", f(q.MaxDestFanin)},
	}
}

// The degree-vector extractors below feed the Figure 3 distributions.
// Each performs exactly one allocation (the returned slice) and fills it
// from the fused row/column scans — no intermediate Vector.

// SourcePacketValues returns the per-source packet counts (A·1 values),
// the degree variable of the paper's Figure 3.
func SourcePacketValues(m *hypersparse.Matrix) []float64 {
	out := make([]float64, 0, m.NRows())
	m.RowScan(func(_ uint32, sum float64, _ int) {
		out = append(out, sum)
	})
	return out
}

// SourceFanoutValues returns per-source unique destination counts.
func SourceFanoutValues(m *hypersparse.Matrix) []float64 {
	out := make([]float64, 0, m.NRows())
	m.RowScan(func(_ uint32, _ float64, nnz int) {
		out = append(out, float64(nnz))
	})
	return out
}

// DestPacketValues returns per-destination packet counts.
func DestPacketValues(m *hypersparse.Matrix) []float64 {
	out := make([]float64, 0, m.NNZ())
	m.ColScan(func(_ uint32, sum float64, _ int) {
		out = append(out, sum)
	})
	return out
}

// DestFaninValues returns per-destination unique source counts.
func DestFaninValues(m *hypersparse.Matrix) []float64 {
	out := make([]float64, 0, m.NNZ())
	m.ColScan(func(_ uint32, _ float64, nnz int) {
		out = append(out, float64(nnz))
	})
	return out
}

// LinkPacketValues returns the per-link packet counts (the nonzeros of
// A), copied straight from the matrix's value array.
func LinkPacketValues(m *hypersparse.Matrix) []float64 {
	return append([]float64(nil), m.Vals()...)
}

// SourcePacketDistribution bins the Figure 3 degree variable with the
// paper's binary logarithmic bins.
func SourcePacketDistribution(m *hypersparse.Matrix) *stats.Binned {
	return stats.LogBin(SourcePacketValues(m))
}
