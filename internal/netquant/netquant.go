// Package netquant computes the streaming network quantities of the
// paper's Table II from hypersparse traffic matrices: valid packets,
// unique links/sources/destinations, per-source and per-destination
// packet counts and fan-out/fan-in, and their maxima. Every quantity is
// permutation-invariant, so it is safe to compute on anonymized
// matrices.
package netquant

import (
	"fmt"

	"repro/internal/hypersparse"
	"repro/internal/stats"
)

// Quantities are the aggregate rows of Table II for one traffic matrix.
type Quantities struct {
	ValidPackets       float64 // 1^T A 1
	UniqueLinks        float64 // 1^T |A|0 1
	MaxLinkPackets     float64 // max(A)
	UniqueSources      float64 // 1^T |A 1|0
	MaxSourcePackets   float64 // max(A 1)
	MaxSourceFanout    float64 // max(|A|0 1)
	UniqueDestinations float64 // |1^T A|0 1
	MaxDestPackets     float64 // max(1^T A)
	MaxDestFanin       float64 // max(1^T |A|0)
}

// Compute evaluates all Table II aggregates with one pass per reduction.
func Compute(m *hypersparse.Matrix) Quantities {
	rowSums := m.RowSums()
	rowDegs := m.RowDegrees()
	colSums := m.ColSums()
	colDegs := m.ColDegrees()
	return Quantities{
		ValidPackets:       m.Sum(),
		UniqueLinks:        float64(m.NNZ()),
		MaxLinkPackets:     m.MaxVal(),
		UniqueSources:      float64(rowSums.NNZ()),
		MaxSourcePackets:   rowSums.Max(),
		MaxSourceFanout:    rowDegs.Max(),
		UniqueDestinations: float64(colSums.NNZ()),
		MaxDestPackets:     colSums.Max(),
		MaxDestFanin:       colDegs.Max(),
	}
}

// Rows renders the quantities as (name, value) pairs in Table II order.
func (q Quantities) Rows() [][2]string {
	f := func(v float64) string { return fmt.Sprintf("%.0f", v) }
	return [][2]string{
		{"Valid packets NV", f(q.ValidPackets)},
		{"Unique links", f(q.UniqueLinks)},
		{"Max link packets (dmax)", f(q.MaxLinkPackets)},
		{"Unique sources", f(q.UniqueSources)},
		{"Max source packets (dmax)", f(q.MaxSourcePackets)},
		{"Max source fan-out (dmax)", f(q.MaxSourceFanout)},
		{"Unique destinations", f(q.UniqueDestinations)},
		{"Max destination packets (dmax)", f(q.MaxDestPackets)},
		{"Max destination fan-in (dmax)", f(q.MaxDestFanin)},
	}
}

// SourcePacketValues returns the per-source packet counts (A·1 values),
// the degree variable of the paper's Figure 3.
func SourcePacketValues(m *hypersparse.Matrix) []float64 {
	return vectorValues(m.RowSums())
}

// SourceFanoutValues returns per-source unique destination counts.
func SourceFanoutValues(m *hypersparse.Matrix) []float64 {
	return vectorValues(m.RowDegrees())
}

// DestPacketValues returns per-destination packet counts.
func DestPacketValues(m *hypersparse.Matrix) []float64 {
	return vectorValues(m.ColSums())
}

// DestFaninValues returns per-destination unique source counts.
func DestFaninValues(m *hypersparse.Matrix) []float64 {
	return vectorValues(m.ColDegrees())
}

// LinkPacketValues returns the per-link packet counts (the nonzeros of A).
func LinkPacketValues(m *hypersparse.Matrix) []float64 {
	out := make([]float64, 0, m.NNZ())
	m.Iterate(func(e hypersparse.Entry) bool {
		out = append(out, e.Val)
		return true
	})
	return out
}

func vectorValues(v *hypersparse.Vector) []float64 {
	out := make([]float64, 0, v.NNZ())
	v.Iterate(func(_ uint32, val float64) bool {
		out = append(out, val)
		return true
	})
	return out
}

// SourcePacketDistribution bins the Figure 3 degree variable with the
// paper's binary logarithmic bins.
func SourcePacketDistribution(m *hypersparse.Matrix) *stats.Binned {
	return stats.LogBin(SourcePacketValues(m))
}
