package netquant

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hypersparse"
)

func randomMatrix(seed int64, n int) *hypersparse.Matrix {
	rng := rand.New(rand.NewSource(seed))
	es := make([]hypersparse.Entry, n)
	for i := range es {
		es[i] = hypersparse.Entry{
			Row: rng.Uint32() % 200,
			Col: rng.Uint32() % 200,
			Val: float64(1 + rng.Intn(8)),
		}
	}
	return hypersparse.FromEntries(es)
}

// bruteForce computes every Table II quantity from the raw triple list.
func bruteForce(m *hypersparse.Matrix) Quantities {
	type pair = [2]uint32
	cells := make(map[pair]float64)
	m.Iterate(func(e hypersparse.Entry) bool {
		cells[pair{e.Row, e.Col}] += e.Val
		return true
	})
	var q Quantities
	rowSum := make(map[uint32]float64)
	rowDeg := make(map[uint32]float64)
	colSum := make(map[uint32]float64)
	colDeg := make(map[uint32]float64)
	for k, v := range cells {
		q.ValidPackets += v
		q.UniqueLinks++
		if v > q.MaxLinkPackets {
			q.MaxLinkPackets = v
		}
		rowSum[k[0]] += v
		rowDeg[k[0]]++
		colSum[k[1]] += v
		colDeg[k[1]]++
	}
	q.UniqueSources = float64(len(rowSum))
	q.UniqueDestinations = float64(len(colSum))
	for _, v := range rowSum {
		if v > q.MaxSourcePackets {
			q.MaxSourcePackets = v
		}
	}
	for _, v := range rowDeg {
		if v > q.MaxSourceFanout {
			q.MaxSourceFanout = v
		}
	}
	for _, v := range colSum {
		if v > q.MaxDestPackets {
			q.MaxDestPackets = v
		}
	}
	for _, v := range colDeg {
		if v > q.MaxDestFanin {
			q.MaxDestFanin = v
		}
	}
	return q
}

func TestComputeMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		m := randomMatrix(seed, 2000)
		return Compute(m) == bruteForce(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestComputeEmpty(t *testing.T) {
	var m hypersparse.Matrix
	q := Compute(&m)
	if q != (Quantities{}) {
		t.Errorf("empty matrix quantities = %+v", q)
	}
}

func TestComputeKnownMatrix(t *testing.T) {
	// 3 packets 1->1, 1 packet 1->2, 2 packets 2->1.
	m := hypersparse.FromEntries([]hypersparse.Entry{
		{Row: 1, Col: 1, Val: 3}, {Row: 1, Col: 2, Val: 1}, {Row: 2, Col: 1, Val: 2},
	})
	q := Compute(m)
	want := Quantities{
		ValidPackets: 6, UniqueLinks: 3, MaxLinkPackets: 3,
		UniqueSources: 2, MaxSourcePackets: 4, MaxSourceFanout: 2,
		UniqueDestinations: 2, MaxDestPackets: 5, MaxDestFanin: 2,
	}
	if q != want {
		t.Errorf("Compute = %+v, want %+v", q, want)
	}
}

// TestPermutationInvariance is Table II's defining property: every
// aggregate is unchanged by relabeling indices (anonymization).
func TestPermutationInvariance(t *testing.T) {
	f := func(seed int64) bool {
		m := randomMatrix(seed, 1500)
		pm := m.PermuteFunc(func(x uint32) uint32 { return x*2654435761 + 97 })
		return Compute(m) == Compute(pm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTransposeSwapsSourceDest(t *testing.T) {
	m := randomMatrix(11, 1000)
	q, qt := Compute(m), Compute(m.Transpose())
	if q.UniqueSources != qt.UniqueDestinations ||
		q.UniqueDestinations != qt.UniqueSources ||
		q.MaxSourcePackets != qt.MaxDestPackets ||
		q.MaxSourceFanout != qt.MaxDestFanin ||
		q.ValidPackets != qt.ValidPackets {
		t.Errorf("transpose did not swap roles:\n%+v\n%+v", q, qt)
	}
}

func TestValueExtractors(t *testing.T) {
	m := hypersparse.FromEntries([]hypersparse.Entry{
		{Row: 1, Col: 1, Val: 3}, {Row: 1, Col: 2, Val: 1}, {Row: 2, Col: 1, Val: 2},
	})
	sum := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}
	if got := SourcePacketValues(m); len(got) != 2 || sum(got) != 6 {
		t.Errorf("SourcePacketValues = %v", got)
	}
	if got := SourceFanoutValues(m); len(got) != 2 || sum(got) != 3 {
		t.Errorf("SourceFanoutValues = %v", got)
	}
	if got := DestPacketValues(m); len(got) != 2 || sum(got) != 6 {
		t.Errorf("DestPacketValues = %v", got)
	}
	if got := DestFaninValues(m); len(got) != 2 || sum(got) != 3 {
		t.Errorf("DestFaninValues = %v", got)
	}
	if got := LinkPacketValues(m); len(got) != 3 || sum(got) != 6 {
		t.Errorf("LinkPacketValues = %v", got)
	}
}

func TestSourcePacketDistribution(t *testing.T) {
	m := hypersparse.FromEntries([]hypersparse.Entry{
		{Row: 1, Col: 1, Val: 1}, // source 1: 1 packet -> bin 0
		{Row: 2, Col: 1, Val: 4}, // source 2: 4 packets -> bin 2
	})
	b := SourcePacketDistribution(m)
	if b.Total != 2 || b.Counts[0] != 1 || b.Counts[2] != 1 {
		t.Errorf("distribution = %+v", b)
	}
}

func TestRowsRendering(t *testing.T) {
	rows := Compute(randomMatrix(1, 100)).Rows()
	if len(rows) != 9 {
		t.Fatalf("Rows() has %d entries, want 9 (Table II)", len(rows))
	}
	if rows[0][0] != "Valid packets NV" {
		t.Errorf("first row = %v", rows[0])
	}
}

func BenchmarkCompute(b *testing.B) {
	m := randomMatrix(2, 1<<18)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(m)
	}
}
