package archive_test

import (
	"os"
	"path/filepath"
	"repro/internal/archive"
	"testing"
	"time"

	"repro/internal/hypersparse"
	"repro/internal/radiation"
	"repro/internal/stats"
	"repro/internal/telescope"
)

// buildArchive captures a telescope stream into leaf matrices of
// leafSize packets and archives them, returning the directory and the
// directly-built full window for comparison.
func buildArchive(t *testing.T, leafSize, nLeaves int) (string, *hypersparse.Matrix) {
	t.Helper()
	cfg := radiation.DefaultConfig()
	cfg.NumSources = 3000
	cfg.ZM = stats.PaperZM(1 << 10)
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tel := telescope.New(cfg.Darkspace, "archive-key", telescope.WithLeafSize(leafSize))

	dir := t.TempDir()
	w, err := archive.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := pop.TelescopeStream(4, time.Unix(0, 0))
	var full *hypersparse.Matrix
	for i := 0; i < nLeaves; i++ {
		win, err := tel.CaptureWindow(st, leafSize)
		if err != nil {
			t.Fatal(err)
		}
		if win.NV < leafSize {
			t.Fatalf("stream exhausted at leaf %d", i)
		}
		if err := w.AppendLeaf(win.Matrix, win.Start, win.End); err != nil {
			t.Fatal(err)
		}
		if full == nil {
			full = win.Matrix
		} else {
			full = hypersparse.Add(full, win.Matrix)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return dir, full
}

func TestArchiveRoundTrip(t *testing.T) {
	dir, want := buildArchive(t, 512, 8)
	d, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Leaves()) != 8 {
		t.Fatalf("leaves = %d", len(d.Leaves()))
	}
	if d.TotalPackets() != 8*512 {
		t.Fatalf("total packets = %d", d.TotalPackets())
	}
	got, err := d.SumAll(4)
	if err != nil {
		t.Fatal(err)
	}
	if !hypersparse.Equal(got, want) {
		t.Error("archived window differs from directly-built window")
	}
}

func TestArchivePartialWindow(t *testing.T) {
	dir, _ := buildArchive(t, 256, 6)
	d, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := d.SumWindow(2, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if int(sub.Sum()) != 3*256 {
		t.Errorf("partial window packets = %g, want %d", sub.Sum(), 3*256)
	}
	// Compare against individually-loaded leaves.
	want := &hypersparse.Matrix{}
	for i := 2; i < 5; i++ {
		leaf, err := d.LoadLeaf(i)
		if err != nil {
			t.Fatal(err)
		}
		want = hypersparse.Add(want, leaf)
	}
	if !hypersparse.Equal(sub, want) {
		t.Error("partial window mismatch")
	}
}

func TestArchiveWindowBounds(t *testing.T) {
	dir, _ := buildArchive(t, 128, 3)
	d, _ := archive.Open(dir)
	for _, rng := range [][2]int{{-1, 2}, {0, 4}, {2, 2}, {3, 1}} {
		if _, err := d.SumWindow(rng[0], rng[1], 1); err == nil {
			t.Errorf("window %v accepted", rng)
		}
	}
	if _, err := d.LoadLeaf(99); err == nil {
		t.Error("out-of-range leaf accepted")
	}
}

func TestArchiveSpanAndOrder(t *testing.T) {
	dir, _ := buildArchive(t, 128, 4)
	d, _ := archive.Open(dir)
	start, end := d.Span()
	if !end.After(start) {
		t.Errorf("span [%v, %v] empty", start, end)
	}
	if !d.SortedByTime() {
		t.Error("sequentially-captured leaves not time ordered")
	}
}

func TestOpenMissingManifest(t *testing.T) {
	if _, err := archive.Open(t.TempDir()); err == nil {
		t.Error("archive without manifest opened")
	}
}

func TestOpenRejectsMalformedManifest(t *testing.T) {
	cases := []string{
		"onlyonefield\n",
		"leaf.gbm\tnotanumber\t0\t0\n",
		"../escape.gbm\t1\t0\t0\n",
		"sub/dir.gbm\t1\t0\t0\n",
	}
	for _, c := range cases {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "MANIFEST.tsv"), []byte(c), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := archive.Open(dir); err == nil {
			t.Errorf("manifest %q accepted", c)
		}
	}
}

func TestLoadLeafDetectsTamperedFile(t *testing.T) {
	dir, _ := buildArchive(t, 256, 2)
	d, _ := archive.Open(dir)
	// Corrupt a byte mid-file.
	path := filepath.Join(dir, d.Leaves()[0].File)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.LoadLeaf(0); err == nil {
		t.Error("tampered leaf loaded without error")
	}
	if _, err := d.SumAll(2); err == nil {
		t.Error("SumAll ignored tampered leaf")
	}
}

func TestLoadLeafDetectsManifestMismatch(t *testing.T) {
	dir, _ := buildArchive(t, 256, 2)
	// Rewrite the manifest with a wrong packet count.
	d, _ := archive.Open(dir)
	leaf := d.Leaves()[0]
	manifest := leaf.File + "\t9999\t0\t0\n"
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.tsv"), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.LoadLeaf(0); err == nil {
		t.Error("manifest/leaf packet mismatch not detected")
	}
}
