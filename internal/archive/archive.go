// Package archive implements the on-disk organization of telescope
// data: a directory of anonymized leaf matrices (one GBM file per
// 2^17-packet leaf in the paper's deployment at LBNL) plus a manifest,
// from which analysis windows are reconstructed by hierarchically
// summing leaves in parallel. This is the storage substrate that lets a
// window far larger than memory-resident packet buffers be assembled
// from archived pieces.
package archive

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/hypersparse"
)

const manifestName = "MANIFEST.tsv"

// LeafInfo describes one archived leaf matrix.
type LeafInfo struct {
	File    string // file name within the archive directory
	Packets int    // valid packets aggregated into the leaf
	Start   time.Time
	End     time.Time
}

// Writer appends leaf matrices to an archive directory.
type Writer struct {
	dir    string
	leaves []LeafInfo
}

// Create initializes (or opens for append) an archive directory.
func Create(dir string) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Writer{dir: dir}, nil
}

// AppendLeaf stores one leaf matrix and records it in the pending
// manifest. Leaves are named leaf-NNNNN.gbm in append order.
func (w *Writer) AppendLeaf(m *hypersparse.Matrix, start, end time.Time) error {
	name := fmt.Sprintf("leaf-%05d.gbm", len(w.leaves))
	f, err := os.Create(filepath.Join(w.dir, name))
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if _, err := m.WriteTo(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	w.leaves = append(w.leaves, LeafInfo{
		File:    name,
		Packets: int(m.Sum()),
		Start:   start,
		End:     end,
	})
	return nil
}

// Leaves reports the number of appended leaves.
func (w *Writer) Leaves() int { return len(w.leaves) }

// Finish writes the manifest. The archive is unreadable until Finish
// succeeds.
func (w *Writer) Finish() error {
	f, err := os.Create(filepath.Join(w.dir, manifestName))
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	for _, l := range w.leaves {
		fmt.Fprintf(bw, "%s\t%d\t%d\t%d\n", l.File, l.Packets, l.Start.UnixMicro(), l.End.UnixMicro())
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Dataset is a readable archive.
type Dataset struct {
	dir    string
	leaves []LeafInfo
}

// Open reads an archive's manifest.
func Open(dir string) (*Dataset, error) {
	f, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("archive: opening manifest: %w", err)
	}
	defer f.Close()
	d := &Dataset{dir: dir}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 4 {
			return nil, fmt.Errorf("archive: manifest line %d malformed", line)
		}
		packets, err1 := strconv.Atoi(parts[1])
		startUs, err2 := strconv.ParseInt(parts[2], 10, 64)
		endUs, err3 := strconv.ParseInt(parts[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("archive: manifest line %d unparseable", line)
		}
		if strings.Contains(parts[0], "/") || strings.Contains(parts[0], "..") {
			return nil, fmt.Errorf("archive: manifest line %d has suspicious file name %q", line, parts[0])
		}
		d.leaves = append(d.leaves, LeafInfo{
			File:    parts[0],
			Packets: packets,
			Start:   time.UnixMicro(startUs).UTC(),
			End:     time.UnixMicro(endUs).UTC(),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// Leaves returns the manifest entries in archive order.
func (d *Dataset) Leaves() []LeafInfo { return d.leaves }

// TotalPackets sums the manifest's per-leaf packet counts.
func (d *Dataset) TotalPackets() int {
	n := 0
	for _, l := range d.leaves {
		n += l.Packets
	}
	return n
}

// LoadLeaf reads one leaf matrix by index.
func (d *Dataset) LoadLeaf(i int) (*hypersparse.Matrix, error) {
	if i < 0 || i >= len(d.leaves) {
		return nil, fmt.Errorf("archive: leaf index %d out of range", i)
	}
	f, err := os.Open(filepath.Join(d.dir, d.leaves[i].File))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := hypersparse.ReadMatrix(f)
	if err != nil {
		return nil, fmt.Errorf("archive: leaf %s: %w", d.leaves[i].File, err)
	}
	if got := int(m.Sum()); got != d.leaves[i].Packets {
		return nil, fmt.Errorf("archive: leaf %s holds %d packets, manifest says %d",
			d.leaves[i].File, got, d.leaves[i].Packets)
	}
	return m, nil
}

// SumWindow loads leaves [from, to) with a worker pool and returns their
// hierarchical sum — the archive-side reconstruction of an analysis
// window. workers <= 0 uses a small default.
func (d *Dataset) SumWindow(from, to, workers int) (*hypersparse.Matrix, error) {
	if from < 0 || to > len(d.leaves) || from >= to {
		return nil, fmt.Errorf("archive: window [%d, %d) out of range (0..%d)", from, to, len(d.leaves))
	}
	if workers <= 0 {
		workers = 4
	}
	leaves := make([]*hypersparse.Matrix, to-from)
	errs := make([]error, to-from)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := from; i < to; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			leaves[i-from], errs[i-from] = d.LoadLeaf(i)
			<-sem
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return hypersparse.HierSum(leaves, workers), nil
}

// SumAll reconstructs the full archive window.
func (d *Dataset) SumAll(workers int) (*hypersparse.Matrix, error) {
	return d.SumWindow(0, len(d.leaves), workers)
}

// Span returns the time range covered by the archive.
func (d *Dataset) Span() (start, end time.Time) {
	if len(d.leaves) == 0 {
		return
	}
	start, end = d.leaves[0].Start, d.leaves[0].End
	for _, l := range d.leaves[1:] {
		if l.Start.Before(start) {
			start = l.Start
		}
		if l.End.After(end) {
			end = l.End
		}
	}
	return
}

// SortedByTime reports whether leaves appear in non-decreasing start
// order, a hygiene check for archives assembled from parallel writers.
func (d *Dataset) SortedByTime() bool {
	return sort.SliceIsSorted(d.leaves, func(i, j int) bool {
		return d.leaves[i].Start.Before(d.leaves[j].Start)
	})
}
