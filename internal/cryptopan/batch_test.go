package cryptopan

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ipaddr"
)

// batchAddrs builds a slab mixing the address shapes the walk cares
// about: uniform randoms (short shared prefixes), /16- and /24-clustered
// runs (long shared prefixes, the telescope's heavy-tail shape), and
// exact duplicates.
func batchAddrs(rng *rand.Rand, n int) []ipaddr.Addr {
	out := make([]ipaddr.Addr, 0, n)
	base := rng.Uint32()
	for len(out) < n {
		switch rng.Intn(4) {
		case 0:
			out = append(out, ipaddr.Addr(rng.Uint32()))
		case 1:
			out = append(out, ipaddr.Addr(base&0xffff0000|rng.Uint32()&0xffff))
		case 2:
			out = append(out, ipaddr.Addr(base&0xffffff00|rng.Uint32()&0xff))
		default:
			if len(out) > 0 {
				out = append(out, out[rng.Intn(len(out))])
			} else {
				out = append(out, ipaddr.Addr(rng.Uint32()))
			}
		}
	}
	return out
}

// TestAnonymizeBatchMatchesSerial: the prefix-sharing batch walk must be
// bit-identical to per-address Anonymize for every slab shape and size.
func TestAnonymizeBatchMatchesSerial(t *testing.T) {
	a := NewFromPassphrase("batch differential")
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 16, 64, 1000} {
		addrs := batchAddrs(rng, n)
		got := append([]ipaddr.Addr(nil), addrs...)
		a.AnonymizeBatch(got)
		for i, orig := range addrs {
			if want := a.Anonymize(orig); got[i] != want {
				t.Fatalf("n=%d addr[%d]=%v: batch %v, serial %v", n, i, orig, got[i], want)
			}
		}
	}
}

// TestAnonymizeBatchMatchesReference re-anchors the batch walk against
// the unoptimized one-AES-per-bit reference, not just the table walk.
func TestAnonymizeBatchMatchesReference(t *testing.T) {
	a := NewFromPassphrase("batch vs reference")
	rng := rand.New(rand.NewSource(11))
	addrs := batchAddrs(rng, 64)
	got := append([]ipaddr.Addr(nil), addrs...)
	a.AnonymizeBatch(got)
	for i, orig := range addrs {
		if want := a.anonymizeRef(orig); got[i] != want {
			t.Fatalf("addr[%d]=%v: batch %v, reference %v", i, orig, got[i], want)
		}
	}
}

// TestCachedBatchMatchesSerial: cold and warm slabs through the shared
// memo must match the scalar path, and the two caches must memoize the
// same address set.
func TestCachedBatchMatchesSerial(t *testing.T) {
	serial := NewCached(NewFromPassphrase("cached batch"))
	batch := NewCached(NewFromPassphrase("cached batch"))
	rng := rand.New(rand.NewSource(13))
	addrs := batchAddrs(rng, 500)
	for round := 0; round < 3; round++ { // round 0 cold, then warm + partial
		slab := append([]ipaddr.Addr(nil), addrs[:500-round*100]...)
		batch.AnonymizeBatch(slab)
		for i, orig := range addrs[:len(slab)] {
			if want := serial.Anonymize(orig); slab[i] != want {
				t.Fatalf("round %d addr[%d]: batch %v, serial %v", round, i, slab[i], want)
			}
		}
	}
	if serial.Len() != batch.Len() {
		t.Fatalf("memo sizes diverged: serial %d, batch %d", serial.Len(), batch.Len())
	}
}

// TestL1BatchMatchesSerial: the per-goroutine memo's batch path must
// match its scalar path and fill the same shared table.
func TestL1BatchMatchesSerial(t *testing.T) {
	c := NewCached(NewFromPassphrase("l1 batch"))
	oracle := NewCached(NewFromPassphrase("l1 batch"))
	l1 := c.NewL1()
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 4; round++ {
		slab := batchAddrs(rng, 300)
		orig := append([]ipaddr.Addr(nil), slab...)
		l1.AnonymizeBatch(slab)
		for i := range slab {
			if want := oracle.Anonymize(orig[i]); slab[i] != want {
				t.Fatalf("round %d addr[%d]=%v: l1 batch %v, serial %v", round, i, orig[i], slab[i], want)
			}
		}
	}
}

// TestCachedBatchConcurrent hammers AnonymizeBatch from many goroutines
// over overlapping slabs (run under -race in CI) and checks every result
// against a serial oracle.
func TestCachedBatchConcurrent(t *testing.T) {
	c := NewCached(NewFromPassphrase("concurrent batch"))
	oracle := NewCached(NewFromPassphrase("concurrent batch"))
	const goroutines = 8
	var wg sync.WaitGroup
	results := make([][]ipaddr.Addr, goroutines)
	inputs := make([][]ipaddr.Addr, goroutines)
	for g := 0; g < goroutines; g++ {
		rng := rand.New(rand.NewSource(int64(g)))
		inputs[g] = batchAddrs(rng, 400)
		results[g] = append([]ipaddr.Addr(nil), inputs[g]...)
	}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Mix batch and scalar calls to race both entry points.
			c.AnonymizeBatch(results[g][:200])
			for i := 200; i < 300; i++ {
				results[g][i] = c.Anonymize(results[g][i])
			}
			c.AnonymizeBatch(results[g][300:])
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		for i, orig := range inputs[g] {
			if want := oracle.Anonymize(orig); results[g][i] != want {
				t.Fatalf("goroutine %d addr[%d]=%v: got %v, want %v", g, i, orig, results[g][i], want)
			}
		}
	}
}

// TestBatchWarmZeroAlloc gates the warm (all-hit) batch paths at zero
// allocations: the cryptopan_batch benchreport gate measures the same
// property under load.
func TestBatchWarmZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	c := NewCached(NewFromPassphrase("warm allocs"))
	l1 := c.NewL1()
	rng := rand.New(rand.NewSource(23))
	slab := batchAddrs(rng, 512)
	work := make([]ipaddr.Addr, len(slab))

	copy(work, slab)
	c.AnonymizeBatch(work) // cold fill + scratch warmup
	if allocs := testing.AllocsPerRun(20, func() {
		copy(work, slab)
		c.AnonymizeBatch(work)
	}); allocs != 0 {
		t.Errorf("warm Cached.AnonymizeBatch allocates %.1f per slab, want 0", allocs)
	}

	copy(work, slab)
	l1.AnonymizeBatch(work)
	if allocs := testing.AllocsPerRun(20, func() {
		copy(work, slab)
		l1.AnonymizeBatch(work)
	}); allocs != 0 {
		t.Errorf("warm L1.AnonymizeBatch allocates %.1f per slab, want 0", allocs)
	}
}

func BenchmarkCryptopanBatchCold(b *testing.B) {
	a := NewFromPassphrase("bench cold batch")
	a.Anonymize(0) // build the top16 table outside the loop
	rng := rand.New(rand.NewSource(29))
	addrs := batchAddrs(rng, 4096)
	work := make([]ipaddr.Addr, len(addrs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, addrs)
		a.AnonymizeBatch(work)
	}
}

func BenchmarkCryptopanBatchWarm(b *testing.B) {
	c := NewCached(NewFromPassphrase("bench warm batch"))
	rng := rand.New(rand.NewSource(31))
	addrs := batchAddrs(rng, 4096)
	work := make([]ipaddr.Addr, len(addrs))
	copy(work, addrs)
	c.AnonymizeBatch(work)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, addrs)
		c.AnonymizeBatch(work)
	}
}
