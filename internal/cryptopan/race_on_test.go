//go:build race

package cryptopan

// raceEnabled reports that this test binary was built with the race
// detector, which perturbs both allocation counts and relative timings.
const raceEnabled = true
