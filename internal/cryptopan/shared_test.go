package cryptopan

// shared_test.go is the shared-cache contract the study scheduler (and
// the resident daemon's much longer lifetime) relies on: one Cached
// serves every worker, so concurrent miss storms on overlapping
// address sets must insert idempotently — Len() equals the unique
// address count, never the insert count — and Reverse() taken while
// other goroutines are still inserting must return a consistent table:
// every entry correct under the pure mapping, and complete for every
// address whose Anonymize call returned before Reverse began. Run
// under -race these tests are also the lock-discipline proof.

import (
	"sync"
	"testing"

	"repro/internal/ipaddr"
)

// TestSharedCacheInsertIdempotent storms one address set from many
// goroutines: double-computes on concurrent misses are allowed, but
// double-inserts must collapse — Len drifting past the unique count
// would make the daemon's memo grow without bound over repeated
// captures of the same heavy-tailed sources.
func TestSharedCacheInsertIdempotent(t *testing.T) {
	c := NewCached(NewFromPassphrase("shared-idempotent"))
	const unique = 4096
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker walks the same addresses in a different order,
			// maximizing same-address concurrent misses.
			for i := 0; i < unique; i++ {
				addr := ipaddr.Addr((i*(w+3) + w) % unique)
				c.Anonymize(addr)
			}
			// And once more through a per-worker L1, the engine's real
			// access path.
			l1 := c.NewL1()
			for i := 0; i < unique; i++ {
				l1.Anonymize(ipaddr.Addr(i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Len(); got != unique {
		t.Fatalf("Len = %d after concurrent misses on %d unique addresses", got, unique)
	}
	// Idempotence of the values too: a second pass must return the same
	// mapping the pure function defines.
	pure := NewFromPassphrase("shared-idempotent")
	for i := 0; i < unique; i += 97 {
		addr := ipaddr.Addr(i)
		if got, want := c.Anonymize(addr), pure.Anonymize(addr); got != want {
			t.Fatalf("Anonymize(%v) = %v after storm, want %v", addr, got, want)
		}
	}
}

// TestReverseConcurrentWithMisses is the Reverse()/Len() lifetime
// audit in executable form: while half the goroutines insert fresh
// addresses, the other half repeatedly take Reverse() and check
// (a) every entry is correct under the pure mapping, and (b) all
// addresses published before the Reverse began are present — the
// guarantee the telescope's deanonymization of already-published store
// rows rests on.
func TestReverseConcurrentWithMisses(t *testing.T) {
	c := NewCached(NewFromPassphrase("shared-reverse"))
	pure := NewFromPassphrase("shared-reverse")

	// Pre-publish a base set; these addresses must appear in every
	// Reverse taken from now on.
	const base = 512
	baseAnon := make(map[ipaddr.Addr]ipaddr.Addr, base)
	for i := 0; i < base; i++ {
		addr := ipaddr.Addr(i)
		baseAnon[c.Anonymize(addr)] = addr
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers: keep inserting fresh addresses until readers finish.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Anonymize(ipaddr.Addr(base + w*1_000_000 + i))
			}
		}(w)
	}
	// Readers: Reverse mid-insert and audit the snapshot.
	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for k := 0; k < 20; k++ {
				n := c.Len()
				rev := c.Reverse()
				// Reverse may see more than Len reported (inserts landed
				// in between) but a completed mapping is never lost.
				if len(rev) < base {
					t.Errorf("Reverse has %d entries, fewer than the %d pre-published", len(rev), base)
					return
				}
				_ = n
				for anon, orig := range baseAnon {
					if got, ok := rev[anon]; !ok || got != orig {
						t.Errorf("pre-published %v missing or wrong in mid-insert Reverse: got %v ok=%v", orig, got, ok)
						return
					}
				}
				// Spot-check consistency of whatever else the snapshot
				// caught: anon -> orig must invert the pure mapping.
				checked := 0
				for anon, orig := range rev {
					if pure.Anonymize(orig) != anon {
						t.Errorf("Reverse[%v] = %v does not invert the mapping", anon, orig)
						return
					}
					if checked++; checked == 64 {
						break
					}
				}
			}
		}()
	}
	rg.Wait()
	close(stop)
	wg.Wait()

	// After the dust settles Len and Reverse agree exactly.
	if n, rev := c.Len(), c.Reverse(); n != len(rev) {
		t.Fatalf("quiescent Len = %d but Reverse has %d entries", n, len(rev))
	}
}
