package cryptopan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ipaddr"
)

func testKey() []byte {
	key := make([]byte, KeySize)
	for i := range key {
		key[i] = byte(i*7 + 3)
	}
	return key
}

func TestNewKeyValidation(t *testing.T) {
	if _, err := New(make([]byte, 31)); err == nil {
		t.Error("short key accepted")
	}
	if _, err := New(make([]byte, 33)); err == nil {
		t.Error("long key accepted")
	}
	if _, err := New(testKey()); err != nil {
		t.Errorf("valid key rejected: %v", err)
	}
}

func TestDeterministic(t *testing.T) {
	a1, _ := New(testKey())
	a2, _ := New(testKey())
	for i := 0; i < 100; i++ {
		addr := ipaddr.Addr(i * 2654435761)
		if a1.Anonymize(addr) != a2.Anonymize(addr) {
			t.Fatalf("same key produced different mapping for %v", addr)
		}
	}
}

func TestKeyDependence(t *testing.T) {
	a1, _ := New(testKey())
	k2 := testKey()
	k2[0] ^= 0xff
	a2, _ := New(k2)
	same := 0
	for i := 0; i < 256; i++ {
		addr := ipaddr.Addr(uint32(i) * 16777259)
		if a1.Anonymize(addr) == a2.Anonymize(addr) {
			same++
		}
	}
	if same > 8 {
		t.Errorf("different keys agree on %d/256 addresses; mapping appears key-independent", same)
	}
}

// TestPrefixPreservation is the defining Crypto-PAn property: anonymized
// addresses share exactly as many leading bits as the originals.
func TestPrefixPreservation(t *testing.T) {
	a, _ := New(testKey())
	f := func(x, y uint32) bool {
		ax := a.Anonymize(ipaddr.Addr(x))
		ay := a.Anonymize(ipaddr.Addr(y))
		return ipaddr.CommonPrefixLen(ipaddr.Addr(x), ipaddr.Addr(y)) ==
			ipaddr.CommonPrefixLen(ax, ay)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestInjective verifies the transform is a bijection on a sample: no two
// distinct inputs may collide (prefix preservation actually implies this,
// since distinct addresses share <32 bits).
func TestInjective(t *testing.T) {
	a, _ := New(testKey())
	seen := make(map[ipaddr.Addr]ipaddr.Addr)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		in := ipaddr.Addr(rng.Uint32())
		out := a.Anonymize(in)
		if prev, ok := seen[out]; ok && prev != in {
			t.Fatalf("collision: %v and %v both map to %v", prev, in, out)
		}
		seen[out] = in
	}
}

func TestSubnetStructurePreserved(t *testing.T) {
	a, _ := New(testKey())
	// All addresses in 44.0.0.0/8 must map into a common anonymized /8.
	base := a.Anonymize(ipaddr.MustParse("44.0.0.1"))
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		in := ipaddr.Addr(uint32(ipaddr.MustParse("44.0.0.0")) | rng.Uint32()&0x00ffffff)
		out := a.Anonymize(in)
		if ipaddr.CommonPrefixLen(base, out) < 8 {
			t.Fatalf("address %v left its /8: %v vs %v", in, out, base)
		}
	}
}

func TestNewFromPassphrase(t *testing.T) {
	a1 := NewFromPassphrase("telescope")
	a2 := NewFromPassphrase("telescope")
	a3 := NewFromPassphrase("outpost")
	addr := ipaddr.MustParse("192.0.2.55")
	if a1.Anonymize(addr) != a2.Anonymize(addr) {
		t.Error("same passphrase produced different mappings")
	}
	if a1.Anonymize(addr) == a3.Anonymize(addr) {
		t.Error("different passphrases produced identical mapping (unlikely)")
	}
}

func TestAnonymizeAll(t *testing.T) {
	a := NewFromPassphrase("bulk")
	in := []ipaddr.Addr{1, 2, 3, 1 << 31}
	want := make([]ipaddr.Addr, len(in))
	for i, v := range in {
		want[i] = a.Anonymize(v)
	}
	got := a.AnonymizeAll(append([]ipaddr.Addr(nil), in...))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AnonymizeAll[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCachedMatchesUncached(t *testing.T) {
	inner := NewFromPassphrase("cache-check")
	c := NewCached(inner)
	rng := rand.New(rand.NewSource(11))
	addrs := make([]ipaddr.Addr, 2000)
	for i := range addrs {
		addrs[i] = ipaddr.Addr(rng.Uint32() % 4096) // force repeats
	}
	for _, in := range addrs {
		if c.Anonymize(in) != inner.Anonymize(in) {
			t.Fatalf("cached mapping diverges for %v", in)
		}
	}
	if c.Len() > 4096 {
		t.Errorf("cache holds %d entries for <=4096 unique inputs", c.Len())
	}
}

func TestCachedConcurrent(t *testing.T) {
	c := NewCached(NewFromPassphrase("concurrent"))
	done := make(chan map[ipaddr.Addr]ipaddr.Addr, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			m := make(map[ipaddr.Addr]ipaddr.Addr)
			for i := 0; i < 2000; i++ {
				in := ipaddr.Addr(rng.Uint32() % 1000)
				m[in] = c.Anonymize(in)
			}
			done <- m
		}(int64(g))
	}
	merged := make(map[ipaddr.Addr]ipaddr.Addr)
	for g := 0; g < 8; g++ {
		for k, v := range <-done {
			if prev, ok := merged[k]; ok && prev != v {
				t.Fatalf("goroutines observed different mappings for %v", k)
			}
			merged[k] = v
		}
	}
}

func BenchmarkAnonymize(b *testing.B) {
	a := NewFromPassphrase("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Anonymize(ipaddr.Addr(i))
	}
}

func BenchmarkAnonymizeCached(b *testing.B) {
	c := NewCached(NewFromPassphrase("bench"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Anonymize(ipaddr.Addr(i % 65536))
	}
}
