package cryptopan

import (
	"math/rand"
	"testing"

	"repro/internal/ipaddr"
)

// TestTableMatchesReferenceWalk pins the table-accelerated Anonymize to
// the bit-exact reference walk: any divergence would silently re-key the
// whole study.
func TestTableMatchesReferenceWalk(t *testing.T) {
	a, _ := New(testKey())
	rng := rand.New(rand.NewSource(11))
	check := func(addr ipaddr.Addr) {
		t.Helper()
		if got, want := a.Anonymize(addr), a.anonymizeRef(addr); got != want {
			t.Fatalf("Anonymize(%v) = %v, reference walk = %v", addr, got, want)
		}
	}
	// Structured corners: all-zero, all-one, single-bit, byte boundaries.
	for i := 0; i < 32; i++ {
		check(ipaddr.Addr(1 << uint(i)))
		check(ipaddr.Addr(^uint32(0) << uint(i)))
	}
	check(ipaddr.Addr(0))
	check(ipaddr.Addr(^uint32(0)))
	for i := 0; i < 5000; i++ {
		check(ipaddr.Addr(rng.Uint32()))
	}
	// And under a second key, since the table depends on the key.
	k2 := testKey()
	k2[5] ^= 0xA5
	b, _ := New(k2)
	for i := 0; i < 1000; i++ {
		addr := ipaddr.Addr(rng.Uint32())
		if got, want := b.Anonymize(addr), b.anonymizeRef(addr); got != want {
			t.Fatalf("key2 Anonymize(%v) = %v, reference = %v", addr, got, want)
		}
	}
}
