//go:build !race

package cryptopan

const raceEnabled = false
