package cryptopan

import (
	"testing"

	"repro/internal/ipaddr"
)

func TestReverseInvertsCache(t *testing.T) {
	c := NewCached(NewFromPassphrase("reverse"))
	inputs := []ipaddr.Addr{1, 2, 3, 1 << 20, 1<<32 - 1}
	for _, in := range inputs {
		c.Anonymize(in)
	}
	rev := c.Reverse()
	if len(rev) != len(inputs) {
		t.Fatalf("reverse table has %d entries, want %d", len(rev), len(inputs))
	}
	for _, in := range inputs {
		anon := c.Anonymize(in)
		if rev[anon] != in {
			t.Errorf("Reverse[%v] = %v, want %v", anon, rev[anon], in)
		}
	}
}

func TestReverseSnapshotSemantics(t *testing.T) {
	c := NewCached(NewFromPassphrase("snapshot"))
	c.Anonymize(1)
	rev := c.Reverse()
	c.Anonymize(2) // grows cache after snapshot
	if len(rev) != 1 {
		t.Error("Reverse must be a snapshot, not a live view")
	}
	rev2 := c.Reverse()
	if len(rev2) != 2 {
		t.Errorf("fresh Reverse has %d entries, want 2", len(rev2))
	}
}

func TestReverseEmpty(t *testing.T) {
	c := NewCached(NewFromPassphrase("empty"))
	if len(c.Reverse()) != 0 {
		t.Error("empty cache reverse not empty")
	}
}
