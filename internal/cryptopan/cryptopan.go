// Package cryptopan implements prefix-preserving IP address anonymization
// following the Crypto-PAn construction of Fan, Xu, Ammar and Moon
// ("Prefix-preserving IP address anonymization", Computer Networks 2004),
// the scheme the CAIDA Telescope uses before archiving traffic matrices.
//
// Prefix preservation means that for any two addresses a and b, the
// anonymized addresses share exactly as many leading bits as a and b do.
// The traffic-matrix quantities of the paper's Table II are invariant
// under this (it is a permutation of the address space), which the test
// suite verifies by property.
package cryptopan

import (
	"crypto/aes"
	"crypto/sha256"
	"fmt"

	"repro/internal/ipaddr"
)

// KeySize is the required key length in bytes: 16 bytes of AES key
// followed by 16 bytes of pad-generation secret.
const KeySize = 32

// Anonymizer applies the Crypto-PAn transform. It is safe for concurrent
// use once constructed; the AES block cipher is stateless.
type Anonymizer struct {
	cipher interface {
		Encrypt(dst, src []byte)
	}
	pad [16]byte
}

// New creates an Anonymizer from a 32-byte key. The first 16 bytes key
// the AES cipher; the last 16 bytes are encrypted once to form the
// canonical padding block, as in the reference implementation.
func New(key []byte) (*Anonymizer, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("cryptopan: key must be %d bytes, got %d", KeySize, len(key))
	}
	c, err := aes.NewCipher(key[:16])
	if err != nil {
		return nil, err
	}
	a := &Anonymizer{cipher: c}
	c.Encrypt(a.pad[:], key[16:32])
	return a, nil
}

// NewFromPassphrase derives a key from an arbitrary passphrase via
// SHA-256 and constructs an Anonymizer. Convenient for tools and tests.
func NewFromPassphrase(phrase string) *Anonymizer {
	sum := sha256.Sum256([]byte(phrase))
	a, err := New(sum[:])
	if err != nil {
		// Cannot happen: the key is exactly 32 bytes.
		panic(err)
	}
	return a
}

// Anonymize maps an address to its prefix-preserving anonymized form.
//
// For each bit position i (most significant first), the output bit is the
// input bit XORed with a pseudorandom function of the first i input bits.
// This makes the mapping a bijection on the address space in which common
// prefixes are preserved exactly.
func (a *Anonymizer) Anonymize(addr ipaddr.Addr) ipaddr.Addr {
	orig := uint32(addr)
	var result uint32
	var block [16]byte
	var out [16]byte
	for i := 0; i < 32; i++ {
		// First i bits of the original address, rest from the pad.
		var prefix uint32
		if i > 0 {
			mask := ^uint32(0) << (32 - uint(i))
			padTop := uint32(a.pad[0])<<24 | uint32(a.pad[1])<<16 |
				uint32(a.pad[2])<<8 | uint32(a.pad[3])
			prefix = orig&mask | padTop&^mask
		} else {
			prefix = uint32(a.pad[0])<<24 | uint32(a.pad[1])<<16 |
				uint32(a.pad[2])<<8 | uint32(a.pad[3])
		}
		block[0] = byte(prefix >> 24)
		block[1] = byte(prefix >> 16)
		block[2] = byte(prefix >> 8)
		block[3] = byte(prefix)
		copy(block[4:], a.pad[4:])
		a.cipher.Encrypt(out[:], block[:])
		// Most significant bit of the cipher output is the flip bit.
		flip := uint32(out[0] >> 7)
		result |= flip << (31 - uint(i))
	}
	return ipaddr.Addr(orig ^ result)
}

// AnonymizeAll maps a slice of addresses in place and returns it.
func (a *Anonymizer) AnonymizeAll(addrs []ipaddr.Addr) []ipaddr.Addr {
	for i, v := range addrs {
		addrs[i] = a.Anonymize(v)
	}
	return addrs
}
