// Package cryptopan implements prefix-preserving IP address anonymization
// following the Crypto-PAn construction of Fan, Xu, Ammar and Moon
// ("Prefix-preserving IP address anonymization", Computer Networks 2004),
// the scheme the CAIDA Telescope uses before archiving traffic matrices.
//
// Prefix preservation means that for any two addresses a and b, the
// anonymized addresses share exactly as many leading bits as a and b do.
// The traffic-matrix quantities of the paper's Table II are invariant
// under this (it is a permutation of the address space), which the test
// suite verifies by property.
package cryptopan

import (
	"crypto/aes"
	"crypto/sha256"
	"fmt"
	"sync"

	"repro/internal/ipaddr"
)

// KeySize is the required key length in bytes: 16 bytes of AES key
// followed by 16 bytes of pad-generation secret.
const KeySize = 32

// Anonymizer applies the Crypto-PAn transform. It is safe for concurrent
// use once constructed; the AES block cipher is stateless.
type Anonymizer struct {
	cipher interface {
		Encrypt(dst, src []byte)
	}
	pad [16]byte

	// top16 caches the flip bits of the first 16 walk levels, which
	// depend only on the top 16 address bits: entry t holds flip bit for
	// level i at bit position 15-i. Building it costs 2^16 - 1 AES block
	// encryptions (one per distinct prefix of length 0..15, a couple of
	// milliseconds once per key) and halves the per-address AES cost
	// forever after, which is what the telescope's per-window cold-start
	// is bound by. Built lazily on first use.
	top16Once sync.Once
	top16     []uint16
}

// New creates an Anonymizer from a 32-byte key. The first 16 bytes key
// the AES cipher; the last 16 bytes are encrypted once to form the
// canonical padding block, as in the reference implementation.
func New(key []byte) (*Anonymizer, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("cryptopan: key must be %d bytes, got %d", KeySize, len(key))
	}
	c, err := aes.NewCipher(key[:16])
	if err != nil {
		return nil, err
	}
	a := &Anonymizer{cipher: c}
	c.Encrypt(a.pad[:], key[16:32])
	return a, nil
}

// NewFromPassphrase derives a key from an arbitrary passphrase via
// SHA-256 and constructs an Anonymizer. Convenient for tools and tests.
func NewFromPassphrase(phrase string) *Anonymizer {
	sum := sha256.Sum256([]byte(phrase))
	a, err := New(sum[:])
	if err != nil {
		// Cannot happen: the key is exactly 32 bytes.
		panic(err)
	}
	return a
}

// walkBuf holds the AES input/output blocks of one anonymization walk.
// Encrypt is an interface call, so stack-allocated blocks would escape
// and cost one heap allocation per cache miss; pooling them makes the
// walk allocation-free.
type walkBuf struct {
	block, out [16]byte
}

var walkPool = sync.Pool{New: func() interface{} { return new(walkBuf) }}

// Anonymize maps an address to its prefix-preserving anonymized form.
//
// For each bit position i (most significant first), the output bit is the
// input bit XORed with a pseudorandom function of the first i input bits.
// This makes the mapping a bijection on the address space in which common
// prefixes are preserved exactly.
//
// The mapping is bit-identical to the reference walk (anonymizeRef, the
// differential tests assert this); the first 16 levels are served from
// the precomputed top16 table and only levels 16..31 pay an AES block
// each.
func (a *Anonymizer) Anonymize(addr ipaddr.Addr) ipaddr.Addr {
	b := walkPool.Get().(*walkBuf)
	v := a.anonymizeBuf(addr, b)
	walkPool.Put(b)
	return v
}

// anonymizeBuf is Anonymize with a caller-owned walk buffer; holders of
// a single-goroutine buffer (the L1 memo) skip the pool round-trip.
func (a *Anonymizer) anonymizeBuf(addr ipaddr.Addr, b *walkBuf) ipaddr.Addr {
	a.top16Once.Do(a.buildTop16)
	orig := uint32(addr)
	result := uint32(a.top16[orig>>16]) << 16
	padTop := uint32(a.pad[0])<<24 | uint32(a.pad[1])<<16 |
		uint32(a.pad[2])<<8 | uint32(a.pad[3])
	copy(b.block[4:], a.pad[4:])
	for i := 16; i < 32; i++ {
		// First i bits of the original address, rest from the pad.
		mask := ^uint32(0) << (32 - uint(i))
		prefix := orig&mask | padTop&^mask
		b.block[0] = byte(prefix >> 24)
		b.block[1] = byte(prefix >> 16)
		b.block[2] = byte(prefix >> 8)
		b.block[3] = byte(prefix)
		a.cipher.Encrypt(b.out[:], b.block[:])
		// Most significant bit of the cipher output is the flip bit.
		flip := uint32(b.out[0] >> 7)
		result |= flip << (31 - uint(i))
	}
	return ipaddr.Addr(orig ^ result)
}

// buildTop16 precomputes the flip bits of walk levels 0..15 for every
// possible 16-bit address prefix: level i has 2^i distinct prefix
// inputs, so the whole table costs sum(2^i) = 2^16 - 1 encryptions.
func (a *Anonymizer) buildTop16() {
	t := make([]uint16, 1<<16)
	padTop := uint32(a.pad[0])<<24 | uint32(a.pad[1])<<16 |
		uint32(a.pad[2])<<8 | uint32(a.pad[3])
	var block, out [16]byte
	copy(block[4:], a.pad[4:])
	for i := 0; i < 16; i++ {
		mask := ^uint32(0) << (32 - uint(i)) // i == 0 shifts to zero: all pad
		span := 1 << (16 - uint(i))          // table entries sharing an i-bit prefix
		for p := 0; p < 1<<uint(i); p++ {
			prefix := uint32(p)<<(32-uint(i))&mask | padTop&^mask
			block[0] = byte(prefix >> 24)
			block[1] = byte(prefix >> 16)
			block[2] = byte(prefix >> 8)
			block[3] = byte(prefix)
			a.cipher.Encrypt(out[:], block[:])
			if out[0]>>7 == 1 {
				bit := uint16(1) << (15 - uint(i))
				for j := p * span; j < (p+1)*span; j++ {
					t[j] |= bit
				}
			}
		}
	}
	a.top16 = t
}

// anonymizeRef is the unoptimized reference walk — one AES block per
// bit, no table. It is retained as the differential-test oracle for the
// table-accelerated Anonymize.
func (a *Anonymizer) anonymizeRef(addr ipaddr.Addr) ipaddr.Addr {
	orig := uint32(addr)
	var result uint32
	var block [16]byte
	var out [16]byte
	for i := 0; i < 32; i++ {
		var prefix uint32
		if i > 0 {
			mask := ^uint32(0) << (32 - uint(i))
			padTop := uint32(a.pad[0])<<24 | uint32(a.pad[1])<<16 |
				uint32(a.pad[2])<<8 | uint32(a.pad[3])
			prefix = orig&mask | padTop&^mask
		} else {
			prefix = uint32(a.pad[0])<<24 | uint32(a.pad[1])<<16 |
				uint32(a.pad[2])<<8 | uint32(a.pad[3])
		}
		block[0] = byte(prefix >> 24)
		block[1] = byte(prefix >> 16)
		block[2] = byte(prefix >> 8)
		block[3] = byte(prefix)
		copy(block[4:], a.pad[4:])
		a.cipher.Encrypt(out[:], block[:])
		flip := uint32(out[0] >> 7)
		result |= flip << (31 - uint(i))
	}
	return ipaddr.Addr(orig ^ result)
}

// AnonymizeAll maps a slice of addresses in place and returns it.
func (a *Anonymizer) AnonymizeAll(addrs []ipaddr.Addr) []ipaddr.Addr {
	for i, v := range addrs {
		addrs[i] = a.Anonymize(v)
	}
	return addrs
}
