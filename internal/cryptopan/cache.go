package cryptopan

import (
	"sync"

	"repro/internal/ipaddr"
)

// Cached wraps an Anonymizer with a sharded lookup table. The full
// Crypto-PAn transform costs 32 AES block encryptions per address; the
// telescope anonymizes every packet of a window, but windows contain far
// fewer unique addresses than packets (the paper's 2^30-packet samples
// hold 500k-800k unique sources), so memoization removes almost all of
// the cost.
type Cached struct {
	inner  *Anonymizer
	shards [cacheShards]cacheShard
}

const cacheShards = 64

type cacheShard struct {
	mu sync.RWMutex
	m  map[ipaddr.Addr]ipaddr.Addr
}

// NewCached wraps a in a concurrency-safe memo table. Shard maps are
// pre-sized for the hundreds of thousands of distinct addresses a
// window holds, skipping the incremental-rehash churn of growing 64
// maps from empty on every cold capture.
func NewCached(a *Anonymizer) *Cached {
	c := &Cached{inner: a}
	for i := range c.shards {
		c.shards[i].m = make(map[ipaddr.Addr]ipaddr.Addr, 1<<10)
	}
	return c
}

// Anonymize returns the same mapping as the wrapped Anonymizer.
func (c *Cached) Anonymize(addr ipaddr.Addr) ipaddr.Addr {
	s := &c.shards[uint32(addr)%cacheShards]
	s.mu.RLock()
	v, ok := s.m[addr]
	s.mu.RUnlock()
	if ok {
		return v
	}
	v = c.inner.Anonymize(addr)
	s.mu.Lock()
	s.m[addr] = v
	s.mu.Unlock()
	return v
}

// anonymizeWith is Anonymize using a caller-owned walk buffer for the
// miss path.
func (c *Cached) anonymizeWith(addr ipaddr.Addr, b *walkBuf) ipaddr.Addr {
	s := &c.shards[uint32(addr)%cacheShards]
	s.mu.RLock()
	v, ok := s.m[addr]
	s.mu.RUnlock()
	if ok {
		return v
	}
	v = c.inner.anonymizeBuf(addr, b)
	s.mu.Lock()
	s.m[addr] = v
	s.mu.Unlock()
	return v
}

// Reverse returns the inverse of the memoized mapping: anonymized
// address back to original. Only addresses anonymized through this cache
// appear. This supports the paper's correlation approach 1, where
// anonymized identifiers are sent back to the data owner (who holds the
// table) for deanonymization.
func (c *Cached) Reverse() map[ipaddr.Addr]ipaddr.Addr {
	out := make(map[ipaddr.Addr]ipaddr.Addr, c.Len())
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for orig, anon := range s.m {
			out[anon] = orig
		}
		s.mu.RUnlock()
	}
	return out
}

// Len reports the number of memoized addresses across all shards.
func (c *Cached) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// l1Bits sizes the direct-mapped L1: 2^14 slots x 16 bytes = 256 KiB.
const l1Bits = 14

// l1Slot is one direct-mapped cache line: the key carries a presence
// marker in bit 32 so the zero slot never matches a real address.
type l1Slot struct {
	key uint64
	val ipaddr.Addr
}

// L1 is a single-goroutine memo in front of a shared Cached: lookups
// hit a direct-mapped array (one multiply-shift hash, no Go map, no
// locks) and fall through to the shared table on miss, overwriting the
// colliding slot. The engine gives each shard worker its own L1, so the
// per-packet cost of repeated addresses (heavy-tailed sources dominate
// packets) is one array probe. An L1 must only ever be used from one
// goroutine at a time, but it may be reused across captures: entries
// memoize a pure function of the key, so they never go stale.
type L1 struct {
	shared *Cached
	buf    walkBuf // single-goroutine walk scratch: no pool traffic on misses
	slots  [1 << l1Bits]l1Slot

	// AnonymizeBatch miss scratch, retained at slab capacity so warm
	// batches allocate nothing (single-goroutine, like the walk buffer).
	missIdx   []int32
	missAddrs []ipaddr.Addr
}

// NewL1 returns an empty per-goroutine memo over the shared cache.
func (c *Cached) NewL1() *L1 {
	return &L1{shared: c}
}

// Anonymize returns the same mapping as the shared cache.
func (l *L1) Anonymize(addr ipaddr.Addr) ipaddr.Addr {
	i := (uint32(addr) * 2654435761) >> (32 - l1Bits)
	s := &l.slots[i]
	k := uint64(addr) | 1<<32
	if s.key == k {
		return s.val
	}
	v := l.shared.anonymizeWith(addr, &l.buf)
	s.key, s.val = k, v
	return v
}
