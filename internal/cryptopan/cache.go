package cryptopan

import (
	"sync"

	"repro/internal/ipaddr"
)

// Cached wraps an Anonymizer with a sharded lookup table. The full
// Crypto-PAn transform costs 32 AES block encryptions per address; the
// telescope anonymizes every packet of a window, but windows contain far
// fewer unique addresses than packets (the paper's 2^30-packet samples
// hold 500k-800k unique sources), so memoization removes almost all of
// the cost.
type Cached struct {
	inner  *Anonymizer
	shards [cacheShards]cacheShard
}

const cacheShards = 64

type cacheShard struct {
	mu sync.RWMutex
	m  map[ipaddr.Addr]ipaddr.Addr
}

// NewCached wraps a in a concurrency-safe memo table.
func NewCached(a *Anonymizer) *Cached {
	c := &Cached{inner: a}
	for i := range c.shards {
		c.shards[i].m = make(map[ipaddr.Addr]ipaddr.Addr)
	}
	return c
}

// Anonymize returns the same mapping as the wrapped Anonymizer.
func (c *Cached) Anonymize(addr ipaddr.Addr) ipaddr.Addr {
	s := &c.shards[uint32(addr)%cacheShards]
	s.mu.RLock()
	v, ok := s.m[addr]
	s.mu.RUnlock()
	if ok {
		return v
	}
	v = c.inner.Anonymize(addr)
	s.mu.Lock()
	s.m[addr] = v
	s.mu.Unlock()
	return v
}

// Reverse returns the inverse of the memoized mapping: anonymized
// address back to original. Only addresses anonymized through this cache
// appear. This supports the paper's correlation approach 1, where
// anonymized identifiers are sent back to the data owner (who holds the
// table) for deanonymization.
func (c *Cached) Reverse() map[ipaddr.Addr]ipaddr.Addr {
	out := make(map[ipaddr.Addr]ipaddr.Addr, c.Len())
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for orig, anon := range s.m {
			out[anon] = orig
		}
		s.mu.RUnlock()
	}
	return out
}

// Len reports the number of memoized addresses across all shards.
func (c *Cached) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
