package cryptopan

// batch.go vectorizes the Crypto-PAn walk over address slabs. The
// telescope's shard workers anonymize whole packet slabs at a time, so
// the batch entry points amortize three per-address costs the scalar
// path pays: the pool round-trip for walk scratch, the per-address
// RLock/Lock on the shared memo shards (batches probe and fill each
// shard in one lock epoch), and — the algorithmic win — AES blocks for
// walk levels that adjacent addresses share. Misses are sorted before
// walking: the flip bit of level i is a pure function of the first i
// address bits, so each address in a sorted pass reuses every level up
// to its common prefix length with its predecessor and only pays AES
// for the tail. Real slabs are heavy-tailed and prefix-clustered, which
// makes the shared prefixes long exactly when batches are large.
//
// Every entry point computes bit-identical results to its scalar
// counterpart (the batch differential tests pin this), so batching is
// purely a throughput change.

import (
	"math/bits"
	"slices"
	"sync"

	"repro/internal/ipaddr"
)

// anonymizeSorted computes the Crypto-PAn mapping for a strictly
// ascending slice of original addresses, writing anonymized values into
// out (which must have len(in)). Walk levels 0..15 come from the top16
// table; for levels 16..31, an address reuses its predecessor's flip
// bits up to their common prefix length and pays one AES block per
// remaining level. The walk runs in passes over the one scratch buffer
// b, 16 AES blocks or fewer per address.
func (a *Anonymizer) anonymizeSorted(in, out []uint32, b *walkBuf) {
	a.top16Once.Do(a.buildTop16)
	padTop := uint32(a.pad[0])<<24 | uint32(a.pad[1])<<16 |
		uint32(a.pad[2])<<8 | uint32(a.pad[3])
	copy(b.block[4:], a.pad[4:])
	var prev, prevFlips uint32
	for k, orig := range in {
		var flips uint32 // levels 16..31 flip bits at result bits 15..0
		from := 16
		if k > 0 {
			// in is strictly ascending, so orig != prev and the shared
			// prefix length is in [0, 31]. Level i (16..31) depends only
			// on the first i bits, so every level <= shared is reusable.
			shared := bits.LeadingZeros32(orig ^ prev)
			if shared >= 16 {
				keep := uint32(0xffff) << (31 - shared) & 0xffff
				flips = prevFlips & keep
				from = shared + 1
			}
		}
		for i := from; i < 32; i++ {
			mask := ^uint32(0) << (32 - uint(i))
			prefix := orig&mask | padTop&^mask
			b.block[0] = byte(prefix >> 24)
			b.block[1] = byte(prefix >> 16)
			b.block[2] = byte(prefix >> 8)
			b.block[3] = byte(prefix)
			a.cipher.Encrypt(b.out[:], b.block[:])
			flips |= uint32(b.out[0]>>7) << (31 - uint(i))
		}
		out[k] = orig ^ (uint32(a.top16[orig>>16])<<16 | flips)
		prev, prevFlips = orig, flips
	}
}

// batchScratch is the pooled working set of one AnonymizeBatch call.
type batchScratch struct {
	wb   walkBuf
	keys []uint64 // original address << 32 | slab index
	uniq []uint32 // sorted unique originals
	res  []uint32 // anonymized values aligned with uniq
}

var batchPool = sync.Pool{New: func() interface{} { return new(batchScratch) }}

// AnonymizeBatch maps a slab of addresses in place, bit-identical to
// calling Anonymize on each element. Duplicate addresses pay one walk;
// distinct addresses sharing prefixes share the walk levels of their
// common prefix (see anonymizeSorted). The steady-state path allocates
// nothing: scratch is pooled and retained at slab capacity.
func (a *Anonymizer) AnonymizeBatch(addrs []ipaddr.Addr) {
	if len(addrs) == 0 {
		return
	}
	s := batchPool.Get().(*batchScratch)
	keys := s.keys[:0]
	for i, v := range addrs {
		keys = append(keys, uint64(uint32(v))<<32|uint64(uint32(i)))
	}
	slices.Sort(keys)
	uniq := s.uniq[:0]
	for i, k := range keys {
		orig := uint32(k >> 32)
		if i == 0 || orig != uint32(keys[i-1]>>32) {
			uniq = append(uniq, orig)
		}
	}
	res := growU32(s.res, len(uniq))
	a.anonymizeSorted(uniq, res, &s.wb)
	ui := 0
	for _, k := range keys {
		orig := uint32(k >> 32)
		for uniq[ui] != orig {
			ui++
		}
		addrs[uint32(k)] = ipaddr.Addr(res[ui])
	}
	s.keys, s.uniq, s.res = keys, uniq, res
	batchPool.Put(s)
}

// cachedScratch is the pooled working set of one Cached.AnonymizeBatch
// call: per-shard buckets so each memo shard is probed and filled under
// one lock acquisition, plus the miss walk's sorted scratch.
type cachedScratch struct {
	wb      walkBuf
	byShard [cacheShards][]uint64 // packed address << 32 | slab index
	misses  [cacheShards][]uint64 // the subset not found during the probe epoch
	uniq    []uint32
	res     []uint32
}

var cachedBatchPool = sync.Pool{New: func() interface{} { return new(cachedScratch) }}

// AnonymizeBatch maps a slab of addresses in place through the shared
// memo, bit-identical to calling Anonymize on each element. Instead of
// a lock acquisition per address, the slab is bucketed by memo shard
// and each shard is probed under one RLock epoch; the misses are
// deduplicated, sorted, walked with prefix sharing (anonymizeSorted),
// and installed under one Lock epoch per shard. Safe for concurrent
// use with every other Cached method: a concurrent miss on the same
// address computes the same pure value, so late insertion is
// idempotent, exactly as on the scalar path.
func (c *Cached) AnonymizeBatch(addrs []ipaddr.Addr) {
	if len(addrs) == 0 {
		return
	}
	s := cachedBatchPool.Get().(*cachedScratch)
	for i, v := range addrs {
		sh := uint32(v) % cacheShards
		s.byShard[sh] = append(s.byShard[sh], uint64(uint32(v))<<32|uint64(uint32(i)))
	}
	totalMiss := 0
	for sh := range s.byShard {
		entries := s.byShard[sh]
		if len(entries) == 0 {
			continue
		}
		miss := s.misses[sh][:0]
		shard := &c.shards[sh]
		shard.mu.RLock()
		for _, e := range entries {
			if v, ok := shard.m[ipaddr.Addr(uint32(e>>32))]; ok {
				addrs[uint32(e)] = v
			} else {
				miss = append(miss, e)
			}
		}
		shard.mu.RUnlock()
		s.misses[sh] = miss
		totalMiss += len(miss)
	}
	if totalMiss > 0 {
		uniq := s.uniq[:0]
		for sh := range s.misses {
			for _, e := range s.misses[sh] {
				uniq = append(uniq, uint32(e>>32))
			}
		}
		slices.Sort(uniq)
		uniq = slices.Compact(uniq)
		res := growU32(s.res, len(uniq))
		c.inner.anonymizeSorted(uniq, res, &s.wb)
		for sh := range s.misses {
			miss := s.misses[sh]
			if len(miss) == 0 {
				continue
			}
			shard := &c.shards[sh]
			shard.mu.Lock()
			for _, e := range miss {
				orig := uint32(e >> 32)
				j, _ := slices.BinarySearch(uniq, orig)
				v := ipaddr.Addr(res[j])
				shard.m[ipaddr.Addr(orig)] = v
				addrs[uint32(e)] = v
			}
			shard.mu.Unlock()
		}
		s.uniq, s.res = uniq, res
	}
	for sh := range s.byShard {
		s.byShard[sh] = s.byShard[sh][:0]
		s.misses[sh] = s.misses[sh][:0]
	}
	cachedBatchPool.Put(s)
}

// AnonymizeBatch maps a slab of addresses in place through the L1 memo,
// bit-identical to calling Anonymize on each element: hits cost one
// array probe, and all misses of the slab go to the shared cache as a
// single batch (one lock epoch per touched shard, prefix-shared AES
// walks) before being installed in the L1. Like every L1 method it must
// only run on the L1's owning goroutine; the slab itself is caller
// owned and may be reused freely afterwards. The steady-state path
// allocates nothing.
func (l *L1) AnonymizeBatch(addrs []ipaddr.Addr) {
	miss := l.missIdx[:0]
	for i, v := range addrs {
		si := (uint32(v) * 2654435761) >> (32 - l1Bits)
		s := &l.slots[si]
		if s.key == uint64(v)|1<<32 {
			addrs[i] = s.val
		} else {
			miss = append(miss, int32(i))
		}
	}
	if len(miss) == 0 {
		l.missIdx = miss
		return
	}
	ma := l.missAddrs[:0]
	for _, i := range miss {
		ma = append(ma, addrs[i])
	}
	l.shared.AnonymizeBatch(ma)
	for k, i := range miss {
		orig := addrs[i]
		v := ma[k]
		addrs[i] = v
		si := (uint32(orig) * 2654435761) >> (32 - l1Bits)
		l.slots[si] = l1Slot{key: uint64(orig) | 1<<32, val: v}
	}
	l.missIdx, l.missAddrs = miss, ma
}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}
