package telescope

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/ipaddr"
	"repro/internal/pcap"
	"repro/internal/radiation"
	"repro/internal/stats"
)

func testPopulation(t *testing.T, n int) *radiation.Population {
	t.Helper()
	c := radiation.DefaultConfig()
	c.NumSources = n
	c.ZM = stats.PaperZM(1 << 12)
	p, err := radiation.NewPopulation(c)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidFilter(t *testing.T) {
	tel := New(ipaddr.MustParsePrefix("44.0.0.0/8"), "test")
	cases := []struct {
		src, dst string
		want     bool
	}{
		{"1.2.3.4", "44.1.2.3", true},
		{"1.2.3.4", "45.1.2.3", false},  // not darkspace
		{"10.0.0.1", "44.1.2.3", false}, // private source
		{"44.9.9.9", "44.1.2.3", false}, // internal source
	}
	for _, c := range cases {
		p := &pcap.Packet{Src: ipaddr.MustParse(c.src), Dst: ipaddr.MustParse(c.dst)}
		if got := tel.Valid(p); got != c.want {
			t.Errorf("Valid(%s->%s) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestCaptureWindowExactNV(t *testing.T) {
	pop := testPopulation(t, 3000)
	tel := New(pop.Config().Darkspace, "exact-nv", WithLeafSize(256))
	st := pop.TelescopeStream(4, time.Unix(0, 0))
	const nv = 4096
	w, err := tel.CaptureWindow(st, nv)
	if err != nil {
		t.Fatal(err)
	}
	if w.NV != nv {
		t.Fatalf("NV = %d, want %d", w.NV, nv)
	}
	// NV conservation through anonymization and hierarchical assembly.
	if got := w.Matrix.Sum(); got != float64(nv) {
		t.Errorf("matrix sum = %g, want %d", got, nv)
	}
	if w.Leaves < nv/256 {
		t.Errorf("Leaves = %d, want >= %d", w.Leaves, nv/256)
	}
	if !w.End.After(w.Start) {
		t.Error("window has non-positive duration")
	}
}

func TestCaptureWindowShortStream(t *testing.T) {
	pop := testPopulation(t, 200)
	tel := New(pop.Config().Darkspace, "short")
	st := pop.TelescopeStream(4, time.Unix(0, 0))
	w, err := tel.CaptureWindow(st, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if w.NV == 0 {
		t.Fatal("captured nothing")
	}
	if w.NV > st.Emitted() {
		t.Error("captured more than emitted")
	}
}

func TestCaptureWindowRejectsBadNV(t *testing.T) {
	tel := New(ipaddr.MustParsePrefix("44.0.0.0/8"), "bad")
	if _, err := tel.CaptureWindow(nil, 0); err == nil {
		t.Error("NV=0 accepted")
	}
}

func TestCaptureDropsInvalid(t *testing.T) {
	c := radiation.DefaultConfig()
	c.NumSources = 2000
	c.ZM = stats.PaperZM(1 << 12)
	c.BogonRate = 0.10
	pop, _ := radiation.NewPopulation(c)
	tel := New(c.Darkspace, "drops")
	st := pop.TelescopeStream(4, time.Unix(0, 0))
	w, err := tel.CaptureWindow(st, 1<<30) // drain whole stream
	if err != nil {
		t.Fatal(err)
	}
	if w.Dropped == 0 {
		t.Error("bogon-polluted stream produced zero drops")
	}
	total := w.NV + w.Dropped
	rate := float64(w.Dropped) / float64(total)
	if rate < 0.05 || rate > 0.15 {
		t.Errorf("drop rate %g, want near 0.10", rate)
	}
}

func TestAnonymizedMatrixHidesRealAddresses(t *testing.T) {
	pop := testPopulation(t, 1000)
	tel := New(pop.Config().Darkspace, "hide")
	st := pop.TelescopeStream(4, time.Unix(0, 0))
	w, _ := tel.CaptureWindow(st, 2048)
	// Column ids are anonymized darkspace addresses; overwhelmingly they
	// should NOT fall inside the darkspace prefix (CryptoPAN moves the
	// /8 to a different anonymized /8 unless the key happens to fix it).
	dark := pop.Config().Darkspace
	rows := w.Matrix.Rows()
	inDark := 0
	for _, r := range rows {
		if dark.Contains(ipaddr.Addr(r)) {
			inDark++
		}
	}
	if inDark > len(rows)/10 {
		t.Errorf("%d/%d anonymized sources inside the real darkspace; anonymization suspect", inDark, len(rows))
	}
}

func TestSourceTableDeanonymizes(t *testing.T) {
	pop := testPopulation(t, 1000)
	tel := New(pop.Config().Darkspace, "roundtrip")
	st := pop.TelescopeStream(4, time.Unix(0, 0))
	w, _ := tel.CaptureWindow(st, 2048)

	table := tel.SourceTable(w)
	if table.NRows() != w.Matrix.NRows() {
		t.Fatalf("table rows %d != matrix rows %d", table.NRows(), w.Matrix.NRows())
	}
	// Every row key must be a real population address, and packet counts
	// must sum to NV.
	known := make(map[string]bool, pop.Len())
	for i := 0; i < pop.Len(); i++ {
		known[pop.Source(i).IP.String()] = true
	}
	var sum float64
	for _, row := range table.RowKeys() {
		if !known[row] {
			t.Fatalf("table row %q is not a population source", row)
		}
		v, ok := table.Get(row, "packets")
		if !ok || !v.Numeric {
			t.Fatalf("row %q missing numeric packets", row)
		}
		sum += v.Num
	}
	if sum != float64(w.NV) {
		t.Errorf("table packet total %g != NV %d", sum, w.NV)
	}
}

func TestDeanonymizeRoundTrip(t *testing.T) {
	pop := testPopulation(t, 500)
	tel := New(pop.Config().Darkspace, "deanon")
	st := pop.TelescopeStream(4, time.Unix(0, 0))
	w, _ := tel.CaptureWindow(st, 1024)
	for _, anonRow := range w.Matrix.Rows()[:10] {
		orig, ok := tel.Deanonymize(ipaddr.Addr(anonRow))
		if !ok {
			t.Fatalf("anonymized row %d not in table", anonRow)
		}
		if orig == ipaddr.Addr(anonRow) {
			// Possible in principle but wildly unlikely for 10 rows.
			t.Logf("note: fixed point %v", orig)
		}
	}
	if _, ok := tel.Deanonymize(ipaddr.MustParse("0.0.0.1")); ok {
		t.Error("Deanonymize invented a mapping for an unseen address")
	}
}

func TestCaptureTimeWindowRespectsSpan(t *testing.T) {
	pop := testPopulation(t, 3000)
	tel := New(pop.Config().Darkspace, "time-window")
	st := pop.TelescopeStream(4, time.Unix(0, 0))
	span := 5 * time.Second
	w, err := tel.CaptureTimeWindow(st, span)
	if err != nil {
		t.Fatal(err)
	}
	if w.NV == 0 {
		t.Fatal("time window captured nothing")
	}
	if w.Duration() > span {
		t.Errorf("duration %v exceeds span %v", w.Duration(), span)
	}
}

func TestPcapRoundTripThroughTelescope(t *testing.T) {
	// Full wire-format path: radiation -> pcap file -> reader -> telescope.
	pop := testPopulation(t, 500)
	st := pop.TelescopeStream(4, time.Unix(1_592_395_200, 0))
	var buf bytes.Buffer
	pw, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var pkt pcap.Packet
	emitted := 0
	for st.Next(&pkt) && emitted < 3000 {
		if err := pw.WritePacket(&pkt); err != nil {
			t.Fatal(err)
		}
		emitted++
	}
	pw.Flush()

	pr, err := pcap.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	tel := New(pop.Config().Darkspace, "pcap-path")
	w, err := tel.CaptureWindow(&ReaderSource{R: pr}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if w.NV+w.Dropped > emitted {
		t.Fatalf("accounted packets %d > written %d", w.NV+w.Dropped, emitted)
	}
	if w.NV == 0 {
		t.Fatal("pcap path captured nothing")
	}
	if w.Matrix.Sum() != float64(w.NV) {
		t.Error("NV not conserved through pcap round trip")
	}
}

func TestConstantPacketVsConstantTimeVariance(t *testing.T) {
	// Ablation A3 sanity: constant-packet windows have identical NV by
	// construction; constant-time windows vary.
	pop := testPopulation(t, 2000)
	tel := New(pop.Config().Darkspace, "ablation")
	var nvs []int
	for m := 2; m <= 6; m++ {
		st := pop.TelescopeStream(float64(m), time.Unix(0, 0))
		w, err := tel.CaptureTimeWindow(st, 3*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		nvs = append(nvs, w.NV)
	}
	allSame := true
	for _, nv := range nvs[1:] {
		if nv != nvs[0] {
			allSame = false
		}
	}
	if allSame {
		t.Log("constant-time windows happened to capture identical NV; unusual but not an error")
	}
}

func BenchmarkCaptureWindow64k(b *testing.B) {
	c := radiation.DefaultConfig()
	c.NumSources = 50000
	pop, _ := radiation.NewPopulation(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel := New(c.Darkspace, "bench")
		st := pop.TelescopeStream(4, time.Unix(0, 0))
		if _, err := tel.CaptureWindow(st, 1<<16); err != nil {
			b.Fatal(err)
		}
	}
}
