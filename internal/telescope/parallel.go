package telescope

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/hypersparse"
	"repro/internal/ipaddr"
	"repro/internal/pcap"
)

// parallel.go implements the multi-worker window build. The serial
// CaptureWindow interleaves packet parsing, CryptoPAN (32 AES blocks per
// new address), and leaf assembly on one goroutine; here the stream is
// read and filtered by the caller's goroutine while a worker pool
// anonymizes and builds leaf matrices, which the hierarchical merge then
// combines. The result is identical to the serial build (the matrix is
// a sum of the same triples; only leaf boundaries differ).

// addrPair is one valid packet reduced to its matrix coordinates.
type addrPair struct{ src, dst uint32 }

// CaptureWindowParallel is CaptureWindow with a worker pool. workers <= 0
// uses GOMAXPROCS. The anonymization cache is shared and concurrency
// safe, so repeated addresses cost one AES walk regardless of worker
// count.
func (t *Telescope) CaptureWindowParallel(src PacketSource, nv, workers int) (*Window, error) {
	if nv <= 0 {
		return nil, fmt.Errorf("telescope: window size must be positive, got %d", nv)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	batches := make(chan []addrPair, workers*2)
	var mu sync.Mutex
	var leaves []*hypersparse.Matrix
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for batch := range batches {
				b := hypersparse.NewBuilder(len(batch))
				for _, p := range batch {
					arow := t.anon.Anonymize(ipaddr.Addr(p.src))
					acol := t.anon.Anonymize(ipaddr.Addr(p.dst))
					b.Add(uint32(arow), uint32(acol), 1)
				}
				leaf := b.Build()
				mu.Lock()
				leaves = append(leaves, leaf)
				mu.Unlock()
			}
		}()
	}

	w := &Window{}
	batch := make([]addrPair, 0, t.leafSize)
	var pkt pcap.Packet
	for w.NV < nv && src.Next(&pkt) {
		if !t.Valid(&pkt) {
			w.Dropped++
			continue
		}
		if w.NV == 0 {
			w.Start = pkt.Time
		}
		w.End = pkt.Time
		batch = append(batch, addrPair{uint32(pkt.Src), uint32(pkt.Dst)})
		w.NV++
		if len(batch) == t.leafSize {
			batches <- batch
			batch = make([]addrPair, 0, t.leafSize)
		}
	}
	if len(batch) > 0 {
		batches <- batch
	}
	close(batches)
	wg.Wait()

	w.Leaves = len(leaves)
	w.Matrix = hypersparse.HierSum(leaves, t.workers)
	// Invalidate the memoized reverse table: capture grew the cache.
	t.revCache = nil
	if rs, ok := src.(*ReaderSource); ok && rs.Err != nil {
		return nil, rs.Err
	}
	return w, nil
}
