// Package telescope implements a CAIDA-style darkspace observatory: it
// consumes a raw packet stream, discards traffic that is not valid
// unsolicited darkspace traffic, cuts constant-packet windows of NV
// valid packets, and assembles each window into a CryptoPAN-anonymized
// GraphBLAS hypersparse traffic matrix by hierarchically summing leaf
// matrices (the paper's 2^17-packet leaves under a 2^30-packet window).
//
// Because the monitored prefix is a darkspace, only the external →
// internal quadrant of the traffic matrix is ever populated (Figure 1 of
// the paper): rows are external sources, columns are darkspace
// destinations.
package telescope

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/assoc"
	"repro/internal/cryptopan"
	"repro/internal/engine"
	"repro/internal/hypersparse"
	"repro/internal/ipaddr"
	"repro/internal/pcap"
	"repro/internal/tripled"
)

// PacketSource yields packets in time order; Next returns false when the
// stream is exhausted.
type PacketSource interface {
	Next(*pcap.Packet) bool
}

// ReaderSource adapts a pcap.Reader to the PacketSource interface.
type ReaderSource struct {
	R   *pcap.Reader
	err error
}

// Next implements PacketSource.
func (rs *ReaderSource) Next(p *pcap.Packet) bool {
	err := rs.R.ReadPacket(p)
	if err == nil {
		return true
	}
	if err != io.EOF {
		rs.err = err
	}
	return false
}

// NextBatch implements the engine's BatchSource hook: it decodes a slab
// of packets per call through pcap.Reader.NextBatch, amortizing header
// parsing and letting the engine hand whole slabs to its shard workers.
// A mid-stream decode error ends the stream (possibly after a short
// final slab) and is reported through Err, exactly like Next.
func (rs *ReaderSource) NextBatch(dst []pcap.Packet) int {
	if rs.err != nil {
		return 0
	}
	n, err := rs.R.NextBatch(dst)
	if err != nil && err != io.EOF {
		rs.err = err
	}
	return n
}

// Err reports the first non-EOF read error, if any. It satisfies the
// engine's Errorer hook, so truncated captures surface from any capture
// path.
func (rs *ReaderSource) Err() error { return rs.err }

// Telescope holds the observatory configuration. Construct with New.
//
// A Telescope runs one capture at a time: CaptureWindow,
// CaptureWindowEngine, CaptureTimeWindow, and CaptureToArchive must not
// be invoked concurrently with each other (a capture internally shards
// across goroutines just fine). This was always the contract — the
// deanonymization memo is invalidated unsynchronized at capture
// boundaries — and the per-shard L1 anonymization memos and cached
// engines reused across captures now rely on it too. Concurrent windows
// belong on separate Telescopes sharing nothing, as in the paper's
// deployment, where each observatory site anonymizes under its own key.
type Telescope struct {
	darkspace ipaddr.Prefix
	leafSize  int
	workers   int
	anon      *cryptopan.Cached

	poolMu  sync.Mutex
	shards  map[int]*shardAnon        // per-shard L1 memos + slab scratch, reused across captures
	engines map[[2]int]*engine.Engine // cached per (workers, batch): pooled accumulators and batch buffers persist across windows

	revCache map[ipaddr.Addr]ipaddr.Addr // memoized inverse mapping
	revSize  int                         // anon.Len() when revCache was built
}

// Option configures a Telescope.
type Option func(*Telescope)

// WithLeafSize sets the leaf window size for hierarchical matrix
// assembly (the paper uses 2^17; the default here is 2^14 for
// laptop-scale windows).
func WithLeafSize(n int) Option { return func(t *Telescope) { t.leafSize = n } }

// WithWorkers sets the merge parallelism (default: GOMAXPROCS).
func WithWorkers(n int) Option { return func(t *Telescope) { t.workers = n } }

// WithAnonymizer shares an existing CryptoPAN cache instead of building
// a private one from the passphrase. The study scheduler uses this to
// give every per-worker Telescope the study's one shared cache: the
// anonymization is a pure function of the passphrase, so sharing
// changes no output, but it stops N workers from re-deriving the same
// prefix-preserving mappings into N disjoint memos (and keeps
// Reverse() a single complete deanonymization table for the study).
// The cache is concurrency-safe; the passphrase argument to New is
// ignored when this option is given and must correspond to the same
// key if deanonymized outputs are to line up.
func WithAnonymizer(c *cryptopan.Cached) Option { return func(t *Telescope) { t.anon = c } }

// New creates a Telescope monitoring the given darkspace, anonymizing
// with the given passphrase-derived CryptoPAN key.
func New(darkspace ipaddr.Prefix, anonPassphrase string, opts ...Option) *Telescope {
	t := &Telescope{
		darkspace: darkspace,
		leafSize:  1 << 14,
		shards:    make(map[int]*shardAnon),
		engines:   make(map[[2]int]*engine.Engine),
	}
	for _, o := range opts {
		o(t)
	}
	if t.anon == nil {
		t.anon = cryptopan.NewCached(cryptopan.NewFromPassphrase(anonPassphrase))
	}
	return t
}

// Anonymizer exposes the telescope's shared CryptoPAN cache, for
// handing to further Telescopes via WithAnonymizer.
func (t *Telescope) Anonymizer() *cryptopan.Cached { return t.anon }

// Darkspace returns the monitored prefix.
func (t *Telescope) Darkspace() ipaddr.Prefix { return t.darkspace }

// Valid implements the paper's validity filter: the packet must be
// destined to the darkspace (external → internal quadrant) and must not
// carry an un-routable source (bogons and darkspace-internal sources are
// the "small amount of legitimate traffic" analog that gets discarded).
func (t *Telescope) Valid(p *pcap.Packet) bool {
	return t.darkspace.Contains(p.Dst) &&
		!t.darkspace.Contains(p.Src) &&
		!ipaddr.IsPrivate(p.Src)
}

// Window is one constant-packet sample: an anonymized traffic matrix of
// exactly NV valid packets (fewer only if the stream ran out).
type Window struct {
	Start, End time.Time
	NV         int // valid packets in the matrix
	Dropped    int // packets discarded by the validity filter
	Matrix     *hypersparse.Matrix
	Leaves     int // leaf matrices hierarchically summed
}

// Duration returns the wall-clock span of the window; constant-packet
// windows have variable duration (Table I's "CAIDA Duration" column).
func (w *Window) Duration() time.Duration { return w.End.Sub(w.Start) }

// CaptureWindow reads from src until nv valid packets are collected (or
// the stream ends) and assembles the anonymized window matrix. The
// number of packets in the matrix equals the number accepted: NV is
// conserved through anonymization and hierarchical assembly.
func (t *Telescope) CaptureWindow(src PacketSource, nv int) (*Window, error) {
	if nv <= 0 {
		return nil, fmt.Errorf("telescope: window size must be positive, got %d", nv)
	}
	acc := hypersparse.NewAccumulator(t.leafSize, t.workers)
	w := &Window{}
	var pkt pcap.Packet
	for w.NV < nv && src.Next(&pkt) {
		if !t.Valid(&pkt) {
			w.Dropped++
			continue
		}
		if w.NV == 0 {
			w.Start = pkt.Time
		}
		w.End = pkt.Time
		arow := t.anon.Anonymize(pkt.Src)
		acol := t.anon.Anonymize(pkt.Dst)
		acc.Add(uint32(arow), uint32(acol), 1)
		w.NV++
	}
	w.Leaves = acc.Leaves()
	if w.NV%t.leafSize != 0 {
		w.Leaves++ // partial tail leaf
	}
	w.Matrix = acc.Finish()
	if rs, ok := src.(*ReaderSource); ok && rs.Err() != nil {
		return nil, rs.Err()
	}
	return w, nil
}

// CaptureTimeWindow is the constant-time alternative (ablation A3): it
// accepts valid packets until the stream's clock passes start+span.
// Constant-time windows have variable NV, which the paper argues makes
// heavy-tail statistics harder to compare across windows.
func (t *Telescope) CaptureTimeWindow(src PacketSource, span time.Duration) (*Window, error) {
	acc := hypersparse.NewAccumulator(t.leafSize, t.workers)
	w := &Window{}
	var pkt pcap.Packet
	for src.Next(&pkt) {
		if !t.Valid(&pkt) {
			w.Dropped++
			continue
		}
		if w.NV == 0 {
			w.Start = pkt.Time
		}
		if w.NV > 0 && pkt.Time.Sub(w.Start) > span {
			break
		}
		w.End = pkt.Time
		arow := t.anon.Anonymize(pkt.Src)
		acol := t.anon.Anonymize(pkt.Dst)
		acc.Add(uint32(arow), uint32(acol), 1)
		w.NV++
	}
	w.Leaves = acc.Leaves()
	w.Matrix = acc.Finish()
	if rs, ok := src.(*ReaderSource); ok && rs.Err() != nil {
		return nil, rs.Err()
	}
	return w, nil
}

// SourcePackets returns the anonymized per-source packet counts A·1 of
// the window.
func (w *Window) SourcePackets() *hypersparse.Vector { return w.Matrix.RowSums() }

// Deanonymize maps an anonymized address back to the original, using the
// telescope's own anonymization table. This is the paper's correlation
// approach 1: "anonymized data can be sent back to the sources for
// deanonymization" — the telescope operator holds the mapping.
func (t *Telescope) Deanonymize(a ipaddr.Addr) (ipaddr.Addr, bool) {
	orig, ok := t.reverse()[a]
	return orig, ok
}

// reverse materializes the anonymization table's inverse, memoized until
// further capture grows the table. Not safe for use concurrently with
// CaptureWindow.
func (t *Telescope) reverse() map[ipaddr.Addr]ipaddr.Addr {
	if n := t.anon.Len(); t.revCache == nil || t.revSize != n {
		t.revCache = t.anon.Reverse()
		t.revSize = n
	}
	return t.revCache
}

// SourceTable converts a window's reduced source-packet vector into a
// D4M associative array keyed by the original dotted-quad source
// address, with the packet count under column "packets". This is the
// boundary where, as in the paper, "the reduced results are converted to
// D4M associative arrays" for correlation against the honeyfarm.
func (t *Telescope) SourceTable(w *Window) *assoc.Assoc {
	rev := t.reverse()
	out := assoc.New()
	w.SourcePackets().Iterate(func(id uint32, packets float64) bool {
		orig, ok := rev[ipaddr.Addr(id)]
		if !ok {
			// Cannot happen for matrices built by this telescope.
			return true
		}
		out.Set(orig.String(), "packets", assoc.Num(packets))
		return true
	})
	return out
}

// SnapshotRowPrefix is the tripled row-key prefix a snapshot's source
// table is published under.
func SnapshotRowPrefix(label string) string { return "tel/" + label + "/" }

// PublishBatch is the batch size source tables are published with.
const PublishBatch = 1024

// PublishSourceTable reduces a window to its D4M source table and
// writes it to a tripled server under SnapshotRowPrefix — the paper's
// "reduced results are converted to D4M associative arrays" boundary,
// with the database substrate standing in for Accumulo.
func (t *Telescope) PublishSourceTable(c tripled.Conn, label string, w *Window) error {
	return c.PublishAssoc(SnapshotRowPrefix(label), t.SourceTable(w), PublishBatch)
}

// FetchSourceTable reads a published snapshot source table back from a
// tripled server.
func FetchSourceTable(c tripled.Conn, label string) (*assoc.Assoc, error) {
	return c.FetchAssoc(SnapshotRowPrefix(label), 512)
}
