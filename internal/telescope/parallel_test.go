package telescope

import (
	"testing"
	"time"

	"repro/internal/hypersparse"
	"repro/internal/radiation"
)

func TestParallelMatchesSerial(t *testing.T) {
	pop := testPopulation(t, 3000)
	const nv = 4096
	serial := New(pop.Config().Darkspace, "same-key", WithLeafSize(256))
	ws, err := serial.CaptureWindow(pop.TelescopeStream(4, time.Unix(0, 0)), nv)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		par := New(pop.Config().Darkspace, "same-key", WithLeafSize(256))
		wp, err := par.CaptureWindowParallel(pop.TelescopeStream(4, time.Unix(0, 0)), nv, workers)
		if err != nil {
			t.Fatal(err)
		}
		if wp.NV != ws.NV || wp.Dropped != ws.Dropped {
			t.Fatalf("workers=%d: NV/Dropped %d/%d vs serial %d/%d",
				workers, wp.NV, wp.Dropped, ws.NV, ws.Dropped)
		}
		if !hypersparse.Equal(wp.Matrix, ws.Matrix) {
			t.Fatalf("workers=%d: parallel matrix differs from serial", workers)
		}
		if !wp.Start.Equal(ws.Start) || !wp.End.Equal(ws.End) {
			t.Fatalf("workers=%d: window bounds differ", workers)
		}
	}
}

func TestParallelSourceTableMatches(t *testing.T) {
	pop := testPopulation(t, 1000)
	tel := New(pop.Config().Darkspace, "table-key")
	w, err := tel.CaptureWindowParallel(pop.TelescopeStream(4, time.Unix(0, 0)), 2048, 4)
	if err != nil {
		t.Fatal(err)
	}
	table := tel.SourceTable(w)
	if table.NRows() != w.Matrix.NRows() {
		t.Fatalf("table rows %d != matrix rows %d (reverse cache stale?)",
			table.NRows(), w.Matrix.NRows())
	}
	var sum float64
	for _, row := range table.RowKeys() {
		v, _ := table.Get(row, "packets")
		sum += v.Num
	}
	if sum != float64(w.NV) {
		t.Errorf("table total %g != NV %d", sum, w.NV)
	}
}

func TestParallelRejectsBadNV(t *testing.T) {
	tel := New(radiation.DefaultConfig().Darkspace, "bad")
	if _, err := tel.CaptureWindowParallel(nil, 0, 4); err == nil {
		t.Error("NV=0 accepted")
	}
}

func TestParallelShortStream(t *testing.T) {
	pop := testPopulation(t, 200)
	tel := New(pop.Config().Darkspace, "short-par")
	w, err := tel.CaptureWindowParallel(pop.TelescopeStream(4, time.Unix(0, 0)), 1<<30, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w.NV == 0 {
		t.Fatal("captured nothing")
	}
	if w.Matrix.Sum() != float64(w.NV) {
		t.Error("NV not conserved on short stream")
	}
}

func BenchmarkCaptureSerial(b *testing.B) {
	benchCapture(b, func(tel *Telescope, src PacketSource, nv int) (*Window, error) {
		return tel.CaptureWindow(src, nv)
	})
}

func BenchmarkCaptureParallel(b *testing.B) {
	benchCapture(b, func(tel *Telescope, src PacketSource, nv int) (*Window, error) {
		return tel.CaptureWindowParallel(src, nv, 0)
	})
}

func benchCapture(b *testing.B, capture func(*Telescope, PacketSource, int) (*Window, error)) {
	b.Helper()
	c := radiation.DefaultConfig()
	c.NumSources = 50000
	pop, err := radiation.NewPopulation(c)
	if err != nil {
		b.Fatal(err)
	}
	const nv = 1 << 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel := New(c.Darkspace, "bench-key", WithLeafSize(1<<12))
		w, err := capture(tel, pop.TelescopeStream(4.5, time.Unix(0, 0)), nv)
		if err != nil {
			b.Fatal(err)
		}
		if w.NV != nv {
			b.Fatalf("short window %d", w.NV)
		}
	}
}
