package telescope

import (
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/hypersparse"
)

func TestCaptureToArchiveMatchesInMemory(t *testing.T) {
	pop := testPopulation(t, 3000)
	const nv = 4096
	const leafSize = 512

	// In-memory window.
	telMem := New(pop.Config().Darkspace, "arch-key", WithLeafSize(leafSize))
	wMem, err := telMem.CaptureWindow(pop.TelescopeStream(4, time.Unix(0, 0)), nv)
	if err != nil {
		t.Fatal(err)
	}

	// Archived window with the same anonymization key.
	dir := t.TempDir()
	aw, err := archive.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	telArc := New(pop.Config().Darkspace, "arch-key", WithLeafSize(leafSize))
	valid, dropped, err := telArc.CaptureToArchive(pop.TelescopeStream(4, time.Unix(0, 0)), nv, aw)
	if err != nil {
		t.Fatal(err)
	}
	if valid != wMem.NV || dropped != wMem.Dropped {
		t.Fatalf("archived %d/%d vs in-memory %d/%d", valid, dropped, wMem.NV, wMem.Dropped)
	}
	if err := aw.Finish(); err != nil {
		t.Fatal(err)
	}
	if aw.Leaves() != nv/leafSize {
		t.Errorf("leaves = %d, want %d", aw.Leaves(), nv/leafSize)
	}

	ds, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.SumAll(4)
	if err != nil {
		t.Fatal(err)
	}
	if !hypersparse.Equal(got, wMem.Matrix) {
		t.Error("archived window differs from in-memory window")
	}
	// Leaves are time ordered because capture is sequential.
	if !ds.SortedByTime() {
		t.Error("archive leaves not time ordered")
	}
}

func TestCaptureToArchivePartialLeaf(t *testing.T) {
	pop := testPopulation(t, 1000)
	dir := t.TempDir()
	aw, _ := archive.Create(dir)
	tel := New(pop.Config().Darkspace, "partial-key", WithLeafSize(1000))
	valid, _, err := tel.CaptureToArchive(pop.TelescopeStream(4, time.Unix(0, 0)), 1500, aw)
	if err != nil {
		t.Fatal(err)
	}
	if valid != 1500 {
		t.Fatalf("valid = %d", valid)
	}
	if err := aw.Finish(); err != nil {
		t.Fatal(err)
	}
	ds, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Leaves()) != 2 {
		t.Fatalf("leaves = %d, want 2 (one full + one partial)", len(ds.Leaves()))
	}
	if ds.TotalPackets() != 1500 {
		t.Errorf("archived packets = %d", ds.TotalPackets())
	}
}
