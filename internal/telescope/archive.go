package telescope

import (
	"time"

	"repro/internal/archive"
	"repro/internal/hypersparse"
	"repro/internal/pcap"
)

// archive.go connects capture to the on-disk archive: instead of merging
// leaves in memory, CaptureToArchive streams each completed leaf matrix
// to an archive.Writer, the way the paper's deployment lands 2^17-packet
// anonymized leaf matrices in the LBNL archive for later hierarchical
// summation.

// CaptureToArchive reads up to nv valid packets from src, cutting an
// anonymized leaf matrix every leafSize packets and appending each to
// the archive writer. It returns the number of valid packets archived
// and the number dropped by the validity filter. The caller owns calling
// aw.Finish.
//
// One triple-buffer builder serves the whole capture: Build resets it
// with retained capacity, so every leaf after the first compiles without
// growing the buffers (the map-based builder this replaces allocated a
// fresh map per leaf).
func (t *Telescope) CaptureToArchive(src PacketSource, nv int, aw *archive.Writer) (valid, dropped int, err error) {
	builder := hypersparse.NewBuilder(t.leafSize)
	inLeaf := 0
	var leafStart, leafEnd time.Time

	flush := func() error {
		if inLeaf == 0 {
			return nil
		}
		if err := aw.AppendLeaf(builder.Build(), leafStart, leafEnd); err != nil {
			return err
		}
		inLeaf = 0
		return nil
	}

	var pkt pcap.Packet
	for valid < nv && src.Next(&pkt) {
		if !t.Valid(&pkt) {
			dropped++
			continue
		}
		if inLeaf == 0 {
			leafStart = pkt.Time
		}
		leafEnd = pkt.Time
		arow := t.anon.Anonymize(pkt.Src)
		acol := t.anon.Anonymize(pkt.Dst)
		builder.Add(uint32(arow), uint32(acol), 1)
		valid++
		inLeaf++
		if inLeaf == t.leafSize {
			if err := flush(); err != nil {
				return valid, dropped, err
			}
		}
	}
	if err := flush(); err != nil {
		return valid, dropped, err
	}
	t.revCache = nil
	if rs, ok := src.(*ReaderSource); ok && rs.Err() != nil {
		return valid, dropped, rs.Err()
	}
	return valid, dropped, nil
}
