package telescope

import (
	"testing"
	"time"

	"repro/internal/assoc"
	"repro/internal/radiation"
	"repro/internal/stats"
	"repro/internal/tripled"
)

// TestPublishFetchSourceTableRoundTrip pushes a captured window's D4M
// source table through a tripled server and back: the fetched table
// must be identical to SourceTable's output, including exact float
// packet counts.
func TestPublishFetchSourceTableRoundTrip(t *testing.T) {
	cfg := radiation.DefaultConfig()
	cfg.NumSources = 1500
	cfg.ZM = stats.PaperZM(1 << 9)
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tel := New(cfg.Darkspace, "publish-key", WithLeafSize(1<<9))
	w, err := tel.CaptureWindow(pop.TelescopeStream(3, time.Unix(0, 0)), 2048)
	if err != nil {
		t.Fatal(err)
	}
	want := tel.SourceTable(w)

	srv, err := tripled.Serve(tripled.NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := tripled.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const label = "20200617-120000"
	if err := tel.PublishSourceTable(c, label, w); err != nil {
		t.Fatal(err)
	}
	back, err := FetchSourceTable(c, label)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != want.NNZ() || back.NRows() != want.NRows() {
		t.Fatalf("fetched table %d rows / %d cells, want %d / %d",
			back.NRows(), back.NNZ(), want.NRows(), want.NNZ())
	}
	want.Iterate(func(r, col string, v assoc.Value) bool {
		if got, ok := back.Get(r, col); !ok || got != v {
			t.Errorf("cell (%s,%s) = %v, want %v", r, col, got, v)
		}
		return true
	})
}
