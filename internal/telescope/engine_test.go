package telescope

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/hypersparse"
	"repro/internal/pcap"
	"repro/internal/radiation"
	"repro/internal/stats"
)

// TestEngineCaptureMatchesSerial verifies the engine-backed capture is
// indistinguishable from the classic serial build at every boundary:
// exact anonymized matrix equality, window bounds, and the deanonymized
// D4M source table.
func TestEngineCaptureMatchesSerial(t *testing.T) {
	cfg := radiation.DefaultConfig()
	cfg.NumSources = 3000
	cfg.ZM = stats.PaperZM(1 << 10)
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const nv = 4096
	type capture struct {
		win   *Window
		table map[string]float64
	}
	run := func(workers int) capture {
		tel := New(cfg.Darkspace, "engine-key", WithLeafSize(1<<9))
		var win *Window
		var err error
		src := pop.TelescopeStream(3, time.Unix(0, 0))
		if workers == 0 {
			win, err = tel.CaptureWindow(src, nv)
		} else {
			win, err = tel.CaptureWindowEngine(context.Background(), src, nv, workers, 256)
		}
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]float64)
		table := tel.SourceTable(win)
		for _, row := range table.RowKeys() {
			v, _ := table.Get(row, "packets")
			out[row] = v.Num
		}
		return capture{win: win, table: out}
	}

	classic := run(0)
	for _, workers := range []int{1, 2, 8} {
		got := run(workers)
		if got.win.NV != classic.win.NV || got.win.Dropped != classic.win.Dropped {
			t.Fatalf("workers=%d: NV/Dropped %d/%d, want %d/%d",
				workers, got.win.NV, got.win.Dropped, classic.win.NV, classic.win.Dropped)
		}
		if !got.win.Start.Equal(classic.win.Start) || !got.win.End.Equal(classic.win.End) {
			t.Fatalf("workers=%d: window bounds differ", workers)
		}
		if !hypersparse.Equal(got.win.Matrix, classic.win.Matrix) {
			t.Fatalf("workers=%d: engine matrix differs from serial", workers)
		}
		if len(got.table) != len(classic.table) {
			t.Fatalf("workers=%d: table sizes differ: %d vs %d", workers, len(got.table), len(classic.table))
		}
		for k, v := range classic.table {
			if got.table[k] != v {
				t.Fatalf("workers=%d: row %s = %g, want %g", workers, k, got.table[k], v)
			}
		}
	}
}

// TestEngineSourceTableFresh verifies the reverse-anonymization memo is
// invalidated by an engine capture, so the D4M table covers every
// matrix row.
func TestEngineSourceTableFresh(t *testing.T) {
	pop := testPopulation(t, 1000)
	tel := New(pop.Config().Darkspace, "table-key")
	w, err := tel.CaptureWindowEngine(context.Background(), pop.TelescopeStream(4, time.Unix(0, 0)), 2048, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	table := tel.SourceTable(w)
	if table.NRows() != w.Matrix.NRows() {
		t.Fatalf("table rows %d != matrix rows %d (reverse cache stale?)",
			table.NRows(), w.Matrix.NRows())
	}
	var sum float64
	for _, row := range table.RowKeys() {
		v, _ := table.Get(row, "packets")
		sum += v.Num
	}
	if sum != float64(w.NV) {
		t.Errorf("table total %g != NV %d", sum, w.NV)
	}
}

func TestEngineRejectsBadNV(t *testing.T) {
	tel := New(radiation.DefaultConfig().Darkspace, "bad")
	if _, err := tel.CaptureWindowEngine(context.Background(), nil, 0, 4, 0); err == nil {
		t.Error("NV=0 accepted")
	}
}

func TestEngineShortStream(t *testing.T) {
	pop := testPopulation(t, 200)
	tel := New(pop.Config().Darkspace, "short-eng")
	w, err := tel.CaptureWindowEngine(context.Background(), pop.TelescopeStream(4, time.Unix(0, 0)), 1<<30, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.NV == 0 {
		t.Fatal("captured nothing")
	}
	if w.Matrix.Sum() != float64(w.NV) {
		t.Error("NV not conserved on short stream")
	}
}

// TestEngineCaptureCancel verifies a telescope capture can be abandoned
// mid-window.
func TestEngineCaptureCancel(t *testing.T) {
	cfg := radiation.DefaultConfig()
	cfg.NumSources = 3000
	cfg.ZM = stats.PaperZM(1 << 10)
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tel := New(cfg.Darkspace, "cancel-key", WithLeafSize(1<<8))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tel.CaptureWindowEngine(ctx, pop.TelescopeStream(3, time.Unix(0, 0)), 1<<20, 4, 0); err == nil {
		t.Error("cancelled capture succeeded")
	}
}

// TestEngineReaderSourceMatchesSerial is the wire-format slab path end
// to end: radiation -> pcap file -> batched reader (ReaderSource
// satisfies the engine's BatchSource, so the engine pulls whole decoded
// slabs) -> sharded engine with in-worker filtering and batched
// CryptoPAN -> window. It must match the classic serial capture over a
// fresh reader of the same bytes exactly.
func TestEngineReaderSourceMatchesSerial(t *testing.T) {
	pop := testPopulation(t, 800)
	st := pop.TelescopeStream(4, time.Unix(1_592_395_200, 0))
	var buf bytes.Buffer
	pw, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var pkt pcap.Packet
	for emitted := 0; st.Next(&pkt) && emitted < 5000; emitted++ {
		if err := pw.WritePacket(&pkt); err != nil {
			t.Fatal(err)
		}
	}
	pw.Flush()
	read := func() *ReaderSource {
		pr, err := pcap.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return &ReaderSource{R: pr}
	}

	const nv = 2000
	classicTel := New(pop.Config().Darkspace, "pcap-engine")
	classic, err := classicTel.CaptureWindow(read(), nv)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		tel := New(pop.Config().Darkspace, "pcap-engine")
		w, err := tel.CaptureWindowEngine(context.Background(), read(), nv, workers, 128)
		if err != nil {
			t.Fatal(err)
		}
		if w.NV != classic.NV || w.Dropped != classic.Dropped ||
			!w.Start.Equal(classic.Start) || !w.End.Equal(classic.End) {
			t.Fatalf("workers=%d: window %d/%d [%v, %v], want %d/%d [%v, %v]",
				workers, w.NV, w.Dropped, w.Start, w.End,
				classic.NV, classic.Dropped, classic.Start, classic.End)
		}
		if !hypersparse.Equal(w.Matrix, classic.Matrix) {
			t.Fatalf("workers=%d: matrix differs from serial pcap capture", workers)
		}
	}
}

// TestEngineReaderSourceTruncated verifies a mid-stream pcap decode
// error surfaces from the batched engine path (through the deferred
// NextBatch error and the Errorer hook), not silently as a short
// window.
func TestEngineReaderSourceTruncated(t *testing.T) {
	pop := testPopulation(t, 500)
	st := pop.TelescopeStream(4, time.Unix(1_592_395_200, 0))
	var buf bytes.Buffer
	pw, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var pkt pcap.Packet
	for emitted := 0; st.Next(&pkt) && emitted < 2000; emitted++ {
		if err := pw.WritePacket(&pkt); err != nil {
			t.Fatal(err)
		}
	}
	pw.Flush()
	data := buf.Bytes()[:buf.Len()-5] // cut the last record's body
	pr, err := pcap.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	tel := New(pop.Config().Darkspace, "truncated-engine")
	if _, err := tel.CaptureWindowEngine(context.Background(), &ReaderSource{R: pr}, 1<<20, 4, 0); err == nil {
		t.Fatal("truncated pcap capture succeeded")
	}
}

func BenchmarkCaptureSerial(b *testing.B) {
	benchCapture(b, func(tel *Telescope, src PacketSource, nv int) (*Window, error) {
		return tel.CaptureWindow(src, nv)
	})
}

func BenchmarkCaptureEngine(b *testing.B) {
	benchCapture(b, func(tel *Telescope, src PacketSource, nv int) (*Window, error) {
		return tel.CaptureWindowEngine(context.Background(), src, nv, 0, 0)
	})
}

func benchCapture(b *testing.B, capture func(*Telescope, PacketSource, int) (*Window, error)) {
	b.Helper()
	c := radiation.DefaultConfig()
	c.NumSources = 50000
	pop, err := radiation.NewPopulation(c)
	if err != nil {
		b.Fatal(err)
	}
	const nv = 1 << 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel := New(c.Darkspace, "bench-key", WithLeafSize(1<<12))
		w, err := capture(tel, pop.TelescopeStream(4.5, time.Unix(0, 0)), nv)
		if err != nil {
			b.Fatal(err)
		}
		if w.NV != nv {
			b.Fatalf("short window %d", w.NV)
		}
	}
}
