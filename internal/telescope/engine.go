package telescope

// engine.go plugs the telescope into the sharded streaming window
// engine: the validity filter and the CryptoPAN mapping both run on the
// engine's shard workers — each worker filters its chunk of the slab,
// then anonymizes the survivors' addresses as one batch through its own
// L1 memo (misses fall through to the shared sharded cache in a single
// lock epoch per cache shard, with prefix-shared AES walks) — and the
// engine's merge tree produces the window matrix. Workers=1 is the
// serial degenerate path, byte-identical to CaptureWindow's output.

import (
	"context"

	"repro/internal/cryptopan"
	"repro/internal/engine"
	"repro/internal/ipaddr"
	"repro/internal/pcap"
)

// shardAnon is one shard worker's persistent anonymization state: the
// L1 memo in front of the telescope's shared cache, plus the address
// slab the mapper gathers packet endpoints into. Both are reused across
// captures (Telescope runs one capture at a time), so steady-state
// mapping allocates nothing.
type shardAnon struct {
	l1    *cryptopan.L1
	addrs []ipaddr.Addr
}

// Engine returns a window engine wired to this telescope's validity
// filter, anonymizer, and leaf size. workers and batch follow
// engine.Config semantics (<= 0 picks defaults). Each shard worker maps
// whole accepted-packet slabs at a time: it gathers the slab's source
// and destination addresses and anonymizes them in one batched call
// through its own L1 memo, so hot (heavy-tailed) addresses cost one
// lock-free array probe and cold slabs pay one lock epoch per touched
// cache shard instead of two lock round-trips per packet.
//
// Engines are cached per (workers, batch) and reused across captures,
// so the engine's pooled shard accumulators and slab buffers — and the
// per-shard L1 memos — stay warm from one window to the next. This is
// covered by the Telescope's one-capture-at-a-time contract.
func (t *Telescope) Engine(workers, batch int) (*engine.Engine, error) {
	t.poolMu.Lock()
	if eng, ok := t.engines[[2]int{workers, batch}]; ok {
		t.poolMu.Unlock()
		return eng, nil
	}
	t.poolMu.Unlock()
	eng, err := engine.NewPerWorkerSlab(
		engine.Config{Workers: workers, LeafSize: t.leafSize, Batch: batch},
		t.Valid,
		func(shard int) engine.SlabMapper {
			sa := t.shardAnon(shard)
			return func(pkts []pcap.Packet, dst []engine.Pair) {
				addrs := sa.addrs[:0]
				for i := range pkts {
					addrs = append(addrs, pkts[i].Src, pkts[i].Dst)
				}
				sa.l1.AnonymizeBatch(addrs)
				for i := range pkts {
					dst[i] = engine.Pair{
						Row: uint32(addrs[2*i]),
						Col: uint32(addrs[2*i+1]),
					}
				}
				sa.addrs = addrs
			}
		})
	if err != nil {
		return nil, err
	}
	t.poolMu.Lock()
	t.engines[[2]int{workers, batch}] = eng
	t.poolMu.Unlock()
	return eng, nil
}

// shardAnon returns the given shard's anonymization state, creating it
// on first use. L1 entries memoize the telescope's fixed anonymizer, so
// reusing them across captures is safe and keeps hot addresses warm from
// one window to the next; the one-capture-at-a-time contract on
// Telescope guarantees a shard's state is only ever driven by one
// goroutine at a time.
func (t *Telescope) shardAnon(shard int) *shardAnon {
	t.poolMu.Lock()
	defer t.poolMu.Unlock()
	sa := t.shards[shard]
	if sa == nil {
		sa = &shardAnon{l1: t.anon.NewL1()}
		t.shards[shard] = sa
	}
	return sa
}

// CaptureWindowEngine captures a constant-packet window through the
// sharded streaming engine. It produces the same Window as
// CaptureWindow — the matrix is a sum of the same anonymized triples,
// only leaf boundaries differ — with backpressure-bounded memory and
// context cancellation.
func (t *Telescope) CaptureWindowEngine(ctx context.Context, src PacketSource, nv, workers, batch int) (*Window, error) {
	eng, err := t.Engine(workers, batch)
	if err != nil {
		return nil, err
	}
	ew, err := eng.CaptureWindow(ctx, src, nv)
	// Capture grows the anonymization table either way; drop the memo.
	t.revCache = nil
	if err != nil {
		return nil, err
	}
	// Source errors (e.g. a truncated pcap) surface through the engine's
	// Errorer hook, which ReaderSource satisfies.
	return &Window{
		Start: ew.Start, End: ew.End,
		NV: ew.NV, Dropped: ew.Dropped, Leaves: ew.Leaves,
		Matrix: ew.Matrix,
	}, nil
}
