package telescope

// engine.go plugs the telescope into the sharded streaming window
// engine: the validity filter runs on the engine's reader goroutine, the
// CryptoPAN mapper runs on the shard workers (the cache is sharded and
// concurrency safe, so repeated addresses cost one AES walk regardless
// of worker count), and the engine's merge tree produces the window
// matrix. Workers=1 is the serial degenerate path, byte-identical to
// CaptureWindow's output.

import (
	"context"

	"repro/internal/cryptopan"
	"repro/internal/engine"
	"repro/internal/pcap"
)

// Engine returns a window engine wired to this telescope's validity
// filter, anonymizer, and leaf size. workers and batch follow
// engine.Config semantics (<= 0 picks defaults). Each shard worker maps
// through its own L1 anonymization memo in front of the telescope's
// shared sharded cache, so hot (heavy-tailed) addresses cost one
// lock-free array probe per packet.
//
// Engines are cached per (workers, batch) and reused across captures,
// so the engine's pooled shard accumulators and batch buffers — and the
// per-shard L1 memos — stay warm from one window to the next. This is
// covered by the Telescope's one-capture-at-a-time contract.
func (t *Telescope) Engine(workers, batch int) (*engine.Engine, error) {
	t.poolMu.Lock()
	if eng, ok := t.engines[[2]int{workers, batch}]; ok {
		t.poolMu.Unlock()
		return eng, nil
	}
	t.poolMu.Unlock()
	eng, err := engine.NewPerWorker(
		engine.Config{Workers: workers, LeafSize: t.leafSize, Batch: batch},
		t.Valid,
		func(shard int) engine.Mapper {
			l1 := t.shardL1(shard)
			return func(p *pcap.Packet) engine.Pair {
				return engine.Pair{
					Row: uint32(l1.Anonymize(p.Src)),
					Col: uint32(l1.Anonymize(p.Dst)),
				}
			}
		})
	if err != nil {
		return nil, err
	}
	t.poolMu.Lock()
	t.engines[[2]int{workers, batch}] = eng
	t.poolMu.Unlock()
	return eng, nil
}

// shardL1 returns the given shard's L1 anonymization memo, creating it
// on first use. L1 entries memoize the telescope's fixed anonymizer, so
// reusing them across captures is safe and keeps hot addresses warm from
// one window to the next; the one-capture-at-a-time contract on
// Telescope guarantees a shard's L1 is only ever driven by one goroutine
// at a time.
func (t *Telescope) shardL1(shard int) *cryptopan.L1 {
	t.poolMu.Lock()
	defer t.poolMu.Unlock()
	l1 := t.l1s[shard]
	if l1 == nil {
		l1 = t.anon.NewL1()
		t.l1s[shard] = l1
	}
	return l1
}

// CaptureWindowEngine captures a constant-packet window through the
// sharded streaming engine. It produces the same Window as
// CaptureWindow — the matrix is a sum of the same anonymized triples,
// only leaf boundaries differ — with backpressure-bounded memory and
// context cancellation.
func (t *Telescope) CaptureWindowEngine(ctx context.Context, src PacketSource, nv, workers, batch int) (*Window, error) {
	eng, err := t.Engine(workers, batch)
	if err != nil {
		return nil, err
	}
	ew, err := eng.CaptureWindow(ctx, src, nv)
	// Capture grows the anonymization table either way; drop the memo.
	t.revCache = nil
	if err != nil {
		return nil, err
	}
	// Source errors (e.g. a truncated pcap) surface through the engine's
	// Errorer hook, which ReaderSource satisfies.
	return &Window{
		Start: ew.Start, End: ew.End,
		NV: ew.NV, Dropped: ew.Dropped, Leaves: ew.Leaves,
		Matrix: ew.Matrix,
	}, nil
}
