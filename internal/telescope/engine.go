package telescope

// engine.go plugs the telescope into the sharded streaming window
// engine: the validity filter runs on the engine's reader goroutine, the
// CryptoPAN mapper runs on the shard workers (the cache is sharded and
// concurrency safe, so repeated addresses cost one AES walk regardless
// of worker count), and the engine's merge tree produces the window
// matrix. Workers=1 is the serial degenerate path, byte-identical to
// CaptureWindow's output.

import (
	"context"

	"repro/internal/engine"
	"repro/internal/pcap"
)

// Engine returns a window engine wired to this telescope's validity
// filter, anonymizer, and leaf size. workers and batch follow
// engine.Config semantics (<= 0 picks defaults).
func (t *Telescope) Engine(workers, batch int) (*engine.Engine, error) {
	return engine.New(
		engine.Config{Workers: workers, LeafSize: t.leafSize, Batch: batch},
		t.Valid,
		func(p *pcap.Packet) engine.Pair {
			return engine.Pair{
				Row: uint32(t.anon.Anonymize(p.Src)),
				Col: uint32(t.anon.Anonymize(p.Dst)),
			}
		})
}

// CaptureWindowEngine captures a constant-packet window through the
// sharded streaming engine. It produces the same Window as
// CaptureWindow — the matrix is a sum of the same anonymized triples,
// only leaf boundaries differ — with backpressure-bounded memory and
// context cancellation.
func (t *Telescope) CaptureWindowEngine(ctx context.Context, src PacketSource, nv, workers, batch int) (*Window, error) {
	eng, err := t.Engine(workers, batch)
	if err != nil {
		return nil, err
	}
	ew, err := eng.CaptureWindow(ctx, src, nv)
	// Capture grows the anonymization table either way; drop the memo.
	t.revCache = nil
	if err != nil {
		return nil, err
	}
	// Source errors (e.g. a truncated pcap) surface through the engine's
	// Errorer hook, which ReaderSource satisfies.
	return &Window{
		Start: ew.Start, End: ew.End,
		NV: ew.NV, Dropped: ew.Dropped, Leaves: ew.Leaves,
		Matrix: ew.Matrix,
	}, nil
}
