package scenario

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyYAML is a scenario small enough to run in milliseconds; tests
// that exercise the runner append assertions to it.
const tinyYAML = `name: tiny
case: Z99999
config:
  scale: quick
  nv: 512
  leaf_size: 128
  sources: 2000
  months: 3
  snapshot_months: [0.5]
`

func writeScenario(t *testing.T, name, content string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadFailureModes sweeps the loader's negative paths: malformed
// YAML and schema violations must surface as the right sentinel with a
// message naming the problem, never load as a runnable scenario.
func TestLoadFailureModes(t *testing.T) {
	cases := []struct {
		name string
		yaml string
		want error
		msg  string // substring the error must carry
	}{
		{"malformed yaml", "name: x\n\tbad tab", ErrParse, "tab"},
		{"unterminated quote", `name: "x`, ErrParse, "unterminated"},
		{"non-mapping top level", "- a\n- b", ErrSchema, "mapping"},
		{"unknown top-level key", "name: x\ncase: Z1\nbogus: 1\nassert:\n  - windows:\n", ErrSchema, "bogus"},
		{"missing name", "case: Z1\nassert:\n  - windows:\n", ErrSchema, "name"},
		{"missing case", "name: x\nassert:\n  - windows:\n", ErrSchema, "case"},
		{"no assertions", "name: x\ncase: Z1\n", ErrSchema, "assertion"},
		{"unknown config key", "name: x\ncase: Z1\nconfig:\n  frobnicate: 3\nassert:\n  - windows:\n", ErrSchema, "frobnicate"},
		{"bad scale", "name: x\ncase: Z1\nconfig:\n  scale: enormous\nassert:\n  - windows:\n", ErrSchema, "scale"},
		{"unknown radiation key", "name: x\ncase: Z1\nconfig:\n  radiation:\n    warp: 9\nassert:\n  - windows:\n", ErrSchema, "warp"},
		{"unknown archetype", "name: x\ncase: Z1\nconfig:\n  radiation:\n    mix: {gremlin: 1}\nassert:\n  - windows:\n", ErrSchema, "gremlin"},
		{"unknown assertion kind", "name: x\ncase: Z1\nassert:\n  - frob: {min: 1}\n", ErrSchema, "frob"},
		{"unknown assertion param", "name: x\ncase: Z1\nassert:\n  - fig3_alpha: {min: 1, spin: 2}\n", ErrSchema, "spin"},
		{"unknown table2 quantity", "name: x\ncase: Z1\nassert:\n  - table2: {quantity: hats, min: 1}\n", ErrSchema, "quantity"},
		{"value without tolerance", "name: x\ncase: Z1\nassert:\n  - fig3_alpha: {value: 1.76}\n", ErrSchema, "tol"},
		{"no bound at all", "name: x\ncase: Z1\nassert:\n  - fig3_alpha:\n", ErrSchema, "bound"},
		{"unknown golden artifact", "name: x\ncase: Z1\nassert:\n  - golden: {artifact: fig9, file: f.tsv}\n", ErrSchema, "fig9"},
		{"invalid config rejected", "name: x\ncase: Z1\nconfig:\n  sources: -5\nassert:\n  - windows:\n", ErrSchema, "NumSources"},
		{"bad snapshot month", "name: x\ncase: Z1\nconfig:\n  snapshot_months: [99]\nassert:\n  - windows:\n", ErrSchema, "snapshot"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeScenario(t, "bad.yaml", tc.yaml)
			_, err := Load(path)
			if err == nil {
				t.Fatalf("loaded invalid scenario:\n%s", tc.yaml)
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("error %v, want sentinel %v", err, tc.want)
			}
			if !strings.Contains(err.Error(), tc.msg) {
				t.Errorf("error %q does not name %q", err, tc.msg)
			}
			// The two sentinels are mutually exclusive failure classes.
			other := ErrSchema
			if tc.want == ErrSchema {
				other = ErrParse
			}
			if errors.Is(err, other) {
				t.Errorf("error %v matches both sentinels", err)
			}
		})
	}
}

func TestLoadDirRejectsDuplicateNames(t *testing.T) {
	dir := t.TempDir()
	doc := tinyYAML + "assert:\n  - windows:\n"
	for _, f := range []string{"a.yaml", "b.yaml"} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, err := LoadDir(dir)
	if !errors.Is(err, ErrSchema) || !strings.Contains(err.Error(), "already used") {
		t.Fatalf("duplicate names gave %v", err)
	}
}

func TestLoadDirEmpty(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); !errors.Is(err, ErrSchema) {
		t.Fatalf("empty dir gave %v", err)
	}
}

// TestRunToleranceMiss pins the acceptance contract: corrupting one
// expected value fails the run with a record naming the scenario and
// the offending assertion, while the honest sibling value passes.
func TestRunToleranceMiss(t *testing.T) {
	doc := tinyYAML + `assert:
  - windows: {max_dropped_frac: 0.9}
  - table2: {quantity: valid_packets, equals: 511}
`
	sc, err := Load(writeScenario(t, "miss.yaml", doc))
	if err != nil {
		t.Fatal(err)
	}
	r := Run(context.Background(), sc)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Passed() {
		t.Fatal("corrupted expected value passed")
	}
	failed := r.FailedChecks()
	if len(failed) != 1 {
		t.Fatalf("failed checks = %+v, want exactly the corrupted one", failed)
	}
	if failed[0].Assertion != "table2.valid_packets" {
		t.Errorf("failure names %q, want table2.valid_packets", failed[0].Assertion)
	}
	if !strings.Contains(failed[0].Detail, "512") || !strings.Contains(failed[0].Detail, "511") {
		t.Errorf("detail %q does not show measured vs expected", failed[0].Detail)
	}
	if r.Checks[0].Assertion != "windows" || !r.Checks[0].Pass {
		t.Errorf("honest sibling check did not pass: %+v", r.Checks[0])
	}
}

// TestRunCancelled: a cancelled context must surface as the context's
// error on the result, not as a pass and not as a panic.
func TestRunCancelled(t *testing.T) {
	sc, err := Load(writeScenario(t, "tiny.yaml", tinyYAML+"assert:\n  - windows:\n"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := Run(ctx, sc)
	if r.Err == nil || !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("cancelled run gave err=%v", r.Err)
	}
	if r.Passed() {
		t.Error("cancelled run reported as passed")
	}
}

// TestRunAllKeepsOrderAndRecords: results stay index-aligned with the
// input and a cancelled suite still yields one record per scenario.
func TestRunAllKeepsOrderAndRecords(t *testing.T) {
	dir := t.TempDir()
	for i, name := range []string{"alpha", "beta"} {
		doc := strings.Replace(tinyYAML, "name: tiny", "name: "+name, 1)
		doc = strings.Replace(doc, "Z99999", "Z9999"+string(rune('0'+i)), 1)
		doc += "assert:\n  - windows:\n"
		if err := os.WriteFile(filepath.Join(dir, name+".yaml"), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	scs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	results := RunAll(context.Background(), scs, 2)
	if len(results) != len(scs) {
		t.Fatalf("%d results for %d scenarios", len(results), len(scs))
	}
	for i, r := range results {
		if r.Scenario != scs[i] {
			t.Errorf("result %d is for %s, want %s", i, r.Scenario.Name, scs[i].Name)
		}
		if !r.Passed() {
			t.Errorf("%s: %v %+v", r.Scenario.Name, r.Err, r.FailedChecks())
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, r := range RunAll(ctx, scs, 2) {
		if r == nil {
			t.Fatalf("cancelled suite dropped record %d", i)
		}
		if r.Err == nil {
			t.Errorf("cancelled suite: scenario %s has no error", r.Scenario.Name)
		}
	}
}
