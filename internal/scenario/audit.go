package scenario

// audit.go cross-checks docs/e2e-cases.md against reality: a `done`
// row with no Coverage cell is documentation drift (the doc claims a
// test that nothing names), and the Z-table must match the shipped
// scenario files one-to-one in both directions.

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"strings"
)

// ErrAudit marks doc-drift findings, for the CLI's distinct exit code.
var ErrAudit = errors.New("scenario: audit failure")

// AuditFinding is one machine-readable drift record.
type AuditFinding struct {
	Case    string `json:"case"` // Case ID, or the scenario name for orphans
	Problem string `json:"problem"`
}

// caseRow is one parsed row of an e2e-cases table.
type caseRow struct {
	ID, Title, Status, Coverage string
	Line                        int
}

// parseCases extracts every `| Case ID | ... |` table row from the
// markdown file, using each table's header to index the columns.
func parseCases(path string) ([]caseRow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()

	var rows []caseRow
	var cols map[string]int // current table's header index
	sc := bufio.NewScanner(f)
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "|") {
			cols = nil
			continue
		}
		cells := splitRow(line)
		if len(cells) == 0 {
			continue
		}
		if cells[0] == "Case ID" {
			cols = make(map[string]int, len(cells))
			for i, c := range cells {
				cols[c] = i
			}
			continue
		}
		if strings.HasPrefix(cells[0], "---") || strings.HasPrefix(cells[0], "-") && strings.Trim(cells[0], "- ") == "" {
			continue // separator row
		}
		if cols == nil {
			continue
		}
		get := func(name string) string {
			i, ok := cols[name]
			if !ok || i >= len(cells) {
				return ""
			}
			return cells[i]
		}
		rows = append(rows, caseRow{
			ID:       get("Case ID"),
			Title:    get("Title"),
			Status:   get("Status"),
			Coverage: get("Coverage"),
			Line:     n,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return rows, nil
}

func splitRow(line string) []string {
	parts := strings.Split(strings.Trim(line, "|"), "|")
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = strings.TrimSpace(p)
	}
	return out
}

// Audit checks the cases document against the loaded scenarios. The
// returned findings are empty when the doc and the suite agree; a
// non-nil error means the doc itself could not be read or parsed.
func Audit(casesPath string, scs []*Scenario) ([]AuditFinding, error) {
	rows, err := parseCases(casesPath)
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%w: %s: no case tables found", ErrAudit, casesPath)
	}
	var findings []AuditFinding

	byCase := map[string]caseRow{}
	for _, r := range rows {
		if r.ID == "" {
			findings = append(findings, AuditFinding{
				Case:    fmt.Sprintf("line %d", r.Line),
				Problem: "table row with empty Case ID",
			})
			continue
		}
		if _, dup := byCase[r.ID]; dup {
			findings = append(findings, AuditFinding{Case: r.ID, Problem: "duplicate Case ID"})
		}
		byCase[r.ID] = r
		// The core drift check: a row claiming coverage must name it.
		if r.Status == "done" && r.Coverage == "" {
			findings = append(findings, AuditFinding{
				Case:    r.ID,
				Problem: fmt.Sprintf("status done with empty Coverage (line %d)", r.Line),
			})
		}
	}

	// Scenario files ↔ Z-table, both directions.
	byFile := map[string]*Scenario{}
	for _, sc := range scs {
		if prev, dup := byFile[sc.Case]; dup {
			findings = append(findings, AuditFinding{
				Case:    sc.Case,
				Problem: fmt.Sprintf("claimed by both %s and %s", prev.Path, sc.Path),
			})
			continue
		}
		byFile[sc.Case] = sc
		row, ok := byCase[sc.Case]
		if !ok {
			findings = append(findings, AuditFinding{
				Case:    sc.Case,
				Problem: fmt.Sprintf("scenario %s cites a case absent from %s", sc.Name, casesPath),
			})
			continue
		}
		if row.Status != "done" {
			findings = append(findings, AuditFinding{
				Case:    sc.Case,
				Problem: fmt.Sprintf("scenario %s exists but the doc marks the case %q", sc.Name, row.Status),
			})
		}
	}
	for id, r := range byCase {
		if !strings.HasPrefix(id, "Z") {
			continue
		}
		if _, ok := byFile[id]; !ok && r.Status == "done" {
			findings = append(findings, AuditFinding{
				Case:    id,
				Problem: "done Z-case has no scenario file",
			})
		}
	}

	// Deterministic order for output and tests.
	for i := 1; i < len(findings); i++ {
		for j := i; j > 0 && findings[j].Case < findings[j-1].Case; j-- {
			findings[j], findings[j-1] = findings[j-1], findings[j]
		}
	}
	return findings, nil
}
