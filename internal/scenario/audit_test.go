package scenario

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCases(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "e2e-cases.md")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const casesHeader = `# Cases

| Case ID | Title | Priority | Smoke | Status | Coverage |
| ------- | ----- | -------- | ----- | ------ | -------- |
`

// tinyScenario loads one in-memory scenario claiming the given case ID.
func tinyScenario(t *testing.T, caseID string) *Scenario {
	t.Helper()
	doc := strings.Replace(tinyYAML, "Z99999", caseID, 1) + "assert:\n  - windows:\n"
	sc, err := Load(writeScenario(t, "s.yaml", doc))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func findingProblems(fs []AuditFinding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.Case + ": " + f.Problem + "\n")
	}
	return b.String()
}

func TestAuditDoneRowWithoutCoverage(t *testing.T) {
	path := writeCases(t, casesHeader+
		"| W00001 | Covered | p1 | smoke | done | `TestSomething` |\n"+
		"| W00002 | Drifted | p1 |  | done |  |\n"+
		"| W00003 | Planned is fine | p2 |  | planned |  |\n")
	findings, err := Audit(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Case != "W00002" {
		t.Fatalf("findings = %s, want exactly W00002's empty coverage", findingProblems(findings))
	}
	if !strings.Contains(findings[0].Problem, "Coverage") {
		t.Errorf("problem %q does not name the Coverage cell", findings[0].Problem)
	}
}

func TestAuditZTableCrossCheck(t *testing.T) {
	doc := casesHeader +
		"| Z00001 | Has a file | p1 | smoke | done | `scenarios/a.yaml` |\n" +
		"| Z00002 | No file | p1 | smoke | done | `scenarios/ghost.yaml` |\n"
	path := writeCases(t, doc)

	// Z00002 is done in the doc but no scenario ships it; the loaded
	// scenario cites Z00009, absent from the doc entirely.
	scs := []*Scenario{tinyScenario(t, "Z00001"), tinyScenario(t, "Z00009")}
	findings, err := Audit(path, scs)
	if err != nil {
		t.Fatal(err)
	}
	byCase := map[string]string{}
	for _, f := range findings {
		byCase[f.Case] = f.Problem
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %s, want Z00002 and Z00009", findingProblems(findings))
	}
	if !strings.Contains(byCase["Z00002"], "no scenario file") {
		t.Errorf("Z00002 problem = %q", byCase["Z00002"])
	}
	if !strings.Contains(byCase["Z00009"], "absent") {
		t.Errorf("Z00009 problem = %q", byCase["Z00009"])
	}
}

func TestAuditStatusMismatchAndDuplicates(t *testing.T) {
	doc := casesHeader +
		"| Z00001 | Planned but shipped | p1 |  | planned |  |\n" +
		"| Z00001 | Duplicate ID | p1 |  | planned |  |\n"
	path := writeCases(t, doc)
	findings, err := Audit(path, []*Scenario{tinyScenario(t, "Z00001")})
	if err != nil {
		t.Fatal(err)
	}
	all := findingProblems(findings)
	if !strings.Contains(all, "duplicate") {
		t.Errorf("no duplicate-ID finding in %s", all)
	}
	if !strings.Contains(all, `"planned"`) {
		t.Errorf("no status-mismatch finding in %s", all)
	}
}

func TestAuditCleanRepoDocAgrees(t *testing.T) {
	// The real document and the real scenario suite must agree — the
	// same check CI runs via `scenarios -audit`.
	scs, err := LoadDir(filepath.Join("..", "..", "scenarios"))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Audit(filepath.Join("..", "..", "docs", "e2e-cases.md"), scs)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("repo doc drift:\n%s", findingProblems(findings))
	}
}

func TestAuditMissingDoc(t *testing.T) {
	if _, err := Audit(filepath.Join(t.TempDir(), "nope.md"), nil); err == nil {
		t.Fatal("missing doc accepted")
	}
}

// Guard against the scenario loader accepting the audit testdata by
// accident: tinyScenario must actually run (sanity for the fixtures
// other tests lean on).
func TestTinyScenarioRuns(t *testing.T) {
	sc := tinyScenario(t, "Z99990")
	if r := Run(context.Background(), sc); !r.Passed() {
		t.Fatalf("tiny fixture failed: err=%v checks=%+v", r.Err, r.Checks)
	}
}
