package scenario

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestParseYAMLDocument(t *testing.T) {
	src := `
# leading comment
name: census  # trailing comment
count: 42
ratio: 0.5
flag: true
nothing: null
quoted: "a: b # not a comment"
config:
  nested:
    deep: -3
  list: [1, 2.5, three]
  flow: {a: 1, b: ok}
items:
  - plain
  - table2: {quantity: valid_packets, equals: 16384}
  - name: multi
    extra: 7
`
	got, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name":    "census",
		"count":   42.0,
		"ratio":   0.5,
		"flag":    true,
		"nothing": nil,
		"quoted":  "a: b # not a comment",
		"config": map[string]any{
			"nested": map[string]any{"deep": -3.0},
			"list":   []any{1.0, 2.5, "three"},
			"flow":   map[string]any{"a": 1.0, "b": "ok"},
		},
		"items": []any{
			"plain",
			map[string]any{"table2": map[string]any{
				"quantity": "valid_packets", "equals": 16384.0,
			}},
			map[string]any{"name": "multi", "extra": 7.0},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parsed\n%#v\nwant\n%#v", got, want)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, wantLine string
	}{
		{"tab indent", "a:\n\tb: 1", "line 2"},
		{"missing colon", "a: 1\njunk", "line 2"},
		{"missing space after colon", "a:1", "line 1"},
		{"unterminated quote", `a: "open`, "line 1"},
		{"unterminated flow list", "a: [1, 2", "line 1"},
		{"unbalanced flow map", "a: {b: [1}", "line 1"},
		{"trailing comma", "a: [1, 2, ]", "line 1"},
		{"duplicate key", "a: 1\na: 2", "line 2"},
		{"sequence in mapping", "a: 1\n- b", "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.src))
			if err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
			if !errors.Is(err, ErrParse) {
				t.Errorf("error %v is not ErrParse", err)
			}
			if !strings.Contains(err.Error(), tc.wantLine) {
				t.Errorf("error %q does not carry %q", err, tc.wantLine)
			}
		})
	}
}
