package scenario

// assert.go is the expected-result engine. The "assert:" block is a
// list of single-key items; each key names a check kind and its value
// parameterizes it:
//
//	assert:
//	  - table2: {quantity: valid_packets, equals: 16384}
//	  - table2: {quantity: unique_sources, min: 800, max: 6000}
//	  - table2: {quantity: max_source_packets, value: 120, tol_frac: 0.5}
//	  - fig3_alpha: {value: 1.76, tol: 0.5}
//	  - fig4_bright_over_faint: {min_sources: 20}
//	  - fig7_alpha: {value: 1.0, tol: 1.0}
//	  - temporal_decay: {band: 4, near: 1.5, far: 5}
//	  - sources_prefix: {prefix: 240.0.0.0/4, min_frac: 0.2}
//	  - windows: {max_dropped_frac: 0.01}
//	  - golden: {artifact: table2, file: ../internal/report/testdata/table2.tsv}
//	  - store_parity: {artifacts: [table2, fig4]}
//	  - store_health: {degraded: true}
//
// Numeric comparisons accept equals (exact), value+tol (absolute
// tolerance), value+tol_frac (relative tolerance), and min/max bounds;
// at least one bound is required. Unknown kinds and unknown parameter
// keys are schema errors at load time, so a suite cannot green-run a
// check it never understood.

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/correlate"
	"repro/internal/ipaddr"
	"repro/internal/netquant"
	"repro/internal/report"
	"repro/internal/stats"
)

// Assertion is one loaded expected-result check.
type Assertion struct {
	Kind string
	run  func(e *runEnv) Check
}

// Check is one assertion's outcome.
type Check struct {
	Assertion string // kind, with discriminating detail (e.g. quantity)
	Detail    string // measured-vs-expected, human readable
	Pass      bool
}

// runEnv is what assertions evaluate against: the executed study and
// the scenario that produced it.
type runEnv struct {
	sc  *Scenario
	cfg core.Config
	res *core.Result

	// rerun executes the scenario's config with the opposite store
	// mode, for store_parity; memoized so several parity assertions
	// share one run.
	rerun func() (*core.Result, error)
}

// bound is the shared numeric comparator.
type bound struct {
	equals         *float64
	value          *float64
	tol            float64
	tolFrac        float64
	min, max       *float64
	hasTol, hasRel bool
}

func (b *bound) decode(m map[string]any, skip func(string) bool) error {
	for key, v := range m {
		if skip != nil && skip(key) {
			continue
		}
		f, ok := v.(float64)
		if !ok {
			return fmt.Errorf("%s must be a number, got %v", key, v)
		}
		switch key {
		case "equals":
			b.equals = &f
		case "value":
			b.value = &f
		case "tol":
			b.tol, b.hasTol = f, true
		case "tol_frac":
			b.tolFrac, b.hasRel = f, true
		case "min":
			b.min = &f
		case "max":
			b.max = &f
		default:
			return fmt.Errorf("unknown parameter %q", key)
		}
	}
	if b.value != nil && !b.hasTol && !b.hasRel {
		return fmt.Errorf("value requires tol or tol_frac")
	}
	if (b.hasTol || b.hasRel) && b.value == nil {
		return fmt.Errorf("tol/tol_frac require value")
	}
	if b.equals == nil && b.value == nil && b.min == nil && b.max == nil {
		return fmt.Errorf("no bound given (equals, value+tol, min, or max)")
	}
	return nil
}

// check evaluates x against the bound, returning pass and the
// expectation it was held to.
func (b *bound) check(x float64) (bool, string) {
	switch {
	case b.equals != nil:
		return x == *b.equals, fmt.Sprintf("== %g", *b.equals)
	case b.value != nil:
		tol := b.tol
		if b.hasRel {
			tol = math.Abs(*b.value) * b.tolFrac
		}
		return math.Abs(x-*b.value) <= tol, fmt.Sprintf("%g ± %g", *b.value, tol)
	}
	ok := true
	var parts []string
	if b.min != nil {
		ok = ok && x >= *b.min
		parts = append(parts, fmt.Sprintf(">= %g", *b.min))
	}
	if b.max != nil {
		ok = ok && x <= *b.max
		parts = append(parts, fmt.Sprintf("<= %g", *b.max))
	}
	return ok, strings.Join(parts, " and ")
}

// table2Quantity maps snake_case selectors to Table II fields.
var table2Quantity = map[string]func(q netquant.Quantities) float64{
	"valid_packets":       func(q netquant.Quantities) float64 { return q.ValidPackets },
	"unique_links":        func(q netquant.Quantities) float64 { return q.UniqueLinks },
	"max_link_packets":    func(q netquant.Quantities) float64 { return q.MaxLinkPackets },
	"unique_sources":      func(q netquant.Quantities) float64 { return q.UniqueSources },
	"max_source_packets":  func(q netquant.Quantities) float64 { return q.MaxSourcePackets },
	"max_source_fanout":   func(q netquant.Quantities) float64 { return q.MaxSourceFanout },
	"unique_destinations": func(q netquant.Quantities) float64 { return q.UniqueDestinations },
	"max_dest_packets":    func(q netquant.Quantities) float64 { return q.MaxDestPackets },
	"max_dest_fanin":      func(q netquant.Quantities) float64 { return q.MaxDestFanin },
}

// decodeAssertions maps the assert block to runnable checks.
func decodeAssertions(list []any, path string) ([]Assertion, error) {
	out := make([]Assertion, 0, len(list))
	for i, item := range list {
		entry, ok := item.(map[string]any)
		if !ok || len(entry) != 1 {
			return nil, schemaErrf(path, "assert[%d] must be a single-key mapping", i)
		}
		for kind, v := range entry {
			params, _ := v.(map[string]any)
			if v != nil && params == nil {
				return nil, schemaErrf(path, "assert[%d] %s: parameters must be a mapping", i, kind)
			}
			if params == nil {
				params = map[string]any{}
			}
			a, err := decodeAssertion(kind, params)
			if err != nil {
				return nil, schemaErrf(path, "assert[%d] %s: %v", i, kind, err)
			}
			out = append(out, a)
		}
	}
	return out, nil
}

func decodeAssertion(kind string, m map[string]any) (Assertion, error) {
	switch kind {
	case "table2":
		return decodeTable2(m)
	case "fig3_alpha":
		return decodeFig3Alpha(m)
	case "fig4_bright_over_faint":
		return decodeFig4Ordering(m)
	case "fig7_alpha":
		return decodeFig7Alpha(m)
	case "temporal_decay":
		return decodeTemporalDecay(m)
	case "sources_prefix":
		return decodeSourcesPrefix(m)
	case "windows":
		return decodeWindows(m)
	case "golden":
		return decodeGolden(m)
	case "store_parity":
		return decodeStoreParity(m)
	case "store_health":
		return decodeStoreHealth(m)
	default:
		return Assertion{}, fmt.Errorf("unknown assertion kind %q", kind)
	}
}

func decodeTable2(m map[string]any) (Assertion, error) {
	quantity, _ := m["quantity"].(string)
	get, ok := table2Quantity[quantity]
	if !ok {
		known := make([]string, 0, len(table2Quantity))
		for k := range table2Quantity {
			known = append(known, k)
		}
		return Assertion{}, fmt.Errorf("quantity must be one of %s", strings.Join(known, ", "))
	}
	snapshot := -1 // all
	if v, ok := m["snapshot"]; ok && v != "all" {
		if err := setInt(&snapshot, v); err != nil {
			return Assertion{}, fmt.Errorf("snapshot: %v", err)
		}
	}
	var b bound
	if err := b.decode(m, func(k string) bool { return k == "quantity" || k == "snapshot" }); err != nil {
		return Assertion{}, err
	}
	name := "table2." + quantity
	return Assertion{Kind: name, run: func(e *runEnv) Check {
		qs := e.res.TableII()
		if snapshot >= 0 {
			if snapshot >= len(qs) {
				return Check{Assertion: name, Detail: fmt.Sprintf("snapshot %d out of range (%d windows)", snapshot, len(qs))}
			}
			qs = qs[snapshot : snapshot+1]
		}
		for i, q := range qs {
			x := get(q)
			if ok, want := b.check(x); !ok {
				return Check{Assertion: name,
					Detail: fmt.Sprintf("snapshot %d: %s = %g, want %s", i, quantity, x, want)}
			}
		}
		_, want := b.check(0)
		return Check{Assertion: name, Pass: true,
			Detail: fmt.Sprintf("%s %s on %d snapshot(s)", quantity, want, len(qs))}
	}}, nil
}

func decodeFig3Alpha(m map[string]any) (Assertion, error) {
	var b bound
	if err := b.decode(m, nil); err != nil {
		return Assertion{}, err
	}
	return Assertion{Kind: "fig3_alpha", run: func(e *runEnv) Check {
		for _, s := range e.res.Fig3() {
			if ok, want := b.check(s.Alpha); !ok {
				return Check{Assertion: "fig3_alpha",
					Detail: fmt.Sprintf("snapshot %s: fitted ZM alpha = %.3f, want %s", s.Label, s.Alpha, want)}
			}
		}
		_, want := b.check(0)
		return Check{Assertion: "fig3_alpha", Pass: true,
			Detail: fmt.Sprintf("ZM alpha %s on all %d snapshots", want, len(e.res.Fig3()))}
	}}, nil
}

func decodeFig4Ordering(m map[string]any) (Assertion, error) {
	minSources := 15.0
	if v, ok := m["min_sources"]; ok {
		if err := setFloat(&minSources, v); err != nil {
			return Assertion{}, fmt.Errorf("min_sources: %v", err)
		}
	}
	for k := range m {
		if k != "min_sources" {
			return Assertion{}, fmt.Errorf("unknown parameter %q", k)
		}
	}
	return Assertion{Kind: "fig4_bright_over_faint", run: func(e *runEnv) Check {
		series, err := e.res.Fig4()
		if err != nil {
			return Check{Assertion: "fig4_bright_over_faint", Detail: err.Error()}
		}
		// Pool matched/total across snapshots on each side of the
		// brightness split; individual bright bands are thin.
		split := e.cfg.SqrtNVLog2() / 2
		var fm, ft, bm, bt int
		for _, s := range series {
			for _, p := range s.Points {
				if float64(p.Sources) < minSources {
					continue
				}
				if float64(p.Band) < split {
					fm += p.Matched
					ft += p.Sources
				} else {
					bm += p.Matched
					bt += p.Sources
				}
			}
		}
		if ft == 0 || bt == 0 {
			return Check{Assertion: "fig4_bright_over_faint",
				Detail: fmt.Sprintf("no populated bands on one side of the split (faint %d, bright %d sources)", ft, bt)}
		}
		faint, bright := float64(fm)/float64(ft), float64(bm)/float64(bt)
		return Check{Assertion: "fig4_bright_over_faint", Pass: bright > faint,
			Detail: fmt.Sprintf("bright fraction %.3f vs faint %.3f (split at band %.1f)", bright, faint, split)}
	}}, nil
}

func decodeFig7Alpha(m map[string]any) (Assertion, error) {
	var b bound
	if err := b.decode(m, nil); err != nil {
		return Assertion{}, err
	}
	return Assertion{Kind: "fig7_alpha", run: func(e *runEnv) Check {
		sum, n := 0.0, 0
		for _, sweep := range e.res.Fig7And8() {
			for _, f := range sweep {
				sum += f.Alpha
				n++
			}
		}
		if n == 0 {
			return Check{Assertion: "fig7_alpha", Detail: "no fitted bands"}
		}
		mean := sum / float64(n)
		ok, want := b.check(mean)
		return Check{Assertion: "fig7_alpha", Pass: ok,
			Detail: fmt.Sprintf("mean fitted alpha = %.3f over %d (snapshot, band) fits, want %s", mean, n, want)}
	}}, nil
}

func decodeTemporalDecay(m map[string]any) (Assertion, error) {
	band := -1
	near, far := 1.5, 5.0
	for key, v := range m {
		var err error
		switch key {
		case "band":
			err = setInt(&band, v)
		case "near":
			err = setFloat(&near, v)
		case "far":
			err = setFloat(&far, v)
		default:
			return Assertion{}, fmt.Errorf("unknown parameter %q", key)
		}
		if err != nil {
			return Assertion{}, fmt.Errorf("%s: %v", key, err)
		}
	}
	return Assertion{Kind: "temporal_decay", run: func(e *runEnv) Check {
		b := band
		if b < 0 {
			b = e.cfg.Fig5Band()
		}
		snap := e.res.Study.Snapshots[0]
		series, err := correlate.TemporalCorrelation(snap, e.res.Study.Months, b)
		if err != nil {
			return Check{Assertion: "temporal_decay", Detail: err.Error()}
		}
		var nearVals, farVals []float64
		for i, dt := range series.Dt {
			if math.Abs(dt) <= near {
				nearVals = append(nearVals, series.Fraction[i])
			} else if math.Abs(dt) >= far {
				farVals = append(farVals, series.Fraction[i])
			}
		}
		if len(nearVals) == 0 || len(farVals) == 0 {
			return Check{Assertion: "temporal_decay",
				Detail: fmt.Sprintf("degenerate split: %d near, %d far months", len(nearVals), len(farVals))}
		}
		nm, fm := stats.Summarize(nearVals).Mean, stats.Summarize(farVals).Mean
		return Check{Assertion: "temporal_decay", Pass: nm > fm,
			Detail: fmt.Sprintf("band 2^%d: near-peak mean %.3f vs far-tail mean %.3f", b, nm, fm)}
	}}, nil
}

func decodeSourcesPrefix(m map[string]any) (Assertion, error) {
	prefixStr, _ := m["prefix"].(string)
	prefix, err := ipaddr.ParsePrefix(prefixStr)
	if err != nil {
		return Assertion{}, fmt.Errorf("prefix: %v", err)
	}
	var b bound
	if err := b.decode(m, func(k string) bool { return k == "prefix" }); err != nil {
		return Assertion{}, err
	}
	name := "sources_prefix " + prefixStr
	return Assertion{Kind: name, run: func(e *runEnv) Check {
		for _, snap := range e.res.Study.Snapshots {
			rows := snap.Sources.RowKeys()
			in := 0
			for _, row := range rows {
				a, err := ipaddr.Parse(row)
				if err == nil && prefix.Contains(a) {
					in++
				}
			}
			frac := float64(in) / float64(len(rows))
			if ok, want := b.check(frac); !ok {
				return Check{Assertion: name,
					Detail: fmt.Sprintf("snapshot %s: %.3f of %d sources in %v, want %s", snap.Label, frac, len(rows), prefix, want)}
			}
		}
		_, want := b.check(0)
		return Check{Assertion: name, Pass: true,
			Detail: fmt.Sprintf("source fraction in %v %s on all snapshots", prefix, want)}
	}}, nil
}

func decodeWindows(m map[string]any) (Assertion, error) {
	maxDropped := math.Inf(1)
	conserveNV := true
	for key, v := range m {
		var err error
		switch key {
		case "max_dropped_frac":
			err = setFloat(&maxDropped, v)
		case "nv_conserved":
			b, ok := v.(bool)
			if !ok {
				err = fmt.Errorf("must be a bool")
			} else {
				conserveNV = b
			}
		default:
			return Assertion{}, fmt.Errorf("unknown parameter %q", key)
		}
		if err != nil {
			return Assertion{}, fmt.Errorf("%s: %v", key, err)
		}
	}
	return Assertion{Kind: "windows", run: func(e *runEnv) Check {
		for i, w := range e.res.Windows {
			if conserveNV && w.NV != e.cfg.NV {
				return Check{Assertion: "windows",
					Detail: fmt.Sprintf("window %d: NV = %d, want %d", i, w.NV, e.cfg.NV)}
			}
			frac := float64(w.Dropped) / float64(w.NV+w.Dropped)
			if frac > maxDropped {
				return Check{Assertion: "windows",
					Detail: fmt.Sprintf("window %d: dropped fraction %.4f > %.4f", i, frac, maxDropped)}
			}
		}
		return Check{Assertion: "windows", Pass: true,
			Detail: fmt.Sprintf("%d windows conserve NV=%d", len(e.res.Windows), e.cfg.NV)}
	}}, nil
}

func decodeGolden(m map[string]any) (Assertion, error) {
	artifact, _ := m["artifact"].(string)
	file, _ := m["file"].(string)
	if artifact == "" || file == "" {
		return Assertion{}, fmt.Errorf("artifact and file are required")
	}
	for k := range m {
		if k != "artifact" && k != "file" {
			return Assertion{}, fmt.Errorf("unknown parameter %q", k)
		}
	}
	id := report.ArtifactID(artifact)
	known := false
	for _, a := range report.All() {
		if a == id {
			known = true
		}
	}
	if !known {
		return Assertion{}, fmt.Errorf("unknown artifact %q", artifact)
	}
	name := "golden " + artifact
	return Assertion{Kind: name, run: func(e *runEnv) Check {
		path := file
		if !filepath.IsAbs(path) {
			path = filepath.Join(filepath.Dir(e.sc.Path), file)
		}
		want, err := os.ReadFile(path)
		if err != nil {
			return Check{Assertion: name, Detail: err.Error()}
		}
		var got bytes.Buffer
		if err := report.WriteTSV(&got, e.res.Report(), id); err != nil {
			return Check{Assertion: name, Detail: err.Error()}
		}
		if !bytes.Equal(got.Bytes(), want) {
			return Check{Assertion: name,
				Detail: fmt.Sprintf("%s render differs from golden %s (%d vs %d bytes)", artifact, file, got.Len(), len(want))}
		}
		return Check{Assertion: name, Pass: true,
			Detail: fmt.Sprintf("%s byte-identical to %s", artifact, file)}
	}}, nil
}

func decodeStoreParity(m map[string]any) (Assertion, error) {
	ids := report.All()
	if v, ok := m["artifacts"]; ok {
		list, ok := v.([]any)
		if !ok {
			return Assertion{}, fmt.Errorf("artifacts must be a list")
		}
		ids = nil
		for _, it := range list {
			s, _ := it.(string)
			id := report.ArtifactID(s)
			known := false
			for _, a := range report.All() {
				if a == id {
					known = true
				}
			}
			if !known {
				return Assertion{}, fmt.Errorf("unknown artifact %q", it)
			}
			ids = append(ids, id)
		}
	}
	for k := range m {
		if k != "artifacts" {
			return Assertion{}, fmt.Errorf("unknown parameter %q", k)
		}
	}
	return Assertion{Kind: "store_parity", run: func(e *runEnv) Check {
		other, err := e.rerun()
		if err != nil {
			return Check{Assertion: "store_parity", Detail: fmt.Sprintf("opposite-store run: %v", err)}
		}
		for _, id := range ids {
			var a, b bytes.Buffer
			if err := report.WriteTSV(&a, e.res.Report(), id); err != nil {
				return Check{Assertion: "store_parity", Detail: err.Error()}
			}
			if err := report.WriteTSV(&b, other.Report(), id); err != nil {
				return Check{Assertion: "store_parity", Detail: err.Error()}
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				return Check{Assertion: "store_parity",
					Detail: fmt.Sprintf("%s differs between store-backed and in-memory runs", id)}
			}
		}
		return Check{Assertion: "store_parity", Pass: true,
			Detail: fmt.Sprintf("%d artifacts byte-identical across store modes", len(ids))}
	}}, nil
}

// decodeStoreHealth asserts the run's recorded store health — the
// failover scenario uses {degraded: true} to prove the injected
// replica loss actually fired (a parity pass with a fault that never
// landed would test nothing).
func decodeStoreHealth(m map[string]any) (Assertion, error) {
	v, ok := m["degraded"]
	if !ok {
		return Assertion{}, fmt.Errorf("degraded (true/false) is required")
	}
	want, ok := v.(bool)
	if !ok {
		return Assertion{}, fmt.Errorf("degraded must be a bool, got %v", v)
	}
	for k := range m {
		if k != "degraded" {
			return Assertion{}, fmt.Errorf("unknown parameter %q", k)
		}
	}
	return Assertion{Kind: "store_health", run: func(e *runEnv) Check {
		h := e.res.StoreHealth
		if h.Degraded != want {
			return Check{Assertion: "store_health",
				Detail: fmt.Sprintf("degraded = %v (down: %v), want %v", h.Degraded, h.DownNodes, want)}
		}
		detail := "store ran clean"
		if want {
			detail = fmt.Sprintf("store degraded as injected (down: %d node(s), %d failovers)",
				len(h.DownNodes), h.Failovers)
		}
		return Check{Assertion: "store_health", Pass: true, Detail: detail}
	}}, nil
}
