package scenario

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/pool"
	"repro/internal/tripled"
)

// Result is one scenario's execution record: every assertion's check,
// or the error that stopped the run before the checks could be made.
type Result struct {
	Scenario *Scenario
	Checks   []Check
	Err      error // pipeline failure or cancellation; nil when Checks ran
	Elapsed  time.Duration
}

// Passed reports whether the scenario ran to completion with every
// assertion holding.
func (r *Result) Passed() bool {
	if r.Err != nil {
		return false
	}
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// FailedChecks returns the assertions that did not hold.
func (r *Result) FailedChecks() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// execute runs one configuration through the full pipeline, optionally
// routed through an in-process tripled store or a 3-node replicated
// cluster (the same services the production path dials over TCP, bound
// to loopback ports for the scenario's lifetime). chaosBytes > 0
// blackholes cluster node 1 after that much table traffic — the
// deterministic mid-study replica loss the failover scenario injects.
func execute(ctx context.Context, cfg core.Config, store StoreMode, chaosBytes int64) (*core.Result, error) {
	switch store {
	case StoreTripled:
		srv, err := tripled.Serve(tripled.NewStore(), "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("scenario: start store: %w", err)
		}
		defer srv.Close()
		cfg.StoreAddr = srv.Addr()
	case StoreCluster:
		addrs := make([]string, 3)
		for i := range addrs {
			srv, err := tripled.Serve(tripled.NewStore(), "127.0.0.1:0")
			if err != nil {
				return nil, fmt.Errorf("scenario: start cluster node: %w", err)
			}
			defer srv.Close()
			addrs[i] = srv.Addr()
		}
		cfg.StoreAddr = strings.Join(addrs, ",") + ";replicas=2"
		if chaosBytes > 0 {
			p, err := faultinject.New(addrs[1])
			if err != nil {
				return nil, fmt.Errorf("scenario: start chaos proxy: %w", err)
			}
			defer p.Close()
			p.BlackholeAfterBytes(chaosBytes)
			addrs[1] = p.Addr()
			// Short detection budget: the lost replica must cost seconds,
			// not the default five-second timeout per retry.
			cfg.StoreAddr = strings.Join(addrs, ",") + ";replicas=2;io_timeout=300ms;retries=2"
		}
	default:
		cfg.StoreAddr = ""
	}
	p, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return p.RunContext(ctx)
}

// Run executes one scenario: the configured study, then every
// assertion against its result.
func Run(ctx context.Context, sc *Scenario) *Result {
	start := time.Now()
	out := &Result{Scenario: sc}
	defer func() { out.Elapsed = time.Since(start) }()

	res, err := execute(ctx, sc.Config, sc.Store, sc.ChaosBlackholeBytes)
	if err != nil {
		out.Err = err
		return out
	}
	env := &runEnv{sc: sc, cfg: sc.Config, res: res}
	var (
		other    *core.Result
		otherErr error
		reran    bool
	)
	env.rerun = func() (*core.Result, error) {
		// Memoized: several parity assertions share one opposite-mode run.
		// The parity reference for any store-backed mode (including a
		// chaos-degraded cluster) is the pure in-memory study; a memory
		// scenario checks against the single-store path.
		if !reran {
			opposite := StoreMemory
			if sc.Store == StoreMemory {
				opposite = StoreTripled
			}
			other, otherErr = execute(ctx, sc.Config, opposite, 0)
			reran = true
		}
		return other, otherErr
	}
	for _, a := range sc.Assertions {
		if err := ctx.Err(); err != nil {
			out.Err = err
			return out
		}
		out.Checks = append(out.Checks, a.run(env))
	}
	return out
}

// RunAll executes scenarios in parallel over the shared worker pool,
// returning results index-aligned with the input. Cancellation marks
// every unstarted scenario's result with the context error rather than
// dropping it, so a suite interrupted mid-run still reports one record
// per scenario.
func RunAll(ctx context.Context, scs []*Scenario, workers int) []*Result {
	out := make([]*Result, len(scs))
	// Run never returns an error, so Each only stops early on ctx.
	_ = pool.Each(ctx, workers, len(scs), func(ctx context.Context, i int) error {
		out[i] = Run(ctx, scs[i])
		return nil
	})
	for i, r := range out {
		if r == nil {
			err := ctx.Err()
			if err == nil {
				err = errors.New("scenario: not run")
			}
			out[i] = &Result{Scenario: scs[i], Err: err}
		}
	}
	return out
}
