package scenario

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/pool"
	"repro/internal/tripled"
)

// Result is one scenario's execution record: every assertion's check,
// or the error that stopped the run before the checks could be made.
type Result struct {
	Scenario *Scenario
	Checks   []Check
	Err      error // pipeline failure or cancellation; nil when Checks ran
	Elapsed  time.Duration
}

// Passed reports whether the scenario ran to completion with every
// assertion holding.
func (r *Result) Passed() bool {
	if r.Err != nil {
		return false
	}
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// FailedChecks returns the assertions that did not hold.
func (r *Result) FailedChecks() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// storeFaults carries a scenario's store-level knobs into execute:
// durability and the byte-counted fault schedule.
type storeFaults struct {
	wal            bool
	blackholeBytes int64
	crashBytes     int64
}

// serverSlot is a restartable in-process store node: the crash hook
// swaps in the recovered server under the mutex, and the deferred
// close always tears down the current occupant.
type serverSlot struct {
	mu  sync.Mutex
	srv *tripled.Server
}

func (s *serverSlot) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.srv.Close()
}

// crashRestart closes the slot's server (listener and in-memory state
// gone) and restarts it on the same address from its WAL dir. A failed
// restart leaves the slot dead; the pipeline then surfaces the store
// loss as a runtime error rather than asserting against partial data.
func (s *serverSlot) crashRestart(addr string, opts ...tripled.Option) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.srv.Close()
	srv, err := tripled.Serve(tripled.NewStore(), addr, opts...)
	if err != nil {
		return
	}
	s.srv = srv
}

// execute runs one configuration through the full pipeline, optionally
// routed through an in-process tripled store or a 3-node replicated
// cluster (the same services the production path dials over TCP, bound
// to loopback ports for the scenario's lifetime). With fx.wal the
// servers are durable (per-node WAL dirs under a run-scoped temp dir);
// fx.blackholeBytes blackholes cluster node 1 after that much table
// traffic, and fx.crashBytes crashes a durable node at that byte count
// and restarts it from its WAL — both deterministic mid-study faults.
func execute(ctx context.Context, cfg core.Config, store StoreMode, fx storeFaults) (*core.Result, error) {
	var walRoot string
	nodeOpts := func(i int) ([]tripled.Option, error) {
		if !fx.wal {
			return nil, nil
		}
		dir := filepath.Join(walRoot, fmt.Sprintf("node-%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("scenario: wal dir: %w", err)
		}
		return []tripled.Option{tripled.WithDataDir(dir)}, nil
	}
	if fx.wal && store != StoreMemory {
		dir, err := os.MkdirTemp("", "scenario-wal-")
		if err != nil {
			return nil, fmt.Errorf("scenario: wal dir: %w", err)
		}
		defer os.RemoveAll(dir)
		walRoot = dir
	}
	switch store {
	case StoreTripled:
		opts, err := nodeOpts(0)
		if err != nil {
			return nil, err
		}
		srv, err := tripled.Serve(tripled.NewStore(), "127.0.0.1:0", opts...)
		if err != nil {
			return nil, fmt.Errorf("scenario: start store: %w", err)
		}
		slot := &serverSlot{srv: srv}
		defer slot.close()
		raw := srv.Addr()
		cfg.StoreAddr = raw
		if fx.crashBytes > 0 {
			p, err := faultinject.New(raw)
			if err != nil {
				return nil, fmt.Errorf("scenario: start chaos proxy: %w", err)
			}
			defer p.Close()
			p.TriggerAfterBytes(fx.crashBytes, func() { slot.crashRestart(raw, opts...) })
			// A lone store has no replica to fail over to: route through a
			// 1-node cluster spec so client retries absorb the restart
			// window instead of failing the study.
			cfg.StoreAddr = p.Addr() + ";replicas=1;io_timeout=500ms;retries=8"
		}
	case StoreCluster:
		addrs := make([]string, 3)
		slots := make([]*serverSlot, 3)
		optsByNode := make([][]tripled.Option, 3)
		for i := range addrs {
			opts, err := nodeOpts(i)
			if err != nil {
				return nil, err
			}
			optsByNode[i] = opts
			srv, err := tripled.Serve(tripled.NewStore(), "127.0.0.1:0", opts...)
			if err != nil {
				return nil, fmt.Errorf("scenario: start cluster node: %w", err)
			}
			slots[i] = &serverSlot{srv: srv}
			defer slots[i].close()
			addrs[i] = srv.Addr()
		}
		cfg.StoreAddr = strings.Join(addrs, ",") + ";replicas=2"
		switch {
		case fx.blackholeBytes > 0:
			p, err := faultinject.New(addrs[1])
			if err != nil {
				return nil, fmt.Errorf("scenario: start chaos proxy: %w", err)
			}
			defer p.Close()
			p.BlackholeAfterBytes(fx.blackholeBytes)
			addrs[1] = p.Addr()
			// Short detection budget: the lost replica must cost seconds,
			// not the default five-second timeout per retry.
			cfg.StoreAddr = strings.Join(addrs, ",") + ";replicas=2;io_timeout=300ms;retries=2"
		case fx.crashBytes > 0:
			raw := addrs[1]
			p, err := faultinject.New(raw)
			if err != nil {
				return nil, fmt.Errorf("scenario: start chaos proxy: %w", err)
			}
			defer p.Close()
			p.TriggerAfterBytes(fx.crashBytes, func() { slots[1].crashRestart(raw, optsByNode[1]...) })
			addrs[1] = p.Addr()
			cfg.StoreAddr = strings.Join(addrs, ",") + ";replicas=2;io_timeout=500ms;retries=8"
		}
	default:
		cfg.StoreAddr = ""
	}
	p, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return p.RunContext(ctx)
}

// Run executes one scenario: the configured study, then every
// assertion against its result.
func Run(ctx context.Context, sc *Scenario) *Result {
	start := time.Now()
	out := &Result{Scenario: sc}
	defer func() { out.Elapsed = time.Since(start) }()

	res, err := execute(ctx, sc.Config, sc.Store, storeFaults{
		wal:            sc.WAL,
		blackholeBytes: sc.ChaosBlackholeBytes,
		crashBytes:     sc.ChaosCrashBytes,
	})
	if err != nil {
		out.Err = err
		return out
	}
	env := &runEnv{sc: sc, cfg: sc.Config, res: res}
	var (
		other    *core.Result
		otherErr error
		reran    bool
	)
	env.rerun = func() (*core.Result, error) {
		// Memoized: several parity assertions share one opposite-mode run.
		// The parity reference for any store-backed mode (including a
		// chaos-degraded cluster) is the pure in-memory study; a memory
		// scenario checks against the single-store path.
		if !reran {
			opposite := StoreMemory
			if sc.Store == StoreMemory {
				opposite = StoreTripled
			}
			other, otherErr = execute(ctx, sc.Config, opposite, storeFaults{})
			reran = true
		}
		return other, otherErr
	}
	for _, a := range sc.Assertions {
		if err := ctx.Err(); err != nil {
			out.Err = err
			return out
		}
		out.Checks = append(out.Checks, a.run(env))
	}
	return out
}

// RunAll executes scenarios in parallel over the shared worker pool,
// returning results index-aligned with the input. Cancellation marks
// every unstarted scenario's result with the context error rather than
// dropping it, so a suite interrupted mid-run still reports one record
// per scenario.
func RunAll(ctx context.Context, scs []*Scenario, workers int) []*Result {
	out := make([]*Result, len(scs))
	// Run never returns an error, so Each only stops early on ctx.
	_ = pool.Each(ctx, workers, len(scs), func(ctx context.Context, i int) error {
		out[i] = Run(ctx, scs[i])
		return nil
	})
	for i, r := range out {
		if r == nil {
			err := ctx.Err()
			if err == nil {
				err = errors.New("scenario: not run")
			}
			out[i] = &Result{Scenario: scs[i], Err: err}
		}
	}
	return out
}
