package scenario

import (
	"context"
	"testing"
)

// RunDir executes every scenario under dir as a Go subtest, so the
// whole zoo runs inside `go test` (and under -race) with the same
// assertions the cmd/scenarios CLI checks. A failing subtest names the
// scenario and each assertion that did not hold.
func RunDir(t *testing.T, dir string) {
	t.Helper()
	scs, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading scenarios: %v", err)
	}
	for _, sc := range scs {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			r := Run(context.Background(), sc)
			if r.Err != nil {
				t.Fatalf("scenario %s (%s): %v", sc.Name, sc.Path, r.Err)
			}
			for _, c := range r.Checks {
				if c.Pass {
					t.Logf("ok   %-28s %s", c.Assertion, c.Detail)
				} else {
					t.Errorf("FAIL %s: %s", c.Assertion, c.Detail)
				}
			}
		})
	}
}
