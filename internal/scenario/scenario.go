// Package scenario makes docs/e2e-cases.md executable: each YAML file
// under scenarios/ names a workload (a generator configuration routed
// through the full core.Config pipeline) plus a block of
// expected-result assertions — exact values with tolerances for Table
// II quantities, fitted Zipf-Mandelbrot exponents, Figure 4
// bright>faint orderings, temporal-decay shapes, golden-artifact
// references, and store-parity cross-checks. The runner executes a
// directory of scenarios with per-scenario pass/fail (parallel over
// internal/pool), the same suite runs as Go subtests from
// integration_test.go, and the audit mode fails when the e2e-cases
// table and the shipped scenarios drift apart.
package scenario

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/ipaddr"
)

// StoreMode selects how a scenario's study reaches its D4M tables.
type StoreMode string

const (
	// StoreMemory runs the pure in-process path (no store service).
	StoreMemory StoreMode = "memory"
	// StoreTripled routes tables through one in-process tripled server.
	StoreTripled StoreMode = "tripled"
	// StoreCluster routes tables through a 3-node R=2 consistent-hash
	// cluster of in-process servers.
	StoreCluster StoreMode = "cluster"
)

// Scenario is one executable workload: a named pipeline configuration
// and its expected-result assertions.
type Scenario struct {
	Name        string
	Case        string // e2e-cases Case ID (Z000xx) this file covers
	Description string
	Config      core.Config
	Store       StoreMode
	// WAL makes the scenario's store servers durable: each gets a
	// temporary data dir and appends mutations to a checksummed WAL
	// before acking, so a crashed server can restart with its state.
	WAL bool
	// ChaosBlackholeBytes, with StoreCluster, silently blackholes one
	// replica after this many bytes of table traffic have flowed through
	// it — a byte-counted (so deterministic) mid-study replica loss.
	ChaosBlackholeBytes int64
	// ChaosCrashBytes, with WAL, crashes one store server after this
	// many bytes of table traffic: its listener and in-memory state are
	// discarded mid-ingest and it restarts on the same address from its
	// WAL, while client retries absorb the restart window.
	ChaosCrashBytes int64
	Assertions      []Assertion

	// Path is the source file, for error messages and for resolving
	// golden-artifact references relative to the scenario.
	Path string
}

func schemaErrf(path, format string, args ...any) error {
	return fmt.Errorf("%w: %s: %s", ErrSchema, path, fmt.Sprintf(format, args...))
}

// Load reads and validates one scenario file.
func Load(path string) (*Scenario, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	root, err := parseYAML(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	doc, ok := root.(map[string]any)
	if !ok {
		return nil, schemaErrf(path, "top level must be a mapping")
	}
	sc := &Scenario{Path: path}
	for key, v := range doc {
		switch key {
		case "name":
			if sc.Name, ok = v.(string); !ok {
				return nil, schemaErrf(path, "name must be a string")
			}
		case "case":
			if sc.Case, ok = v.(string); !ok {
				return nil, schemaErrf(path, "case must be a string")
			}
		case "description":
			if sc.Description, ok = v.(string); !ok {
				return nil, schemaErrf(path, "description must be a string")
			}
		case "config":
			m, ok := v.(map[string]any)
			if !ok {
				return nil, schemaErrf(path, "config must be a mapping")
			}
			sc.Config, sc.Store, sc.WAL, sc.ChaosBlackholeBytes, sc.ChaosCrashBytes, err = decodeConfig(m, path)
			if err != nil {
				return nil, err
			}
		case "assert":
			list, ok := v.([]any)
			if !ok {
				return nil, schemaErrf(path, "assert must be a list")
			}
			sc.Assertions, err = decodeAssertions(list, path)
			if err != nil {
				return nil, err
			}
		default:
			return nil, schemaErrf(path, "unknown top-level key %q", key)
		}
	}
	switch {
	case sc.Name == "":
		return nil, schemaErrf(path, "name is required")
	case sc.Case == "":
		return nil, schemaErrf(path, "case (e2e-cases ID) is required")
	case len(sc.Assertions) == 0:
		return nil, schemaErrf(path, "at least one assertion is required")
	}
	if err := sc.Config.Validate(); err != nil {
		return nil, schemaErrf(path, "invalid config: %v", err)
	}
	return sc, nil
}

// LoadDir loads every *.yaml/*.yml under dir, sorted by filename.
func LoadDir(dir string) ([]*Scenario, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if ext := filepath.Ext(e.Name()); ext == ".yaml" || ext == ".yml" {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, schemaErrf(dir, "no scenario files")
	}
	out := make([]*Scenario, 0, len(paths))
	seen := map[string]string{}
	for _, p := range paths {
		sc, err := Load(p)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[sc.Name]; dup {
			return nil, schemaErrf(p, "scenario name %q already used by %s", sc.Name, prev)
		}
		seen[sc.Name] = p
		out = append(out, sc)
	}
	return out, nil
}

// decodeConfig maps the config block onto core.Config, starting from
// the named scale preset. Every key is checked; unknown keys are
// schema errors so a typo cannot silently run the wrong workload.
func decodeConfig(m map[string]any, path string) (core.Config, StoreMode, bool, int64, int64, error) {
	cfg := core.QuickConfig()
	store := StoreMemory
	var wal bool
	var chaosBytes, crashBytes int64
	if v, ok := m["scale"]; ok {
		switch v {
		case "quick":
			cfg = core.QuickConfig()
		case "default":
			cfg = core.DefaultConfig()
		default:
			return cfg, store, false, 0, 0, schemaErrf(path, "config.scale must be quick or default, got %v", v)
		}
	}
	for key, v := range m {
		var err error
		switch key {
		case "scale": // handled above
		case "seed":
			err = setInt64(&cfg.Radiation.Seed, v)
		case "nv":
			err = setInt(&cfg.NV, v)
		case "leaf_size":
			err = setInt(&cfg.LeafSize, v)
		case "batch":
			err = setInt(&cfg.Batch, v)
		case "sources":
			err = setInt(&cfg.Radiation.NumSources, v)
		case "months":
			err = setInt(&cfg.Radiation.Months, v)
		case "workers":
			err = setInt(&cfg.Workers, v)
		case "study_workers":
			err = setInt(&cfg.StudyWorkers, v)
		case "report_workers":
			err = setInt(&cfg.ReportWorkers, v)
		case "sensors":
			err = setInt(&cfg.Sensors, v)
		case "min_band_sources":
			err = setInt(&cfg.MinBandSources, v)
		case "anon_passphrase":
			s, ok := v.(string)
			if !ok {
				err = fmt.Errorf("must be a string")
			} else {
				cfg.AnonPassphrase = s
			}
		case "store":
			switch v {
			case "memory":
				store = StoreMemory
			case "tripled":
				store = StoreTripled
			case "cluster":
				store = StoreCluster
			default:
				err = fmt.Errorf("must be memory, tripled, or cluster, got %v", v)
			}
		case "wal":
			b, ok := v.(bool)
			if !ok {
				err = fmt.Errorf("must be a boolean, got %v", v)
			} else {
				wal = b
			}
		case "chaos_blackhole_bytes":
			if err = setInt64(&chaosBytes, v); err == nil && chaosBytes <= 0 {
				err = fmt.Errorf("must be > 0, got %v", v)
			}
		case "chaos_crash_bytes":
			if err = setInt64(&crashBytes, v); err == nil && crashBytes <= 0 {
				err = fmt.Errorf("must be > 0, got %v", v)
			}
		case "snapshot_months":
			var fracs []float64
			if fracs, err = floatList(v); err == nil {
				if len(fracs) == 0 {
					err = fmt.Errorf("must not be empty")
					break
				}
				times := make([]time.Time, len(fracs))
				for i, f := range fracs {
					times[i] = cfg.StudyStart.Add(time.Duration(f * 30.44 * 24 * float64(time.Hour)))
				}
				cfg.SnapshotTimes = times
			}
		case "radiation":
			sub, ok := v.(map[string]any)
			if !ok {
				err = fmt.Errorf("must be a mapping")
			} else {
				err = decodeRadiation(sub, &cfg)
			}
		default:
			return cfg, store, false, 0, 0, schemaErrf(path, "unknown config key %q", key)
		}
		if err != nil {
			return cfg, store, false, 0, 0, schemaErrf(path, "config.%s: %v", key, err)
		}
	}
	switch {
	case chaosBytes > 0 && store != StoreCluster:
		return cfg, store, false, 0, 0, schemaErrf(path,
			"config.chaos_blackhole_bytes needs store: cluster (a single store has no replica to lose)")
	case wal && store == StoreMemory:
		return cfg, store, false, 0, 0, schemaErrf(path,
			"config.wal needs store: tripled or cluster (memory mode has no server to make durable)")
	case crashBytes > 0 && !wal:
		return cfg, store, false, 0, 0, schemaErrf(path,
			"config.chaos_crash_bytes needs wal: true (a crashed server without a WAL loses the study)")
	case crashBytes > 0 && chaosBytes > 0:
		return cfg, store, false, 0, 0, schemaErrf(path,
			"config.chaos_crash_bytes and config.chaos_blackhole_bytes cannot be combined")
	}
	return cfg, store, wal, chaosBytes, crashBytes, nil
}

func decodeRadiation(m map[string]any, cfg *core.Config) error {
	r := &cfg.Radiation
	for key, v := range m {
		var err error
		switch key {
		case "persistent":
			err = setFloat(&r.Persistent, v)
		case "bogon_rate":
			err = setFloat(&r.BogonRate, v)
		case "bright_log2":
			err = setFloat(&r.BrightLog2, v)
		case "zm_alpha":
			err = setFloat(&r.ZM.Alpha, v)
		case "zm_delta":
			err = setFloat(&r.ZM.Delta, v)
		case "zm_dmax":
			err = setFloat(&r.ZM.DMax, v)
		case "alpha_star":
			err = setFloat(&r.AlphaStar, v)
		case "beta_base":
			err = setFloat(&r.BetaBase, v)
		case "beta_dip":
			err = setFloat(&r.BetaDip, v)
		case "dip_log2":
			err = setFloat(&r.DipLog2, v)
		case "dip_width":
			err = setFloat(&r.DipWidth, v)
		case "background":
			err = setFloat(&r.Background, v)
		case "telescope_alpha":
			err = setFloat(&r.TelescopeAlpha, v)
		case "telescope_beta":
			err = setFloat(&r.TelescopeBeta, v)
		case "vertical_scan":
			err = setFloat(&r.VerticalScan, v)
		case "v6_sources":
			err = setFloat(&r.V6Sources, v)
		case "darkspace":
			s, ok := v.(string)
			if !ok {
				err = fmt.Errorf("must be a CIDR string")
			} else {
				r.Darkspace, err = ipaddr.ParsePrefix(s)
			}
		case "mix":
			sub, ok := v.(map[string]any)
			if !ok {
				err = fmt.Errorf("must be a mapping of archetype weights")
				break
			}
			r.Mix, err = decodeMix(sub)
		default:
			return fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return fmt.Errorf("%s: %v", key, err)
		}
	}
	return nil
}

// archetypeOrder matches radiation.Archetype iota order.
var archetypeOrder = []string{"scanner", "worm", "backscatter", "botnet", "misconfiguration"}

func decodeMix(m map[string]any) ([]float64, error) {
	out := make([]float64, len(archetypeOrder))
	seen := 0
	for key, v := range m {
		idx := -1
		for i, name := range archetypeOrder {
			if key == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("unknown archetype %q", key)
		}
		if err := setFloat(&out[idx], v); err != nil {
			return nil, fmt.Errorf("%s: %v", key, err)
		}
		seen++
	}
	if seen == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return out, nil
}

func setInt(dst *int, v any) error {
	f, ok := v.(float64)
	if !ok || f != math.Trunc(f) {
		return fmt.Errorf("must be an integer, got %v", v)
	}
	*dst = int(f)
	return nil
}

func setInt64(dst *int64, v any) error {
	f, ok := v.(float64)
	if !ok || f != math.Trunc(f) {
		return fmt.Errorf("must be an integer, got %v", v)
	}
	*dst = int64(f)
	return nil
}

func setFloat(dst *float64, v any) error {
	f, ok := v.(float64)
	if !ok {
		return fmt.Errorf("must be a number, got %v", v)
	}
	*dst = f
	return nil
}

func floatList(v any) ([]float64, error) {
	list, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("must be a list of numbers, got %v", v)
	}
	out := make([]float64, len(list))
	for i, it := range list {
		f, ok := it.(float64)
		if !ok {
			return nil, fmt.Errorf("element %d must be a number, got %v", i, it)
		}
		out[i] = f
	}
	return out, nil
}
