package scenario

// yaml.go is the scenario schema's YAML reader: a dependency-free
// decoder for the strict subset the schema needs — block mappings
// nested by indentation, block sequences ("- item"), inline flow lists
// ("[a, b]") and maps ("{k: v}"), quoted and bare scalars, comments.
// The container ships no YAML module and the hard constraint is to add
// none, so the subset is implemented here; scenario files that stay
// within it are ordinary YAML any other tool can read.
//
// Decoded values are map[string]any, []any, string, float64, and bool.
// Parse errors carry the 1-based line number and are wrapped in
// ErrParse so the runner can map "malformed YAML" to its own exit code.

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrParse wraps malformed-YAML errors (distinct CLI exit code from
// schema errors: the file isn't even well-formed).
var ErrParse = errors.New("scenario: yaml parse error")

// ErrSchema wraps well-formed files that violate the scenario schema:
// unknown keys, unknown assertion kinds, wrong value types.
var ErrSchema = errors.New("scenario: schema error")

type yamlLine struct {
	indent int
	text   string // content with indentation stripped
	num    int    // 1-based line number
}

func parseErrf(line int, format string, args ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrParse, line, fmt.Sprintf(format, args...))
}

// parseYAML decodes src into maps/lists/scalars.
func parseYAML(src []byte) (any, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(string(src), "\n") {
		// Strip comments outside quotes, then trailing space.
		text := stripComment(raw)
		trimmed := strings.TrimRight(text, " \t")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		indent := 0
		for indent < len(trimmed) && trimmed[indent] == ' ' {
			indent++
		}
		if strings.HasPrefix(trimmed[indent:], "\t") {
			return nil, parseErrf(i+1, "tab indentation is not supported")
		}
		lines = append(lines, yamlLine{indent: indent, text: trimmed[indent:], num: i + 1})
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	v, rest, err := parseBlock(lines, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, parseErrf(rest[0].num, "unexpected de-indented content %q", rest[0].text)
	}
	return v, nil
}

// stripComment removes a trailing "#" comment, respecting quotes.
func stripComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '#':
			if !inS && !inD && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t') {
				return s[:i]
			}
		}
	}
	return s
}

// parseBlock parses the longest run of lines at exactly indent
// (consuming deeper lines as nested content) and returns the remainder.
func parseBlock(lines []yamlLine, indent int) (any, []yamlLine, error) {
	if len(lines) == 0 {
		return nil, nil, parseErrf(0, "empty block")
	}
	if lines[0].indent != indent {
		return nil, nil, parseErrf(lines[0].num, "bad indentation (got %d, want %d)", lines[0].indent, indent)
	}
	if strings.HasPrefix(lines[0].text, "- ") || lines[0].text == "-" {
		return parseSequence(lines, indent)
	}
	return parseMapping(lines, indent)
}

func parseMapping(lines []yamlLine, indent int) (any, []yamlLine, error) {
	out := map[string]any{}
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, nil, parseErrf(ln.num, "unexpected indentation")
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, nil, parseErrf(ln.num, "sequence item inside a mapping")
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, nil, err
		}
		if _, dup := out[key]; dup {
			return nil, nil, parseErrf(ln.num, "duplicate key %q", key)
		}
		lines = lines[1:]
		if rest != "" {
			v, err := parseScalarOrFlow(rest, ln.num)
			if err != nil {
				return nil, nil, err
			}
			out[key] = v
			continue
		}
		// Block value: nested lines deeper than this key, or empty.
		if len(lines) == 0 || lines[0].indent <= indent {
			out[key] = nil
			continue
		}
		v, remain, err := parseBlock(lines, lines[0].indent)
		if err != nil {
			return nil, nil, err
		}
		out[key] = v
		lines = remain
	}
	return out, lines, nil
}

func parseSequence(lines []yamlLine, indent int) (any, []yamlLine, error) {
	out := []any{}
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, nil, parseErrf(ln.num, "unexpected indentation")
		}
		if !strings.HasPrefix(ln.text, "- ") && ln.text != "-" {
			break
		}
		body := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		lines = lines[1:]
		if body == "" {
			// "-" alone: nested block item.
			if len(lines) == 0 || lines[0].indent <= indent {
				out = append(out, nil)
				continue
			}
			v, remain, err := parseBlock(lines, lines[0].indent)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, v)
			lines = remain
			continue
		}
		if key, rest, err := splitKey(yamlLine{text: body, num: ln.num}); err == nil {
			// "- key: ..." starts an inline map item; continuation keys
			// sit deeper than the dash.
			item := map[string]any{}
			if rest != "" {
				v, err := parseScalarOrFlow(rest, ln.num)
				if err != nil {
					return nil, nil, err
				}
				item[key] = v
			} else if len(lines) > 0 && lines[0].indent > indent+2 {
				v, remain, err := parseBlock(lines, lines[0].indent)
				if err != nil {
					return nil, nil, err
				}
				item[key] = v
				lines = remain
			} else {
				item[key] = nil
			}
			for len(lines) > 0 && lines[0].indent > indent {
				more, remain, err := parseMapping(lines, lines[0].indent)
				if err != nil {
					return nil, nil, err
				}
				for k, v := range more.(map[string]any) {
					if _, dup := item[k]; dup {
						return nil, nil, parseErrf(lines[0].num, "duplicate key %q", k)
					}
					item[k] = v
				}
				lines = remain
			}
			out = append(out, item)
			continue
		}
		v, err := parseScalarOrFlow(body, ln.num)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, v)
	}
	return out, lines, nil
}

// splitKey splits "key: value" / "key:" respecting quoted keys. It
// errors when the text is not a mapping entry.
func splitKey(ln yamlLine) (key, rest string, err error) {
	text := ln.text
	if text == "" {
		return "", "", parseErrf(ln.num, "empty mapping entry")
	}
	if text[0] == '\'' || text[0] == '"' {
		q := text[0]
		end := strings.IndexByte(text[1:], q)
		if end < 0 {
			return "", "", parseErrf(ln.num, "unterminated quoted key")
		}
		key = text[1 : 1+end]
		tail := strings.TrimLeft(text[2+end:], " ")
		if !strings.HasPrefix(tail, ":") {
			return "", "", parseErrf(ln.num, "missing ':' after key %q", key)
		}
		return key, strings.TrimLeft(tail[1:], " "), nil
	}
	i := strings.IndexByte(text, ':')
	if i < 0 {
		return "", "", parseErrf(ln.num, "missing ':' in %q", text)
	}
	if i+1 < len(text) && text[i+1] != ' ' {
		return "", "", parseErrf(ln.num, "missing space after ':' in %q", text)
	}
	key = strings.TrimSpace(text[:i])
	if key == "" {
		return "", "", parseErrf(ln.num, "empty key in %q", text)
	}
	return key, strings.TrimLeft(text[i+1:], " "), nil
}

// parseScalarOrFlow parses an inline value: a flow list, a flow map, or
// a scalar.
func parseScalarOrFlow(s string, line int) (any, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return nil, parseErrf(line, "unterminated flow list %q", s)
		}
		items, err := splitFlow(s[1:len(s)-1], line)
		if err != nil {
			return nil, err
		}
		out := make([]any, 0, len(items))
		for _, it := range items {
			v, err := parseScalarOrFlow(it, line)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case strings.HasPrefix(s, "{"):
		if !strings.HasSuffix(s, "}") {
			return nil, parseErrf(line, "unterminated flow map %q", s)
		}
		items, err := splitFlow(s[1:len(s)-1], line)
		if err != nil {
			return nil, err
		}
		out := map[string]any{}
		for _, it := range items {
			key, rest, err := splitKey(yamlLine{text: strings.TrimSpace(it), num: line})
			if err != nil {
				// Flow maps allow "k:v" without the space.
				if i := strings.IndexByte(it, ':'); i > 0 {
					key, rest = strings.TrimSpace(it[:i]), strings.TrimSpace(it[i+1:])
				} else {
					return nil, err
				}
			}
			v, err := parseScalarOrFlow(rest, line)
			if err != nil {
				return nil, err
			}
			if _, dup := out[key]; dup {
				return nil, parseErrf(line, "duplicate key %q", key)
			}
			out[key] = v
		}
		return out, nil
	}
	return parseScalar(s, line)
}

// splitFlow splits a flow body on top-level commas, respecting quotes
// and nested brackets.
func splitFlow(s string, line int) ([]string, error) {
	var out []string
	depth, start := 0, 0
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inD:
			inS = !inS
		case c == '"' && !inS:
			inD = !inD
		case inS || inD:
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
			if depth < 0 {
				return nil, parseErrf(line, "unbalanced brackets in %q", s)
			}
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if inS || inD || depth != 0 {
		return nil, parseErrf(line, "unbalanced quotes or brackets in %q", s)
	}
	if last := strings.TrimSpace(s[start:]); last != "" {
		out = append(out, last)
	} else if len(out) > 0 {
		return nil, parseErrf(line, "trailing comma in %q", s)
	}
	return out, nil
}

func parseScalar(s string, line int) (any, error) {
	if s == "" || s == "null" || s == "~" {
		return nil, nil
	}
	if len(s) >= 2 && (s[0] == '\'' || s[0] == '"') {
		if s[len(s)-1] != s[0] {
			return nil, parseErrf(line, "unterminated quoted scalar %q", s)
		}
		return s[1 : len(s)-1], nil
	}
	switch s {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}
