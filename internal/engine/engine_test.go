package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/hypersparse"
	"repro/internal/ipaddr"
	"repro/internal/netquant"
	"repro/internal/pcap"
	"repro/internal/radiation"
	"repro/internal/stats"
)

// testStream returns a fixed-seed telescope stream plus the population's
// darkspace, so every test run (and every worker count) sees the exact
// same packet sequence.
func testStream(t testing.TB, seed int64) (*radiation.Stream, ipaddr.Prefix) {
	t.Helper()
	cfg := radiation.DefaultConfig()
	cfg.Seed = seed
	cfg.NumSources = 5000
	cfg.ZM = stats.PaperZM(1 << 11)
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pop.TelescopeStream(3, time.Unix(0, 0)), cfg.Darkspace
}

// testEngine builds an engine with a darkspace validity filter and an
// identity coordinate mapper.
func testEngine(t testing.TB, cfg Config, dark ipaddr.Prefix) *Engine {
	t.Helper()
	e, err := New(cfg,
		func(p *pcap.Packet) bool { return dark.Contains(p.Dst) && !ipaddr.IsPrivate(p.Src) },
		func(p *pcap.Packet) Pair { return Pair{Row: uint32(p.Src), Col: uint32(p.Dst)} })
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func entries(m *hypersparse.Matrix) []hypersparse.Entry {
	var out []hypersparse.Entry
	m.Iterate(func(e hypersparse.Entry) bool {
		out = append(out, e)
		return true
	})
	return out
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{LeafSize: 0}).Validate(); err == nil {
		t.Error("LeafSize=0 accepted")
	}
	if _, err := New(Config{LeafSize: 8}, nil, nil); err == nil {
		t.Error("nil mapper accepted")
	}
	e, err := New(Config{LeafSize: 8}, nil, func(*pcap.Packet) Pair { return Pair{} })
	if err != nil {
		t.Fatal(err)
	}
	c := e.Config()
	if c.Workers < 1 || c.Batch != 8 || c.Queue != 2*c.Workers {
		t.Errorf("defaults not normalized: %+v", c)
	}
}

// TestShardedMatchesSerial is the engine's core invariant: for a fixed
// seed, every worker count produces the exact same window — same NV and
// drop accounting, same matrix entries, same netquant Table II
// quantities — because the matrix is a commutative sum of the same
// triples regardless of how leaves are sharded. Run under -race this is
// also the concurrency soundness test.
func TestShardedMatchesSerial(t *testing.T) {
	const nv = 1 << 13
	capture := func(workers int) *Window {
		st, dark := testStream(t, 7)
		e := testEngine(t, Config{Workers: workers, LeafSize: 1 << 9, Batch: 128, Queue: 4}, dark)
		w, err := e.CaptureWindow(context.Background(), st, nv)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	serial := capture(1)
	if serial.NV != nv {
		t.Fatalf("serial NV = %d, want %d", serial.NV, nv)
	}
	want := entries(serial.Matrix)
	wantQ := netquant.Compute(serial.Matrix)
	for _, workers := range []int{2, 4, 8} {
		sharded := capture(workers)
		if sharded.NV != serial.NV || sharded.Dropped != serial.Dropped {
			t.Fatalf("workers=%d: NV/Dropped %d/%d, want %d/%d",
				workers, sharded.NV, sharded.Dropped, serial.NV, serial.Dropped)
		}
		if !sharded.Start.Equal(serial.Start) || !sharded.End.Equal(serial.End) {
			t.Errorf("workers=%d: window span differs", workers)
		}
		if sharded.Matrix.NNZ() != serial.Matrix.NNZ() {
			t.Fatalf("workers=%d: NNZ %d, want %d", workers, sharded.Matrix.NNZ(), serial.Matrix.NNZ())
		}
		if sharded.Matrix.NRows() != serial.Matrix.NRows() {
			t.Fatalf("workers=%d: NRows %d, want %d", workers, sharded.Matrix.NRows(), serial.Matrix.NRows())
		}
		if q := netquant.Compute(sharded.Matrix); q != wantQ {
			t.Fatalf("workers=%d: Table II quantities differ:\n got %+v\nwant %+v", workers, q, wantQ)
		}
		got := entries(sharded.Matrix)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: entry %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestShardedLeafAccounting checks the leaf count matches the serial
// build's total (partial tail leaves per shard can add at most
// Workers-1 extra cuts, never lose one).
func TestShardedLeafAccounting(t *testing.T) {
	const nv = 4096
	st, dark := testStream(t, 11)
	e := testEngine(t, Config{Workers: 4, LeafSize: 512, Batch: 100}, dark)
	w, err := e.CaptureWindow(context.Background(), st, nv)
	if err != nil {
		t.Fatal(err)
	}
	minLeaves := nv / 512
	maxLeaves := minLeaves + 4 // one partial tail per shard
	if w.Leaves < minLeaves || w.Leaves > maxLeaves {
		t.Errorf("leaves = %d, want in [%d, %d]", w.Leaves, minLeaves, maxLeaves)
	}
	if w.Shards < 1 || w.Shards > 4 {
		t.Errorf("shards = %d", w.Shards)
	}
	if w.Matrix.Sum() != nv {
		t.Errorf("matrix sum = %g, want %d", w.Matrix.Sum(), nv)
	}
}

// TestShortStream: a stream smaller than NV ends the window early
// without error, mirroring the serial capture contract.
func TestShortStream(t *testing.T) {
	for _, workers := range []int{1, 4} {
		st, dark := testStream(t, 3)
		total := st.ExpectedPackets()
		e := testEngine(t, Config{Workers: workers, LeafSize: 256}, dark)
		w, err := e.CaptureWindow(context.Background(), st, total*10)
		if err != nil {
			t.Fatal(err)
		}
		if w.NV+w.Dropped != total {
			t.Errorf("workers=%d: NV+Dropped = %d, want %d", workers, w.NV+w.Dropped, total)
		}
		if w.Matrix.Sum() != float64(w.NV) {
			t.Errorf("workers=%d: sum %g != NV %d", workers, w.Matrix.Sum(), w.NV)
		}
	}
}

// infiniteSource never ends; it exists to prove cancellation works even
// when the stream alone would never terminate the capture.
type infiniteSource struct {
	i uint32
	t time.Time
}

func (s *infiniteSource) Next(p *pcap.Packet) bool {
	s.i++
	s.t = s.t.Add(time.Millisecond)
	*p = pcap.Packet{Time: s.t, Src: ipaddr.Addr(0xC0000000 + s.i%100000), Dst: ipaddr.Addr(s.i % 1024)}
	return true
}

func TestContextCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e, err := New(Config{Workers: workers, LeafSize: 256, Queue: 2}, nil,
			func(p *pcap.Packet) Pair { return Pair{Row: uint32(p.Src), Col: uint32(p.Dst)} })
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		done := make(chan error, 1)
		go func() {
			_, err := e.CaptureWindow(ctx, &infiniteSource{}, 1<<30)
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("workers=%d: err = %v, want deadline exceeded", workers, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: capture did not stop after cancellation", workers)
		}
		cancel()
	}
}

// TestCancellationAllRejected: cancellation must be observed even when
// the filter rejects every packet, i.e. no batch ever fills and the
// send-side poll never runs.
func TestCancellationAllRejected(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e, err := New(Config{Workers: workers, LeafSize: 256},
			func(*pcap.Packet) bool { return false },
			func(p *pcap.Packet) Pair { return Pair{} })
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		done := make(chan error, 1)
		go func() {
			_, err := e.CaptureWindow(ctx, &infiniteSource{}, 1)
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("workers=%d: err = %v, want deadline exceeded", workers, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: all-rejected capture did not observe cancellation", workers)
		}
		cancel()
	}
}

// errSource fails mid-stream the way a truncated pcap file does.
type errSource struct {
	n   int
	err error
}

func (s *errSource) Next(p *pcap.Packet) bool {
	if s.n == 0 {
		s.err = errors.New("truncated capture")
		return false
	}
	s.n--
	*p = pcap.Packet{Src: ipaddr.Addr(s.n), Dst: ipaddr.Addr(s.n % 7)}
	return true
}

func (s *errSource) Err() error { return s.err }

func TestSourceErrorPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e, err := New(Config{Workers: workers, LeafSize: 64}, nil,
			func(p *pcap.Packet) Pair { return Pair{Row: uint32(p.Src), Col: uint32(p.Dst)} })
		if err != nil {
			t.Fatal(err)
		}
		_, err = e.CaptureWindow(context.Background(), &errSource{n: 100}, 1<<20)
		if err == nil || err.Error() != "truncated capture" {
			t.Errorf("workers=%d: err = %v, want truncated capture", workers, err)
		}
	}
}

// TestBackpressureTinyQueue pins Config.Queue compatibility: the field
// is vestigial (the per-slab barrier bounds in-flight memory at two
// slabs, so there is no queue to size), but configs that set it must
// keep completing captures that conserve NV.
func TestBackpressureTinyQueue(t *testing.T) {
	st, dark := testStream(t, 5)
	e := testEngine(t, Config{Workers: 3, LeafSize: 128, Batch: 32, Queue: 1}, dark)
	const nv = 4096
	w, err := e.CaptureWindow(context.Background(), st, nv)
	if err != nil {
		t.Fatal(err)
	}
	if w.NV != nv || w.Matrix.Sum() != nv {
		t.Errorf("NV = %d, sum = %g, want %d", w.NV, w.Matrix.Sum(), nv)
	}
}

func TestBadWindowSize(t *testing.T) {
	e, err := New(Config{LeafSize: 8}, nil, func(*pcap.Packet) Pair { return Pair{} })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CaptureWindow(context.Background(), &infiniteSource{}, 0); err == nil {
		t.Error("nv=0 accepted")
	}
}

// perPacketOnly hides a stream's NextBatch so the engine is forced onto
// the per-packet reader path — the oracle the slab path is diffed
// against.
type perPacketOnly struct{ s *radiation.Stream }

func (p perPacketOnly) Next(pkt *pcap.Packet) bool { return p.s.Next(pkt) }

// TestBatchSourceMatchesPerPacket diffs the slab reader against the
// per-packet reader on the same seeded stream: identical windows (NV,
// drops, span, leaves, every matrix entry) at every worker count.
func TestBatchSourceMatchesPerPacket(t *testing.T) {
	const nv = 1 << 12
	for _, workers := range []int{1, 4} {
		batched, dark := testStream(t, 11)
		plain, _ := testStream(t, 11)
		e := testEngine(t, Config{Workers: workers, LeafSize: 1 << 8}, dark)
		wb, err := e.CaptureWindow(context.Background(), batched, nv)
		if err != nil {
			t.Fatal(err)
		}
		wp, err := e.CaptureWindow(context.Background(), perPacketOnly{plain}, nv)
		if err != nil {
			t.Fatal(err)
		}
		if wb.NV != wp.NV || wb.Dropped != wp.Dropped || wb.Leaves != wp.Leaves ||
			!wb.Start.Equal(wp.Start) || !wb.End.Equal(wp.End) {
			t.Fatalf("workers=%d: window accounting differs:\nslab       %+v\nper-packet %+v", workers, wb, wp)
		}
		be, pe := entries(wb.Matrix), entries(wp.Matrix)
		if len(be) != len(pe) {
			t.Fatalf("workers=%d: NNZ %d vs %d", workers, len(be), len(pe))
		}
		for i := range be {
			if be[i] != pe[i] {
				t.Fatalf("workers=%d: entry %d differs: %+v vs %+v", workers, i, be[i], pe[i])
			}
		}
	}
}

// TestBatchSourcePreservesStreamPosition captures several back-to-back
// windows from one shared stream on both reader paths: the slab reader
// must never consume a packet beyond each window's last accepted one,
// so every subsequent window cuts identical boundaries.
func TestBatchSourcePreservesStreamPosition(t *testing.T) {
	const nv = 1 << 10
	batched, dark := testStream(t, 23)
	plain, _ := testStream(t, 23)
	e := testEngine(t, Config{Workers: 1, LeafSize: 1 << 7}, dark)
	for window := 0; window < 4; window++ {
		wb, err := e.CaptureWindow(context.Background(), batched, nv)
		if err != nil {
			t.Fatal(err)
		}
		wp, err := e.CaptureWindow(context.Background(), perPacketOnly{plain}, nv)
		if err != nil {
			t.Fatal(err)
		}
		if wb.NV != wp.NV || wb.Dropped != wp.Dropped || !wb.End.Equal(wp.End) {
			t.Fatalf("window %d: diverged after shared-source capture:\nslab       %+v\nper-packet %+v",
				window, wb, wp)
		}
		be, pe := entries(wb.Matrix), entries(wp.Matrix)
		if len(be) != len(pe) {
			t.Fatalf("window %d: NNZ %d vs %d", window, len(be), len(pe))
		}
		for i := range be {
			if be[i] != pe[i] {
				t.Fatalf("window %d: entry %d differs", window, i)
			}
		}
		if window == 0 && wb.NV != nv {
			t.Fatalf("first window short: %d of %d", wb.NV, nv)
		}
	}
}

// TestBatchSourceCancellation asserts the slab reader honors context
// cancellation mid-window without leaking goroutines or wedging on
// backpressure.
func TestBatchSourceCancellation(t *testing.T) {
	st, dark := testStream(t, 5)
	e := testEngine(t, Config{Workers: 4, LeafSize: 1 << 6, Queue: 1}, dark)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.CaptureWindow(ctx, st, 1<<20); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled slab capture: err = %v", err)
	}
}
