package engine

import (
	"context"
	"testing"
	"time"

	"repro/internal/ipaddr"
	"repro/internal/pcap"
	"repro/internal/radiation"
	"repro/internal/stats"
)

// dropHeavy is a deterministic validity filter that rejects roughly a
// seventh of the stream based on packet contents alone, so every worker
// count sees the exact same accept/reject sequence while the drop path
// stays hot enough to matter.
func dropHeavy(dark ipaddr.Prefix) Filter {
	return func(p *pcap.Packet) bool {
		if !dark.Contains(p.Dst) || ipaddr.IsPrivate(p.Src) {
			return false
		}
		return (uint32(p.Src)*2654435761)%7 != 0
	}
}

// filteredStream builds a fixed-seed telescope stream for the parity
// sweep.
func filteredStream(t testing.TB, seed int64) (*radiation.Stream, ipaddr.Prefix) {
	t.Helper()
	cfg := radiation.DefaultConfig()
	cfg.Seed = seed
	cfg.NumSources = 4000
	cfg.ZM = stats.PaperZM(1 << 11)
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pop.TelescopeStream(3, time.Unix(0, 0)), cfg.Darkspace
}

// TestParallelFilterMatchesSerial is the in-shard filtering parity
// sweep: with a drop-heavy filter, every worker count — on both the
// slab reader and the per-packet reader — must reproduce the serial
// oracle's window exactly (NV, Dropped, Start/End timestamps, every
// matrix entry), and the per-shard drop counters must sum to the serial
// drop count. Run under -race in CI, this is also the proof that
// concurrent filter evaluation and per-shard drop accounting are sound.
func TestParallelFilterMatchesSerial(t *testing.T) {
	const nv = 1 << 12
	capture := func(workers int, perPacket bool) *Window {
		st, dark := filteredStream(t, 41)
		e, err := NewPerWorkerSlab(
			Config{Workers: workers, LeafSize: 1 << 8, Batch: 96},
			dropHeavy(dark),
			func(int) SlabMapper {
				return func(pkts []pcap.Packet, dst []Pair) {
					for i := range pkts {
						dst[i] = Pair{Row: uint32(pkts[i].Src), Col: uint32(pkts[i].Dst)}
					}
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		var src PacketSource = st
		if perPacket {
			src = perPacketOnly{st}
		}
		w, err := e.CaptureWindow(context.Background(), src, nv)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}

	serial := capture(1, false)
	if serial.NV != nv {
		t.Fatalf("serial NV = %d, want %d", serial.NV, nv)
	}
	if serial.Dropped < nv/20 {
		t.Fatalf("serial Dropped = %d: filter not drop-heavy enough to exercise the parity rule", serial.Dropped)
	}
	if got := sumDrops(serial.ShardDrops); got != serial.Dropped {
		t.Fatalf("serial ShardDrops sum %d != Dropped %d", got, serial.Dropped)
	}
	want := entries(serial.Matrix)

	for _, workers := range []int{1, 2, 3, 4, 8} {
		for _, perPacket := range []bool{false, true} {
			label := "slab"
			if perPacket {
				label = "per-packet"
			}
			w := capture(workers, perPacket)
			if w.NV != serial.NV || w.Dropped != serial.Dropped {
				t.Fatalf("workers=%d %s: NV/Dropped %d/%d, want %d/%d",
					workers, label, w.NV, w.Dropped, serial.NV, serial.Dropped)
			}
			if !w.Start.Equal(serial.Start) || !w.End.Equal(serial.End) {
				t.Fatalf("workers=%d %s: span [%v, %v], want [%v, %v]",
					workers, label, w.Start, w.End, serial.Start, serial.End)
			}
			if len(w.ShardDrops) != workers {
				t.Fatalf("workers=%d %s: ShardDrops has %d shards", workers, label, len(w.ShardDrops))
			}
			if got := sumDrops(w.ShardDrops); got != serial.Dropped {
				t.Fatalf("workers=%d %s: ShardDrops %v sums to %d, want %d",
					workers, label, w.ShardDrops, got, serial.Dropped)
			}
			got := entries(w.Matrix)
			if len(got) != len(want) {
				t.Fatalf("workers=%d %s: NNZ %d, want %d", workers, label, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d %s: entry %d = %+v, want %+v", workers, label, i, got[i], want[i])
				}
			}
		}
	}
}

// TestParallelFilterMultiWindow cuts several back-to-back filtered
// windows from one shared stream at every worker count: in-shard
// filtering must leave the source at exactly the serial consumed
// prefix after each window, or boundaries drift.
func TestParallelFilterMultiWindow(t *testing.T) {
	const nv = 1 << 10
	type span struct {
		nv, dropped int
		start, end  time.Time
	}
	capture := func(workers int) []span {
		st, dark := filteredStream(t, 43)
		e, err := New(Config{Workers: workers, LeafSize: 1 << 7}, dropHeavy(dark),
			func(p *pcap.Packet) Pair { return Pair{Row: uint32(p.Src), Col: uint32(p.Dst)} })
		if err != nil {
			t.Fatal(err)
		}
		var out []span
		for i := 0; i < 4; i++ {
			w, err := e.CaptureWindow(context.Background(), st, nv)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, span{w.NV, w.Dropped, w.Start, w.End})
		}
		return out
	}
	serial := capture(1)
	for _, workers := range []int{2, 4} {
		got := capture(workers)
		for i := range serial {
			if got[i].nv != serial[i].nv || got[i].dropped != serial[i].dropped ||
				!got[i].start.Equal(serial[i].start) || !got[i].end.Equal(serial[i].end) {
				t.Fatalf("workers=%d window %d: %+v, want %+v", workers, i, got[i], serial[i])
			}
		}
	}
}

func sumDrops(drops []int) int {
	n := 0
	for _, d := range drops {
		n += d
	}
	return n
}

// benchFilteredWindow drives repeated drop-heavy window captures; the
// filter_window benchreport metrics measure the same path end to end.
func benchFilteredWindow(b *testing.B, workers int) {
	cfg := radiation.DefaultConfig()
	cfg.Seed = 47
	cfg.NumSources = 4000
	cfg.ZM = stats.PaperZM(1 << 11)
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	e, err := New(Config{Workers: workers, LeafSize: 1 << 10}, dropHeavy(cfg.Darkspace),
		func(p *pcap.Packet) Pair { return Pair{Row: uint32(p.Src), Col: uint32(p.Dst)} })
	if err != nil {
		b.Fatal(err)
	}
	const nv = 1 << 14
	st := pop.TelescopeStream(3, time.Unix(0, 0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := e.CaptureWindow(context.Background(), st, nv)
		if err != nil {
			b.Fatal(err)
		}
		if w.NV < nv {
			b.StopTimer()
			st = pop.TelescopeStream(3, time.Unix(0, 0))
			b.StartTimer()
		}
	}
}

func BenchmarkFilteredWindowW1(b *testing.B) { benchFilteredWindow(b, 1) }
func BenchmarkFilteredWindowW8(b *testing.B) { benchFilteredWindow(b, 8) }
