// Package engine implements the sharded, streaming window build at the
// heart of the pipeline: packet sources (the telescope synthesizer, pcap
// readers) feed raw packet slabs to N shard workers — each filtering,
// mapping, and accumulating hypersparse leaf matrices of LeafSize
// entries — and a hierarchical merge tree reduces the shards into one
// per-window matrix.
//
// The engine is the parallel counterpart of the paper's construction:
// NV = 2^17-packet leaves are built independently and hierarchically
// summed into a 2^30-packet window. Because matrix addition is
// commutative and associative, the sharded build produces exactly the
// same matrix as the serial build — only the leaf boundaries differ —
// which is what makes Workers=1 a usable correctness oracle for any
// worker count.
//
// # Filter timestamp-parity rule
//
// The validity filter runs inside the shard workers, not on the reader
// goroutine, yet filtered windows are byte-identical to the serial
// oracle. Two rules make that hold:
//
//  1. Slab cap: every slab read is capped at the number of accepted
//     packets the window still needs (nv - NV). Accepted <= raw, so the
//     window can only reach nv on a slab that was accepted in full —
//     the nv-th accepted packet is always the last raw packet of its
//     slab, the consumed stream prefix equals the per-packet oracle's,
//     and a dropped packet can never shift a window boundary.
//  2. Ordered merge: workers filter disjoint chunks of one slab behind
//     a per-slab barrier and report per-chunk accept counts and
//     first/last accepted timestamps; the reader merges those in chunk
//     (= stream) order, so Start/End/NV/Dropped are computed in exactly
//     the order the serial loop would have seen the packets.
//
// The reader overlaps I/O with the barrier: while workers chew slab k
// it speculatively reads up to nv - NV - len(slab k) further packets —
// at least that many are still needed even if slab k is accepted in
// full, so speculation never consumes a packet the oracle would have
// left in the source (multi-window captures over one shared source cut
// identical boundaries).
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/hypersparse"
	"repro/internal/pcap"
)

// PacketSource yields packets in time order; Next returns false when the
// stream is exhausted. It is structurally identical to the telescope's
// PacketSource, so any source usable there plugs in here.
type PacketSource interface {
	Next(*pcap.Packet) bool
}

// Errorer is optionally implemented by sources that can fail mid-stream
// (e.g. a pcap reader hitting a truncated file). The engine checks it
// after the stream ends and surfaces the error.
type Errorer interface {
	Err() error
}

// BatchSource is optionally implemented by sources that can emit many
// packets per call (radiation.Stream, telescope.ReaderSource). NextBatch
// must fill dst from the front and return how many packets were
// produced, behaving exactly like len(dst) successful Next calls: same
// packets, same order, same stream position. When a source implements
// it, the engine's reader pulls slabs instead of single packets,
// amortizing the per-packet dispatch that otherwise bottlenecks every
// shard worker behind the reader goroutine.
//
// The reader caps each slab at the number of packets still missing from
// the window (see the timestamp-parity rule above), so a capture never
// consumes a packet the per-packet path would have left in the source:
// multi-window captures over one shared source cut identical window
// boundaries either way.
type BatchSource interface {
	NextBatch(dst []pcap.Packet) int
}

// batchAdapter lifts a per-packet source to the BatchSource contract by
// repeated Next calls, so the capture paths carry exactly one reader
// loop each (the slab loop) instead of a slab/per-packet pair that must
// be kept in sync. The slab-size cap in the capture loops makes this
// consume exactly the packets a per-packet loop would (see BatchSource).
type batchAdapter struct{ src PacketSource }

func (a batchAdapter) NextBatch(dst []pcap.Packet) int {
	n := 0
	for n < len(dst) && a.src.Next(&dst[n]) {
		n++
	}
	return n
}

// Filter reports whether a packet belongs in the window (the telescope's
// validity filter). It is compiled/constructed once per engine and, with
// Workers > 1, evaluated concurrently on the shard workers — it must be
// safe for concurrent use (pcap.Filter's compiled closures are).
type Filter func(*pcap.Packet) bool

// Pair is one accepted packet reduced to its matrix coordinates.
type Pair struct {
	Row, Col uint32
}

// Mapper converts an accepted packet to matrix coordinates; CryptoPAN
// anonymization lives here. With Workers > 1 it runs concurrently on the
// shard workers and must be safe for concurrent use.
type Mapper func(*pcap.Packet) Pair

// MapperFactory builds one Mapper per shard worker for each capture.
// Each returned Mapper is only ever called from its own worker
// goroutine, so it may keep unsynchronized per-worker state (the
// telescope hangs a lock-free L1 anonymization memo here). Every Mapper
// produced by one factory must compute the same function.
type SlabMapperFactory func(shard int) SlabMapper

// SlabMapper converts a slab of accepted packets to matrix coordinates:
// dst[i] must receive pkts[i]'s pair, for all i (len(dst) >= len(pkts)).
// Slab granularity lets the mapper batch its own internals — the
// telescope anonymizes a whole slab of addresses through one batched
// CryptoPAN call instead of two scalar calls per packet. Like Mapper, a
// SlabMapper from one factory shard is only ever called from its own
// worker goroutine and may keep unsynchronized per-worker state, and
// every mapper from one factory must compute the same per-packet
// function.
type SlabMapper func(pkts []pcap.Packet, dst []Pair)

// MapperFactory builds one Mapper per shard worker for each capture —
// the per-packet counterpart of SlabMapperFactory, lifted by
// NewPerWorker.
type MapperFactory func(shard int) Mapper

// Config parameterizes an Engine.
type Config struct {
	// Workers is the shard-worker count: 1 runs the serial degenerate
	// path (the correctness oracle), <= 0 uses GOMAXPROCS.
	Workers int
	// LeafSize is the number of entries per leaf matrix (the paper's
	// leaf NV is 2^17).
	LeafSize int
	// Batch is the per-worker chunk granularity: a sharded slab holds up
	// to Batch x Workers raw packets and is split into Workers chunks of
	// at most Batch packets; 0 defaults to LeafSize so one chunk can
	// fill one leaf.
	Batch int
	// Queue is retained for configuration compatibility. The slab
	// barrier replaced the in-flight batch queue (at most one slab of
	// chunks is ever outstanding), so the value is no longer read.
	Queue int
}

// normalized resolves defaults into concrete values.
func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Batch <= 0 {
		c.Batch = c.LeafSize
	}
	if c.Queue <= 0 {
		c.Queue = 2 * c.Workers
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.LeafSize <= 0 {
		return fmt.Errorf("engine: LeafSize must be positive, got %d", c.LeafSize)
	}
	return nil
}

// Engine is a configured, reusable window builder. Construct with New,
// NewPerWorker, or NewPerWorkerSlab.
type Engine struct {
	cfg      Config
	filter   Filter
	factory  SlabMapperFactory
	pool     sync.Pool // serial-path slab buffers (Batch packets)
	slabPool sync.Pool // sharded-path double buffers (Batch x Workers packets)
	pairPool sync.Pool // per-worker coordinate slabs (Batch pairs)
	accPool  sync.Pool // shard accumulators, retained across windows
}

// New builds an Engine from a validity filter and a coordinate mapper.
// A nil filter accepts every packet.
func New(cfg Config, filter Filter, mapper Mapper) (*Engine, error) {
	if mapper == nil {
		return nil, fmt.Errorf("engine: mapper required")
	}
	return NewPerWorker(cfg, filter, func(int) Mapper { return mapper })
}

// NewPerWorker builds an Engine whose shard workers each get their own
// Mapper from factory at the start of every capture; use it when the
// mapper benefits from per-worker state. A nil filter accepts every
// packet.
func NewPerWorker(cfg Config, filter Filter, factory MapperFactory) (*Engine, error) {
	if factory == nil {
		return nil, fmt.Errorf("engine: mapper factory required")
	}
	return NewPerWorkerSlab(cfg, filter, func(shard int) SlabMapper {
		m := factory(shard)
		return func(pkts []pcap.Packet, dst []Pair) {
			for i := range pkts {
				dst[i] = m(&pkts[i])
			}
		}
	})
}

// NewPerWorkerSlab builds an Engine whose shard workers map whole
// accepted-packet slabs at a time through per-worker SlabMappers; use it
// when the mapper can batch its own internals (the telescope's batched
// CryptoPAN anonymization). A nil filter accepts every packet.
func NewPerWorkerSlab(cfg Config, filter Filter, factory SlabMapperFactory) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if factory == nil {
		return nil, fmt.Errorf("engine: mapper factory required")
	}
	if filter == nil {
		filter = func(*pcap.Packet) bool { return true }
	}
	cfg = cfg.normalized()
	e := &Engine{cfg: cfg, filter: filter, factory: factory}
	e.pool.New = func() interface{} {
		s := make([]pcap.Packet, 0, cfg.Batch)
		return &s
	}
	e.slabPool.New = func() interface{} {
		s := make([]pcap.Packet, 0, cfg.Batch*cfg.Workers)
		return &s
	}
	e.pairPool.New = func() interface{} {
		s := make([]Pair, cfg.Batch)
		return &s
	}
	e.accPool.New = func() interface{} {
		return hypersparse.NewAccumulator(cfg.LeafSize, 1)
	}
	return e, nil
}

// Config returns the normalized configuration.
func (e *Engine) Config() Config { return e.cfg }

// Window is one constant-packet capture: the merged matrix plus the
// stream accounting the telescope records in Table I.
type Window struct {
	Start, End time.Time
	NV         int // valid packets in the matrix
	Dropped    int // packets rejected by the filter
	Leaves     int // leaf matrices cut across all shards
	Shards     int // shard workers that contributed leaves
	// ShardDrops is the filter's per-shard drop accounting (index =
	// shard worker). The distribution across shards depends on which
	// worker filtered which chunk, but the sum always equals Dropped —
	// and Dropped itself is identical to the serial oracle's count. The
	// serial path reports one shard.
	ShardDrops []int
	Matrix     *hypersparse.Matrix
}

// Duration returns the wall-clock span of the window.
func (w *Window) Duration() time.Duration { return w.End.Sub(w.Start) }

// CaptureWindow reads from src until nv accepted packets are collected
// (or the stream ends), building the window matrix with the configured
// shard count. The capture stops early with ctx.Err() when ctx is
// cancelled; no goroutines outlive the call.
func (e *Engine) CaptureWindow(ctx context.Context, src PacketSource, nv int) (*Window, error) {
	if nv <= 0 {
		return nil, fmt.Errorf("engine: window size must be positive, got %d", nv)
	}
	bs, ok := src.(BatchSource)
	if !ok {
		bs = batchAdapter{src: src}
	}
	var w *Window
	var err error
	if e.cfg.Workers == 1 {
		w, err = e.captureSerial(ctx, bs, nv)
	} else {
		w, err = e.captureSharded(ctx, bs, nv)
	}
	if err != nil {
		return nil, err
	}
	if es, ok := src.(Errorer); ok {
		if serr := es.Err(); serr != nil {
			return nil, serr
		}
	}
	return w, nil
}

// ctxPollInterval bounds how many packets are read between context
// polls on the serial path, so an abandoned capture stops promptly even
// when the filter rejects everything. The sharded path polls once per
// slab, which bounds the same latency at one slab's work.
const ctxPollInterval = 4096

// captureSerial is the Workers=1 degenerate path: one goroutine
// interleaves filtering, mapping, and leaf assembly, exactly mirroring
// the pre-engine telescope build. It is kept as the correctness oracle
// the sharded path is diffed against. Filtering compacts each slab's
// accepted packets in place so the slab mapper sees one contiguous run,
// same as on the shard workers.
func (e *Engine) captureSerial(ctx context.Context, src BatchSource, nv int) (*Window, error) {
	acc := e.getAcc()
	defer e.accPool.Put(acc)
	mapper := e.factory(0)
	pairsBuf := e.getPairs()
	defer e.putPairs(pairsBuf)
	pairs := *pairsBuf
	w := &Window{Shards: 1}
	raw := e.getBatch()
	defer e.putBatch(raw)
	slab := (*raw)[:cap(*raw)]
	read := 0
	for w.NV < nv {
		want := nv - w.NV
		if want > len(slab) {
			want = len(slab)
		}
		n := src.NextBatch(slab[:want])
		if n == 0 {
			break
		}
		if read += n; read >= ctxPollInterval {
			read = 0
			if ctx.Err() != nil {
				acc.Discard() // O(1) reset before returning to the pool; no merge
				return nil, ctx.Err()
			}
		}
		kept := 0
		for i := range slab[:n] {
			pkt := &slab[i]
			if !e.filter(pkt) {
				w.Dropped++
				continue
			}
			if w.NV+kept == 0 {
				w.Start = pkt.Time
			}
			w.End = pkt.Time
			if kept != i {
				slab[kept] = *pkt
			}
			kept++
		}
		if kept > 0 {
			mapper(slab[:kept], pairs[:kept])
			for _, p := range pairs[:kept] {
				acc.Add(p.Row, p.Col, 1)
			}
			w.NV += kept
		}
	}
	w.Leaves = acc.Leaves()
	if w.NV%e.cfg.LeafSize != 0 {
		w.Leaves++ // partial tail leaf
	}
	w.ShardDrops = []int{w.Dropped}
	w.Matrix = acc.Finish()
	return w, nil
}

// chunkTask is one contiguous span of the current slab handed to a
// shard worker: filter, map, accumulate, report into res, then release
// the slab barrier.
type chunkTask struct {
	pkts []pcap.Packet
	res  *chunkResult
	wg   *sync.WaitGroup
}

// chunkResult is what the reader needs to merge a chunk's stream
// accounting in order: how many packets survived the filter and the
// timestamps of the first and last survivors.
type chunkResult struct {
	accepted    int
	first, last time.Time
}

// shardResult is one worker's contribution to the merge tree.
type shardResult struct {
	shard  int
	matrix *hypersparse.Matrix
	leaves int
	drops  int
}

// captureSharded is the parallel path: the caller's goroutine reads raw
// slabs and splits each into Workers chunks behind a per-slab barrier;
// the shard workers filter, map, and accumulate their chunks in
// parallel (per-shard drop counters, merged after the capture), while
// the reader speculatively pre-reads the next slab. See the package
// comment for the parity argument.
func (e *Engine) captureSharded(ctx context.Context, src BatchSource, nv int) (*Window, error) {
	workers := e.cfg.Workers
	// One task channel per worker: chunk i of every slab goes to shard
	// worker i. The deterministic assignment makes leaf and drop
	// accounting reproducible across runs (channel scheduling can no
	// longer shuffle chunks between shards), which is what lets the
	// differential tests compare sharded windows field for field.
	tasks := make([]chan chunkTask, workers)
	results := make(chan shardResult, workers)
	var workerWG sync.WaitGroup
	for i := 0; i < workers; i++ {
		tasks[i] = make(chan chunkTask, 1)
		workerWG.Add(1)
		go func(shard int) {
			defer workerWG.Done()
			e.shardWorker(ctx, shard, tasks[shard], results)
		}(i)
	}

	w := &Window{}
	curBuf, nextBuf := e.getSlab(), e.getSlab()
	defer e.putSlab(curBuf)
	defer e.putSlab(nextBuf)
	cur, next := (*curBuf)[:cap(*curBuf)], (*nextBuf)[:cap(*nextBuf)]
	chunks := make([]chunkResult, workers)
	var barrier sync.WaitGroup
	var readErr error

	curN := 0
	{
		want := nv
		if want > len(cur) {
			want = len(cur)
		}
		curN = src.NextBatch(cur[:want])
	}
	for curN > 0 {
		if err := ctx.Err(); err != nil {
			readErr = err
			break
		}
		// Split the slab into at most one chunk per worker. Each task
		// channel holds one entry and is empty here (the previous barrier
		// drained it), so dispatch never blocks.
		per := (curN + workers - 1) / workers
		nchunks := 0
		for off := 0; off < curN; off += per {
			end := off + per
			if end > curN {
				end = curN
			}
			chunks[nchunks] = chunkResult{}
			barrier.Add(1)
			tasks[nchunks] <- chunkTask{pkts: cur[off:end], res: &chunks[nchunks], wg: &barrier}
			nchunks++
		}
		// Speculative read-ahead, overlapped with the workers: even if
		// the in-flight slab is accepted in full the window still needs
		// nv - NV - curN more packets, so reading that many can never
		// overrun the oracle's consumed prefix. spec > 0 only when the
		// window cannot complete on the in-flight slab.
		spec := nv - w.NV - curN
		if spec > len(next) {
			spec = len(next)
		}
		nextN := 0
		specDone := spec > 0
		if specDone {
			nextN = src.NextBatch(next[:spec])
		}
		barrier.Wait()
		// Merge chunk accounting in stream order (parity rule 2).
		for i := 0; i < nchunks; i++ {
			r := &chunks[i]
			if r.accepted > 0 {
				if w.NV == 0 {
					w.Start = r.first
				}
				w.End = r.last
				w.NV += r.accepted
			}
		}
		if w.NV >= nv {
			break
		}
		if specDone {
			if nextN == 0 {
				break // stream ran dry during the speculative read
			}
			cur, next = next, cur
			curN = nextN
			continue
		}
		// No speculation was possible (the slab could have completed the
		// window but didn't): read synchronously with the exact cap.
		want := nv - w.NV
		if want > len(cur) {
			want = len(cur)
		}
		curN = src.NextBatch(cur[:want])
	}
	for i := range tasks {
		close(tasks[i])
	}
	workerWG.Wait()
	close(results)

	if readErr == nil {
		readErr = ctx.Err()
	}
	if readErr != nil {
		// Drain results so shard matrices are released before returning.
		for range results {
		}
		return nil, readErr
	}

	shardMats := make([]*hypersparse.Matrix, 0, workers)
	w.ShardDrops = make([]int, workers)
	for r := range results {
		w.ShardDrops[r.shard] = r.drops
		w.Dropped += r.drops
		if r.leaves == 0 {
			continue
		}
		w.Leaves += r.leaves
		w.Shards++
		shardMats = append(shardMats, r.matrix)
	}
	w.Matrix = hypersparse.HierSum(shardMats, workers)
	return w, nil
}

// shardWorker drains chunk tasks: filter its chunk (counting drops into
// the per-shard counter), compact the survivors, map them to
// coordinates through the per-worker slab mapper, and accumulate leaf
// matrices; then reduce its leaves and report one shard matrix. On
// cancellation it stops doing work but keeps releasing barriers so the
// reader never deadlocks.
func (e *Engine) shardWorker(ctx context.Context, shard int, tasks <-chan chunkTask, results chan<- shardResult) {
	acc := e.getAcc()
	defer e.accPool.Put(acc)
	mapper := e.factory(shard)
	pairsBuf := e.getPairs()
	pairs := *pairsBuf
	drops := 0
	ingested := 0
	for t := range tasks {
		if ctx.Err() != nil {
			t.wg.Done() // abandoned: release the barrier, contribute nothing
			continue
		}
		pkts := t.pkts
		kept := 0
		for i := range pkts {
			p := &pkts[i]
			if !e.filter(p) {
				drops++
				continue
			}
			if kept == 0 {
				t.res.first = p.Time
			}
			t.res.last = p.Time
			if kept != i {
				pkts[kept] = *p
			}
			kept++
		}
		t.res.accepted = kept
		if kept > 0 {
			mapper(pkts[:kept], pairs[:kept])
			for _, p := range pairs[:kept] {
				acc.Add(p.Row, p.Col, 1)
			}
			ingested += kept
		}
		t.wg.Done()
	}
	*pairsBuf = pairs
	e.putPairs(pairsBuf)
	if ctx.Err() != nil {
		// The capture is abandoned and the result will be drained unread:
		// skip the merge entirely.
		acc.Discard()
		results <- shardResult{shard: shard}
		return
	}
	leaves := acc.Leaves()
	if ingested%e.cfg.LeafSize != 0 {
		leaves++ // partial tail leaf
	}
	results <- shardResult{shard: shard, matrix: acc.Finish(), leaves: leaves, drops: drops}
}

// getAcc takes a pooled shard accumulator; accumulators return to the
// pool already reset (Finish resets), retaining their builder buffers
// so repeated windows allocate nothing for leaf assembly.
func (e *Engine) getAcc() *hypersparse.Accumulator {
	return e.accPool.Get().(*hypersparse.Accumulator)
}

func (e *Engine) getBatch() *[]pcap.Packet {
	b := e.pool.Get().(*[]pcap.Packet)
	*b = (*b)[:0]
	return b
}

func (e *Engine) putBatch(b *[]pcap.Packet) {
	e.pool.Put(b)
}

func (e *Engine) getSlab() *[]pcap.Packet {
	b := e.slabPool.Get().(*[]pcap.Packet)
	*b = (*b)[:0]
	return b
}

func (e *Engine) putSlab(b *[]pcap.Packet) {
	e.slabPool.Put(b)
}

func (e *Engine) getPairs() *[]Pair {
	return e.pairPool.Get().(*[]Pair)
}

func (e *Engine) putPairs(b *[]Pair) {
	e.pairPool.Put(b)
}
