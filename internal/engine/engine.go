// Package engine implements the sharded, streaming window build at the
// heart of the pipeline: packet sources (the telescope synthesizer, pcap
// readers) feed bounded channels into N shard workers, each accumulating
// hypersparse leaf matrices of LeafSize entries, and a hierarchical
// merge tree reduces the shards into one per-window matrix.
//
// The engine is the parallel counterpart of the paper's construction:
// NV = 2^17-packet leaves are built independently and hierarchically
// summed into a 2^30-packet window. Because matrix addition is
// commutative and associative, the sharded build produces exactly the
// same matrix as the serial build — only the leaf boundaries differ —
// which is what makes Workers=1 a usable correctness oracle for any
// worker count.
//
// Flow control is explicit throughout: the reader blocks when all shard
// queues are full (backpressure, bounded memory), and every blocking
// point selects on context cancellation so a capture can be abandoned
// mid-window without leaking goroutines.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/hypersparse"
	"repro/internal/pcap"
)

// PacketSource yields packets in time order; Next returns false when the
// stream is exhausted. It is structurally identical to the telescope's
// PacketSource, so any source usable there plugs in here.
type PacketSource interface {
	Next(*pcap.Packet) bool
}

// Errorer is optionally implemented by sources that can fail mid-stream
// (e.g. a pcap reader hitting a truncated file). The engine checks it
// after the stream ends and surfaces the error.
type Errorer interface {
	Err() error
}

// BatchSource is optionally implemented by sources that can emit many
// packets per call (radiation.Stream). NextBatch must fill dst from the
// front and return how many packets were produced, behaving exactly
// like len(dst) successful Next calls: same packets, same order, same
// stream position. When a source implements it, the engine's reader
// pulls slabs instead of single packets, amortizing the per-packet
// dispatch that otherwise bottlenecks every shard worker behind the
// reader goroutine.
//
// The reader caps each slab at the number of packets still missing from
// the window, so a capture never consumes a packet the per-packet path
// would have left in the source: multi-window captures over one shared
// source cut identical window boundaries either way.
type BatchSource interface {
	NextBatch(dst []pcap.Packet) int
}

// batchAdapter lifts a per-packet source to the BatchSource contract by
// repeated Next calls, so the capture paths carry exactly one reader
// loop each (the slab loop) instead of a slab/per-packet pair that must
// be kept in sync. The slab-size cap in the capture loops makes this
// consume exactly the packets a per-packet loop would (see BatchSource).
type batchAdapter struct{ src PacketSource }

func (a batchAdapter) NextBatch(dst []pcap.Packet) int {
	n := 0
	for n < len(dst) && a.src.Next(&dst[n]) {
		n++
	}
	return n
}

// Filter reports whether a packet belongs in the window (the telescope's
// validity filter). It runs on the reader goroutine.
type Filter func(*pcap.Packet) bool

// Pair is one accepted packet reduced to its matrix coordinates.
type Pair struct {
	Row, Col uint32
}

// Mapper converts an accepted packet to matrix coordinates; CryptoPAN
// anonymization lives here. With Workers > 1 it runs concurrently on the
// shard workers and must be safe for concurrent use.
type Mapper func(*pcap.Packet) Pair

// MapperFactory builds one Mapper per shard worker for each capture.
// Each returned Mapper is only ever called from its own worker
// goroutine, so it may keep unsynchronized per-worker state (the
// telescope hangs a lock-free L1 anonymization memo here). Every Mapper
// produced by one factory must compute the same function.
type MapperFactory func(shard int) Mapper

// Config parameterizes an Engine.
type Config struct {
	// Workers is the shard-worker count: 1 runs the serial degenerate
	// path (the correctness oracle), <= 0 uses GOMAXPROCS.
	Workers int
	// LeafSize is the number of entries per leaf matrix (the paper's
	// leaf NV is 2^17).
	LeafSize int
	// Batch is the number of accepted packets handed to a shard at once;
	// 0 defaults to LeafSize so one batch fills one leaf.
	Batch int
	// Queue is the bound on in-flight batches (the backpressure window);
	// 0 defaults to 2 x Workers.
	Queue int
}

// normalized resolves defaults into concrete values.
func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Batch <= 0 {
		c.Batch = c.LeafSize
	}
	if c.Queue <= 0 {
		c.Queue = 2 * c.Workers
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.LeafSize <= 0 {
		return fmt.Errorf("engine: LeafSize must be positive, got %d", c.LeafSize)
	}
	return nil
}

// Engine is a configured, reusable window builder. Construct with New
// or NewPerWorker.
type Engine struct {
	cfg     Config
	filter  Filter
	factory MapperFactory
	pool    sync.Pool // batch buffers recycled between reader and shards
	accPool sync.Pool // shard accumulators, retained across windows
}

// New builds an Engine from a validity filter and a coordinate mapper.
// A nil filter accepts every packet.
func New(cfg Config, filter Filter, mapper Mapper) (*Engine, error) {
	if mapper == nil {
		return nil, fmt.Errorf("engine: mapper required")
	}
	return NewPerWorker(cfg, filter, func(int) Mapper { return mapper })
}

// NewPerWorker builds an Engine whose shard workers each get their own
// Mapper from factory at the start of every capture; use it when the
// mapper benefits from per-worker state. A nil filter accepts every
// packet.
func NewPerWorker(cfg Config, filter Filter, factory MapperFactory) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if factory == nil {
		return nil, fmt.Errorf("engine: mapper factory required")
	}
	if filter == nil {
		filter = func(*pcap.Packet) bool { return true }
	}
	cfg = cfg.normalized()
	e := &Engine{cfg: cfg, filter: filter, factory: factory}
	e.pool.New = func() interface{} {
		s := make([]pcap.Packet, 0, cfg.Batch)
		return &s
	}
	e.accPool.New = func() interface{} {
		return hypersparse.NewAccumulator(cfg.LeafSize, 1)
	}
	return e, nil
}

// Config returns the normalized configuration.
func (e *Engine) Config() Config { return e.cfg }

// Window is one constant-packet capture: the merged matrix plus the
// stream accounting the telescope records in Table I.
type Window struct {
	Start, End time.Time
	NV         int // valid packets in the matrix
	Dropped    int // packets rejected by the filter
	Leaves     int // leaf matrices cut across all shards
	Shards     int // shard workers that contributed leaves
	Matrix     *hypersparse.Matrix
}

// Duration returns the wall-clock span of the window.
func (w *Window) Duration() time.Duration { return w.End.Sub(w.Start) }

// CaptureWindow reads from src until nv accepted packets are collected
// (or the stream ends), building the window matrix with the configured
// shard count. The capture stops early with ctx.Err() when ctx is
// cancelled; no goroutines outlive the call.
func (e *Engine) CaptureWindow(ctx context.Context, src PacketSource, nv int) (*Window, error) {
	if nv <= 0 {
		return nil, fmt.Errorf("engine: window size must be positive, got %d", nv)
	}
	bs, ok := src.(BatchSource)
	if !ok {
		bs = batchAdapter{src: src}
	}
	var w *Window
	var err error
	if e.cfg.Workers == 1 {
		w, err = e.captureSerial(ctx, bs, nv)
	} else {
		w, err = e.captureSharded(ctx, bs, nv)
	}
	if err != nil {
		return nil, err
	}
	if es, ok := src.(Errorer); ok {
		if serr := es.Err(); serr != nil {
			return nil, serr
		}
	}
	return w, nil
}

// ctxPollInterval bounds how many packets are read between context
// polls, so an abandoned capture stops promptly even when the filter
// rejects everything (a batch, and hence a send-side poll, only fills
// with accepted packets).
const ctxPollInterval = 4096

// captureSerial is the Workers=1 degenerate path: one goroutine
// interleaves filtering, mapping, and leaf assembly, exactly mirroring
// the pre-engine telescope build. It is kept as the correctness oracle
// the sharded path is diffed against.
func (e *Engine) captureSerial(ctx context.Context, src BatchSource, nv int) (*Window, error) {
	acc := e.getAcc()
	defer e.accPool.Put(acc)
	mapper := e.factory(0)
	w := &Window{Shards: 1}
	raw := e.getBatch()
	defer e.putBatch(raw)
	slab := (*raw)[:cap(*raw)]
	read := 0
	for w.NV < nv {
		want := nv - w.NV
		if want > len(slab) {
			want = len(slab)
		}
		n := src.NextBatch(slab[:want])
		if n == 0 {
			break
		}
		if read += n; read >= ctxPollInterval {
			read = 0
			if ctx.Err() != nil {
				acc.Discard() // O(1) reset before returning to the pool; no merge
				return nil, ctx.Err()
			}
		}
		for i := range slab[:n] {
			pkt := &slab[i]
			if !e.filter(pkt) {
				w.Dropped++
				continue
			}
			e.observe(w, pkt)
			p := mapper(pkt)
			acc.Add(p.Row, p.Col, 1)
			w.NV++
		}
	}
	w.Leaves = acc.Leaves()
	if w.NV%e.cfg.LeafSize != 0 {
		w.Leaves++ // partial tail leaf
	}
	w.Matrix = acc.Finish()
	return w, nil
}

// shardResult is one worker's contribution to the merge tree.
type shardResult struct {
	matrix *hypersparse.Matrix
	leaves int
}

// captureSharded is the parallel path: the caller's goroutine reads and
// filters the stream while Workers shard goroutines map coordinates and
// cut leaves, each reducing its own leaves before the final cross-shard
// hierarchical merge.
func (e *Engine) captureSharded(ctx context.Context, src BatchSource, nv int) (*Window, error) {
	batches := make(chan *[]pcap.Packet, e.cfg.Queue)
	results := make(chan shardResult, e.cfg.Workers)
	var wg sync.WaitGroup
	for i := 0; i < e.cfg.Workers; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			e.shardWorker(ctx, shard, batches, results)
		}(i)
	}

	// The reader pulls whole slabs and compacts the accepted packets
	// into shard batches, so the per-packet cost on the (serial) reader
	// goroutine is one filter call and one copy.
	w := &Window{}
	batch := e.getBatch()
	var readErr error
	raw := e.getBatch()
	slab := (*raw)[:cap(*raw)]
	read := 0
	for w.NV < nv && batch != nil {
		want := nv - w.NV
		if want > len(slab) {
			want = len(slab)
		}
		n := src.NextBatch(slab[:want])
		if n == 0 {
			break
		}
		if read += n; read >= ctxPollInterval {
			read = 0
			if ctx.Err() != nil {
				readErr = ctx.Err()
				e.putBatch(batch)
				batch = nil
				break
			}
		}
		for i := range slab[:n] {
			pkt := &slab[i]
			if !e.filter(pkt) {
				w.Dropped++
				continue
			}
			e.observe(w, pkt)
			*batch = append(*batch, *pkt)
			w.NV++
			if len(*batch) == e.cfg.Batch {
				if readErr = e.send(ctx, batches, batch); readErr != nil {
					batch = nil
					break
				}
				batch = e.getBatch()
			}
		}
	}
	e.putBatch(raw)
	if readErr == nil && batch != nil && len(*batch) > 0 {
		readErr = e.send(ctx, batches, batch)
	}
	close(batches)
	wg.Wait()
	close(results)

	if readErr != nil {
		// Drain results so shard matrices are released before returning.
		for range results {
		}
		return nil, readErr
	}
	if err := ctx.Err(); err != nil {
		for range results {
		}
		return nil, err
	}

	shardMats := make([]*hypersparse.Matrix, 0, e.cfg.Workers)
	for r := range results {
		if r.leaves == 0 {
			continue
		}
		w.Leaves += r.leaves
		w.Shards++
		shardMats = append(shardMats, r.matrix)
	}
	w.Matrix = hypersparse.HierSum(shardMats, e.cfg.Workers)
	return w, nil
}

// shardWorker drains batches, mapping each packet to coordinates and
// accumulating leaf matrices, then reduces its leaves and reports one
// shard matrix. On cancellation it keeps draining (so the reader is
// never blocked on a full queue) but stops doing work.
func (e *Engine) shardWorker(ctx context.Context, shard int, batches <-chan *[]pcap.Packet, results chan<- shardResult) {
	acc := e.getAcc()
	defer e.accPool.Put(acc)
	mapper := e.factory(shard)
	ingested := 0
	for batch := range batches {
		if ctx.Err() != nil {
			e.putBatch(batch)
			continue
		}
		for i := range *batch {
			p := mapper(&(*batch)[i])
			acc.Add(p.Row, p.Col, 1)
		}
		ingested += len(*batch)
		e.putBatch(batch)
	}
	if ctx.Err() != nil {
		// The capture is abandoned and the result will be drained unread:
		// skip the merge entirely.
		acc.Discard()
		results <- shardResult{}
		return
	}
	leaves := acc.Leaves()
	if ingested%e.cfg.LeafSize != 0 {
		leaves++ // partial tail leaf
	}
	results <- shardResult{matrix: acc.Finish(), leaves: leaves}
}

// getAcc takes a pooled shard accumulator; accumulators return to the
// pool already reset (Finish resets), retaining their builder buffers
// so repeated windows allocate nothing for leaf assembly.
func (e *Engine) getAcc() *hypersparse.Accumulator {
	return e.accPool.Get().(*hypersparse.Accumulator)
}

// send hands a full batch to the shard pool, blocking under backpressure
// until a queue slot frees or ctx is cancelled.
func (e *Engine) send(ctx context.Context, batches chan<- *[]pcap.Packet, batch *[]pcap.Packet) error {
	select {
	case batches <- batch:
		return nil
	case <-ctx.Done():
		e.putBatch(batch)
		return ctx.Err()
	}
}

// observe updates the window's time span for an accepted packet.
func (e *Engine) observe(w *Window, pkt *pcap.Packet) {
	if w.NV == 0 {
		w.Start = pkt.Time
	}
	w.End = pkt.Time
}

func (e *Engine) getBatch() *[]pcap.Packet {
	b := e.pool.Get().(*[]pcap.Packet)
	*b = (*b)[:0]
	return b
}

func (e *Engine) putBatch(b *[]pcap.Packet) {
	e.pool.Put(b)
}
