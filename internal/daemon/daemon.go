// Package daemon implements the resident study process behind
// cmd/studyd: one long-lived owner of a single study that grows
// incrementally — telescope windows and honeyfarm months arrive over a
// small ingest API instead of being enumerated up front — and serves
// all seven paper artifacts (Tables I-II, Figures 3-8) over HTTP as
// JSON or TSV through the same report.WriteJSON/WriteTSV lowering
// every batch CLI uses.
//
// The design is the control-room shape: one mutator, many cheap
// readers. All ingest is serialized on one goroutine-at-a-time mutex
// (the same contract as the serial batch loop, whose IngestMonth /
// IngestSnapshot units the daemon calls verbatim — parity with a
// from-scratch batch run is by construction, and proven byte-for-byte
// in the tests). After each ingest the daemon asks the report graph to
// invalidate exactly the artifacts that transitively depend on the
// touched source (report.SrcMonths or report.SrcSnapshots), re-renders
// only those, reuses the untouched artifacts' bytes, and publishes the
// whole set with one atomic pointer swap — so a poller costs one
// atomic load plus a map lookup, never observes a half-recomputed
// graph, and thousands of concurrent pollers ride one immutable
// rendered snapshot between updates.
//
// With a store configured the daemon is durable: every ingest
// publishes its table through tripled first (the paper's Accumulo
// role) and then appends a ledger row under studyd/ingest/; ledger
// presence therefore implies the data rows are complete. On restart
// the daemon replays the ledger — months in month order, snapshots in
// time order, the batch loop's order — rebuilding the exact state, and
// re-publishing idempotently if a crash landed between data and
// ledger.
package daemon

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/assoc"
	"repro/internal/core"
	"repro/internal/correlate"
	"repro/internal/report"
	"repro/internal/telescope"
	"repro/internal/tripled"
	"repro/internal/tripled/cluster"
)

// Ledger row prefixes in the tripled store. A ledger row is written
// only after the ingest's data rows are fully published, so scanning
// the ledger on restart yields exactly the recoverable units.
const (
	ledgerMonthPrefix = "studyd/ingest/month/"
	ledgerSnapPrefix  = "studyd/ingest/snap/"
)

// Artifact is one rendered deliverable in both encodings. Err is
// non-empty when the artifact cannot be computed from the current
// study state (e.g. Figure 5 before the first snapshot arrives); the
// HTTP layer serves it as 503 until an ingest clears it.
type Artifact struct {
	TSV  []byte
	JSON []byte
	Err  string
}

// Rendered is one immutable published snapshot of every artifact.
// Readers obtain it with a single atomic load; writers build a fresh
// one (reusing the bytes of artifacts the update did not dirty) and
// swap it in whole.
type Rendered struct {
	Seq       int64     // monotone update counter, 1 = initial empty render
	At        time.Time // when this snapshot was published
	Months    int       // study size at render time
	Snapshots int
	Artifacts map[report.ArtifactID]Artifact
}

// Daemon owns one resident study. Construct with New; drive it either
// directly (Ingest* / Snapshot, as the tests do) or over HTTP
// (Handler / Serve in http.go).
type Daemon struct {
	cfg core.Config
	p   *core.Pipeline
	g   *report.Graph
	db  tripled.Conn // nil when storeless, or while the store is unreachable

	// mu serializes all mutation: ingest, recompute, re-render,
	// publish. One mutator at a time is the pipeline's contract (one
	// telescope runs one capture), and it makes each published
	// Rendered a consistent cut of the study.
	mu      sync.Mutex
	months  []correlate.MonthData // sorted by Month index
	windows []*telescope.Window   // index-aligned with snaps
	snaps   []correlate.Snapshot  // sorted by Label (chronological)
	haveM   map[int]bool
	haveS   map[string]bool

	rendered atomic.Pointer[Rendered]
	draining atomic.Bool

	// store is the lock-free health view served by /healthz and
	// /status: a daemon configured with a store that cannot reach it
	// reports degraded and rejects ingest with 503 instead of dying,
	// while a background loop keeps redialing with backoff (see
	// reconnectLoop). A cluster-backed daemon that lost a replica but
	// kept quorum also reports degraded — still ingesting, but leaning
	// on replication.
	store     atomic.Pointer[StoreInfo]
	stopC     chan struct{} // closes to stop the reconnect loop
	connWG    sync.WaitGroup
	closeOnce sync.Once
}

// Store states reported by StoreInfo.State.
const (
	StoreNone     = "none"     // no store configured
	StoreOK       = "ok"       // connected, all members healthy
	StoreDegraded = "degraded" // unreachable at startup, or a cluster member down
)

// StoreInfo is the externally visible store health.
type StoreInfo struct {
	State string   `json:"state"`
	Down  []string `json:"down,omitempty"`  // cluster members lost mid-run
	Err   string   `json:"error,omitempty"` // last failure while disconnected
}

// StoreState returns the current store health view. Never nil.
func (d *Daemon) StoreState() *StoreInfo { return d.store.Load() }

// refreshStoreLocked recomputes the published store view; dialErr
// carries the most recent failure while disconnected.
func (d *Daemon) refreshStoreLocked(dialErr error) {
	info := &StoreInfo{State: StoreNone}
	if d.cfg.StoreAddr != "" {
		switch {
		case d.db == nil:
			info.State = StoreDegraded
			if dialErr != nil {
				info.Err = dialErr.Error()
			}
		default:
			info.State = StoreOK
			if cc, ok := d.db.(*cluster.Client); ok {
				if h := cc.Health(); h.Degraded() {
					info.State = StoreDegraded
					info.Down = h.Down
				}
			}
		}
	}
	d.store.Store(info)
}

// New builds the resident daemon: a pipeline in resident mode (no
// up-front snapshot times), an empty report graph owned by the daemon
// (Frozen nil — the graph must own the freeze so invalidation reaches
// it), and, when the config names a store, a dialed client plus a
// ledger replay of any previous life's ingests.
func New(cfg core.Config) (*Daemon, error) {
	p, err := core.NewResident(cfg)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:   cfg,
		p:     p,
		haveM: make(map[int]bool),
		haveS: make(map[string]bool),
	}
	d.g = report.New(report.Input{
		Params: report.Params{
			StudyStart:     cfg.StudyStart,
			NV:             cfg.NV,
			Fig5Band:       cfg.Fig5Band(),
			Fig6Bands:      cfg.Fig6Bands(),
			MinBandSources: cfg.MinBandSources,
			Workers:        cfg.ReportWorkers,
		},
	})
	d.stopC = make(chan struct{})
	d.mu.Lock()
	defer d.mu.Unlock()
	var dialErr error
	if cfg.StoreAddr != "" {
		if db, derr := core.DialStore(cfg.StoreAddr); derr != nil {
			dialErr = derr
		} else {
			d.db = db
			if rerr := d.recoverLocked(); rerr != nil {
				db.Close()
				d.db = nil
				if !tripled.Retryable(rerr) {
					// The store answered and refused (corrupt ledger, protocol
					// mismatch): redialing cannot fix it, fail construction.
					return nil, rerr
				}
				// Dialed but died mid-recovery: same as unreachable; the
				// reconnect loop replays the ledger once it answers.
				dialErr = rerr
			}
		}
		if d.db == nil {
			// Degraded start: serve the (empty) study, report degraded,
			// keep redialing with backoff instead of dying.
			d.connWG.Add(1)
			go d.reconnectLoop()
		}
	}
	d.refreshStoreLocked(dialErr)
	// Publish the initial snapshot (recovered state, or the empty
	// study's 503-bearing artifacts) so pollers always find one.
	d.publishLocked(report.All())
	return d, nil
}

// reconnectLoop keeps redialing a store that was unreachable at
// startup, with bounded exponential backoff, and replays the ledger
// once it answers. It exits on success, on a non-retryable recovery
// failure (left visible in the store view), or at Close.
func (d *Daemon) reconnectLoop() {
	defer d.connWG.Done()
	backoff := 100 * time.Millisecond
	const maxBackoff = 5 * time.Second
	for {
		select {
		case <-d.stopC:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
		db, err := core.DialStore(d.cfg.StoreAddr)
		if err == nil {
			d.mu.Lock()
			d.db = db
			if err = d.recoverLocked(); err == nil {
				d.refreshStoreLocked(nil)
				d.publishLocked(report.All())
				d.mu.Unlock()
				return
			}
			d.db = nil
			d.mu.Unlock()
			db.Close()
			if !tripled.Retryable(err) {
				d.mu.Lock()
				d.refreshStoreLocked(err)
				d.mu.Unlock()
				return
			}
		}
		d.mu.Lock()
		d.refreshStoreLocked(err)
		d.mu.Unlock()
	}
}

// Close stops the reconnect loop and releases the store connection.
// HTTP lifecycles go through Shutdown in http.go, which drains first.
func (d *Daemon) Close() error {
	d.closeOnce.Do(func() { close(d.stopC) })
	d.connWG.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.db != nil {
		err := d.db.Close()
		d.db = nil
		return err
	}
	return nil
}

// Snapshot returns the current published render. Never nil after New.
func (d *Daemon) Snapshot() *Rendered { return d.rendered.Load() }

// Months and Snapshots report the study size.
func (d *Daemon) Months() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.months)
}

func (d *Daemon) Snapshots() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.snaps)
}

// IngestMonth ingests honeyfarm month m (0-based from StudyStart):
// build, publish to the store when configured, append the ledger row,
// splice into the study in month order, and re-render exactly the
// dependent artifacts. Re-ingesting a present month is a no-op.
func (d *Daemon) IngestMonth(m int) error {
	if d.draining.Load() {
		return errDraining
	}
	if m < 0 || m >= d.cfg.Radiation.Months {
		return fmt.Errorf("daemon: month %d outside the %d-month study", m, d.cfg.Radiation.Months)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cfg.StoreAddr != "" && d.db == nil {
		return errStoreDegraded
	}
	if d.haveM[m] {
		return nil
	}
	if err := d.ingestMonthLocked(m); err != nil {
		return err
	}
	d.syncLocked(report.SrcMonths)
	return nil
}

// ingestMonthLocked runs the month unit and splices it in, without
// re-rendering — recovery batches many of these under one sync.
func (d *Daemon) ingestMonthLocked(m int) error {
	md, err := d.p.IngestMonth(d.db, m)
	if err != nil {
		return err
	}
	if d.db != nil {
		row := ledgerMonthPrefix + md.Label
		if err := d.db.Put(row, "month", assoc.Num(float64(m))); err != nil {
			return fmt.Errorf("daemon: ledger month %s: %w", md.Label, err)
		}
	}
	at := sort.Search(len(d.months), func(i int) bool { return d.months[i].Month >= m })
	d.months = append(d.months, correlate.MonthData{})
	copy(d.months[at+1:], d.months[at:])
	d.months[at] = md
	d.haveM[m] = true
	return nil
}

// IngestSnapshot captures a telescope window at ts and folds it into
// the study in chronological order. Re-ingesting a time whose label is
// already present is a no-op.
func (d *Daemon) IngestSnapshot(ts time.Time) error {
	if d.draining.Load() {
		return errDraining
	}
	if m := d.cfg.MonthOf(ts); m < 0 || m >= float64(d.cfg.Radiation.Months) {
		return fmt.Errorf("daemon: snapshot %v falls outside the %d-month study", ts, d.cfg.Radiation.Months)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cfg.StoreAddr != "" && d.db == nil {
		return errStoreDegraded
	}
	if d.haveS[ts.UTC().Format("20060102-150405")] {
		return nil
	}
	if err := d.ingestSnapshotLocked(ts); err != nil {
		return err
	}
	d.syncLocked(report.SrcSnapshots)
	return nil
}

// errDraining rejects ingest once Shutdown has begun; pollers keep
// being served from the last published snapshot until the listener
// closes.
var errDraining = errors.New("daemon: draining, ingest rejected")

// errStoreDegraded rejects ingest while a configured store is
// unreachable: accepting data that cannot be made durable would break
// the ledger's "presence implies completeness" invariant. Served as
// 503 — retry once /healthz reports the store ok again.
var errStoreDegraded = errors.New("daemon: store degraded (unreachable), ingest deferred")

func (d *Daemon) ingestSnapshotLocked(ts time.Time) error {
	w, snap, err := d.p.IngestSnapshot(context.Background(), d.db, ts)
	if err != nil {
		return err
	}
	if d.db != nil {
		row := ledgerSnapPrefix + snap.Label
		if err := d.db.Put(row, "time", assoc.Str(ts.UTC().Format(time.RFC3339Nano))); err != nil {
			return fmt.Errorf("daemon: ledger snapshot %s: %w", snap.Label, err)
		}
	}
	at := sort.Search(len(d.snaps), func(i int) bool { return d.snaps[i].Label >= snap.Label })
	d.snaps = append(d.snaps, correlate.Snapshot{})
	copy(d.snaps[at+1:], d.snaps[at:])
	d.snaps[at] = snap
	d.windows = append(d.windows, nil)
	copy(d.windows[at+1:], d.windows[at:])
	d.windows[at] = w
	d.haveS[snap.Label] = true
	return nil
}

// syncLocked pushes the daemon's study into the report graph, dirties
// the given sources, re-renders exactly the invalidated artifacts, and
// publishes a fresh Rendered reusing every clean artifact's bytes.
func (d *Daemon) syncLocked(dirty ...report.ArtifactID) {
	invalidated := d.g.Update(func(in *report.Input) {
		in.Study.Months = append([]correlate.MonthData(nil), d.months...)
		in.Study.Snapshots = append([]correlate.Snapshot(nil), d.snaps...)
		in.Windows = append([]*telescope.Window(nil), d.windows...)
	}, dirty...)
	d.publishLocked(invalidated)
	// The ingest may have watched a cluster replica die; keep the
	// published store view current.
	d.refreshStoreLocked(nil)
}

// publishLocked renders the given artifacts and swaps in a new
// snapshot; artifacts not listed keep their previous bytes.
func (d *Daemon) publishLocked(ids []report.ArtifactID) {
	prev := d.rendered.Load()
	next := &Rendered{
		At:        time.Now().UTC(),
		Months:    len(d.months),
		Snapshots: len(d.snaps),
		Artifacts: make(map[report.ArtifactID]Artifact, len(report.All())),
	}
	if prev != nil {
		next.Seq = prev.Seq
		for id, a := range prev.Artifacts {
			next.Artifacts[id] = a
		}
	}
	next.Seq++
	redo := make(map[report.ArtifactID]bool, len(ids))
	for _, id := range ids {
		redo[id] = true
	}
	for _, id := range report.All() {
		if _, have := next.Artifacts[id]; have && !redo[id] {
			continue
		}
		var a Artifact
		var tsv, js bytes.Buffer
		if err := report.WriteTSV(&tsv, d.g, id); err != nil {
			a.Err = err.Error()
		} else if err := report.WriteJSON(&js, d.g, id); err != nil {
			a.Err = err.Error()
		} else {
			a.TSV, a.JSON = tsv.Bytes(), js.Bytes()
		}
		next.Artifacts[id] = a
	}
	d.rendered.Store(next)
}

// Runs exposes the graph's per-artifact execution counters (the
// fine-grained invalidation proof surface).
func (d *Daemon) Runs(id report.ArtifactID) int { return d.g.Runs(id) }

// recoverLocked replays the store ledger: every month and snapshot a
// previous life ingested, in the batch loop's order (months by index,
// snapshots by time). The units re-publish their data rows, which is
// idempotent, so a crash between data and ledger row heals itself.
func (d *Daemon) recoverLocked() error {
	monthRows, err := d.db.ScanAllRows(ledgerMonthPrefix, tripled.PrefixEnd(ledgerMonthPrefix), 1024)
	if err != nil {
		return fmt.Errorf("daemon: scan month ledger: %w", err)
	}
	var monthIdx []int
	for _, row := range monthRows {
		cells, err := d.db.Row(row)
		if err != nil {
			return fmt.Errorf("daemon: ledger row %s: %w", row, err)
		}
		v, ok := cells["month"]
		if !ok || !v.Numeric {
			return fmt.Errorf("daemon: ledger row %s has no numeric month cell", row)
		}
		monthIdx = append(monthIdx, int(v.Num))
	}
	sort.Ints(monthIdx)

	snapRows, err := d.db.ScanAllRows(ledgerSnapPrefix, tripled.PrefixEnd(ledgerSnapPrefix), 1024)
	if err != nil {
		return fmt.Errorf("daemon: scan snapshot ledger: %w", err)
	}
	var snapTimes []time.Time
	for _, row := range snapRows {
		cells, err := d.db.Row(row)
		if err != nil {
			return fmt.Errorf("daemon: ledger row %s: %w", row, err)
		}
		v, ok := cells["time"]
		if !ok {
			return fmt.Errorf("daemon: ledger row %s has no time cell", row)
		}
		ts, err := time.Parse(time.RFC3339Nano, v.Str)
		if err != nil {
			return fmt.Errorf("daemon: ledger row %s time %q: %w", row, v.Str, err)
		}
		snapTimes = append(snapTimes, ts)
	}
	sort.Slice(snapTimes, func(i, j int) bool { return snapTimes[i].Before(snapTimes[j]) })

	for _, m := range monthIdx {
		if d.haveM[m] {
			continue
		}
		if err := d.ingestMonthLocked(m); err != nil {
			return fmt.Errorf("daemon: recover month %d: %w", m, err)
		}
	}
	for _, ts := range snapTimes {
		if d.haveS[ts.UTC().Format("20060102-150405")] {
			continue
		}
		if err := d.ingestSnapshotLocked(ts); err != nil {
			return fmt.Errorf("daemon: recover snapshot %v: %w", ts, err)
		}
	}
	if len(monthIdx) > 0 || len(snapTimes) > 0 {
		// One graph update for the whole replay; publishLocked follows
		// in New.
		d.g.Update(func(in *report.Input) {
			in.Study.Months = append([]correlate.MonthData(nil), d.months...)
			in.Study.Snapshots = append([]correlate.Snapshot(nil), d.snaps...)
			in.Windows = append([]*telescope.Window(nil), d.windows...)
		}, report.SrcMonths, report.SrcSnapshots)
	}
	return nil
}

// parseMonthArg parses the ingest API's month field, accepting both a
// bare index and a "2020-05" label relative to StudyStart.
func (d *Daemon) parseMonthArg(s string) (int, error) {
	if m, err := strconv.Atoi(s); err == nil {
		return m, nil
	}
	t, err := time.Parse("2006-01", s)
	if err != nil {
		return 0, fmt.Errorf("daemon: month %q is neither an index nor a 2006-01 label", s)
	}
	start := d.cfg.StudyStart
	return (t.Year()-start.Year())*12 + int(t.Month()-start.Month()), nil
}
