package daemon

// degraded_test.go proves the satellite contract for a store-backed
// daemon whose store is not there yet: studyd must come up serving
// (degraded) instead of dying, reject ingest with 503 while
// disconnected, surface `store: degraded` on /healthz and /status, and
// flip to `store: ok` — replaying any ledger — once the store appears.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/tripled"
)

// reserveAddr grabs an ephemeral port and releases it, so the test can
// start a server there *later*.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("GET %s: %v in %q", url, err, body)
	}
	return resp.StatusCode, m
}

func TestDaemonDegradedStoreStartup(t *testing.T) {
	addr := reserveAddr(t)
	cfg := testConfig()
	cfg.Radiation.Months = 3
	cfg.SnapshotTimes = nil
	cfg.StoreAddr = addr

	// No server behind addr yet: New must come up degraded, not die.
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("daemon with unreachable store refused to start: %v", err)
	}
	defer d.Close()
	if st := d.StoreState(); st.State != StoreDegraded {
		t.Fatalf("store state at startup = %+v, want degraded", st)
	}

	// Ingest is deferred with the typed error (503 over HTTP).
	if err := d.IngestMonth(0); !errors.Is(err, errStoreDegraded) {
		t.Fatalf("ingest while degraded: %v, want errStoreDegraded", err)
	}

	s, err := Serve(d, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.srv.Close()
	base := "http://" + s.Addr()

	if code, m := getJSON(t, base+"/healthz"); code != http.StatusOK || m["store"] != "degraded" {
		t.Fatalf("/healthz while degraded: %d %v", code, m)
	}
	if _, m := getJSON(t, base+"/status"); m["store"].(map[string]any)["state"] != "degraded" {
		t.Fatalf("/status while degraded: %v", m["store"])
	}
	resp, err := http.Post(base+"/ingest/month", "application/json", strings.NewReader(`{"month": 0}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest while degraded returned %d, want 503", resp.StatusCode)
	}

	// The store arrives late; the reconnect loop must find it and flip
	// to ok without a restart.
	srv, err := tripled.Serve(tripled.NewStore(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	deadline := time.Now().Add(15 * time.Second)
	for d.StoreState().State != StoreOK {
		if time.Now().After(deadline) {
			t.Fatalf("store never recovered: %+v", d.StoreState())
		}
		time.Sleep(25 * time.Millisecond)
	}
	if code, m := getJSON(t, base+"/healthz"); code != http.StatusOK || m["store"] != "ok" {
		t.Fatalf("/healthz after recovery: %d %v", code, m)
	}

	// Ingest now works end to end, including the durable ledger row.
	if err := d.IngestMonth(0); err != nil {
		t.Fatalf("ingest after recovery: %v", err)
	}
	c, err := tripled.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows, err := c.ScanAllRows(ledgerMonthPrefix, tripled.PrefixEnd(ledgerMonthPrefix), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("ledger rows after recovery ingest: %v", rows)
	}
}

// TestDaemonClusterStoreReportsDegraded: a daemon over a cluster spec
// that loses one replica keeps ingesting (quorum holds) but reports
// store: degraded with the lost member named.
func TestDaemonClusterStoreReportsDegraded(t *testing.T) {
	var addrs [3]string
	var servers [3]*tripled.Server
	for i := range addrs {
		srv, err := tripled.Serve(tripled.NewStore(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		servers[i] = srv
		addrs[i] = srv.Addr()
	}
	cfg := testConfig()
	cfg.Radiation.Months = 3
	cfg.SnapshotTimes = nil
	cfg.StoreAddr = fmt.Sprintf("%s,%s,%s;replicas=2;io_timeout=500ms;retries=2", addrs[0], addrs[1], addrs[2])

	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if st := d.StoreState(); st.State != StoreOK {
		t.Fatalf("store state = %+v, want ok", st)
	}
	if err := d.IngestMonth(0); err != nil {
		t.Fatal(err)
	}

	servers[2].Close()
	if err := d.IngestMonth(1); err != nil {
		t.Fatalf("ingest with one replica down: %v", err)
	}
	st := d.StoreState()
	if st.State != StoreDegraded {
		t.Fatalf("store state after replica loss = %+v, want degraded", st)
	}
	found := false
	for _, a := range st.Down {
		if a == addrs[2] {
			found = true
		}
	}
	if !found {
		t.Fatalf("down list %v does not name the lost member %s", st.Down, addrs[2])
	}
}
