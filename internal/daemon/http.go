package daemon

// http.go is the daemon's serving surface: the artifact endpoints ride
// the published Rendered snapshot (one atomic load per request, no
// study locks), ingest endpoints go through the serialized mutator,
// and the lifecycle follows tripled.Server's discipline — tracked
// connections, and a drain that stops ingest, finishes in-flight
// work, and only then releases the listener.
//
// Endpoints:
//
//	GET  /healthz                     liveness + study size
//	GET  /status                      size, seq, per-artifact state, open conns
//	GET  /artifacts                   artifact index
//	GET  /artifacts/{id}?format=json  one artifact (json default, tsv)
//	POST /ingest/month                {"month": 3} or {"month": "2020-05"}
//	POST /ingest/snapshot             {"time": "2020-06-17T12:00:00Z"}

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/report"
)

// Server is a running HTTP front end over one Daemon.
type Server struct {
	d     *Daemon
	srv   *http.Server
	lis   net.Listener
	conns atomic.Int64 // currently open connections (tracked via ConnState)
	done  chan error   // Serve's exit, consumed by Shutdown
}

// Serve starts the HTTP front end on addr ("127.0.0.1:0" for an
// ephemeral port) and returns once the listener is bound; requests are
// handled on background goroutines until Shutdown.
func Serve(d *Daemon, addr string) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("daemon: listen %s: %w", addr, err)
	}
	s := &Server{d: d, lis: lis, done: make(chan error, 1)}
	s.srv = &http.Server{
		Handler: d.Handler(),
		ConnState: func(_ net.Conn, state http.ConnState) {
			switch state {
			case http.StateNew:
				s.conns.Add(1)
			case http.StateClosed, http.StateHijacked:
				s.conns.Add(-1)
			}
		},
	}
	go func() {
		err := s.srv.Serve(lis)
		if err == http.ErrServerClosed {
			err = nil
		}
		s.done <- err
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Conns reports currently open connections.
func (s *Server) Conns() int64 { return s.conns.Load() }

// Shutdown drains gracefully: new ingests are rejected immediately,
// in-flight requests (including an ingest mid-recompute) run to
// completion, the listener closes, and finally the store connection is
// released. The ctx bounds how long the drain may take.
func (s *Server) Shutdown(ctx context.Context) error {
	s.d.draining.Store(true)
	err := s.srv.Shutdown(ctx)
	if serveErr := <-s.done; err == nil {
		err = serveErr
	}
	if closeErr := s.d.Close(); err == nil {
		err = closeErr
	}
	return err
}

// Handler builds the daemon's route table.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /status", d.handleStatus)
	mux.HandleFunc("GET /artifacts", d.handleIndex)
	mux.HandleFunc("GET /artifacts/{id}", d.handleArtifact)
	mux.HandleFunc("POST /ingest/month", d.handleIngestMonth)
	mux.HandleFunc("POST /ingest/snapshot", d.handleIngestSnapshot)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := d.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"store":     d.StoreState().State,
		"draining":  d.draining.Load(),
		"seq":       snap.Seq,
		"months":    snap.Months,
		"snapshots": snap.Snapshots,
	})
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	snap := d.Snapshot()
	arts := make(map[string]any, len(snap.Artifacts))
	for id, a := range snap.Artifacts {
		st := map[string]any{"runs": d.Runs(id)}
		if a.Err != "" {
			st["error"] = a.Err
		} else {
			st["tsv_bytes"] = len(a.TSV)
			st["json_bytes"] = len(a.JSON)
		}
		arts[string(id)] = st
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"seq":          snap.Seq,
		"rendered_at":  snap.At.Format(time.RFC3339Nano),
		"months":       snap.Months,
		"snapshots":    snap.Snapshots,
		"draining":     d.draining.Load(),
		"artifacts":    arts,
		"store_backed": d.cfg.StoreAddr != "",
		"store":        d.StoreState(),
	})
}

func (d *Daemon) handleIndex(w http.ResponseWriter, r *http.Request) {
	ids := make([]string, 0, len(report.All()))
	for _, id := range report.All() {
		ids = append(ids, string(id))
	}
	writeJSON(w, http.StatusOK, map[string]any{"artifacts": ids})
}

func (d *Daemon) handleArtifact(w http.ResponseWriter, r *http.Request) {
	id := report.ArtifactID(r.PathValue("id"))
	snap := d.Snapshot()
	a, ok := snap.Artifacts[id]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown artifact %q", id))
		return
	}
	if a.Err != "" {
		// Not computable from the current study state (e.g. no
		// snapshots ingested yet): unavailable, try again after ingest.
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("%s: %s", id, a.Err))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		w.Write(a.JSON)
	case "tsv":
		w.Header().Set("Content-Type", "text/tab-separated-values")
		w.Write(a.TSV)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want json or tsv)", format))
	}
}

// ingestReply is the mutators' response: what changed and how big the
// study is now.
func (d *Daemon) ingestReply(w http.ResponseWriter) {
	snap := d.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        true,
		"seq":       snap.Seq,
		"months":    snap.Months,
		"snapshots": snap.Snapshots,
	})
}

func (d *Daemon) handleIngestMonth(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Month json.RawMessage `json:"month"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Month == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("body must be {\"month\": <index or \"2006-01\">}"))
		return
	}
	var m int
	var label string
	if err := json.Unmarshal(req.Month, &m); err != nil {
		if err := json.Unmarshal(req.Month, &label); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("month must be a number or string"))
			return
		}
		var perr error
		if m, perr = d.parseMonthArg(label); perr != nil {
			writeError(w, http.StatusBadRequest, perr)
			return
		}
	}
	if err := d.IngestMonth(m); err != nil {
		writeError(w, ingestStatus(err), err)
		return
	}
	d.ingestReply(w)
}

func (d *Daemon) handleIngestSnapshot(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Time string `json:"time"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Time == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("body must be {\"time\": \"RFC3339\"}"))
		return
	}
	ts, err := time.Parse(time.RFC3339Nano, req.Time)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("time %q: %v", req.Time, err))
		return
	}
	if err := d.IngestSnapshot(ts); err != nil {
		writeError(w, ingestStatus(err), err)
		return
	}
	d.ingestReply(w)
}

// ingestStatus maps mutator errors to HTTP: draining and a degraded
// store are 503 (retry later — against the next instance, or once the
// reconnect loop lands), everything else is a 400-class request
// problem.
func ingestStatus(err error) int {
	if err == errDraining || err == errStoreDegraded {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}
