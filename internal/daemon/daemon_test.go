package daemon

// daemon_test.go proves the resident study's core contract: ingesting
// the same N windows + M months incrementally — in any order, with
// concurrent pollers reading the whole time — converges to artifacts
// byte-identical to a from-scratch batch run (the acceptance parity
// gate, exercised under -race in CI), invalidation stays fine-grained
// through the daemon path, and a store-backed daemon recovers its
// exact state from the ledger after a restart.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/tripled"
)

// testConfig is a seconds-scale study small enough to run twice (batch
// + incremental) per test: the incremental run re-renders dependent
// artifacts after every ingest, so months and snapshots are trimmed to
// keep the whole-study recompute count bounded under -race.
func testConfig() core.Config {
	cfg := core.QuickConfig()
	cfg.Radiation.NumSources = 3000
	cfg.Radiation.Months = 7
	cfg.NV = 1 << 12
	cfg.LeafSize = 1 << 8
	cfg.StudyWorkers = 1
	cfg.ReportWorkers = 1
	cfg.SnapshotTimes = cfg.SnapshotTimes[:2] // June + July fall inside the 7 months
	return cfg
}

// batchArtifacts runs the from-scratch batch oracle and renders every
// artifact in both encodings.
func batchArtifacts(t *testing.T, cfg core.Config) map[report.ArtifactID]Artifact {
	t.Helper()
	p, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	g := res.Report()
	out := make(map[report.ArtifactID]Artifact)
	for _, id := range report.All() {
		var tsv, js bytes.Buffer
		if err := report.WriteTSV(&tsv, g, id); err != nil {
			t.Fatalf("batch %s: %v", id, err)
		}
		if err := report.WriteJSON(&js, g, id); err != nil {
			t.Fatalf("batch %s: %v", id, err)
		}
		out[id] = Artifact{TSV: tsv.Bytes(), JSON: js.Bytes()}
	}
	return out
}

func diffArtifacts(t *testing.T, want map[report.ArtifactID]Artifact, got *Rendered) {
	t.Helper()
	for _, id := range report.All() {
		a := got.Artifacts[id]
		if a.Err != "" {
			t.Errorf("%s: daemon artifact errored: %s", id, a.Err)
			continue
		}
		if !bytes.Equal(a.TSV, want[id].TSV) {
			t.Errorf("%s: incremental TSV diverges from batch:\ndaemon:\n%s\nbatch:\n%s",
				id, firstDiffContext(a.TSV, want[id].TSV), firstDiffContext(want[id].TSV, a.TSV))
		}
		if !bytes.Equal(a.JSON, want[id].JSON) {
			t.Errorf("%s: incremental JSON diverges from batch", id)
		}
	}
}

// firstDiffContext returns a few lines around the first difference so
// failures do not dump whole artifacts.
func firstDiffContext(a, b []byte) string {
	al, bl := strings.Split(string(a), "\n"), strings.Split(string(b), "\n")
	for i := range al {
		if i >= len(bl) || al[i] != bl[i] {
			lo := i - 1
			if lo < 0 {
				lo = 0
			}
			hi := i + 2
			if hi > len(al) {
				hi = len(al)
			}
			return fmt.Sprintf("(line %d) %s", i+1, strings.Join(al[lo:hi], "\n"))
		}
	}
	return "(prefix equal, lengths differ)"
}

// TestIncrementalParityWithBatch is the acceptance gate: snapshots
// ingested before months, months in reverse order — a deliberately
// scrambled arrival order — with 8 concurrent pollers reading the
// published snapshot throughout, converges byte-for-byte to the batch
// oracle. CI runs this under -race, which also makes the pollers a
// soundness proof for the atomic publish.
func TestIncrementalParityWithBatch(t *testing.T) {
	cfg := testConfig()
	want := batchArtifacts(t, cfg)

	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				time.Sleep(200 * time.Microsecond) // poll, don't starve the mutator on small runners
				snap := d.Snapshot()
				// Whatever cut we see must be internally consistent:
				// every artifact present, bytes immutable (the race
				// detector proves the latter).
				if len(snap.Artifacts) != len(report.All()) {
					t.Errorf("published snapshot missing artifacts: %d", len(snap.Artifacts))
					return
				}
				for _, a := range snap.Artifacts {
					if a.Err == "" && len(a.TSV) == 0 {
						t.Error("artifact with neither bytes nor error")
						return
					}
				}
			}
		}()
	}

	// Scrambled arrival: all snapshots first (fig4/5 temporals error
	// until months land), then months newest-first.
	for _, ts := range cfg.SnapshotTimes {
		if err := d.IngestSnapshot(ts); err != nil {
			t.Fatal(err)
		}
	}
	for m := cfg.Radiation.Months - 1; m >= 0; m-- {
		if err := d.IngestMonth(m); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	snap := d.Snapshot()
	if snap.Months != cfg.Radiation.Months || snap.Snapshots != len(cfg.SnapshotTimes) {
		t.Fatalf("study size %d/%d, want %d/%d", snap.Months, snap.Snapshots,
			cfg.Radiation.Months, len(cfg.SnapshotTimes))
	}
	diffArtifacts(t, want, snap)

	// Idempotence: re-ingesting everything changes nothing.
	seq := snap.Seq
	for m := 0; m < cfg.Radiation.Months; m++ {
		if err := d.IngestMonth(m); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Snapshot().Seq; got != seq {
		t.Errorf("re-ingest bumped seq %d -> %d; duplicate ingest must be a no-op", seq, got)
	}
}

// TestDaemonFineGrainedInvalidation pins the incremental cost model
// end to end: once the study is loaded, one more month re-renders
// Table I and the temporal figures but never re-executes Table II or
// Figure 3.
func TestDaemonFineGrainedInvalidation(t *testing.T) {
	cfg := testConfig()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for _, ts := range cfg.SnapshotTimes {
		if err := d.IngestSnapshot(ts); err != nil {
			t.Fatal(err)
		}
	}
	for m := 0; m < cfg.Radiation.Months-1; m++ {
		if err := d.IngestMonth(m); err != nil {
			t.Fatal(err)
		}
	}
	t2, f3 := d.Runs(report.Table2), d.Runs(report.Fig3)
	t1 := d.Runs(report.Table1)
	if t2 == 0 || t1 == 0 {
		t.Fatal("artifacts never ran during load")
	}
	if err := d.IngestMonth(cfg.Radiation.Months - 1); err != nil {
		t.Fatal(err)
	}
	if got := d.Runs(report.Table2); got != t2 {
		t.Errorf("table2 ran %d -> %d on a month-only ingest", t2, got)
	}
	if got := d.Runs(report.Fig3); got != f3 {
		t.Errorf("fig3 ran %d -> %d on a month-only ingest", f3, got)
	}
	if got := d.Runs(report.Table1); got != t1+1 {
		t.Errorf("table1 ran %d -> %d on a month ingest, want +1", t1, got)
	}
}

// TestDaemonRecovery restarts a store-backed daemon and requires the
// replayed study to serve byte-identical artifacts.
func TestDaemonRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("two store-backed incremental studies")
	}
	srv, err := tripled.Serve(tripled.NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := testConfig()
	cfg.StoreAddr = srv.Addr()

	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		if err := d1.IngestMonth(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, ts := range cfg.SnapshotTimes[:2] {
		if err := d1.IngestSnapshot(ts); err != nil {
			t.Fatal(err)
		}
	}
	before := d1.Snapshot()
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := New(cfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer d2.Close()
	after := d2.Snapshot()
	if after.Months != 4 || after.Snapshots != 2 {
		t.Fatalf("recovered %d months / %d snapshots, want 4/2", after.Months, after.Snapshots)
	}
	for _, id := range report.All() {
		b, a := before.Artifacts[id], after.Artifacts[id]
		if b.Err != a.Err {
			t.Errorf("%s: error state changed across restart: %q vs %q", id, b.Err, a.Err)
			continue
		}
		if !bytes.Equal(b.TSV, a.TSV) || !bytes.Equal(b.JSON, a.JSON) {
			t.Errorf("%s: recovered artifact differs from pre-restart render", id)
		}
	}
}

// TestDaemonHTTP drives the whole surface over a real listener:
// health, index, artifact formats, error paths, ingest, and the drain
// protocol.
func TestDaemonHTTP(t *testing.T) {
	cfg := testConfig()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Serve(d, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}
	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	if code, body := get("/healthz"); code != 200 || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	if code, body := get("/artifacts"); code != 200 || !bytes.Contains(body, []byte("fig7_fig8")) {
		t.Fatalf("index: %d %s", code, body)
	}
	if code, _ := get("/artifacts/fig9"); code != 404 {
		t.Errorf("unknown artifact: %d, want 404", code)
	}
	// Empty study: fig5 needs a snapshot.
	if code, _ := get("/artifacts/fig5"); code != 503 {
		t.Errorf("fig5 on empty study: %d, want 503", code)
	}
	// Table I renders (empty) even with no data.
	if code, body := get("/artifacts/table1?format=tsv"); code != 200 || !bytes.HasPrefix(body, []byte("gn_start")) {
		t.Errorf("empty table1: %d %s", code, body)
	}
	if code, _ := get("/artifacts/table1?format=xml"); code != 400 {
		t.Errorf("bad format: %d, want 400", code)
	}

	// Ingest a month by index and another by label; both must land.
	if code, body := post("/ingest/month", `{"month": 0}`); code != 200 {
		t.Fatalf("ingest month: %d %s", code, body)
	}
	label := cfg.StudyStart.AddDate(0, 1, 0).Format("2006-01")
	if code, body := post("/ingest/month", fmt.Sprintf(`{"month": %q}`, label)); code != 200 {
		t.Fatalf("ingest month by label: %d %s", code, body)
	}
	if code, body := post("/ingest/snapshot",
		fmt.Sprintf(`{"time": %q}`, cfg.SnapshotTimes[0].Format(time.RFC3339))); code != 200 {
		t.Fatalf("ingest snapshot: %d %s", code, body)
	}
	if code, _ := post("/ingest/month", `{"month": 9999}`); code != 400 {
		t.Errorf("out-of-range month: %d, want 400", code)
	}
	if code, _ := post("/ingest/snapshot", `{"time": "not-a-time"}`); code != 400 {
		t.Errorf("bad time: %d, want 400", code)
	}

	var status struct {
		Months    int `json:"months"`
		Snapshots int `json:"snapshots"`
	}
	if code, body := get("/status"); code != 200 {
		t.Fatalf("status: %d", code)
	} else if err := json.Unmarshal(body, &status); err != nil {
		t.Fatalf("status JSON: %v", err)
	}
	if status.Months != 2 || status.Snapshots != 1 {
		t.Errorf("status = %+v, want 2 months 1 snapshot", status)
	}
	// table2 serves real JSON now.
	if code, body := get("/artifacts/table2"); code != 200 || !bytes.Contains(body, []byte(`"artifact": "table2"`)) {
		t.Errorf("table2 after ingest: %d %s", code, body)
	}

	// Drain: after Shutdown returns, ingest is rejected and the
	// listener is closed.
	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := d.IngestMonth(3); err != errDraining {
		t.Errorf("ingest after drain: %v, want errDraining", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
}
