package ipaddr

import "testing"

func TestParse6RoundTrip(t *testing.T) {
	cases := []struct{ in, want string }{
		{"2001:db8::1", "2001:db8::1"},
		{"2001:0db8:0000:0000:0000:0000:0000:0001", "2001:db8::1"},
		{"::", "::"},
		{"::1", "::1"},
		{"fe80::", "fe80::"},
		{"2001:db8:1:2:3:4:5:6", "2001:db8:1:2:3:4:5:6"},
		{"0:0:1:0:0:0:0:1", "0:0:1::1"}, // longest run wins
		{"1:0:0:2:0:0:0:3", "1:0:0:2::3"},
	}
	for _, c := range cases {
		a, err := Parse6(c.in)
		if err != nil {
			t.Errorf("Parse6(%q): %v", c.in, err)
			continue
		}
		if got := a.String(); got != c.want {
			t.Errorf("Parse6(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParse6Rejects(t *testing.T) {
	for _, s := range []string{
		"", ":::", "1::2::3", "2001:db8", "1:2:3:4:5:6:7:8:9",
		"g::1", "12345::", "1:2:3:4:5:6:7:8::",
	} {
		if _, err := Parse6(s); err == nil {
			t.Errorf("Parse6(%q) accepted", s)
		}
	}
}

func TestEmbedV6(t *testing.T) {
	a := MustParse6("2001:db8::1")
	b := MustParse6("2001:db8::2")
	ea, eb := EmbedV6(a), EmbedV6(b)
	if ea != EmbedV6(a) {
		t.Error("EmbedV6 not deterministic")
	}
	if ea == eb {
		t.Errorf("adjacent addresses collide: %v", ea)
	}
	for _, e := range []Addr{ea, eb} {
		if !IsV6Embedded(e) {
			t.Errorf("%v outside the embedding prefix", e)
		}
		if IsPrivate(e) {
			t.Errorf("%v is RFC 1918", e)
		}
	}
}

// The embedding space must be disjoint from everything the synthetic
// population can draw natively, or embedded and native sources could
// alias in the traffic matrices.
func TestV6EmbedPrefixDisjoint(t *testing.T) {
	if V6EmbedPrefix.Contains(MustParse("44.0.0.1")) {
		t.Error("embedding prefix overlaps the default darkspace")
	}
	for _, p := range []Prefix{rfc1918a, rfc1918b, rfc1918c} {
		if V6EmbedPrefix.Contains(p.Base) {
			t.Errorf("embedding prefix overlaps %v", p)
		}
	}
}
