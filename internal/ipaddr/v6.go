package ipaddr

// v6.go carries the IPv6-source adapter. The observatory pipeline is
// built around 32-bit matrix indices (the paper's 2^32 x 2^32
// hypersparse traffic matrices), so IPv6 origins do not widen the hot
// path: they are embedded deterministically into the class E quarter of
// the IPv4 index space (240.0.0.0/4), which no routable IPv4 source can
// occupy — randomPublicAddr and real darkspace traffic never produce
// class E sources, so embedded and native sources cannot collide by
// construction. The embedding is a keyed hash of the full 128 bits:
// stable for a given address, uniform over the /4, and one-way (the
// D4M boundary keeps the Addr6 alongside when the original form is
// needed, exactly as CryptoPAN anonymization keeps its reverse table).

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr6 is an IPv6 address in network byte order.
type Addr6 [16]byte

// Parse6 converts an RFC 4291 text address (full or ::-compressed hex
// groups, no embedded-IPv4 dotted form) to an Addr6.
func Parse6(s string) (Addr6, error) {
	var a Addr6
	if s == "" {
		return a, fmt.Errorf("ipaddr: empty IPv6 address")
	}
	head, tail, compressed := s, "", false
	if i := strings.Index(s, "::"); i >= 0 {
		compressed = true
		head, tail = s[:i], s[i+2:]
		if strings.Contains(tail, "::") {
			return a, fmt.Errorf("ipaddr: multiple :: in %q", s)
		}
	}
	parse := func(part string) ([]uint16, error) {
		if part == "" {
			return nil, nil
		}
		toks := strings.Split(part, ":")
		out := make([]uint16, len(toks))
		for i, tok := range toks {
			if tok == "" || len(tok) > 4 {
				return nil, fmt.Errorf("ipaddr: invalid group %q in %q", tok, s)
			}
			v, err := strconv.ParseUint(tok, 16, 16)
			if err != nil {
				return nil, fmt.Errorf("ipaddr: invalid group %q in %q", tok, s)
			}
			out[i] = uint16(v)
		}
		return out, nil
	}
	hi, err := parse(head)
	if err != nil {
		return a, err
	}
	lo, err := parse(tail)
	if err != nil {
		return a, err
	}
	n := len(hi) + len(lo)
	switch {
	case compressed && n >= 8:
		return a, fmt.Errorf("ipaddr: :: in %q compresses nothing", s)
	case !compressed && n != 8:
		return a, fmt.Errorf("ipaddr: %q has %d groups, want 8", s, n)
	}
	groups := make([]uint16, 0, 8)
	groups = append(groups, hi...)
	for i := n; i < 8; i++ {
		groups = append(groups, 0)
	}
	groups = append(groups, lo...)
	for i, g := range groups {
		a[2*i] = byte(g >> 8)
		a[2*i+1] = byte(g)
	}
	return a, nil
}

// MustParse6 is Parse6 that panics on error, for constants in tests.
func MustParse6(s string) Addr6 {
	a, err := Parse6(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String returns the canonical RFC 5952 text form: lowercase hex
// groups, leading zeros dropped, the longest run of two or more zero
// groups compressed to "::".
func (a Addr6) String() string {
	var groups [8]uint16
	for i := range groups {
		groups[i] = uint16(a[2*i])<<8 | uint16(a[2*i+1])
	}
	// Longest zero run of length >= 2, leftmost on ties.
	best, bestLen := -1, 1
	for i := 0; i < 8; {
		if groups[i] != 0 {
			i++
			continue
		}
		j := i
		for j < 8 && groups[j] == 0 {
			j++
		}
		if j-i > bestLen {
			best, bestLen = i, j-i
		}
		i = j
	}
	var b strings.Builder
	for i := 0; i < 8; i++ {
		if i == best {
			b.WriteString("::")
			i += bestLen - 1
			continue
		}
		if i > 0 && !(best >= 0 && i == best+bestLen) {
			b.WriteByte(':')
		}
		b.WriteString(strconv.FormatUint(uint64(groups[i]), 16))
	}
	return b.String()
}

// V6EmbedPrefix is the slice of the IPv4 index space reserved for
// embedded IPv6 sources: class E, which carries no routable IPv4
// traffic and which the synthetic population generator never samples.
var V6EmbedPrefix = Prefix{Base: 0xF0000000, Bits: 4}

// EmbedV6 maps an IPv6 address to its 32-bit matrix index inside
// V6EmbedPrefix: a splitmix-style hash of all 128 bits folded to the 28
// free bits. Deterministic and uniform; collisions between distinct
// IPv6 addresses are possible (birthday-bounded at ~2^14 sources) and
// are handled by the caller the same way duplicate IPv4 draws are.
func EmbedV6(a Addr6) Addr {
	var x uint64
	for i := 0; i < 16; i += 8 {
		w := uint64(a[i])<<56 | uint64(a[i+1])<<48 | uint64(a[i+2])<<40 | uint64(a[i+3])<<32 |
			uint64(a[i+4])<<24 | uint64(a[i+5])<<16 | uint64(a[i+6])<<8 | uint64(a[i+7])
		x ^= w * 0x9E3779B97F4A7C15
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
	}
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return V6EmbedPrefix.Nth(x & (1<<28 - 1))
}

// IsV6Embedded reports whether a is an embedded IPv6 matrix index.
func IsV6Embedded(a Addr) bool { return V6EmbedPrefix.Contains(a) }
