// Package ipaddr provides IPv4 addresses represented as uint32 values,
// CIDR prefixes, and subnet arithmetic.
//
// The observatory pipeline stores traffic matrices indexed by uint32
// source and destination addresses (the paper's 2^32 x 2^32 hypersparse
// matrices), so the entire code base works with this compact form and
// converts to dotted-quad strings only at the D4M boundary.
package ipaddr

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order: 1.2.3.4 == 0x01020304.
type Addr uint32

// Parse converts a dotted-quad string to an Addr.
func Parse(s string) (Addr, error) {
	var parts [4]uint32
	rest := s
	for i := 0; i < 4; i++ {
		var tok string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("ipaddr: invalid address %q", s)
			}
			tok, rest = rest[:dot], rest[dot+1:]
		} else {
			tok = rest
		}
		v, err := strconv.ParseUint(tok, 10, 32)
		if err != nil || v > 255 || tok == "" || (len(tok) > 1 && tok[0] == '0') {
			return 0, fmt.Errorf("ipaddr: invalid octet %q in %q", tok, s)
		}
		parts[i] = uint32(v)
	}
	return Addr(parts[0]<<24 | parts[1]<<16 | parts[2]<<8 | parts[3]), nil
}

// MustParse is Parse that panics on error, for constants in tests and examples.
func MustParse(s string) Addr {
	a, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String returns the dotted-quad representation.
func (a Addr) String() string {
	var b [15]byte
	buf := strconv.AppendUint(b[:0], uint64(a>>24), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>16&0xff), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>8&0xff), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a&0xff), 10)
	return string(buf)
}

// Octets returns the four address bytes, most significant first.
func (a Addr) Octets() [4]byte {
	return [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

// FromOctets assembles an Addr from four bytes, most significant first.
func FromOctets(o [4]byte) Addr {
	return Addr(uint32(o[0])<<24 | uint32(o[1])<<16 | uint32(o[2])<<8 | uint32(o[3]))
}

// Prefix is an IPv4 CIDR prefix such as 10.0.0.0/8.
type Prefix struct {
	Base Addr
	Bits int // prefix length, 0..32
}

// ParsePrefix parses "a.b.c.d/len". The base address is masked to the
// prefix length.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("ipaddr: missing '/' in prefix %q", s)
	}
	a, err := Parse(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("ipaddr: invalid prefix length in %q", s)
	}
	p := Prefix{Base: a, Bits: bits}
	p.Base &= p.Mask()
	return p, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Mask returns the netmask of the prefix as an Addr.
func (p Prefix) Mask() Addr {
	if p.Bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - p.Bits))
}

// Contains reports whether a falls inside the prefix.
func (p Prefix) Contains(a Addr) bool {
	return a&p.Mask() == p.Base&p.Mask()
}

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() uint64 {
	return uint64(1) << (32 - p.Bits)
}

// Nth returns the i-th address of the prefix (0 == network address).
// It panics if i is out of range.
func (p Prefix) Nth(i uint64) Addr {
	if i >= p.Size() {
		panic(fmt.Sprintf("ipaddr: index %d out of range for %s", i, p))
	}
	return p.Base&p.Mask() | Addr(i)
}

// Offset returns the index of a within the prefix, such that
// p.Nth(p.Offset(a)) == a when p.Contains(a).
func (p Prefix) Offset(a Addr) uint64 {
	return uint64(a &^ p.Mask())
}

// String returns the CIDR notation of the prefix.
func (p Prefix) String() string {
	return p.Base.String() + "/" + strconv.Itoa(p.Bits)
}

// CommonPrefixLen returns the number of leading bits shared by a and b.
func CommonPrefixLen(a, b Addr) int {
	x := uint32(a ^ b)
	n := 0
	for i := 31; i >= 0; i-- {
		if x&(1<<uint(i)) != 0 {
			break
		}
		n++
	}
	return n
}

// IsPrivate reports whether a belongs to the RFC 1918 ranges, used by the
// telescope's legitimate-traffic filter.
func IsPrivate(a Addr) bool {
	return rfc1918a.Contains(a) || rfc1918b.Contains(a) || rfc1918c.Contains(a)
}

var (
	rfc1918a = Prefix{Base: 0x0A000000, Bits: 8}  // 10.0.0.0/8
	rfc1918b = Prefix{Base: 0xAC100000, Bits: 12} // 172.16.0.0/12
	rfc1918c = Prefix{Base: 0xC0A80000, Bits: 16} // 192.168.0.0/16
)
