package ipaddr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{"0.0.0.0", "1.2.3.4", "255.255.255.255", "10.0.0.1", "192.168.1.254"}
	for _, s := range cases {
		a, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := a.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "-1.0.0.0", "a.b.c.d", "1..2.3", "01.2.3.4", "1.2.3.4 "}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseKnownValues(t *testing.T) {
	a := MustParse("1.1.1.1")
	if uint32(a) != 16843009 {
		t.Errorf("1.1.1.1 = %d, want 16843009 (paper's example)", uint32(a))
	}
	b := MustParse("2.2.2.2")
	if uint32(b) != 33686018 {
		t.Errorf("2.2.2.2 = %d, want 33686018 (paper's example)", uint32(b))
	}
}

func TestOctetsRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		return FromOctets(a.Octets()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringParseRoundTripProperty(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		b, err := Parse(a.String())
		return err == nil && b == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("44.0.0.0/8")
	if !p.Contains(MustParse("44.255.3.9")) {
		t.Error("44.255.3.9 should be inside 44.0.0.0/8")
	}
	if p.Contains(MustParse("45.0.0.0")) {
		t.Error("45.0.0.0 should be outside 44.0.0.0/8")
	}
	if got := p.Size(); got != 1<<24 {
		t.Errorf("Size() = %d, want 2^24", got)
	}
}

func TestPrefixMaskEdges(t *testing.T) {
	all := MustParsePrefix("0.0.0.0/0")
	if all.Mask() != 0 {
		t.Errorf("/0 mask = %v, want 0", all.Mask())
	}
	if !all.Contains(MustParse("200.1.2.3")) {
		t.Error("/0 must contain everything")
	}
	host := MustParsePrefix("9.9.9.9/32")
	if !host.Contains(MustParse("9.9.9.9")) || host.Contains(MustParse("9.9.9.8")) {
		t.Error("/32 must contain exactly itself")
	}
	if host.Size() != 1 {
		t.Errorf("/32 size = %d, want 1", host.Size())
	}
}

func TestPrefixBaseMasked(t *testing.T) {
	p := MustParsePrefix("10.9.8.7/8")
	if p.Base != MustParse("10.0.0.0") {
		t.Errorf("base not masked: %v", p.Base)
	}
	if p.String() != "10.0.0.0/8" {
		t.Errorf("String() = %q", p.String())
	}
}

func TestPrefixParseErrors(t *testing.T) {
	bad := []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "10.0.0.0/x", "10.0.0/8"}
	for _, s := range bad {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", s)
		}
	}
}

func TestNthOffsetRoundTrip(t *testing.T) {
	p := MustParsePrefix("44.0.0.0/8")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		idx := uint64(rng.Intn(1 << 24))
		a := p.Nth(idx)
		if !p.Contains(a) {
			t.Fatalf("Nth(%d) = %v outside prefix", idx, a)
		}
		if got := p.Offset(a); got != idx {
			t.Fatalf("Offset(Nth(%d)) = %d", idx, got)
		}
	}
}

func TestNthPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Nth out of range did not panic")
		}
	}()
	MustParsePrefix("1.0.0.0/24").Nth(256)
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"0.0.0.0", "0.0.0.0", 32},
		{"128.0.0.0", "0.0.0.0", 0},
		{"10.0.0.0", "10.0.0.1", 31},
		{"10.0.0.0", "10.128.0.0", 8},
		{"255.255.255.255", "255.255.255.254", 31},
	}
	for _, c := range cases {
		got := CommonPrefixLen(MustParse(c.a), MustParse(c.b))
		if got != c.want {
			t.Errorf("CommonPrefixLen(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCommonPrefixLenSymmetric(t *testing.T) {
	f := func(x, y uint32) bool {
		return CommonPrefixLen(Addr(x), Addr(y)) == CommonPrefixLen(Addr(y), Addr(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsPrivate(t *testing.T) {
	private := []string{"10.1.2.3", "172.16.0.1", "172.31.255.255", "192.168.0.1"}
	public := []string{"11.0.0.1", "172.32.0.1", "192.169.0.1", "8.8.8.8"}
	for _, s := range private {
		if !IsPrivate(MustParse(s)) {
			t.Errorf("IsPrivate(%s) = false, want true", s)
		}
	}
	for _, s := range public {
		if IsPrivate(MustParse(s)) {
			t.Errorf("IsPrivate(%s) = true, want false", s)
		}
	}
}
