package stats

import (
	"math"
	"testing"
)

func TestFitModifiedCauchyNormVariants(t *testing.T) {
	truth := ModifiedCauchy{Alpha: 1, Beta: 4}
	dts := make([]float64, 15)
	vals := make([]float64, 15)
	for i := range dts {
		dts[i] = float64(i - 4)
		vals[i] = 0.8 * truth.Eval(dts[i])
	}
	// On clean data every norm recovers the truth.
	for _, p := range []float64{0.5, 1, 2} {
		fit := FitModifiedCauchyNorm(dts, vals, p)
		m := fit.Model.(ModifiedCauchy)
		if math.Abs(m.Alpha-1) > 0.1 || math.Abs(m.Beta-4)/4 > 0.25 {
			t.Errorf("p=%g recovered (%.2f, %.2f), want (1, 4)", p, m.Alpha, m.Beta)
		}
	}
}

func TestFractionalNormRobustToOutlier(t *testing.T) {
	// One grossly corrupted month: the half-norm fit must stay closer to
	// the truth than the L2 fit.
	truth := ModifiedCauchy{Alpha: 1, Beta: 4}
	dts := make([]float64, 15)
	vals := make([]float64, 15)
	for i := range dts {
		dts[i] = float64(i - 4)
		vals[i] = 0.8 * truth.Eval(dts[i])
	}
	vals[12] += 0.5 // corrupted far-tail month

	errOf := func(p float64) float64 {
		fit := FitModifiedCauchyNorm(dts, vals, p)
		m := fit.Model.(ModifiedCauchy)
		return math.Abs(m.Alpha-truth.Alpha) + math.Abs(m.Beta-truth.Beta)/truth.Beta
	}
	if half, l2 := errOf(0.5), errOf(2); half > l2+1e-9 {
		t.Errorf("half-norm error %g exceeds L2 error %g under an outlier", half, l2)
	}
}

func TestFitResidualConsistency(t *testing.T) {
	// The reported residual must equal the half-norm of the residuals of
	// the returned curve.
	truth := ModifiedCauchy{Alpha: 0.8, Beta: 2}
	dts := []float64{-3, -2, -1, 0, 1, 2, 3, 4, 5}
	vals := make([]float64, len(dts))
	for i, dt := range dts {
		vals[i] = 0.7*truth.Eval(dt) + 0.02*float64(i%3)
	}
	fit := FitModifiedCauchy(dts, vals)
	recomputed := HalfNorm(Residuals(vals, fit.Curve(dts)))
	if math.Abs(recomputed-fit.Residual) > 1e-9 {
		t.Errorf("residual %g != recomputed %g", fit.Residual, recomputed)
	}
}
