package stats

import (
	"math"
	"math/rand"
)

// ZipfMandelbrot is the two-parameter heavy-tail distribution
//
//	p(d) ∝ 1/(d + δ)^α ,  d = 1, 2, ..., DMax
//
// that the paper fits to the CAIDA source-packet degree distribution
// (Figure 3 reports α ≈ 1.76, δ ≈ 3.93).
type ZipfMandelbrot struct {
	Alpha float64 // exponent α > 1
	Delta float64 // offset δ >= 0
	DMax  float64 // truncation; degrees above are never produced
}

// PaperZM returns the distribution with the paper's Figure 3 parameters.
func PaperZM(dmax float64) ZipfMandelbrot {
	return ZipfMandelbrot{Alpha: 1.76, Delta: 3.93, DMax: dmax}
}

// cdfCont evaluates the continuous-relaxation CDF at x in [1, DMax]:
// the normalized integral of (t+δ)^(-α). The continuous form admits a
// closed-form inverse, which the sampler uses; discretization by rounding
// preserves the power-law tail.
func (z ZipfMandelbrot) cdfCont(x float64) float64 {
	a, d := z.Alpha, z.Delta
	g := func(t float64) float64 { return math.Pow(t+d, 1-a) }
	num := g(1) - g(x)
	den := g(1) - g(z.DMax)
	return num / den
}

// Quantile inverts the continuous CDF: Quantile(u) for u in [0,1).
func (z ZipfMandelbrot) Quantile(u float64) float64 {
	a, d := z.Alpha, z.Delta
	g1 := math.Pow(1+d, 1-a)
	gm := math.Pow(z.DMax+d, 1-a)
	gx := g1 - u*(g1-gm)
	return math.Pow(gx, 1/(1-a)) - d
}

// Sample draws one degree value in [1, DMax].
func (z ZipfMandelbrot) Sample(rng *rand.Rand) float64 {
	x := z.Quantile(rng.Float64())
	v := math.Round(x)
	if v < 1 {
		v = 1
	}
	if v > z.DMax {
		v = z.DMax
	}
	return v
}

// BinnedProb returns the model's probability mass per binary logarithmic
// bin, up to bin maxBin inclusive, computed from the continuous CDF so it
// is directly comparable to Binned.Prob() of a sample drawn from the
// model.
func (z ZipfMandelbrot) BinnedProb(maxBin int) []float64 {
	out := make([]float64, maxBin+1)
	prev := 0.0
	for i := 0; i <= maxBin; i++ {
		hi := math.Pow(2, float64(i))
		if hi > z.DMax {
			hi = z.DMax
		}
		c := z.cdfCont(hi)
		out[i] = c - prev
		prev = c
	}
	return out
}

// FitZipfMandelbrot recovers (α, δ) from a binned empirical degree
// distribution by grid search minimizing the paper's ‖·‖½ norm between
// the empirical and model per-bin probabilities.
func FitZipfMandelbrot(b *Binned, dmax float64) (alpha, delta, residual float64) {
	emp := b.Prob()
	maxBin := len(emp) - 1
	if maxBin < 1 {
		return 0, 0, math.Inf(1)
	}
	loss := func(a, d float64) float64 {
		model := ZipfMandelbrot{Alpha: a, Delta: d, DMax: dmax}.BinnedProb(maxBin)
		return HalfNorm(Residuals(emp, model))
	}
	return GridSearch2(
		Range{Lo: 1.05, Hi: 3.0},
		Range{Lo: 0.0, Hi: 20.0},
		40, loss)
}
