package stats

import (
	"math"
	"math/rand"
	"sort"
)

// interval.go provides uncertainty quantification for the correlation
// measurements: Wilson score intervals for the per-band fractions
// (binomial proportions) and percentile bootstrap intervals for derived
// statistics. The paper plots point estimates only; the intervals let
// the reproduction distinguish real shape from small-band noise.

// WilsonCI returns the Wilson score interval for k successes in n
// trials at the given z value (1.96 for 95%). It is well-behaved at
// k = 0 and k = n, unlike the normal approximation.
func WilsonCI(k, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nn := float64(n)
	z2 := z * z
	den := 1 + z2/nn
	center := (p + z2/(2*nn)) / den
	half := z / den * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Wilson95 is WilsonCI at 95% confidence.
func Wilson95(k, n int) (lo, hi float64) { return WilsonCI(k, n, 1.96) }

// BootstrapMeanCI returns the percentile bootstrap confidence interval
// for the mean of values at the given confidence level (e.g. 0.95),
// using iters resamples. Deterministic in rng.
func BootstrapMeanCI(values []float64, conf float64, iters int, rng *rand.Rand) (lo, hi float64) {
	if len(values) == 0 {
		return 0, 0
	}
	if iters < 2 {
		iters = 2
	}
	means := make([]float64, iters)
	for b := range means {
		var s float64
		for range values {
			s += values[rng.Intn(len(values))]
		}
		means[b] = s / float64(len(values))
	}
	sort.Float64s(means)
	alpha := (1 - conf) / 2
	loIdx := int(alpha * float64(iters))
	hiIdx := int((1 - alpha) * float64(iters))
	if hiIdx >= iters {
		hiIdx = iters - 1
	}
	return means[loIdx], means[hiIdx]
}

// BootstrapStatCI generalizes BootstrapMeanCI to an arbitrary statistic.
func BootstrapStatCI(values []float64, conf float64, iters int, rng *rand.Rand,
	stat func([]float64) float64) (lo, hi float64) {
	if len(values) == 0 {
		return 0, 0
	}
	if iters < 2 {
		iters = 2
	}
	resample := make([]float64, len(values))
	stats := make([]float64, iters)
	for b := range stats {
		for i := range resample {
			resample[i] = values[rng.Intn(len(values))]
		}
		stats[b] = stat(resample)
	}
	sort.Float64s(stats)
	alpha := (1 - conf) / 2
	loIdx := int(alpha * float64(iters))
	hiIdx := int((1 - alpha) * float64(iters))
	if hiIdx >= iters {
		hiIdx = iters - 1
	}
	return stats[loIdx], stats[hiIdx]
}
