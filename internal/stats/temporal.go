package stats

import "math"

// temporal.go implements the three temporal-correlation models of the
// paper's Figure 5 and the fitting procedure used throughout Figures
// 5-8: candidate curves are normalized to the peak of the data and the
// parameters minimizing the ‖·‖½ norm of the residual are selected.

// TemporalModel is a normalized correlation-decay shape: Eval(0) == 1 and
// Eval decreases with |dt| (dt measured in months in the paper).
type TemporalModel interface {
	Name() string
	Eval(dt float64) float64
}

// ModifiedCauchy is the paper's f(t) ∝ β/(β + |t-t0|^α).
type ModifiedCauchy struct {
	Alpha float64 // exponent α > 0
	Beta  float64 // scale β > 0
}

// Name implements TemporalModel.
func (m ModifiedCauchy) Name() string { return "modified-cauchy" }

// Eval implements TemporalModel.
func (m ModifiedCauchy) Eval(dt float64) float64 {
	return m.Beta / (m.Beta + math.Pow(math.Abs(dt), m.Alpha))
}

// OneMonthDrop returns 1/(β+1), the relative drop from the peak after one
// month, the quantity of the paper's Figure 8.
func (m ModifiedCauchy) OneMonthDrop() float64 { return 1 / (m.Beta + 1) }

// Cauchy is the standard Cauchy (Lorentzian) shape γ²/(γ² + dt²), the
// α = 2, β = γ² special case of ModifiedCauchy.
type Cauchy struct {
	Gamma float64
}

// Name implements TemporalModel.
func (c Cauchy) Name() string { return "cauchy" }

// Eval implements TemporalModel.
func (c Cauchy) Eval(dt float64) float64 {
	g2 := c.Gamma * c.Gamma
	return g2 / (g2 + dt*dt)
}

// Gaussian is the normal shape exp(-dt² / 2σ²).
type Gaussian struct {
	Sigma float64
}

// Name implements TemporalModel.
func (g Gaussian) Name() string { return "gaussian" }

// Eval implements TemporalModel.
func (g Gaussian) Eval(dt float64) float64 {
	return math.Exp(-dt * dt / (2 * g.Sigma * g.Sigma))
}

// TemporalFit is the result of fitting a model to a correlation series.
type TemporalFit struct {
	Model    TemporalModel
	Peak     float64 // normalization: the maximum of the data series
	Residual float64 // ‖data - peak·model‖½
}

// Curve evaluates the fitted (denormalized) model at each dt.
func (f TemporalFit) Curve(dts []float64) []float64 {
	out := make([]float64, len(dts))
	for i, dt := range dts {
		out[i] = f.Peak * f.Model.Eval(dt)
	}
	return out
}

func peakOf(values []float64) float64 {
	p := 0.0
	for _, v := range values {
		if v > p {
			p = v
		}
	}
	return p
}

// residualPNorm is PNorm(Residuals(values, peak·model), p) fused into
// one pass — the inner loop of every grid search in this file, called
// thousands of times per fit, so it materializes no intermediate
// slices. Generic over the model so concrete shapes stay unboxed. The
// operations run in the exact order of the composed form (model, then
// residual, then Pow-accumulate, then the final Pow), so fitted
// parameters are bit-identical to the historical slice-based path.
func residualPNorm[M TemporalModel](dts, values []float64, peak float64, m M, p float64) float64 {
	if p <= 0 {
		panic("stats: PNorm requires p > 0")
	}
	var s float64
	for i, dt := range dts {
		s += math.Pow(math.Abs(values[i]-peak*m.Eval(dt)), p)
	}
	return math.Pow(s, 1/p)
}

func residualFor[M TemporalModel](dts, values []float64, peak float64, m M) float64 {
	return residualPNorm(dts, values, peak, m, 0.5)
}

// FitModifiedCauchy fits α and β by grid search, normalizing the model to
// the data peak per the paper. dts are the time offsets t - t0 (months),
// values the measured correlation fractions.
func FitModifiedCauchy(dts, values []float64) TemporalFit {
	return FitModifiedCauchyNorm(dts, values, 0.5)
}

// FitModifiedCauchyNorm is FitModifiedCauchy under an arbitrary fitting
// p-norm; the paper uses p = 1/2, and the A2 ablation compares against
// p = 1 and p = 2.
func FitModifiedCauchyNorm(dts, values []float64, p float64) TemporalFit {
	peak := peakOf(values)
	loss := func(a, b float64) float64 {
		return residualPNorm(dts, values, peak, ModifiedCauchy{Alpha: a, Beta: b}, p)
	}
	a, b, r := GridSearch2(
		Range{Lo: 0.05, Hi: 2.0},
		Range{Lo: 0.01, Hi: 100.0, Log: true},
		50, loss)
	return TemporalFit{Model: ModifiedCauchy{Alpha: a, Beta: b}, Peak: peak, Residual: r}
}

// FitCauchy fits the standard Cauchy scale γ.
func FitCauchy(dts, values []float64) TemporalFit {
	peak := peakOf(values)
	g, r := GridSearch1(Range{Lo: 0.05, Hi: 50, Log: true}, 200, func(g float64) float64 {
		return residualFor(dts, values, peak, Cauchy{Gamma: g})
	})
	return TemporalFit{Model: Cauchy{Gamma: g}, Peak: peak, Residual: r}
}

// FitGaussian fits the normal width σ.
func FitGaussian(dts, values []float64) TemporalFit {
	peak := peakOf(values)
	s, r := GridSearch1(Range{Lo: 0.05, Hi: 50, Log: true}, 200, func(s float64) float64 {
		return residualFor(dts, values, peak, Gaussian{Sigma: s})
	})
	return TemporalFit{Model: Gaussian{Sigma: s}, Peak: peak, Residual: r}
}

// FitAllTemporal fits all three model families (the comparison of the
// paper's Figure 5) and returns them keyed by model name.
func FitAllTemporal(dts, values []float64) map[string]TemporalFit {
	return map[string]TemporalFit{
		"modified-cauchy": FitModifiedCauchy(dts, values),
		"cauchy":          FitCauchy(dts, values),
		"gaussian":        FitGaussian(dts, values),
	}
}
