// Package stats implements the statistical machinery of the paper:
// binary logarithmic binning of heavy-tailed degree distributions,
// differential cumulative probabilities, Zipf-Mandelbrot / Gaussian /
// Cauchy / modified-Cauchy models, the fractional-norm grid-search
// fitting procedure, and heavy-tail samplers for the radiation generator.
package stats

import (
	"math"
)

// Binned is a degree distribution pooled into binary logarithmic bins
// d_i = 2^i, following Clauset-Shalizi-Newman [48] as the paper does.
// Bin i covers degrees d with 2^(i-1) < d <= 2^i (bin 0 covers d == 1).
type Binned struct {
	Centers []float64 // d_i = 2^i for each bin i = 0..len-1
	Counts  []float64 // n_t(d_i): number of observations in the bin
	Total   float64   // sum of Counts
}

// LogBinIndex returns the bin index for degree d >= 1: ceil(log2(d)).
func LogBinIndex(d float64) int {
	if d <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(d) - 1e-12))
}

// LogBin pools the given degree values (each >= 1; smaller values are
// ignored) into binary logarithmic bins.
func LogBin(values []float64) *Binned {
	maxBin := -1
	for _, v := range values {
		if v < 1 {
			continue
		}
		if b := LogBinIndex(v); b > maxBin {
			maxBin = b
		}
	}
	if maxBin < 0 {
		return &Binned{}
	}
	b := &Binned{
		Centers: make([]float64, maxBin+1),
		Counts:  make([]float64, maxBin+1),
	}
	for i := range b.Centers {
		b.Centers[i] = math.Pow(2, float64(i))
	}
	for _, v := range values {
		if v < 1 {
			continue
		}
		b.Counts[LogBinIndex(v)]++
		b.Total++
	}
	return b
}

// Prob returns the per-bin probabilities D_t(d_i) = P_t(d_i) - P_t(d_i-1),
// i.e. the normalized histogram over logarithmic bins (the quantity
// plotted in the paper's Figure 3).
func (b *Binned) Prob() []float64 {
	out := make([]float64, len(b.Counts))
	if b.Total == 0 {
		return out
	}
	for i, c := range b.Counts {
		out[i] = c / b.Total
	}
	return out
}

// Cumulative returns P_t(d_i), the running sum of Prob.
func (b *Binned) Cumulative() []float64 {
	p := b.Prob()
	for i := 1; i < len(p); i++ {
		p[i] += p[i-1]
	}
	return p
}

// MaxDegreeBin returns the index of the last non-empty bin, or -1 when
// empty.
func (b *Binned) MaxDegreeBin() int {
	for i := len(b.Counts) - 1; i >= 0; i-- {
		if b.Counts[i] > 0 {
			return i
		}
	}
	return -1
}

// BandIndex identifies the brightness band [2^i, 2^(i+1)) that the
// paper's Figures 5-8 slice sources into. It differs from LogBinIndex in
// using half-open lower-inclusive ranges, matching "d <= source packets
// < 2d" in Figure 6's caption.
func BandIndex(d float64) int {
	if d < 1 {
		return -1
	}
	return int(math.Floor(math.Log2(d) + 1e-12))
}

// BandLow returns the lower edge 2^i of band i.
func BandLow(i int) float64 { return math.Pow(2, float64(i)) }

// Summary holds basic moments of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64
	Min, Max float64
}

// Summarize computes sample moments in one pass (Welford's algorithm).
func Summarize(values []float64) Summary {
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1)}
	var m, m2 float64
	for _, v := range values {
		s.N++
		delta := v - m
		m += delta / float64(s.N)
		m2 += delta * (v - m)
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	if s.N == 0 {
		return Summary{}
	}
	s.Mean = m
	if s.N > 1 {
		s.Variance = m2 / float64(s.N-1)
	}
	return s
}
