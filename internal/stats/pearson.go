package stats

import "math"

// Pearson returns the Pearson correlation coefficient of two equal
// length samples, or 0 when either sample is degenerate. The experiment
// harness uses it to score the log-linearity of the Figure 4 law.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson length mismatch")
	}
	n := float64(len(x))
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
