package stats

import (
	"fmt"
	"math"
	"sort"
)

// tail.go provides classical heavy-tail diagnostics that complement the
// binned Zipf-Mandelbrot fit: the Hill estimator of the tail index and
// the one-sample Kolmogorov-Smirnov distance, following the methodology
// of Clauset-Shalizi-Newman [48] that the paper's binning is taken from.

// HillEstimator returns the Hill estimate of the tail exponent alpha
// using the k largest observations:
//
//	alpha = 1 + k / sum_{i=1..k} ln(x_(n-i+1) / x_(n-k))
//
// For a pure power law p(x) ∝ x^(-alpha) the estimate converges to
// alpha as k grows (with k/n -> 0). Returns an error when the sample or
// k is unusable.
func HillEstimator(values []float64, k int) (float64, error) {
	if k < 1 || k >= len(values) {
		return 0, fmt.Errorf("stats: Hill k=%d must be in [1, n-1] with n=%d", k, len(values))
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	xk := sorted[len(sorted)-1-k] // the (k+1)-th largest
	if xk <= 0 {
		return 0, fmt.Errorf("stats: Hill requires positive threshold, got %g", xk)
	}
	var s float64
	for i := len(sorted) - k; i < len(sorted); i++ {
		if sorted[i] <= 0 {
			return 0, fmt.Errorf("stats: Hill requires positive tail values")
		}
		s += math.Log(sorted[i] / xk)
	}
	if s == 0 {
		return 0, fmt.Errorf("stats: degenerate tail (all values equal)")
	}
	return 1 + float64(k)/s, nil
}

// HillPlot evaluates the Hill estimator over a sweep of k values
// (log-spaced), the standard diagnostic for choosing the tail cut.
func HillPlot(values []float64, points int) []HillPoint {
	n := len(values)
	if n < 4 || points < 1 {
		return nil
	}
	var out []HillPoint
	seen := make(map[int]bool)
	for i := 0; i < points; i++ {
		k := int(math.Round(math.Pow(float64(n-2), float64(i+1)/float64(points))))
		if k < 1 {
			k = 1
		}
		if k > n-1 {
			k = n - 1
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		if a, err := HillEstimator(values, k); err == nil {
			out = append(out, HillPoint{K: k, Alpha: a})
		}
	}
	return out
}

// HillPoint is one point of a Hill plot.
type HillPoint struct {
	K     int
	Alpha float64
}

// KSDistance returns the one-sample Kolmogorov-Smirnov statistic
// sup_x |F_n(x) - F(x)| between the empirical distribution of the
// sample and the model CDF.
func KSDistance(values []float64, cdf func(float64) float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var d float64
	for i, x := range sorted {
		f := cdf(x)
		lo := math.Abs(f - float64(i)/n)
		hi := math.Abs(float64(i+1)/n - f)
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}

// CDF returns the continuous-relaxation cumulative distribution of the
// Zipf-Mandelbrot law, for use with KSDistance.
func (z ZipfMandelbrot) CDF(x float64) float64 {
	if x < 1 {
		return 0
	}
	if x > z.DMax {
		return 1
	}
	return z.cdfCont(x)
}
