package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPNormBasics(t *testing.T) {
	xs := []float64{3, -4}
	if got := PNorm(xs, 2); math.Abs(got-5) > 1e-12 {
		t.Errorf("L2 = %g, want 5", got)
	}
	if got := PNorm(xs, 1); math.Abs(got-7) > 1e-12 {
		t.Errorf("L1 = %g, want 7", got)
	}
	// (sqrt(3)+sqrt(4))^2 = (1.732..+2)^2
	want := math.Pow(math.Sqrt(3)+2, 2)
	if got := HalfNorm(xs); math.Abs(got-want) > 1e-9 {
		t.Errorf("HalfNorm = %g, want %g", got, want)
	}
}

func TestPNormPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PNorm(p<=0) did not panic")
		}
	}()
	PNorm([]float64{1}, 0)
}

func TestHalfNormDampsOutliers(t *testing.T) {
	// The rationale for the paper's choice: relative to L2, the 1/2 norm
	// weighs one large residual less against many small ones.
	spike := []float64{10, 0, 0, 0}
	spread := []float64{2.5, 2.5, 2.5, 2.5}
	if PNorm(spike, 2) <= PNorm(spread, 2) {
		t.Fatal("sanity: L2 should prefer spread")
	}
	if HalfNorm(spike) >= HalfNorm(spread) {
		t.Error("HalfNorm did not prefer the concentrated residual")
	}
}

func TestResidualsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Residuals([]float64{1}, []float64{1, 2})
}

func TestRangeValues(t *testing.T) {
	lin := Range{Lo: 0, Hi: 10}.Values(11)
	if lin[0] != 0 || lin[10] != 10 || lin[5] != 5 {
		t.Errorf("linear grid = %v", lin)
	}
	logv := Range{Lo: 1, Hi: 100, Log: true}.Values(3)
	if math.Abs(logv[1]-10) > 1e-9 {
		t.Errorf("log grid midpoint = %g, want 10", logv[1])
	}
	single := Range{Lo: 5, Hi: 9}.Values(1)
	if len(single) != 1 || single[0] != 5 {
		t.Errorf("single-point grid = %v", single)
	}
}

func TestGridSearch2Recovers(t *testing.T) {
	target := func(a, b float64) float64 {
		return math.Abs(a-1.3) + math.Abs(b-4.2)
	}
	a, b, l := GridSearch2(Range{Lo: 0, Hi: 3}, Range{Lo: 0.1, Hi: 50, Log: true}, 60, target)
	if math.Abs(a-1.3) > 0.06 || math.Abs(b-4.2) > 0.5 {
		t.Errorf("grid search found (%g, %g, loss %g)", a, b, l)
	}
}

func TestGridSearch1Recovers(t *testing.T) {
	x, _ := GridSearch1(Range{Lo: 0, Hi: 10}, 100, func(x float64) float64 {
		return (x - 7.25) * (x - 7.25)
	})
	if math.Abs(x-7.25) > 0.06 {
		t.Errorf("found %g, want 7.25", x)
	}
}

func TestZipfMandelbrotQuantileMonotone(t *testing.T) {
	z := PaperZM(1 << 20)
	prev := 0.0
	for u := 0.0; u < 1; u += 0.01 {
		q := z.Quantile(u)
		if q < prev-1e-9 {
			t.Fatalf("quantile not monotone at u=%g", u)
		}
		prev = q
	}
	if q := z.Quantile(0); math.Abs(q-1) > 1e-6 {
		t.Errorf("Quantile(0) = %g, want 1", q)
	}
}

func TestZipfSampleRange(t *testing.T) {
	z := PaperZM(1024)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := z.Sample(rng)
		if v < 1 || v > 1024 || v != math.Round(v) {
			t.Fatalf("sample %g out of range or not integral", v)
		}
	}
}

func TestZipfBinnedProbSumsToOne(t *testing.T) {
	z := PaperZM(1 << 15)
	p := z.BinnedProb(15)
	var s float64
	for _, x := range p {
		s += x
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("binned model mass = %g, want 1", s)
	}
}

func TestZipfHeavyTail(t *testing.T) {
	// Most mass at small degrees, but non-trivial tail.
	z := PaperZM(1 << 20)
	rng := rand.New(rand.NewSource(2))
	small, big := 0, 0
	for i := 0; i < 20000; i++ {
		v := z.Sample(rng)
		if v <= 2 {
			small++
		}
		if v >= 1000 {
			big++
		}
	}
	// With δ = 3.93 the head is flattened: the continuous CDF puts
	// roughly 15-20% of mass at d <= 2, far more than any single tail bin.
	if small < 2000 {
		t.Errorf("only %d/20000 samples <= 2; head too light", small)
	}
	if big == 0 {
		t.Error("no samples >= 1000; tail too light for a ZM law")
	}
}

// TestFitZipfMandelbrotRecovery is the key self-consistency check for the
// Figure 3 pipeline: samples drawn from a known ZM law must yield fitted
// parameters near the truth.
func TestFitZipfMandelbrotRecovery(t *testing.T) {
	truth := ZipfMandelbrot{Alpha: 1.76, Delta: 3.93, DMax: 1 << 22}
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 200000)
	for i := range vals {
		vals[i] = truth.Sample(rng)
	}
	alpha, delta, res := FitZipfMandelbrot(LogBin(vals), truth.DMax)
	if math.Abs(alpha-truth.Alpha) > 0.25 {
		t.Errorf("alpha = %g (residual %g), want ~%g", alpha, res, truth.Alpha)
	}
	if math.Abs(delta-truth.Delta) > 3.0 {
		t.Errorf("delta = %g, want ~%g", delta, truth.Delta)
	}
}

func TestFitZipfEmptyInput(t *testing.T) {
	_, _, res := FitZipfMandelbrot(LogBin(nil), 1024)
	if !math.IsInf(res, 1) {
		t.Error("fit of empty distribution should report infinite residual")
	}
}

func TestModifiedCauchyShape(t *testing.T) {
	m := ModifiedCauchy{Alpha: 1, Beta: 4}
	if m.Eval(0) != 1 {
		t.Errorf("Eval(0) = %g, want 1", m.Eval(0))
	}
	if math.Abs(m.Eval(1)-4.0/5.0) > 1e-12 {
		t.Errorf("Eval(1) = %g, want 0.8", m.Eval(1))
	}
	if m.Eval(2) >= m.Eval(1) || m.Eval(-2) != m.Eval(2) {
		t.Error("modified Cauchy not symmetric-decreasing")
	}
	if math.Abs(m.OneMonthDrop()-0.2) > 1e-12 {
		t.Errorf("OneMonthDrop = %g, want 0.2", m.OneMonthDrop())
	}
}

func TestCauchyIsModifiedCauchySpecialCase(t *testing.T) {
	// Setting α = 2 and β = γ² must reproduce the standard Cauchy.
	g := 1.7
	c := Cauchy{Gamma: g}
	m := ModifiedCauchy{Alpha: 2, Beta: g * g}
	for dt := -5.0; dt <= 5; dt += 0.5 {
		if math.Abs(c.Eval(dt)-m.Eval(dt)) > 1e-12 {
			t.Fatalf("mismatch at dt=%g: %g vs %g", dt, c.Eval(dt), m.Eval(dt))
		}
	}
}

func TestGaussianShape(t *testing.T) {
	g := Gaussian{Sigma: 2}
	if g.Eval(0) != 1 {
		t.Error("Gaussian peak != 1")
	}
	if math.Abs(g.Eval(2)-math.Exp(-0.5)) > 1e-12 {
		t.Errorf("Eval(sigma) = %g, want e^-1/2", g.Eval(2))
	}
}

func TestFitModifiedCauchyRecovery(t *testing.T) {
	truth := ModifiedCauchy{Alpha: 1.0, Beta: 4.0}
	peak := 0.7
	dts := []float64{-4, -3, -2, -1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	vals := make([]float64, len(dts))
	for i, dt := range dts {
		vals[i] = peak * truth.Eval(dt)
	}
	fit := FitModifiedCauchy(dts, vals)
	m := fit.Model.(ModifiedCauchy)
	if math.Abs(m.Alpha-truth.Alpha) > 0.1 || math.Abs(m.Beta-truth.Beta)/truth.Beta > 0.2 {
		t.Errorf("recovered (α=%g, β=%g), want (1, 4); residual %g", m.Alpha, m.Beta, fit.Residual)
	}
	if math.Abs(fit.Peak-peak) > 1e-12 {
		t.Errorf("peak = %g, want %g", fit.Peak, peak)
	}
}

func TestFitModifiedCauchyNoisyRecovery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := ModifiedCauchy{Alpha: 0.5 + rng.Float64(), Beta: 1 + 9*rng.Float64()}
		dts := make([]float64, 15)
		vals := make([]float64, 15)
		for i := range dts {
			dts[i] = float64(i - 4)
			vals[i] = 0.8*truth.Eval(dts[i]) + 0.01*(rng.Float64()-0.5)
		}
		fit := FitModifiedCauchy(dts, vals)
		m := fit.Model.(ModifiedCauchy)
		// Loose bounds: noisy small-sample fit.
		return math.Abs(m.Alpha-truth.Alpha) < 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestModifiedCauchyBeatsAlternativesOnOwnData reproduces the Figure 5
// comparison logic: on data generated from a modified Cauchy with α=3/4,
// the modified-Cauchy family must fit at least as well as Gaussian or
// standard Cauchy.
func TestModifiedCauchyBeatsAlternativesOnOwnData(t *testing.T) {
	truth := ModifiedCauchy{Alpha: 0.75, Beta: 2.0}
	dts := make([]float64, 15)
	vals := make([]float64, 15)
	for i := range dts {
		dts[i] = float64(i - 4)
		vals[i] = 0.65 * truth.Eval(dts[i])
	}
	fits := FitAllTemporal(dts, vals)
	mc := fits["modified-cauchy"].Residual
	if mc > fits["cauchy"].Residual+1e-9 || mc > fits["gaussian"].Residual+1e-9 {
		t.Errorf("modified Cauchy residual %g not best (cauchy %g, gaussian %g)",
			mc, fits["cauchy"].Residual, fits["gaussian"].Residual)
	}
}

func TestTemporalFitCurve(t *testing.T) {
	fit := TemporalFit{Model: ModifiedCauchy{Alpha: 1, Beta: 1}, Peak: 0.5}
	c := fit.Curve([]float64{0, 1})
	if c[0] != 0.5 || math.Abs(c[1]-0.25) > 1e-12 {
		t.Errorf("Curve = %v", c)
	}
}

func BenchmarkFitModifiedCauchy(b *testing.B) {
	truth := ModifiedCauchy{Alpha: 1, Beta: 4}
	dts := make([]float64, 15)
	vals := make([]float64, 15)
	for i := range dts {
		dts[i] = float64(i - 4)
		vals[i] = truth.Eval(dts[i])
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FitModifiedCauchy(dts, vals)
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z := PaperZM(1 << 30)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Sample(rng)
	}
}
