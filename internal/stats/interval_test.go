package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWilsonCIBasics(t *testing.T) {
	lo, hi := Wilson95(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("CI [%g, %g] does not contain the point estimate 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("CI [%g, %g] too wide for n=100", lo, hi)
	}
	// Edge cases: no failures / no successes stay within [0, 1] and
	// exclude the far end.
	lo, hi = Wilson95(0, 20)
	if lo != 0 || hi > 0.3 {
		t.Errorf("k=0 CI = [%g, %g]", lo, hi)
	}
	lo, hi = Wilson95(20, 20)
	if hi != 1 || lo < 0.7 {
		t.Errorf("k=n CI = [%g, %g]", lo, hi)
	}
	lo, hi = Wilson95(0, 0)
	if lo != 0 || hi != 1 {
		t.Errorf("n=0 CI = [%g, %g], want [0, 1]", lo, hi)
	}
}

func TestWilsonCIShrinksWithN(t *testing.T) {
	lo1, hi1 := Wilson95(5, 10)
	lo2, hi2 := Wilson95(500, 1000)
	if hi2-lo2 >= hi1-lo1 {
		t.Errorf("CI did not shrink: n=10 width %g, n=1000 width %g", hi1-lo1, hi2-lo2)
	}
}

func TestWilsonCIProperty(t *testing.T) {
	f := func(kRaw, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		k := int(kRaw) % (n + 1)
		lo, hi := Wilson95(k, n)
		p := float64(k) / float64(n)
		return lo >= 0 && hi <= 1 && lo <= p+1e-12 && hi >= p-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWilsonCICoverage(t *testing.T) {
	// Monte Carlo coverage: ~95% of intervals from binomial draws must
	// contain the true p.
	rng := rand.New(rand.NewSource(17))
	const trials = 2000
	const n = 200
	const p = 0.3
	covered := 0
	for i := 0; i < trials; i++ {
		k := 0
		for j := 0; j < n; j++ {
			if rng.Float64() < p {
				k++
			}
		}
		lo, hi := Wilson95(k, n)
		if lo <= p && p <= hi {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.92 || rate > 0.99 {
		t.Errorf("coverage = %g, want ~0.95", rate)
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	values := make([]float64, 500)
	for i := range values {
		values[i] = 10 + rng.NormFloat64()
	}
	lo, hi := BootstrapMeanCI(values, 0.95, 500, rng)
	if lo > 10 || hi < 10 {
		t.Errorf("CI [%g, %g] excludes the true mean 10", lo, hi)
	}
	if hi-lo > 0.5 {
		t.Errorf("CI [%g, %g] too wide for 500 samples", lo, hi)
	}
	if lo2, hi2 := BootstrapMeanCI(nil, 0.95, 100, rng); lo2 != 0 || hi2 != 0 {
		t.Error("empty input should yield zero interval")
	}
}

func TestBootstrapStatCIMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	values := make([]float64, 301)
	for i := range values {
		values[i] = float64(i) // median 150
	}
	median := func(xs []float64) float64 {
		cp := append([]float64(nil), xs...)
		// insertion into sorted order is overkill; use simple select
		for i := 1; i < len(cp); i++ {
			for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
				cp[j], cp[j-1] = cp[j-1], cp[j]
			}
		}
		return cp[len(cp)/2]
	}
	lo, hi := BootstrapStatCI(values, 0.9, 200, rng, median)
	if lo > 150 || hi < 150 {
		t.Errorf("median CI [%g, %g] excludes 150", lo, hi)
	}
	if math.Abs(lo-150) > 40 || math.Abs(hi-150) > 40 {
		t.Errorf("median CI [%g, %g] implausibly wide", lo, hi)
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	lo1, hi1 := BootstrapMeanCI(values, 0.95, 300, rand.New(rand.NewSource(9)))
	lo2, hi2 := BootstrapMeanCI(values, 0.95, 300, rand.New(rand.NewSource(9)))
	if lo1 != lo2 || hi1 != hi2 {
		t.Error("bootstrap not deterministic for a fixed rng seed")
	}
}
