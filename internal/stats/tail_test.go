package stats

import (
	"math"
	"math/rand"
	"testing"
)

// paretoSample draws n values from a pure Pareto law p(x) ∝ x^-(alpha)
// for x >= 1 (tail index alpha).
func paretoSample(rng *rand.Rand, n int, alpha float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		u := rng.Float64()
		out[i] = math.Pow(1-u, -1/(alpha-1))
	}
	return out
}

func TestHillEstimatorRecoversPareto(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, alpha := range []float64{1.76, 2.5} {
		vals := paretoSample(rng, 50000, alpha)
		got, err := HillEstimator(vals, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-alpha) > 0.15 {
			t.Errorf("Hill alpha = %g, want ~%g", got, alpha)
		}
	}
}

func TestHillEstimatorErrors(t *testing.T) {
	if _, err := HillEstimator([]float64{1, 2, 3}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := HillEstimator([]float64{1, 2, 3}, 3); err == nil {
		t.Error("k=n accepted")
	}
	if _, err := HillEstimator([]float64{-1, -2, 3, 4}, 2); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := HillEstimator([]float64{5, 5, 5, 5}, 2); err == nil {
		t.Error("degenerate tail accepted")
	}
}

func TestHillPlotStabilizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := paretoSample(rng, 30000, 2.0)
	plot := HillPlot(vals, 12)
	if len(plot) < 5 {
		t.Fatalf("plot has only %d points", len(plot))
	}
	// Mid-range points should cluster near the true index.
	mid := plot[len(plot)/2]
	if math.Abs(mid.Alpha-2.0) > 0.4 {
		t.Errorf("mid-plot alpha = %g at k=%d, want ~2", mid.Alpha, mid.K)
	}
	if HillPlot(vals[:3], 5) != nil {
		t.Error("tiny sample should produce no plot")
	}
}

func TestKSDistanceSelfConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := PaperZM(1 << 20)
	vals := make([]float64, 20000)
	for i := range vals {
		// Use the continuous quantile directly (no rounding) so the
		// sample follows the continuous CDF exactly.
		vals[i] = z.Quantile(rng.Float64())
	}
	d := KSDistance(vals, z.CDF)
	if d > 0.02 {
		t.Errorf("KS distance to the generating law = %g, want ~0", d)
	}
	// Against a very different law the distance must be large.
	wrong := ZipfMandelbrot{Alpha: 3.5, Delta: 0.1, DMax: 1 << 20}
	if dw := KSDistance(vals, wrong.CDF); dw < 5*d || dw < 0.1 {
		t.Errorf("KS distance to wrong law = %g, not clearly worse than %g", dw, d)
	}
}

func TestKSDistanceEdgeCases(t *testing.T) {
	if KSDistance(nil, func(float64) float64 { return 0 }) != 0 {
		t.Error("empty sample KS != 0")
	}
	// Single point at the median of a uniform law: D = 0.5.
	d := KSDistance([]float64{0.5}, func(x float64) float64 { return x })
	if math.Abs(d-0.5) > 1e-12 {
		t.Errorf("single-point KS = %g, want 0.5", d)
	}
}

func TestZMCDFBounds(t *testing.T) {
	z := PaperZM(1024)
	if z.CDF(0.5) != 0 {
		t.Error("CDF below support != 0")
	}
	if z.CDF(2048) != 1 {
		t.Error("CDF above support != 1")
	}
	if c := z.CDF(32); c <= 0 || c >= 1 {
		t.Errorf("interior CDF = %g", c)
	}
	// monotone
	prev := 0.0
	for x := 1.0; x <= 1024; x *= 2 {
		c := z.CDF(x)
		if c < prev {
			t.Fatalf("CDF not monotone at %g", x)
		}
		prev = c
	}
}

func TestHillAgreesWithZMFitOnTelescopeLikeData(t *testing.T) {
	// Cross-validation of the two estimators on ZM data: the Hill tail
	// index and the binned ZM fit must agree on the exponent within
	// estimator tolerances (delta shifts the head, not the tail).
	rng := rand.New(rand.NewSource(4))
	z := PaperZM(1 << 22)
	vals := make([]float64, 100000)
	for i := range vals {
		vals[i] = z.Sample(rng)
	}
	hill, err := HillEstimator(vals, 1500)
	if err != nil {
		t.Fatal(err)
	}
	zmAlpha, _, _ := FitZipfMandelbrot(LogBin(vals), z.DMax)
	if math.Abs(hill-zmAlpha) > 0.35 {
		t.Errorf("Hill %g vs ZM fit %g disagree", hill, zmAlpha)
	}
}
