package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{10, 20, 30, 40}
	if r := Pearson(x, y); math.Abs(r-1) > 1e-12 {
		t.Errorf("r = %g, want 1", r)
	}
	neg := []float64{40, 30, 20, 10}
	if r := Pearson(x, neg); math.Abs(r+1) > 1e-12 {
		t.Errorf("r = %g, want -1", r)
	}
}

func TestPearsonIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 5000)
	y := make([]float64, 5000)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	if r := Pearson(x, y); math.Abs(r) > 0.05 {
		t.Errorf("independent samples r = %g", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if r := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Errorf("constant x r = %g, want 0", r)
	}
	if r := Pearson([]float64{1}, []float64{2}); r != 0 {
		t.Errorf("n=1 r = %g, want 0", r)
	}
}

func TestPearsonMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestPearsonScaleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = 2*x[i] + 0.1*rng.Float64()
	}
	r1 := Pearson(x, y)
	scaled := make([]float64, len(y))
	for i := range y {
		scaled[i] = 1000*y[i] - 77
	}
	r2 := Pearson(x, scaled)
	if math.Abs(r1-r2) > 1e-9 {
		t.Errorf("affine transform changed r: %g vs %g", r1, r2)
	}
}
