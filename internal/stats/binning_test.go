package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogBinIndex(t *testing.T) {
	cases := []struct {
		d    float64
		want int
	}{
		{0.5, 0}, {1, 0}, {1.5, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := LogBinIndex(c.d); got != c.want {
			t.Errorf("LogBinIndex(%g) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestLogBinPowersOfTwoExact(t *testing.T) {
	// Powers of two must land in their own bin (upper-inclusive edges).
	for i := 0; i <= 30; i++ {
		d := math.Pow(2, float64(i))
		if got := LogBinIndex(d); got != i {
			t.Errorf("LogBinIndex(2^%d) = %d, want %d", i, got, i)
		}
	}
}

func TestLogBinCounts(t *testing.T) {
	b := LogBin([]float64{1, 1, 2, 3, 4, 8, 0.2})
	// bins: 1,1 -> bin0 ; 2 -> bin1 ; 3,4 -> bin2 ; 8 -> bin3; 0.2 dropped
	want := []float64{2, 1, 2, 1}
	if len(b.Counts) != len(want) {
		t.Fatalf("bins = %v", b.Counts)
	}
	for i := range want {
		if b.Counts[i] != want[i] {
			t.Errorf("bin %d = %g, want %g", i, b.Counts[i], want[i])
		}
	}
	if b.Total != 6 {
		t.Errorf("Total = %g, want 6", b.Total)
	}
	if b.Centers[3] != 8 {
		t.Errorf("Centers[3] = %g, want 8", b.Centers[3])
	}
}

func TestLogBinEmpty(t *testing.T) {
	b := LogBin(nil)
	if len(b.Counts) != 0 || b.Total != 0 || b.MaxDegreeBin() != -1 {
		t.Error("empty input produced non-empty binning")
	}
	if p := b.Prob(); len(p) != 0 {
		t.Error("Prob of empty binning non-empty")
	}
}

func TestProbSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, 500)
		for i := range vals {
			vals[i] = float64(1 + rng.Intn(10000))
		}
		p := LogBin(vals).Prob()
		var s float64
		for _, x := range p {
			s += x
		}
		return math.Abs(s-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCumulativeMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = float64(1 + rng.Intn(1000))
	}
	c := LogBin(vals).Cumulative()
	for i := 1; i < len(c); i++ {
		if c[i] < c[i-1]-1e-15 {
			t.Fatalf("cumulative decreases at %d", i)
		}
	}
	if math.Abs(c[len(c)-1]-1) > 1e-12 {
		t.Errorf("cumulative tail = %g, want 1", c[len(c)-1])
	}
}

func TestBandIndex(t *testing.T) {
	cases := []struct {
		d    float64
		want int
	}{
		{0.5, -1}, {1, 0}, {1.9, 0}, {2, 1}, {3.9, 1}, {4, 2},
		{16384, 14}, {32767, 14}, {32768, 15},
	}
	for _, c := range cases {
		if got := BandIndex(c.d); got != c.want {
			t.Errorf("BandIndex(%g) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestBandLowInverse(t *testing.T) {
	for i := 0; i < 25; i++ {
		if BandIndex(BandLow(i)) != i {
			t.Errorf("BandIndex(BandLow(%d)) != %d", i, i)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summary = %+v", s)
	}
	// sample variance of 1..4 is 5/3
	if math.Abs(s.Variance-5.0/3.0) > 1e-12 {
		t.Errorf("Variance = %g, want %g", s.Variance, 5.0/3.0)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Error("empty summary not zero")
	}
	one := Summarize([]float64{7})
	if one.Variance != 0 || one.Mean != 7 {
		t.Errorf("single-sample summary = %+v", one)
	}
}
