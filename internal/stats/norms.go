package stats

import "math"

// PNorm returns the p-norm (sum |x_i|^p)^(1/p) of the vector. The paper
// fits its temporal-correlation curves by minimizing the fractional
// p = 1/2 norm, which is robust to the heavy-tailed fluctuations of the
// bin occupancies (large residuals are damped relative to L2).
func PNorm(xs []float64, p float64) float64 {
	if p <= 0 {
		panic("stats: PNorm requires p > 0")
	}
	var s float64
	for _, x := range xs {
		s += math.Pow(math.Abs(x), p)
	}
	return math.Pow(s, 1/p)
}

// HalfNorm is the paper's fitting norm, PNorm(xs, 1/2).
func HalfNorm(xs []float64) float64 { return PNorm(xs, 0.5) }

// Residuals returns data[i] - model[i]; the slices must be equal length.
func Residuals(data, model []float64) []float64 {
	if len(data) != len(model) {
		panic("stats: residual length mismatch")
	}
	out := make([]float64, len(data))
	for i := range data {
		out[i] = data[i] - model[i]
	}
	return out
}

// Range is a closed parameter interval for grid search.
type Range struct {
	Lo, Hi float64
	Log    bool // geometric spacing when true
}

// Values materializes n grid points across the range.
func (r Range) Values(n int) []float64 {
	if n == 1 {
		return []float64{r.Lo}
	}
	out := make([]float64, n)
	if r.Log {
		llo, lhi := math.Log(r.Lo), math.Log(r.Hi)
		for i := range out {
			out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
		}
	} else {
		for i := range out {
			out[i] = r.Lo + (r.Hi-r.Lo)*float64(i)/float64(n-1)
		}
	}
	return out
}

// GridSearch2 minimizes loss over a 2-D grid, then refines with a second,
// narrower grid centered on the coarse optimum (one zoom stage is enough
// for the smooth single-minimum losses used here). It mirrors the paper's
// procedure of "generating all distributions over a range of possible α
// and β values ... and then selecting the α and β that minimize" the
// fitting norm.
func GridSearch2(ra, rb Range, steps int, loss func(a, b float64) float64) (bestA, bestB, bestLoss float64) {
	if steps < 2 {
		steps = 2
	}
	bestLoss = math.Inf(1)
	as, bs := ra.Values(steps), rb.Values(steps)
	for _, a := range as {
		for _, b := range bs {
			if l := loss(a, b); l < bestLoss {
				bestA, bestB, bestLoss = a, b, l
			}
		}
	}
	// Zoom: shrink each range around the winner by the grid pitch.
	zoom := func(r Range, best float64) Range {
		if r.Log {
			f := math.Pow(r.Hi/r.Lo, 1/float64(steps-1))
			return Range{Lo: math.Max(r.Lo, best/f), Hi: math.Min(r.Hi, best*f), Log: true}
		}
		h := (r.Hi - r.Lo) / float64(steps-1)
		return Range{Lo: math.Max(r.Lo, best-h), Hi: math.Min(r.Hi, best+h)}
	}
	ra2, rb2 := zoom(ra, bestA), zoom(rb, bestB)
	for _, a := range ra2.Values(steps) {
		for _, b := range rb2.Values(steps) {
			if l := loss(a, b); l < bestLoss {
				bestA, bestB, bestLoss = a, b, l
			}
		}
	}
	return bestA, bestB, bestLoss
}

// GridSearch1 minimizes loss over a 1-D grid with one zoom stage.
func GridSearch1(r Range, steps int, loss func(x float64) float64) (bestX, bestLoss float64) {
	a, _, l := GridSearch2(r, Range{Lo: 1, Hi: 1}, steps, func(x, _ float64) float64 { return loss(x) })
	return a, l
}
