package honeyfarm

import (
	"testing"
	"time"

	"repro/internal/assoc"
	"repro/internal/radiation"
	"repro/internal/stats"
	"repro/internal/tripled"
)

// TestPublishFetchMonthRoundTrip publishes an ingested month to a
// tripled server and reads it back: the fetched table must be
// cell-for-cell identical, and live under the month's row prefix so
// other months cannot collide.
func TestPublishFetchMonthRoundTrip(t *testing.T) {
	cfg := radiation.DefaultConfig()
	cfg.NumSources = 800
	cfg.ZM = stats.PaperZM(1 << 9)
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	farm := New(30, 7)
	start := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	mw := farm.IngestMonth("2020-03", start, pop.HoneyfarmMonth(1, start))
	mw2 := farm.IngestMonth("2020-04", start.AddDate(0, 1, 0), pop.HoneyfarmMonth(2, start.AddDate(0, 1, 0)))

	srv, err := tripled.Serve(tripled.NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := tripled.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := mw.Publish(c); err != nil {
		t.Fatal(err)
	}
	if err := mw2.Publish(c); err != nil {
		t.Fatal(err)
	}

	back, err := FetchMonthTable(c, "2020-03")
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != mw.Table.NNZ() {
		t.Fatalf("fetched %d cells, published %d", back.NNZ(), mw.Table.NNZ())
	}
	mw.Table.Iterate(func(r, col string, v assoc.Value) bool {
		if got, ok := back.Get(r, col); !ok || got != v {
			t.Errorf("cell (%s,%s) = %v, want %v", r, col, got, v)
		}
		return true
	})

	// Months are isolated by prefix: fetching an unpublished label is
	// empty, and the store holds exactly both tables.
	empty, err := FetchMonthTable(c, "2020-12")
	if err != nil {
		t.Fatal(err)
	}
	if empty.NNZ() != 0 {
		t.Errorf("unpublished month fetched %d cells", empty.NNZ())
	}
	nnz, err := c.NNZ()
	if err != nil {
		t.Fatal(err)
	}
	if want := mw.Table.NNZ() + mw2.Table.NNZ(); nnz != want {
		t.Errorf("store NNZ = %d, want %d", nnz, want)
	}
}
