package honeyfarm

import (
	"strings"
	"testing"
	"time"

	"repro/internal/assoc"
	"repro/internal/ipaddr"
	"repro/internal/pcap"
	"repro/internal/radiation"
	"repro/internal/stats"
)

func testPopulation(t *testing.T, n int) *radiation.Population {
	t.Helper()
	c := radiation.DefaultConfig()
	c.NumSources = n
	c.ZM = stats.PaperZM(1 << 12)
	p, err := radiation.NewPopulation(c)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewSensors(t *testing.T) {
	h := New(300, 7)
	if len(h.Sensors()) != 300 {
		t.Fatalf("sensors = %d, want 300", len(h.Sensors()))
	}
	seen := make(map[ipaddr.Addr]bool)
	for _, s := range h.Sensors() {
		if ipaddr.IsPrivate(s) {
			t.Fatalf("private sensor address %v", s)
		}
		if seen[s] {
			t.Fatalf("duplicate sensor %v", s)
		}
		seen[s] = true
	}
	h2 := New(300, 7)
	for i := range h.Sensors() {
		if h.Sensors()[i] != h2.Sensors()[i] {
			t.Fatal("sensor generation not deterministic")
		}
	}
}

func TestIngestMonthSchema(t *testing.T) {
	pop := testPopulation(t, 2000)
	h := New(100, 1)
	start := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)
	mw := h.IngestMonth("2020-02", start, pop.HoneyfarmMonth(0, start))
	if mw.Sources() == 0 {
		t.Fatal("month table empty")
	}
	cols := mw.Table.ColKeys()
	for _, want := range []string{ColPackets, ColClassification, ColIntent, ColFirstSeen, ColLastSeen, ColTags} {
		found := false
		for _, c := range cols {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Errorf("column %q missing from month table", want)
		}
	}
	// Every row fully populated.
	for _, row := range mw.Table.RowKeys() {
		for _, col := range []string{ColPackets, ColClassification, ColIntent} {
			if _, ok := mw.Table.Get(row, col); !ok {
				t.Fatalf("row %s missing %s", row, col)
			}
		}
	}
	if h.Month("2020-02") != mw {
		t.Error("Month lookup failed")
	}
	if h.Month("1999-01") != nil {
		t.Error("Month invented a window")
	}
}

func TestConverseClassifications(t *testing.T) {
	cases := []struct {
		typ    radiation.Archetype
		class  string
		intent string
	}{
		{radiation.Scanner, "scanner", "suspicious"},
		{radiation.Worm, "worm", "malicious"},
		{radiation.Backscatter, "backscatter", "benign"},
		{radiation.BotnetKeepalive, "botnet", "malicious"},
		{radiation.Misconfiguration, "misconfiguration", "benign"},
	}
	for _, c := range cases {
		p := Converse(radiation.Source{Type: c.typ}, nil)
		if p.Classification != c.class || p.Intent != c.intent {
			t.Errorf("%v -> (%s, %s), want (%s, %s)", c.typ, p.Classification, p.Intent, c.class, c.intent)
		}
		if len(p.Tags) == 0 {
			t.Errorf("%v has no tags", c.typ)
		}
	}
	// Persistent scanners are benign identified crawlers.
	p := Converse(radiation.Source{Type: radiation.Scanner, Persistent: true}, nil)
	if p.Intent != "benign" || !strings.Contains(strings.Join(p.Tags, ","), "identified-crawler") {
		t.Errorf("persistent scanner profile = %+v", p)
	}
}

func TestClassificationCensus(t *testing.T) {
	pop := testPopulation(t, 5000)
	h := New(50, 2)
	start := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	mw := h.IngestMonth("2020-03", start, pop.HoneyfarmMonth(1, start))
	census := mw.ClassificationCensus()
	if len(census) == 0 {
		t.Fatal("empty census")
	}
	total := 0
	for i, row := range census {
		total += row.Sources
		if i > 0 && census[i-1].Sources < row.Sources {
			t.Error("census not sorted by descending count")
		}
		if row.String() == "" {
			t.Error("empty census row rendering")
		}
	}
	if total != mw.Sources() {
		t.Errorf("census total %d != sources %d", total, mw.Sources())
	}
	// scanners dominate the population mix, so they should lead
	if census[0].Classification != "scanner" {
		t.Errorf("dominant class = %s, want scanner", census[0].Classification)
	}
}

func TestIngestPackets(t *testing.T) {
	h := New(3, 9)
	sensor := h.Sensors()[0]
	src1 := ipaddr.MustParse("8.8.8.8")
	src2 := ipaddr.MustParse("9.9.9.9")
	pkts := []pcap.Packet{
		{Time: time.Unix(100, 0), Src: src1, Dst: sensor, Proto: pcap.ProtoTCP},
		{Time: time.Unix(200, 0), Src: src1, Dst: sensor, Proto: pcap.ProtoTCP},
		{Time: time.Unix(300, 0), Src: src2, Dst: ipaddr.MustParse("1.1.1.1"), Proto: pcap.ProtoTCP}, // not a sensor
	}
	i := 0
	mw := h.IngestPackets("2020-04", time.Unix(0, 0), func(p *pcap.Packet) bool {
		if i >= len(pkts) {
			return false
		}
		*p = pkts[i]
		i++
		return true
	})
	if mw.Sources() != 1 {
		t.Fatalf("sources = %d, want 1 (only sensor-destined traffic)", mw.Sources())
	}
	v, _ := mw.Table.Get(src1.String(), ColPackets)
	if v.Num != 2 {
		t.Errorf("packets = %g, want 2", v.Num)
	}
	first, _ := mw.Table.Get(src1.String(), ColFirstSeen)
	last, _ := mw.Table.Get(src1.String(), ColLastSeen)
	if first.Str >= last.Str {
		t.Errorf("first_seen %q not before last_seen %q", first.Str, last.Str)
	}
}

func TestMonthlySourceCountsGrowWithVisibility(t *testing.T) {
	// Sources visible in their beam month should make tables non-trivial
	// across the whole study period.
	pop := testPopulation(t, 3000)
	h := New(100, 3)
	start := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)
	for m := 0; m < pop.Config().Months; m++ {
		ms := start.AddDate(0, m, 0)
		h.IngestMonth(ms.Format("2006-01"), ms, pop.HoneyfarmMonth(m, ms))
	}
	if len(h.Months()) != pop.Config().Months {
		t.Fatalf("months = %d", len(h.Months()))
	}
	for _, mw := range h.Months() {
		if mw.Sources() < 10 {
			t.Errorf("month %s has only %d sources", mw.Label, mw.Sources())
		}
	}
}

func TestPassivePacketPathMatchesEnrichedPath(t *testing.T) {
	// The wire-level path (radiation packets -> sensors -> passive
	// table) must observe exactly the same source set as the enriched
	// ingestion path for the same month.
	pop := testPopulation(t, 2000)
	h := New(60, 8)
	start := time.Date(2020, 7, 1, 0, 0, 0, 0, time.UTC)
	enriched := h.IngestMonth("2020-07-enriched", start, pop.HoneyfarmMonth(5, start))

	var queue []pcap.Packet
	pop.HoneyfarmPackets(5, start, h.Sensors(), func(p *pcap.Packet) bool {
		queue = append(queue, *p)
		return true
	})
	if len(queue) == 0 {
		t.Fatal("no honeyfarm packets emitted")
	}
	i := 0
	passive := h.IngestPackets("2020-07-passive", start, func(p *pcap.Packet) bool {
		if i >= len(queue) {
			return false
		}
		*p = queue[i]
		i++
		return true
	})

	if passive.Sources() != enriched.Sources() {
		t.Fatalf("passive sees %d sources, enriched %d", passive.Sources(), enriched.Sources())
	}
	for _, row := range enriched.Table.RowKeys() {
		if !passive.Table.HasRow(row) {
			t.Fatalf("source %s missing from passive table", row)
		}
	}
}

func TestMonthTableTSVRoundTrip(t *testing.T) {
	pop := testPopulation(t, 500)
	h := New(20, 4)
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	mw := h.IngestMonth("2020-05", start, pop.HoneyfarmMonth(3, start))
	var sb strings.Builder
	if err := mw.Table.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := assoc.ReadTSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != mw.Table.NNZ() {
		t.Errorf("TSV round trip lost cells: %d vs %d", back.NNZ(), mw.Table.NNZ())
	}
}
