// Package honeyfarm implements a GreyNoise-style Internet outpost: a set
// of sensor addresses that passively collect packets from scanners and
// actively converse with them to classify behavior, methods, and intent.
// Observations are rolled up into 1-month windows stored as D4M
// associative arrays (rows: source IP; columns: enrichment fields), the
// schema the paper correlates against the telescope's source tables.
//
// Unlike the darkspace telescope, the honeyfarm responds to traffic, so
// its traffic matrix occupies both the external → internal and internal
// → external quadrants (the paper's Figure 1); the roll-up tables here
// summarize both directions of each conversation.
package honeyfarm

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/assoc"
	"repro/internal/ipaddr"
	"repro/internal/pcap"
	"repro/internal/radiation"
	"repro/internal/tripled"
)

// Column names of the monthly tables.
const (
	ColPackets        = "packets"
	ColClassification = "classification"
	ColIntent         = "intent"
	ColFirstSeen      = "first_seen"
	ColLastSeen       = "last_seen"
	ColTags           = "tags"
)

// Honeyfarm is the outpost: sensors plus accumulated monthly windows.
type Honeyfarm struct {
	sensors []ipaddr.Addr
	months  []*MonthWindow
}

// MonthWindow is one month of enriched observations.
type MonthWindow struct {
	Label string    // e.g. "2020-02"
	Start time.Time // first day of the month
	Table *assoc.Assoc
}

// Sources returns the number of unique sources observed in the month
// (Table I's "GreyNoise Sources" column).
func (m *MonthWindow) Sources() int { return m.Table.NRows() }

// New creates a honeyfarm with n sensor addresses drawn deterministically
// from seed, scattered across public space ("hundreds of servers" in the
// paper).
func New(n int, seed int64) *Honeyfarm {
	rng := rand.New(rand.NewSource(seed))
	h := &Honeyfarm{}
	seen := make(map[ipaddr.Addr]bool)
	for len(h.sensors) < n {
		a := ipaddr.Addr(rng.Uint32())
		if ipaddr.IsPrivate(a) || seen[a] || uint32(a)>>29 == 7 || uint32(a)>>24 == 0 {
			continue
		}
		seen[a] = true
		h.sensors = append(h.sensors, a)
	}
	return h
}

// Sensors returns the sensor addresses.
func (h *Honeyfarm) Sensors() []ipaddr.Addr { return h.sensors }

// Months returns the ingested monthly windows in ingestion order.
func (h *Honeyfarm) Months() []*MonthWindow { return h.months }

// Month returns the window with the given label, or nil.
func (h *Honeyfarm) Month(label string) *MonthWindow {
	for _, m := range h.months {
		if m.Label == label {
			return m
		}
	}
	return nil
}

// IngestMonth converts one month of radiation observations into an
// enriched D4M table and appends it. The classification is derived by
// the conversation engine from each source's behavior, not copied from
// generator internals.
func (h *Honeyfarm) IngestMonth(label string, start time.Time, obs []radiation.Observation) *MonthWindow {
	return h.Attach(h.BuildMonth(label, start, obs))
}

// BuildMonth builds one month window without attaching it to the farm.
// It only reads the (immutable) sensor set, so any number of months may
// build concurrently; the study scheduler fans months out across
// workers this way and attaches them in month order afterwards.
func (h *Honeyfarm) BuildMonth(label string, start time.Time, obs []radiation.Observation) *MonthWindow {
	table := assoc.New()
	for _, o := range obs {
		row := o.Src.IP.String()
		profile := Converse(o.Src, h.sensors)
		table.Set(row, ColPackets, assoc.Num(float64(o.Packets)))
		table.Set(row, ColClassification, assoc.Str(profile.Classification))
		table.Set(row, ColIntent, assoc.Str(profile.Intent))
		table.Set(row, ColFirstSeen, assoc.Str(o.FirstSeen.UTC().Format(time.RFC3339)))
		table.Set(row, ColLastSeen, assoc.Str(o.LastSeen.UTC().Format(time.RFC3339)))
		table.Set(row, ColTags, assoc.Str(strings.Join(profile.Tags, ",")))
	}
	return &MonthWindow{Label: label, Start: start, Table: table}
}

// Attach appends a built month window to the farm's ingestion order.
// Not safe for concurrent use; the scheduler serializes attaches.
func (h *Honeyfarm) Attach(mw *MonthWindow) *MonthWindow {
	h.months = append(h.months, mw)
	return mw
}

// PublishBatch is the batch size month tables are published with.
const PublishBatch = 1024

// MonthRowPrefix is the tripled row-key prefix a month table is
// published under — the stand-in for Accumulo's per-month tables in the
// paper's deployment.
func MonthRowPrefix(label string) string { return "hf/" + label + "/" }

// Publish writes the month table to a tripled server under
// MonthRowPrefix, via the client's pipelined batch path.
func (m *MonthWindow) Publish(c tripled.Conn) error {
	return c.PublishAssoc(MonthRowPrefix(m.Label), m.Table, PublishBatch)
}

// FetchMonthTable reads a published month table back from a tripled
// server. The result is row/col/value identical to the table that was
// published.
func FetchMonthTable(c tripled.Conn, label string) (*assoc.Assoc, error) {
	return c.FetchAssoc(MonthRowPrefix(label), 512)
}

// Profile is the enrichment the conversation engine produces for one
// source.
type Profile struct {
	Classification string
	Intent         string // "malicious", "suspicious", or "benign"
	Tags           []string
}

// Converse runs the sensor conversation state machine against a source:
// the sensor replies to the source's probes (SYN -> SYN/ACK -> banner
// exchange) and classifies from what comes back. In this reproduction
// the exchange is simulated from the source's behavioral archetype and
// emission pattern — the same observable surface a real honeyfarm keys
// on — and never inspects the generator's hidden beam parameters.
func Converse(src radiation.Source, sensors []ipaddr.Addr) Profile {
	switch src.Type {
	case radiation.Scanner:
		tags := []string{"mass-scanner", "tcp-syn"}
		intent := "suspicious"
		if src.Persistent {
			// Long-lived, well-behaved scanners complete handshakes and
			// identify themselves; GreyNoise labels these benign.
			tags = append(tags, "identified-crawler")
			intent = "benign"
		}
		return Profile{Classification: "scanner", Intent: intent, Tags: tags}
	case radiation.Worm:
		return Profile{
			Classification: "worm",
			Intent:         "malicious",
			Tags:           []string{"self-propagating", "smb", "sequential-sweep"},
		}
	case radiation.Backscatter:
		// Replies to packets the sensor never sent: spoofed-victim
		// backscatter, no conversation possible.
		return Profile{
			Classification: "backscatter",
			Intent:         "benign",
			Tags:           []string{"spoofed-victim", "syn-ack"},
		}
	case radiation.BotnetKeepalive:
		return Profile{
			Classification: "botnet",
			Intent:         "malicious",
			Tags:           []string{"keep-alive", "low-and-slow", "udp"},
		}
	default:
		return Profile{
			Classification: "misconfiguration",
			Intent:         "benign",
			Tags:           []string{"misdirected", "udp"},
		}
	}
}

// IngestPackets is the passive path: raw packets destined to sensor
// addresses are tallied into a month table without enrichment (packets
// and timestamps only). It lets tests drive the honeyfarm with pcap data
// end to end.
func (h *Honeyfarm) IngestPackets(label string, start time.Time, src func(*pcap.Packet) bool) *MonthWindow {
	sensorSet := make(map[ipaddr.Addr]bool, len(h.sensors))
	for _, s := range h.sensors {
		sensorSet[s] = true
	}
	table := assoc.New()
	var pkt pcap.Packet
	for src(&pkt) {
		if !sensorSet[pkt.Dst] {
			continue
		}
		row := pkt.Src.String()
		table.Accum(row, ColPackets, assoc.Num(1))
		ts := pkt.Time.UTC().Format(time.RFC3339)
		if _, ok := table.Get(row, ColFirstSeen); !ok {
			table.Set(row, ColFirstSeen, assoc.Str(ts))
		}
		table.Set(row, ColLastSeen, assoc.Str(ts))
	}
	mw := &MonthWindow{Label: label, Start: start, Table: table}
	h.months = append(h.months, mw)
	return mw
}

// ClassificationCensus counts sources per classification in a month,
// sorted by descending count — the "analyze and label" summary a
// honeyfarm exposes to analysts.
func (m *MonthWindow) ClassificationCensus() []CensusRow {
	counts := make(map[string]int)
	for _, row := range m.Table.RowKeys() {
		if v, ok := m.Table.Get(row, ColClassification); ok {
			counts[v.Str]++
		}
	}
	out := make([]CensusRow, 0, len(counts))
	for c, n := range counts {
		out = append(out, CensusRow{Classification: c, Sources: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sources != out[j].Sources {
			return out[i].Sources > out[j].Sources
		}
		return out[i].Classification < out[j].Classification
	})
	return out
}

// CensusRow is one line of ClassificationCensus.
type CensusRow struct {
	Classification string
	Sources        int
}

// String renders the census row.
func (c CensusRow) String() string {
	return fmt.Sprintf("%-18s %d", c.Classification, c.Sources)
}
