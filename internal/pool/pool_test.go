package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestEachRunsEveryJobOnce covers the index contract at worker counts
// below, at, and above the job count, including the serial degenerate
// path.
func TestEachRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 17
			var ran [n]int32
			err := Each(context.Background(), workers, n, func(_ context.Context, job int) error {
				atomic.AddInt32(&ran[job], 1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for job, c := range ran {
				if c != 1 {
					t.Errorf("job %d ran %d times", job, c)
				}
			}
		})
	}
}

// TestEachZeroJobs runs no callbacks and returns nil.
func TestEachZeroJobs(t *testing.T) {
	if err := Each(context.Background(), 4, 0, func(context.Context, int) error {
		t.Error("job ran")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestEachFirstErrorWins returns the first failure and stops handing
// out the remaining queue.
func TestEachFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var ran int32
			err := Each(context.Background(), workers, 1000, func(_ context.Context, job int) error {
				atomic.AddInt32(&ran, 1)
				if job == 3 {
					return boom
				}
				return nil
			})
			if !errors.Is(err, boom) {
				t.Fatalf("err = %v, want %v", err, boom)
			}
			if n := atomic.LoadInt32(&ran); n == 1000 {
				t.Errorf("all %d jobs ran despite early failure", n)
			}
		})
	}
}

// TestEachContextCancellation drains without working once the caller's
// context dies and reports the context error.
func TestEachContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := Each(ctx, 2, 1000, func(ctx context.Context, job int) error {
		if atomic.AddInt32(&ran, 1) == 4 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&ran); n == 1000 {
		t.Error("all jobs ran despite cancellation")
	}
}

// TestEachWorkerStateLifecycle proves each goroutine gets exactly one
// state, jobs see their own goroutine's state, and every state is
// closed exactly once — including when jobs fail.
func TestEachWorkerStateLifecycle(t *testing.T) {
	var (
		mu     sync.Mutex
		opened int
		closed int
	)
	type state struct{ jobs int }
	err := EachWorker(context.Background(), 4, 64,
		func() *state {
			mu.Lock()
			opened++
			mu.Unlock()
			return &state{}
		},
		func(s *state) {
			mu.Lock()
			closed++
			mu.Unlock()
		},
		func(_ context.Context, s *state, job int) error {
			s.jobs++ // races iff two goroutines ever share a state
			if job == 50 {
				return errors.New("late failure")
			}
			return nil
		})
	if err == nil {
		t.Fatal("expected the injected failure")
	}
	if opened != closed {
		t.Errorf("opened %d states, closed %d", opened, closed)
	}
	if opened == 0 || opened > 4 {
		t.Errorf("opened %d states, want 1..4", opened)
	}
}

// TestEachIndexAddressedAssembly is the determinism contract the study
// scheduler and report graph rely on: results written to slots by
// index assemble identically at any worker count.
func TestEachIndexAddressedAssembly(t *testing.T) {
	const n = 40
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 3, 8} {
		got := make([]int, n)
		if err := Each(context.Background(), workers, n, func(_ context.Context, job int) error {
			got[job] = job * job
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}
