// Package pool is the one worker pool every study-level fan-out in the
// repository rides: the core study scheduler (honeyfarm months +
// telescope snapshots, PR 4) and the report graph's per-(snapshot,
// band) model fits share this implementation instead of hand-rolling
// goroutine loops.
//
// The pool's contract is built for deterministic assembly: jobs are
// identified by index, handed to workers in index order through one
// buffered channel, and the caller writes each job's result into an
// index-addressed slot — so the assembled output is independent of
// which worker ran which job, and byte-identical to a serial loop over
// the same indices. Error handling is first-error-wins: the first
// failure cancels the pool's context and the remaining queue is
// drained without working, mirroring the original core scheduler
// semantics.
package pool

import (
	"context"
	"sync"
)

// Each runs jobs 0..n-1 across up to workers goroutines (capped at n)
// and blocks until all of them finish or the first error cancels the
// rest. do must be safe for concurrent invocation on distinct jobs;
// results should land in index-addressed slots owned by the caller.
// Each returns the first job error, or ctx's error when the caller's
// context ends the run.
func Each(ctx context.Context, workers, n int, do func(ctx context.Context, job int) error) error {
	return EachWorker(ctx, workers, n,
		func() struct{} { return struct{}{} },
		func(struct{}) {},
		func(ctx context.Context, _ struct{}, job int) error { return do(ctx, job) })
}

// EachWorker is Each with per-goroutine private state: every pool
// goroutine calls newState once before its first job and closeState
// once after its last, so workers can own non-concurrency-safe
// resources (a private telescope, a single-connection store client, a
// fit scratch buffer) across the jobs they happen to run. newState and
// closeState run on the worker goroutine; closeState always runs,
// including on error or cancellation.
func EachWorker[S any](ctx context.Context, workers, n int, newState func() S, closeState func(S), do func(ctx context.Context, state S, job int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Degenerate serial pool: same contract, caller's goroutine.
		state := newState()
		defer closeState(state)
		for job := 0; job < n; job++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := do(ctx, state, job); err != nil {
				return err
			}
		}
		return ctx.Err()
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int, n)
	for job := 0; job < n; job++ {
		jobs <- job
	}
	close(jobs)

	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			state := newState()
			defer closeState(state)
			for job := range jobs {
				if ctx.Err() != nil {
					continue // abandoned: drain the queue without working
				}
				if err := do(ctx, state, job); err != nil {
					fail(err)
				}
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
