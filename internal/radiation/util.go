package radiation

import "math"

func log2(x float64) float64 { return math.Log2(x) }

// gauss is the unnormalized Gaussian kernel exp(-x²/2).
func gauss(x float64) float64 { return math.Exp(-x * x / 2) }

// sm64 is a splitmix64 PRNG: 8 bytes of state, good enough statistical
// quality for packet jitter, and small enough to embed one per active
// source in the emission heap (a math/rand.Rand would cost ~5 KB each).
type sm64 struct{ state uint64 }

func newSM64(seed uint64) sm64 { return sm64{state: seed} }

func (r *sm64) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *sm64) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// intn returns a uniform value in [0, n).
func (r *sm64) intn(n int) int {
	return int(r.next() % uint64(n))
}

// exp returns an exponential variate with the given mean.
func (r *sm64) exp(mean float64) float64 {
	u := r.float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}
