package radiation

import (
	"math"
	"time"

	"repro/internal/ipaddr"
	"repro/internal/pcap"
)

// emit.go turns the population into packet streams. A telescope window
// is the time-ordered interleaving of per-source packet trains; the
// stream is generated lazily through a k-way merge so a multi-million
// packet window never materializes in memory.

// commonScanPorts are the services Internet-wide scanners probe most,
// with rough popularity weights.
var commonScanPorts = []struct {
	port   uint16
	weight int
}{
	{23, 20}, {2323, 8}, {445, 14}, {80, 12}, {8080, 6}, {443, 8},
	{22, 8}, {3389, 7}, {5555, 4}, {1433, 3}, {3306, 3}, {25, 2},
	{21, 2}, {5900, 2}, {123, 1},
}

var scanPortTotal = func() int {
	t := 0
	for _, p := range commonScanPorts {
		t += p.weight
	}
	return t
}()

func pickScanPort(r *sm64) uint16 {
	n := r.intn(scanPortTotal)
	for _, p := range commonScanPorts {
		n -= p.weight
		if n < 0 {
			return p.port
		}
	}
	return 23
}

// sourceTrain is one active source's position in the emission merge.
type sourceTrain struct {
	srcIdx    int
	remaining int
	nextTime  float64 // seconds from window start
	gapMean   float64
	seq       int
	rng       sm64
}

// trainKey is one heap entry: the train's next emission time plus the
// index of its (fat) sourceTrain in the side array. The heap sifts
// 16-byte keys, not 48-byte trains, and one sift runs per emitted
// packet; the sift is hand-rolled rather than container/heap so the
// comparisons inline instead of dispatching through an interface.
type trainKey struct {
	nextTime float64
	idx      int32
}

type trainHeap []trainKey

// siftDown restores the heap property from index i downward.
func (h trainHeap) siftDown(i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h[r].nextTime < h[l].nextTime {
			m = r
		}
		if h[i].nextTime <= h[m].nextTime {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// init heapifies in O(n).
func (h trainHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// Stream lazily produces the packets of one telescope window in time
// order. Create with TelescopeStream; drain with Next.
type Stream struct {
	pop       *Population
	start     time.Time
	trains    []sourceTrain
	heap      trainHeap
	active    int
	total     int
	windowSec float64
	emitted   int
	bogonRng  sm64
}

// aggregate packet rate of the synthetic telescope, packets/second; sets
// window durations to Table I-like values (a 2^20-packet window lasts
// ~1000 s, as the paper's 2^30 windows last ~1000 s at real rates).
const packetsPerSecond = 1000.0

// TelescopeStream assembles the window anchored at the given fractional
// month. Every telescope-active source contributes a Poisson-like train
// whose expected length is its (jittered) brightness. The stream ends
// when every train is exhausted; callers wanting a constant-packet
// window stop early at NV valid packets, exactly as the paper's
// samplers do.
func (p *Population) TelescopeStream(month float64, start time.Time) *Stream {
	st := &Stream{
		pop:      p,
		start:    start,
		bogonRng: newSM64(uint64(p.cfg.Seed) ^ monthKey(month)*0xA24BAED4963EE407),
	}
	for i := range p.sources {
		if !p.TelescopeActive(i, month) {
			continue
		}
		s := &p.sources[i]
		rng := newSM64(uint64(p.cfg.Seed)*0x9E6C63D0876A9A75 ^ uint64(i)<<20 ^ monthKey(month))
		// Log-normal-ish brightness jitter keeps per-window counts near
		// the persistent brightness without freezing them exactly.
		jitter := math.Exp(0.25 * (rng.float64() + rng.float64() - 1))
		count := int(math.Round(s.Brightness * jitter))
		if count < 1 {
			count = 1
		}
		st.active++
		st.total += count
		st.trains = append(st.trains, sourceTrain{
			srcIdx:    i,
			remaining: count,
			rng:       rng,
		})
	}
	st.windowSec = float64(st.total) / packetsPerSecond
	st.heap = make(trainHeap, len(st.trains))
	for k := range st.trains {
		tr := &st.trains[k]
		tr.gapMean = st.windowSec / float64(tr.remaining+1)
		tr.nextTime = tr.rng.exp(tr.gapMean)
		st.heap[k] = trainKey{nextTime: tr.nextTime, idx: int32(k)}
	}
	st.heap.init()
	return st
}

// ActiveSources reports how many sources contribute to the window.
func (st *Stream) ActiveSources() int { return st.active }

// ExpectedPackets reports the total packets the stream will emit.
func (st *Stream) ExpectedPackets() int { return st.total }

// Emitted reports packets produced so far.
func (st *Stream) Emitted() int { return st.emitted }

// Next fills pkt with the next packet in time order; it returns false
// when the window is exhausted.
func (st *Stream) Next(pkt *pcap.Packet) bool {
	if len(st.heap) == 0 {
		return false
	}
	st.emit(pkt)
	return true
}

// NextBatch fills dst with the next len(dst) packets in time order and
// returns how many were produced (fewer only when the window is
// exhausted). One NextBatch(dst[:n]) call emits exactly the packets n
// Next calls would — same order, same content, same stream position —
// while amortizing the per-packet call overhead the engine's reader
// otherwise pays; the engine uses it through its BatchSource fast path.
func (st *Stream) NextBatch(dst []pcap.Packet) int {
	n := 0
	for n < len(dst) && len(st.heap) > 0 {
		st.emit(&dst[n])
		n++
	}
	return n
}

// emit pops the earliest train, synthesizes its packet, and re-sifts the
// heap. The heap must be non-empty.
func (st *Stream) emit(pkt *pcap.Packet) {
	k := &st.heap[0]
	tr := &st.trains[k.idx]
	src := &st.pop.sources[tr.srcIdx]
	st.fill(pkt, src, tr)
	tr.remaining--
	tr.seq++
	if tr.remaining <= 0 {
		n := len(st.heap) - 1
		st.heap[0] = st.heap[n]
		st.heap = st.heap[:n]
	} else {
		tr.nextTime += tr.rng.exp(tr.gapMean)
		k.nextTime = tr.nextTime
	}
	st.heap.siftDown(0)
	st.emitted++
}

// fill synthesizes the packet content for one emission of src.
func (st *Stream) fill(pkt *pcap.Packet, src *Source, tr *sourceTrain) {
	r := &tr.rng
	dark := st.pop.cfg.Darkspace
	*pkt = pcap.Packet{
		Time: st.start.Add(time.Duration(tr.nextTime * float64(time.Second))),
		Src:  src.IP,
		TTL:  uint8(30 + r.intn(210)),
	}
	switch src.Type {
	case Scanner:
		pkt.Proto = pcap.ProtoTCP
		pkt.Flags = pcap.FlagSYN
		if src.Vertical {
			// Vertical campaign: one darkspace host, sequential walk of
			// its port space from a per-source starting offset.
			base := uint64(src.IP) * 0x9E3779B97F4A7C15
			pkt.Dst = dark.Nth(base % dark.Size())
			pkt.SrcPort = uint16(1024 + r.intn(64000))
			pkt.DstPort = uint16(1 + (uint32(base>>40)+uint32(tr.seq))%65535)
		} else {
			// Draw order matters: the horizontal path must consume the
			// rng exactly as the original census generator did, so
			// zero-knob configs emit byte-identical streams.
			pkt.Dst = dark.Nth(uint64(r.intn(int(dark.Size()))))
			pkt.SrcPort = uint16(1024 + r.intn(64000))
			pkt.DstPort = pickScanPort(r)
		}
		pkt.Length = 60
	case Worm:
		pkt.Proto = pcap.ProtoTCP
		pkt.Flags = pcap.FlagSYN
		// Sequential sweep from a per-source starting offset.
		base := uint64(src.IP) * 2654435761
		pkt.Dst = dark.Nth((base + uint64(tr.seq)) % dark.Size())
		pkt.SrcPort = uint16(1024 + r.intn(64000))
		pkt.DstPort = 445
		pkt.Length = 62
	case Backscatter:
		pkt.Proto = pcap.ProtoTCP
		if r.intn(2) == 0 {
			pkt.Flags = pcap.FlagSYN | pcap.FlagACK
		} else {
			pkt.Flags = pcap.FlagRST
		}
		pkt.Dst = dark.Nth(uint64(r.intn(int(dark.Size()))))
		pkt.SrcPort = []uint16{80, 443, 53, 22}[r.intn(4)]
		pkt.DstPort = uint16(1024 + r.intn(64000))
		pkt.Length = 54
	case BotnetKeepalive:
		pkt.Proto = pcap.ProtoUDP
		// A small stable set of rendezvous destinations per source.
		k := uint64(src.IP)*0x9E3779B97F4A7C15 + uint64(r.intn(4))
		pkt.Dst = dark.Nth(k % dark.Size())
		pkt.SrcPort = uint16(1024 + r.intn(64000))
		pkt.DstPort = 53413
		pkt.Length = 40 + r.intn(60)
	default: // Misconfiguration: one fixed wrong destination
		pkt.Proto = pcap.ProtoUDP
		pkt.Dst = dark.Nth(uint64(src.IP) % dark.Size())
		pkt.SrcPort = uint16(1024 + r.intn(64000))
		pkt.DstPort = []uint16{53, 123, 161}[r.intn(3)]
		pkt.Length = 76
	}
	// Bogon pollution the telescope's validity filter must discard.
	if st.bogonRng.float64() < st.pop.cfg.BogonRate {
		pkt.Src = ipaddr.Addr(0x0A000000 | uint32(st.bogonRng.intn(1<<24))) // 10/8
	}
}

// Observation is one honeyfarm sighting of a source during a month.
type Observation struct {
	Src       Source
	Packets   int
	FirstSeen time.Time
	LastSeen  time.Time
}

// HoneyfarmPackets generates the raw packets honeyfarm sensors receive
// during the given month: every honeyfarm-visible source probes a few
// sensor addresses. This is the wire-level counterpart of HoneyfarmMonth
// for driving the passive ingestion path; the set of source addresses
// emitted equals the set HoneyfarmMonth reports.
func (p *Population) HoneyfarmPackets(month int, monthStart time.Time, sensors []ipaddr.Addr, emit func(*pcap.Packet) bool) {
	if len(sensors) == 0 {
		return
	}
	var pkt pcap.Packet
	for i := range p.sources {
		if !p.HoneyfarmVisible(i, month) {
			continue
		}
		s := &p.sources[i]
		r := newSM64(uint64(p.cfg.Seed)*0xD1B54A32D192ED03 ^ uint64(i)<<16 ^ uint64(month))
		first := monthStart.Add(time.Duration(r.float64() * 20 * 24 * float64(time.Hour)))
		probes := 1 + r.intn(4)
		for k := 0; k < probes; k++ {
			pkt = pcap.Packet{
				Time:    first.Add(time.Duration(k) * time.Hour),
				Src:     s.IP,
				Dst:     sensors[r.intn(len(sensors))],
				Proto:   pcap.ProtoTCP,
				Flags:   pcap.FlagSYN,
				SrcPort: uint16(1024 + r.intn(64000)),
				DstPort: pickScanPort(&r),
				TTL:     uint8(30 + r.intn(210)),
				Length:  60,
			}
			if !emit(&pkt) {
				return
			}
		}
	}
}

// HoneyfarmMonth returns the sources that touch the honeyfarm during the
// given integer month, with synthetic conversation metadata. monthStart
// anchors the timestamps.
func (p *Population) HoneyfarmMonth(month int, monthStart time.Time) []Observation {
	var out []Observation
	for i := range p.sources {
		if !p.HoneyfarmVisible(i, month) {
			continue
		}
		s := p.sources[i]
		r := newSM64(uint64(p.cfg.Seed)*0xD1B54A32D192ED03 ^ uint64(i)<<16 ^ uint64(month))
		first := monthStart.Add(time.Duration(r.float64() * 20 * 24 * float64(time.Hour)))
		span := time.Duration(r.float64() * 9 * 24 * float64(time.Hour))
		out = append(out, Observation{
			Src:       s,
			Packets:   1 + r.intn(40),
			FirstSeen: first,
			LastSeen:  first.Add(span),
		})
	}
	return out
}
