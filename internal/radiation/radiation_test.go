package radiation

import (
	"math"
	"testing"
	"time"

	"repro/internal/ipaddr"
	"repro/internal/pcap"
	"repro/internal/stats"
)

func smallConfig() Config {
	c := DefaultConfig()
	c.NumSources = 3000
	c.ZM = stats.PaperZM(1 << 12)
	c.Months = 15
	return c
}

// TestConfigValidate moved to validate_test.go: a named negative-path
// sweep over every field, including the workload-zoo knobs.

func TestBetaStarDip(t *testing.T) {
	c := DefaultConfig()
	atDip := c.BetaStar(math.Pow(2, c.DipLog2))
	if math.Abs(atDip-c.BetaDip) > 1e-9 {
		t.Errorf("beta at dip = %g, want %g", atDip, c.BetaDip)
	}
	far := c.BetaStar(1)
	if far < 0.9*c.BetaBase {
		t.Errorf("beta far from dip = %g, want near %g", far, c.BetaBase)
	}
	if c.BetaStar(1<<20) < c.BetaStar(1<<10) {
		t.Error("beta should recover above the dip")
	}
}

func TestPeakVisibilityLaw(t *testing.T) {
	c := DefaultConfig() // BrightLog2 = 10
	if v := c.PeakVisibility(1 << 10); v != 1 {
		t.Errorf("bright source visibility = %g, want 1", v)
	}
	if v := c.PeakVisibility(1 << 20); v != 1 {
		t.Errorf("very bright source visibility = %g, want 1 (clamped)", v)
	}
	if v := c.PeakVisibility(32); math.Abs(v-0.5) > 1e-9 {
		t.Errorf("d=2^5 visibility = %g, want 0.5", v)
	}
	if v := c.PeakVisibility(1); v <= 0 {
		t.Errorf("d=1 visibility = %g, want > 0", v)
	}
}

func TestPopulationDeterministic(t *testing.T) {
	p1, err := NewPopulation(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := NewPopulation(smallConfig())
	for i := 0; i < p1.Len(); i++ {
		if p1.Source(i) != p2.Source(i) {
			t.Fatalf("source %d differs between identically-seeded populations", i)
		}
	}
	c3 := smallConfig()
	c3.Seed = 99
	p3, _ := NewPopulation(c3)
	diff := 0
	for i := 0; i < p1.Len(); i++ {
		if p1.Source(i).IP != p3.Source(i).IP {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical populations")
	}
}

func TestPopulationAddressHygiene(t *testing.T) {
	p, err := NewPopulation(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[ipaddr.Addr]bool)
	dark := p.Config().Darkspace
	for i := 0; i < p.Len(); i++ {
		ip := p.Source(i).IP
		if dark.Contains(ip) {
			t.Fatalf("source %d inside darkspace", i)
		}
		if ipaddr.IsPrivate(ip) {
			t.Fatalf("source %d has private address %v", i, ip)
		}
		if seen[ip] {
			t.Fatalf("duplicate source address %v", ip)
		}
		seen[ip] = true
	}
}

func TestBrightnessFollowsZM(t *testing.T) {
	c := smallConfig()
	c.NumSources = 50000
	p, _ := NewPopulation(c)
	vals := make([]float64, p.Len())
	for i := range vals {
		vals[i] = p.Source(i).Brightness
	}
	alpha, _, _ := stats.FitZipfMandelbrot(stats.LogBin(vals), c.ZM.DMax)
	if math.Abs(alpha-c.ZM.Alpha) > 0.35 {
		t.Errorf("population brightness fit alpha = %g, want ~%g", alpha, c.ZM.Alpha)
	}
}

func TestVisibilityDrawsMatchGroundTruth(t *testing.T) {
	// Monte Carlo over sources within a band: empirical honeyfarm
	// visibility rate must track GroundTruthVisibility.
	c := smallConfig()
	c.NumSources = 20000
	p, _ := NewPopulation(c)
	month := 7
	var want, got float64
	n := 0
	for i := 0; i < p.Len(); i++ {
		want += p.GroundTruthVisibility(i, month)
		if p.HoneyfarmVisible(i, month) {
			got++
		}
		n++
	}
	want /= float64(n)
	got /= float64(n)
	if math.Abs(want-got) > 0.02 {
		t.Errorf("empirical visibility %g vs expected %g", got, want)
	}
}

func TestTelescopeHoneyfarmDrawsIndependent(t *testing.T) {
	// The same (source, month) must use different randomness for the two
	// channels: correlation of the indicators should be near the product
	// of the rates, not equal to the smaller rate.
	c := smallConfig()
	c.NumSources = 20000
	c.Persistent = 0
	p, _ := NewPopulation(c)
	month := 5
	var tele, honey, both, n float64
	for i := 0; i < p.Len(); i++ {
		tv := p.TelescopeActive(i, float64(month))
		hv := p.HoneyfarmVisible(i, month)
		if tv {
			tele++
		}
		if hv {
			honey++
		}
		if tv && hv {
			both++
		}
		n++
	}
	// Conditional dependence through the shared beam is expected; exact
	// reuse of the same random draw would force both == min(tele, honey)
	// among beam-active sources. Check we are far from that degenerate case.
	if both > 0.95*math.Min(tele, honey) {
		t.Errorf("draws appear perfectly coupled: tele=%g honey=%g both=%g", tele, honey, both)
	}
	if n == 0 || tele == 0 || honey == 0 {
		t.Fatal("degenerate visibility rates")
	}
}

func TestTelescopeStreamTimeOrderedAndComplete(t *testing.T) {
	c := smallConfig()
	c.NumSources = 2000
	p, _ := NewPopulation(c)
	start := time.Date(2020, 6, 17, 12, 0, 0, 0, time.UTC)
	st := p.TelescopeStream(4, start)
	if st.ActiveSources() == 0 {
		t.Fatal("no active sources in window")
	}
	var pkt pcap.Packet
	last := time.Time{}
	n := 0
	perSource := make(map[ipaddr.Addr]int)
	for st.Next(&pkt) {
		if pkt.Time.Before(last) {
			t.Fatalf("packet %d out of order: %v < %v", n, pkt.Time, last)
		}
		last = pkt.Time
		perSource[pkt.Src]++
		n++
	}
	if n != st.ExpectedPackets() || n != st.Emitted() {
		t.Fatalf("emitted %d packets, expected %d", n, st.ExpectedPackets())
	}
	if len(perSource) == 0 {
		t.Fatal("no sources emitted")
	}
}

func TestTelescopeStreamDestinationsInDarkspace(t *testing.T) {
	c := smallConfig()
	c.NumSources = 1000
	p, _ := NewPopulation(c)
	st := p.TelescopeStream(2, time.Unix(0, 0))
	var pkt pcap.Packet
	for st.Next(&pkt) {
		if !c.Darkspace.Contains(pkt.Dst) {
			t.Fatalf("destination %v outside darkspace", pkt.Dst)
		}
		if pkt.Length <= 0 || pkt.Length > 65535 {
			t.Fatalf("bad packet length %d", pkt.Length)
		}
	}
}

func TestTelescopeStreamContainsBogons(t *testing.T) {
	c := smallConfig()
	c.NumSources = 2000
	c.BogonRate = 0.05
	p, _ := NewPopulation(c)
	st := p.TelescopeStream(3, time.Unix(0, 0))
	var pkt pcap.Packet
	bogons, n := 0, 0
	for st.Next(&pkt) {
		if ipaddr.IsPrivate(pkt.Src) {
			bogons++
		}
		n++
	}
	rate := float64(bogons) / float64(n)
	if rate < 0.02 || rate > 0.10 {
		t.Errorf("bogon rate = %g, want near 0.05", rate)
	}
}

func TestStreamDeterministic(t *testing.T) {
	c := smallConfig()
	c.NumSources = 500
	p, _ := NewPopulation(c)
	drain := func() []pcap.Packet {
		st := p.TelescopeStream(1, time.Unix(0, 0))
		var out []pcap.Packet
		var pkt pcap.Packet
		for st.Next(&pkt) {
			out = append(out, pkt)
		}
		return out
	}
	a, b := drain(), drain()
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs between identical streams", i)
		}
	}
}

func TestWormSweepsSequentially(t *testing.T) {
	c := smallConfig()
	c.NumSources = 3000
	p, _ := NewPopulation(c)
	// find a worm source with decent brightness
	var worm *Source
	for i := 0; i < p.Len(); i++ {
		s := p.Source(i)
		if s.Type == Worm && s.Brightness >= 16 {
			worm = &s
			break
		}
	}
	if worm == nil {
		t.Skip("no bright worm in small population")
	}
	st := p.TelescopeStream(worm.Anchor, time.Unix(0, 0))
	var pkt pcap.Packet
	var dsts []ipaddr.Addr
	for st.Next(&pkt) {
		if pkt.Src == worm.IP {
			dsts = append(dsts, pkt.Dst)
		}
	}
	if len(dsts) < 2 {
		t.Skip("worm inactive in its own anchor window (possible for faint beams)")
	}
	for i := 1; i < len(dsts); i++ {
		if uint32(dsts[i]) != uint32(dsts[i-1])+1 {
			t.Fatalf("worm sweep not sequential at %d: %v -> %v", i, dsts[i-1], dsts[i])
		}
	}
}

func TestHoneyfarmMonthMetadata(t *testing.T) {
	c := smallConfig()
	p, _ := NewPopulation(c)
	start := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)
	obs := p.HoneyfarmMonth(0, start)
	if len(obs) == 0 {
		t.Fatal("honeyfarm saw nothing")
	}
	end := start.AddDate(0, 1, 0)
	for _, o := range obs {
		if o.Packets < 1 {
			t.Fatalf("observation with %d packets", o.Packets)
		}
		if o.FirstSeen.Before(start) || o.FirstSeen.After(end) {
			t.Fatalf("FirstSeen %v outside month", o.FirstSeen)
		}
		if o.LastSeen.Before(o.FirstSeen) {
			t.Fatal("LastSeen before FirstSeen")
		}
	}
}

func TestHoneyfarmBrightSourcesAlmostAlwaysVisible(t *testing.T) {
	// Figure 4 ground truth: sources with d > 2^BrightLog2 visible in
	// their anchor month with probability near 1 (beam at peak).
	c := smallConfig()
	c.NumSources = 30000
	c.ZM = stats.PaperZM(1 << 14)
	p, _ := NewPopulation(c)
	var bright, visible int
	for i := 0; i < p.Len(); i++ {
		s := p.Source(i)
		if s.Brightness < math.Pow(2, c.BrightLog2) {
			continue
		}
		m := int(math.Round(s.Anchor))
		if m < 0 || m >= c.Months {
			continue
		}
		bright++
		if p.HoneyfarmVisible(i, m) {
			visible++
		}
	}
	if bright < 20 {
		t.Skip("too few bright sources at this scale")
	}
	frac := float64(visible) / float64(bright)
	if frac < 0.7 {
		t.Errorf("bright anchor-month visibility = %g, want > 0.7 (paper: ~consistently detected)", frac)
	}
}

func TestArchetypeStrings(t *testing.T) {
	want := map[Archetype]string{
		Scanner: "scanner", Worm: "worm", Backscatter: "backscatter",
		BotnetKeepalive: "botnet", Misconfiguration: "misconfiguration",
		Archetype(99): "unknown",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), s)
		}
	}
}

func TestBandSources(t *testing.T) {
	p, _ := NewPopulation(smallConfig())
	ids := p.BandSources(3) // brightness in [8, 16)
	for _, i := range ids {
		d := p.Source(i).Brightness
		if d < 8 || d >= 16 {
			t.Fatalf("band 3 contains brightness %g", d)
		}
	}
}

func BenchmarkTelescopeStream(b *testing.B) {
	c := smallConfig()
	c.NumSources = 20000
	p, _ := NewPopulation(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := p.TelescopeStream(4, time.Unix(0, 0))
		var pkt pcap.Packet
		for st.Next(&pkt) {
		}
	}
}

// TestNextBatchMatchesNext proves the slab emission API is
// byte-identical to per-packet emission: two streams from the same
// seed, one drained by Next and one by mixed-size NextBatch calls,
// produce the same packet sequence and the same stream accounting.
func TestNextBatchMatchesNext(t *testing.T) {
	pop, err := NewPopulation(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2020, 6, 17, 12, 0, 0, 0, time.UTC)
	one := pop.TelescopeStream(4.5, start)
	batched := pop.TelescopeStream(4.5, start)

	sizes := []int{1, 7, 64, 3, 512, 1}
	slab := make([]pcap.Packet, 512)
	var single pcap.Packet
	total, si := 0, 0
	for {
		n := batched.NextBatch(slab[:sizes[si%len(sizes)]])
		si++
		for i := 0; i < n; i++ {
			if !one.Next(&single) {
				t.Fatalf("per-packet stream exhausted at %d, batch stream still emitting", total)
			}
			if single != slab[i] {
				t.Fatalf("packet %d differs:\nnext  %+v\nbatch %+v", total, single, slab[i])
			}
			total++
		}
		if n == 0 {
			break
		}
	}
	if one.Next(&single) {
		t.Fatal("batch stream exhausted early")
	}
	if total != one.ExpectedPackets() || batched.Emitted() != one.Emitted() {
		t.Fatalf("emitted %d (batch) vs %d (next), expected %d", batched.Emitted(), one.Emitted(), total)
	}
	if total == 0 {
		t.Fatal("stream produced no packets")
	}
}

// TestNextBatchZeroLength asserts an empty slab is a no-op.
func TestNextBatchZeroLength(t *testing.T) {
	pop, err := NewPopulation(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := pop.TelescopeStream(4.5, time.Unix(0, 0))
	if n := st.NextBatch(nil); n != 0 {
		t.Fatalf("NextBatch(nil) = %d", n)
	}
	if st.Emitted() != 0 {
		t.Fatal("empty batch advanced the stream")
	}
}

// BenchmarkStreamNext measures per-packet emission.
func BenchmarkStreamNext(b *testing.B) {
	pop, err := NewPopulation(smallConfig())
	if err != nil {
		b.Fatal(err)
	}
	st := pop.TelescopeStream(4.5, time.Unix(0, 0))
	var pkt pcap.Packet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !st.Next(&pkt) {
			b.StopTimer()
			st = pop.TelescopeStream(4.5, time.Unix(0, 0))
			b.StartTimer()
		}
	}
}

// BenchmarkStreamNextBatch measures slab emission at the engine's
// default slab size.
func BenchmarkStreamNextBatch(b *testing.B) {
	pop, err := NewPopulation(smallConfig())
	if err != nil {
		b.Fatal(err)
	}
	st := pop.TelescopeStream(4.5, time.Unix(0, 0))
	slab := make([]pcap.Packet, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for n < b.N {
		got := st.NextBatch(slab)
		if got == 0 {
			b.StopTimer()
			st = pop.TelescopeStream(4.5, time.Unix(0, 0))
			b.StartTimer()
			continue
		}
		n += got
	}
}
