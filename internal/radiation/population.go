package radiation

import (
	"math"
	"math/rand"

	"repro/internal/ipaddr"
	"repro/internal/stats"
)

// Archetype classifies a radiation source by the mechanism generating its
// packets, following the paper's taxonomy of darkspace traffic
// ("backscatter from randomly spoofed sources used in denial-of-service
// attacks, the automated spread of Internet worms and viruses, scanning
// of address space ..., various misconfigurations ... longer-duration,
// low-intensity events intended to establish and maintain botnets").
type Archetype int

// Archetypes, in decreasing order of typical population share.
const (
	Scanner Archetype = iota
	Worm
	Backscatter
	BotnetKeepalive
	Misconfiguration
	numArchetypes
)

// String returns the archetype name as the honeyfarm classifies it.
func (a Archetype) String() string {
	switch a {
	case Scanner:
		return "scanner"
	case Worm:
		return "worm"
	case Backscatter:
		return "backscatter"
	case BotnetKeepalive:
		return "botnet"
	case Misconfiguration:
		return "misconfiguration"
	default:
		return "unknown"
	}
}

// archetypeWeights is the population mix; scanning dominates darkspace
// traffic in recent telescope studies.
var archetypeWeights = [numArchetypes]float64{0.55, 0.12, 0.15, 0.12, 0.06}

// Source is one member of the radiation population.
type Source struct {
	ID         int
	IP         ipaddr.Addr
	Brightness float64 // expected packets per telescope window
	Anchor     float64 // beam anchor month (fractional)
	Type       Archetype
	Persistent bool // always-on background source
	Vertical   bool // Scanner only: one darkspace host, sequential port sweep
	V6         bool // IPv6 origin; IP is the class E embedding of IP6
	IP6        ipaddr.Addr6
}

// Population is an immutable set of radiation sources plus the beam
// model. Construction is deterministic in Config.Seed.
type Population struct {
	cfg     Config
	sources []Source
}

// NewPopulation builds the population. It returns an error if the config
// is invalid.
func NewPopulation(cfg Config) (*Population, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	weights := cfg.mixWeights()
	p := &Population{cfg: cfg, sources: make([]Source, cfg.NumSources)}
	seen := make(map[ipaddr.Addr]bool, cfg.NumSources)
	for i := range p.sources {
		s := &p.sources[i]
		s.ID = i
		s.IP = randomPublicAddr(rng, cfg.Darkspace, seen)
		s.Brightness = cfg.ZM.Sample(rng)
		// Anchors extend past both ends of the study so edge months see
		// both arriving and departing beams.
		s.Anchor = -6 + rng.Float64()*(float64(cfg.Months)+12)
		s.Type = sampleArchetype(rng, weights)
		s.Persistent = rng.Float64() < cfg.Persistent
		// The workload-zoo draws ride hashUnit channels so a zero knob
		// leaves the rng stream — and thus the whole population —
		// byte-identical to the census configuration.
		if cfg.V6Sources > 0 && hashUnit(cfg.Seed, uint64(i), 0, chanV6) < cfg.V6Sources {
			s.V6 = true
			for salt := uint64(0); ; salt++ {
				s.IP6 = synthV6(uint64(cfg.Seed), uint64(i), salt)
				a := ipaddr.EmbedV6(s.IP6)
				if !seen[a] {
					seen[a] = true
					s.IP = a
					break
				}
			}
		}
		if s.Type == Scanner && cfg.VerticalScan > 0 {
			s.Vertical = hashUnit(cfg.Seed, uint64(i), 0, chanVertical) < cfg.VerticalScan
		}
	}
	return p, nil
}

// synthV6 derives a deterministic synthetic IPv6 origin in the
// documentation prefix 2001:db8::/32; salt breaks the rare embedding
// collision without disturbing other sources.
func synthV6(seed, id, salt uint64) ipaddr.Addr6 {
	x := seed ^ id*0x9E3779B97F4A7C15 ^ (salt+1)*0xD1B54A32D192ED03
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	y := x * 0x94D049BB133111EB
	y ^= y >> 31
	var a ipaddr.Addr6
	a[0], a[1], a[2], a[3] = 0x20, 0x01, 0x0d, 0xb8
	for k := 0; k < 4; k++ {
		a[4+k] = byte(x >> (8 * k))
		a[8+k] = byte(y >> (8 * k))
		a[12+k] = byte((x ^ y) >> (8 * (k + 4)))
	}
	return a
}

// Len returns the population size.
func (p *Population) Len() int { return len(p.sources) }

// Source returns the i-th source.
func (p *Population) Source(i int) Source { return p.sources[i] }

// Config returns the generating configuration (ground truth for
// validation).
func (p *Population) Config() Config { return p.cfg }

// beam returns the ground-truth activity probability of source s in
// month m: a modified Cauchy around the source's anchor.
func (p *Population) beam(s *Source, month float64) float64 {
	beta := p.cfg.BetaStar(s.Brightness)
	dt := math.Abs(month - s.Anchor)
	return beta / (beta + math.Pow(dt, p.cfg.AlphaStar))
}

// telescopeEpisode is the sharp kernel governing when a source's scan
// episode sweeps the darkspace: much narrower than the honeyfarm beam so
// a telescope snapshot localizes the beam anchor in time.
func (p *Population) telescopeEpisode(s *Source, month float64) float64 {
	dt := math.Abs(month - s.Anchor)
	return p.cfg.TelescopeBeta / (p.cfg.TelescopeBeta + math.Pow(dt, p.cfg.TelescopeAlpha))
}

// TelescopeActive reports whether source s beams into the telescope's
// darkspace during the window anchored at the given (fractional) month.
// Persistent sources are always active; others draw a Bernoulli from the
// sharp episode kernel. The draw is deterministic per (seed, source,
// month, channel) so telescope and honeyfarm visibility are independent
// but reproducible.
func (p *Population) TelescopeActive(i int, month float64) bool {
	s := &p.sources[i]
	if s.Persistent {
		return true
	}
	u := hashUnit(p.cfg.Seed, uint64(i), monthKey(month), chanTelescope)
	return u < p.telescopeEpisode(s, month)
}

// HoneyfarmVisible reports whether source s touches the honeyfarm during
// integer month m. The probability is the beam profile scaled by the
// log-brightness aperture, plus the beam-independent background floor.
// A month window collects for its whole span, so the beam is evaluated
// at the month midpoint m + 0.5 (anchoring at the month start would put
// every mid-month beam half a month away from its own collection
// window and artificially depress same-month correlation peaks).
func (p *Population) HoneyfarmVisible(i int, month int) bool {
	s := &p.sources[i]
	peak := p.cfg.PeakVisibility(s.Brightness)
	if s.Persistent {
		return hashUnit(p.cfg.Seed, uint64(i), uint64(month), chanHoneyfarm) < peak
	}
	prob := peak * (p.cfg.Background + (1-p.cfg.Background)*p.beam(s, float64(month)+0.5))
	return hashUnit(p.cfg.Seed, uint64(i), uint64(month), chanHoneyfarm) < prob
}

// GroundTruthVisibility returns the exact honeyfarm visibility
// probability for source i in month m, for validation tests.
func (p *Population) GroundTruthVisibility(i int, month int) float64 {
	s := &p.sources[i]
	peak := p.cfg.PeakVisibility(s.Brightness)
	if s.Persistent {
		return peak
	}
	return peak * (p.cfg.Background + (1-p.cfg.Background)*p.beam(s, float64(month)+0.5))
}

// channel salts separating the independent per-source Bernoulli draws
const (
	chanTelescope = 0x7e1e5c09e
	chanHoneyfarm = 0x40e79fa2
	chanV6        = 0x6b8f0aa17
	chanVertical  = 0x51c64e6d3
)

func sampleArchetype(rng *rand.Rand, weights [numArchetypes]float64) Archetype {
	u := rng.Float64()
	acc := 0.0
	for a := Scanner; a < numArchetypes; a++ {
		acc += weights[a]
		if u < acc {
			return a
		}
	}
	return Misconfiguration
}

// randomPublicAddr draws a distinct routable address outside the
// darkspace and outside RFC 1918 space.
func randomPublicAddr(rng *rand.Rand, dark ipaddr.Prefix, seen map[ipaddr.Addr]bool) ipaddr.Addr {
	for {
		a := ipaddr.Addr(rng.Uint32())
		if dark.Contains(a) || ipaddr.IsPrivate(a) || seen[a] {
			continue
		}
		// Exclude multicast/reserved 224.0.0.0/3 and 0.0.0.0/8.
		if uint32(a)>>29 == 7 || uint32(a)>>24 == 0 {
			continue
		}
		seen[a] = true
		return a
	}
}

// hashUnit maps (seed, id, key, channel) to a uniform float64 in [0, 1)
// via splitmix64, giving independent reproducible Bernoulli draws
// without storing per-source RNG state.
func hashUnit(seed int64, id, key, channel uint64) float64 {
	x := uint64(seed) ^ id*0x9E3779B97F4A7C15 ^ key*0xBF58476D1CE4E5B9 ^ channel*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// monthKey quantizes a fractional month to a stable hash key.
func monthKey(m float64) uint64 {
	return uint64(int64(math.Round(m * 1024)))
}

// BandSources returns the indices of sources whose brightness lies in
// [2^band, 2^(band+1)), for ground-truth comparisons.
func (p *Population) BandSources(band int) []int {
	lo, hi := stats.BandLow(band), stats.BandLow(band+1)
	var out []int
	for i := range p.sources {
		if d := p.sources[i].Brightness; d >= lo && d < hi {
			out = append(out, i)
		}
	}
	return out
}
