package radiation

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ipaddr"
	"repro/internal/pcap"
)

// TestConfigValidate sweeps the negative paths of radiation.Config the
// way genmodel.TestConfigValidate sweeps the generator's: every invalid
// configuration must be rejected at Validate/NewPopulation with a named
// error instead of surfacing later as a deep pipeline failure.
func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	if err := PaperScaleConfig().Validate(); err != nil {
		t.Fatalf("PaperScaleConfig invalid: %v", err)
	}
	bad := []struct {
		name string
		mut  func(*Config)
		want string // substring the error must carry
	}{
		{"zero population", func(c *Config) { c.NumSources = 0 }, "NumSources"},
		{"negative population", func(c *Config) { c.NumSources = -5 }, "NumSources"},
		{"zero months", func(c *Config) { c.Months = 0 }, "Months"},
		{"empty ZM", func(c *Config) { c.ZM = DefaultConfig().ZM; c.ZM.Alpha = 0; c.ZM.DMax = 0 }, "ZM"},
		{"ZM alpha at unity", func(c *Config) { c.ZM.Alpha = 1 }, "ZM.Alpha"},
		{"ZM degenerate dmax", func(c *Config) { c.ZM.DMax = 1 }, "ZM.DMax"},
		{"zero beam alpha", func(c *Config) { c.AlphaStar = 0 }, "beam"},
		{"negative beta base", func(c *Config) { c.BetaBase = -1 }, "beam"},
		{"zero beta dip", func(c *Config) { c.BetaDip = 0 }, "beam"},
		{"zero episode kernel", func(c *Config) { c.TelescopeAlpha = 0 }, "episode"},
		{"negative episode scale", func(c *Config) { c.TelescopeBeta = -0.2 }, "episode"},
		{"background above one", func(c *Config) { c.Background = 1.5 }, "Background"},
		{"persistent below zero", func(c *Config) { c.Persistent = -0.1 }, "Persistent"},
		{"zero brightness aperture", func(c *Config) { c.BrightLog2 = 0 }, "BrightLog2"},
		{"bogon rate above half", func(c *Config) { c.BogonRate = 0.6 }, "BogonRate"},
		{"darkspace too wide", func(c *Config) { c.Darkspace = ipaddr.Prefix{Base: 0, Bits: 0} }, "Darkspace"},
		{"darkspace too narrow", func(c *Config) { c.Darkspace = ipaddr.MustParsePrefix("44.0.0.0/28") }, "Darkspace"},
		{"short mix", func(c *Config) { c.Mix = []float64{1, 2} }, "Mix"},
		{"negative mix weight", func(c *Config) { c.Mix = []float64{1, 1, -1, 1, 1} }, "Mix"},
		{"zero-sum mix", func(c *Config) { c.Mix = []float64{0, 0, 0, 0, 0} }, "Mix"},
		{"vertical scan above one", func(c *Config) { c.VerticalScan = 1.1 }, "VerticalScan"},
		{"negative v6 fraction", func(c *Config) { c.V6Sources = -0.2 }, "V6Sources"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			c := DefaultConfig()
			tc.mut(&c)
			err := c.Validate()
			if err == nil {
				t.Fatalf("invalid config accepted: %+v", c)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name %q", err, tc.want)
			}
			if _, err := NewPopulation(c); err == nil {
				t.Error("NewPopulation accepted invalid config")
			}
		})
	}
}

// An explicit Mix equal to the built-in census weights must reproduce
// the default population byte for byte (same rng consumption), so
// scenario files can spell the mix out without changing the workload.
func TestExplicitCensusMixMatchesDefault(t *testing.T) {
	base := DefaultConfig()
	base.NumSources = 2000
	withMix := base
	withMix.Mix = append([]float64(nil), archetypeWeights[:]...)
	a, err := NewPopulation(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPopulation(withMix)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		if a.Source(i) != b.Source(i) {
			t.Fatalf("source %d differs: %+v vs %+v", i, a.Source(i), b.Source(i))
		}
	}
}

func TestMixShiftsArchetypes(t *testing.T) {
	c := DefaultConfig()
	c.NumSources = 4000
	c.Mix = []float64{0.02, 0.02, 0.9, 0.03, 0.03} // backscatter-dominant
	p, err := NewPopulation(c)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for i := 0; i < p.Len(); i++ {
		if p.Source(i).Type == Backscatter {
			count++
		}
	}
	if frac := float64(count) / float64(p.Len()); frac < 0.85 || frac > 0.95 {
		t.Errorf("backscatter share = %.3f, want ~0.90", frac)
	}
}

func TestV6SourcesEmbed(t *testing.T) {
	c := DefaultConfig()
	c.NumSources = 4000
	c.V6Sources = 0.5
	p, err := NewPopulation(c)
	if err != nil {
		t.Fatal(err)
	}
	n, seen := 0, make(map[ipaddr.Addr]bool)
	for i := 0; i < p.Len(); i++ {
		s := p.Source(i)
		if seen[s.IP] {
			t.Fatalf("duplicate matrix index %v", s.IP)
		}
		seen[s.IP] = true
		if !s.V6 {
			if ipaddr.IsV6Embedded(s.IP) {
				t.Fatalf("native source %d landed in the embedding space", i)
			}
			continue
		}
		n++
		if !ipaddr.IsV6Embedded(s.IP) {
			t.Fatalf("v6 source %d outside the embedding space: %v", i, s.IP)
		}
		if s.IP != ipaddr.EmbedV6(s.IP6) {
			t.Fatalf("v6 source %d index does not embed its IP6", i)
		}
		if s.IP6.String()[:len("2001:db8:")] != "2001:db8:" {
			t.Fatalf("v6 source %d outside the synthetic prefix: %v", i, s.IP6)
		}
	}
	if frac := float64(n) / float64(p.Len()); frac < 0.44 || frac > 0.56 {
		t.Errorf("v6 share = %.3f, want ~0.50", frac)
	}
}

// Vertical scanners must keep a single darkspace destination per source
// while sweeping ports; horizontal scanners keep spraying destinations.
func TestVerticalScanShape(t *testing.T) {
	c := DefaultConfig()
	c.NumSources = 1500
	c.VerticalScan = 1.0
	c.Mix = []float64{1, 0, 0, 0, 0} // scanners only
	c.BogonRate = 0
	p, err := NewPopulation(c)
	if err != nil {
		t.Fatal(err)
	}
	st := p.TelescopeStream(4.5, time.Unix(0, 0))
	dsts := make(map[ipaddr.Addr]map[ipaddr.Addr]bool)
	ports := make(map[ipaddr.Addr]map[uint16]bool)
	var pkt pcap.Packet
	for st.Next(&pkt) {
		if dsts[pkt.Src] == nil {
			dsts[pkt.Src] = make(map[ipaddr.Addr]bool)
			ports[pkt.Src] = make(map[uint16]bool)
		}
		dsts[pkt.Src][pkt.Dst] = true
		ports[pkt.Src][pkt.DstPort] = true
	}
	multiPort := 0
	for src, d := range dsts {
		if len(d) != 1 {
			t.Fatalf("vertical scanner %v hit %d destinations", src, len(d))
		}
		if len(ports[src]) > 1 {
			multiPort++
		}
	}
	if multiPort == 0 {
		t.Error("no vertical scanner swept more than one port")
	}
}
