// Package radiation generates synthetic Internet background radiation:
// the unsolicited traffic (scanners, worms, backscatter, botnet
// keep-alives, misconfigurations) that darkspace telescopes and
// honeyfarms observe. It is the data substitute for the paper's
// proprietary CAIDA and GreyNoise corpora (see DESIGN.md §2).
//
// The generator maintains a persistent population of sources. Each
// source has
//
//   - a stable public IPv4 address,
//   - a brightness d (expected packets per telescope window) drawn from
//     the paper's Zipf-Mandelbrot law,
//   - an archetype that shapes its packets (protocol, ports, TTL,
//     destination pattern),
//   - an anchor month a and a beam profile: the source is active in
//     month m with probability β*/(β* + |m-a|^α*) — the "correlated
//     high-frequency beam of sources that drifts on a time scale of a
//     month" the paper concludes with,
//   - optionally a persistent flag (always-on background scanners).
//
// The telescope sees every active source (a /8 aperture misses nothing
// that scans broadly); the honeyfarm sees an active source with
// probability capped by the paper's log-brightness law min(1,
// log2(d)/BrightLog2). The measurement pipeline is blind to all of these
// parameters and must re-derive them from packets; EXPERIMENTS.md
// compares recovered values against both this ground truth and the
// paper's figures.
package radiation

import (
	"fmt"

	"repro/internal/ipaddr"
	"repro/internal/stats"
)

// Config parameterizes a synthetic radiation population.
type Config struct {
	Seed int64 // master seed; everything else derives from it

	// Population and brightness.
	NumSources int                  // population size (potential scanners)
	ZM         stats.ZipfMandelbrot // per-window brightness law
	Persistent float64              // fraction of always-on background sources

	// Geometry.
	Darkspace ipaddr.Prefix // the telescope's monitored prefix

	// Study period.
	Months int // number of monthly epochs

	// Ground-truth beam dynamics (the quantities Figures 7 and 8 must
	// recover, approximately, from the data).
	AlphaStar  float64 // temporal decay exponent α*, paper-typical 1
	BetaBase   float64 // β* away from the dip, paper-typical 4
	BetaDip    float64 // β* at the dip (d ≈ 2^DipLog2), paper-typical 1
	DipLog2    float64 // center of the β dip in log2(d), paper-typical 10 (d≈10^3)
	DipWidth   float64 // width of the dip in octaves
	Background float64 // beam-independent visibility floor (0..1)

	// Telescope episode kernel. A darkspace only records a source while
	// its broad scan actually sweeps the monitored /8 — a brief episode
	// near the beam anchor — whereas the honeyfarm's enrichment pipeline
	// keeps recording the source as the beam drifts on the month scale.
	// The episode kernel is a sharp modified Cauchy; it must be much
	// narrower than the honeyfarm kernel or the measured temporal
	// correlation flattens (the snapshot would no longer localize the
	// beam anchor in time).
	TelescopeAlpha float64 // episode kernel exponent, default 2
	TelescopeBeta  float64 // episode kernel scale, default 0.2 (≈±0.5 month)

	// Honeyfarm aperture: a source of brightness d is honeyfarm-visible
	// with probability at most min(1, log2(d)/BrightLog2). The paper's
	// value is log2(sqrt(NV)) = 15 for NV = 2^30.
	BrightLog2 float64

	// Noise sources that the telescope's validity filter must discard:
	// fraction of emitted packets carrying RFC 1918 (bogon) sources.
	BogonRate float64

	// Workload-zoo knobs (scenario suites). All default to zero values
	// that reproduce the paper's census mix byte for byte; the extra
	// Bernoulli draws they introduce ride the hashUnit channels, not
	// the population RNG, so enabling one never perturbs another's
	// stream.

	// Mix optionally overrides the built-in archetype population shares
	// in Archetype order (scanner, worm, backscatter, botnet,
	// misconfiguration). Empty means the built-in census mix; otherwise
	// it must hold one non-negative weight per archetype with a
	// positive sum (weights are normalized).
	Mix []float64

	// VerticalScan is the fraction of Scanner sources that run vertical
	// campaigns: instead of spraying SYNs across the darkspace at a few
	// well-known ports (horizontal), a vertical scanner hammers one
	// darkspace host and sweeps its port space sequentially.
	VerticalScan float64

	// V6Sources is the fraction of sources with IPv6 origins. Their
	// 128-bit addresses enter the 32-bit matrices through the
	// deterministic class E embedding (ipaddr.EmbedV6), so the
	// hypersparse hot path is address-family blind; Source.IP6 keeps
	// the original form for the D4M boundary.
	V6Sources float64
}

// DefaultConfig returns a laptop-scale configuration that preserves the
// paper's statistical shape. NV-dependent values assume 2^20-packet
// telescope windows (so sqrt(NV) = 2^10).
func DefaultConfig() Config {
	return Config{
		Seed:       1,
		NumSources: 200000,
		ZM:         stats.PaperZM(1 << 18),
		// Always-on benign crawlers (Shodan, Censys, ...) are a small
		// population, but because they are telescope-active in every
		// window they are strongly over-represented in snapshots; keep
		// the fraction low or the temporal curves flatten.
		Persistent:     0.004,
		Darkspace:      ipaddr.MustParsePrefix("44.0.0.0/8"),
		Months:         15,
		AlphaStar:      1.0,
		BetaBase:       4.0,
		BetaDip:        1.0,
		DipLog2:        10,
		DipWidth:       3,
		Background:     0.03,
		TelescopeAlpha: 2.0,
		TelescopeBeta:  0.2,
		BrightLog2:     10,
		BogonRate:      0.002,
	}
}

// PaperScaleConfig mirrors the paper's actual scale (2^30-packet windows,
// sqrt(NV) = 2^15); intended for long-running benchmark sweeps only.
func PaperScaleConfig() Config {
	c := DefaultConfig()
	c.NumSources = 2_000_000
	c.ZM = stats.PaperZM(1 << 27)
	c.BrightLog2 = 15
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.NumSources <= 0:
		return fmt.Errorf("radiation: NumSources must be positive, got %d", c.NumSources)
	case c.Months <= 0:
		return fmt.Errorf("radiation: Months must be positive, got %d", c.Months)
	case c.ZM.Alpha <= 1:
		return fmt.Errorf("radiation: ZM.Alpha must exceed 1, got %g", c.ZM.Alpha)
	case c.ZM.DMax < 2:
		return fmt.Errorf("radiation: ZM.DMax must be at least 2, got %g", c.ZM.DMax)
	case c.AlphaStar <= 0 || c.BetaBase <= 0 || c.BetaDip <= 0:
		return fmt.Errorf("radiation: beam parameters must be positive")
	case c.TelescopeAlpha <= 0 || c.TelescopeBeta <= 0:
		return fmt.Errorf("radiation: telescope episode kernel parameters must be positive")
	case c.Background < 0 || c.Background > 1:
		return fmt.Errorf("radiation: Background must be in [0,1], got %g", c.Background)
	case c.Persistent < 0 || c.Persistent > 1:
		return fmt.Errorf("radiation: Persistent must be in [0,1], got %g", c.Persistent)
	case c.BrightLog2 <= 0:
		return fmt.Errorf("radiation: BrightLog2 must be positive, got %g", c.BrightLog2)
	case c.BogonRate < 0 || c.BogonRate > 0.5:
		return fmt.Errorf("radiation: BogonRate must be in [0, 0.5], got %g", c.BogonRate)
	case c.Darkspace.Bits < 1 || c.Darkspace.Bits > 24:
		return fmt.Errorf("radiation: Darkspace must be /1../24, got %v", c.Darkspace)
	case c.VerticalScan < 0 || c.VerticalScan > 1:
		return fmt.Errorf("radiation: VerticalScan must be in [0,1], got %g", c.VerticalScan)
	case c.V6Sources < 0 || c.V6Sources > 1:
		return fmt.Errorf("radiation: V6Sources must be in [0,1], got %g", c.V6Sources)
	}
	if len(c.Mix) > 0 {
		if len(c.Mix) != int(numArchetypes) {
			return fmt.Errorf("radiation: Mix must hold %d weights, got %d", numArchetypes, len(c.Mix))
		}
		sum := 0.0
		for i, w := range c.Mix {
			if w < 0 {
				return fmt.Errorf("radiation: Mix[%d] (%s) is negative: %g", i, Archetype(i), w)
			}
			sum += w
		}
		if sum <= 0 {
			return fmt.Errorf("radiation: Mix weights sum to zero")
		}
	}
	return nil
}

// mixWeights returns the normalized archetype shares: Config.Mix when
// set, the built-in census mix otherwise.
func (c Config) mixWeights() [numArchetypes]float64 {
	if len(c.Mix) == 0 {
		return archetypeWeights
	}
	var out [numArchetypes]float64
	sum := 0.0
	for _, w := range c.Mix {
		sum += w
	}
	for i, w := range c.Mix {
		out[i] = w / sum
	}
	return out
}

// BetaStar returns the ground-truth β*(d): BetaBase with a Gaussian dip
// to BetaDip centered at d = 2^DipLog2 (the paper's Figure 8 shape).
func (c Config) BetaStar(d float64) float64 {
	if d < 1 {
		d = 1
	}
	x := (log2(d) - c.DipLog2) / c.DipWidth
	return c.BetaBase - (c.BetaBase-c.BetaDip)*gauss(x)
}

// PeakVisibility returns the ground-truth honeyfarm aperture
// min(1, log2(d)/BrightLog2) for a source of brightness d (the paper's
// Figure 4 law).
func (c Config) PeakVisibility(d float64) float64 {
	if d < 2 {
		d = 2 // log2(1) = 0 would make unit-brightness sources invisible
	}
	v := log2(d) / c.BrightLog2
	if v > 1 {
		return 1
	}
	return v
}
