// Package faultinject is a TCP chaos proxy for the tripled service:
// it sits between a client and one server and injects the failure
// modes a real cluster must survive — refused connections, added
// latency, silent blackholes, connections reset mid-request, and
// reads throttled to a trickle. The cluster tests, the store-failover
// scenario, and cmd/tripled-load's -chaos flag all drive their fault
// schedules through it, and its own unit tests prove each mode
// actually manifests on the wire, so the harness can be trusted
// before any guarantee is gated on it.
//
// The proxy is mode-switchable at runtime (atomics, safe from any
// goroutine) and deterministic where it matters: BlackholeAfterBytes
// and ResetAfterBytes trigger on exact client→server byte counts, so
// a deterministic workload is cut at a deterministic point — how the
// kill-one-replica-mid-study scenario places its fault without racing
// the pipeline.
package faultinject

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is the proxy's current fault behavior.
type Mode int32

const (
	// Forward relays traffic untouched.
	Forward Mode = iota
	// Drop closes new connections immediately on accept and existing
	// connections at their next transferred chunk (orderly FIN): the
	// "server process gone, port closed" failure.
	Drop
	// Delay relays traffic with a fixed added latency per
	// client→server chunk (see SetDelay): the congested-network
	// failure.
	Delay
	// Blackhole accepts and then forwards nothing in either direction
	// — bytes written by either side vanish: the partitioned-but-
	// connected failure that only deadlines can detect.
	Blackhole
	// SlowRead relays server→client traffic at a throttled trickle
	// (see SetSlowRead): the pathological-slow-peer failure.
	SlowRead
	// Reset tears connections down with an RST (SO_LINGER 0) on accept
	// and at the next chunk of existing connections: the
	// crashed-mid-request failure.
	Reset
)

func (m Mode) String() string {
	switch m {
	case Forward:
		return "forward"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Blackhole:
		return "blackhole"
	case SlowRead:
		return "slow-read"
	case Reset:
		return "reset"
	default:
		return fmt.Sprintf("mode(%d)", int32(m))
	}
}

// ParseMode maps the CLI spelling of a mode ("blackhole", "slow-read",
// ...) to its value.
func ParseMode(s string) (Mode, error) {
	for _, m := range []Mode{Forward, Drop, Delay, Blackhole, SlowRead, Reset} {
		if m.String() == s {
			return m, nil
		}
	}
	return Forward, fmt.Errorf("faultinject: unknown mode %q", s)
}

// Proxy is one listener relaying to one upstream target.
type Proxy struct {
	ln     net.Listener
	target string

	mode         atomic.Int32
	delayNs      atomic.Int64 // Delay mode: per-chunk added latency
	slowChunk    atomic.Int64 // SlowRead mode: bytes per tick
	slowTickNs   atomic.Int64
	resetAfter   atomic.Int64 // client→server byte threshold; 0 = off
	bholeAfter   atomic.Int64 // client→server byte threshold; 0 = off
	triggerAfter atomic.Int64 // client→server byte threshold; 0 = off
	triggerFn    func()       // under mu; fired once at triggerAfter
	upBytes      atomic.Int64 // client→server bytes forwarded so far

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // client-side conns, for CloseExisting
	closed bool
	wg     sync.WaitGroup
}

// New starts a proxy on a loopback ephemeral port relaying to target.
func New(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	p.slowChunk.Store(64)
	p.slowTickNs.Store(int64(10 * time.Millisecond))
	p.delayNs.Store(int64(20 * time.Millisecond))
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients dial instead of the real server.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Target is the upstream server address.
func (p *Proxy) Target() string { return p.target }

// SetMode switches the fault behavior; existing connections notice at
// their next transferred chunk.
func (p *Proxy) SetMode(m Mode) { p.mode.Store(int32(m)) }

// Mode returns the current fault behavior.
func (p *Proxy) Mode() Mode { return Mode(p.mode.Load()) }

// SetDelay sets Delay mode's per-chunk added latency.
func (p *Proxy) SetDelay(d time.Duration) { p.delayNs.Store(int64(d)) }

// SetSlowRead sets SlowRead mode's trickle: chunk bytes per tick.
func (p *Proxy) SetSlowRead(chunk int, tick time.Duration) {
	if chunk < 1 {
		chunk = 1
	}
	p.slowChunk.Store(int64(chunk))
	p.slowTickNs.Store(int64(tick))
}

// ResetAfterBytes arms a one-shot trigger: once n client→server bytes
// have been forwarded in total, the connection carrying the crossing
// byte is reset (RST) — the reset-mid-BATCH fault. 0 disarms.
func (p *Proxy) ResetAfterBytes(n int64) { p.resetAfter.Store(n) }

// BlackholeAfterBytes arms a one-shot trigger: once n client→server
// bytes have been forwarded in total, the proxy flips itself to
// Blackhole — the deterministic kill-a-replica-mid-run fault. 0
// disarms.
func (p *Proxy) BlackholeAfterBytes(n int64) { p.bholeAfter.Store(n) }

// TriggerAfterBytes arms a one-shot callback: once n client→server
// bytes have been forwarded in total, fn runs (in its own goroutine,
// after the crossing chunk was forwarded). It is the generic
// deterministic fault hook — the crash-recovery scenario uses it to
// SIGKILL-and-restart the real server mid-ingest at an exact byte
// offset. n <= 0 disarms.
func (p *Proxy) TriggerAfterBytes(n int64, fn func()) {
	p.mu.Lock()
	p.triggerFn = fn
	p.mu.Unlock()
	p.triggerAfter.Store(n)
}

// ForwardedBytes reports total client→server bytes forwarded.
func (p *Proxy) ForwardedBytes() int64 { return p.upBytes.Load() }

// CloseExisting severs every live connection immediately (orderly
// close), without changing the mode — the hard-kill lever for
// connections sitting idle where the per-chunk mode check cannot see
// them.
func (p *Proxy) CloseExisting() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Close stops the listener and severs every connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		switch p.Mode() {
		case Drop:
			client.Close()
			continue
		case Reset:
			rstClose(client)
			continue
		}
		if !p.track(client) {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer p.untrack(client)
			p.relay(client)
		}()
	}
}

// rstClose closes with SO_LINGER 0, so the peer sees a reset, not an
// orderly FIN — mid-request this is indistinguishable from a crash.
func rstClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

// relay runs one proxied connection: upstream dial, then one copier
// per direction, each applying the current fault mode chunk by chunk.
func (p *Proxy) relay(client net.Conn) {
	defer client.Close()
	server, err := net.DialTimeout("tcp", p.target, 2*time.Second)
	if err != nil {
		return
	}
	defer server.Close()
	if !p.track(server) {
		return
	}
	defer p.untrack(server)

	var once sync.Once
	kill := func(reset bool) {
		once.Do(func() {
			if reset {
				rstClose(client)
				rstClose(server)
			} else {
				client.Close()
				server.Close()
			}
		})
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p.copyChunks(server, client, true, kill) }()
	go func() { defer wg.Done(); p.copyChunks(client, server, false, kill) }()
	wg.Wait()
	kill(false)
}

// copyChunks relays src→dst until either side dies, consulting the
// fault mode before forwarding each chunk. up marks the
// client→server direction, which carries the byte-count triggers and
// Delay's latency; SlowRead throttles the other direction.
func (p *Proxy) copyChunks(dst, src net.Conn, up bool, kill func(reset bool)) {
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			switch p.Mode() {
			case Drop:
				kill(false)
				return
			case Reset:
				kill(true)
				return
			case Blackhole:
				// Swallow the bytes: the writer believes they were sent.
				if !p.sleepUntilUnblackholed(src) {
					return
				}
				continue
			case Delay:
				if up {
					time.Sleep(time.Duration(p.delayNs.Load()))
				}
			case SlowRead:
				if !up {
					if !p.trickle(dst, buf[:n]) {
						kill(false)
						return
					}
					continue
				}
			}
			if up {
				total := p.upBytes.Add(int64(n))
				if th := p.resetAfter.Load(); th > 0 && total >= th {
					// Forward the bytes up to the threshold, then crash the
					// connection mid-stream.
					if keep := int(th - (total - int64(n))); keep > 0 && keep < n {
						dst.Write(buf[:keep])
					}
					kill(true)
					return
				}
				if th := p.bholeAfter.Load(); th > 0 && total >= th {
					dst.Write(buf[:n])
					p.SetMode(Blackhole)
					continue
				}
				if th := p.triggerAfter.Load(); th > 0 && total >= th && p.triggerAfter.CompareAndSwap(th, 0) {
					// Forward the crossing chunk first, so the upstream holds
					// a genuinely torn mid-request state when fn crashes it.
					dst.Write(buf[:n])
					p.mu.Lock()
					fn := p.triggerFn
					p.mu.Unlock()
					if fn != nil {
						go fn()
					}
					continue
				}
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				kill(false)
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				kill(false)
			} else {
				// Half-close: let the other direction drain.
				if tc, ok := dst.(*net.TCPConn); ok {
					tc.CloseWrite()
				}
			}
			return
		}
	}
}

// sleepUntilUnblackholed parks a copier while Blackhole holds,
// re-checking every few milliseconds; returns false once its
// connection died.
func (p *Proxy) sleepUntilUnblackholed(src net.Conn) bool {
	for p.Mode() == Blackhole {
		time.Sleep(5 * time.Millisecond)
		// Probe liveness cheaply: a closed conn makes the next Read in
		// the caller fail immediately anyway; just stop parking once
		// the proxy is closing.
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return false
		}
	}
	return true
}

// trickle writes b at SlowRead's configured rate.
func (p *Proxy) trickle(dst net.Conn, b []byte) bool {
	chunk := int(p.slowChunk.Load())
	tick := time.Duration(p.slowTickNs.Load())
	for len(b) > 0 {
		n := chunk
		if n > len(b) {
			n = len(b)
		}
		if _, err := dst.Write(b[:n]); err != nil {
			return false
		}
		b = b[n:]
		if len(b) > 0 {
			time.Sleep(tick)
		}
	}
	return true
}
