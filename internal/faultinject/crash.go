package faultinject

// crash.go is the process-level crash harness: where proxy.go injects
// wire faults into a live server, Process injects the fault the WAL
// exists for — SIGKILL of a real OS process, no deferred cleanup, no
// flushes, exactly what a machine reset leaves behind. Tests re-exec
// their own test binary as the server (the helper-process pattern) and
// kill it mid-request, then restart from the same data dir and hold
// recovery to the replay oracle.

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"
)

// Process is one crash-target subprocess.
type Process struct {
	cmd   *exec.Cmd
	Ready string // remainder of the readiness line after the prefix
}

// StartProcess launches bin with args and extra environment entries
// ("K=V"), then waits up to timeout for a stdout line starting with
// readyPrefix — the child's readiness signal (a server prints
// "LISTEN <addr>" once it accepts). The remainder of that line is
// returned in Process.Ready. The child's stderr passes through to the
// parent's for debuggability.
func StartProcess(bin string, args, env []string, readyPrefix string, timeout time.Duration) (*Process, error) {
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), env...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	readyc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, readyPrefix) {
				readyc <- strings.TrimSpace(strings.TrimPrefix(line, readyPrefix))
				// Keep draining so the child never blocks on a full pipe.
				for sc.Scan() {
				}
				return
			}
		}
		errc <- fmt.Errorf("faultinject: child exited before printing %q", readyPrefix)
	}()
	select {
	case ready := <-readyc:
		return &Process{cmd: cmd, Ready: ready}, nil
	case err := <-errc:
		cmd.Process.Kill()
		cmd.Wait()
		return nil, err
	case <-time.After(timeout):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("faultinject: child not ready within %v", timeout)
	}
}

// Kill delivers SIGKILL and reaps the child. The child gets no chance
// to flush, close, or unwind — the whole point.
func (p *Process) Kill() error {
	if err := p.cmd.Process.Kill(); err != nil {
		return err
	}
	p.cmd.Wait() // exit status "killed" is expected, not an error
	return nil
}

// Pid returns the child's process ID.
func (p *Process) Pid() int { return p.cmd.Process.Pid }
