package faultinject

// crash_test.go proves the process harness itself before any recovery
// guarantee is gated on it: readiness parsing, timeout and early-exit
// handling, SIGKILL delivery, and the TriggerAfterBytes hook firing
// exactly once at the armed byte count while traffic keeps flowing.

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestStartProcessReadyAndKill(t *testing.T) {
	p, err := StartProcess("/bin/sh",
		[]string{"-c", "echo LISTEN 127.0.0.1:4242; exec sleep 60"},
		nil, "LISTEN ", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ready != "127.0.0.1:4242" {
		t.Fatalf("Ready = %q, want the address after the prefix", p.Ready)
	}
	if p.Pid() <= 0 {
		t.Fatalf("Pid = %d", p.Pid())
	}
	if err := p.Kill(); err != nil {
		t.Fatalf("Kill: %v", err)
	}
}

func TestStartProcessChildExitsBeforeReady(t *testing.T) {
	if _, err := StartProcess("/bin/sh", []string{"-c", "exit 3"},
		nil, "LISTEN ", 5*time.Second); err == nil {
		t.Fatal("child exited without the readiness line, StartProcess succeeded")
	}
}

func TestStartProcessTimeout(t *testing.T) {
	start := time.Now()
	if _, err := StartProcess("/bin/sh", []string{"-c", "exec sleep 60"},
		nil, "LISTEN ", 200*time.Millisecond); err == nil {
		t.Fatal("silent child, StartProcess succeeded")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("timeout did not bound the wait")
	}
}

// TestTriggerAfterBytesFiresOnceAndForwards: the hook must fire exactly
// once when the client→server byte count crosses the threshold, after
// the crossing chunk was forwarded — and the relay must keep working.
func TestTriggerAfterBytesFiresOnceAndForwards(t *testing.T) {
	p := newProxy(t, echoUpstream(t).Addr().String())
	var fired atomic.Int32
	hit := make(chan struct{})
	p.TriggerAfterBytes(10, func() {
		if fired.Add(1) == 1 {
			close(hit)
		}
	})
	conn := dialProxy(t, p)
	// 8 bytes: below threshold, no fire.
	if got, err := roundTrip(t, conn, "12345678"); err != nil || got != "12345678" {
		t.Fatalf("pre-threshold roundtrip: %q, %v", got, err)
	}
	select {
	case <-hit:
		t.Fatal("trigger fired below the threshold")
	case <-time.After(50 * time.Millisecond):
	}
	// 8 more: crosses 10; the chunk must still be forwarded.
	if got, err := roundTrip(t, conn, "abcdefgh"); err != nil || got != "abcdefgh" {
		t.Fatalf("crossing roundtrip: %q, %v", got, err)
	}
	select {
	case <-hit:
	case <-time.After(2 * time.Second):
		t.Fatal("trigger did not fire after crossing the threshold")
	}
	// More traffic must not re-fire the one-shot.
	if got, err := roundTrip(t, conn, "postfire-traffic"); err != nil || got != "postfire-traffic" {
		t.Fatalf("post-fire roundtrip: %q, %v", got, err)
	}
	time.Sleep(50 * time.Millisecond)
	if n := fired.Load(); n != 1 {
		t.Fatalf("trigger fired %d times, want exactly 1", n)
	}
}
