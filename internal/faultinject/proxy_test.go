package faultinject

// proxy_test.go proves each fault mode manifests on the wire — not
// just that the proxy's state machine flips, but that a real client on
// a real TCP connection observes the failure the mode claims to
// inject. The reset-mid-BATCH test drives an actual tripled server
// through the proxy and checks the protocol's atomicity contract holds
// under the injected crash: a truncated batch applies nothing.

import (
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/assoc"
	"repro/internal/tripled"
)

// echoUpstream is a plain TCP echo server, the upstream for the
// generic transport modes.
func echoUpstream(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()
	return ln
}

func newProxy(t *testing.T, target string) *Proxy {
	t.Helper()
	p, err := New(target)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// roundTrip writes msg and reads len(msg) bytes back, with a deadline.
func roundTrip(t *testing.T, conn net.Conn, msg string) (string, error) {
	t.Helper()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write([]byte(msg)); err != nil {
		return "", err
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestForwardRelays(t *testing.T) {
	p := newProxy(t, echoUpstream(t).Addr().String())
	conn := dialProxy(t, p)
	got, err := roundTrip(t, conn, "hello through the proxy")
	if err != nil || got != "hello through the proxy" {
		t.Fatalf("echo through proxy: %q, %v", got, err)
	}
	if fwd := p.ForwardedBytes(); fwd != int64(len("hello through the proxy")) {
		t.Fatalf("ForwardedBytes = %d", fwd)
	}
}

func TestDelayAddsLatency(t *testing.T) {
	p := newProxy(t, echoUpstream(t).Addr().String())
	conn := dialProxy(t, p)

	// Baseline: loopback echo is microseconds.
	if _, err := roundTrip(t, conn, "warm"); err != nil {
		t.Fatal(err)
	}
	p.SetDelay(80 * time.Millisecond)
	p.SetMode(Delay)
	start := time.Now()
	if _, err := roundTrip(t, conn, "slow"); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 80*time.Millisecond {
		t.Fatalf("delayed round trip took only %v, want >= 80ms", took)
	}
}

func TestBlackholeSwallowsBothDirections(t *testing.T) {
	p := newProxy(t, echoUpstream(t).Addr().String())
	conn := dialProxy(t, p)
	if _, err := roundTrip(t, conn, "pre"); err != nil {
		t.Fatal(err)
	}
	p.SetMode(Blackhole)

	// Writes "succeed" (the proxy reads and discards) but nothing comes
	// back: the read must hit its deadline, the partition only a
	// deadline can detect.
	conn.SetDeadline(time.Now().Add(300 * time.Millisecond))
	if _, err := conn.Write([]byte("into the void")); err != nil {
		t.Fatalf("write into blackhole failed immediately: %v", err)
	}
	buf := make([]byte, 1)
	_, err := conn.Read(buf)
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("read through blackhole returned %v, want deadline timeout", err)
	}
	if fwd := p.ForwardedBytes(); fwd != int64(len("pre")) {
		t.Fatalf("blackholed bytes were counted as forwarded: %d", fwd)
	}
}

func TestSlowReadTrickles(t *testing.T) {
	p := newProxy(t, echoUpstream(t).Addr().String())
	p.SetSlowRead(64, 10*time.Millisecond)
	conn := dialProxy(t, p)
	p.SetMode(SlowRead)

	// 1 KiB at 64 bytes / 10 ms is >= 150 ms of mandatory trickle on
	// the server→client leg.
	msg := strings.Repeat("x", 1024)
	start := time.Now()
	got, err := roundTrip(t, conn, msg)
	if err != nil || got != msg {
		t.Fatalf("slow-read round trip: err=%v, %d bytes", err, len(got))
	}
	if took := time.Since(start); took < 150*time.Millisecond {
		t.Fatalf("1 KiB slow-read took only %v, want >= 150ms", took)
	}
}

func TestDropClosesNewConnections(t *testing.T) {
	p := newProxy(t, echoUpstream(t).Addr().String())
	p.SetMode(Drop)
	conn := dialProxy(t, p)
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err != io.EOF {
		t.Fatalf("read on dropped connection returned %v, want EOF", err)
	}
}

func TestResetTearsDownExistingConnections(t *testing.T) {
	p := newProxy(t, echoUpstream(t).Addr().String())
	conn := dialProxy(t, p)
	if _, err := roundTrip(t, conn, "pre"); err != nil {
		t.Fatal(err)
	}
	p.SetMode(Reset)
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	// The next chunk through the proxy triggers the RST.
	conn.Write([]byte("boom"))
	buf := make([]byte, 4)
	var err error
	for i := 0; i < 2 && err == nil; i++ { // first read may race the RST
		_, err = conn.Read(buf)
	}
	if err == nil || err == io.EOF {
		t.Fatalf("read on reset connection returned %v, want a connection error", err)
	}
}

func TestBlackholeAfterBytesIsDeterministic(t *testing.T) {
	p := newProxy(t, echoUpstream(t).Addr().String())
	p.BlackholeAfterBytes(8)
	conn := dialProxy(t, p)

	// The 8 threshold bytes are forwarded upstream, then the proxy
	// flips itself to Blackhole. (Whether their echo makes it back is a
	// race against the flip — only the client→server cut point is
	// deterministic, which is what the kill-mid-study scenario needs.)
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write([]byte("12345678")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.Mode() != Blackhole {
		if time.Now().After(deadline) {
			t.Fatalf("mode after threshold = %v, want blackhole", p.Mode())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if fwd := p.ForwardedBytes(); fwd != 8 {
		t.Fatalf("ForwardedBytes at flip = %d, want 8", fwd)
	}

	// Everything after the threshold vanishes: not forwarded, no reply.
	if _, err := conn.Write([]byte("after")); err != nil {
		t.Fatalf("write into blackhole failed immediately: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if fwd := p.ForwardedBytes(); fwd != 8 {
		t.Fatalf("bytes past the threshold were forwarded: %d", fwd)
	}
}

// TestResetMidBatchAppliesNothing is the reason the harness exists:
// cut a BATCH mid-body with an RST and prove the server's atomicity
// contract — a truncated batch applies no cells — while the client
// sees a retryable transport error, the combination the cluster's
// replay-on-redial recovery depends on.
func TestResetMidBatchAppliesNothing(t *testing.T) {
	store := tripled.NewStore()
	srv, err := tripled.Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := newProxy(t, srv.Addr())
	c, err := tripled.Dial(p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// ~100 cells * ~25 bytes each; cut the stream after 500 bytes, well
	// inside the batch body.
	p.ResetAfterBytes(500)
	cells := make([]tripled.Cell, 100)
	for i := range cells {
		cells[i] = tripled.Cell{Row: "r" + strings.Repeat("0", 10), Col: "c", Val: assoc.Num(float64(i))}
		cells[i].Row = cells[i].Row + string(rune('a'+i%26))
	}
	err = c.PutBatch(cells)
	if err == nil {
		t.Fatal("PutBatch through a mid-batch reset succeeded")
	}
	if !tripled.Retryable(err) {
		t.Fatalf("mid-batch reset error %v classified %v, want retryable", err, tripled.Classify(err))
	}

	// Atomicity: the server must have applied nothing from the cut batch.
	direct, err := tripled.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	// The server tears the connection down asynchronously; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		n, err := direct.NNZ()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 && time.Now().After(deadline) {
			break
		}
		if n != 0 {
			t.Fatalf("server applied %d cells from a truncated batch", n)
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}
