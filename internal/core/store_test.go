package core

// store_test.go proves the tripled-backed pipeline path is a no-op for
// the science: routing every correlation table through the database
// service must reproduce the in-memory study's artifacts byte for byte.

import (
	"fmt"
	"testing"

	"repro/internal/tripled"
)

// renderFig4 serializes the Fig. 4 artifact so runs can be compared
// byte for byte.
func renderFig4(t *testing.T, r *Result) string {
	t.Helper()
	fig4, err := r.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	out := ""
	for _, s := range fig4 {
		out += s.Label + "\n"
		for i, p := range s.Points {
			out += fmt.Sprintf("%+v\t%v\n", p, s.Model[i])
		}
	}
	return out
}

// renderTableII serializes the Table II artifact.
func renderTableII(r *Result) string {
	out := ""
	for _, q := range r.TableII() {
		out += fmt.Sprintf("%+v\n", q)
	}
	return out
}

func TestStoreBackedStudyMatchesInMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick studies")
	}
	mem := quickResult(t)

	srv, err := tripled.Serve(tripled.NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := QuickConfig()
	cfg.StoreAddr = srv.Addr()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}

	// The service really carried the tables: every month and snapshot is
	// still in the store under its prefix.
	c, err := tripled.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	nnz, err := c.NNZ()
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, m := range res.Study.Months {
		want += m.Table.NNZ()
	}
	for _, s := range res.Study.Snapshots {
		want += s.Sources.NNZ()
	}
	if nnz != want {
		t.Errorf("store holds %d cells, published tables total %d", nnz, want)
	}

	// Byte-identical artifacts.
	if got, wantS := renderTableII(res), renderTableII(mem); got != wantS {
		t.Errorf("Table II differs between store-backed and in-memory runs:\n%s\nvs\n%s", got, wantS)
	}
	if got, wantS := renderFig4(t, res), renderFig4(t, mem); got != wantS {
		t.Errorf("Fig. 4 differs between store-backed and in-memory runs:\n%s\nvs\n%s", got, wantS)
	}

	// And the tables themselves round-tripped losslessly.
	for i, m := range res.Study.Months {
		memM := mem.Study.Months[i]
		if m.Table.NNZ() != memM.Table.NNZ() || m.Table.NRows() != memM.Table.NRows() {
			t.Errorf("month %s: fetched table shape %dx%d cells, in-memory %dx%d",
				m.Label, m.Table.NRows(), m.Table.NNZ(), memM.Table.NRows(), memM.Table.NNZ())
		}
	}
}
