package core

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
)

// runQuick executes one QuickConfig study, shared across tests in this
// package to keep the suite fast.
var (
	quickOnce sync.Once
	quickRes  *Result
	quickErr  error
)

func quickResult(t *testing.T) *Result {
	t.Helper()
	quickOnce.Do(func() {
		p, err := New(QuickConfig())
		if err != nil {
			quickErr = err
			return
		}
		quickRes, quickErr = p.Run()
	})
	if quickErr != nil {
		t.Fatal(quickErr)
	}
	return quickRes
}

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), QuickConfig()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("config invalid: %v", err)
		}
	}
	bad := QuickConfig()
	bad.NV = 0
	if bad.Validate() == nil {
		t.Error("NV=0 accepted")
	}
	bad = QuickConfig()
	bad.SnapshotTimes = nil
	if bad.Validate() == nil {
		t.Error("no snapshots accepted")
	}
	bad = QuickConfig()
	bad.SnapshotTimes = []time.Time{bad.StudyStart.AddDate(10, 0, 0)}
	if bad.Validate() == nil {
		t.Error("out-of-study snapshot accepted")
	}
	bad = QuickConfig()
	bad.Radiation.NumSources = 0
	if bad.Validate() == nil {
		t.Error("bad radiation config accepted")
	}
}

func TestMonthOfPaperDates(t *testing.T) {
	c := DefaultConfig()
	// 2020-06-17 is ~4.5 months after 2020-02-01.
	m := c.monthOf(time.Date(2020, 6, 17, 12, 0, 0, 0, time.UTC))
	if m < 4.3 || m > 4.8 {
		t.Errorf("monthOf(2020-06-17) = %g, want ~4.5", m)
	}
	// Last paper snapshot within 15 months.
	last := c.monthOf(time.Date(2020, 12, 16, 12, 0, 0, 0, time.UTC))
	if last >= 15 {
		t.Errorf("last snapshot month %g outside study", last)
	}
}

func TestFig6BandsScale(t *testing.T) {
	c := DefaultConfig() // NV=2^20, sqrt exponent 10
	bands := c.Fig6Bands()
	if len(bands) < 4 {
		t.Fatalf("bands = %v, want >= 4 distinct", bands)
	}
	if bands[0] != 0 {
		t.Errorf("first band = %d, want 0", bands[0])
	}
	// At paper scale the bands must be exactly the paper's.
	c.NV = 1 << 30
	want := []int{0, 4, 8, 12, 16}
	got := c.Fig6Bands()
	if len(got) != len(want) {
		t.Fatalf("paper-scale bands = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("paper-scale band %d = %d, want %d", i, got[i], want[i])
		}
	}
	// Fig 5 band at paper scale is 14 (2^14 <= d < 2^15).
	if b := c.Fig5Band(); b != 14 {
		t.Errorf("paper-scale Fig5Band = %d, want 14", b)
	}
}

func TestFig5BandQuickScale(t *testing.T) {
	c := QuickConfig() // NV = 2^14, sqrt exponent 7
	if got := c.Fig5Band(); got != 6 {
		t.Errorf("Fig5Band = %d, want 6 (one octave below sqrt(NV))", got)
	}
	if got := c.SqrtNVLog2(); got != 7 {
		t.Errorf("SqrtNVLog2 = %g, want 7", got)
	}
}

func TestRunProducesFullStudy(t *testing.T) {
	r := quickResult(t)
	cfg := r.Config
	if len(r.Study.Months) != cfg.Radiation.Months {
		t.Fatalf("months = %d, want %d", len(r.Study.Months), cfg.Radiation.Months)
	}
	if len(r.Study.Snapshots) != len(cfg.SnapshotTimes) {
		t.Fatalf("snapshots = %d, want %d", len(r.Study.Snapshots), len(cfg.SnapshotTimes))
	}
	for i, w := range r.Windows {
		if w.NV != cfg.NV {
			t.Errorf("window %d NV = %d, want %d", i, w.NV, cfg.NV)
		}
		if w.Matrix.Sum() != float64(cfg.NV) {
			t.Errorf("window %d matrix sum = %g", i, w.Matrix.Sum())
		}
		snap := r.Study.Snapshots[i]
		if snap.Sources.NRows() != w.Matrix.NRows() {
			t.Errorf("window %d: table rows %d != matrix rows %d",
				i, snap.Sources.NRows(), w.Matrix.NRows())
		}
	}
}

func TestTableIShape(t *testing.T) {
	r := quickResult(t)
	rows := r.TableI()
	if len(rows) != r.Config.Radiation.Months {
		t.Fatalf("Table I rows = %d", len(rows))
	}
	snapRows := 0
	for _, row := range rows {
		if row.GNSources <= 0 {
			t.Errorf("month %s has %d GN sources", row.GNStart, row.GNSources)
		}
		if row.GNDays < 28 || row.GNDays > 31 {
			t.Errorf("month %s duration %d days", row.GNStart, row.GNDays)
		}
		if row.CAIDAStart != "" {
			snapRows++
			if row.CAIDAPackets != r.Config.NV || row.CAIDASources <= 0 {
				t.Errorf("snapshot row malformed: %+v", row)
			}
		}
	}
	if snapRows != len(r.Study.Snapshots) {
		t.Errorf("snapshot rows = %d, want %d", snapRows, len(r.Study.Snapshots))
	}
}

func TestTableIIConsistent(t *testing.T) {
	r := quickResult(t)
	for i, q := range r.TableII() {
		if q.ValidPackets != float64(r.Config.NV) {
			t.Errorf("window %d valid packets = %g", i, q.ValidPackets)
		}
		if q.UniqueSources > q.UniqueLinks || q.UniqueDestinations > q.UniqueLinks {
			t.Errorf("window %d: unique sources/dests exceed links: %+v", i, q)
		}
		if q.MaxSourcePackets > q.ValidPackets || q.MaxLinkPackets > q.MaxSourcePackets {
			t.Errorf("window %d: max ordering violated: %+v", i, q)
		}
	}
}

// TestFig3ZipfMandelbrot checks the paper's first headline result: the
// telescope degree distribution is ZM with alpha in the observed range.
func TestFig3ZipfMandelbrot(t *testing.T) {
	r := quickResult(t)
	for _, s := range r.Fig3() {
		if s.Alpha < 1.3 || s.Alpha > 2.3 {
			t.Errorf("snapshot %s: fitted alpha = %g, want in [1.3, 2.3] (paper: 1.76)", s.Label, s.Alpha)
		}
		if s.Binned.Total == 0 {
			t.Errorf("snapshot %s: empty distribution", s.Label)
		}
	}
}

// TestFig4PeakCorrelation checks the second headline: bright sources are
// (nearly) always seen the same month, and faint-source visibility grows
// with log brightness.
func TestFig4PeakCorrelation(t *testing.T) {
	r := quickResult(t)
	series, err := r.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	brightLog2 := r.Config.SqrtNVLog2()
	for _, s := range series {
		var faintFracs []float64
		var faintBands []int
		for i, p := range s.Points {
			if p.Sources < 15 {
				continue // too noisy to assert on
			}
			if float64(p.Band) >= brightLog2 {
				if p.Fraction < 0.6 {
					t.Errorf("%s band 2^%d (bright): fraction %g, want > 0.6", s.Label, p.Band, p.Fraction)
				}
			} else {
				faintFracs = append(faintFracs, p.Fraction)
				faintBands = append(faintBands, p.Band)
			}
			if s.Model[i] < 0 || s.Model[i] > 1 {
				t.Errorf("model out of range: %g", s.Model[i])
			}
		}
		// Faint-band visibility must increase with brightness overall:
		// compare the mean of the lower half against the upper half.
		if len(faintFracs) >= 4 {
			h := len(faintFracs) / 2
			lo, hi := stats.Summarize(faintFracs[:h]), stats.Summarize(faintFracs[h:])
			if hi.Mean <= lo.Mean {
				t.Errorf("%s: faint visibility not increasing: low bands %v mean %g, high bands %v mean %g",
					s.Label, faintBands[:h], lo.Mean, faintBands[h:], hi.Mean)
			}
		}
	}
}

// TestFig5ModifiedCauchyWins checks the third headline: the temporal
// decay is better described by the modified Cauchy than by Gaussian or
// standard Cauchy.
func TestFig5ModifiedCauchyWins(t *testing.T) {
	r := quickResult(t)
	series, fits, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Fraction) != r.Config.Radiation.Months {
		t.Fatalf("series has %d points", len(series.Fraction))
	}
	mc := fits["modified-cauchy"].Residual
	if mc > fits["gaussian"].Residual+1e-9 {
		t.Errorf("modified Cauchy (%g) fits worse than Gaussian (%g)", mc, fits["gaussian"].Residual)
	}
	if mc > fits["cauchy"].Residual+1e-9 {
		t.Errorf("modified Cauchy (%g) fits worse than Cauchy (%g)", mc, fits["cauchy"].Residual)
	}
}

func TestFig6CurvesPeakNearSnapshot(t *testing.T) {
	r := quickResult(t)
	all, fits := r.Fig6()
	if len(all) == 0 {
		t.Fatal("no Fig6 series")
	}
	if len(all) != len(fits) {
		t.Fatal("series/fit count mismatch")
	}
	for _, s := range all {
		if s.Sources < 50 {
			continue
		}
		// Robust peak check: the mean correlation within ±1.5 months of
		// the snapshot must exceed the mean beyond 4 months (individual
		// bins are noisy at quick scale).
		var near, far []float64
		for i, v := range s.Fraction {
			switch a := math.Abs(s.Dt[i]); {
			case a <= 1.5:
				near = append(near, v)
			case a >= 4:
				far = append(far, v)
			}
		}
		if len(near) == 0 || len(far) == 0 {
			continue
		}
		nm, fm := stats.Summarize(near).Mean, stats.Summarize(far).Mean
		if nm <= fm {
			t.Errorf("%s band 2^%d (%d sources): near-peak mean %g <= far mean %g",
				s.Snapshot, s.Band, s.Sources, nm, fm)
		}
	}
}

// TestFig7AlphaNearOne checks the paper's "1 is a typical value of α".
func TestFig7AlphaNearOne(t *testing.T) {
	r := quickResult(t)
	sweeps := r.Fig7And8()
	var alphas []float64
	for _, sweep := range sweeps {
		for _, f := range sweep {
			if f.Sources >= 50 {
				alphas = append(alphas, f.Alpha)
			}
		}
	}
	if len(alphas) == 0 {
		t.Skip("no well-populated bands at quick scale")
	}
	s := stats.Summarize(alphas)
	if s.Mean < 0.4 || s.Mean > 1.8 {
		t.Errorf("mean fitted alpha = %g over %d bands, want near 1", s.Mean, s.N)
	}
}

// TestFig8DropRange checks the one-month drop magnitudes: the paper
// reports typical drops above 20%, rising toward ~50% at the dip.
func TestFig8DropRange(t *testing.T) {
	r := quickResult(t)
	var drops []float64
	for _, sweep := range r.Fig7And8() {
		for _, f := range sweep {
			if f.Sources >= 50 {
				drops = append(drops, f.Drop)
			}
		}
	}
	if len(drops) == 0 {
		t.Skip("no well-populated bands at quick scale")
	}
	s := stats.Summarize(drops)
	if s.Mean < 0.1 || s.Mean > 0.7 {
		t.Errorf("mean one-month drop = %g, want in [0.1, 0.7] (paper: >0.2)", s.Mean)
	}
}

func TestRunFailsWhenPopulationTooSmall(t *testing.T) {
	cfg := QuickConfig()
	cfg.Radiation.NumSources = 50
	cfg.NV = 1 << 20 // far more packets than 50 sources can emit
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err == nil {
		t.Error("undersized population produced a full window")
	}
}

// TestShardedStudyMatchesSerial asserts the engine-backed study is
// worker-count invariant: on a fixed seed, the Workers=1 serial oracle
// and a 4-shard run produce identical windows (NNZ, NRows, Table II
// quantities) and identical D4M source tables.
func TestShardedStudyMatchesSerial(t *testing.T) {
	cfg := QuickConfig()
	cfg.Radiation.NumSources = 3000
	cfg.NV = 1 << 12
	cfg.LeafSize = 1 << 8
	run := func(workers int) *Result {
		c := cfg
		c.Workers = workers
		p, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	serial, sharded := run(1), run(4)
	serialQ, shardedQ := serial.TableII(), sharded.TableII()
	for i := range serial.Windows {
		sw, pw := serial.Windows[i], sharded.Windows[i]
		if sw.Matrix.NNZ() != pw.Matrix.NNZ() {
			t.Errorf("window %d: NNZ %d vs %d", i, sw.Matrix.NNZ(), pw.Matrix.NNZ())
		}
		if sw.Matrix.NRows() != pw.Matrix.NRows() {
			t.Errorf("window %d: NRows %d vs %d", i, sw.Matrix.NRows(), pw.Matrix.NRows())
		}
		if serialQ[i] != shardedQ[i] {
			t.Errorf("window %d: Table II quantities differ:\nserial  %+v\nsharded %+v", i, serialQ[i], shardedQ[i])
		}
		ss, ps := serial.Study.Snapshots[i].Sources, sharded.Study.Snapshots[i].Sources
		if ss.NRows() != ps.NRows() {
			t.Errorf("window %d: source tables differ: %d vs %d rows", i, ss.NRows(), ps.NRows())
		}
	}
}

// TestRunContextCancel asserts a study can be abandoned mid-window.
func TestRunContextCancel(t *testing.T) {
	cfg := QuickConfig()
	cfg.Workers = 2
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunContext(ctx); err == nil {
		t.Error("cancelled study succeeded")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := QuickConfig()
	cfg.Radiation.NumSources = 3000
	cfg.NV = 1 << 12
	run := func() *Result {
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	for i := range a.Windows {
		if a.Windows[i].Matrix.NNZ() != b.Windows[i].Matrix.NNZ() {
			t.Errorf("window %d NNZ differs between runs", i)
		}
	}
	for i := range a.Study.Months {
		if a.Study.Months[i].Table.NRows() != b.Study.Months[i].Table.NRows() {
			t.Errorf("month %d sources differ between runs", i)
		}
	}
}
