package core

// cluster_store_test.go proves the replicated store path is a no-op
// for the science even under failure: a study routed through a 3-node
// R=2 cluster with one replica silently blackholed mid-run must
// produce every Table I-II / Fig 3-8 artifact byte-identical to the
// in-memory study, while the Result records that the run was degraded.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/report"
	"repro/internal/tripled"
)

// renderAllArtifacts serializes every artifact in both encodings — the
// full byte-parity surface.
func renderAllArtifacts(t *testing.T, r *Result) string {
	t.Helper()
	g := r.Report()
	var out bytes.Buffer
	for _, id := range report.All() {
		fmt.Fprintf(&out, "== %s ==\n", id)
		if err := report.WriteTSV(&out, g, id); err != nil {
			t.Fatalf("render %s tsv: %v", id, err)
		}
		if err := report.WriteJSON(&out, g, id); err != nil {
			t.Fatalf("render %s json: %v", id, err)
		}
	}
	return out.String()
}

func TestClusterStudyBlackholedReplicaMatchesInMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick studies")
	}
	mem := quickResult(t)

	// Three nodes, each behind a chaos proxy; node 1 silently stops
	// answering once 50 KB of table traffic have flowed — early in the
	// study, so most of it runs degraded. The cut point is byte-counted
	// rather than timed, so where the study is interrupted is stable.
	var addrs [3]string
	var proxies [3]*faultinject.Proxy
	for i := range addrs {
		srv, err := tripled.Serve(tripled.NewStore(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		p, err := faultinject.New(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		proxies[i] = p
		addrs[i] = p.Addr()
	}
	proxies[1].BlackholeAfterBytes(50_000)

	cfg := QuickConfig()
	cfg.StoreAddr = fmt.Sprintf("%s,%s,%s;replicas=2;io_timeout=300ms;retries=2",
		addrs[0], addrs[1], addrs[2])
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := p.Run()
	if err != nil {
		t.Fatalf("cluster study with blackholed replica: %v", err)
	}
	t.Logf("degraded cluster study took %v", time.Since(start))

	// The degradation must be recorded, not hidden.
	if !res.StoreHealth.Degraded {
		t.Error("study rode out a blackholed replica but StoreHealth.Degraded is false")
	}
	found := false
	for _, addr := range res.StoreHealth.DownNodes {
		if addr == addrs[1] {
			found = true
		}
	}
	if !found {
		t.Errorf("StoreHealth.DownNodes = %v, want it to include %s", res.StoreHealth.DownNodes, addrs[1])
	}

	// And the science must not have noticed: every artifact byte-equal.
	if got, want := renderAllArtifacts(t, res), renderAllArtifacts(t, mem); got != want {
		t.Error("artifacts differ between degraded-cluster and in-memory runs")
	}

	// The in-memory baseline ran clean.
	if mem.StoreHealth.Degraded || len(mem.StoreHealth.DownNodes) != 0 {
		t.Errorf("in-memory study reports store health %+v", mem.StoreHealth)
	}
}

// TestClusterStudyCleanMatchesInMemory is the no-fault control: the
// multi-address StoreAddr spec alone must not perturb artifacts.
func TestClusterStudyCleanMatchesInMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick studies")
	}
	mem := quickResult(t)

	var addrs [3]string
	for i := range addrs {
		srv, err := tripled.Serve(tripled.NewStore(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs[i] = srv.Addr()
	}
	cfg := QuickConfig()
	cfg.StoreAddr = fmt.Sprintf("%s,%s,%s;replicas=2", addrs[0], addrs[1], addrs[2])
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.StoreHealth.Degraded {
		t.Errorf("clean cluster run reports degraded: %+v", res.StoreHealth)
	}
	if got, want := renderAllArtifacts(t, res), renderAllArtifacts(t, mem); got != want {
		t.Error("artifacts differ between clean-cluster and in-memory runs")
	}
}
