package core

// store.go routes Config.StoreAddr to the right transport: one
// address dials the classic single-connection client, a multi-address
// spec ("a,b,c;replicas=2") builds the replicated consistent-hash
// cluster client. Both satisfy tripled.Conn, so the pipeline,
// scheduler, and daemon are transport-blind — and studies that ride
// out a replica failure record the degradation on the Result instead
// of hiding it.

import (
	"sort"
	"sync"

	"repro/internal/tripled"
	"repro/internal/tripled/cluster"
)

// DialStore opens the store connection named by a Config.StoreAddr
// spec. The error path returns an explicit nil interface, so callers'
// `db != nil` checks stay honest.
func DialStore(spec string) (tripled.Conn, error) {
	if cluster.IsClusterSpec(spec) {
		c, err := cluster.Dial(spec)
		if err != nil {
			return nil, err
		}
		return c, nil
	}
	c, err := tripled.Dial(spec)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// StoreHealth is the degraded-mode accounting of a store-backed study:
// the fail-stop cluster view accumulated across every connection the
// study opened. The zero value means a healthy (or storeless /
// single-server) run.
type StoreHealth struct {
	Degraded  bool     // at least one replica was lost mid-study
	DownNodes []string // addresses marked down, sorted, deduplicated
	Failovers int      // reads served by a non-primary replica
}

// storeHealthOf extracts the cluster view from a store connection;
// single-server connections have none.
func storeHealthOf(db tripled.Conn) (cluster.Health, bool) {
	if cc, ok := db.(*cluster.Client); ok {
		return cc.Health(), true
	}
	return cluster.Health{}, false
}

// storeHealthAgg merges per-worker cluster views into one StoreHealth:
// each parallel study worker dials its own client (the client is not
// concurrency-safe), so each holds its own fail-stop view, and the
// study's verdict is their union.
type storeHealthAgg struct {
	mu        sync.Mutex
	down      map[string]bool
	failovers int
}

func (a *storeHealthAgg) add(h cluster.Health) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.down == nil {
		a.down = make(map[string]bool)
	}
	for _, addr := range h.Down {
		a.down[addr] = true
	}
	a.failovers += h.Failovers
}

func (a *storeHealthAgg) result() StoreHealth {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := StoreHealth{Failovers: a.failovers}
	for addr := range a.down {
		out.DownNodes = append(out.DownNodes, addr)
	}
	sort.Strings(out.DownNodes)
	out.Degraded = len(out.DownNodes) > 0
	return out
}
