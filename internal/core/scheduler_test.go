package core

// scheduler_test.go proves the study-level scheduler is a pure
// performance transform: for any StudyWorkers, every emitted artifact —
// Table I, Table II, Figures 3 through 8 — is byte-identical to the
// StudyWorkers=1 serial oracle, in memory and through the tripled
// store. Run under -race this is also the scheduler's concurrency
// soundness proof. TestStudySpeedup is the wall-clock gate, skipped
// with an annotation on runners without enough CPUs to measure it.

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/tripled"
)

// schedulerConfig is a seconds-scale study with enough months, bands,
// and windows to light up every artifact.
func schedulerConfig() Config {
	cfg := QuickConfig()
	cfg.Radiation.NumSources = 3000
	cfg.NV = 1 << 12
	cfg.LeafSize = 1 << 8
	cfg.Workers = 2 // engine-level sharding composes with study-level fan-out
	return cfg
}

// renderAll serializes every artifact the pipeline emits, so two runs
// can be compared byte for byte.
func renderAll(t *testing.T, r *Result) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "TableI: %+v\n", r.TableI())
	fmt.Fprintf(&b, "TableII: %+v\n", r.TableII())
	for _, s := range r.Fig3() {
		fmt.Fprintf(&b, "Fig3 %s: %+v alpha=%v delta=%v res=%v\n", s.Label, s.Binned, s.Alpha, s.Delta, s.Residual)
	}
	fig4, err := r.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "Fig4: %+v\n", fig4)
	series, fits, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "Fig5: %+v\n", series)
	for _, name := range []string{"modified-cauchy", "cauchy", "gaussian"} {
		fmt.Fprintf(&b, "Fig5 fit %s: %+v\n", name, fits[name])
	}
	all, f6fits := r.Fig6()
	fmt.Fprintf(&b, "Fig6: %+v\nFig6 fits: %+v\n", all, f6fits)
	fmt.Fprintf(&b, "Fig7And8: %+v\n", r.Fig7And8())
	// Windows and farm state, beyond what the tables above embed.
	for i, w := range r.Windows {
		fmt.Fprintf(&b, "Window %d: NV=%d Dropped=%d NNZ=%d NRows=%d span=%v\n",
			i, w.NV, w.Dropped, w.Matrix.NNZ(), w.Matrix.NRows(), w.Duration())
	}
	for _, m := range r.Farm.Months() {
		fmt.Fprintf(&b, "Farm month %s: rows=%d nnz=%d\n", m.Label, m.Table.NRows(), m.Table.NNZ())
	}
	return b.String()
}

func runStudy(t *testing.T, cfg Config) *Result {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// diffRender fails with the first differing line instead of dumping two
// multi-kilobyte artifacts blobs.
func diffRender(t *testing.T, name, serial, parallel string) {
	t.Helper()
	if serial == parallel {
		return
	}
	sl, pl := strings.Split(serial, "\n"), strings.Split(parallel, "\n")
	for i := range sl {
		if i >= len(pl) || sl[i] != pl[i] {
			pline := "<missing>"
			if i < len(pl) {
				pline = pl[i]
			}
			t.Fatalf("%s: artifacts diverge at line %d:\nserial:   %s\nparallel: %s", name, i+1, sl[i], pline)
		}
	}
	t.Fatalf("%s: parallel render has %d extra lines", name, len(pl)-len(sl))
}

// TestParallelStudyMatchesSerialOracle is satellite coverage for the
// scheduler's contract: StudyWorkers=4 reproduces the StudyWorkers=1
// oracle exactly, across every Table and Figure emitter.
func TestParallelStudyMatchesSerialOracle(t *testing.T) {
	cfg := schedulerConfig()
	cfg.StudyWorkers = 1
	serial := renderAll(t, runStudy(t, cfg))
	cfg.StudyWorkers = 4
	parallel := renderAll(t, runStudy(t, cfg))
	diffRender(t, "in-memory", serial, parallel)
}

// TestParallelStoreBackedStudyMatchesSerial runs the same oracle diff
// with every table round-tripping through a tripled store: the
// scheduler's per-worker clients must publish and fetch exactly what
// the serial path's single client does.
func TestParallelStoreBackedStudyMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("two store-backed studies")
	}
	run := func(studyWorkers int) string {
		srv, err := tripled.Serve(tripled.NewStore(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		cfg := schedulerConfig()
		cfg.StudyWorkers = studyWorkers
		cfg.StoreAddr = srv.Addr()
		return renderAll(t, runStudy(t, cfg))
	}
	diffRender(t, "store-backed", run(1), run(4))
}

// TestParallelStudyWorkerSweep pins worker-count invariance beyond the
// single 1-vs-4 pair: 2, 3, and 8 workers (more workers than jobs in
// the snapshot phase, odd counts, and a 2-worker minimum) all match.
func TestParallelStudyWorkerSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("several full studies")
	}
	cfg := schedulerConfig()
	cfg.Radiation.NumSources = 2000
	cfg.NV = 1 << 11
	cfg.StudyWorkers = 1
	want := renderAll(t, runStudy(t, cfg))
	for _, workers := range []int{2, 3, 8} {
		cfg.StudyWorkers = workers
		diffRender(t, fmt.Sprintf("workers=%d", workers), want, renderAll(t, runStudy(t, cfg)))
	}
}

// TestParallelStudySharesAnonCache pins the scheduler's shared
// CryptoPAN cache: every per-worker Telescope rides the pipeline's one
// Cached, so after a parallel run the pipeline cache holds the study's
// full mapping (same unique-address count the serial oracle memoizes)
// instead of leaving it cold while N private per-worker memos each
// re-derive overlapping mappings.
func TestParallelStudySharesAnonCache(t *testing.T) {
	lenAfter := func(studyWorkers int) int {
		cfg := schedulerConfig()
		cfg.Radiation.NumSources = 2000
		cfg.NV = 1 << 11
		cfg.StudyWorkers = studyWorkers
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(); err != nil {
			t.Fatal(err)
		}
		return p.tel.Anonymizer().Len()
	}
	serial := lenAfter(1)
	if serial == 0 {
		t.Fatal("serial run left the pipeline anonymizer cache empty")
	}
	if parallel := lenAfter(4); parallel != serial {
		t.Errorf("pipeline cache holds %d addresses after parallel run, want %d (serial oracle) — workers are not sharing the cache", parallel, serial)
	}
}

// TestStudySpeedup is the acceptance gate: at >= 4 study workers the
// parallel scheduler must finish the whole study at least 2x faster
// than the serial oracle, with byte-identical artifacts. On runners
// without at least 4 CPUs the wall-clock assertion is meaningless (the
// fan-out just interleaves on one core), so the gate self-skips with an
// annotation — the same policy the hot-path benchmark report applies
// to its multi-worker speedup metrics.
func TestStudySpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("two timed full studies")
	}
	if raceEnabled {
		t.Skip("race detector perturbs timing")
	}
	if cpus := runtime.NumCPU(); cpus < 4 {
		t.Skipf("whole-study speedup needs >= 4 CPUs to measure; this runner has %d "+
			"(GOMAXPROCS=%d) — wall-clock parallel assertions are annotated and skipped, "+
			"correctness is still proven by TestParallelStudyMatchesSerialOracle",
			cpus, runtime.GOMAXPROCS(0))
	}
	cfg := QuickConfig()
	cfg.Workers = 1 // isolate study-level fan-out from engine-level sharding
	// Eight snapshots instead of the paper's five: snapshot captures
	// dominate the wall clock, and 5 jobs on 4 workers cap the ideal
	// speedup at ~2.5x — too close to the 2x bar for a shared CI
	// runner. At 8 jobs the critical path is 2 of 8 snapshot
	// durations (ideal ~4x), so passing 2x needs only ~50% parallel
	// efficiency.
	cfg.SnapshotTimes = nil
	for m := 2; m < 10; m++ {
		cfg.SnapshotTimes = append(cfg.SnapshotTimes, cfg.StudyStart.AddDate(0, m, 14))
	}

	cfg.StudyWorkers = 1
	p1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	startSerial := time.Now()
	serialRes, err := p1.Run()
	if err != nil {
		t.Fatal(err)
	}
	serialWall := time.Since(startSerial)

	cfg.StudyWorkers = 4
	p4, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	startPar := time.Now()
	parRes, err := p4.Run()
	if err != nil {
		t.Fatal(err)
	}
	parWall := time.Since(startPar)

	diffRender(t, "speedup-parity", renderAll(t, serialRes), renderAll(t, parRes))
	speedup := float64(serialWall) / float64(parWall)
	t.Logf("whole study: serial %v, parallel(4) %v, speedup %.2fx", serialWall, parWall, speedup)
	if speedup < 2 {
		t.Errorf("whole-study speedup %.2fx < 2x gate (serial %v, parallel %v)", speedup, serialWall, parWall)
	}
}
