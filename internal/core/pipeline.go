// Package core wires the full reproduction pipeline together: a
// radiation population observed simultaneously by a darkspace telescope
// (constant-packet windows, anonymized hypersparse matrices) and a
// honeyfarm outpost (monthly enriched D4M tables), followed by the
// paper's correlation analysis. Each figure and table of the paper has a
// dedicated emitter on Result — thin memoized wrappers over the
// internal/report artifact graph.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/correlate"
	"repro/internal/honeyfarm"
	"repro/internal/netquant"
	"repro/internal/radiation"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/telescope"
	"repro/internal/tripled"
)

// Config parameterizes one full study.
type Config struct {
	Radiation radiation.Config

	NV       int // telescope window size in valid packets
	LeafSize int // hierarchical leaf size (paper: 2^17)
	Workers  int // engine shard workers; 1 = serial oracle, 0 = GOMAXPROCS
	Batch    int // packets per engine batch; 0 = LeafSize

	// StudyWorkers is the study-level fan-out: how many goroutines
	// ingest honeyfarm months and capture telescope snapshots
	// concurrently. 1 runs the strictly serial path retained as the
	// correctness oracle; 0 uses GOMAXPROCS. Any value produces
	// byte-identical artifacts — results are assembled by index, and
	// every month and snapshot is deterministic in isolation.
	StudyWorkers int

	// ReportWorkers is the report-graph fan-out: how many of
	// fig7_fig8's per-(snapshot, band) GridSearch2 fits run
	// concurrently on the shared worker pool. 1 runs the historical
	// strictly serial sweep retained as the correctness oracle; 0 uses
	// GOMAXPROCS. Any value renders byte-identical artifacts
	// (report.TestReportWorkerSweep).
	ReportWorkers int

	Sensors        int    // honeyfarm sensor count
	AnonPassphrase string // CryptoPAN key derivation

	// StoreAddr, when non-empty, routes the correlation tables through a
	// tripled server at that address (the paper's Accumulo role): every
	// honeyfarm month and telescope source table is published with the
	// batched pipeline path and read back from the store, so the study
	// correlates what the database holds, not what is in memory.
	StoreAddr string

	StudyStart    time.Time   // first honeyfarm month (paper: 2020-02-01)
	SnapshotTimes []time.Time // telescope sample times (paper: five dates in 2020)

	MinBandSources int // bands below this population are skipped in fits
}

// paperSnapshotTimes are the five CAIDA sample times of Table I.
func paperSnapshotTimes() []time.Time {
	return []time.Time{
		time.Date(2020, 6, 17, 12, 0, 0, 0, time.UTC),
		time.Date(2020, 7, 29, 0, 0, 0, 0, time.UTC),
		time.Date(2020, 9, 16, 12, 0, 0, 0, time.UTC),
		time.Date(2020, 10, 28, 0, 0, 0, 0, time.UTC),
		time.Date(2020, 12, 16, 12, 0, 0, 0, time.UTC),
	}
}

// DefaultConfig is the full laptop-scale study: 2^20-packet windows over
// a 200k-source population, 15 honeyfarm months, the paper's five
// snapshot dates.
func DefaultConfig() Config {
	return Config{
		Radiation:      radiation.DefaultConfig(),
		NV:             1 << 20,
		LeafSize:       1 << 14,
		Sensors:        300,
		AnonPassphrase: "observatory-study",
		StudyStart:     time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC),
		SnapshotTimes:  paperSnapshotTimes(),
		MinBandSources: 25,
	}
}

// QuickConfig is a seconds-scale configuration for tests and examples:
// 2^14-packet windows over a 10k-source population. The paper's laws
// still emerge, with more statistical noise.
func QuickConfig() Config {
	c := DefaultConfig()
	c.NV = 1 << 14
	c.LeafSize = 1 << 10
	c.Radiation.NumSources = 10000
	c.Radiation.ZM = stats.PaperZM(1 << 12)
	c.Radiation.BrightLog2 = 7 // log2(sqrt(2^14))
	c.MinBandSources = 10
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error { return c.validate(false) }

// validate checks the configuration; resident mode (the study daemon)
// relaxes exactly one rule — SnapshotTimes may be empty, because a
// resident study starts with no snapshots and grows them over the
// ingest API.
func (c Config) validate(resident bool) error {
	if err := c.Radiation.Validate(); err != nil {
		return err
	}
	switch {
	case c.NV <= 0:
		return fmt.Errorf("core: NV must be positive, got %d", c.NV)
	case c.LeafSize <= 0:
		return fmt.Errorf("core: LeafSize must be positive, got %d", c.LeafSize)
	case c.Sensors <= 0:
		return fmt.Errorf("core: Sensors must be positive, got %d", c.Sensors)
	case !resident && len(c.SnapshotTimes) == 0:
		return fmt.Errorf("core: at least one snapshot time required")
	case c.StudyStart.IsZero():
		return fmt.Errorf("core: StudyStart required")
	}
	for _, ts := range c.SnapshotTimes {
		m := c.monthOf(ts)
		if m < 0 || m >= float64(c.Radiation.Months) {
			return fmt.Errorf("core: snapshot %v falls outside the %d-month study", ts, c.Radiation.Months)
		}
	}
	return nil
}

// monthOf converts a timestamp to a fractional month index from
// StudyStart (30.44-day months, the mean Gregorian length).
func (c Config) monthOf(ts time.Time) float64 {
	return ts.Sub(c.StudyStart).Hours() / 24 / 30.44
}

// MonthOf is the exported fractional-month conversion, used by the
// resident daemon to validate ingested snapshot times against the
// study span the way Validate does for batch configurations.
func (c Config) MonthOf(ts time.Time) float64 { return c.monthOf(ts) }

// SqrtNVLog2 returns log2(sqrt(NV)), the paper's brightness threshold
// exponent (15 for NV = 2^30).
func (c Config) SqrtNVLog2() float64 { return math.Log2(float64(c.NV)) / 2 }

// Fig6Bands returns the brightness bands used for Figure 6, scaled to
// this study's NV the way the paper's bands {2^0, 2^4, 2^8, 2^12, 2^16}
// scale to sqrt(2^30) = 2^15.
func (c Config) Fig6Bands() []int {
	s := c.SqrtNVLog2() / 15.0
	out := make([]int, 0, 5)
	seen := make(map[int]bool)
	for _, b := range []float64{0, 4, 8, 12, 16} {
		k := int(math.Round(b * s))
		if !seen[k] {
			out = append(out, k)
			seen[k] = true
		}
	}
	return out
}

// Fig5Band returns the band used in Figure 5 (2^14 <= d < 2^15 in the
// paper, i.e. one octave below sqrt(NV)).
func (c Config) Fig5Band() int {
	return int(math.Round(c.SqrtNVLog2())) - 1
}

// Pipeline is a configured, reusable study runner.
type Pipeline struct {
	cfg  Config
	pop  *radiation.Population
	tel  *telescope.Telescope
	farm *honeyfarm.Honeyfarm
}

// New validates the configuration and builds the population, telescope,
// and honeyfarm.
func New(cfg Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pop, err := radiation.NewPopulation(cfg.Radiation)
	if err != nil {
		return nil, err
	}
	// Capture runs through the engine, which takes cfg.Workers directly;
	// the telescope only needs the leaf size here.
	tel := telescope.New(cfg.Radiation.Darkspace, cfg.AnonPassphrase,
		telescope.WithLeafSize(cfg.LeafSize))
	farm := honeyfarm.New(cfg.Sensors, cfg.Radiation.Seed+1)
	return &Pipeline{cfg: cfg, pop: pop, tel: tel, farm: farm}, nil
}

// NewResident builds a Pipeline for a long-lived incremental owner
// (the study daemon): identical to New except the configuration may
// start with no snapshot times — a resident study begins empty and
// grows months and snapshots one IngestMonth / IngestSnapshot call at
// a time.
func NewResident(cfg Config) (*Pipeline, error) {
	if err := cfg.validate(true); err != nil {
		return nil, err
	}
	pop, err := radiation.NewPopulation(cfg.Radiation)
	if err != nil {
		return nil, err
	}
	tel := telescope.New(cfg.Radiation.Darkspace, cfg.AnonPassphrase,
		telescope.WithLeafSize(cfg.LeafSize))
	farm := honeyfarm.New(cfg.Sensors, cfg.Radiation.Seed+1)
	return &Pipeline{cfg: cfg, pop: pop, tel: tel, farm: farm}, nil
}

// Config returns the pipeline configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Population exposes the generator (ground truth for validation).
func (p *Pipeline) Population() *radiation.Population { return p.pop }

// Result bundles everything a study produces.
type Result struct {
	Config  Config
	Study   correlate.Study
	Windows []*telescope.Window // one anonymized window per snapshot
	Farm    *honeyfarm.Honeyfarm

	// StoreHealth records cluster degradation observed during a
	// store-backed study: which replicas were lost and how many reads
	// failed over. Artifacts stay byte-identical through a tolerated
	// failure (that is the cluster's contract); this field is how the
	// study reports that the run leaned on it.
	StoreHealth StoreHealth

	frozenOnce sync.Once
	frozen     *correlate.Frozen

	reportOnce sync.Once
	report     *report.Graph
}

// Frozen returns the sorted-key compilation of the study's correlation
// tables (interned row IDs, per-band sorted sets), built once on first
// use and shared by every Figure 4-8 emitter. The build fans out across
// ReportWorkers goroutines (FreezeParallel; 1 keeps it on the calling
// goroutine). Safe for concurrent use.
func (r *Result) Frozen() *correlate.Frozen {
	r.frozenOnce.Do(func() { r.frozen = correlate.FreezeParallel(r.Study, r.Config.ReportWorkers) })
	return r.frozen
}

// Report returns the study's artifact graph: every Table and Figure as
// a memoized job with declared dependencies, plus the unified TSV/JSON
// renderer (report.WriteTSV / report.WriteJSON). Built once on first
// use; safe for concurrent use. The Table/Fig methods below are thin
// wrappers over it.
func (r *Result) Report() *report.Graph {
	r.reportOnce.Do(func() { r.report = r.ReportWith(r.Config.ReportWorkers) })
	return r.report
}

// ReportWith builds a fresh, unmemoized artifact graph over this
// result with an explicit fit fan-out. Normal callers want Report();
// this entry point exists for measurement (benchreport's fit_wall
// phase) and worker-sweep determinism tests, where every call must
// recompute.
func (r *Result) ReportWith(workers int) *report.Graph {
	return report.New(report.Input{
		Study:   r.Study,
		Windows: r.Windows,
		Frozen:  r.Frozen,
		Params: report.Params{
			StudyStart:     r.Config.StudyStart,
			NV:             r.Config.NV,
			Fig5Band:       r.Config.Fig5Band(),
			Fig6Bands:      r.Config.Fig6Bands(),
			MinBandSources: r.Config.MinBandSources,
			Workers:        workers,
		},
	})
}

// Run executes the full study with background context; see RunContext.
func (p *Pipeline) Run() (*Result, error) { return p.RunContext(context.Background()) }

// RunContext executes the full study: 15 honeyfarm months plus one
// telescope window per configured snapshot time captured through the
// sharded streaming engine (Config.Workers shards per window), reduced
// to D4M source tables. With Config.StudyWorkers != 1, months and
// snapshots themselves fan out across goroutines (see scheduler.go);
// StudyWorkers=1 runs this strictly serial path, retained as the
// correctness oracle the scheduler is diffed against. With
// Config.StoreAddr set, every table additionally round-trips through
// the tripled service before correlation. Cancelling ctx abandons the
// study mid-window.
func (p *Pipeline) RunContext(ctx context.Context) (*Result, error) {
	workers := p.cfg.StudyWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return p.runSerial(ctx)
	}
	return p.runParallel(ctx, workers)
}

// runSerial is the StudyWorkers=1 degenerate path: months then
// snapshots, one at a time, on the caller's goroutine. Each iteration
// is one incremental unit — the same IngestMonth / IngestSnapshot the
// resident daemon calls — so batch and incremental results are
// identical by construction.
func (p *Pipeline) runSerial(ctx context.Context) (*Result, error) {
	res := &Result{Config: p.cfg, Farm: p.farm}

	var db tripled.Conn
	if p.cfg.StoreAddr != "" {
		conn, err := DialStore(p.cfg.StoreAddr)
		if err != nil {
			return nil, fmt.Errorf("core: store %s: %w", p.cfg.StoreAddr, err)
		}
		db = conn
		defer db.Close()
	}

	for m := 0; m < p.cfg.Radiation.Months; m++ {
		md, err := p.IngestMonth(db, m)
		if err != nil {
			return nil, err
		}
		res.Study.Months = append(res.Study.Months, md)
	}

	for _, ts := range p.cfg.SnapshotTimes {
		w, snap, err := p.IngestSnapshot(ctx, db, ts)
		if err != nil {
			return nil, err
		}
		res.Windows = append(res.Windows, w)
		res.Study.Snapshots = append(res.Study.Snapshots, snap)
	}
	if h, ok := storeHealthOf(db); ok {
		agg := &storeHealthAgg{}
		agg.add(h)
		res.StoreHealth = agg.result()
	}
	return res, nil
}

// IngestMonth is one incremental unit of study growth: build (or
// reuse) honeyfarm month m, optionally round-tripping the table
// through the store, exactly as one iteration of the serial batch
// loop. db may be nil for an in-memory study. Safe to call again for
// an already-ingested month — the farm's copy is reused and
// re-published idempotently (the recovery path relies on this). Not
// safe for concurrent use; the daemon serializes ingest on one
// goroutine, as runSerial does.
func (p *Pipeline) IngestMonth(db tripled.Conn, m int) (correlate.MonthData, error) {
	start := p.cfg.StudyStart.AddDate(0, m, 0)
	label := start.Format("2006-01")
	mw := p.farm.Month(label)
	if mw == nil {
		mw = p.farm.IngestMonth(label, start, p.pop.HoneyfarmMonth(m, start))
	}
	table := mw.Table
	if db != nil {
		if err := mw.Publish(db); err != nil {
			return correlate.MonthData{}, fmt.Errorf("core: publish month %s: %w", label, err)
		}
		var err error
		if table, err = honeyfarm.FetchMonthTable(db, label); err != nil {
			return correlate.MonthData{}, fmt.Errorf("core: fetch month %s: %w", label, err)
		}
	}
	return correlate.MonthData{Label: label, Month: m, Table: table}, nil
}

// IngestSnapshot is the other incremental unit: capture one telescope
// window at ts on the pipeline's telescope and reduce it to the D4M
// source table, exactly as one iteration of the serial batch loop. db
// may be nil for an in-memory study. Not safe for concurrent use (one
// telescope runs one capture at a time).
func (p *Pipeline) IngestSnapshot(ctx context.Context, db tripled.Conn, ts time.Time) (*telescope.Window, correlate.Snapshot, error) {
	monthFrac := p.cfg.monthOf(ts)
	stream := p.pop.TelescopeStream(monthFrac, ts)
	w, err := p.tel.CaptureWindowEngine(ctx, stream, p.cfg.NV, p.cfg.Workers, p.cfg.Batch)
	if err != nil {
		return nil, correlate.Snapshot{}, fmt.Errorf("core: snapshot %v: %w", ts, err)
	}
	if w.NV < p.cfg.NV {
		return nil, correlate.Snapshot{}, fmt.Errorf("core: snapshot %v: stream exhausted at %d of %d packets (population too small for NV)",
			ts, w.NV, p.cfg.NV)
	}
	label := ts.Format("20060102-150405")
	sources := p.tel.SourceTable(w)
	if db != nil {
		if err := p.tel.PublishSourceTable(db, label, w); err != nil {
			return nil, correlate.Snapshot{}, fmt.Errorf("core: publish snapshot %s: %w", label, err)
		}
		if sources, err = telescope.FetchSourceTable(db, label); err != nil {
			return nil, correlate.Snapshot{}, fmt.Errorf("core: fetch snapshot %s: %w", label, err)
		}
	}
	return w, correlate.Snapshot{
		Label:   label,
		Month:   monthFrac,
		NV:      p.cfg.NV,
		Sources: sources,
	}, nil
}

// TableIRow is one line of the paper's Table I dataset inventory.
type TableIRow = report.TableIRow

// Fig3Series is one snapshot's degree distribution with its
// Zipf-Mandelbrot fit.
type Fig3Series = report.Fig3Series

// Fig4Series is one snapshot's peak-correlation curve with the paper's
// logarithmic model.
type Fig4Series = report.Fig4Series

// The artifact emitters below are thin wrappers over the report graph:
// each computes through its memoized job on first use and returns the
// shared value on every later call (treat the results as read-only).
// The compute bodies — unchanged from when they lived here — are in
// report/artifacts.go.

// TableI reproduces the dataset inventory: one row per honeyfarm month,
// with telescope columns filled on snapshot months.
func (r *Result) TableI() []TableIRow { return r.Report().TableI() }

// TableII computes the network quantities of each snapshot's anonymized
// matrix.
func (r *Result) TableII() []netquant.Quantities { return r.Report().TableII() }

// Fig3 computes the source-packet degree distribution and ZM fit for
// every snapshot (the paper's Figure 3).
func (r *Result) Fig3() []Fig3Series { return r.Report().Fig3() }

// Fig4 computes the same-month correlation by brightness for every
// snapshot, on the frozen sorted-key kernel.
func (r *Result) Fig4() ([]Fig4Series, error) { return r.Report().Fig4() }

// Fig5 computes the temporal correlation of the first snapshot's
// Fig5Band sources with all three model fits (the paper's Figure 5).
func (r *Result) Fig5() (correlate.Series, map[string]stats.TemporalFit, error) {
	return r.Report().Fig5()
}

// Fig6 computes the temporal correlation curves for every snapshot and
// every Fig6 band, with modified-Cauchy fits. Bands a snapshot lacks are
// skipped.
func (r *Result) Fig6() ([]correlate.Series, []stats.TemporalFit) { return r.Report().Fig6() }

// Fig7And8 computes the per-band modified-Cauchy parameter sweeps for
// every snapshot: Alpha per band (Figure 7) and one-month drop 1/(β+1)
// per band (Figure 8). With Config.ReportWorkers != 1 the fits fan out
// per (snapshot, band) on the shared worker pool, byte-identical to the
// serial sweep.
func (r *Result) Fig7And8() [][]correlate.BandFit { return r.Report().Fig7And8() }
