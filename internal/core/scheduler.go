package core

// scheduler.go is the study-level parallel scheduler: with
// Config.StudyWorkers != 1 the honeyfarm months and telescope snapshots
// — mutually independent, deterministic units of work — fan out across
// the shared worker pool (internal/pool, also ridden by the report
// graph's per-band model fits) instead of running strictly one after
// another.
//
// The design rests on three ownership rules:
//
//   - The radiation Population is immutable after construction, so any
//     number of workers may synthesize months and streams from it
//     concurrently.
//   - Shared mutable state is either concurrency-safe or never touched
//     from the pool. Months are built with honeyfarm.BuildMonth (reads
//     only the sensor set) and attached to the farm in month order
//     after the pool joins; each snapshot worker captures through its
//     own Telescope but all of them share the pipeline's one CryptoPAN
//     cache (cryptopan.Cached is sharded-lock concurrency-safe, the
//     mapping is a pure function of the passphrase, and sharing keeps
//     Reverse() a single complete deanonymization table instead of N
//     cold per-worker memos); each worker with store traffic dials its
//     own tripled client (the client is single-connection, not
//     concurrency-safe).
//   - Results land in index-addressed slots and are assembled in order,
//     so the Result is byte-identical to the runSerial oracle — proven
//     by TestParallelStudyMatchesSerialOracle across every emitter.

import (
	"context"
	"fmt"

	"repro/internal/correlate"
	"repro/internal/honeyfarm"
	"repro/internal/pool"
	"repro/internal/telescope"
	"repro/internal/tripled"
)

// runParallel executes the study with the given fan-out. workers is
// always >= 2 here; RunContext routes 1 to runSerial. Job indices
// 0..nSnaps-1 are the snapshots and the rest the months, so the pool's
// in-order hand-out schedules snapshot jobs first: windows dominate
// the wall clock, and starting them first keeps the pool saturated
// while the cheaper month builds fill the gaps.
func (p *Pipeline) runParallel(ctx context.Context, workers int) (*Result, error) {
	res := &Result{Config: p.cfg, Farm: p.farm}

	nMonths := p.cfg.Radiation.Months
	nSnaps := len(p.cfg.SnapshotTimes)
	monthData := make([]correlate.MonthData, nMonths)
	built := make([]*honeyfarm.MonthWindow, nMonths) // nil where the farm already held the month
	windows := make([]*telescope.Window, nSnaps)
	snapData := make([]correlate.Snapshot, nSnaps)

	health := &storeHealthAgg{}
	err := pool.EachWorker(ctx, workers, nSnaps+nMonths,
		func() *studyWorker { return &studyWorker{p: p, health: health} },
		(*studyWorker).close,
		func(ctx context.Context, w *studyWorker, job int) error {
			var err error
			if job < nSnaps {
				windows[job], snapData[job], err = w.runSnapshot(ctx, job)
			} else {
				m := job - nSnaps
				monthData[m], built[m], err = w.runMonth(m)
			}
			return err
		})
	if err != nil {
		return nil, err
	}

	// Assemble by index: attach freshly built months in month order so
	// the farm's ingestion order matches the serial path, then adopt the
	// index-addressed slots.
	for _, mw := range built {
		if mw != nil {
			p.farm.Attach(mw)
		}
	}
	res.Study.Months = monthData
	res.Windows = windows
	res.Study.Snapshots = snapData
	res.StoreHealth = health.result()
	return res, nil
}

// studyWorker is one pool goroutine's lazily created private state: a
// telescope of its own (created on the first snapshot job) and a
// tripled client of its own (dialed on first store use).
type studyWorker struct {
	p      *Pipeline
	tel    *telescope.Telescope
	db     tripled.Conn
	dbE    error // sticky dial failure
	health *storeHealthAgg
}

func (w *studyWorker) close() {
	if w.db != nil {
		if h, ok := storeHealthOf(w.db); ok {
			w.health.add(h)
		}
		w.db.Close()
	}
}

// client returns the worker's tripled connection, dialing on first use;
// it returns (nil, nil) when the study runs without a store.
func (w *studyWorker) client() (tripled.Conn, error) {
	if w.p.cfg.StoreAddr == "" || w.dbE != nil {
		return nil, w.dbE
	}
	if w.db == nil {
		db, err := DialStore(w.p.cfg.StoreAddr)
		if err != nil {
			w.dbE = fmt.Errorf("core: store %s: %w", w.p.cfg.StoreAddr, err)
			return nil, w.dbE
		}
		w.db = db
	}
	return w.db, nil
}

// runMonth builds (or reuses) one honeyfarm month and round-trips it
// through the store when configured. It mirrors runSerial's month
// iteration body exactly; the farm is only read, never mutated — the
// built window is attached by the assembly phase.
func (w *studyWorker) runMonth(m int) (correlate.MonthData, *honeyfarm.MonthWindow, error) {
	p := w.p
	start := p.cfg.StudyStart.AddDate(0, m, 0)
	label := start.Format("2006-01")
	var builtMW *honeyfarm.MonthWindow
	mw := p.farm.Month(label)
	if mw == nil {
		mw = p.farm.BuildMonth(label, start, p.pop.HoneyfarmMonth(m, start))
		builtMW = mw
	}
	table := mw.Table
	db, err := w.client()
	if err != nil {
		return correlate.MonthData{}, nil, err
	}
	if db != nil {
		if err := mw.Publish(db); err != nil {
			return correlate.MonthData{}, nil, fmt.Errorf("core: publish month %s: %w", label, err)
		}
		if table, err = honeyfarm.FetchMonthTable(db, label); err != nil {
			return correlate.MonthData{}, nil, fmt.Errorf("core: fetch month %s: %w", label, err)
		}
	}
	return correlate.MonthData{Label: label, Month: m, Table: table}, builtMW, nil
}

// runSnapshot captures one telescope window on the worker's private
// telescope and reduces it to the D4M source table, mirroring
// runSerial's snapshot iteration body exactly.
func (w *studyWorker) runSnapshot(ctx context.Context, si int) (*telescope.Window, correlate.Snapshot, error) {
	p := w.p
	if w.tel == nil {
		// Private telescope (captures must not run concurrently on one),
		// but the study's single CryptoPAN cache: the mapping is a pure
		// function of the passphrase, so sharing is output-neutral, and
		// it keeps one memo (and one complete Reverse() table) for the
		// whole study instead of a cold cache per worker. Cached is
		// concurrency-safe; the per-shard L1 memos stay worker-private.
		w.tel = telescope.New(p.cfg.Radiation.Darkspace, p.cfg.AnonPassphrase,
			telescope.WithLeafSize(p.cfg.LeafSize),
			telescope.WithAnonymizer(p.tel.Anonymizer()))
	}
	ts := p.cfg.SnapshotTimes[si]
	monthFrac := p.cfg.monthOf(ts)
	stream := p.pop.TelescopeStream(monthFrac, ts)
	win, err := w.tel.CaptureWindowEngine(ctx, stream, p.cfg.NV, p.cfg.Workers, p.cfg.Batch)
	if err != nil {
		return nil, correlate.Snapshot{}, fmt.Errorf("core: snapshot %v: %w", ts, err)
	}
	if win.NV < p.cfg.NV {
		return nil, correlate.Snapshot{}, fmt.Errorf("core: snapshot %v: stream exhausted at %d of %d packets (population too small for NV)",
			ts, win.NV, p.cfg.NV)
	}
	label := ts.Format("20060102-150405")
	sources := w.tel.SourceTable(win)
	db, err := w.client()
	if err != nil {
		return nil, correlate.Snapshot{}, err
	}
	if db != nil {
		if err := w.tel.PublishSourceTable(db, label, win); err != nil {
			return nil, correlate.Snapshot{}, fmt.Errorf("core: publish snapshot %s: %w", label, err)
		}
		if sources, err = telescope.FetchSourceTable(db, label); err != nil {
			return nil, correlate.Snapshot{}, fmt.Errorf("core: fetch snapshot %s: %w", label, err)
		}
	}
	return win, correlate.Snapshot{
		Label:   label,
		Month:   monthFrac,
		NV:      p.cfg.NV,
		Sources: sources,
	}, nil
}
