package hypersparse

// merge.go implements the pooled, allocation-free merge kernels of the
// hierarchical summation hot path: a two-way merge into a caller-owned
// destination (AddInto) and a k-way heap merge over any number of leaves
// (SumInto). Both write into a scratch Matrix whose arrays are grown but
// never reallocated once warm, which is what lets the engine sum a
// 2^13-leaf window with O(1) allocations after warmup instead of
// O(levels·nnz).

import "sync"

// reset truncates the matrix's arrays, retaining capacity, so it can be
// reused as a merge destination.
func (m *Matrix) reset() {
	m.rows = m.rows[:0]
	m.rowPtr = m.rowPtr[:0]
	m.cols = m.cols[:0]
	m.vals = m.vals[:0]
}

// publish returns an immutable exact-size copy of a scratch matrix. The
// scratch keeps its (larger) buffers for reuse; the copy is safe to
// retain indefinitely. The append form allocates without the redundant
// zeroing a make+copy pair would pay.
func (m *Matrix) publish() *Matrix {
	return &Matrix{
		rows:   append([]uint32(nil), m.rows...),
		rowPtr: append([]int64(nil), m.rowPtr...),
		cols:   append([]uint32(nil), m.cols...),
		vals:   append([]float64(nil), m.vals...),
	}
}

// AddInto merges a + b into dst, overwriting dst's previous contents.
// dst's arrays are grown as needed but retained across calls, so a warm
// destination makes the merge allocation-free. dst must not alias a or b
// (this panics), and the caller owns dst: it must not be published while
// it may still be rewritten — see the Matrix ownership contract. Unlike
// Add, AddInto always copies, even when one operand is empty, so dst
// never aliases an operand afterwards. Returns dst.
func AddInto(dst, a, b *Matrix) *Matrix {
	if dst == a || dst == b {
		panic("hypersparse: AddInto destination aliases an operand")
	}
	dst.reset()
	ai, bi := 0, 0
	for ai < len(a.rows) || bi < len(b.rows) {
		switch {
		case bi == len(b.rows) || (ai < len(a.rows) && a.rows[ai] < b.rows[bi]):
			dst.appendRow(a.rows[ai], a.cols[a.rowPtr[ai]:a.rowPtr[ai+1]], a.vals[a.rowPtr[ai]:a.rowPtr[ai+1]])
			ai++
		case ai == len(a.rows) || b.rows[bi] < a.rows[ai]:
			dst.appendRow(b.rows[bi], b.cols[b.rowPtr[bi]:b.rowPtr[bi+1]], b.vals[b.rowPtr[bi]:b.rowPtr[bi+1]])
			bi++
		default:
			dst.appendMergedRow(a.rows[ai],
				a.cols[a.rowPtr[ai]:a.rowPtr[ai+1]], a.vals[a.rowPtr[ai]:a.rowPtr[ai+1]],
				b.cols[b.rowPtr[bi]:b.rowPtr[bi+1]], b.vals[b.rowPtr[bi]:b.rowPtr[bi+1]])
			ai++
			bi++
		}
	}
	dst.rowPtr = append(dst.rowPtr, int64(len(dst.cols)))
	return dst
}

// leafCursor tracks one input matrix's position in the k-way row merge.
type leafCursor struct {
	mat *Matrix
	ri  int // current row index
}

func (c leafCursor) row() uint32 { return c.mat.rows[c.ri] }

// colSeg is one row's (cols, vals) span contributed by one leaf.
type colSeg struct {
	cols []uint32
	vals []float64
	i    int // cursor within the segment
}

// mergeScratch bundles everything one k-way merge needs: the growable
// destination matrix plus the heaps and segment list, all retained
// across merges through scratchPool.
type mergeScratch struct {
	m       Matrix
	rowHeap []leafCursor
	segs    []colSeg
	colHeap []int32 // heap of seg indices, keyed by the seg's current col
}

var scratchPool = sync.Pool{New: func() interface{} { return new(mergeScratch) }}

// SumInto k-way-merges the leaves into dst, overwriting dst's previous
// contents; it is the n-ary AddInto. Rows are drawn from a binary heap
// of per-leaf cursors, so cost is O(total nnz · log k) with no
// comparator calls. dst must not alias any leaf (this panics) and
// follows the same ownership rules as AddInto's destination. nil leaves
// are treated as empty. Returns dst.
func SumInto(dst *Matrix, leaves ...*Matrix) *Matrix {
	s := scratchPool.Get().(*mergeScratch)
	sumInto(s, dst, leaves)
	scratchPool.Put(s)
	return dst
}

func sumInto(s *mergeScratch, dst *Matrix, leaves []*Matrix) {
	// Check aliasing before touching dst, so the panic fires with the
	// destination still intact.
	for _, l := range leaves {
		if l == dst {
			panic("hypersparse: SumInto destination aliases a leaf")
		}
	}
	dst.reset()
	s.rowHeap = s.rowHeap[:0]
	for _, l := range leaves {
		if l != nil && len(l.rows) > 0 {
			s.rowHeap = append(s.rowHeap, leafCursor{mat: l})
		}
	}
	h := s.rowHeap
	for i := len(h)/2 - 1; i >= 0; i-- {
		rowHeapDown(h, i)
	}
	for len(h) > 0 {
		row := h[0].row()
		// Collect every leaf whose cursor sits on this row.
		s.segs = s.segs[:0]
		for len(h) > 0 && h[0].row() == row {
			c := h[0]
			lo, hi := c.mat.rowPtr[c.ri], c.mat.rowPtr[c.ri+1]
			if hi > lo { // deserialized matrices may carry empty rows
				s.segs = append(s.segs, colSeg{cols: c.mat.cols[lo:hi], vals: c.mat.vals[lo:hi]})
			}
			if c.ri+1 < len(c.mat.rows) {
				h[0].ri++
				rowHeapDown(h, 0)
			} else {
				h[0] = h[len(h)-1]
				h = h[:len(h)-1]
				if len(h) > 0 {
					rowHeapDown(h, 0)
				}
			}
		}
		switch len(s.segs) {
		case 0: // every contribution was an empty row
		case 1:
			dst.appendRow(row, s.segs[0].cols, s.segs[0].vals)
		default:
			s.mergeRow(dst, row)
		}
	}
	// Clear the leaf references held beyond the slice lengths in the
	// retained backing arrays: a pooled scratch must not pin a whole
	// window's leaves (their matrices and cols/vals storage) in memory
	// until its next reuse.
	clear(h[:cap(h)])
	s.rowHeap = h[:0]
	clear(s.segs[:cap(s.segs)])
	s.segs = s.segs[:0]
	dst.rowPtr = append(dst.rowPtr, int64(len(dst.cols)))
}

// mergeRow merges the collected column segments for one row into dst,
// summing values at equal columns. Two segments — the dominant case
// when merging pairs of leaves or pairs of group results — take a
// direct two-way merge; more take a heap over segment heads.
func (s *mergeScratch) mergeRow(dst *Matrix, row uint32) {
	if len(s.segs) == 2 {
		dst.appendMergedRow(row,
			s.segs[0].cols, s.segs[0].vals,
			s.segs[1].cols, s.segs[1].vals)
		return
	}
	dst.rows = append(dst.rows, row)
	dst.rowPtr = append(dst.rowPtr, int64(len(dst.cols)))
	s.colHeap = s.colHeap[:0]
	for i := range s.segs {
		s.segs[i].i = 0
		s.colHeap = append(s.colHeap, int32(i))
	}
	ch := s.colHeap
	for i := len(ch)/2 - 1; i >= 0; i-- {
		s.colHeapDown(ch, i)
	}
	for len(ch) > 0 {
		sg := &s.segs[ch[0]]
		col := sg.cols[sg.i]
		val := sg.vals[sg.i]
		sg.i++
		if sg.i < len(sg.cols) {
			s.colHeapDown(ch, 0)
		} else {
			ch[0] = ch[len(ch)-1]
			ch = ch[:len(ch)-1]
			if len(ch) > 0 {
				s.colHeapDown(ch, 0)
			}
		}
		// Fold in every other segment currently holding the same column.
		for len(ch) > 0 {
			sg = &s.segs[ch[0]]
			if sg.cols[sg.i] != col {
				break
			}
			val += sg.vals[sg.i]
			sg.i++
			if sg.i < len(sg.cols) {
				s.colHeapDown(ch, 0)
			} else {
				ch[0] = ch[len(ch)-1]
				ch = ch[:len(ch)-1]
				if len(ch) > 0 {
					s.colHeapDown(ch, 0)
				}
			}
		}
		dst.cols = append(dst.cols, col)
		dst.vals = append(dst.vals, val)
	}
	s.colHeap = ch[:0]
}

// rowHeapDown restores the min-heap property of the leaf-cursor heap
// from index i downward, comparing current row ids.
func rowHeapDown(h []leafCursor, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h[l].row() < h[min].row() {
			min = l
		}
		if r < len(h) && h[r].row() < h[min].row() {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// colHeapDown restores the min-heap property of the segment heap from
// index i downward, comparing each segment's current column id.
func (s *mergeScratch) colHeapDown(h []int32, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && s.segs[h[l]].cols[s.segs[h[l]].i] < s.segs[h[min]].cols[s.segs[h[min]].i] {
			min = l
		}
		if r < len(h) && s.segs[h[r]].cols[s.segs[h[r]].i] < s.segs[h[min]].cols[s.segs[h[min]].i] {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}
