package hypersparse

import (
	"encoding/binary"
	"testing"
)

// FuzzBuilderDifferential feeds arbitrary triple streams through the
// radix builder and the pooled k-way merge and diffs both against the
// retained map-builder oracle, including the split-into-leaves path the
// engine exercises (summing the per-leaf matrices must equal building
// the whole stream at once).
func FuzzBuilderDifferential(f *testing.F) {
	mk := func(triples ...uint32) []byte {
		b := make([]byte, 0, len(triples)*4)
		for _, t := range triples {
			b = binary.LittleEndian.AppendUint32(b, t)
		}
		return b
	}
	f.Add([]byte{})
	f.Add(mk(0, 0, 1, 0, 0, 2))                                  // duplicate summing
	f.Add(mk(0xFFFFFFFF, 0xFFFFFFFF, 3, 0, 0xFFFFFFFF, 1))       // extreme ids
	f.Add(mk(7, 9, 1, 7, 10, 2, 8, 1, 3, 7, 9, 4, 1, 1, 1))      // mixed rows
	f.Add(mk(0x2C000001, 5, 1, 0x2C000002, 5, 1, 0x2C000001, 5)) // truncated tail

	f.Fuzz(func(t *testing.T, data []byte) {
		// Every 9 bytes: row(4) col(4) val(1, kept nonzero and small so
		// float addition is exact and order-independent).
		n := len(data) / 9
		if n > 4096 {
			n = 4096
		}
		entries := make([]Entry, n)
		for i := 0; i < n; i++ {
			d := data[i*9:]
			entries[i] = Entry{
				Row: binary.LittleEndian.Uint32(d),
				Col: binary.LittleEndian.Uint32(d[4:]),
				Val: float64(d[8]%16 + 1),
			}
		}
		want := refBuild(entries)
		if got := FromEntries(entries); !Equal(got, want) {
			t.Fatalf("radix build diverges from map oracle on %d entries", n)
		}
		// Split into ragged leaves and merge: must equal the whole build.
		var leaves []*Matrix
		for lo := 0; lo < n; {
			hi := lo + 1 + (lo % 7)
			if hi > n {
				hi = n
			}
			leaves = append(leaves, FromEntries(entries[lo:hi]))
			lo = hi
		}
		var dst Matrix
		if SumInto(&dst, leaves...); !Equal(&dst, want) {
			t.Fatalf("SumInto over %d leaves diverges from whole build", len(leaves))
		}
		if got := HierSum(leaves, 3); !Equal(got, want) {
			t.Fatalf("HierSum over %d leaves diverges from whole build", len(leaves))
		}
	})
}
