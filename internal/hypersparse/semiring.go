package hypersparse

// semiring.go implements the GraphBLAS operation set over configurable
// semirings [45], [46]: matrix-matrix and matrix-vector multiply,
// elementwise add/multiply, apply, select, and reduce. Table II's
// formulas are special cases (e.g. A·1 is MxV over plus-times with a
// dense-ones vector), and the correlation analysis uses the structural
// (or-and) semiring for set intersection at matrix scale.

// BinaryOp combines two values.
type BinaryOp func(a, b float64) float64

// UnaryOp transforms one value.
type UnaryOp func(a float64) float64

// Semiring packages the (⊕, ⊗) pair with the additive identity. The
// multiply is applied to matched entries; add accumulates products.
type Semiring struct {
	Name     string
	Add      BinaryOp
	Mul      BinaryOp
	Identity float64
}

// Standard GraphBLAS semirings used by the pipeline.
var (
	// PlusTimes is ordinary arithmetic: packet counting.
	PlusTimes = Semiring{
		Name:     "plus-times",
		Add:      func(a, b float64) float64 { return a + b },
		Mul:      func(a, b float64) float64 { return a * b },
		Identity: 0,
	}
	// OrAnd is the structural semiring: set membership.
	OrAnd = Semiring{
		Name: "or-and",
		Add: func(a, b float64) float64 {
			if a != 0 || b != 0 {
				return 1
			}
			return 0
		},
		Mul: func(a, b float64) float64 {
			if a != 0 && b != 0 {
				return 1
			}
			return 0
		},
		Identity: 0,
	}
	// MaxPlus is the tropical semiring: longest/heaviest path style
	// aggregations (e.g. peak per-link rates).
	MaxPlus = Semiring{
		Name: "max-plus",
		Add: func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		},
		Mul:      func(a, b float64) float64 { return a + b },
		Identity: negInf,
	}
)

const negInf = -1.7976931348623157e308 // math.MaxFloat64 negated; avoids a math import here

// MxV multiplies the matrix by a sparse vector over the semiring:
// out[i] = ⊕_j A(i,j) ⊗ v[j], keeping only rows that touch at least one
// stored element of v.
func (m *Matrix) MxV(s Semiring, v *Vector) *Vector {
	out := make(map[uint32]float64)
	for ri, row := range m.rows {
		acc := s.Identity
		hit := false
		for k := m.rowPtr[ri]; k < m.rowPtr[ri+1]; k++ {
			x := v.At(m.cols[k])
			if x == 0 {
				continue
			}
			acc = s.Add(acc, s.Mul(m.vals[k], x))
			hit = true
		}
		if hit {
			out[row] = acc
		}
	}
	return VectorFromMap(out)
}

// MxVDense multiplies by an implicit dense vector of the given constant
// value (the 1-vector of Table II): out[i] = ⊕_j A(i,j) ⊗ c. Every
// non-empty row produces an element.
func (m *Matrix) MxVDense(s Semiring, c float64) *Vector {
	ids := make([]uint32, len(m.rows))
	vals := make([]float64, len(m.rows))
	copy(ids, m.rows)
	for ri := range m.rows {
		acc := s.Identity
		for k := m.rowPtr[ri]; k < m.rowPtr[ri+1]; k++ {
			acc = s.Add(acc, s.Mul(m.vals[k], c))
		}
		vals[ri] = acc
	}
	return &Vector{ids: ids, vals: vals}
}

// MxM multiplies two matrices over the semiring using the row-by-row
// Gustavson algorithm: out(i,k) = ⊕_j A(i,j) ⊗ B(j,k).
func MxM(s Semiring, a, b *Matrix) *Matrix {
	// Index B's rows for O(1) row lookup during the sweep of A.
	bRow := make(map[uint32]int, len(b.rows))
	for i, r := range b.rows {
		bRow[r] = i
	}
	// Each (arow, col) cell is assigned exactly once, so the radix
	// builder's duplicate-summing never fires and assignment semantics
	// are preserved.
	builder := NewBuilder(a.NNZ())
	acc := make(map[uint32]float64)
	for ai, arow := range a.rows {
		clear(acc)
		for k := a.rowPtr[ai]; k < a.rowPtr[ai+1]; k++ {
			bj, ok := bRow[a.cols[k]]
			if !ok {
				continue
			}
			av := a.vals[k]
			for t := b.rowPtr[bj]; t < b.rowPtr[bj+1]; t++ {
				prod := s.Mul(av, b.vals[t])
				if old, ok := acc[b.cols[t]]; ok {
					acc[b.cols[t]] = s.Add(old, prod)
				} else {
					acc[b.cols[t]] = s.Add(s.Identity, prod)
				}
			}
		}
		for col, v := range acc {
			builder.Add(arow, col, v)
		}
	}
	return builder.Build()
}

// EWiseMult returns the elementwise (Hadamard) product over Mul: entries
// present in both matrices, combined; the structural intersection when
// used with OrAnd.
func EWiseMult(s Semiring, a, b *Matrix) *Matrix {
	builder := NewBuilder(min(a.NNZ(), b.NNZ()))
	bRow := make(map[uint32]int, len(b.rows))
	for i, r := range b.rows {
		bRow[r] = i
	}
	for ai, arow := range a.rows {
		bi, ok := bRow[arow]
		if !ok {
			continue
		}
		// Merge the two sorted column ranges.
		i, j := a.rowPtr[ai], b.rowPtr[bi]
		for i < a.rowPtr[ai+1] && j < b.rowPtr[bi+1] {
			switch {
			case a.cols[i] < b.cols[j]:
				i++
			case a.cols[i] > b.cols[j]:
				j++
			default:
				builder.Add(arow, a.cols[i], s.Mul(a.vals[i], b.vals[j]))
				i++
				j++
			}
		}
	}
	return builder.Build()
}

// EWiseAdd returns the elementwise sum over Add: the union of the
// patterns (Add(a, b) for this package's arithmetic Add is the existing
// Add function; EWiseAdd generalizes it to any semiring).
func EWiseAdd(s Semiring, a, b *Matrix) *Matrix {
	// Needs the map assembler: matched entries combine through the
	// semiring's Add, which is not the radix builder's arithmetic sum.
	builder := newMapBuilder(a.NNZ() + b.NNZ())
	a.Iterate(func(e Entry) bool {
		builder.set(e.Row, e.Col, e.Val)
		return true
	})
	b.Iterate(func(e Entry) bool {
		if old, ok := builder.m[key(e.Row, e.Col)]; ok {
			builder.set(e.Row, e.Col, s.Add(old, e.Val))
		} else {
			builder.set(e.Row, e.Col, e.Val)
		}
		return true
	})
	return builder.build()
}

// Apply returns a new matrix with fn applied to every stored value.
// Entries mapping to 0 are retained (GraphBLAS does not drop explicit
// zeros on apply); use Select to drop.
func (m *Matrix) Apply(fn UnaryOp) *Matrix {
	out := &Matrix{
		rows:   m.rows,
		rowPtr: m.rowPtr,
		cols:   m.cols,
		vals:   make([]float64, len(m.vals)),
	}
	for i, v := range m.vals {
		out.vals[i] = fn(v)
	}
	return out
}

// Select returns the submatrix of entries for which keep returns true.
func (m *Matrix) Select(keep func(Entry) bool) *Matrix {
	builder := NewBuilder(m.NNZ())
	m.Iterate(func(e Entry) bool {
		if keep(e) {
			builder.Add(e.Row, e.Col, e.Val)
		}
		return true
	})
	return builder.Build()
}

// Reduce folds every stored value with op starting from init.
func (m *Matrix) Reduce(init float64, op BinaryOp) float64 {
	acc := init
	for _, v := range m.vals {
		acc = op(acc, v)
	}
	return acc
}
