package hypersparse

// radix.go implements the LSD (least-significant-digit) radix sort the
// zero-allocation hot path is built on: (key, value) pairs are sorted by
// unsigned key with byte-wide counting passes into caller-owned scratch
// buffers — no comparator, no interface calls, no allocation. Passes
// whose byte is constant across all keys are skipped, so leaves whose
// indices share high bits (e.g. darkspace destinations inside one /8)
// sort in a handful of passes.

// radixKey is the set of key widths the hot path sorts by: packed
// (row, col) pairs are uint64, bare column ids are uint32.
type radixKey interface {
	~uint32 | ~uint64
}

// radixSortPairs sorts keys (with vals carried along) ascending using
// kbuf/vbuf as ping-pong scratch. All four slices must have the same
// length. It returns the slices holding the sorted data, which are
// either (keys, vals) or (kbuf, vbuf) depending on the number of passes
// performed.
func radixSortPairs[K radixKey](keys []K, vals []float64, kbuf []K, vbuf []float64) ([]K, []float64) {
	n := len(keys)
	if n < 2 {
		return keys, vals
	}
	// One prepass finds the bytes that actually vary; constant bytes
	// would produce a single bucket and can be skipped outright.
	orAll, andAll := keys[0], keys[0]
	for _, k := range keys[1:] {
		orAll |= k
		andAll &= k
	}
	varying := orAll &^ andAll

	// Bytes beyond a uint32 key's width shift out to zero and are
	// skipped by the varying mask, so one 64-bit loop serves both widths.
	var counts [256]int
	src, dst := keys, kbuf
	vsrc, vdst := vals, vbuf
	for shift := 0; shift < 64; shift += 8 {
		if (varying>>shift)&0xFF == 0 {
			continue
		}
		for i := range counts {
			counts[i] = 0
		}
		for _, k := range src {
			counts[uint8(k>>shift)]++
		}
		pos := 0
		for i, c := range counts {
			counts[i] = pos
			pos += c
		}
		for i, k := range src {
			d := uint8(k >> shift)
			j := counts[d]
			counts[d]++
			dst[j] = k
			vdst[j] = vsrc[i]
		}
		src, dst = dst, src
		vsrc, vdst = vdst, vsrc
	}
	return src, vsrc
}

// growKeys ensures a scratch key slice has length n, reallocating only
// when capacity is exceeded (steady state: never).
func growKeys[K radixKey](s []K, n int) []K {
	if cap(s) < n {
		return make([]K, n, n+n/2)
	}
	return s[:n]
}

// growVals is growKeys for value buffers.
func growVals(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n, n+n/2)
	}
	return s[:n]
}
