package hypersparse

import "sort"

// Vector is an immutable sparse vector over the uint32 index space:
// sorted distinct ids with parallel values. It is the result type of the
// matrix reductions (row sums A·1, fan-outs |A|0·1, column sums 1^T·A,
// fan-ins 1^T·|A|0) that yield the paper's per-source and per-destination
// quantities.
type Vector struct {
	ids  []uint32
	vals []float64
}

// NewVector builds a Vector from parallel id/value slices that must
// already be sorted by id with no duplicates. It panics otherwise; use
// VectorFromMap for unsorted input.
func NewVector(ids []uint32, vals []float64) *Vector {
	if len(ids) != len(vals) {
		panic("hypersparse: ids/vals length mismatch")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			panic("hypersparse: vector ids not strictly increasing")
		}
	}
	return &Vector{ids: ids, vals: vals}
}

// VectorFromMap builds a Vector from an id->value map.
func VectorFromMap(m map[uint32]float64) *Vector {
	ids := make([]uint32, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	vals := make([]float64, len(ids))
	for i, id := range ids {
		vals[i] = m[id]
	}
	return &Vector{ids: ids, vals: vals}
}

// NNZ returns the number of stored elements.
func (v *Vector) NNZ() int { return len(v.ids) }

// IDs returns the sorted element ids; the slice is owned by the vector.
func (v *Vector) IDs() []uint32 { return v.ids }

// At returns the value at id, or 0 if absent.
func (v *Vector) At(id uint32) float64 {
	i := sort.Search(len(v.ids), func(i int) bool { return v.ids[i] >= id })
	if i == len(v.ids) || v.ids[i] != id {
		return 0
	}
	return v.vals[i]
}

// Iterate calls fn for each (id, value) in increasing id order; stops if
// fn returns false.
func (v *Vector) Iterate(fn func(id uint32, val float64) bool) {
	for i, id := range v.ids {
		if !fn(id, v.vals[i]) {
			return
		}
	}
}

// Sum returns the total of the values.
func (v *Vector) Sum() float64 {
	var s float64
	for _, x := range v.vals {
		s += x
	}
	return s
}

// Max returns the largest value, or 0 for an empty vector (the paper's
// d_max statistics).
func (v *Vector) Max() float64 {
	var m float64
	for _, x := range v.vals {
		if x > m {
			m = x
		}
	}
	return m
}

// Intersect returns the ids present in both vectors, in sorted order.
// This is the elementwise-AND structural product used to correlate the
// source sets of two observatories.
func (v *Vector) Intersect(w *Vector) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(v.ids) && j < len(w.ids) {
		switch {
		case v.ids[i] < w.ids[j]:
			i++
		case v.ids[i] > w.ids[j]:
			j++
		default:
			out = append(out, v.ids[i])
			i++
			j++
		}
	}
	return out
}

// Union returns the ids present in either vector, in sorted order.
func (v *Vector) Union(w *Vector) []uint32 {
	out := make([]uint32, 0, len(v.ids)+len(w.ids))
	i, j := 0, 0
	for i < len(v.ids) && j < len(w.ids) {
		switch {
		case v.ids[i] < w.ids[j]:
			out = append(out, v.ids[i])
			i++
		case v.ids[i] > w.ids[j]:
			out = append(out, w.ids[j])
			j++
		default:
			out = append(out, v.ids[i])
			i++
			j++
		}
	}
	out = append(out, v.ids[i:]...)
	out = append(out, w.ids[j:]...)
	return out
}

// Filter returns a new Vector containing the elements for which keep
// returns true.
func (v *Vector) Filter(keep func(id uint32, val float64) bool) *Vector {
	var ids []uint32
	var vals []float64
	for i, id := range v.ids {
		if keep(id, v.vals[i]) {
			ids = append(ids, id)
			vals = append(vals, v.vals[i])
		}
	}
	return &Vector{ids: ids, vals: vals}
}

// Histogram counts elements whose value falls in [1, 2), [2, 4), ... and
// is superseded for analysis purposes by stats.LogBin; retained here for
// quick structural checks.
func (v *Vector) Histogram() map[int]int {
	h := make(map[int]int)
	for _, x := range v.vals {
		if x < 1 {
			continue
		}
		bin := 0
		for d := x; d >= 2; d /= 2 {
			bin++
		}
		h[bin]++
	}
	return h
}
