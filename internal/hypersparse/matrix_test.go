package hypersparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomEntries(rng *rand.Rand, n int, rowSpace, colSpace uint32) []Entry {
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{
			Row: rng.Uint32() % rowSpace,
			Col: rng.Uint32() % colSpace,
			Val: float64(1 + rng.Intn(5)),
		}
	}
	return es
}

// refMap is the brute-force reference model for a sparse matrix.
func refMap(es []Entry) map[[2]uint32]float64 {
	m := make(map[[2]uint32]float64)
	for _, e := range es {
		m[[2]uint32{e.Row, e.Col}] += e.Val
	}
	return m
}

func TestEmptyMatrix(t *testing.T) {
	var m Matrix
	if m.NNZ() != 0 || m.NRows() != 0 || m.Sum() != 0 || m.MaxVal() != 0 {
		t.Error("zero-value matrix not empty")
	}
	if m.At(1, 2) != 0 {
		t.Error("At on empty matrix != 0")
	}
	m.Iterate(func(Entry) bool {
		t.Error("Iterate visited an entry of an empty matrix")
		return false
	})
}

func TestBuilderSumsDuplicates(t *testing.T) {
	b := NewBuilder(0)
	b.Add(7, 9, 1)
	b.Add(7, 9, 2)
	b.Add(7, 10, 5)
	if b.Len() != 3 { // appended triples; duplicates coalesce at Build
		t.Fatalf("Len() = %d, want 3", b.Len())
	}
	m := b.Build()
	if got := m.At(7, 9); got != 3 {
		t.Errorf("At(7,9) = %g, want 3", got)
	}
	if got := m.At(7, 10); got != 5 {
		t.Errorf("At(7,10) = %g, want 5", got)
	}
	if m.NNZ() != 2 || m.NRows() != 1 {
		t.Errorf("NNZ=%d NRows=%d, want 2,1", m.NNZ(), m.NRows())
	}
}

func TestBuilderResetAfterBuild(t *testing.T) {
	b := NewBuilder(0)
	b.Add(1, 1, 1)
	first := b.Build()
	b.Add(2, 2, 2)
	second := b.Build()
	if first.NNZ() != 1 || second.NNZ() != 1 {
		t.Fatal("builder state leaked across Build calls")
	}
	if second.At(1, 1) != 0 {
		t.Error("second build contains first build's entry")
	}
}

func TestPaperExampleEntry(t *testing.T) {
	// "3 packets from IPv4 source 1.1.1.1 to IPv4 destination 2.2.2.2
	//  would be represented as At(16843009, 33686018) = 3.0"
	b := NewBuilder(1)
	for i := 0; i < 3; i++ {
		b.Add(16843009, 33686018, 1)
	}
	m := b.Build()
	if got := m.At(16843009, 33686018); got != 3.0 {
		t.Errorf("At(16843009, 33686018) = %g, want 3.0", got)
	}
}

func TestMatrixMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	es := randomEntries(rng, 5000, 200, 200)
	m := FromEntries(es)
	ref := refMap(es)
	if m.NNZ() != len(ref) {
		t.Fatalf("NNZ = %d, want %d", m.NNZ(), len(ref))
	}
	var total float64
	for k, v := range ref {
		if got := m.At(k[0], k[1]); got != v {
			t.Fatalf("At(%d,%d) = %g, want %g", k[0], k[1], got, v)
		}
		total += v
	}
	if m.Sum() != total {
		t.Errorf("Sum = %g, want %g", m.Sum(), total)
	}
}

func TestIterateSortedRowMajor(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := FromEntries(randomEntries(rng, 2000, 100, 100))
	var prev Entry
	first := true
	n := 0
	m.Iterate(func(e Entry) bool {
		if !first {
			if e.Row < prev.Row || (e.Row == prev.Row && e.Col <= prev.Col) {
				t.Fatalf("iteration order violated: %v after %v", e, prev)
			}
		}
		prev, first = e, false
		n++
		return true
	})
	if n != m.NNZ() {
		t.Errorf("Iterate visited %d entries, NNZ=%d", n, m.NNZ())
	}
}

func TestIterateEarlyStop(t *testing.T) {
	m := FromEntries([]Entry{{1, 1, 1}, {2, 2, 2}, {3, 3, 3}})
	n := 0
	m.Iterate(func(Entry) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("early stop visited %d entries, want 2", n)
	}
}

func TestEntriesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		es := randomEntries(rng, 300, 50, 50)
		m := FromEntries(es)
		m2 := FromEntries(m.Entries())
		return Equal(m, m2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSumInvariantUnderDuplication(t *testing.T) {
	// Total packet count NV must not change however triples are split.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		es := randomEntries(rng, 500, 64, 64)
		whole := FromEntries(es)
		// split each entry into unit triples
		b := NewBuilder(0)
		for _, e := range es {
			for k := 0; k < int(e.Val); k++ {
				b.Add(e.Row, e.Col, 1)
			}
		}
		split := b.Build()
		return whole.Sum() == split.Sum() && Equal(whole, split)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStringSummary(t *testing.T) {
	m := FromEntries([]Entry{{1, 2, 3}})
	want := "hypersparse.Matrix{rows: 1, nnz: 1, sum: 3}"
	if got := m.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
