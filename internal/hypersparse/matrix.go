// Package hypersparse implements GraphBLAS-style hypersparse traffic
// matrices over a 2^32 x 2^32 index space, following the representation
// the paper uses for CAIDA Telescope windows: uint32 row (source) and
// column (destination) indices with floating-point packet counts.
//
// A matrix is "hypersparse" when the number of non-empty rows is far
// smaller than the row dimension, so the doubly-compressed (DCSR) layout
// stores only the sorted list of occupied rows. All quantities of the
// paper's Table II are computed from this layout (see package netquant),
// and all are invariant under row/column permutation, which is what makes
// the pipeline safe to run on CryptoPAN-anonymized data.
package hypersparse

import (
	"fmt"
	"sort"
)

// Entry is a single (row, col, value) triple: value packets from source
// row to destination col.
type Entry struct {
	Row, Col uint32
	Val      float64
}

// Matrix is a doubly-compressed sparse row (DCSR) matrix. The zero
// value is an empty matrix ready to use.
//
// # Ownership and aliasing contract
//
// A Matrix returned by Build, FromEntries, Add, HierSum, ReadMatrix, or
// any reduction is "published": it is immutable from that point on and
// may be shared freely across goroutines. Published matrices may alias
// each other's storage — Pattern and Apply share rows/rowPtr/cols with
// their receiver, Add and HierSum return an operand unchanged when every
// other operand is empty — which is safe precisely because published
// matrices are never written again.
//
// The one exception is a scratch destination passed to AddInto or
// SumInto: its storage is owned by the caller, is rewritten on every
// call, and must not be published (retained, shared, or returned) while
// it can still be reused. The pooled merge path in HierSum follows this
// rule internally: pooled scratch is always copied into a fresh
// published Matrix before being handed out, so no pooled buffer ever
// escapes through the aliasing shortcuts above.
type Matrix struct {
	rows   []uint32  // sorted distinct non-empty row ids
	rowPtr []int64   // len(rows)+1 offsets into cols/vals
	cols   []uint32  // column ids, sorted within each row
	vals   []float64 // parallel to cols
}

// NNZ returns the number of stored entries (the paper's "unique links"
// when values are packet counts).
func (m *Matrix) NNZ() int { return len(m.cols) }

// NRows returns the number of non-empty rows (unique sources).
func (m *Matrix) NRows() int { return len(m.rows) }

// Sum returns the total of all values (the paper's NV, valid packets,
// i.e. 1^T A 1).
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.vals {
		s += v
	}
	return s
}

// At returns the stored value at (row, col), or 0 if absent.
func (m *Matrix) At(row, col uint32) float64 {
	ri := sort.Search(len(m.rows), func(i int) bool { return m.rows[i] >= row })
	if ri == len(m.rows) || m.rows[ri] != row {
		return 0
	}
	lo, hi := m.rowPtr[ri], m.rowPtr[ri+1]
	cs := m.cols[lo:hi]
	ci := sort.Search(len(cs), func(i int) bool { return cs[i] >= col })
	if ci == len(cs) || cs[ci] != col {
		return 0
	}
	return m.vals[lo+int64(ci)]
}

// Rows returns the sorted ids of non-empty rows. The returned slice is
// owned by the matrix and must not be modified.
func (m *Matrix) Rows() []uint32 { return m.rows }

// Vals returns the stored values in row-major order (parallel to the
// entries Iterate visits). The returned slice is owned by the matrix and
// must not be modified; it exists so per-link analyses (the paper's
// link-packet distributions) can read the nonzeros without the
// Iterate-closure copy.
func (m *Matrix) Vals() []float64 { return m.vals }

// Iterate calls fn for every stored entry in row-major order. Iteration
// stops early if fn returns false.
func (m *Matrix) Iterate(fn func(Entry) bool) {
	for ri, row := range m.rows {
		for k := m.rowPtr[ri]; k < m.rowPtr[ri+1]; k++ {
			if !fn(Entry{Row: row, Col: m.cols[k], Val: m.vals[k]}) {
				return
			}
		}
	}
}

// Entries returns all stored entries in row-major order.
func (m *Matrix) Entries() []Entry {
	out := make([]Entry, 0, m.NNZ())
	m.Iterate(func(e Entry) bool {
		out = append(out, e)
		return true
	})
	return out
}

// String summarizes the matrix shape for debugging.
func (m *Matrix) String() string {
	return fmt.Sprintf("hypersparse.Matrix{rows: %d, nnz: %d, sum: %g}",
		m.NRows(), m.NNZ(), m.Sum())
}

// FromEntries builds a matrix from triples, summing duplicates. The input
// slice is not retained.
func FromEntries(entries []Entry) *Matrix {
	b := NewBuilder(len(entries))
	for _, e := range entries {
		b.Add(e.Row, e.Col, e.Val)
	}
	return b.Build()
}

// Builder accumulates (row, col, value) triples with duplicate summing,
// then compiles them into an immutable Matrix. It corresponds to the
// GraphBLAS build-from-tuples step the paper's pipeline uses for each
// 2^17-packet leaf window.
//
// The builder is a triple buffer: Add appends packed (key, value) pairs
// to flat slices, and Build radix-sorts by key, coalesces duplicates in
// place, and compiles the DCSR arrays directly. Build resets the builder
// but retains every internal buffer, so a long-lived builder (one per
// engine shard, one per archive stream) allocates nothing per leaf at
// steady state beyond the published Matrix itself. Builders are not safe
// for concurrent use; the hierarchical accumulator gives each goroutine
// its own.
type Builder struct {
	keys []uint64  // packed (row, col), in arrival order until Build
	vals []float64 // parallel to keys
	kbuf []uint64  // radix scratch, retained across Build calls
	vbuf []float64 // radix scratch, retained across Build calls
}

// NewBuilder returns a Builder with capacity hint n.
func NewBuilder(n int) *Builder {
	return &Builder{
		keys: make([]uint64, 0, n),
		vals: make([]float64, 0, n),
	}
}

func key(row, col uint32) uint64 { return uint64(row)<<32 | uint64(col) }

// Add accumulates v at (row, col).
func (b *Builder) Add(row, col uint32, v float64) {
	b.keys = append(b.keys, key(row, col))
	b.vals = append(b.vals, v)
}

// Len reports the number of triples appended since the last Build or
// Reset. Duplicate (row, col) pairs are coalesced only at Build time, so
// this is an upper bound on the NNZ of the matrix Build will produce.
func (b *Builder) Len() int { return len(b.keys) }

// Reset discards any accumulated triples while retaining the builder's
// buffers for reuse.
func (b *Builder) Reset() {
	b.keys = b.keys[:0]
	b.vals = b.vals[:0]
}

// Build compiles the accumulated triples into a published Matrix and
// resets the builder, retaining its buffers. The only allocations are
// the exact-size arrays of the returned matrix.
func (b *Builder) Build() *Matrix {
	n := len(b.keys)
	if n == 0 {
		return &Matrix{}
	}
	b.kbuf = growKeys(b.kbuf, n)
	b.vbuf = growVals(b.vbuf, n)
	keys, vals := radixSortPairs(b.keys, b.vals, b.kbuf, b.vbuf)

	// Coalesce duplicate keys in place, summing values.
	u := 0
	for i := 0; i < n; {
		k, v := keys[i], vals[i]
		for i++; i < n && keys[i] == k; i++ {
			v += vals[i]
		}
		keys[u], vals[u] = k, v
		u++
	}
	// Count distinct rows so every output array is exact-size.
	r := 1
	for i := 1; i < u; i++ {
		if keys[i]>>32 != keys[i-1]>>32 {
			r++
		}
	}
	m := &Matrix{
		rows:   make([]uint32, 0, r),
		rowPtr: make([]int64, 0, r+1),
		cols:   make([]uint32, u),
		vals:   make([]float64, u),
	}
	var lastRow uint32
	for i := 0; i < u; i++ {
		row := uint32(keys[i] >> 32)
		if i == 0 || row != lastRow {
			m.rows = append(m.rows, row)
			m.rowPtr = append(m.rowPtr, int64(i))
			lastRow = row
		}
		m.cols[i] = uint32(keys[i])
		m.vals[i] = vals[i]
	}
	m.rowPtr = append(m.rowPtr, int64(u))
	b.Reset()
	return m
}

// mapBuilder is the map-based assembler the radix Builder replaced on
// the hot path. It remains the implementation behind the generic
// semiring operations, which need assignment (not summing) semantics,
// and the differential-test oracle the radix path is verified against.
type mapBuilder struct {
	m map[uint64]float64
}

func newMapBuilder(n int) *mapBuilder {
	return &mapBuilder{m: make(map[uint64]float64, n)}
}

// add accumulates v at (row, col).
func (b *mapBuilder) add(row, col uint32, v float64) {
	b.m[key(row, col)] += v
}

// set overwrites the value at (row, col).
func (b *mapBuilder) set(row, col uint32, v float64) {
	b.m[key(row, col)] = v
}

// build compiles the accumulated cells into a published Matrix and
// resets the assembler.
func (b *mapBuilder) build() *Matrix {
	keys := make([]uint64, 0, len(b.m))
	for k := range b.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	m := &Matrix{
		cols: make([]uint32, len(keys)),
		vals: make([]float64, len(keys)),
	}
	var lastRow uint32
	haveRow := false
	for i, k := range keys {
		row := uint32(k >> 32)
		if !haveRow || row != lastRow {
			m.rows = append(m.rows, row)
			m.rowPtr = append(m.rowPtr, int64(i))
			lastRow, haveRow = row, true
		}
		m.cols[i] = uint32(k)
		m.vals[i] = b.m[k]
	}
	m.rowPtr = append(m.rowPtr, int64(len(keys)))
	b.m = make(map[uint64]float64)
	return m
}
