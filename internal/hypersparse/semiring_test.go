package hypersparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMxVDenseEqualsRowSums(t *testing.T) {
	// Table II in semiring form: A·1 over plus-times is RowSums.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := FromEntries(randomEntries(rng, 500, 64, 64))
		a := m.MxVDense(PlusTimes, 1)
		b := m.RowSums()
		if a.NNZ() != b.NNZ() {
			return false
		}
		ok := true
		a.Iterate(func(id uint32, v float64) bool {
			if b.At(id) != v {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMxVDensePatternEqualsRowDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := FromEntries(randomEntries(rng, 800, 64, 64))
	// |A|0 · 1 over plus-times == fan-out.
	got := m.Pattern().MxVDense(PlusTimes, 1)
	want := m.RowDegrees()
	want.Iterate(func(id uint32, v float64) bool {
		if got.At(id) != v {
			t.Fatalf("fan-out mismatch at %d: %g vs %g", id, got.At(id), v)
		}
		return true
	})
}

func TestMxVSparse(t *testing.T) {
	m := FromEntries([]Entry{{1, 10, 2}, {1, 11, 3}, {2, 11, 5}, {3, 12, 7}})
	v := VectorFromMap(map[uint32]float64{10: 1, 11: 10})
	got := m.MxV(PlusTimes, v)
	// row 1: 2*1 + 3*10 = 32; row 2: 5*10 = 50; row 3: no overlap.
	if got.NNZ() != 2 || got.At(1) != 32 || got.At(2) != 50 || got.At(3) != 0 {
		t.Errorf("MxV = %v (nnz %d)", got, got.NNZ())
	}
}

// bruteMxM is a reference dense multiply over a semiring.
func bruteMxM(s Semiring, a, b *Matrix) map[[2]uint32]float64 {
	out := make(map[[2]uint32]float64)
	touched := make(map[[2]uint32]bool)
	a.Iterate(func(ea Entry) bool {
		b.Iterate(func(eb Entry) bool {
			if ea.Col != eb.Row {
				return true
			}
			k := [2]uint32{ea.Row, eb.Col}
			prod := s.Mul(ea.Val, eb.Val)
			if touched[k] {
				out[k] = s.Add(out[k], prod)
			} else {
				out[k] = s.Add(s.Identity, prod)
				touched[k] = true
			}
			return true
		})
		return true
	})
	return out
}

func TestMxMMatchesBruteForce(t *testing.T) {
	for _, s := range []Semiring{PlusTimes, OrAnd, MaxPlus} {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			a := FromEntries(randomEntries(rng, 150, 24, 24))
			b := FromEntries(randomEntries(rng, 150, 24, 24))
			got := MxM(s, a, b)
			want := bruteMxM(s, a, b)
			if got.NNZ() != len(want) {
				return false
			}
			ok := true
			got.Iterate(func(e Entry) bool {
				if want[[2]uint32{e.Row, e.Col}] != e.Val {
					ok = false
					return false
				}
				return true
			})
			return ok
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
			t.Errorf("semiring %s: %v", s.Name, err)
		}
	}
}

func TestMxMCorrelationUseCase(t *testing.T) {
	// A^T over or-and against A gives the destination co-visitation
	// pattern: (A^T A)(j,k) = 1 iff some source hits both j and k.
	a := FromEntries([]Entry{
		{1, 10, 5}, {1, 11, 2}, // source 1 hits 10 and 11
		{2, 11, 1}, // source 2 hits 11
	})
	co := MxM(OrAnd, a.Transpose(), a)
	if co.At(10, 11) != 1 || co.At(11, 10) != 1 {
		t.Error("co-visitation missing for (10, 11)")
	}
	if co.At(10, 10) != 1 || co.At(11, 11) != 1 {
		t.Error("diagonal missing")
	}
	if co.NNZ() != 4 {
		t.Errorf("NNZ = %d, want 4", co.NNZ())
	}
}

func TestEWiseMultIntersection(t *testing.T) {
	a := FromEntries([]Entry{{1, 1, 2}, {1, 2, 3}, {2, 1, 4}})
	b := FromEntries([]Entry{{1, 2, 10}, {2, 1, 10}, {3, 3, 10}})
	got := EWiseMult(PlusTimes, a, b)
	if got.NNZ() != 2 || got.At(1, 2) != 30 || got.At(2, 1) != 40 {
		t.Errorf("EWiseMult = %v", got.Entries())
	}
	// structural version
	inter := EWiseMult(OrAnd, a, b)
	if inter.Sum() != 2 {
		t.Errorf("structural intersection size = %g, want 2", inter.Sum())
	}
}

func TestEWiseMultCommutesWithSwap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := FromEntries(randomEntries(rng, 200, 32, 32))
		b := FromEntries(randomEntries(rng, 200, 32, 32))
		return Equal(EWiseMult(PlusTimes, a, b), EWiseMult(PlusTimes, b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestEWiseAddMatchesAdd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := FromEntries(randomEntries(rng, 300, 40, 40))
		b := FromEntries(randomEntries(rng, 300, 40, 40))
		return Equal(EWiseAdd(PlusTimes, a, b), Add(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestEWiseAddMaxSemiring(t *testing.T) {
	a := FromEntries([]Entry{{1, 1, 3}})
	b := FromEntries([]Entry{{1, 1, 7}, {2, 2, 1}})
	got := EWiseAdd(MaxPlus, a, b) // Add of max-plus is max
	if got.At(1, 1) != 7 || got.At(2, 2) != 1 {
		t.Errorf("EWiseAdd(MaxPlus) = %v", got.Entries())
	}
}

func TestApply(t *testing.T) {
	m := FromEntries([]Entry{{1, 1, 4}, {2, 2, 9}})
	sq := m.Apply(func(v float64) float64 { return v * v })
	if sq.At(1, 1) != 16 || sq.At(2, 2) != 81 {
		t.Error("Apply square failed")
	}
	// Pattern is preserved even for zero results.
	z := m.Apply(func(float64) float64 { return 0 })
	if z.NNZ() != 2 {
		t.Error("Apply dropped explicit zeros")
	}
	// Original untouched.
	if m.At(1, 1) != 4 {
		t.Error("Apply mutated the receiver")
	}
}

func TestSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := FromEntries(randomEntries(rng, 500, 50, 50))
	big := m.Select(func(e Entry) bool { return e.Val >= 3 })
	n := 0
	m.Iterate(func(e Entry) bool {
		if e.Val >= 3 {
			n++
			if big.At(e.Row, e.Col) != e.Val {
				t.Fatalf("selected entry lost: %v", e)
			}
		} else if big.At(e.Row, e.Col) != 0 {
			t.Fatalf("unselected entry kept: %v", e)
		}
		return true
	})
	if big.NNZ() != n {
		t.Errorf("Select NNZ = %d, want %d", big.NNZ(), n)
	}
}

func TestReduce(t *testing.T) {
	m := FromEntries([]Entry{{1, 1, 3}, {2, 2, 5}, {3, 3, 2}})
	if got := m.Reduce(0, PlusTimes.Add); got != 10 {
		t.Errorf("Reduce(+) = %g, want 10", got)
	}
	if got := m.Reduce(negInf, MaxPlus.Add); got != 5 {
		t.Errorf("Reduce(max) = %g, want 5", got)
	}
}

func BenchmarkMxM(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := FromEntries(randomEntries(rng, 1<<13, 1<<10, 1<<10))
	y := FromEntries(randomEntries(rng, 1<<13, 1<<10, 1<<10))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MxM(PlusTimes, x, y)
	}
}

func BenchmarkMxVDense(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	m := FromEntries(randomEntries(rng, 1<<16, 1<<18, 1<<18))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MxVDense(PlusTimes, 1)
	}
}
