package hypersparse

import (
	"runtime"
	"sync"
)

// hier.go implements the hierarchical summation of leaf matrices into a
// window matrix. The paper's pipeline aggregates NV = 2^17 valid packets
// into each leaf GraphBLAS matrix and hierarchically sums 2^13 of them to
// form an NV = 2^30 window; the same structure here yields log-depth
// merges and near-linear parallel speedup.

// HierSum sums the given matrices and returns the total. nil entries
// are treated as empty. workers <= 0 uses GOMAXPROCS.
//
// The reduction is a two-level pooled k-way merge: the leaves are split
// into up to `workers` contiguous groups, each group is heap-merged into
// a pooled scratch matrix concurrently, and the group results are
// heap-merged into the final matrix. All intermediate storage comes from
// a sync.Pool and is retained across windows, so a warm window sum
// performs O(1) allocations (the published result and the goroutine
// bookkeeping) instead of the O(levels·nnz) of an allocate-per-merge
// binary tree.
//
// Aliasing: when exactly one leaf is non-empty HierSum returns that leaf
// itself — safe, because leaves are published immutable matrices. A
// multi-leaf sum is always published into fresh exact-size arrays;
// pooled scratch never escapes.
func HierSum(leaves []*Matrix, workers int) *Matrix {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cur := make([]*Matrix, 0, len(leaves))
	for _, l := range leaves {
		if l != nil && l.NNZ() > 0 {
			cur = append(cur, l)
		}
	}
	switch len(cur) {
	case 0:
		return &Matrix{}
	case 1:
		return cur[0]
	}

	groups := workers
	if max := (len(cur) + 1) / 2; groups > max {
		groups = max
	}
	if groups <= 1 {
		s := scratchPool.Get().(*mergeScratch)
		sumInto(s, &s.m, cur)
		out := s.m.publish()
		scratchPool.Put(s)
		return out
	}

	// Level 1: each group k-way-merges its contiguous slice of leaves
	// into its own pooled scratch. Bounds follow the balanced split
	// lo(g) = g*len/groups, so every group is non-empty.
	parts := make([]*mergeScratch, groups)
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		lo := g * len(cur) / groups
		hi := (g + 1) * len(cur) / groups
		parts[g] = scratchPool.Get().(*mergeScratch)
		wg.Add(1)
		go func(s *mergeScratch, chunk []*Matrix) {
			defer wg.Done()
			sumInto(s, &s.m, chunk)
		}(parts[g], cur[lo:hi])
	}
	wg.Wait()

	// Level 2: merge the group results and publish.
	final := scratchPool.Get().(*mergeScratch)
	partMats := make([]*Matrix, groups)
	for g, p := range parts {
		partMats[g] = &p.m
	}
	sumInto(final, &final.m, partMats)
	out := final.m.publish()
	scratchPool.Put(final)
	for _, p := range parts {
		scratchPool.Put(p)
	}
	return out
}

// Accumulator ingests a stream of (row, col, value) triples, compiles a
// leaf Matrix every leafSize triples, and hierarchically sums leaves into
// the final window matrix on Finish. This mirrors the telescope's
// streaming build: packets arrive one at a time, leaves are cut at fixed
// valid-packet counts.
type Accumulator struct {
	leafSize int
	workers  int
	builder  *Builder
	inLeaf   int
	leaves   []*Matrix
}

// NewAccumulator returns an Accumulator cutting leaves every leafSize
// triples (the paper's leaf NV is 2^17). leafSize must be positive.
func NewAccumulator(leafSize, workers int) *Accumulator {
	if leafSize <= 0 {
		panic("hypersparse: leafSize must be positive")
	}
	return &Accumulator{
		leafSize: leafSize,
		workers:  workers,
		builder:  NewBuilder(leafSize),
	}
}

// Add ingests one triple.
func (a *Accumulator) Add(row, col uint32, v float64) {
	a.builder.Add(row, col, v)
	a.inLeaf++
	if a.inLeaf >= a.leafSize {
		a.cut()
	}
}

func (a *Accumulator) cut() {
	if a.inLeaf == 0 {
		return
	}
	a.leaves = append(a.leaves, a.builder.Build())
	a.inLeaf = 0
}

// Leaves reports how many leaf matrices have been cut so far.
func (a *Accumulator) Leaves() int { return len(a.leaves) }

// Finish cuts any partial leaf and returns the hierarchical sum. The
// accumulator is reset and reusable afterwards; it retains its builder
// buffers and leaf-list capacity, so a reused accumulator (the engine
// pools one per shard worker) allocates only the published leaves at
// steady state.
func (a *Accumulator) Finish() *Matrix {
	a.cut()
	m := HierSum(a.leaves, a.workers)
	for i := range a.leaves {
		a.leaves[i] = nil // release the merged leaves for collection
	}
	a.leaves = a.leaves[:0]
	return m
}

// Discard drops all accumulated state — pending triples and cut
// leaves — without the merge Finish performs. It is the O(1) reset for
// abandoned captures (context cancellation), where Finish would burn a
// full hierarchical merge just to throw the window away. The
// accumulator's buffers are retained for reuse.
func (a *Accumulator) Discard() {
	a.builder.Reset()
	a.inLeaf = 0
	for i := range a.leaves {
		a.leaves[i] = nil
	}
	a.leaves = a.leaves[:0]
}

// FlatSum is the non-hierarchical baseline: it accumulates every entry of
// every leaf into a single builder. Used by the A1 ablation bench to
// quantify what the merge tree buys.
func FlatSum(leaves []*Matrix) *Matrix {
	n := 0
	for _, l := range leaves {
		if l != nil {
			n += l.NNZ()
		}
	}
	b := NewBuilder(n)
	for _, l := range leaves {
		if l == nil {
			continue
		}
		l.Iterate(func(e Entry) bool {
			b.Add(e.Row, e.Col, e.Val)
			return true
		})
	}
	return b.Build()
}
