package hypersparse

import (
	"runtime"
	"sync"
)

// hier.go implements the hierarchical summation of leaf matrices into a
// window matrix. The paper's pipeline aggregates NV = 2^17 valid packets
// into each leaf GraphBLAS matrix and hierarchically sums 2^13 of them to
// form an NV = 2^30 window; the same structure here yields log-depth
// merges and near-linear parallel speedup.

// HierSum sums the given matrices with a parallel binary merge tree and
// returns the total. nil entries are treated as empty. workers <= 0 uses
// GOMAXPROCS.
func HierSum(leaves []*Matrix, workers int) *Matrix {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cur := make([]*Matrix, 0, len(leaves))
	for _, l := range leaves {
		if l != nil && l.NNZ() > 0 {
			cur = append(cur, l)
		}
	}
	if len(cur) == 0 {
		return &Matrix{}
	}
	for len(cur) > 1 {
		next := make([]*Matrix, (len(cur)+1)/2)
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := 0; i < len(cur); i += 2 {
			if i+1 == len(cur) {
				next[i/2] = cur[i]
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(dst int, a, b *Matrix) {
				defer wg.Done()
				next[dst] = Add(a, b)
				<-sem
			}(i/2, cur[i], cur[i+1])
		}
		wg.Wait()
		cur = next
	}
	return cur[0]
}

// Accumulator ingests a stream of (row, col, value) triples, compiles a
// leaf Matrix every leafSize triples, and hierarchically sums leaves into
// the final window matrix on Finish. This mirrors the telescope's
// streaming build: packets arrive one at a time, leaves are cut at fixed
// valid-packet counts.
type Accumulator struct {
	leafSize int
	workers  int
	builder  *Builder
	inLeaf   int
	leaves   []*Matrix
}

// NewAccumulator returns an Accumulator cutting leaves every leafSize
// triples (the paper's leaf NV is 2^17). leafSize must be positive.
func NewAccumulator(leafSize, workers int) *Accumulator {
	if leafSize <= 0 {
		panic("hypersparse: leafSize must be positive")
	}
	return &Accumulator{
		leafSize: leafSize,
		workers:  workers,
		builder:  NewBuilder(leafSize),
	}
}

// Add ingests one triple.
func (a *Accumulator) Add(row, col uint32, v float64) {
	a.builder.Add(row, col, v)
	a.inLeaf++
	if a.inLeaf >= a.leafSize {
		a.cut()
	}
}

func (a *Accumulator) cut() {
	if a.inLeaf == 0 {
		return
	}
	a.leaves = append(a.leaves, a.builder.Build())
	a.inLeaf = 0
}

// Leaves reports how many leaf matrices have been cut so far.
func (a *Accumulator) Leaves() int { return len(a.leaves) }

// Finish cuts any partial leaf and returns the hierarchical sum. The
// accumulator is reset and reusable afterwards.
func (a *Accumulator) Finish() *Matrix {
	a.cut()
	m := HierSum(a.leaves, a.workers)
	a.leaves = nil
	return m
}

// FlatSum is the non-hierarchical baseline: it accumulates every entry of
// every leaf into a single builder. Used by the A1 ablation bench to
// quantify what the merge tree buys.
func FlatSum(leaves []*Matrix) *Matrix {
	n := 0
	for _, l := range leaves {
		if l != nil {
			n += l.NNZ()
		}
	}
	b := NewBuilder(n)
	for _, l := range leaves {
		if l == nil {
			continue
		}
		l.Iterate(func(e Entry) bool {
			b.Add(e.Row, e.Col, e.Val)
			return true
		})
	}
	return b.Build()
}
