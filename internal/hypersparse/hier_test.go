package hypersparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHierSumMatchesFlat(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nLeaves := 1 + rng.Intn(9)
		leaves := make([]*Matrix, nLeaves)
		for i := range leaves {
			leaves[i] = FromEntries(randomEntries(rng, 200, 50, 50))
		}
		return Equal(HierSum(leaves, 4), FlatSum(leaves))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHierSumEdgeCases(t *testing.T) {
	if HierSum(nil, 1).NNZ() != 0 {
		t.Error("HierSum(nil) not empty")
	}
	if HierSum([]*Matrix{nil, {}, nil}, 1).NNZ() != 0 {
		t.Error("HierSum of nils/empties not empty")
	}
	m := FromEntries([]Entry{{1, 1, 1}})
	if !Equal(HierSum([]*Matrix{m}, 1), m) {
		t.Error("single-leaf HierSum changed the matrix")
	}
}

func TestHierSumOddLeafCount(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	leaves := make([]*Matrix, 7)
	for i := range leaves {
		leaves[i] = FromEntries(randomEntries(rng, 100, 30, 30))
	}
	if !Equal(HierSum(leaves, 3), FlatSum(leaves)) {
		t.Error("odd leaf count mis-merged")
	}
}

func TestHierSumWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	leaves := make([]*Matrix, 16)
	for i := range leaves {
		leaves[i] = FromEntries(randomEntries(rng, 300, 64, 64))
	}
	want := FlatSum(leaves)
	for _, w := range []int{-1, 0, 1, 2, 8, 64} {
		if !Equal(HierSum(leaves, w), want) {
			t.Errorf("workers=%d produced a different sum", w)
		}
	}
}

func TestAccumulatorPreservesTotal(t *testing.T) {
	// NV conservation: sum of the window matrix equals triples ingested.
	acc := NewAccumulator(64, 2)
	rng := rand.New(rand.NewSource(23))
	const n = 1000
	for i := 0; i < n; i++ {
		acc.Add(rng.Uint32()%100, rng.Uint32()%100, 1)
	}
	if acc.Leaves() != n/64 {
		t.Errorf("Leaves() = %d, want %d full leaves", acc.Leaves(), n/64)
	}
	m := acc.Finish()
	if m.Sum() != n {
		t.Errorf("window sum = %g, want %d", m.Sum(), n)
	}
}

func TestAccumulatorMatchesDirectBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	es := randomEntries(rng, 2000, 80, 80)
	acc := NewAccumulator(97, 4) // deliberately non-divisor leaf size
	b := NewBuilder(0)
	for _, e := range es {
		acc.Add(e.Row, e.Col, e.Val)
		b.Add(e.Row, e.Col, e.Val)
	}
	if !Equal(acc.Finish(), b.Build()) {
		t.Error("accumulator result differs from direct build")
	}
}

func TestAccumulatorReusableAfterFinish(t *testing.T) {
	acc := NewAccumulator(10, 1)
	acc.Add(1, 1, 1)
	first := acc.Finish()
	acc.Add(2, 2, 2)
	second := acc.Finish()
	if first.Sum() != 1 || second.Sum() != 2 {
		t.Error("accumulator state leaked across Finish")
	}
	if second.At(1, 1) != 0 {
		t.Error("second window contains first window's traffic")
	}
}

func TestAccumulatorPanicsOnBadLeafSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewAccumulator(0) did not panic")
		}
	}()
	NewAccumulator(0, 1)
}

func BenchmarkHierSum16Leaves(b *testing.B) {
	rng := rand.New(rand.NewSource(30))
	leaves := make([]*Matrix, 16)
	for i := range leaves {
		leaves[i] = FromEntries(randomEntries(rng, 1<<14, 1<<16, 1<<16))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HierSum(leaves, 0)
	}
}

func BenchmarkFlatSum16Leaves(b *testing.B) {
	rng := rand.New(rand.NewSource(30))
	leaves := make([]*Matrix, 16)
	for i := range leaves {
		leaves[i] = FromEntries(randomEntries(rng, 1<<14, 1<<16, 1<<16))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FlatSum(leaves)
	}
}

func BenchmarkBuilderAdd(b *testing.B) {
	bld := NewBuilder(b.N)
	rng := rand.New(rand.NewSource(31))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld.Add(rng.Uint32()%(1<<20), rng.Uint32()%(1<<20), 1)
	}
}
