package hypersparse

// ops.go implements the GraphBLAS operations the paper's Table II
// formulas need: reductions along each dimension in both the arithmetic
// (+) and structural (zero-norm) semirings, elementwise addition for the
// hierarchical accumulator, transpose, and index permutation.

// Add returns the elementwise sum a + b. Both operands are unchanged.
// The merge is linear in the total number of entries.
//
// Aliasing: when either operand is empty, Add returns the other operand
// itself, not a copy. This is safe for published (immutable) matrices —
// the only kind Add should be given — but it means the result may share
// identity with an input; callers that go on to use the result as a
// mutable AddInto/SumInto destination must publish or copy it first.
// The pooled merge path never returns pooled scratch through this
// shortcut (see HierSum).
//
// The hot path uses AddInto and SumInto instead, which reuse a
// caller-owned destination; Add remains the convenient
// allocate-per-call form.
func Add(a, b *Matrix) *Matrix {
	if a.NNZ() == 0 {
		return b
	}
	if b.NNZ() == 0 {
		return a
	}
	out := &Matrix{
		rows:   make([]uint32, 0, len(a.rows)+len(b.rows)),
		rowPtr: make([]int64, 0, len(a.rows)+len(b.rows)+1),
		cols:   make([]uint32, 0, len(a.cols)+len(b.cols)),
		vals:   make([]float64, 0, len(a.vals)+len(b.vals)),
	}
	return AddInto(out, a, b)
}

func (m *Matrix) appendRow(row uint32, cols []uint32, vals []float64) {
	m.rows = append(m.rows, row)
	m.rowPtr = append(m.rowPtr, int64(len(m.cols)))
	m.cols = append(m.cols, cols...)
	m.vals = append(m.vals, vals...)
}

func (m *Matrix) appendMergedRow(row uint32, ac []uint32, av []float64, bc []uint32, bv []float64) {
	m.rows = append(m.rows, row)
	m.rowPtr = append(m.rowPtr, int64(len(m.cols)))
	i, j := 0, 0
	for i < len(ac) || j < len(bc) {
		switch {
		case j == len(bc) || (i < len(ac) && ac[i] < bc[j]):
			m.cols = append(m.cols, ac[i])
			m.vals = append(m.vals, av[i])
			i++
		case i == len(ac) || bc[j] < ac[i]:
			m.cols = append(m.cols, bc[j])
			m.vals = append(m.vals, bv[j])
			j++
		default:
			m.cols = append(m.cols, ac[i])
			m.vals = append(m.vals, av[i]+bv[j])
			i++
			j++
		}
	}
}

// Pattern returns |A|0: every stored value replaced by 1. Combined with
// the reductions below this yields the structural quantities of Table II
// (unique links, fan-out, fan-in).
func (m *Matrix) Pattern() *Matrix {
	out := &Matrix{
		rows:   m.rows,
		rowPtr: m.rowPtr,
		cols:   m.cols,
		vals:   make([]float64, len(m.vals)),
	}
	for i := range out.vals {
		out.vals[i] = 1
	}
	return out
}

// RowSums returns A·1: per-source packet counts ("source packets from i").
func (m *Matrix) RowSums() *Vector {
	ids := make([]uint32, len(m.rows))
	vals := make([]float64, len(m.rows))
	copy(ids, m.rows)
	for ri := range m.rows {
		var s float64
		for k := m.rowPtr[ri]; k < m.rowPtr[ri+1]; k++ {
			s += m.vals[k]
		}
		vals[ri] = s
	}
	return &Vector{ids: ids, vals: vals}
}

// RowDegrees returns |A|0·1: per-source unique destination counts
// ("source fan-out from i").
func (m *Matrix) RowDegrees() *Vector {
	ids := make([]uint32, len(m.rows))
	vals := make([]float64, len(m.rows))
	copy(ids, m.rows)
	for ri := range m.rows {
		vals[ri] = float64(m.rowPtr[ri+1] - m.rowPtr[ri])
	}
	return &Vector{ids: ids, vals: vals}
}

// ColSums returns 1^T·A: per-destination packet counts ("destination
// packets to j"). The column reduction runs on the pooled radix scan,
// not a map, so the only allocations are the returned vector's arrays.
func (m *Matrix) ColSums() *Vector {
	ids := make([]uint32, 0, len(m.cols))
	vals := make([]float64, 0, len(m.cols))
	m.ColScan(func(col uint32, sum float64, _ int) {
		ids = append(ids, col)
		vals = append(vals, sum)
	})
	return &Vector{ids: ids, vals: vals}
}

// ColDegrees returns 1^T·|A|0: per-destination unique source counts
// ("destination fan-in to j").
func (m *Matrix) ColDegrees() *Vector {
	ids := make([]uint32, 0, len(m.cols))
	vals := make([]float64, 0, len(m.cols))
	m.ColScan(func(col uint32, _ float64, nnz int) {
		ids = append(ids, col)
		vals = append(vals, float64(nnz))
	})
	return &Vector{ids: ids, vals: vals}
}

// MaxVal returns max(A), the paper's maximum link packets, or 0 when
// empty.
func (m *Matrix) MaxVal() float64 {
	var mx float64
	for _, v := range m.vals {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Transpose returns A^T, swapping the source and destination roles.
func (m *Matrix) Transpose() *Matrix {
	b := NewBuilder(m.NNZ())
	m.Iterate(func(e Entry) bool {
		b.Add(e.Col, e.Row, e.Val)
		return true
	})
	return b.Build()
}

// PermuteFunc relabels every index through fn, which must be injective on
// the ids present (a permutation of the index space, e.g. a CryptoPAN
// anonymizer). Row and column spaces are mapped with the same function,
// matching anonymization of IP addresses.
func (m *Matrix) PermuteFunc(fn func(uint32) uint32) *Matrix {
	b := NewBuilder(m.NNZ())
	m.Iterate(func(e Entry) bool {
		b.Add(fn(e.Row), fn(e.Col), e.Val)
		return true
	})
	return b.Build()
}

// Equal reports whether two matrices hold exactly the same entries.
func Equal(a, b *Matrix) bool {
	if a.NNZ() != b.NNZ() || a.NRows() != b.NRows() {
		return false
	}
	for i := range a.rows {
		if a.rows[i] != b.rows[i] || a.rowPtr[i] != b.rowPtr[i] {
			return false
		}
	}
	for i := range a.cols {
		if a.cols[i] != b.cols[i] || a.vals[i] != b.vals[i] {
			return false
		}
	}
	return true
}

// SelectRows returns the submatrix containing only the rows for which
// keep returns true (the D4M-style sub-referencing used to slice a
// brightness band out of a window).
func (m *Matrix) SelectRows(keep func(uint32) bool) *Matrix {
	out := &Matrix{}
	for ri, row := range m.rows {
		if !keep(row) {
			continue
		}
		out.appendRow(row, m.cols[m.rowPtr[ri]:m.rowPtr[ri+1]], m.vals[m.rowPtr[ri]:m.rowPtr[ri+1]])
	}
	out.rowPtr = append(out.rowPtr, int64(len(out.cols)))
	if len(out.rows) == 0 {
		return &Matrix{}
	}
	return out
}
